//! Security-property tests: empirical checks of the paper's privacy and
//! secrecy claims (§2), at the protocol level.
//!
//! These are *statistical* tests for the information-theoretic claims
//! (exact distribution equality, sampled) and *structural* tests for the
//! computational ones (what each party's view contains).

use spfe::core::input_select::select1;
use spfe::core::multiserver::{client_queries, MsFunction, MultiServerParams};
use spfe::core::stats;
use spfe::core::two_phase;
use spfe::core::Statistic;
use spfe::crypto::{ChaChaRng, HomomorphicScheme, Paillier, SchnorrGroup};
use spfe::math::{Fp64, RandomSource};
use spfe::transport::Transcript;
use std::collections::HashMap;

/// §3.1 client privacy: the joint view of any t = 2 servers is identically
/// distributed regardless of the client's indices.
#[test]
fn multiserver_t_collusion_view_is_index_independent() {
    let f = Fp64::new(17).unwrap();
    let params = MultiServerParams {
        t: 2,
        ell: 2,
        field: f,
        function: MsFunction::Sum { m: 1 },
    };
    let runs = 4000;
    // Collusion = servers 0 and 1; joint view = their two query vectors.
    let mut hists: Vec<HashMap<Vec<u64>, u32>> = vec![HashMap::new(), HashMap::new()];
    for (slot, &index) in [0usize, 3usize].iter().enumerate() {
        let mut rng = ChaChaRng::from_u64_seed(100 + slot as u64);
        for _ in 0..runs {
            let qs = client_queries(&params, &[index], &mut rng);
            let mut view = qs[0].slot_points[0].clone();
            view.extend(&qs[1].slot_points[0]);
            *hists[slot].entry(view).or_insert(0) += 1;
        }
    }
    let keys: std::collections::HashSet<_> =
        hists[0].keys().chain(hists[1].keys()).cloned().collect();
    for k in keys {
        let a = *hists[0].get(&k).unwrap_or(&0) as f64;
        let b = *hists[1].get(&k).unwrap_or(&0) as f64;
        assert!(
            (a - b).abs() <= 10.0 * ((a + b).sqrt() + 1.0),
            "view {k:?}: {a} vs {b}"
        );
    }
}

/// §3.1 database secrecy ([25] blinding): with the blinding polynomial the
/// client's residual information — the interpolated polynomial beyond its
/// value at 0 — is uniformly random.
#[test]
fn multiserver_blinding_randomizes_off_zero_values() {
    let f = Fp64::new(101).unwrap();
    let db: Vec<u64> = (0..8u64).collect();
    let params = MultiServerParams::new(db.len(), 1, f, MsFunction::Sum { m: 1 });
    let mut rng = ChaChaRng::from_u64_seed(7);
    let mut first_answers = std::collections::HashSet::new();
    for seed in 0..30u64 {
        let queries = client_queries(&params, &[3], &mut rng);
        let mut srng = ChaChaRng::from_u64_seed(seed);
        let blind = spfe::core::multiserver::blinding_poly(&params, &mut srng);
        let a0 =
            spfe::core::multiserver::server_answer(&params, &db, &queries[0], Some((&blind, 0)))
                .unwrap();
        first_answers.insert(a0);
    }
    // Across 30 independent blindings the same server's answer varies.
    assert!(first_answers.len() > 20, "blinding must randomize answers");
}

/// Input-selection shares look uniform to each party individually.
#[test]
fn share_marginals_are_uniform() {
    let mut rng = ChaChaRng::from_u64_seed(0x5EC);
    let group = SchnorrGroup::generate(96, &mut rng);
    let (pk, sk) = Paillier::keygen(160, &mut rng);
    let field = Fp64::new(31).unwrap();
    let db: Vec<u64> = (0..10u64).map(|i| i % 31).collect();
    let mut client_hist = [0u32; 31];
    let runs = 600;
    for _ in 0..runs {
        let mut t = Transcript::new(1);
        let shares = select1(&mut t, &group, &pk, &sk, &db, &[4], field, &mut rng).unwrap();
        client_hist[shares.client[0] as usize] += 1;
    }
    // Every residue should appear, none dominating.
    let max = *client_hist.iter().max().unwrap();
    let min = *client_hist.iter().min().unwrap();
    assert!(min > 0, "some residue never appeared: {client_hist:?}");
    assert!(max < runs / 5, "distribution too peaked: {client_hist:?}");
}

/// §3.3 weak security: a malicious client shifting shares learns exactly
/// f(x_I + Δ) — tested for the sum and frequency statistics.
#[test]
fn malicious_share_shift_changes_only_the_arguments() {
    let mut rng = ChaChaRng::from_u64_seed(0xBAD);
    let group = SchnorrGroup::generate(96, &mut rng);
    let (pk, sk) = Paillier::keygen(160, &mut rng);
    let field = Fp64::new(257).unwrap();
    let db = vec![100u64, 50, 42, 7, 42];
    let indices = [2usize, 4];

    // Honest frequency of 42 = 2; a client shifting its first share by 1
    // queries (x₀+1, x₁) instead and must see frequency 1.
    let mut t = Transcript::new(1);
    let mut shares = select1(&mut t, &group, &pk, &sk, &db, &indices, field, &mut rng).unwrap();
    shares.client[0] = field.add(shares.client[0], 1);
    let shifted = two_phase::yao_phase(
        &mut t,
        &group,
        &shares,
        &Statistic::Frequency { keyword: 42 },
        &mut rng,
    )
    .unwrap();
    assert_eq!(shifted, vec![1], "client learned f on shifted inputs only");
}

/// §4 weighted sum, the counting argument: any coefficient vector the
/// client submits corresponds to some linear combination of the selected
/// (masked) items — equivalently, for every weight vector the output is
/// exactly that combination. Property-tested over random weights.
#[test]
fn weighted_sum_counting_argument() {
    let mut rng = ChaChaRng::from_u64_seed(0xC0);
    let group = SchnorrGroup::generate(96, &mut rng);
    let (pk, sk) = Paillier::keygen(160, &mut rng);
    let field = Fp64::new(65_537).unwrap();
    let db: Vec<u64> = (0..30u64).map(|i| i * 3 + 5).collect();
    let indices = [1usize, 10, 20];
    for trial in 0..5u64 {
        let weights: Vec<u64> = (0..3).map(|k| (trial * 7 + k + 1) % 100).collect();
        let mut t = Transcript::new(1);
        let got = stats::weighted_sum(
            &mut t, &group, &pk, &sk, &db, &indices, &weights, field, &mut rng,
        )
        .unwrap();
        let expect = indices.iter().zip(&weights).fold(0u64, |acc, (&i, &w)| {
            field.add(acc, field.mul(field.from_u64(w), field.from_u64(db[i])))
        });
        assert_eq!(got, expect, "weights {weights:?}");
    }
}

/// The frequency protocol's permutation hides *which* selected items
/// matched: the client sees only the multiset of blinded comparisons.
#[test]
fn frequency_hides_match_positions() {
    let mut rng = ChaChaRng::from_u64_seed(0xF2E);
    let group = SchnorrGroup::generate(96, &mut rng);
    let (pk, sk) = Paillier::keygen(160, &mut rng);
    let field = Fp64::new(101).unwrap();
    // Two databases with the keyword in different positions.
    let db_a = vec![9u64, 1, 2];
    let db_b = vec![1u64, 2, 9];
    let mut counts = Vec::new();
    for db in [&db_a, &db_b] {
        let mut t = Transcript::new(1);
        let shares = select1(&mut t, &group, &pk, &sk, db, &[0, 1, 2], field, &mut rng).unwrap();
        counts.push(stats::frequency(&mut t, &pk, &sk, &shares, 9, &mut rng).unwrap());
    }
    assert_eq!(counts, vec![1, 1], "same count regardless of position");
}

/// Paillier ciphertexts in queries are semantically secure: two queries
/// for different indices are byte-wise unrelated fresh encryptions (no
/// deterministic structure to compare).
#[test]
fn pir_queries_are_probabilistic() {
    let mut rng = ChaChaRng::from_u64_seed(0x9E9);
    let (pk, _) = Paillier::keygen(160, &mut rng);
    let layout = spfe::pir::Layout::square(16);
    let q1 = spfe::pir::hom_pir::client_query(&pk, &layout, 3, &mut rng);
    let q2 = spfe::pir::hom_pir::client_query(&pk, &layout, 3, &mut rng);
    assert_ne!(
        q1.row_selector, q2.row_selector,
        "same index must yield fresh ciphertexts"
    );
}

/// The servers in the sum-PSM construction see only m independent PIR
/// queries; the PSM pads ensure the m reconstructed messages are uniform
/// subject to their sum.
#[test]
fn sum_psm_messages_leak_only_the_sum() {
    use spfe::mpc::psm::sum;
    let modulus = 11u64;
    // Two input vectors with equal sum.
    let xs_a = [3u64, 7]; // sum 10
    let xs_b = [9u64, 1]; // sum 10
    let runs = 3000;
    let mut hists = [HashMap::new(), HashMap::new()];
    let mut seeder = ChaChaRng::from_u64_seed(0xAB);
    for (slot, xs) in [xs_a, xs_b].iter().enumerate() {
        for _ in 0..runs {
            let mut seed = [0u8; 32];
            let r = seeder.next_u64();
            seed[..8].copy_from_slice(&r.to_le_bytes());
            let msgs: Vec<u64> = xs
                .iter()
                .enumerate()
                .map(|(j, &y)| sum::player_message(j, 2, y, modulus, seed))
                .collect();
            *hists[slot].entry(msgs).or_insert(0u32) += 1;
        }
    }
    let keys: std::collections::HashSet<_> =
        hists[0].keys().chain(hists[1].keys()).cloned().collect();
    for k in keys {
        let a = *hists[0].get(&k).unwrap_or(&0) as f64;
        let b = *hists[1].get(&k).unwrap_or(&0) as f64;
        assert!(
            (a - b).abs() <= 10.0 * ((a + b).sqrt() + 1.0),
            "messages {k:?}: {a} vs {b}"
        );
    }
}
