//! Deadline and fault behaviour of the networked service (DESIGN.md §15):
//! a stalling peer surfaces as a typed [`ProtocolError::Timeout`] within
//! the configured deadline (not a hang), a poisoned socket channel burns
//! its retry budget instantly instead of paying the deadline per attempt,
//! and a session killed mid-protocol leaves the server's other sessions
//! fully functional.

mod common;
use common::*;

use spfe::transport::frame::{read_frame, write_frame};
use spfe::transport::{
    Channel, Direction, Frame, FrameKind, ProtocolError, SessionMode, SocketChannel,
};
use spfe_net::{next_session_id, run_driver, Server, ServerConfig};
use spfe_obs::metrics::FailureKind;
use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

const DEADLINE: Duration = Duration::from_millis(300);
/// Generous wall-clock bound: one deadline plus scheduling slack — the
/// point is "bounded by the deadline", not "takes forever".
const BOUND: Duration = Duration::from_secs(5);

fn connect_with_deadline(addr: std::net::SocketAddr) -> TcpStream {
    let s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(DEADLINE)).unwrap();
    s.set_write_timeout(Some(DEADLINE)).unwrap();
    s
}

/// A server that accepts and then never answers: the Hello handshake
/// itself must time out, typed and bounded.
#[test]
fn stalling_server_times_out_the_handshake() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let hold = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        // Hold the connection open, answering nothing.
        std::thread::sleep(Duration::from_secs(6));
        drop(stream);
    });
    let start = Instant::now();
    let err = SocketChannel::connect(
        connect_with_deadline(addr),
        2,
        "xor2",
        SessionMode::Relay,
        next_session_id(),
    )
    .expect_err("handshake against a mute server must fail");
    assert!(
        matches!(
            err,
            ProtocolError::Timeout {
                label: "net-hello",
                ..
            }
        ),
        "expected a typed handshake timeout, got {err:?}"
    );
    assert!(
        start.elapsed() < BOUND,
        "timeout took {:?}, deadline is {DEADLINE:?}",
        start.elapsed()
    );
    drop(hold); // detach; the holder thread exits on its own clock
}

/// A server that completes the handshake and then goes mute: the first
/// transfer times out, and the poisoned channel fails every subsequent
/// transfer instantly with the same error — a stalled server costs one
/// deadline, not one per retry attempt.
#[test]
fn stalling_server_times_out_one_deadline_total() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let peer = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let hello = read_frame(&mut stream, 0, "t").unwrap();
        let ack = Frame {
            kind: FrameKind::Hello,
            client_to_server: false,
            session: hello.session,
            half_round: 0,
            server: 0,
            label: hello.label.clone(),
            payload: hello.payload.clone(),
        };
        write_frame(&mut stream, &ack, 0, "t").unwrap();
        // Swallow everything after the handshake, reply to nothing.
        let mut sink = [0u8; 1024];
        while let Ok(n) = stream.read(&mut sink) {
            if n == 0 {
                break;
            }
        }
    });
    let mut ch = SocketChannel::connect(
        connect_with_deadline(addr),
        2,
        "xor2",
        SessionMode::Relay,
        next_session_id(),
    )
    .expect("handshake");
    let start = Instant::now();
    let err = ch
        .transfer_raw(Direction::ClientToServer(0), "pir2-query", &[1, 2, 3])
        .expect_err("transfer against a mute relay must fail");
    assert!(
        matches!(
            err,
            ProtocolError::Timeout {
                label: "pir2-query",
                ..
            }
        ),
        "expected a typed transfer timeout, got {err:?}"
    );
    // Poisoned: instant replay of the same error, no second deadline.
    let again = ch
        .transfer_raw(Direction::ClientToServer(1), "pir2-query", &[4])
        .expect_err("poisoned channel must fail fast");
    assert_eq!(again, err);
    assert!(
        start.elapsed() < BOUND,
        "two failing transfers took {:?}; poisoning must make the second free",
        start.elapsed()
    );
    assert_eq!(
        ch.transcript().report().messages,
        0,
        "nothing delivered, nothing metered"
    );
    drop(peer);
}

/// A full monolithic driver over a stalling relay: the bounded retry
/// policy must abort (timeout or exhausted retries) within the bound —
/// never hang for attempts × deadline.
#[test]
fn driver_over_stalling_relay_aborts_bounded() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let peer = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let hello = read_frame(&mut stream, 0, "t").unwrap();
        let ack = Frame {
            kind: FrameKind::Hello,
            client_to_server: false,
            session: hello.session,
            half_round: 0,
            server: 0,
            label: hello.label,
            payload: hello.payload,
        };
        write_frame(&mut stream, &ack, 0, "t").unwrap();
        let mut sink = [0u8; 1024];
        while let Ok(n) = stream.read(&mut sink) {
            if n == 0 {
                break;
            }
        }
    });
    let d_table = drivers();
    let d = d_table.iter().find(|d| d.name == "xor2").unwrap();
    let mut ch = SocketChannel::connect(
        connect_with_deadline(addr),
        d.servers,
        d.name,
        SessionMode::Relay,
        next_session_id(),
    )
    .expect("handshake");
    let start = Instant::now();
    let err = (d.run)(&mut ch).expect_err("driver over a mute relay must abort");
    assert!(
        matches!(
            err,
            ProtocolError::Timeout { .. } | ProtocolError::RetriesExhausted { .. }
        ),
        "expected a bounded typed abort, got {err:?}"
    );
    assert!(
        start.elapsed() < BOUND,
        "driver abort took {:?}; must cost ~one deadline",
        start.elapsed()
    );
    drop(peer);
}

/// Killing one session mid-protocol must not disturb the multiplexer:
/// other concurrent sessions — and sessions opened afterwards — still
/// complete with correct digests.
#[test]
fn killed_session_leaves_other_sessions_serving() {
    let _ = fx();
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr_sock = server.local_addr();
    let addr = addr_sock.to_string();

    // Session A: handshake, one live transfer, then die mid-protocol.
    let mut victim = SocketChannel::connect(
        connect_with_deadline(addr_sock),
        2,
        "xor2",
        SessionMode::Relay,
        next_session_id(),
    )
    .expect("victim handshake");
    let echoed = victim
        .transfer_raw(Direction::ClientToServer(0), "pir2-query", &[9, 9])
        .expect("victim transfer");
    assert_eq!(echoed, vec![9, 9]);
    drop(victim); // no Bye: the connection just dies mid-session

    // Session B: feed the server a garbage frame so its session thread
    // errors out (not merely EOF).
    {
        use std::io::Write;
        let mut garbage = TcpStream::connect(addr_sock).expect("garbage connect");
        garbage
            .write_all(b"XXXXGARBAGEXXXXGARBAGEXXXXGARBAGE")
            .unwrap();
        let _ = garbage.flush();
    }

    // Sessions C…: full driver runs, concurrently, all correct.
    let table = drivers();
    let handles: Vec<_> = ["xor2", "poly_it", "hom_pir"]
        .iter()
        .map(|name| {
            let addr = addr.clone();
            let name = (*name).to_owned();
            std::thread::spawn(move || {
                let run = run_driver(&addr, &name, Some(Duration::from_secs(30)))
                    .expect("post-kill session");
                (name, run.digest)
            })
        })
        .collect();
    for h in handles {
        let (name, digest) = h.join().expect("session thread");
        let d = table.iter().find(|d| d.name == name).unwrap();
        assert_eq!(
            digest, d.expect,
            "[{name}] session after a killed session must still be correct"
        );
    }

    // The failure taxonomy pins down *which* disruption was counted:
    // the victim's silent disconnect is a clean EOF (completed), the
    // garbage frame is exactly one codec reject — not a generic "failed"
    // blur. Session threads settle asynchronously; poll until they do.
    let start = Instant::now();
    let snap = loop {
        let snap = server.snapshot();
        if snap.sessions_opened >= 5 && snap.sessions_active == 0 {
            break snap;
        }
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "sessions never settled: {snap:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(snap.sessions_opened, 5);
    assert_eq!(
        snap.sessions_completed, 4,
        "victim EOF + three driver runs all complete: {snap:?}"
    );
    assert_eq!(snap.sessions_failed(), 1);
    assert_eq!(
        server.failures(FailureKind::CodecReject),
        1,
        "the garbage frame must be counted as a codec reject, not io/protocol"
    );
}
