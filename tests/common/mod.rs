//! Shared conformance fixture — now a thin shim over [`spfe::harness`],
//! where the driver table lives so the `spfe-tables audit` differential
//! harness and the test suites consume the same registry.

#![allow(dead_code)] // each consuming suite uses a different subset

pub use spfe::harness::*;
