//! Shared conformance fixture: the driver table used by both the
//! adversarial suite (`adversarial.rs`) and the trace conformance suite
//! (`trace_conformance.rs`).
//!
//! One (small) Schnorr group and Paillier keypair are generated once per
//! process; key generation dominates test time, the protocols themselves
//! run on 16–27-item databases. Each driver owns its rng seed, so a run
//! is a pure function of the channel's fault plan — the property both
//! suites lean on for reproducibility.

#![allow(dead_code)] // each consuming suite uses a different subset

use spfe::circuits::builders::sum_circuit;
use spfe::core::database::reference;
use spfe::core::input_select::select1;
use spfe::core::multiserver::{self, MsFunction, MultiServerParams};
use spfe::core::stats;
use spfe::core::two_phase;
use spfe::core::universal::universal_yao_phase;
use spfe::core::{psm_spfe, Statistic};
use spfe::crypto::{ChaChaRng, HomomorphicScheme, Paillier, PaillierPk, PaillierSk, SchnorrGroup};
use spfe::math::Fp64;
use spfe::pir::poly_it::{self, PolyItParams};
use spfe::pir::spir::{self, SpirParams};
use spfe::pir::{batched, hom_pir, recursive, xor2};
use spfe::transport::{Channel, FaultPlan, FaultyChannel, ProtocolError};
use std::sync::OnceLock;

pub struct Fixture {
    pub group: SchnorrGroup,
    pub pk: PaillierPk,
    pub sk: PaillierSk,
}

pub fn fx() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let mut rng = ChaChaRng::from_u64_seed(0xADE5);
        let group = SchnorrGroup::generate(96, &mut rng);
        let (pk, sk) = Paillier::keygen(160, &mut rng);
        Fixture { group, pk, sk }
    })
}

pub fn db16() -> Vec<u64> {
    (0..16u64).map(|i| (i * 7 + 3) % 50).collect()
}

pub fn db27() -> Vec<u64> {
    (0..27u64).map(|i| (i * 5 + 2) % 40).collect()
}

pub fn xor_db() -> Vec<Vec<u8>> {
    (0..16u8)
        .map(|i| {
            (0..4u8)
                .map(|j| i.wrapping_mul(31).wrapping_add(j * 7 + 1))
                .collect()
        })
        .collect()
}

pub fn field() -> Fp64 {
    Fp64::at_least(1_000)
}

// ---------------------------------------------------------------------------
// The driver table: every protocol in the workspace, each reduced to a
// `u64` digest so one matrix covers them all.
// ---------------------------------------------------------------------------

pub type DriverFn = fn(&mut dyn Channel) -> Result<u64, ProtocolError>;

pub struct Driver {
    pub name: &'static str,
    pub servers: usize,
    pub expect: u64,
    pub run: DriverFn,
}

pub fn drv_xor2(t: &mut dyn Channel) -> Result<u64, ProtocolError> {
    let mut rng = ChaChaRng::from_u64_seed(0xA0);
    let item = xor2::run(t, &xor_db(), 5, &mut rng)?;
    Ok(item.iter().map(|&b| b as u64).sum())
}

pub fn drv_hom_pir(t: &mut dyn Channel) -> Result<u64, ProtocolError> {
    let mut rng = ChaChaRng::from_u64_seed(0xA1);
    hom_pir::run(t, &fx().pk, &fx().sk, &db16(), 9, &mut rng)
}

pub fn drv_recursive(t: &mut dyn Channel) -> Result<u64, ProtocolError> {
    let mut rng = ChaChaRng::from_u64_seed(0xA2);
    recursive::run(t, &fx().pk, &fx().sk, &db27(), 13, &mut rng)
}

pub fn drv_spir(t: &mut dyn Channel) -> Result<u64, ProtocolError> {
    let mut rng = ChaChaRng::from_u64_seed(0xA3);
    let params = SpirParams::new(fx().group.clone(), 16);
    spir::run(t, &params, &fx().pk, &fx().sk, &db16(), 7, &mut rng)
}

pub fn drv_batched(t: &mut dyn Channel) -> Result<u64, ProtocolError> {
    let mut rng = ChaChaRng::from_u64_seed(0xA4);
    let f = fx();
    let (vals, _) = batched::run(t, &f.group, &f.pk, &f.sk, &db16(), &[1, 5, 9, 14], &mut rng)?;
    Ok(vals.iter().sum())
}

pub fn drv_poly_it(t: &mut dyn Channel) -> Result<u64, ProtocolError> {
    let mut rng = ChaChaRng::from_u64_seed(0xA5);
    poly_it::run(t, &poly_params(), &db16(), 5, &mut rng)
}

pub fn poly_params() -> PolyItParams {
    PolyItParams::new(16, 1, field())
}

pub fn drv_multiserver(t: &mut dyn Channel) -> Result<u64, ProtocolError> {
    let mut rng = ChaChaRng::from_u64_seed(0xA6);
    multiserver::run(t, &ms_params(), &db16(), &[3, 10], None, &mut rng)
}

pub fn ms_params() -> MultiServerParams {
    MultiServerParams::new(16, 1, field(), MsFunction::Sum { m: 2 })
}

pub fn drv_select1(t: &mut dyn Channel) -> Result<u64, ProtocolError> {
    let mut rng = ChaChaRng::from_u64_seed(0xA7);
    let f = fx();
    let shares = select1(
        t,
        &f.group,
        &f.pk,
        &f.sk,
        &db16(),
        &[2, 7],
        field(),
        &mut rng,
    )?;
    Ok(shares.reconstruct().iter().sum())
}

pub fn drv_psm(t: &mut dyn Channel) -> Result<u64, ProtocolError> {
    let mut rng = ChaChaRng::from_u64_seed(0xA8);
    let f = fx();
    let circuit = sum_circuit(2, 8);
    psm_spfe::run_yao_psm(
        t,
        &f.group,
        &f.pk,
        &f.sk,
        &db16(),
        &[2, 11],
        &circuit,
        8,
        &mut rng,
    )
}

pub fn drv_two_phase(t: &mut dyn Channel) -> Result<u64, ProtocolError> {
    let mut rng = ChaChaRng::from_u64_seed(0xA9);
    let f = fx();
    let got = two_phase::run_select1_yao(
        t,
        &f.group,
        &f.pk,
        &f.sk,
        &db16(),
        &[1, 6, 12],
        &Statistic::Sum,
        field(),
        &mut rng,
    )?;
    Ok(got[0])
}

pub fn drv_universal(t: &mut dyn Channel) -> Result<u64, ProtocolError> {
    let mut rng = ChaChaRng::from_u64_seed(0xAA);
    let f = fx();
    let shares = select1(
        t,
        &f.group,
        &f.pk,
        &f.sk,
        &db16(),
        &[0, 4],
        field(),
        &mut rng,
    )?;
    let menu = [Statistic::Sum, Statistic::Frequency { keyword: 9 }];
    universal_yao_phase(t, &f.group, &shares, &menu, 0, &mut rng)
}

pub fn drv_weighted_sum(t: &mut dyn Channel) -> Result<u64, ProtocolError> {
    let mut rng = ChaChaRng::from_u64_seed(0xAB);
    let f = fx();
    stats::weighted_sum(
        t,
        &f.group,
        &f.pk,
        &f.sk,
        &db16(),
        &[1, 4, 9],
        &[2, 3, 1],
        field(),
        &mut rng,
    )
}

pub fn drv_frequency(t: &mut dyn Channel) -> Result<u64, ProtocolError> {
    let mut rng = ChaChaRng::from_u64_seed(0xAC);
    let f = fx();
    let db = db16();
    let shares = select1(
        t,
        &f.group,
        &f.pk,
        &f.sk,
        &db,
        &[0, 5, 10],
        field(),
        &mut rng,
    )?;
    stats::frequency(t, &f.pk, &f.sk, &shares, db[5], &mut rng)
}

pub fn drivers() -> Vec<Driver> {
    let db = db16();
    vec![
        Driver {
            name: "xor2",
            servers: 2,
            expect: xor_db()[5].iter().map(|&b| b as u64).sum(),
            run: drv_xor2,
        },
        Driver {
            name: "hom_pir",
            servers: 1,
            expect: db[9],
            run: drv_hom_pir,
        },
        Driver {
            name: "recursive",
            servers: 1,
            expect: db27()[13],
            run: drv_recursive,
        },
        Driver {
            name: "spir",
            servers: 1,
            expect: db[7],
            run: drv_spir,
        },
        Driver {
            name: "batched",
            servers: 1,
            expect: [1usize, 5, 9, 14].iter().map(|&i| db[i]).sum(),
            run: drv_batched,
        },
        Driver {
            name: "poly_it",
            servers: poly_params().num_servers(),
            expect: db[5],
            run: drv_poly_it,
        },
        Driver {
            name: "multiserver",
            servers: ms_params().num_servers(),
            expect: db[3] + db[10],
            run: drv_multiserver,
        },
        Driver {
            name: "input_select",
            servers: 1,
            expect: db[2] + db[7],
            run: drv_select1,
        },
        Driver {
            name: "psm_spfe",
            servers: 1,
            expect: db[2] + db[11],
            run: drv_psm,
        },
        Driver {
            name: "two_phase",
            servers: 1,
            expect: reference::sum(&db, &[1, 6, 12]),
            run: drv_two_phase,
        },
        Driver {
            name: "universal",
            servers: 1,
            expect: db[0] + db[4],
            run: drv_universal,
        },
        Driver {
            name: "weighted_sum",
            servers: 1,
            expect: reference::weighted_sum(&db, &[1, 4, 9], &[2, 3, 1]),
            run: drv_weighted_sum,
        },
        Driver {
            name: "frequency",
            servers: 1,
            expect: reference::frequency(&db, &[0, 5, 10], db16()[5]),
            run: drv_frequency,
        },
    ]
}

pub fn run_under(d: &Driver, plan: FaultPlan, tolerance: usize) -> Result<u64, ProtocolError> {
    let mut ch = FaultyChannel::new(d.servers, plan, tolerance);
    (d.run)(&mut ch)
}

/// Runs the driver fault-free and returns how many messages it attempts —
/// the index space scripted plans address.
pub fn honest_messages(d: &Driver) -> u64 {
    let mut ch = FaultyChannel::new(d.servers, FaultPlan::honest(), 0);
    let got = (d.run)(&mut ch);
    assert_eq!(got, Ok(d.expect), "[{}] honest run", d.name);
    ch.messages_attempted()
}
