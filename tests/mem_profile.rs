//! Heap-profiling conformance suite (DESIGN.md §12): with the
//! instrumented allocator compiled in, every protocol driver's cost
//! report carries span-attributed heap tallies, and at one worker thread
//! those tallies are *bit-identical* across reruns and across masked
//! fault schedules — the property that lets `spfe-tables trend` gate on
//! them.
//!
//! Span-attributed counters are accumulated from thread-local monotone
//! counters (see `spfe-obs::mem`), so they are immune to allocation
//! noise from concurrently starting test threads; the process-global
//! gauges are only asserted nonzero, never equal. `peak_live_bytes`
//! depends on what else is live in the process and is excluded from the
//! equality checks by design.

#![cfg(feature = "obs-alloc")]

mod common;

use common::*;
use spfe::math::par;
use spfe::obs::SpanStat;
use spfe::transport::{FaultAction, FaultPlan, FaultyChannel, ProtocolError};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// The span registry and heap counters are process-global; serialize.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Restores the global worker-thread override when a test exits (even by
/// panic), so a failure doesn't leak its thread count into later tests.
struct ThreadsGuard;

impl ThreadsGuard {
    fn set(n: usize) -> ThreadsGuard {
        par::set_threads(Some(n));
        ThreadsGuard
    }
}

impl Drop for ThreadsGuard {
    fn drop(&mut self) {
        par::set_threads(None);
    }
}

/// Runs one driver in a fresh measurement window and returns the span
/// aggregates plus the protocol outcome.
fn profile(
    d: &Driver,
    plan: FaultPlan,
    tolerance: usize,
) -> (Vec<SpanStat>, Result<u64, ProtocolError>) {
    spfe::obs::reset();
    let mut ch = FaultyChannel::new(d.servers, plan, tolerance);
    let got = (d.run)(&mut ch);
    (spfe::obs::spans_snapshot(), got)
}

/// The deterministic slice of a span snapshot: path, call count, and the
/// self-attributed alloc tallies (the peak gauge is process-dependent).
fn heap_key(spans: &[SpanStat]) -> Vec<(String, u64, u64, u64)> {
    spans
        .iter()
        .map(|s| (s.path.clone(), s.calls, s.allocs, s.alloc_bytes))
        .collect()
}

#[test]
fn every_driver_attributes_heap_to_spans() {
    let _g = lock();
    let _t = ThreadsGuard::set(1);
    assert!(spfe::obs::alloc_enabled());
    for d in drivers() {
        let (spans, got) = profile(&d, FaultPlan::honest(), 0);
        assert_eq!(got, Ok(d.expect), "[{}] honest run", d.name);
        assert!(!spans.is_empty(), "[{}] no spans recorded", d.name);
        assert!(
            spans.iter().any(|s| s.alloc_bytes > 0),
            "[{}] no span-attributed alloc bytes: {spans:?}",
            d.name
        );
        assert!(
            spans.iter().all(|s| s.peak_live_bytes > 0),
            "[{}] a span saw a zero live-heap peak: {spans:?}",
            d.name
        );
        let mem = spfe::obs::mem::snapshot();
        assert!(
            mem.allocs > 0 && mem.alloc_bytes > 0,
            "[{}] {mem:?}",
            d.name
        );
        assert!(mem.peak_live_bytes > 0, "[{}] {mem:?}", d.name);
    }
}

#[test]
fn span_heap_tallies_are_bit_identical_across_reruns() {
    let _g = lock();
    let _t = ThreadsGuard::set(1);
    for d in drivers() {
        let (first, got1) = profile(&d, FaultPlan::honest(), 0);
        let (second, got2) = profile(&d, FaultPlan::honest(), 0);
        assert_eq!(got1, Ok(d.expect), "[{}] first run", d.name);
        assert_eq!(got2, Ok(d.expect), "[{}] second run", d.name);
        assert_eq!(
            heap_key(&first),
            heap_key(&second),
            "[{}] heap tallies drifted between identical runs",
            d.name
        );
    }
}

#[test]
fn span_heap_tallies_are_bit_identical_across_masked_fault_plans() {
    let _g = lock();
    let _t = ThreadsGuard::set(1);
    for d in drivers() {
        let (honest, got) = profile(&d, FaultPlan::honest(), 0);
        assert_eq!(got, Ok(d.expect), "[{}] honest run", d.name);
        for (what, plan) in [
            ("drop@0", FaultPlan::scripted(vec![(0, FaultAction::Drop)])),
            (
                "drop@1+delay@2",
                FaultPlan::scripted(vec![(1, FaultAction::Drop), (2, FaultAction::Delay(1))]),
            ),
        ] {
            let (faulty, got) = profile(&d, plan, 2);
            assert_eq!(got, Ok(d.expect), "[{} × {what}] masked faults", d.name);
            assert_eq!(
                heap_key(&honest),
                heap_key(&faulty),
                "[{} × {what}] fault schedule leaked into heap tallies",
                d.name
            );
        }
    }
}
