//! Cost-claim tests: the paper's asymptotic statements, checked on real
//! transcripts. Each test names the claim it reproduces; the benchmark
//! harness produces the full tables (EXPERIMENTS.md), these tests pin the
//! *shape* so regressions fail CI.

use spfe::circuits::builders::sum_circuit;
use spfe::core::baseline;
use spfe::core::multiserver::{MsFunction, MultiServerParams};
use spfe::core::psm_spfe;
use spfe::core::stats;
use spfe::core::two_phase;
use spfe::core::Statistic;
use spfe::crypto::{ChaChaRng, HomomorphicScheme, Paillier, PaillierPk, PaillierSk, SchnorrGroup};
use spfe::math::Fp64;
use spfe::transport::Transcript;

fn setup() -> (SchnorrGroup, PaillierPk, PaillierSk, ChaChaRng) {
    let mut rng = ChaChaRng::from_u64_seed(0xC057);
    let group = SchnorrGroup::generate(96, &mut rng);
    let (pk, sk) = Paillier::keygen(160, &mut rng);
    (group, pk, sk, rng)
}

/// §1.1: SPFE communication is sublinear in n; generic solutions are
/// linear. Measure both and find the crossover direction.
#[test]
fn spfe_beats_linear_baselines_for_small_m() {
    let (group, pk, sk, mut rng) = setup();
    let n = 32_768;
    let db: Vec<u64> = (0..n as u64).map(|i| i % 64).collect();
    let indices = [7usize, 99, 1_000, 31_000];
    let field = Fp64::at_least(n as u64 + 300);

    let mut t_spfe = Transcript::new(1);
    stats::weighted_sum(
        &mut t_spfe,
        &group,
        &pk,
        &sk,
        &db,
        &indices,
        &[1, 1, 1, 1],
        field,
        &mut rng,
    )
    .unwrap();
    let spfe_bytes = t_spfe.report().total_bytes();

    let mut t_buy = Transcript::new(1);
    baseline::buy_the_database(&mut t_buy, &db, &indices, &Statistic::Sum).unwrap();
    let buy_bytes = t_buy.report().total_bytes();

    let yao_bytes = baseline::generic_yao_cost_estimate(n, indices.len(), 6);

    assert!(
        spfe_bytes < buy_bytes,
        "SPFE ({spfe_bytes}) must beat buying the db ({buy_bytes}) at n={n}"
    );
    assert!(
        spfe_bytes < yao_bytes,
        "SPFE ({spfe_bytes}) must beat generic Yao ({yao_bytes}) at n={n}"
    );
}

/// Theorem 2: multi-server communication ≈ k·(m·ℓ+1) field elements with
/// k = t·ℓ+1 for the sum function; in particular it grows with log n, not n.
#[test]
fn multiserver_communication_tracks_theorem2_formula() {
    let mut rng = ChaChaRng::from_u64_seed(2);
    let field = Fp64::at_least(1 << 30);
    let m = 3;
    let mut measured = Vec::new();
    for n in [256usize, 4_096, 65_536] {
        let db: Vec<u64> = (0..n as u64).map(|i| i % 100).collect();
        let params = MultiServerParams::new(n, 1, field, MsFunction::Sum { m });
        let k = params.num_servers();
        let mut t = Transcript::new(k);
        spfe::core::multiserver::run(&mut t, &params, &db, &[1, n / 2, n - 1], None, &mut rng)
            .unwrap();
        let bytes = t.report().total_bytes();
        // Formula: k queries of m·ℓ elements + k answers (8 bytes each),
        // plus framing. ℓ = log₂ n, k = ℓ+1.
        let ell = spfe::circuits::formula::index_bits(n);
        let formula = (k * (m * ell + 1) * 8) as u64;
        assert!(
            bytes < 3 * formula,
            "n={n}: measured {bytes} vs formula {formula}"
        );
        measured.push(bytes);
    }
    // 256 → 65536 multiplies n by 256 but bytes only by ~(16·17)/(8·9) ≈ 3.8.
    let growth = measured[2] as f64 / measured[0] as f64;
    assert!(growth < 6.0, "log-scaling violated: {measured:?}");
}

/// Corollary 4(1) cost split: in the PSM construction the p₀ term is
/// O(κ·C_f) — doubling the circuit roughly doubles the garbled-circuit
/// bytes but leaves the per-slot SPIR cost unchanged.
#[test]
fn psm_cost_split_matches_corollary4() {
    let (group, pk, sk, mut rng) = setup();
    let db: Vec<u64> = (0..64u64).map(|i| i % 16).collect();
    let indices = [1usize, 2, 3];

    let mut t_small = Transcript::new(1);
    let c_small = sum_circuit(3, 4);
    psm_spfe::run_yao_psm(
        &mut t_small,
        &group,
        &pk,
        &sk,
        &db,
        &indices,
        &c_small,
        4,
        &mut rng,
    )
    .unwrap();

    // Same m (same SPIR cost) but a bigger f: sum of squares-scale circuit.
    let mut t_big = Transcript::new(1);
    let c_big = spfe::circuits::builders::sum_of_squares_circuit(3, 4);
    psm_spfe::run_yao_psm(
        &mut t_big, &group, &pk, &sk, &db, &indices, &c_big, 4, &mut rng,
    )
    .unwrap();

    // Upstream (SPIR queries) identical arity → nearly identical bytes.
    let up_s = t_small.report().client_to_server;
    let up_b = t_big.report().client_to_server;
    assert!(
        (up_s as f64 / up_b as f64 - 1.0).abs() < 0.05,
        "upstream must not depend on C_f: {up_s} vs {up_b}"
    );
    // Downstream grows with C_f.
    assert!(t_big.report().server_to_client > t_small.report().server_to_client);
}

/// Table 1, κm² vs κm: the §3.3.2 variants' homomorphic overhead.
#[test]
fn select2_overhead_quadratic_vs_linear_in_m() {
    let (group, pk, sk, mut rng) = setup();
    let (spk, ssk) = Paillier::keygen(160, &mut rng);
    let n = 256;
    let db: Vec<u64> = (0..n as u64).map(|i| i % 100).collect();
    let field = Fp64::at_least(n as u64 + 1_000);

    let mut v1_overheads = Vec::new();
    let mut v2_overheads = Vec::new();
    for m in [4usize, 8] {
        let indices: Vec<usize> = (0..m).map(|j| j * 31 % n).collect();
        let mut t1 = Transcript::new(1);
        spfe::core::input_select::select2_v1(
            &mut t1, &group, &pk, &sk, &db, &indices, field, &mut rng,
        )
        .unwrap();
        v1_overheads.push(t1.bytes_for_label("sel2v1-powers"));
        let mut t2 = Transcript::new(1);
        spfe::core::input_select::select2_v2(
            &mut t2, &group, &pk, &sk, &spk, &ssk, &db, &indices, field, &mut rng,
        )
        .unwrap();
        v2_overheads
            .push(t2.bytes_for_label("sel2v2-coeffs") + t2.bytes_for_label("sel2v2-blinded"));
    }
    // Doubling m quadruples v1's overhead but only doubles v2's.
    let v1_growth = v1_overheads[1] as f64 / v1_overheads[0] as f64;
    let v2_growth = v2_overheads[1] as f64 / v2_overheads[0] as f64;
    assert!(v1_growth > 3.5 && v1_growth < 4.5, "κm²: {v1_growth}");
    assert!(v2_growth > 1.8 && v2_growth < 2.2, "κm: {v2_growth}");
}

/// Footnote 2 / §3.3: batched SPIR(n, m) beats m × SPIR(n, 1) — measured
/// through complete protocols: select2 (batched) vs select1 (independent)
/// at growing m.
#[test]
fn batched_selection_beats_independent_at_large_m() {
    let (group, pk, sk, mut rng) = setup();
    let n = 1_024;
    let db: Vec<u64> = (0..n as u64).map(|i| i % 50).collect();
    let field = Fp64::at_least(n as u64 + 500);
    let m = 16;
    let indices: Vec<usize> = (0..m).map(|j| (j * 61 + 3) % n).collect();

    let mut t_ind = Transcript::new(1);
    spfe::core::input_select::select1(&mut t_ind, &group, &pk, &sk, &db, &indices, field, &mut rng)
        .unwrap();
    let ind_bytes = t_ind.report().total_bytes();

    let mut t_bat = Transcript::new(1);
    let (_, stats) =
        spfe::pir::batched::run(&mut t_bat, &group, &pk, &sk, &db, &indices, &mut rng).unwrap();
    assert_eq!(stats.fallbacks, 0);
    let bat_bytes = t_bat.report().total_bytes();

    assert!(
        bat_bytes < ind_bytes,
        "batched {bat_bytes} must beat independent {ind_bytes} at m={m}"
    );
}

/// §4: the average+variance package costs one round and far less than two
/// independent sum protocols.
#[test]
fn avg_var_package_cheaper_than_two_runs() {
    let (group, pk, sk, mut rng) = setup();
    let n = 512;
    let db: Vec<u64> = (0..n as u64).map(|i| i % 40 + 1).collect();
    let sq: Vec<u64> = db.iter().map(|&v| v * v).collect();
    let indices = [3usize, 200, 501];
    let field = Fp64::at_least(n as u64 + 5_000 * 3);

    let mut t_pkg = Transcript::new(1);
    stats::average_and_variance(
        &mut t_pkg, &group, &pk, &sk, &db, &sq, &indices, field, &mut rng,
    )
    .unwrap();

    let mut t_two = Transcript::new(1);
    stats::weighted_sum(
        &mut t_two,
        &group,
        &pk,
        &sk,
        &db,
        &indices,
        &[1, 1, 1],
        field,
        &mut rng,
    )
    .unwrap();
    stats::weighted_sum(
        &mut t_two,
        &group,
        &pk,
        &sk,
        &sq,
        &indices,
        &[1, 1, 1],
        field,
        &mut rng,
    )
    .unwrap();

    assert_eq!(t_pkg.report().half_rounds, 2);
    // The package shares the (expensive) query side: upstream ~halves,
    // total strictly improves.
    assert!(
        t_pkg.report().client_to_server * 10 < t_two.report().client_to_server * 7,
        "package upstream {} vs two-runs {}",
        t_pkg.report().client_to_server,
        t_two.report().client_to_server
    );
    assert!(t_pkg.report().total_bytes() < t_two.report().total_bytes());
}

/// Table 1 round column, all five constructions (measured, not asserted
/// from metadata).
#[test]
fn table1_round_column_measured() {
    let (group, pk, sk, mut rng) = setup();
    let (spk, ssk) = Paillier::keygen(160, &mut rng);
    let db: Vec<u64> = (0..64u64).map(|i| i % 32).collect();
    let indices = [1usize, 30, 63];
    let field = Fp64::at_least(1 << 9);
    let circuit = sum_circuit(3, 5);

    let mut t = Transcript::new(1);
    psm_spfe::run_yao_psm(
        &mut t, &group, &pk, &sk, &db, &indices, &circuit, 5, &mut rng,
    )
    .unwrap();
    assert_eq!(t.report().half_rounds, 2, "§3.2: 1 round");

    let mut t = Transcript::new(1);
    two_phase::run_select1_yao(
        &mut t,
        &group,
        &pk,
        &sk,
        &db,
        &indices,
        &Statistic::Sum,
        field,
        &mut rng,
    )
    .unwrap();
    assert_eq!(t.report().half_rounds, 4, "§3.3.1: 2 rounds");

    let mut t = Transcript::new(1);
    two_phase::run_select2v1_yao(
        &mut t,
        &group,
        &pk,
        &sk,
        &db,
        &indices,
        &Statistic::Sum,
        field,
        &mut rng,
    )
    .unwrap();
    assert_eq!(t.report().half_rounds, 4, "§3.3.2/v1: 2 rounds");

    let mut t = Transcript::new(1);
    two_phase::run_select2v2_yao(
        &mut t,
        &group,
        &pk,
        &sk,
        &spk,
        &ssk,
        &db,
        &indices,
        &Statistic::Sum,
        field,
        &mut rng,
    )
    .unwrap();
    assert_eq!(t.report().half_rounds, 5, "§3.3.2/v2: 2.5 rounds");

    let mut t = Transcript::new(1);
    two_phase::run_select3_arith(
        &mut t,
        &group,
        &pk,
        &sk,
        &spk,
        &ssk,
        &db,
        &indices,
        &Statistic::Sum,
        &mut rng,
    )
    .unwrap();
    assert_eq!(t.report().half_rounds, 4, "§3.3.3: 2 rounds");
}
