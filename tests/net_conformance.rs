//! The cross-transport conformance matrix (DESIGN.md §15).
//!
//! Every harness driver runs over three transports — the in-memory
//! metered channel, the fault-injecting channel under the two audit mask
//! seeds, and a real loopback-TCP relay session — and must produce the
//! identical answer, the identical per-label communication bytes, the
//! identical half-round structure, the identical per-party view
//! fingerprints, and the identical deterministic op counters. For the
//! drivers with extracted sans-io cores (`spfe::harness::NET_CORE_DRIVERS`)
//! the matrix additionally covers the core itself: [`spfe::transport::pump`]
//! over the in-memory and faulty channels, and a genuine compute-mode TCP
//! session against hosted server state machines, all byte-identical to
//! the monolithic run.
//!
//! The matrix re-runs at `SPFE_THREADS` 1 and 4: thread count is outside
//! the protocol, so nothing observable may move.

mod common;
use common::*;

use spfe::obs::audit::deterministic_ops;
use spfe::transport::{pump, FaultAction, FaultPlan, FaultyChannel, Transcript};
use spfe_net::{run_driver, run_driver_relay, Server, ServerConfig};
use std::sync::Mutex;

/// Op counters are process-global; every test that reads them serializes
/// on this lock.
static LOCK: Mutex<()> = Mutex::new(());

/// Everything the matrix compares for one run.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Obs {
    digest: u64,
    report: spfe::transport::CommReport,
    labels: Vec<spfe::obs::LabelStat>,
    fingerprints: Vec<String>,
    ops: Vec<(String, u64)>,
}

fn observe(digest: u64, t: &Transcript) -> Obs {
    Obs {
        digest,
        report: t.report(),
        labels: t.report_by_label(),
        fingerprints: t
            .party_views()
            .iter()
            .map(|v| v.fingerprint_hex())
            .collect(),
        ops: deterministic_ops(&spfe::obs::ops_snapshot()),
    }
}

/// Prepares a measured run: fixture warmed (so keygen ops don't leak into
/// the first measurement), op counters zeroed, thread override applied.
fn arm(threads: usize) {
    let _ = fx();
    spfe::math::par::set_threads(Some(threads));
    spfe::obs::reset();
}

fn in_memory(d: &Driver, threads: usize) -> Obs {
    arm(threads);
    let mut ch = FaultyChannel::new(d.servers, FaultPlan::honest(), 0);
    let digest = (d.run)(&mut ch).expect("honest run");
    observe(digest, ch.inner())
}

fn faulty(d: &Driver, seed: u64, threads: usize) -> Obs {
    arm(threads);
    let mut ch = FaultyChannel::new(
        d.servers,
        FaultPlan::with_rate(seed, FaultAction::Drop, 300),
        0,
    );
    let digest = (d.run)(&mut ch).expect("masked faulty run");
    observe(digest, ch.inner())
}

fn relay_tcp(d: &Driver, addr: &str, threads: usize) -> Obs {
    arm(threads);
    let run =
        run_driver_relay(addr, d, Some(std::time::Duration::from_secs(30))).expect("relay tcp run");
    observe(run.digest, &run.transcript)
}

fn local_server() -> Server {
    Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind loopback")
}

/// The blanket-adapter half of the matrix: every driver, three
/// transports, two thread counts, one set of observables.
#[test]
fn every_driver_is_transport_invariant() {
    let _g = LOCK.lock().unwrap();
    let server = local_server();
    let addr = server.local_addr().to_string();
    for threads in [1usize, 4] {
        for d in drivers() {
            let base = in_memory(&d, threads);
            assert_eq!(
                base.digest, d.expect,
                "[{} t{threads}] in-memory digest",
                d.name
            );
            for seed in [11u64, 77] {
                let f = faulty(&d, seed, threads);
                assert_eq!(
                    f, base,
                    "[{} t{threads} seed {seed}] masked faults changed an observable",
                    d.name
                );
            }
            let r = relay_tcp(&d, &addr, threads);
            assert_eq!(
                r, base,
                "[{} t{threads}] loopback relay TCP changed an observable",
                d.name
            );
        }
    }
    spfe::math::par::set_threads(None);
}

/// Op counters must be identical across thread counts (the thread axis is
/// outside the protocol), for every driver and every transport.
#[test]
fn op_counters_are_thread_invariant() {
    let _g = LOCK.lock().unwrap();
    for d in drivers() {
        let one = in_memory(&d, 1);
        let four = in_memory(&d, 4);
        assert_eq!(
            one, four,
            "[{}] observables moved between SPFE_THREADS=1 and 4",
            d.name
        );
    }
    spfe::math::par::set_threads(None);
}

/// The sans-io half of the matrix: for every extracted core, pump over
/// in-memory and masked-faulty channels, plus a genuine compute-mode TCP
/// session, all byte-identical to the monolithic driver run.
#[test]
fn extracted_cores_match_their_monolithic_drivers() {
    let _g = LOCK.lock().unwrap();
    let server = local_server();
    let addr = server.local_addr().to_string();
    let table = drivers();
    for threads in [1usize, 4] {
        for name in NET_CORE_DRIVERS {
            let d = table
                .iter()
                .find(|d| d.name == *name)
                .expect("core driver in table");
            let base = in_memory(d, threads);

            // pump over the plain in-memory transcript.
            arm(threads);
            let mut t = Transcript::new(d.servers);
            let mut client = net_client_core(name).expect("client core");
            let mut cores = net_server_cores(name).expect("server cores");
            let digest = pump(&mut t, client.as_mut(), &mut cores).expect("pump in-memory");
            assert_eq!(
                observe(digest, &t),
                base,
                "[{name} t{threads}] pump over in-memory diverged from the monolithic run"
            );

            // pump over the fault-injecting channel at both audit seeds.
            for seed in [11u64, 77] {
                arm(threads);
                let mut ch = FaultyChannel::new(
                    d.servers,
                    FaultPlan::with_rate(seed, FaultAction::Drop, 300),
                    0,
                );
                let mut client = net_client_core(name).expect("client core");
                let mut cores = net_server_cores(name).expect("server cores");
                let digest = pump(&mut ch, client.as_mut(), &mut cores).expect("pump faulty");
                assert_eq!(
                    observe(digest, ch.inner()),
                    base,
                    "[{name} t{threads} seed {seed}] pump under masked faults diverged"
                );
            }

            // Genuine compute-mode session against hosted server cores.
            arm(threads);
            let run = run_driver(&addr, name, Some(std::time::Duration::from_secs(30)))
                .expect("compute tcp run");
            assert_eq!(
                run.mode,
                spfe::transport::SessionMode::Compute,
                "[{name}] core driver must run in compute mode"
            );
            assert_eq!(
                observe(run.digest, &run.transcript),
                base,
                "[{name} t{threads}] compute-mode TCP diverged from the monolithic run"
            );
        }
    }
    spfe::math::par::set_threads(None);
}

/// Concurrent sessions multiplex on one listener without interference:
/// several drivers at once, every digest right, every session completed.
#[test]
fn concurrent_sessions_multiplex_on_one_listener() {
    let _g = LOCK.lock().unwrap();
    let _ = fx();
    spfe::math::par::set_threads(Some(1));
    let server = local_server();
    let addr = server.local_addr().to_string();
    let names = [
        "xor2",
        "poly_it",
        "multiserver",
        "hom_pir",
        "xor2",
        "poly_it",
    ];
    let handles: Vec<_> = names
        .iter()
        .map(|name| {
            let addr = addr.clone();
            let name = (*name).to_owned();
            std::thread::spawn(move || {
                let run = run_driver(&addr, &name, Some(std::time::Duration::from_secs(30)))
                    .expect("concurrent run");
                (name, run.digest)
            })
        })
        .collect();
    let table = drivers();
    for h in handles {
        let (name, digest) = h.join().expect("session thread");
        let d = table.iter().find(|d| d.name == name).unwrap();
        assert_eq!(digest, d.expect, "[{name}] concurrent session digest");
    }
    spfe::math::par::set_threads(None);
}
