//! Cross-crate integration tests: every SPFE construction against the same
//! databases and ground truth, exercising the full stack (math → crypto →
//! ot/pir → mpc → core) through the public facade.

use spfe::circuits::builders::{frequency_circuit, sum_circuit};
use spfe::circuits::formula::{BinOp, Formula};
use spfe::core::database::{reference, Database};
use spfe::core::input_select::select1;
use spfe::core::multiserver::{self, MsFunction, MultiServerParams};
use spfe::core::psm_spfe;
use spfe::core::stats;
use spfe::core::two_phase;
use spfe::core::Statistic;
use spfe::crypto::{ChaChaRng, HomomorphicScheme, Paillier, PaillierPk, PaillierSk, SchnorrGroup};
use spfe::math::{Fp64, XorShiftRng};
use spfe::pir::poly_it::PolyItParams;
use spfe::transport::Transcript;

struct Setup {
    group: SchnorrGroup,
    pk: PaillierPk,
    sk: PaillierSk,
    spk: PaillierPk,
    ssk: PaillierSk,
    rng: ChaChaRng,
}

fn setup() -> Setup {
    let mut rng = ChaChaRng::from_u64_seed(0xE2E);
    let group = SchnorrGroup::generate(96, &mut rng);
    let (pk, sk) = Paillier::keygen(160, &mut rng);
    let (spk, ssk) = Paillier::keygen(160, &mut rng);
    Setup {
        group,
        pk,
        sk,
        spk,
        ssk,
        rng,
    }
}

#[test]
fn all_five_singleserver_constructions_agree() {
    let mut s = setup();
    let db: Vec<u64> = (0..128u64).map(|i| (i * 29 + 7) % 200).collect();
    let indices = [5usize, 63, 99, 127];
    let truth = reference::sum(&db, &indices);
    let field = Fp64::at_least(1_000);

    // §3.2 PSM.
    let circuit = sum_circuit(indices.len(), 8);
    let mut t = Transcript::new(1);
    let got = psm_spfe::run_yao_psm(
        &mut t, &s.group, &s.pk, &s.sk, &db, &indices, &circuit, 8, &mut s.rng,
    )
    .unwrap();
    assert_eq!(got, truth, "§3.2");

    // §3.3.1 + Yao.
    let mut t = Transcript::new(1);
    let got = two_phase::run_select1_yao(
        &mut t,
        &s.group,
        &s.pk,
        &s.sk,
        &db,
        &indices,
        &Statistic::Sum,
        field,
        &mut s.rng,
    )
    .unwrap();
    assert_eq!(got[0], truth, "§3.3.1");

    // §3.3.2 v1 + Yao.
    let mut t = Transcript::new(1);
    let got = two_phase::run_select2v1_yao(
        &mut t,
        &s.group,
        &s.pk,
        &s.sk,
        &db,
        &indices,
        &Statistic::Sum,
        field,
        &mut s.rng,
    )
    .unwrap();
    assert_eq!(got[0], truth, "§3.3.2/v1");

    // §3.3.2 v2 + Yao.
    let mut t = Transcript::new(1);
    let got = two_phase::run_select2v2_yao(
        &mut t,
        &s.group,
        &s.pk,
        &s.sk,
        &s.spk,
        &s.ssk,
        &db,
        &indices,
        &Statistic::Sum,
        field,
        &mut s.rng,
    )
    .unwrap();
    assert_eq!(got[0], truth, "§3.3.2/v2");

    // §3.3.3 + §3.3.4.
    let mut t = Transcript::new(1);
    let got = two_phase::run_select3_arith(
        &mut t,
        &s.group,
        &s.pk,
        &s.sk,
        &s.spk,
        &s.ssk,
        &db,
        &indices,
        &Statistic::Sum,
        &mut s.rng,
    )
    .unwrap();
    assert_eq!(got[0].to_u64().unwrap(), truth, "§3.3.3");
}

#[test]
fn multi_server_and_single_server_agree() {
    let mut s = setup();
    let db: Vec<u64> = (0..64u64).map(|i| i * 3 + 1).collect();
    let indices = [0usize, 31, 63];
    let truth = reference::sum(&db, &indices);
    let field = Fp64::at_least(1_000);

    let params = MultiServerParams::new(db.len(), 2, field, MsFunction::Sum { m: 3 });
    let mut t = Transcript::new(params.num_servers());
    let ms = multiserver::run(&mut t, &params, &db, &indices, Some(42), &mut s.rng).unwrap();
    assert_eq!(ms, truth);

    let mut t = Transcript::new(1);
    let ws = stats::weighted_sum(
        &mut t,
        &s.group,
        &s.pk,
        &s.sk,
        &db,
        &indices,
        &[1, 1, 1],
        field,
        &mut s.rng,
    )
    .unwrap();
    assert_eq!(ws, truth);
}

#[test]
fn census_workload_full_pipeline() {
    let mut s = setup();
    let mut wrng = XorShiftRng::new(0xCE25);
    let db = Database::census(400, &mut wrng);
    let bracket = db.public()[10].age_bracket;
    let mut sample = db.select_by_age(bracket);
    sample.truncate(6);
    assert!(sample.len() >= 2);

    let field = db.field_for_sums(sample.len());
    let mut t = Transcript::new(1);
    let got = stats::weighted_sum(
        &mut t,
        &s.group,
        &s.pk,
        &s.sk,
        db.values(),
        &sample,
        &vec![1; sample.len()],
        field,
        &mut s.rng,
    )
    .unwrap();
    assert_eq!(got, reference::sum(db.values(), &sample));
}

#[test]
fn boolean_formula_spfe_multiserver() {
    let mut s = setup();
    // "was product A patented AND (B OR C)?" over a Boolean database.
    let db: Vec<u64> = (0..32).map(|i| (i % 3 == 0) as u64).collect();
    let phi = Formula::gate(
        BinOp::And,
        Formula::leaf(0),
        Formula::gate(BinOp::Or, Formula::leaf(1), Formula::leaf(2)),
    );
    let field = Fp64::at_least(10_000);
    let params = MultiServerParams::new(db.len(), 1, field, MsFunction::Formula(phi.clone()));
    for indices in [[0usize, 3, 7], [1, 2, 4], [30, 9, 6]] {
        let mut t = Transcript::new(params.num_servers());
        let got = multiserver::run(&mut t, &params, &db, &indices, None, &mut s.rng).unwrap();
        let expect = phi.evaluate(&[
            db[indices[0]] == 1,
            db[indices[1]] == 1,
            db[indices[2]] == 1,
        ]);
        assert_eq!(got, expect as u64, "{indices:?}");
    }
}

#[test]
fn bp_psm_matches_formula_semantics() {
    let mut s = setup();
    let db: Vec<u64> = (0..16).map(|i| (i % 2) as u64).collect();
    let bp = spfe::circuits::BranchingProgram::and_of(3);
    let field = Fp64::at_least(1_000_003);
    let params = PolyItParams::new(db.len(), 1, field);
    let indices = [1usize, 3, 5]; // all odd → all 1 → AND = 1
    let mut t = Transcript::new(params.num_servers());
    let got = psm_spfe::run_bp_psm(&mut t, &params, &bp, &db, &indices, 9, &mut s.rng).unwrap();
    assert_eq!(got, 1);
    let indices2 = [0usize, 3, 5]; // db[0] = 0 → AND = 0
    let mut t2 = Transcript::new(params.num_servers());
    let got2 = psm_spfe::run_bp_psm(&mut t2, &params, &bp, &db, &indices2, 10, &mut s.rng).unwrap();
    assert_eq!(got2, 0);
}

#[test]
fn frequency_both_routes_agree_on_census_data() {
    let mut s = setup();
    let db = vec![10u64, 20, 10, 30, 10, 20, 40, 10];
    let indices = [0usize, 2, 3, 4, 7];
    let keyword = 10u64;
    let truth = reference::frequency(&db, &indices, keyword);
    let field = Fp64::at_least(101);

    let mut t = Transcript::new(1);
    let shares = select1(
        &mut t, &s.group, &s.pk, &s.sk, &db, &indices, field, &mut s.rng,
    )
    .unwrap();
    let f1 = stats::frequency(&mut t, &s.pk, &s.sk, &shares, keyword, &mut s.rng).unwrap();

    let mut t2 = Transcript::new(1);
    let f2 = two_phase::run_select1_yao(
        &mut t2,
        &s.group,
        &s.pk,
        &s.sk,
        &db,
        &indices,
        &Statistic::Frequency { keyword },
        field,
        &mut s.rng,
    )
    .unwrap()[0];

    // And the PSM route with a frequency circuit.
    let circuit = frequency_circuit(indices.len(), 6, keyword);
    let mut t3 = Transcript::new(1);
    let f3 = psm_spfe::run_yao_psm(
        &mut t3, &s.group, &s.pk, &s.sk, &db, &indices, &circuit, 6, &mut s.rng,
    )
    .unwrap();

    assert_eq!(f1, truth);
    assert_eq!(f2, truth);
    assert_eq!(f3, truth);
}

#[test]
fn goldwasser_micali_as_alternative_scheme() {
    // The HomomorphicPk abstraction lets GM stand in where plaintexts are
    // bits: here, a toy select1 over Z_2 with the Boolean Yao phase.
    use spfe::crypto::{GoldwasserMicali, HomomorphicPk, HomomorphicSk};
    let mut rng = ChaChaRng::from_u64_seed(0x6A11);
    let (gpk, gsk) = GoldwasserMicali::keygen(128, &mut rng);
    // XOR-share a bit through the GM layer.
    let x = spfe::math::Nat::one();
    let a = spfe::math::Nat::zero();
    let ct = gpk.add(&gpk.encrypt(&x, &mut rng), &gpk.encrypt(&a, &mut rng));
    assert_eq!(gsk.decrypt(&ct), spfe::math::Nat::one());
}
