//! Distributed session tracing (DESIGN.md §17).
//!
//! Three layers of the causal-clock design are held here:
//!
//! * [`pump`] stamps every logical delivery exactly once — under the two
//!   audit mask seeds the retried deliveries reuse their stamps, so the
//!   Lamport sequence is identical to the honest run's.
//! * [`SocketChannel`] absorbs `TraceCtx` frames transparently (nothing
//!   metered) and merges the carried stamp into its own clock, so every
//!   receive stamp lands strictly after the matching send.
//! * A genuine loopback-TCP run — relay and compute mode, at
//!   `SPFE_THREADS` 1 and 4 — yields client and server journals that
//!   `spfe_bench::nettrace` merges into one causally consistent
//!   timeline: the cross-process gate the CI smoke stage also runs over
//!   the real binaries.

mod common;
use common::*;

use spfe::transport::{pump, FaultAction, FaultPlan, FaultyChannel, Frame, FrameKind};
use spfe_bench::nettrace;
use spfe_net::{run_driver, Server, ServerConfig};
use spfe_obs::trace::{self, EventKind, Trace};
use std::io::{Read, Write};
use std::sync::Mutex;

/// The trace journal is process-global; every test here captures it and
/// therefore serializes on this lock.
static LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with the journal on and returns what it recorded.
fn captured(f: impl FnOnce()) -> Trace {
    trace::reset();
    trace::set_tracing(true);
    f();
    trace::set_tracing(false);
    trace::take()
}

/// `(send, label, bytes, half_round, lamport)` of one journalled wire
/// event.
type WireEvent = (bool, &'static str, u64, u32, u32);

/// Every wire event in the trace, in journal order.
fn net_events(trace: &Trace) -> Vec<WireEvent> {
    let mut out = Vec::new();
    for t in &trace.threads {
        for e in &t.events {
            let send = match e.kind {
                EventKind::NetSend => true,
                EventKind::NetRecv => false,
                _ => continue,
            };
            let (half_round, lamport) = spfe_obs::unpack_net_stamp(e.b);
            out.push((send, e.label, e.a, half_round, lamport));
        }
    }
    out
}

fn pump_core(name: &str, plan: FaultPlan) -> (u64, Vec<WireEvent>) {
    let table = drivers();
    let d = table.iter().find(|d| d.name == name).expect("core driver");
    let mut digest = 0;
    let servers = d.servers;
    let trace = captured(|| {
        let mut ch = FaultyChannel::new(servers, plan, 0);
        let mut client = net_client_core(name).expect("client core");
        let mut cores = net_server_cores(name).expect("server cores");
        digest = pump(&mut ch, client.as_mut(), &mut cores).expect("pump run");
    });
    (digest, net_events(&trace))
}

/// Satellite: pump's Lamport stamps are issued once per *logical*
/// delivery, so under the masked audit fault seeds (retried deliveries)
/// the stamp sequence is byte-identical to the honest run's, and every
/// receive lands strictly after its send.
#[test]
fn pump_stamps_survive_masked_fault_seeds() {
    let _g = LOCK.lock().unwrap();
    let _ = fx();
    for name in NET_CORE_DRIVERS {
        let (digest, honest) = pump_core(name, FaultPlan::honest());
        assert!(!honest.is_empty(), "[{name}] journal captured the run");
        // pump emits send/recv pairs synchronously: check pairwise order.
        assert_eq!(honest.len() % 2, 0);
        for pair in honest.chunks(2) {
            let (send, recv) = (pair[0], pair[1]);
            assert!(send.0 && !recv.0, "[{name}] events alternate send/recv");
            assert_eq!(send.1, recv.1, "[{name}] pair shares its label");
            assert_eq!(send.3, recv.3, "[{name}] pair shares its half-round");
            assert!(
                recv.4 > send.4,
                "[{name}] receive stamp {} is after send stamp {}",
                recv.4,
                send.4
            );
        }
        for seed in [11u64, 77] {
            let (d2, faulty) = pump_core(name, FaultPlan::with_rate(seed, FaultAction::Drop, 300));
            assert_eq!(d2, digest, "[{name} seed {seed}] digest");
            assert_eq!(
                faulty, honest,
                "[{name} seed {seed}] masked retries moved a Lamport stamp"
            );
        }
    }
}

/// An in-memory peer answering reads from a scripted byte queue.
struct Script {
    replies: std::collections::VecDeque<u8>,
    written: Vec<u8>,
}

impl Script {
    fn relay_for(frames: &[Frame]) -> Script {
        let mut replies = std::collections::VecDeque::new();
        for f in frames {
            replies.extend(f.to_bytes());
        }
        Script {
            replies,
            written: Vec::new(),
        }
    }
}

impl Read for Script {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = buf.len().min(self.replies.len());
        for b in buf.iter_mut().take(n) {
            *b = self.replies.pop_front().unwrap();
        }
        Ok(n)
    }
}

impl Write for Script {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.written.extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Satellite: `SocketChannel` merges the peer's carried stamp (receive
/// stamp strictly above both clocks), absorbs the `TraceCtx` frame
/// without metering it, and keeps its own stamps monotone.
#[test]
fn socket_channel_merges_carried_stamps_and_meters_nothing_extra() {
    use spfe::transport::{Channel, Direction, SessionMode, SocketChannel};
    let _g = LOCK.lock().unwrap();
    let hello_ack = Frame {
        kind: FrameKind::Hello,
        client_to_server: false,
        session: 9,
        half_round: 0,
        server: 0,
        label: "toy".to_owned(),
        payload: vec![0],
    };
    // The peer's echo rides behind a TraceCtx carrying stamp 9.
    let script = Script::relay_for(&[
        hello_ack,
        Frame::trace_ctx(false, 9, 1, 9),
        Frame::msg(true, 9, 0, 0, "q", vec![1, 2, 3]),
    ]);
    let mut report = None;
    let trace = captured(|| {
        let mut ch = SocketChannel::connect(script, 1, "toy", SessionMode::Relay, 9).unwrap();
        let got = ch
            .transfer_raw(Direction::ClientToServer(0), "q", &[1, 2, 3])
            .unwrap();
        assert_eq!(got, vec![1, 2, 3]);
        ch.bye();
        report = Some(ch.transcript().report());
    });
    // TraceCtx is never metered: one message, three payload bytes.
    let report = report.unwrap();
    assert_eq!((report.messages, report.client_to_server), (1, 3));
    let events = net_events(&trace);
    // send q (tick 1), recv echo (observe 9 → 10), send bye (tick 11).
    assert_eq!(
        events
            .iter()
            .map(|&(send, label, _, _, lamport)| (send, label, lamport))
            .collect::<Vec<_>>(),
        vec![(true, "q", 1), (false, "q", 10), (true, "net-bye", 11)]
    );
    // The channel journalled its session slice around the wire events.
    let opens = trace.threads.iter().flat_map(|t| &t.events).filter(|e| {
        matches!(
            e.kind,
            EventKind::NetSessionOpen | EventKind::NetSessionClose
        )
    });
    assert_eq!(opens.count(), 2, "balanced open/close");
}

/// Splits an in-process capture into the client and server halves: both
/// parties share one journal here, but each thread belongs to exactly
/// one party, and within a session the client speaks first (its first
/// wire event is a send) while the server listens first.
fn split_parties(trace: &Trace) -> (Trace, Trace) {
    let (mut client, mut server) = (Trace::default(), Trace::default());
    client.cap = trace.cap;
    server.cap = trace.cap;
    for t in &trace.threads {
        let first = t.events.iter().find_map(|e| match e.kind {
            EventKind::NetSend => Some(true),
            EventKind::NetRecv => Some(false),
            _ => None,
        });
        match first {
            Some(true) => client.threads.push(t.clone()),
            Some(false) => server.threads.push(t.clone()),
            None => {}
        }
    }
    (client, server)
}

/// The acceptance gate, in-process: relay and compute sessions over real
/// loopback TCP at `SPFE_THREADS` 1 and 4; the captured client and
/// server journals must merge into one causally consistent timeline
/// with both process tracks and per-pair flow arrows.
#[test]
fn tcp_journals_merge_into_a_causally_consistent_timeline() {
    let _g = LOCK.lock().unwrap();
    let _ = fx();
    let table = drivers();
    let compute = NET_CORE_DRIVERS[0];
    let relay = table
        .iter()
        .find(|d| !NET_CORE_DRIVERS.contains(&d.name))
        .expect("a relay-mode driver")
        .name;
    for threads in [1usize, 4] {
        spfe::math::par::set_threads(Some(threads));
        let mut server =
            Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind loopback");
        let addr = server.local_addr().to_string();
        let trace = captured(|| {
            // The client lives on its own thread so its journal flushes
            // on thread exit, exactly like a separate client process.
            let addr = addr.clone();
            std::thread::spawn(move || {
                for name in [relay, compute] {
                    let run = run_driver(&addr, name, Some(std::time::Duration::from_secs(30)))
                        .expect("tcp run");
                    let d = drivers().into_iter().find(|d| d.name == name).unwrap();
                    assert_eq!(run.digest, d.expect, "[{name}] digest over tcp");
                }
            })
            .join()
            .expect("client thread");
            server.shutdown();
        });
        let (client_half, server_half) = split_parties(&trace);
        let client = nettrace::parse_party(&spfe_obs::export::perfetto_json(&client_half))
            .expect("client journal parses");
        let srv = nettrace::parse_party(&spfe_obs::export::perfetto_json(&server_half))
            .expect("server journal parses");
        assert_eq!(client.sessions.len(), 2, "relay + compute session");
        let (timeline, report) = nettrace::merge("e2e", &client, &srv);
        assert_eq!(
            report.violations,
            Vec::<String>::new(),
            "[t{threads}] causal gate"
        );
        assert_eq!(report.sessions, 2);
        assert!(report.flows > 0);
        // Modes journalled as declared: relay = 0, compute = 1.
        for s in &client.sessions {
            let want = u64::from(s.driver == compute);
            assert_eq!(s.mode, want, "[{}] mode code", s.driver);
            assert_eq!(srv.session(s.session).unwrap().mode, want);
        }
        // The merged artifact: ≥ 2 process tracks and flow arrows.
        let doc = spfe_obs::json::parse(&timeline).expect("merged timeline is JSON");
        let events = doc
            .get("traceEvents")
            .and_then(spfe_obs::json::Json::as_arr)
            .unwrap();
        let ph = |p: &str| {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(spfe_obs::json::Json::as_str) == Some(p))
                .count()
        };
        assert!(ph("M") >= 2, "process-name metadata tracks");
        assert_eq!(ph("s"), report.flows, "flow starts");
        assert_eq!(ph("f"), report.flows, "flow finishes");
        assert_eq!(ph("X"), report.flows, "synthesized on-wire slices");
    }
    spfe::math::par::set_threads(None);
}
