//! Trace conformance suite: every protocol driver's event journal is
//! well-formed (DESIGN.md §11).
//!
//! The driver table lives in `tests/common/mod.rs` (shared with the
//! adversarial suite). For each driver, the journal captured around an
//! end-to-end run must satisfy:
//!
//! * **balance** — span open/close events nest as a well-bracketed stack
//!   per thread, with matching labels, and no span is left open;
//! * **monotonicity** — per-thread timestamps never go backwards;
//! * **attribution** — every wire send/receive (and every op delta) falls
//!   inside some open span, so exporters can always attribute cost;
//! * these hold at `SPFE_THREADS=1` and `4`, and under fault injection
//!   (scripted drops and a seeded mixed plan), where the journal must
//!   additionally carry the fault and retry events.
//!
//! The journal is process-global, so the tests in this binary serialize
//! on a local lock. The adversarial suite runs in a separate process and
//! never enables tracing, so the two cannot interfere.

#![cfg(feature = "obs")]

mod common;

use common::*;
use spfe::math::par;
use spfe::obs::trace::{self, EventKind, Trace};
use spfe::transport::{FaultAction, FaultPlan, FaultyChannel, ProtocolError};
use std::sync::{Mutex, MutexGuard, OnceLock};

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Restores the global worker-thread override when a test exits (even by
/// panic), so a failure doesn't leak its thread count into later tests.
struct ThreadsGuard;

impl ThreadsGuard {
    fn set(n: usize) -> ThreadsGuard {
        par::set_threads(Some(n));
        ThreadsGuard
    }
}

impl Drop for ThreadsGuard {
    fn drop(&mut self) {
        par::set_threads(None);
    }
}

/// Runs one driver under tracing and returns its journal plus the
/// protocol outcome.
fn capture(d: &Driver, plan: FaultPlan, tolerance: usize) -> (Trace, Result<u64, ProtocolError>) {
    spfe::obs::reset();
    trace::reset();
    trace::set_tracing(true);
    let mut ch = FaultyChannel::new(d.servers, plan, tolerance);
    let got = (d.run)(&mut ch);
    trace::set_tracing(false);
    (trace::take(), got)
}

/// Checks the three conformance properties on every thread of `tr`;
/// returns the total number of wire events observed.
fn assert_well_formed(name: &str, ctx: &str, tr: &Trace) -> usize {
    assert!(tr.total_events() > 0, "[{name} × {ctx}] empty trace");
    assert_eq!(tr.total_dropped(), 0, "[{name} × {ctx}] events dropped");
    let mut wires = 0;
    for th in &tr.threads {
        let mut stack: Vec<&str> = Vec::new();
        let mut last = 0u64;
        for ev in &th.events {
            assert!(
                ev.t_ns >= last,
                "[{name} × {ctx}] thread {}: time went backwards at '{}' \
                 ({} < {last})",
                th.thread,
                ev.label,
                ev.t_ns,
            );
            last = ev.t_ns;
            match ev.kind {
                EventKind::SpanOpen => stack.push(ev.label),
                EventKind::SpanClose => {
                    let open = stack.pop().unwrap_or_else(|| {
                        panic!(
                            "[{name} × {ctx}] thread {}: close '{}' without open",
                            th.thread, ev.label
                        )
                    });
                    assert_eq!(
                        open, ev.label,
                        "[{name} × {ctx}] thread {}: mismatched close",
                        th.thread
                    );
                }
                EventKind::OpDelta => {
                    assert!(
                        !stack.is_empty(),
                        "[{name} × {ctx}] thread {}: op delta '{}' outside any span",
                        th.thread,
                        ev.label
                    );
                    assert!(ev.a > 0, "[{name} × {ctx}] zero-valued op delta");
                }
                EventKind::WireUp | EventKind::WireDown => {
                    wires += 1;
                    assert!(
                        !stack.is_empty(),
                        "[{name} × {ctx}] thread {}: wire event '{}' outside any span",
                        th.thread,
                        ev.label
                    );
                }
                EventKind::MemDelta => {
                    assert!(
                        !stack.is_empty(),
                        "[{name} × {ctx}] thread {}: mem delta '{}' outside any span",
                        th.thread,
                        ev.label
                    );
                    assert!(ev.a > 0, "[{name} × {ctx}] zero-valued mem delta");
                }
                // Net-session events (DESIGN.md §17) are slices of their
                // own, not spans: tests/net_trace.rs pins their shape.
                EventKind::Fault
                | EventKind::Retry
                | EventKind::ViewSeal
                | EventKind::NetSessionOpen
                | EventKind::NetSessionClose
                | EventKind::NetSend
                | EventKind::NetRecv => {}
            }
        }
        assert!(
            stack.is_empty(),
            "[{name} × {ctx}] thread {}: unclosed spans {stack:?}",
            th.thread
        );
    }
    wires
}

#[test]
fn every_driver_trace_is_well_formed_single_threaded() {
    let _g = lock();
    let _t = ThreadsGuard::set(1);
    for d in drivers() {
        let (tr, got) = capture(&d, FaultPlan::honest(), 0);
        assert_eq!(got, Ok(d.expect), "[{}] honest run under tracing", d.name);
        let wires = assert_well_formed(d.name, "threads=1", &tr);
        assert!(
            wires >= 2,
            "[{}] at least one query/answer pair journalled, got {wires}",
            d.name
        );
    }
}

#[test]
fn every_driver_trace_is_well_formed_with_four_worker_threads() {
    let _g = lock();
    let _t = ThreadsGuard::set(4);
    for d in drivers() {
        let (tr, got) = capture(&d, FaultPlan::honest(), 0);
        assert_eq!(got, Ok(d.expect), "[{}] honest run, 4 threads", d.name);
        let wires = assert_well_formed(d.name, "threads=4", &tr);
        assert!(wires >= 2, "[{}] wire events journalled", d.name);
    }
}

#[test]
fn scripted_drops_journal_fault_and_retry_events() {
    let _g = lock();
    let _t = ThreadsGuard::set(1);
    for d in drivers() {
        // Drop the first delivery: the bounded retry masks it, and the
        // journal must carry both the injection and the re-send.
        let plan = FaultPlan::scripted(vec![(0, FaultAction::Drop)]);
        let (tr, got) = capture(&d, plan, 2);
        assert_eq!(got, Ok(d.expect), "[{}] masked drop under tracing", d.name);
        assert_well_formed(d.name, "drop@0", &tr);
        let events: Vec<_> = tr.threads.iter().flat_map(|t| &t.events).collect();
        assert!(
            events
                .iter()
                .any(|e| e.kind == EventKind::Fault && e.label == "drop"),
            "[{}] drop injection not journalled",
            d.name
        );
        assert!(
            events
                .iter()
                .any(|e| e.kind == EventKind::Retry && e.a == 1),
            "[{}] first retry not journalled",
            d.name
        );
    }
}

#[test]
fn seeded_mixed_faults_keep_the_trace_well_formed() {
    let _g = lock();
    let _t = ThreadsGuard::set(1);
    use FaultAction::*;
    let seed = FaultPlan::seed_from_env(0x7EA5E);
    let rates = vec![(Drop, 60), (Delay(1), 60), (Duplicate, 60), (Reorder, 40)];
    for d in drivers() {
        let (tr, got) = capture(&d, FaultPlan::mixed(seed, rates.clone()), 3);
        // All classes in the mix are masked; a seed may still exhaust the
        // retry budget, which is a typed transient outcome — but whatever
        // happened on the wire, the journal must stay well-formed.
        if let Err(e) = &got {
            assert!(
                e.is_transient() || matches!(e, ProtocolError::RetriesExhausted { .. }),
                "[{}] unexpected error class under seed {seed:#x}: {e:?}",
                d.name
            );
        }
        assert_well_formed(d.name, "mixed-seed", &tr);
    }
}

#[test]
fn trace_window_isolation_between_captures() {
    let _g = lock();
    let _t = ThreadsGuard::set(1);
    let table = drivers();
    let d = table.iter().find(|d| d.name == "hom_pir").unwrap();

    // Two identical captures: the second journal must not contain
    // residue from the first (generation bump discards stale buffers).
    let (a, _) = capture(d, FaultPlan::honest(), 0);
    let (b, _) = capture(d, FaultPlan::honest(), 0);
    assert_eq!(a.total_events(), b.total_events(), "windows leak events");

    // Events recorded while tracing is off never surface later.
    trace::reset();
    let mut ch = FaultyChannel::new(d.servers, FaultPlan::honest(), 0);
    let _ = (d.run)(&mut ch);
    assert_eq!(trace::take().total_events(), 0, "untraced run journalled");
}
