//! Property-based end-to-end tests: protocol correctness over randomized
//! databases, index sets, and parameters, plus decoder robustness against
//! arbitrary bytes.
//!
//! Crypto setup is expensive, so fixtures are shared through a `OnceLock`
//! and the case counts kept moderate.

use proptest::prelude::*;
use spfe::core::input_select;
use spfe::core::multiserver::{self, MsFunction, MultiServerParams};
use spfe::core::stats;
use spfe::crypto::{ChaChaRng, HomomorphicScheme, Paillier, PaillierPk, PaillierSk, SchnorrGroup};
use spfe::math::Fp64;
use spfe::transport::{Transcript, Wire};
use std::sync::{Mutex, OnceLock};

struct Fixture {
    group: SchnorrGroup,
    pk: PaillierPk,
    sk: PaillierSk,
    spk: PaillierPk,
    ssk: PaillierSk,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let mut rng = ChaChaRng::from_u64_seed(0x9209);
        let group = SchnorrGroup::generate(96, &mut rng);
        let (pk, sk) = Paillier::keygen(160, &mut rng);
        let (spk, ssk) = Paillier::keygen(160, &mut rng);
        Fixture {
            group,
            pk,
            sk,
            spk,
            ssk,
        }
    })
}

fn rng() -> &'static Mutex<ChaChaRng> {
    static RNG: OnceLock<Mutex<ChaChaRng>> = OnceLock::new();
    RNG.get_or_init(|| Mutex::new(ChaChaRng::from_u64_seed(0xF00D)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn prop_select1_reconstructs_any_db(
        db in proptest::collection::vec(0u64..60_000, 4..40),
        picks in proptest::collection::vec(any::<proptest::sample::Index>(), 1..6),
    ) {
        let f = fixture();
        let mut r = rng().lock().unwrap();
        let field = Fp64::new(65_537).unwrap();
        let indices: Vec<usize> = picks.iter().map(|p| p.index(db.len())).collect();
        let mut t = Transcript::new(1);
        let shares =
            input_select::select1(&mut t, &f.group, &f.pk, &f.sk, &db, &indices, field, &mut *r)
                .unwrap();
        let expect: Vec<u64> = indices.iter().map(|&i| db[i]).collect();
        prop_assert_eq!(shares.reconstruct(), expect);
    }

    #[test]
    fn prop_select3_reconstructs_any_db(
        db in proptest::collection::vec(0u64..1_000, 4..30),
        picks in proptest::collection::vec(any::<proptest::sample::Index>(), 1..5),
    ) {
        let f = fixture();
        let mut r = rng().lock().unwrap();
        let indices: Vec<usize> = picks.iter().map(|p| p.index(db.len())).collect();
        let mut t = Transcript::new(1);
        let shares = input_select::select3(
            &mut t, &f.group, &f.pk, &f.sk, &f.spk, &f.ssk, &db, &indices, 10, &mut *r,
        )
        .unwrap();
        let got = shares.reconstruct();
        for (g, &i) in got.iter().zip(&indices) {
            prop_assert_eq!(g.to_u64().unwrap(), db[i]);
        }
    }

    #[test]
    fn prop_weighted_sum_any_weights(
        db in proptest::collection::vec(0u64..500, 8..40),
        picks in proptest::collection::vec(any::<proptest::sample::Index>(), 2..5),
        seed in any::<u64>(),
    ) {
        let f = fixture();
        let mut r = rng().lock().unwrap();
        let field = Fp64::new(65_537).unwrap();
        let indices: Vec<usize> = picks.iter().map(|p| p.index(db.len())).collect();
        let weights: Vec<u64> = (0..indices.len() as u64).map(|k| (seed >> (k % 8)) % 16).collect();
        let mut t = Transcript::new(1);
        let got = stats::weighted_sum(
            &mut t, &f.group, &f.pk, &f.sk, &db, &indices, &weights, field, &mut *r,
        )
        .unwrap();
        let expect = indices
            .iter()
            .zip(&weights)
            .fold(0u64, |acc, (&i, &w)| {
                field.add(acc, field.mul(field.from_u64(w), field.from_u64(db[i])))
            });
        prop_assert_eq!(got, expect);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn prop_multiserver_sum_any_db(
        db in proptest::collection::vec(0u64..10_000, 2..64),
        picks in proptest::collection::vec(any::<proptest::sample::Index>(), 1..5),
        t_priv in 1usize..3,
    ) {
        let mut r = rng().lock().unwrap();
        let field = Fp64::new(1_000_003).unwrap();
        let indices: Vec<usize> = picks.iter().map(|p| p.index(db.len())).collect();
        let params =
            MultiServerParams::new(db.len(), t_priv, field, MsFunction::Sum { m: indices.len() });
        let mut t = Transcript::new(params.num_servers());
        let got = multiserver::run(&mut t, &params, &db, &indices, None, &mut *r).unwrap();
        let expect = indices.iter().fold(0u64, |a, &i| field.add(a, db[i]));
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn prop_decoders_never_panic_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        // Every protocol message decoder must reject arbitrary bytes with
        // an error, never a panic.
        let _ = spfe::pir::SpirQuery::from_bytes(&bytes);
        let _ = spfe::pir::SpirAnswer::from_bytes(&bytes);
        let _ = spfe::pir::spir::SpirWordsAnswer::from_bytes(&bytes);
        let _ = spfe::pir::xor2::Xor2Query::from_bytes(&bytes);
        let _ = spfe::pir::hom_pir::HomPirQuery::from_bytes(&bytes);
        let _ = spfe::pir::poly_it::PolyItQuery::from_bytes(&bytes);
        let _ = spfe::ot::OtSetup::from_bytes(&bytes);
        let _ = spfe::ot::OtnQuery::from_bytes(&bytes);
        let _ = spfe::ot::OtnAnswer::from_bytes(&bytes);
        let _ = spfe::mpc::GarbledCircuit::from_bytes(&bytes);
        let _ = spfe::pir::recursive::RecursiveQuery::from_bytes(&bytes);
        let _ = spfe::core::multiserver::MsQuery::from_bytes(&bytes);
        let _ = spfe::math::Nat::from_bytes(&bytes);
    }

    #[test]
    fn prop_real_message_truncations_and_bit_flips_stay_typed(
        cut in any::<proptest::sample::Index>(),
        bit in any::<proptest::sample::Index>(),
    ) {
        // Valid encodings of *real* protocol messages (not just garbage):
        // every strict prefix must be rejected with a WireError, and any
        // single-bit flip must decode or error — never panic. This is the
        // byte-level half of the adversarial conformance contract
        // (DESIGN.md §10); tests/adversarial.rs drives the same faults
        // through the full drivers.
        fn check<T: Wire>(name: &str, v: &T, cut: &proptest::sample::Index, bit: &proptest::sample::Index) {
            let enc = v.to_bytes();
            assert!(T::from_bytes(&enc).is_ok(), "{name}: valid encoding rejected");
            let keep = cut.index(enc.len());
            assert!(
                T::from_bytes(&enc[..keep]).is_err(),
                "{name}: strict prefix {keep}/{} decoded",
                enc.len()
            );
            let mut flipped = enc.clone();
            let b = bit.index(flipped.len() * 8);
            flipped[b / 8] ^= 1 << (b % 8);
            let _ = T::from_bytes(&flipped);
        }
        let f = fixture();
        let mut r = rng().lock().unwrap();
        let db: Vec<u64> = (0..16u64).map(|i| (i * 7 + 3) % 50).collect();
        let field = Fp64::at_least(1_000);

        let (q1, _q2) = spfe::pir::xor2::client_query(db.len(), 5, &mut *r);
        check("xor2-query", &q1, &cut, &bit);

        let layout = spfe::pir::hom_pir::Layout::square(db.len());
        let hq = spfe::pir::hom_pir::client_query(&f.pk, &layout, 3, &mut *r);
        check("hom-pir-query", &hq, &cut, &bit);

        let params = spfe::pir::SpirParams::new(f.group.clone(), db.len());
        let (sq, _st) = spfe::pir::spir::client_query(&params, &f.pk, 7, &mut *r);
        let sa = spfe::pir::spir::server_answer(&params, &f.pk, &db, &sq, &mut *r).unwrap();
        check("spir-query", &sq, &cut, &bit);
        check("spir-answer", &sa, &cut, &bit);

        let pparams = spfe::pir::poly_it::PolyItParams::new(db.len(), 1, field);
        let pqs = spfe::pir::poly_it::client_queries(&pparams, 5, &mut *r);
        check("poly-it-queries", &pqs, &cut, &bit);

        let mparams = MultiServerParams::new(db.len(), 1, field, MsFunction::Sum { m: 2 });
        let mqs = multiserver::client_queries(&mparams, &[3, 10], &mut *r);
        check("ms-queries", &mqs, &cut, &bit);

        let circuit = spfe::circuits::builders::sum_circuit(2, 4);
        let (gc, _secrets) = spfe::mpc::garble::garble(&circuit, [7u8; 32]);
        check("garbled-circuit", &gc, &cut, &bit);

        let (yq, _yst) = spfe::mpc::yao2pc::client_query(&f.group, &[true, false, true], &mut *r);
        check("yao-query", &yq, &cut, &bit);
    }

    #[test]
    fn prop_share_shift_weak_security(
        db in proptest::collection::vec(0u64..100, 4..20),
        pick in any::<proptest::sample::Index>(),
        delta in 1u64..100,
    ) {
        // Weak security, property-tested: any client-side share shift Δ
        // yields exactly f(x + Δ).
        let f = fixture();
        let mut r = rng().lock().unwrap();
        let field = Fp64::new(257).unwrap();
        let i = pick.index(db.len());
        let mut t = Transcript::new(1);
        let mut shares =
            input_select::select1(&mut t, &f.group, &f.pk, &f.sk, &db, &[i], field, &mut *r)
                .unwrap();
        shares.client[0] = field.add(shares.client[0], field.from_u64(delta));
        let got = spfe::core::two_phase::yao_phase(
            &mut t,
            &f.group,
            &shares,
            &spfe::core::Statistic::Sum,
            &mut *r,
        )
        .unwrap();
        prop_assert_eq!(got[0], field.add(field.from_u64(db[i]), field.from_u64(delta)));
    }
}
