//! Adversarial conformance suite: every protocol driver × every fault
//! class (DESIGN.md §10).
//!
//! The driver table lives in `tests/common/mod.rs` (shared with the trace
//! conformance suite). Each driver below runs end to end over a
//! [`FaultyChannel`] whose seeded [`FaultPlan`] perturbs message
//! deliveries. The contract under test:
//!
//! * **masked faults** (drop, short delay, timeout, crash within the heal
//!   budget, duplicate, reorder) are absorbed by the transport's bounded
//!   retry and the client still computes the *correct* answer;
//! * **detected faults** (truncation, crash past the budget) surface as
//!   *typed* [`ProtocolError`]s — `Codec`, `TooManyFaulty` — never panics;
//! * **byzantine faults** (bit flips, well-formed-but-wrong payloads) may
//!   yield a wrong value (there is no integrity MAC in the paper's model)
//!   or a typed error, but never a panic;
//! * the whole schedule is a pure function of the fault seed, so every
//!   outcome here is exactly reproducible (`SPFE_FAULT_SEED` in CI).

mod common;

use common::*;
use spfe::core::multiserver;
use spfe::crypto::ChaChaRng;
use spfe::transport::{FaultAction, FaultPlan, FaultyChannel, ProtocolError, Wire, MAX_ATTEMPTS};

// ---------------------------------------------------------------------------
// The conformance matrix.
// ---------------------------------------------------------------------------

#[test]
fn honest_channel_matches_ground_truth_for_every_driver() {
    for d in drivers() {
        let n = honest_messages(&d);
        assert!(
            n >= 2,
            "[{}] at least one round trip, got {n} messages",
            d.name
        );
    }
}

#[test]
fn masked_fault_classes_are_retried_to_the_correct_answer() {
    use FaultAction::*;
    // (label, scripted plan) — every transient class the retry loop must
    // absorb without changing the client's output.
    let plans: Vec<(&str, Vec<(u64, FaultAction)>)> = vec![
        ("drop", vec![(0, Drop), (2, Drop)]),
        ("delay-within-budget", vec![(0, Delay(2))]),
        ("delay-timeout", vec![(1, Delay(10))]),
        ("crash-healed", vec![(0, Crash)]),
        ("duplicate", vec![(0, Duplicate), (2, Duplicate)]),
        ("reorder", vec![(1, Reorder)]),
    ];
    for d in drivers() {
        for (label, script) in &plans {
            let got = run_under(&d, FaultPlan::scripted(script.clone()), 2);
            assert_eq!(got, Ok(d.expect), "[{} × {label}]", d.name);
        }
    }
}

#[test]
fn truncation_surfaces_a_codec_error_never_a_panic() {
    for d in drivers() {
        let last = honest_messages(&d) - 1;
        for idx in [0, last] {
            let plan = FaultPlan::scripted(vec![(idx, FaultAction::Truncate)]);
            let got = run_under(&d, plan, 0);
            assert!(
                matches!(got, Err(ProtocolError::Codec(_))),
                "[{} × truncate@{idx}] expected Codec error, got {got:?}",
                d.name
            );
        }
    }
}

#[test]
fn bit_flips_never_panic_and_errors_stay_typed() {
    for d in drivers() {
        let last = honest_messages(&d) - 1;
        for idx in [0, last] {
            let plan = FaultPlan::scripted(vec![(idx, FaultAction::BitFlip)]);
            // No integrity MAC in the paper's model: a flipped bit may
            // yield a wrong-but-well-formed value (Ok) or any typed error.
            // The assertion is the *absence of a panic* plus typed-ness.
            let _ = run_under(&d, plan, 0);
        }
        let rate = FaultPlan::with_rate(0xB17F, FaultAction::BitFlip, 150);
        let _ = run_under(&d, rate, 0);
    }
}

#[test]
fn byzantine_payloads_never_panic_and_errors_stay_typed() {
    for d in drivers() {
        let last = honest_messages(&d) - 1;
        for idx in [0, last] {
            let plan = FaultPlan::scripted(vec![(idx, FaultAction::Byzantine)]);
            let _ = run_under(&d, plan, 0);
        }
        let rate = FaultPlan::with_rate(0xB52A, FaultAction::Byzantine, 150);
        let _ = run_under(&d, rate, 0);
    }
}

#[test]
fn crash_is_healed_within_tolerance_and_aborts_past_it() {
    for d in drivers() {
        // Within the budget: the crashed server is replaced and the run
        // completes correctly.
        let plan = FaultPlan::scripted(vec![(0, FaultAction::Crash)]);
        let mut ch = FaultyChannel::new(d.servers, plan, 1);
        assert_eq!((d.run)(&mut ch), Ok(d.expect), "[{} × crash tol=1]", d.name);
        assert_eq!(ch.healed_servers(), &[0], "[{}] server 0 replaced", d.name);

        // Past the budget: typed abort with the fault diagnosis.
        let plan = FaultPlan::scripted(vec![(0, FaultAction::Crash)]);
        let got = run_under(&d, plan, 0);
        assert_eq!(
            got,
            Err(ProtocolError::TooManyFaulty {
                tolerated: 0,
                observed: 1
            }),
            "[{} × crash tol=0]",
            d.name
        );
    }
}

#[test]
fn crash_after_message_n_is_masked_at_every_position() {
    // The "crash-server-after-message-N" sweep on one cheap two-server
    // driver and one single-server statistics driver: whatever the crash
    // position, one heal suffices and the answer is unchanged.
    for d in drivers() {
        if d.name != "xor2" && d.name != "weighted_sum" {
            continue;
        }
        let msgs = honest_messages(&d);
        for n in 0..msgs {
            let plan = FaultPlan::scripted(vec![(n, FaultAction::Crash)]);
            let got = run_under(&d, plan, 1);
            assert_eq!(got, Ok(d.expect), "[{} × crash@{n}]", d.name);
        }
    }
}

#[test]
fn repeated_drops_on_one_message_exhaust_the_retry_budget() {
    // Drop every attempt of the first logical message: after MAX_ATTEMPTS
    // the transport gives up with a typed RetriesExhausted, not a hang.
    let script: Vec<(u64, FaultAction)> = (0..MAX_ATTEMPTS as u64)
        .map(|i| (i, FaultAction::Drop))
        .collect();
    for d in drivers() {
        let got = run_under(&d, FaultPlan::scripted(script.clone()), 0);
        match got {
            Err(ProtocolError::RetriesExhausted { attempts, .. }) => {
                assert_eq!(attempts, MAX_ATTEMPTS, "[{}]", d.name)
            }
            other => panic!("[{}] expected RetriesExhausted, got {other:?}", d.name),
        }
    }
}

#[test]
fn mixed_fault_rates_are_deterministic_per_seed() {
    use FaultAction::*;
    let seed = FaultPlan::seed_from_env(0xF00D);
    let rates = vec![(Drop, 60), (Delay(1), 60), (Duplicate, 60), (Reorder, 40)];
    for d in drivers() {
        let a = run_under(&d, FaultPlan::mixed(seed, rates.clone()), 3);
        let b = run_under(&d, FaultPlan::mixed(seed, rates.clone()), 3);
        assert_eq!(a, b, "[{}] same seed ⇒ same outcome", d.name);
        // All classes in this mix are masked, so the outcome is correct
        // unless the seed stacked >MAX_ATTEMPTS faults on one message —
        // which the retry budget converts into a typed transient error.
        match a {
            Ok(v) => assert_eq!(v, d.expect, "[{}]", d.name),
            Err(e) => assert!(
                e.is_transient() || matches!(e, ProtocolError::RetriesExhausted { .. }),
                "[{}] unexpected error class: {e:?}",
                d.name
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// Targeted byzantine substitutions: well-formed-but-wrong payloads with
// crisp, typed detection.
// ---------------------------------------------------------------------------

#[test]
fn xor2_answer_length_mismatch_is_detected() {
    // Substitute server 0's answer (message index 2: two queries precede
    // it) with a well-formed Vec<u8> of the wrong length.
    let plan = FaultPlan::scripted(vec![(2, FaultAction::Byzantine)]);
    let mut ch = FaultyChannel::new(2, plan, 0);
    ch.set_tamper(Box::new(|label, bytes| {
        assert_eq!(label, "pir2-answer");
        *bytes = vec![0u8; 3].to_bytes();
    }));
    let got = drv_xor2(&mut ch);
    assert_eq!(
        got,
        Err(ProtocolError::InvalidMessage {
            label: "pir2-answer",
            reason: "answer lengths differ",
        })
    );
}

#[test]
fn weighted_sum_functional_reply_tamper_is_detected_or_wrong_never_panic() {
    // Truncating the functional reply inside the (answers, func) pair to
    // an empty ciphertext must surface as a typed error.
    let plan = FaultPlan::scripted(vec![(1, FaultAction::Byzantine)]);
    let mut ch = FaultyChannel::new(1, plan, 0);
    ch.set_tamper(Box::new(|label, bytes| {
        if label == "wsum-answer" {
            bytes.clear();
        }
    }));
    let got = drv_weighted_sum(&mut ch);
    assert!(
        matches!(
            got,
            Err(ProtocolError::Codec(_)) | Err(ProtocolError::InvalidMessage { .. })
        ),
        "expected a typed decode/validation error, got {got:?}"
    );
}

#[test]
fn robust_multiserver_corrects_byzantine_answers_within_budget() {
    let params = ms_params();
    let k = params.num_servers() + 2; // max_faults = 1
    let db = db16();
    let expect = db[3] + db[10];
    let field = field();

    // One tampered answer (first answer message is index k): Berlekamp–
    // Welch decodes through it.
    let plan = FaultPlan::scripted(vec![(k as u64, FaultAction::Byzantine)]);
    let mut ch = FaultyChannel::new(k, plan, 0);
    ch.set_tamper(Box::new(move |label, bytes| {
        assert_eq!(label, "ms-answer");
        let v = u64::from_bytes(bytes).expect("answers are u64");
        *bytes = field.add(v, 3).to_bytes();
    }));
    let mut rng = ChaChaRng::from_u64_seed(0xB0B);
    let got = multiserver::run_robust(&mut ch, &params, &db, &[3, 10], 1, |_, a| a, &mut rng);
    assert_eq!(got, Ok(expect), "one fault is within the budget");

    // Three tampered answers exceed max_faults = 1: typed abort with the
    // fault diagnosis, never a silent wrong answer.
    let script: Vec<(u64, FaultAction)> = (0..3)
        .map(|i| (k as u64 + i, FaultAction::Byzantine))
        .collect();
    let mut ch = FaultyChannel::new(k, FaultPlan::scripted(script), 0);
    ch.set_tamper(Box::new(move |_, bytes| {
        let v = u64::from_bytes(bytes).expect("answers are u64");
        *bytes = field.add(v, 7).to_bytes();
    }));
    let mut rng = ChaChaRng::from_u64_seed(0xB0C);
    let got = multiserver::run_robust(&mut ch, &params, &db, &[3, 10], 1, |_, a| a, &mut rng);
    assert!(
        matches!(got, Err(ProtocolError::TooManyFaulty { tolerated: 1, .. })),
        "expected TooManyFaulty, got {got:?}"
    );
}

#[test]
fn dropped_messages_cost_no_bytes_and_duplicates_cost_double() {
    // Metering faithfulness on a real driver: the transcript records what
    // actually crossed the wire.
    let d = drivers().into_iter().find(|d| d.name == "hom_pir").unwrap();

    let mut honest = FaultyChannel::new(d.servers, FaultPlan::honest(), 0);
    assert_eq!((d.run)(&mut honest), Ok(d.expect));
    let base = honest.inner().report();

    // A dropped first attempt is retried; the delivered traffic is
    // byte-identical to the honest run.
    let mut dropped = FaultyChannel::new(
        d.servers,
        FaultPlan::scripted(vec![(0, FaultAction::Drop)]),
        0,
    );
    assert_eq!((d.run)(&mut dropped), Ok(d.expect));
    assert_eq!(dropped.inner().report(), base, "drops are not metered");
    assert_eq!(dropped.messages_attempted(), base.messages + 1);

    // A duplicated delivery is metered twice.
    let mut duped = FaultyChannel::new(
        d.servers,
        FaultPlan::scripted(vec![(0, FaultAction::Duplicate)]),
        0,
    );
    assert_eq!((d.run)(&mut duped), Ok(d.expect));
    let rep = duped.inner().report();
    assert_eq!(rep.messages, base.messages + 1, "duplicate metered twice");
    assert!(rep.total_bytes() > base.total_bytes());
}
