//! Determinism of the op counters under masked faults (DESIGN.md §10).
//!
//! The retry loop re-sends *already encoded* bytes, so a fault that fires
//! and is masked must not change any deterministic operation count: the
//! `deterministic_part()` of the `spfe-obs` snapshot is bit-identical
//! across fault seeds, while the `FaultsInjected`/`Retries` gauges record
//! that the schedules actually differed.
//!
//! This lives in its own test binary: the counters are process-global and
//! the adversarial matrix next door would pollute the windows.

#![cfg(feature = "obs")]

use spfe::core::stats;
use spfe::crypto::{ChaChaRng, HomomorphicScheme, Paillier, PaillierPk, PaillierSk, SchnorrGroup};
use spfe::math::Fp64;
use spfe::transport::{FaultAction, FaultPlan, FaultyChannel};
use spfe_obs::{Op, OpsSnapshot};
use std::sync::{Mutex, OnceLock};

/// The op counters are process-global; serialize the tests in this binary
/// so their measurement windows never overlap.
static LOCK: Mutex<()> = Mutex::new(());

struct Fixture {
    group: SchnorrGroup,
    pk: PaillierPk,
    sk: PaillierSk,
}

fn fx() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let mut rng = ChaChaRng::from_u64_seed(0xDE7E);
        let group = SchnorrGroup::generate(96, &mut rng);
        let (pk, sk) = Paillier::keygen(160, &mut rng);
        Fixture { group, pk, sk }
    })
}

/// One full weighted-sum execution under `plan`; returns the result, the
/// deterministic counter snapshot, and the two fault gauges.
fn wsum_under(plan: FaultPlan) -> (u64, OpsSnapshot, u64, u64) {
    let f = fx();
    let db: Vec<u64> = (0..24u64).map(|i| (i * 11 + 5) % 60).collect();
    let indices = [2usize, 9, 17, 21];
    let weights = [3u64, 1, 4, 1];
    let field = Fp64::at_least(1_000);
    let mut rng = ChaChaRng::from_u64_seed(0x5EED);
    spfe_obs::reset_ops();
    let mut ch = FaultyChannel::new(1, plan, 2);
    let got = stats::weighted_sum(
        &mut ch, &f.group, &f.pk, &f.sk, &db, &indices, &weights, field, &mut rng,
    )
    .expect("masked faults must not change the outcome");
    let snap = spfe_obs::ops_snapshot();
    let faults = snap.get(Op::FaultsInjected);
    let retries = snap.get(Op::Retries);
    (got, snap.deterministic_part(), faults, retries)
}

#[test]
fn deterministic_counters_identical_across_masked_fault_seeds() {
    let _g = LOCK.lock().unwrap();
    let db: Vec<u64> = (0..24u64).map(|i| (i * 11 + 5) % 60).collect();
    let expect: u64 = [(2usize, 3u64), (9, 1), (17, 4), (21, 1)]
        .iter()
        .map(|&(i, w)| db[i] * w)
        .sum();

    let (honest_val, honest_ops, honest_faults, honest_retries) = wsum_under(FaultPlan::honest());
    assert_eq!(honest_val, expect);
    assert_eq!(honest_faults, 0);
    assert_eq!(honest_retries, 0);

    // Two different fault seeds ⇒ two different drop schedules; the client
    // masks both via retry and the deterministic counters never move.
    let mut any_faults = 0u64;
    let mut any_retries = 0u64;
    for seed in [11u64, 77, 4242] {
        let plan = FaultPlan::with_rate(seed, FaultAction::Drop, 300);
        let (val, ops, faults, retries) = wsum_under(plan);
        assert_eq!(val, expect, "seed {seed}");
        assert_eq!(
            ops, honest_ops,
            "seed {seed}: deterministic op counters must match the honest run"
        );
        any_faults += faults;
        any_retries += retries;
    }
    assert!(
        any_faults > 0,
        "at least one seed must actually inject faults"
    );
    assert!(
        any_retries > 0,
        "masked drops must show up in the Retries gauge"
    );
}

#[test]
fn duplicates_and_delays_leave_deterministic_counters_alone() {
    let _g = LOCK.lock().unwrap();
    let (_, honest_ops, _, _) = wsum_under(FaultPlan::honest());
    // Scripted so the schedule is guaranteed to fire regardless of how many
    // messages the driver happens to exchange.
    let plan = FaultPlan::scripted(vec![
        (0, FaultAction::Duplicate),
        (1, FaultAction::Delay(1)),
    ]);
    let (_, faulty_ops, faults, _) = wsum_under(plan);
    assert_eq!(faulty_ops, honest_ops);
    assert!(faults > 0, "the mixed schedule must fire at least once");
}
