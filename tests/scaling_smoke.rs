//! Scaling smoke test for the persistent worker pool (`spfe_math::par`).
//!
//! A synthetic modexp-weight kernel — the same per-item cost profile as
//! the PIR column scan — is mapped at 1 and at 4 pool threads. The
//! wall-clock comparison is inherently machine-dependent, so the timing
//! test is `#[ignore]`d in plain `cargo test` runs (CI boxes are noisy)
//! and invoked explicitly by the `ci.sh` perf stage via `-- --ignored`;
//! it also self-skips when the machine has fewer than 2 cores, where a
//! speedup is physically impossible. The determinism companion test runs
//! everywhere: the pool must produce bit-identical results at any thread
//! count even under the heavy kernel.

use spfe::math::par;
use spfe::math::{Montgomery, Nat};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Serializes the tests in this binary: both mutate the process-global
/// thread-count configuration.
fn config_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Restores the default thread configuration even if an assert fails.
struct Restore;
impl Drop for Restore {
    fn drop(&mut self) {
        par::set_threads(None);
        par::set_seq_threshold(None);
    }
}

/// A ~512-bit odd modulus and per-item modexp, roughly one PIR cell's
/// work: heavy enough that the pool handshake is noise at this item count.
fn heavy_kernel() -> (Montgomery, Vec<Nat>) {
    let mut limbs = [0xA5u8; 64];
    limbs[0] |= 1; // odd, as Montgomery requires
    limbs[63] |= 0x80; // full width
    let mont = Montgomery::new(Nat::from_le_bytes(&limbs));
    let exps: Vec<Nat> = (0..256u64).map(|i| Nat::from(0x1_0001u64 + i)).collect();
    (mont, exps)
}

fn run_kernel(mont: &Montgomery, exps: &[Nat]) -> Vec<Nat> {
    let base = Nat::from(0xDEADBEEFu64);
    par::par_map_cost(par::CostClass::Heavy, exps, |e| mont.pow(&base, e))
}

#[test]
fn heavy_kernel_is_deterministic_across_thread_counts() {
    let _lock = config_lock();
    let _restore = Restore;
    let (mont, exps) = heavy_kernel();
    par::set_threads(Some(1));
    let serial = run_kernel(&mont, &exps);
    for nt in [2, 4, 8] {
        par::set_threads(Some(nt));
        assert_eq!(
            run_kernel(&mont, &exps),
            serial,
            "pool result differs at {nt} threads"
        );
    }
}

#[test]
#[ignore = "wall-clock comparison; run explicitly via ci.sh (-- --ignored)"]
fn four_threads_beat_one_on_a_heavy_kernel() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 2 {
        // A speedup is physically impossible here; the pir-scan overhead
        // bound in `trend --scaling` covers this regime instead.
        eprintln!("scaling smoke: skipped ({cores} core(s) < 2)");
        return;
    }
    let _lock = config_lock();
    let _restore = Restore;
    let (mont, exps) = heavy_kernel();
    let time_at = |nt: usize| {
        par::set_threads(Some(nt));
        let _warmup = run_kernel(&mont, &exps); // spawn workers, fault pages
        let reps = 5;
        let start = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(run_kernel(&mont, &exps));
        }
        start.elapsed() / reps
    };
    let serial = time_at(1);
    let pooled = time_at(4);
    // The real bar (>=10% speedup at n >= 4096) lives in `trend
    // --scaling`; this smoke only insists the pool is not a pessimization
    // on hardware that can actually run it (10% slack for timer noise).
    assert!(
        pooled.as_secs_f64() <= serial.as_secs_f64() * 1.10,
        "4-thread heavy kernel slower than serial: {pooled:?} vs {serial:?}"
    );
    eprintln!(
        "scaling smoke: serial {serial:?}, 4 threads {pooled:?} ({:.2}x, {cores} cores)",
        serial.as_secs_f64() / pooled.as_secs_f64()
    );
}
