//! The metrics-conformance contract (DESIGN.md §16): the server's
//! operational telemetry is not a rough gauge but an *exact* mirror of
//! the client-side metered transcripts — per-driver session counts, byte
//! totals in both directions, and half-round structure all match to the
//! unit. On top of that, the scrape endpoint must serve well-formed
//! `spfe-metrics/v1` JSON (roundtripping through `spfe-obs::json`) and
//! Prometheus text exposition over the same TCP listener, failures must
//! land in the right [`FailureKind`] bucket, and a panicking session
//! thread must be contained, counted, and survivable.

mod common;
use common::*;

use spfe_bench::serve;
use spfe_net::{fetch_stats, run_driver, run_driver_relay, Server, ServerConfig};
use spfe_obs::metrics::{parse_snapshot, FailureKind, MetricsSnapshot};
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

const DEADLINE: Duration = Duration::from_secs(30);

/// Session threads settle their accounting asynchronously after the
/// client returns; poll until the expected number of sessions closed.
fn wait_settled(server: &Server, opened: u64) -> MetricsSnapshot {
    let start = Instant::now();
    loop {
        let snap = server.snapshot();
        if snap.sessions_opened >= opened && snap.sessions_active == 0 {
            return snap;
        }
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "sessions never settled: {snap:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The tentpole contract: after compute and relay sessions, the server's
/// per-driver rows equal the client transcripts exactly — sessions,
/// bytes in/out, half-rounds — and the JSON scraped over the wire parses
/// back to the same counters.
#[test]
fn server_metrics_match_client_transcripts_exactly() {
    let _ = fx();
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();
    let table = drivers();

    // Two compute sessions of the same driver (aggregates must add up)…
    let mut hom_pir_reports = Vec::new();
    for _ in 0..2 {
        let run = run_driver(&addr, "hom_pir", Some(DEADLINE)).expect("hom_pir over TCP");
        assert_eq!(run.mode, spfe::transport::SessionMode::Compute);
        hom_pir_reports.push(run.transcript.report());
    }
    // …and one relay session (the echoing path meters logically).
    let xor2 = table.iter().find(|d| d.name == "xor2").unwrap();
    let relay = run_driver_relay(&addr, xor2, Some(DEADLINE)).expect("xor2 relay");
    let relay_report = relay.transcript.report();

    let snap = wait_settled(&server, 3);
    assert_eq!(snap.sessions_opened, 3);
    assert_eq!(snap.sessions_completed, 3);
    assert_eq!(snap.sessions_failed(), 0);

    let hp = snap
        .driver("hom_pir", "compute")
        .expect("hom_pir/compute row");
    assert_eq!(hp.sessions, 2);
    assert_eq!(hp.completed, 2);
    assert_eq!(
        hp.bytes_in,
        hom_pir_reports
            .iter()
            .map(|r| r.client_to_server)
            .sum::<u64>(),
        "server-metered client->server bytes must equal the client transcripts"
    );
    assert_eq!(
        hp.bytes_out,
        hom_pir_reports
            .iter()
            .map(|r| r.server_to_client)
            .sum::<u64>()
    );
    assert_eq!(
        hp.half_rounds,
        hom_pir_reports
            .iter()
            .map(|r| u64::from(r.half_rounds))
            .sum::<u64>(),
        "Bye carries the final transcript stamp; the server must agree"
    );

    let xr = snap.driver("xor2", "relay").expect("xor2/relay row");
    assert_eq!((xr.sessions, xr.completed), (1, 1));
    assert_eq!(xr.bytes_in, relay_report.client_to_server);
    assert_eq!(xr.bytes_out, relay_report.server_to_client);
    assert_eq!(xr.half_rounds, u64::from(relay_report.half_rounds));

    // Global byte totals are the sum of the per-driver rows — echoes and
    // scrape traffic never inflate them.
    assert_eq!(snap.bytes_in, hp.bytes_in + xr.bytes_in);
    assert_eq!(snap.bytes_out, hp.bytes_out + xr.bytes_out);

    // The same snapshot over the wire: scraped JSON parses back with
    // identical session/byte counters and passes the health gate.
    let wire = fetch_stats(&addr, false, Some(DEADLINE)).expect("stats scrape");
    let parsed = parse_snapshot(&wire).expect("scraped snapshot parses");
    assert_eq!(parsed.sessions_opened, snap.sessions_opened);
    assert_eq!(parsed.sessions_completed, snap.sessions_completed);
    assert_eq!(
        (parsed.bytes_in, parsed.bytes_out),
        (snap.bytes_in, snap.bytes_out)
    );
    assert_eq!(parsed.drivers, snap.drivers);
    assert!(
        serve::check_health(&parsed).ok(),
        "healthy after clean runs"
    );

    // Scrapes are probes, not sessions.
    let after = server.snapshot();
    assert_eq!(after.sessions_opened, 3);
    assert!(after.stats_probes >= 1);
}

/// The same listener answers Prometheus text exposition, well-formed:
/// counter TYPE lines, cumulative histogram with an `+Inf` bucket whose
/// count equals `_count`, and label values drawn from the driver rows.
#[test]
fn prometheus_exposition_over_the_wire_is_wellformed() {
    let _ = fx();
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();
    run_driver(&addr, "xor2", Some(DEADLINE)).expect("xor2 run");
    wait_settled(&server, 1);

    let prom = fetch_stats(&addr, true, Some(DEADLINE)).expect("prom scrape");
    assert!(prom.ends_with('\n'), "exposition must end with a newline");
    for needle in [
        "# TYPE spfe_sessions_opened_total counter",
        "spfe_sessions_opened_total 1",
        "# TYPE spfe_session_wall_micros histogram",
        "spfe_session_wall_micros_bucket{",
        "le=\"+Inf\"",
        "spfe_bytes_total{direction=\"in\"}",
        "mode=\"compute\"",
    ] {
        assert!(prom.contains(needle), "missing `{needle}` in:\n{prom}");
    }
    // Every failure kind is exported, zero or not, so dashboards can
    // query a stable series set.
    for kind in FailureKind::ALL {
        let series = format!("spfe_sessions_failed_total{{kind=\"{}\"}}", kind.name());
        assert!(prom.contains(&series), "missing series `{series}`");
    }
}

/// Failures land in their taxonomy bucket: a garbage first frame is a
/// codec reject; a client that connects and stalls mid-handshake is a
/// handshake timeout. Each failed session still counts as opened, so the
/// `opened == completed + failed + active` invariant holds throughout.
#[test]
fn failure_kinds_are_counted_in_the_right_bucket() {
    let _ = fx();
    let config = ServerConfig {
        read_deadline: Some(Duration::from_millis(200)),
        inject_panic_driver: None,
    };
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    let addr_sock = server.local_addr();
    let addr = addr_sock.to_string();

    // Codec reject: a first frame that cannot be a header.
    {
        let mut garbage = TcpStream::connect(addr_sock).expect("connect");
        garbage
            .write_all(b"XXXXGARBAGEXXXXGARBAGEXXXXGARBAGE")
            .unwrap();
        let _ = garbage.flush();
    }
    // Handshake timeout: two header bytes, then silence past the deadline.
    let staller = TcpStream::connect(addr_sock).expect("connect");
    (&staller).write_all(&[0x53, 0x50]).unwrap();

    // A clean session in between: failures must not disturb it.
    run_driver(&addr, "xor2", Some(DEADLINE)).expect("clean session");

    let start = Instant::now();
    let snap = loop {
        let snap = server.snapshot();
        if snap.sessions_failed() >= 2 {
            break snap;
        }
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "failures never counted: {snap:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    drop(staller);

    assert_eq!(server.failures(FailureKind::CodecReject), 1);
    assert_eq!(server.failures(FailureKind::HandshakeTimeout), 1);
    assert_eq!(snap.sessions_completed, 1);
    assert_eq!(
        snap.sessions_opened,
        snap.sessions_completed + snap.sessions_failed() + snap.sessions_active,
        "opened must equal completed + failed + active: {snap:?}"
    );
}

/// A panicking session thread (fault-injected) is contained by the
/// unwind boundary: counted as [`FailureKind::Panic`], the accept loop
/// keeps serving, and later sessions of other drivers complete.
#[test]
fn session_panic_is_contained_counted_and_survivable() {
    let _ = fx();
    let config = ServerConfig {
        read_deadline: Some(Duration::from_secs(30)),
        inject_panic_driver: Some("xor2".to_owned()),
    };
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().to_string();
    let table = drivers();

    let xor2 = table.iter().find(|d| d.name == "xor2").unwrap();
    run_driver_relay(&addr, xor2, Some(Duration::from_secs(5)))
        .expect_err("session against a panicking thread must fail client-side");

    let start = Instant::now();
    while server.failures(FailureKind::Panic) == 0 {
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "panic never counted: {:?}",
            server.snapshot()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.failures(FailureKind::Panic), 1);

    // The multiplexer survived: an untainted driver still serves.
    let run = run_driver(&addr, "hom_pir", Some(DEADLINE)).expect("post-panic session");
    let d = table.iter().find(|d| d.name == "hom_pir").unwrap();
    assert_eq!(run.digest, d.expect);
    let snap = wait_settled(&server, 2);
    assert_eq!(snap.sessions_completed, 1);
    assert_eq!(snap.sessions_failed(), 1);
    let row = snap
        .driver("xor2", "relay")
        .expect("panicked row is folded");
    assert_eq!((row.sessions, row.failed), (1, 1));
}
