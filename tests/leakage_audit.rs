//! The differential obliviousness gate (DESIGN.md §14), as a test suite.
//!
//! For every driver in the shared harness, the *server-observable* view
//! fingerprint must be bit-identical across systematic variations of the
//! client's secrets (indices, database contents, weights, the selected
//! statistic), and *every* party's fingerprint must be bit-identical
//! across masked fault schedules. `spfe-tables audit` runs the same sweep
//! against the committed `BENCH_audit.json` baseline; this suite is the
//! in-tree version that needs no baseline file.
//!
//! Plus: property tests pinning the canonicalization itself (order-stable,
//! collision-sensitive) on randomized views.

mod common;
use common::*;

use proptest::prelude::*;
use spfe::obs::audit::{deterministic_ops, Party, PartyView, ViewEvent};
use spfe::transport::{FaultAction, FaultPlan, FaultyChannel};
use std::sync::Mutex;

/// Op counters are process-global; every test that reads them serializes
/// on this lock.
static LOCK: Mutex<()> = Mutex::new(());

/// Runs driver `d` at secret variant `v` under `plan`; returns the digest
/// and the per-party views with the deterministic op vector folded into
/// the client's view (caller must hold [`LOCK`]).
fn views_under(d: &Driver, v: usize, plan: FaultPlan) -> (u64, Vec<PartyView>) {
    // Warm the lazy crypto fixture so the first measured run doesn't
    // count the one-off keygen modexps into its op vector.
    let _ = fx();
    spfe::obs::reset();
    let mut ch = FaultyChannel::new(d.servers, plan, 0);
    let got = (d.run_variant)(&mut ch, v).expect("audited run must succeed");
    let mut views = ch.inner().party_views();
    views[0].ops = deterministic_ops(&spfe::obs::ops_snapshot());
    (got, views)
}

/// Every variant computes its own expected digest — the variants are real
/// protocol runs over genuinely different secrets, not replays.
#[test]
fn every_variant_computes_its_own_answer() {
    let _g = LOCK.lock().unwrap();
    for d in drivers() {
        for v in 0..NUM_VARIANTS {
            let (got, _) = views_under(&d, v, FaultPlan::honest());
            assert_eq!(got, (d.expect_variant)(v), "[{} v{v}]", d.name);
        }
    }
}

/// The tentpole gate: varying the secrets must not move any server's view
/// fingerprint. (The client's view legitimately varies — the client knows
/// its own secrets; the deterministic op vector folded into it reflects
/// e.g. different plaintext values being encrypted.)
#[test]
fn server_views_are_identical_across_secret_variants() {
    let _g = LOCK.lock().unwrap();
    for d in drivers() {
        let mut baseline: Option<Vec<String>> = None;
        for v in 0..NUM_VARIANTS {
            let (_, views) = views_under(&d, v, FaultPlan::honest());
            let fps: Vec<String> = views[1..].iter().map(|pv| pv.fingerprint_hex()).collect();
            match &baseline {
                None => baseline = Some(fps),
                Some(b) => assert_eq!(
                    &fps, b,
                    "[{} v{v}] a server-observable view fingerprint moved with the secrets",
                    d.name
                ),
            }
        }
    }
}

/// Masked drops (retry heals the wire) must leave every party's
/// fingerprint — client included — identical to the honest run, at both
/// audit fault seeds.
#[test]
fn masked_drops_leave_all_fingerprints_identical() {
    let _g = LOCK.lock().unwrap();
    for d in drivers() {
        let (_, honest) = views_under(&d, 0, FaultPlan::honest());
        let honest_fps: Vec<String> = honest.iter().map(|pv| pv.fingerprint_hex()).collect();
        for seed in [11u64, 77] {
            let plan = FaultPlan::with_rate(seed, FaultAction::Drop, 300);
            let (got, views) = views_under(&d, 0, plan);
            assert_eq!(got, d.expect, "[{} seed {seed}]", d.name);
            let fps: Vec<String> = views.iter().map(|pv| pv.fingerprint_hex()).collect();
            assert_eq!(
                fps, honest_fps,
                "[{} seed {seed}] masked faults must not change any view fingerprint",
                d.name
            );
        }
    }
}

/// The client sees every byte of the session: its (sent, received) totals
/// must mirror the union of the server totals, swapped.
#[test]
fn client_view_is_the_union_of_server_views() {
    let _g = LOCK.lock().unwrap();
    for d in drivers() {
        let (_, views) = views_under(&d, 0, FaultPlan::honest());
        let (c_sent, c_recv) = views[0].byte_totals();
        let mut s_sent = 0;
        let mut s_recv = 0;
        let mut s_events = 0;
        for pv in &views[1..] {
            let (s, r) = pv.byte_totals();
            s_sent += s;
            s_recv += r;
            s_events += pv.events.len();
        }
        assert_eq!((c_sent, c_recv), (s_recv, s_sent), "[{}]", d.name);
        assert_eq!(views[0].events.len(), s_events, "[{}]", d.name);
    }
}

/// Extracts the ordered party fingerprints committed for `driver` in
/// `BENCH_audit.json` (client first, then server0, server1, …).
fn committed_fingerprints(baseline: &str, driver: &str) -> Vec<String> {
    let needle = format!("\"driver\": \"{driver}\"");
    let start = baseline
        .find(&needle)
        .unwrap_or_else(|| panic!("driver {driver} missing from BENCH_audit.json"));
    let rest = &baseline[start + needle.len()..];
    let end = rest.find("\"driver\":").unwrap_or(rest.len());
    let report = &rest[..end];
    let mut fps = Vec::new();
    let mut cursor = report;
    while let Some(at) = cursor.find("\"fingerprint\": \"") {
        let hex = &cursor[at + 16..];
        let close = hex.find('"').expect("unterminated fingerprint");
        fps.push(hex[..close].to_owned());
        cursor = &hex[close..];
    }
    assert!(!fps.is_empty(), "no fingerprints for {driver}");
    fps
}

/// The networked gate: a loopback-TCP relay session of every driver must
/// reproduce the *committed* `BENCH_audit.json` per-party `spfe-view/v1`
/// fingerprints bit-for-bit — the wire carrier (in-memory vs. real
/// sockets) is outside the view definition. Compute-mode sessions against
/// hosted server cores must reproduce the client fingerprint too.
#[test]
fn socket_sessions_reproduce_committed_fingerprints() {
    let _g = LOCK.lock().unwrap();
    let baseline = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_audit.json"
    ))
    .expect("committed BENCH_audit.json");
    // The committed baseline was captured at SPFE_THREADS=1.
    spfe::math::par::set_threads(Some(1));
    let server =
        spfe_net::Server::bind("127.0.0.1:0", spfe_net::ServerConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();
    let deadline = Some(std::time::Duration::from_secs(30));
    for d in drivers() {
        let committed = committed_fingerprints(&baseline, d.name);
        let _ = fx();
        spfe::obs::reset();
        let run = spfe_net::run_driver_relay(&addr, &d, deadline).expect("relay session");
        assert_eq!(run.digest, d.expect, "[{}] relay digest", d.name);
        let mut views = run.transcript.party_views();
        views[0].ops = deterministic_ops(&spfe::obs::ops_snapshot());
        let fps: Vec<String> = views.iter().map(|v| v.fingerprint_hex()).collect();
        assert_eq!(
            fps, committed,
            "[{}] loopback-TCP fingerprints diverge from the committed audit baseline",
            d.name
        );
    }
    for name in NET_CORE_DRIVERS {
        let committed = committed_fingerprints(&baseline, name);
        let _ = fx();
        spfe::obs::reset();
        let run = spfe_net::run_driver(&addr, name, deadline).expect("compute session");
        let mut views = run.transcript.party_views();
        views[0].ops = deterministic_ops(&spfe::obs::ops_snapshot());
        let fps: Vec<String> = views.iter().map(|v| v.fingerprint_hex()).collect();
        assert_eq!(
            fps, committed,
            "[{name}] compute-mode fingerprints diverge from the committed audit baseline"
        );
    }
    spfe::math::par::set_threads(None);
}

fn arb_event() -> impl Strategy<Value = (u32, bool, String, u64)> {
    (1u32..6, any::<bool>(), "[a-z]{1,6}", 0u64..4096)
}

fn view_from(party_server: bool, raw: &[(u32, bool, String, u64)]) -> PartyView {
    let mut v = PartyView::new(if party_server {
        Party::Server(0)
    } else {
        Party::Client
    });
    v.events = raw
        .iter()
        .map(|(half_round, sent, label, bytes)| ViewEvent {
            half_round: *half_round,
            sent: *sent,
            label: label.clone(),
            bytes: *bytes,
        })
        .collect();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Canonicalization is a pure function of the view: rebuilding the
    /// same view from the same data yields the same fingerprint.
    #[test]
    fn prop_fingerprint_is_order_stable(
        raw in proptest::collection::vec(arb_event(), 1..12),
        server in any::<bool>(),
    ) {
        let a = view_from(server, &raw);
        let b = view_from(server, &raw);
        prop_assert_eq!(a.canonical_bytes(), b.canonical_bytes());
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
    }

    /// Collision sensitivity: perturbing any single field of any single
    /// event — label, length, direction, or round — changes the hash.
    #[test]
    fn prop_fingerprint_sees_any_single_field_change(
        raw in proptest::collection::vec(arb_event(), 1..12),
        pick in any::<proptest::sample::Index>(),
        field in 0usize..4,
    ) {
        let base = view_from(false, &raw);
        let fp = base.fingerprint();
        let i = pick.index(raw.len());
        let mut mutated = base.clone();
        match field {
            0 => mutated.events[i].label.push('x'),
            1 => mutated.events[i].bytes += 1,
            2 => mutated.events[i].sent = !mutated.events[i].sent,
            _ => mutated.events[i].half_round += 1,
        }
        prop_assert_ne!(mutated.fingerprint(), fp);
    }

    /// Swapping two unequal adjacent events changes the hash: order is
    /// part of the canonical form.
    #[test]
    fn prop_fingerprint_sees_reordering(
        raw in proptest::collection::vec(arb_event(), 2..10),
        pick in any::<proptest::sample::Index>(),
    ) {
        let i = pick.index(raw.len() - 1);
        prop_assume!(raw[i] != raw[i + 1]);
        let base = view_from(true, &raw);
        let mut swapped = base.clone();
        swapped.events.swap(i, i + 1);
        prop_assert_ne!(swapped.fingerprint(), base.fingerprint());
    }
}
