#!/usr/bin/env bash
# Full local CI gate: build, tests, lints, formatting.
#
# Mirrors .github/workflows/ci.yml so a green run here means a green PR.
# Set CARGO_NET_OFFLINE=true to run fully offline (the workspace has no
# external dependencies, so offline builds always work).
set -euo pipefail
cd "$(dirname "$0")"

OFFLINE=()
if [[ "${CARGO_NET_OFFLINE:-}" == "true" ]]; then
  OFFLINE=(--offline)
fi

echo "==> cargo build --release"
cargo build "${OFFLINE[@]}" --release --workspace --all-targets

echo "==> cargo test"
cargo test "${OFFLINE[@]}" --release --workspace -q

echo "==> cargo clippy (-D warnings)"
cargo clippy "${OFFLINE[@]}" --release --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "CI OK"
