#!/usr/bin/env bash
# Full local CI gate: build, tests, lints, formatting.
#
# Mirrors .github/workflows/ci.yml so a green run here means a green PR.
# Set CARGO_NET_OFFLINE=true to run fully offline (the workspace has no
# external dependencies, so offline builds always work).
set -euo pipefail
cd "$(dirname "$0")"

OFFLINE=()
if [[ "${CARGO_NET_OFFLINE:-}" == "true" ]]; then
  OFFLINE=(--offline)
fi

echo "==> cargo build --release"
cargo build "${OFFLINE[@]}" --release --workspace --all-targets

echo "==> cargo test"
cargo test "${OFFLINE[@]}" --release --workspace -q

echo "==> cargo clippy (-D warnings)"
cargo clippy "${OFFLINE[@]}" --release --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --no-default-features (obs compiled out)"
cargo build "${OFFLINE[@]}" --release --workspace --no-default-features

echo "==> cost-report schema gate (spfe-tables e1 --json + validate)"
rm -f BENCH_costs.json
cargo run "${OFFLINE[@]}" --release -p spfe-bench --bin spfe-tables -- e1 --json > /dev/null
cargo run "${OFFLINE[@]}" --release -p spfe-bench --bin spfe-tables -- validate BENCH_costs.json
grep -q '"schema": "spfe-cost-report/v1"' BENCH_costs.json

echo "CI OK"
