#!/usr/bin/env bash
# Full local CI gate: build, tests, lints, formatting.
#
# Mirrors .github/workflows/ci.yml so a green run here means a green PR.
# Set CARGO_NET_OFFLINE=true to run fully offline (the workspace has no
# external dependencies, so offline builds always work).
set -euo pipefail
cd "$(dirname "$0")"

OFFLINE=()
if [[ "${CARGO_NET_OFFLINE:-}" == "true" ]]; then
  OFFLINE=(--offline)
fi

echo "==> cargo build --release"
cargo build "${OFFLINE[@]}" --release --workspace --all-targets

echo "==> cargo test"
cargo test "${OFFLINE[@]}" --release --workspace -q

echo "==> cargo clippy (-D warnings)"
cargo clippy "${OFFLINE[@]}" --release --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --no-default-features (obs compiled out)"
cargo build "${OFFLINE[@]}" --release --workspace --no-default-features

echo "==> adversarial conformance suite (two fault seeds + obs compiled out)"
# The suite asserts every driver x fault-class cell returns Ok or a typed
# ProtocolError. The backtrace log scan is the panic gate: a panic that a
# test harness converted into a failure (or that unwound inside a should-
# not-panic cell) would print "panicked at", which must never appear.
ADV_LOG=$(mktemp)
WORK=$(mktemp -d)
trap 'rm -f "$ADV_LOG"; rm -rf "$WORK"' EXIT
for seed in 1 77; do
  echo "    SPFE_FAULT_SEED=$seed"
  SPFE_FAULT_SEED=$seed RUST_BACKTRACE=1 \
    cargo test "${OFFLINE[@]}" --release -p spfe --test adversarial -q 2>&1 | tee "$ADV_LOG"
  if grep -q "panicked at" "$ADV_LOG"; then
    echo "FAIL: a protocol driver panicked under fault injection" >&2
    exit 1
  fi
done
echo "    --no-default-features (probes compiled out)"
SPFE_FAULT_SEED=1 RUST_BACKTRACE=1 \
  cargo test "${OFFLINE[@]}" --release -p spfe --test adversarial -q --no-default-features 2>&1 | tee "$ADV_LOG"
if grep -q "panicked at" "$ADV_LOG"; then
  echo "FAIL: a protocol driver panicked under fault injection (no obs)" >&2
  exit 1
fi

echo "==> heap-profiling conformance (obs-alloc: instrumented allocator)"
# The mem_profile suite asserts every driver attributes heap to spans and
# that single-thread alloc tallies are bit-identical across reruns and
# masked fault plans (DESIGN.md §12).
cargo test "${OFFLINE[@]}" --release -p spfe-obs -p spfe --features obs-alloc -q

ROOT=$PWD
TABLES="$ROOT/target/release/spfe-tables"

# The feature-variant builds above overwrote the release binaries; the
# gates below need the CLI back *with* the instrumented allocator, so the
# fresh suite carries the heap axis the committed v3 baseline gates on.
echo "==> rebuild instrumented CLI (obs-alloc)"
cargo build "${OFFLINE[@]}" --release -p spfe-bench --features obs-alloc --bins

echo "==> cost-report schema gate (spfe-tables e1 --json + validate)"
# A fresh suite is generated in a scratch dir so the committed baseline
# BENCH_costs.json stays pristine for the trend comparison below.
# SPFE_THREADS=1 matches the committed baseline: the heap counters are
# only gated in the single-thread regime (DESIGN.md §12).
(cd "$WORK" && SPFE_THREADS=1 "$TABLES" e1 --json > /dev/null)
"$TABLES" validate "$WORK/BENCH_costs.json"
grep -q '"schema": "spfe-cost-report/v3"' "$WORK/BENCH_costs.json"

echo "==> cost-trend regression gate (fresh run vs committed baseline)"
# Deterministic op counters, comm bytes and single-thread heap totals are
# bit-identical across reruns (DESIGN.md §8, §12), so any regression
# flagged here is a real cost change.
# After an intentional change: spfe-tables trend ... --accept (EXPERIMENTS.md).
"$TABLES" trend --baseline BENCH_costs.json --current "$WORK/BENCH_costs.json"

echo "==> leakage-audit gate (differential obliviousness vs committed baseline)"
# Each harness driver is swept over 3 secret-input variants x (honest +
# masked drops at the two audit fault seeds); every party's view
# fingerprint must match the committed BENCH_audit.json bit-for-bit
# (DESIGN.md §14). Fingerprints are thread-invariant, so one committed
# baseline gates both thread settings.
for threads in 1 4; do
  echo "    SPFE_THREADS=$threads"
  SPFE_THREADS=$threads "$TABLES" audit all --check
done
(cd "$WORK" && SPFE_THREADS=1 "$TABLES" audit e1 --json > /dev/null)
"$TABLES" validate "$WORK/e1.audit.json"

echo "==> trace smoke (Perfetto JSON + folded stacks, alloc weighting)"
(cd "$WORK" && "$TABLES" trace e1 --weight alloc_bytes > /dev/null)
test -s "$WORK/e1.trace.json"
test -s "$WORK/e1.folded"
test -s "$WORK/e1.alloc_bytes.folded"
grep -q '"traceEvents"' "$WORK/e1.trace.json"

echo "==> cross-transport conformance matrix (SPFE_THREADS=1 and 4)"
# Every harness driver over in-memory, masked-faulty, and loopback-TCP
# transports: identical digests, per-label comm bytes, half-round
# structure, view fingerprints, and deterministic op counters
# (DESIGN.md §15). The matrix also re-runs internally at both thread
# settings; the env sweep covers the default-resolution path too.
for threads in 1 4; do
  echo "    SPFE_THREADS=$threads"
  SPFE_THREADS=$threads cargo test "${OFFLINE[@]}" --release -p spfe --test net_conformance -q
done
SPFE_THREADS=1 cargo test "${OFFLINE[@]}" --release -p spfe --test net_timeout -q

echo "==> distributed tracing conformance (Lamport stamps, in-process merge gate)"
# Stamps are issued once per logical delivery (masked-fault retries at
# the audit seeds reproduce the honest stamp sequence), TraceCtx frames
# are absorbed unmetered, and in-process loopback journals merge into a
# causally consistent timeline at both thread settings (DESIGN.md §17).
for threads in 1 4; do
  echo "    SPFE_THREADS=$threads"
  SPFE_THREADS=$threads cargo test "${OFFLINE[@]}" --release -p spfe --test net_trace -q
done

echo "==> networked service smoke (spfe-server + spfe-client over loopback TCP)"
# The --no-default-features build above overwrote the release binaries;
# put the instrumented service binaries back first.
cargo build "${OFFLINE[@]}" --release -p spfe-net --bins
SRV_LOG="$WORK/server.log"
CTL="$WORK/ctl"
SNAP_MID="$WORK/metrics_mid.json"
SNAP_FINAL="$WORK/metrics_final.json"
TRACE_CLIENT="$WORK/client.trace.json"
TRACE_SERVER="$WORK/server.trace.json"
mkfifo "$CTL"
SPFE_LOG=1 target/release/spfe-server --read-deadline-ms 30000 \
  --metrics-json "$SNAP_FINAL" --trace "$TRACE_SERVER" < "$CTL" > "$SRV_LOG" &
SRV_PID=$!
exec 9> "$CTL" # hold the fifo open so the server's stdin stays alive
for _ in $(seq 1 50); do
  grep -q "^listening on " "$SRV_LOG" && break
  sleep 0.1
done
ADDR=$(awk '/^listening on /{print $3; exit}' "$SRV_LOG")
test -n "$ADDR"
# e1/e2/e11 run in relay mode; xor2 has extracted sans-io cores and runs
# in compute mode, so both session kinds land in the trace journals.
target/release/spfe-client run --trace "$TRACE_CLIENT" --addr "$ADDR" e1 e2 e11 xor2
# Mid-run scrapes over the same listener: spfe-metrics/v1 JSON and
# Prometheus text exposition, both while sessions are being served.
target/release/spfe-client stats --addr "$ADDR" > "$SNAP_MID"
target/release/spfe-client stats --addr "$ADDR" --prom > "$WORK/metrics.prom"
grep -q '# TYPE spfe_sessions_opened_total counter' "$WORK/metrics.prom"
grep -q 'spfe_sessions_failed_total{kind="panic"} 0' "$WORK/metrics.prom"
echo quit >&9
exec 9>&-
wait "$SRV_PID"
grep -q "failed=0" "$SRV_LOG"

echo "==> distributed trace merge gate (spfe-tables net-trace)"
# The two per-party journals from the smoke run must merge into one
# causally consistent timeline: every receive Lamport-stamped strictly
# after its matching send, per-session half-round depths equal on both
# sides, per-direction counts/labels/bytes paired, and the server
# journal's payload bytes reconciled against the metrics registry
# (DESIGN.md §17). The checks read no wall clock, so this gate is
# deterministic on any machine.
test -s "$TRACE_CLIENT"
test -s "$TRACE_SERVER"
"$TABLES" net-trace e1 --merge "$TRACE_CLIENT" "$TRACE_SERVER" \
  --metrics "$SNAP_FINAL" -o "$WORK/e1.net-trace.json"
grep -q '"traceEvents"' "$WORK/e1.net-trace.json"

echo "==> service health + drift gates (spfe-tables serve-report)"
# The mid-run scrape must already attest a healthy service (zero failed
# sessions, nonzero payload traffic, registry invariants intact), the
# shutdown snapshot must show no failure drift relative to it, and the
# metrics schema must validate alongside cost/audit docs in one batch.
test -s "$SNAP_FINAL"
"$TABLES" validate "$WORK/BENCH_costs.json" "$WORK/e1.audit.json" "$SNAP_MID" "$SNAP_FINAL"
"$TABLES" serve-report "$SNAP_MID"
"$TABLES" serve-report "$SNAP_FINAL" --baseline "$SNAP_MID"

echo "==> parallel-scaling gate (fresh pir-scan + trend --scaling)"
# A fresh scan is measured in the scratch dir; the gate's rule is
# hardware-aware (cores >= threads: >=10% speedup at n >= 4096; fewer
# cores: pool overhead bounded at 10%), so it is honest on any machine.
(cd "$WORK" && "$TABLES" pir-scan > /dev/null)
"$TABLES" trend --scaling --scan "$WORK/BENCH_pir_scan.json"

echo "==> scaling smoke test (synthetic heavy kernel, ignored in plain test runs)"
cargo test "${OFFLINE[@]}" --release -p spfe --test scaling_smoke -q -- --ignored

echo "CI OK"
