#!/usr/bin/env bash
# Full local CI gate: build, tests, lints, formatting.
#
# Mirrors .github/workflows/ci.yml so a green run here means a green PR.
# Set CARGO_NET_OFFLINE=true to run fully offline (the workspace has no
# external dependencies, so offline builds always work).
set -euo pipefail
cd "$(dirname "$0")"

OFFLINE=()
if [[ "${CARGO_NET_OFFLINE:-}" == "true" ]]; then
  OFFLINE=(--offline)
fi

echo "==> cargo build --release"
cargo build "${OFFLINE[@]}" --release --workspace --all-targets

echo "==> cargo test"
cargo test "${OFFLINE[@]}" --release --workspace -q

echo "==> cargo clippy (-D warnings)"
cargo clippy "${OFFLINE[@]}" --release --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --no-default-features (obs compiled out)"
cargo build "${OFFLINE[@]}" --release --workspace --no-default-features

echo "==> adversarial conformance suite (two fault seeds + obs compiled out)"
# The suite asserts every driver x fault-class cell returns Ok or a typed
# ProtocolError. The backtrace log scan is the panic gate: a panic that a
# test harness converted into a failure (or that unwound inside a should-
# not-panic cell) would print "panicked at", which must never appear.
ADV_LOG=$(mktemp)
trap 'rm -f "$ADV_LOG"' EXIT
for seed in 1 77; do
  echo "    SPFE_FAULT_SEED=$seed"
  SPFE_FAULT_SEED=$seed RUST_BACKTRACE=1 \
    cargo test "${OFFLINE[@]}" --release -p spfe --test adversarial -q 2>&1 | tee "$ADV_LOG"
  if grep -q "panicked at" "$ADV_LOG"; then
    echo "FAIL: a protocol driver panicked under fault injection" >&2
    exit 1
  fi
done
echo "    --no-default-features (probes compiled out)"
SPFE_FAULT_SEED=1 RUST_BACKTRACE=1 \
  cargo test "${OFFLINE[@]}" --release -p spfe --test adversarial -q --no-default-features 2>&1 | tee "$ADV_LOG"
if grep -q "panicked at" "$ADV_LOG"; then
  echo "FAIL: a protocol driver panicked under fault injection (no obs)" >&2
  exit 1
fi

echo "==> cost-report schema gate (spfe-tables e1 --json + validate)"
rm -f BENCH_costs.json
cargo run "${OFFLINE[@]}" --release -p spfe-bench --bin spfe-tables -- e1 --json > /dev/null
cargo run "${OFFLINE[@]}" --release -p spfe-bench --bin spfe-tables -- validate BENCH_costs.json
grep -q '"schema": "spfe-cost-report/v1"' BENCH_costs.json

echo "CI OK"
