//! Decoder-robustness properties for every primitive [`Wire`] impl in
//! `spfe-transport`: arbitrary bytes, strict prefixes of valid encodings,
//! and single-bit flips must yield `Ok` or [`WireError`] — never a panic,
//! never a hostile allocation.

use proptest::prelude::*;
use spfe_math::Nat;
use spfe_transport::Wire;

/// Decodes `bytes` as every primitive wire type; the property is simply
/// that none of these calls panics or allocates per an attacker-chosen
/// length prefix.
fn decode_all(bytes: &[u8]) {
    let _ = u8::from_bytes(bytes);
    let _ = u16::from_bytes(bytes);
    let _ = u32::from_bytes(bytes);
    let _ = u64::from_bytes(bytes);
    let _ = u128::from_bytes(bytes);
    let _ = i64::from_bytes(bytes);
    let _ = bool::from_bytes(bytes);
    let _ = usize::from_bytes(bytes);
    let _ = Vec::<u64>::from_bytes(bytes);
    let _ = Vec::<Vec<u8>>::from_bytes(bytes);
    let _ = <(u8, u64)>::from_bytes(bytes);
    let _ = <(u64, Vec<u8>, bool)>::from_bytes(bytes);
    let _ = Option::<u64>::from_bytes(bytes);
    let _ = Option::<Vec<u64>>::from_bytes(bytes);
    let _ = <[u8; 16]>::from_bytes(bytes);
    let _ = <[u8; 32]>::from_bytes(bytes);
    let _ = Nat::from_bytes(bytes);
    let _ = String::from_bytes(bytes);
}

/// `(name, valid encoding, decoder-rejects predicate)` for one impl shape.
type Encoding = (&'static str, Vec<u8>, fn(&[u8]) -> bool);

/// A menagerie of valid encodings, one per impl shape.
fn valid_encodings() -> Vec<Encoding> {
    fn errs<T: Wire>(b: &[u8]) -> bool {
        T::from_bytes(b).is_err()
    }
    vec![
        ("u64", u64::MAX.to_bytes(), errs::<u64>),
        ("u128", (u128::MAX - 5).to_bytes(), errs::<u128>),
        ("i64", (-42i64).to_bytes(), errs::<i64>),
        ("bool", true.to_bytes(), errs::<bool>),
        ("usize", 123_456usize.to_bytes(), errs::<usize>),
        ("vec-u64", vec![1u64, 2, 3, 4].to_bytes(), errs::<Vec<u64>>),
        (
            "vec-vec-u8",
            vec![vec![1u8, 2], vec![], vec![3]].to_bytes(),
            errs::<Vec<Vec<u8>>>,
        ),
        ("pair", (7u8, 9u64).to_bytes(), errs::<(u8, u64)>),
        (
            "triple",
            (1u64, vec![5u8, 6], true).to_bytes(),
            errs::<(u64, Vec<u8>, bool)>,
        ),
        ("option-some", Some(11u64).to_bytes(), errs::<Option<u64>>),
        ("array", [9u8; 32].to_bytes(), errs::<[u8; 32]>),
        (
            "nat",
            Nat::from_hex("deadbeefcafebabe0123456789")
                .unwrap()
                .to_bytes(),
            errs::<Nat>,
        ),
        (
            "string",
            "hello SPFE".to_string().to_bytes(),
            errs::<String>,
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_arbitrary_bytes_never_panic(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        decode_all(&bytes);
    }

    #[test]
    fn prop_strict_prefixes_of_valid_encodings_are_rejected(
        cut in any::<proptest::sample::Index>(),
    ) {
        for (name, enc, decode_errs) in valid_encodings() {
            // Every strict prefix misses bytes the decoder needs (the
            // codec is self-delimiting and length-exact), so decoding
            // must fail — and in particular must not panic.
            let keep = cut.index(enc.len());
            prop_assert!(
                decode_errs(&enc[..keep]),
                "{name}: prefix of {keep}/{} bytes decoded",
                enc.len()
            );
        }
    }

    #[test]
    fn prop_single_bit_flips_never_panic(
        pick in any::<proptest::sample::Index>(),
    ) {
        for (_name, mut enc, decode_errs) in valid_encodings() {
            let bit = pick.index(enc.len() * 8);
            enc[bit / 8] ^= 1 << (bit % 8);
            // A flipped bit may still decode (to a wrong value) or be
            // rejected; either way the decoder returns, it never panics
            // and never trusts a hostile length prefix.
            let _ = decode_errs(&enc);
        }
    }

    #[test]
    fn prop_trailing_garbage_is_rejected(
        extra in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        for (name, mut enc, decode_errs) in valid_encodings() {
            enc.extend_from_slice(&extra);
            prop_assert!(decode_errs(&enc), "{name}: trailing bytes accepted");
        }
    }
}
