//! Decoder-robustness properties for the session [`Frame`] codec
//! (DESIGN.md §15): random frames round-trip bit-exactly; arbitrary
//! bytes, truncations, and targeted header corruptions yield a typed
//! [`ProtocolError::Codec`] — never a panic, never an allocation sized
//! by an attacker-chosen length field.

use proptest::prelude::*;
use spfe_transport::{Frame, FrameKind, ProtocolError, HEADER_LEN, MAX_LABEL_LEN};

fn frame_from(
    kind_pick: usize,
    c2s: bool,
    session: u64,
    half_round: u32,
    server: u32,
    label_raw: &[u8],
    payload: Vec<u8>,
) -> Frame {
    let kinds = [
        FrameKind::Hello,
        FrameKind::Msg,
        FrameKind::Bye,
        FrameKind::Error,
        FrameKind::Stats,
    ];
    // Labels are short ASCII identifiers on the real wire; the codec only
    // requires utf-8 and the length bound.
    let label: String = label_raw
        .iter()
        .take(MAX_LABEL_LEN)
        .map(|b| char::from(b'a' + (b % 26)))
        .collect();
    Frame {
        kind: kinds[kind_pick % kinds.len()],
        client_to_server: c2s,
        session,
        half_round,
        server,
        label,
        payload,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_frame_roundtrips(
        kind_pick in 0usize..5,
        c2s in any::<bool>(),
        session in any::<u64>(),
        half_round in any::<u32>(),
        server in 0u32..64,
        label_raw in proptest::collection::vec(any::<u8>(), 0..24),
        payload in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let f = frame_from(kind_pick, c2s, session, half_round, server, &label_raw, payload);
        let bytes = f.to_bytes();
        let (got, used) = Frame::decode(&bytes).expect("valid frame decodes");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(got, f);
    }

    #[test]
    fn prop_truncation_is_typed_rejection(
        payload in proptest::collection::vec(any::<u8>(), 0..80),
        cut_seed in any::<u64>(),
    ) {
        let f = frame_from(1, true, 7, 2, 0, b"lbl", payload);
        let bytes = f.to_bytes();
        let cut = (cut_seed as usize) % bytes.len();
        match Frame::decode(&bytes[..cut]) {
            Err(ProtocolError::Codec(_)) => {}
            other => prop_assert!(false, "truncated frame must be a Codec error, got {other:?}"),
        }
    }

    #[test]
    fn prop_arbitrary_bytes_never_panic(
        junk in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        // Ok is possible only if the junk happens to spell a whole frame;
        // the property is the absence of panics and hostile allocations.
        let _ = Frame::decode(&junk);
        let mut stream = std::io::Cursor::new(junk);
        let _ = spfe_transport::frame::read_frame(&mut stream, 0, "prop");
    }

    #[test]
    fn prop_header_corruption_is_typed(
        byte in 0usize..HEADER_LEN,
        xor in 1u8..255,
        payload in proptest::collection::vec(any::<u8>(), 0..40),
    ) {
        let f = frame_from(1, true, 3, 1, 1, b"corrupt", payload);
        let mut bytes = f.to_bytes();
        bytes[byte] ^= xor;
        // A corrupted header either still parses (the flip hit a
        // don't-care field like the session id) or fails with a typed
        // Codec error; body truncation from a shrunk length field is a
        // Codec error too. Nothing panics.
        match Frame::decode(&bytes) {
            Ok(_) | Err(ProtocolError::Codec(_)) => {}
            other => prop_assert!(false, "unexpected decode result {other:?}"),
        }
    }

    #[test]
    fn prop_oversized_length_fields_rejected_before_allocation(
        label_len in (MAX_LABEL_LEN as u16 + 1)..u16::MAX,
        payload_len in ((1u32 << 26) + 1)..u32::MAX,
    ) {
        let f = frame_from(1, true, 9, 1, 0, b"big", vec![1, 2, 3]);
        let mut bytes = f.to_bytes();
        bytes[24..26].copy_from_slice(&label_len.to_le_bytes());
        match Frame::decode(&bytes) {
            Err(ProtocolError::Codec(w)) => prop_assert_eq!(w.context, "frame: label exceeds bound"),
            other => prop_assert!(false, "oversized label accepted: {other:?}"),
        }
        let mut bytes = f.to_bytes();
        bytes[26..30].copy_from_slice(&payload_len.to_le_bytes());
        match Frame::decode(&bytes) {
            Err(ProtocolError::Codec(w)) => prop_assert_eq!(w.context, "frame: payload exceeds bound"),
            other => prop_assert!(false, "oversized payload accepted: {other:?}"),
        }
    }
}
