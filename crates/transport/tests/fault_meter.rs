//! Interaction of [`FaultyChannel`] with the transcript's per-label
//! accounting: the meter must reflect what actually crossed the wire —
//! dropped attempts cost nothing, duplicates cost double — and `reset`
//! must restore a pristine, replayable channel.

use spfe_transport::{Channel, ChannelExt, FaultAction, FaultPlan, FaultyChannel, Transcript};

/// Drives a fixed two-label exchange (a query up, an answer down) over any
/// channel.
fn exchange(ch: &mut dyn Channel) {
    let q: Vec<u64> = ch.client_to_server(0, "q", &vec![1u64, 2, 3]).unwrap();
    assert_eq!(q, vec![1, 2, 3]);
    let a: u64 = ch.server_to_client(0, "a", &99u64).unwrap();
    assert_eq!(a, 99);
}

#[test]
fn dropped_messages_are_absent_from_the_label_report() {
    // Honest baseline.
    let mut honest = Transcript::new(1);
    {
        let ch: &mut dyn Channel = &mut honest;
        exchange(ch);
    }
    let base = honest.report_by_label();

    // Drop the first attempt of both logical messages (indices shift by
    // one per retry: attempt 0 drops, attempt 1 delivers "q", attempt 2
    // drops, attempt 3 delivers "a").
    let plan = FaultPlan::scripted(vec![(0, FaultAction::Drop), (2, FaultAction::Drop)]);
    let mut faulty = FaultyChannel::new(1, plan, 0);
    {
        let ch: &mut dyn Channel = &mut faulty;
        exchange(ch);
    }
    assert_eq!(faulty.messages_attempted(), 4, "two retries happened");
    assert_eq!(
        faulty.inner().report_by_label(),
        base,
        "delivered-byte attribution is identical to the honest run"
    );
    assert_eq!(
        faulty.inner().bytes_for_label("q"),
        honest.bytes_for_label("q")
    );
}

#[test]
fn duplicates_double_one_label_and_leave_the_other_alone() {
    let plan = FaultPlan::scripted(vec![(0, FaultAction::Duplicate)]);
    let mut faulty = FaultyChannel::new(1, plan, 0);
    {
        let ch: &mut dyn Channel = &mut faulty;
        exchange(ch);
    }
    let stats = faulty.inner().report_by_label();
    let q = stats.iter().find(|s| s.label == "q").unwrap();
    let a = stats.iter().find(|s| s.label == "a").unwrap();
    // Vec<u64> of 3 elements = 8-byte length prefix + 3×8 bytes = 32.
    assert_eq!(q.up_msgs, 2, "duplicate delivery metered twice");
    assert_eq!(q.up_bytes, 64);
    assert_eq!(a.down_msgs, 1);
    assert_eq!(a.down_bytes, 8);
}

#[test]
fn reset_clears_metering_and_replays_the_same_schedule() {
    let plan = FaultPlan::scripted(vec![(0, FaultAction::Drop)]);
    let mut faulty = FaultyChannel::new(1, plan, 0);
    {
        let ch: &mut dyn Channel = &mut faulty;
        exchange(ch);
    }
    let first = faulty.inner().report_by_label();
    let attempts = faulty.messages_attempted();
    assert_eq!(attempts, 3, "one drop, one retry, one clean answer");

    faulty.reset();
    assert_eq!(faulty.messages_attempted(), 0);
    assert_eq!(faulty.clock(), 0);
    assert!(faulty.inner().report_by_label().is_empty());
    assert_eq!(faulty.inner().report().messages, 0);

    // The plan is message-indexed, so a fresh execution after reset sees
    // the *same* fault schedule and produces the same accounting.
    {
        let ch: &mut dyn Channel = &mut faulty;
        exchange(ch);
    }
    assert_eq!(faulty.inner().report_by_label(), first);
    assert_eq!(faulty.messages_attempted(), attempts);
}

#[test]
fn truncated_delivery_is_metered_at_the_wire_length() {
    // The truncated bytes did cross the wire; the meter records what was
    // actually delivered even though decoding then fails.
    let plan = FaultPlan::scripted(vec![(0, FaultAction::Truncate)]);
    let mut faulty = FaultyChannel::new(1, plan, 0);
    let ch: &mut dyn Channel = &mut faulty;
    let got = ch.client_to_server(0, "q", &vec![1u64, 2, 3]);
    assert!(got.is_err());
    let metered = faulty.inner().bytes_for_label("q");
    assert!(
        metered > 0 && metered < 32,
        "a strict prefix of the 32-byte encoding was metered, got {metered}"
    );
}
