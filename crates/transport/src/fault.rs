//! Deterministic fault injection: [`FaultPlan`] and [`FaultyChannel`].
//!
//! The adversarial conformance suite runs every protocol driver over a
//! [`FaultyChannel`] — a wrapper around the honest metered [`Transcript`]
//! that perturbs message deliveries according to a *seeded* plan. The same
//! seed always yields the same faults at the same message indices, so
//! every adversarial test is exactly reproducible (`SPFE_FAULT_SEED`
//! selects the seed in CI; see DESIGN.md §10).
//!
//! Fault taxonomy ([`FaultAction`]):
//!
//! | action      | transport effect                         | client sees |
//! |-------------|------------------------------------------|-------------|
//! | `Drop`      | message lost, nothing delivered          | transient [`ProtocolError::Dropped`], retried |
//! | `Truncate`  | a prefix of the bytes arrives            | [`ProtocolError::Codec`] |
//! | `BitFlip`   | one bit flipped in transit               | `Codec` or a detectably wrong value |
//! | `Duplicate` | delivered twice (both metered)           | one decode; double byte count |
//! | `Reorder`   | swapped with the previous same-round msg | reordered transcript records |
//! | `Delay`     | ticks added before delivery              | [`ProtocolError::Timeout`] past the budget, retried |
//! | `Crash`     | server dies; all later messages fail     | [`ProtocolError::ServerCrashed`], healed up to `t` |
//! | `Byzantine` | well-formed-but-wrong payload substituted| wrong value (robust drivers recover) |
//!
//! Dropped and crashed deliveries are **not** recorded in the transcript:
//! the meter counts bytes that actually crossed the wire, so cost reports
//! stay faithful under faults.

use crate::channel::Channel;
use crate::error::ProtocolError;
use crate::meter::{Direction, Transcript};

/// One perturbation applied to a single message delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Lose the message entirely.
    Drop,
    /// Deliver only a strict prefix of the encoded bytes.
    Truncate,
    /// Flip one (seeded) bit of the payload.
    BitFlip,
    /// Deliver the message twice; both copies are metered.
    Duplicate,
    /// Swap this message's transcript record with the previous one in the
    /// same half-round (delivery itself is unaffected — the in-memory
    /// exchange is synchronous, so reorder is a metering-trace fault).
    Reorder,
    /// Add this many ticks of delay before delivery; past the channel's
    /// timeout budget the delivery fails with a timeout.
    Delay(u64),
    /// Crash the destination/origin server: this and every later message
    /// involving it fails until the channel heals it.
    Crash,
    /// Substitute a well-formed-but-wrong payload (a byzantine server).
    /// Length-preserving, and the (seeded) default tampers only bytes past
    /// any length prefix so structured messages still decode.
    Byzantine,
}

impl FaultAction {
    /// Stable machine-readable class name (used by the event journal).
    pub fn name(self) -> &'static str {
        match self {
            FaultAction::Drop => "drop",
            FaultAction::Truncate => "truncate",
            FaultAction::BitFlip => "bit_flip",
            FaultAction::Duplicate => "duplicate",
            FaultAction::Reorder => "reorder",
            FaultAction::Delay(_) => "delay",
            FaultAction::Crash => "crash",
            FaultAction::Byzantine => "byzantine",
        }
    }
}

/// A seeded, deterministic schedule of [`FaultAction`]s over message
/// indices.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    /// `(action, per_mille)` rates rolled per message, in order.
    rates: Vec<(FaultAction, u32)>,
    /// Explicit `(message index, action)` overrides (checked first).
    scripted: Vec<(u64, FaultAction)>,
}

impl FaultPlan {
    /// The honest plan: no faults, ever.
    pub fn honest() -> Self {
        FaultPlan::default()
    }

    /// A plan injecting exactly the scripted `(message index, action)`
    /// pairs and nothing else.
    pub fn scripted(actions: Vec<(u64, FaultAction)>) -> Self {
        FaultPlan {
            scripted: actions,
            ..FaultPlan::default()
        }
    }

    /// A plan applying `action` to each message with probability
    /// `per_mille`/1000, decided by `seed` and the message index only.
    pub fn with_rate(seed: u64, action: FaultAction, per_mille: u32) -> Self {
        FaultPlan {
            seed,
            rates: vec![(action, per_mille)],
            scripted: Vec::new(),
        }
    }

    /// A plan mixing several `(action, per_mille)` rates; at most one
    /// action fires per message (first match in `rates` order).
    pub fn mixed(seed: u64, rates: Vec<(FaultAction, u32)>) -> Self {
        FaultPlan {
            seed,
            rates,
            scripted: Vec::new(),
        }
    }

    /// Reads `SPFE_FAULT_SEED` (decimal) from the environment, falling
    /// back to `default_seed`. The suite's determinism contract: one seed
    /// value ⇒ one exact fault schedule ⇒ one exact test outcome.
    pub fn seed_from_env(default_seed: u64) -> u64 {
        std::env::var("SPFE_FAULT_SEED")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(default_seed)
    }

    /// The action (if any) this plan applies to message `msg_index`.
    pub fn action_for(&self, msg_index: u64) -> Option<FaultAction> {
        if let Some(&(_, a)) = self.scripted.iter().find(|&&(i, _)| i == msg_index) {
            return Some(a);
        }
        if self.rates.is_empty() {
            return None;
        }
        let roll = mix(self.seed, msg_index) % 1000;
        let mut acc = 0u64;
        for &(action, per_mille) in &self.rates {
            acc += per_mille as u64;
            if roll < acc {
                return Some(action);
            }
        }
        None
    }

    /// Deterministic per-message auxiliary randomness (bit positions,
    /// tamper keystreams).
    fn aux(&self, msg_index: u64, salt: u64) -> u64 {
        mix(
            self.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            msg_index,
        )
    }
}

/// SplitMix64-style mixer: uniform, stateless, seed × index → u64.
fn mix(seed: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Default per-round tick budget before a delayed delivery times out.
pub const DEFAULT_TIMEOUT_TICKS: u64 = 3;

/// Targeted byzantine tamper hook: receives the protocol label and the
/// encoded bytes to mutate in place.
pub type TamperHook = Box<dyn FnMut(&'static str, &mut Vec<u8>) + Send>;

/// A fault-injecting [`Channel`] over an honest [`Transcript`].
///
/// Deliveries advance a deterministic tick clock; crashed servers are
/// healed (replaced by an honest server) up to a configurable tolerance
/// `t`, after which the channel aborts executions with
/// [`ProtocolError::TooManyFaulty`].
pub struct FaultyChannel {
    inner: Transcript,
    plan: FaultPlan,
    /// How many distinct crashed servers may be replaced (the `t` of the
    /// paper's fault model).
    tolerance: usize,
    timeout_ticks: u64,
    clock: u64,
    msg_index: u64,
    crashed: Vec<bool>,
    healed: Vec<usize>,
    /// Targeted byzantine tamper hook: `(label, bytes)` mutated in place.
    tamper: Option<TamperHook>,
}

impl std::fmt::Debug for FaultyChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyChannel")
            .field("plan", &self.plan)
            .field("tolerance", &self.tolerance)
            .field("clock", &self.clock)
            .field("msg_index", &self.msg_index)
            .field("crashed", &self.crashed)
            .field("healed", &self.healed)
            .finish_non_exhaustive()
    }
}

impl FaultyChannel {
    /// Wraps a fresh transcript for `num_servers` servers under `plan`,
    /// tolerating up to `tolerance` crashed-and-replaced servers.
    pub fn new(num_servers: usize, plan: FaultPlan, tolerance: usize) -> Self {
        FaultyChannel {
            inner: Transcript::new(num_servers),
            plan,
            tolerance,
            timeout_ticks: DEFAULT_TIMEOUT_TICKS,
            clock: 0,
            msg_index: 0,
            crashed: vec![false; num_servers],
            healed: Vec::new(),
            tamper: None,
        }
    }

    /// Overrides the per-delivery tick budget.
    pub fn with_timeout_ticks(mut self, ticks: u64) -> Self {
        self.timeout_ticks = ticks;
        self
    }

    /// Installs a targeted byzantine tamper hook, applied *instead of* the
    /// default seeded scramble whenever a [`FaultAction::Byzantine`] fault
    /// fires. The hook sees the protocol label and may rewrite the bytes
    /// to any well-formed-but-wrong payload.
    pub fn set_tamper(&mut self, hook: TamperHook) {
        self.tamper = Some(hook);
    }

    /// The underlying honest transcript (metering only what was actually
    /// delivered).
    pub fn inner(&self) -> &Transcript {
        &self.inner
    }

    /// Messages attempted so far (delivered or not).
    pub fn messages_attempted(&self) -> u64 {
        self.msg_index
    }

    /// Servers that crashed and were replaced by honest ones, in order.
    pub fn healed_servers(&self) -> &[usize] {
        &self.healed
    }

    /// Clears all metering, clock, and fault state for a fresh execution
    /// under the same plan.
    pub fn reset(&mut self) {
        self.inner.reset();
        self.clock = 0;
        self.msg_index = 0;
        self.crashed.iter_mut().for_each(|c| *c = false);
        self.healed.clear();
    }

    fn deliver(
        &mut self,
        dir: Direction,
        label: &'static str,
        bytes: &[u8],
        action: Option<FaultAction>,
        idx: u64,
    ) -> Result<Vec<u8>, ProtocolError> {
        let mut out = bytes.to_vec();
        match action {
            None | Some(FaultAction::Delay(_)) => {}
            Some(FaultAction::Truncate) => {
                let keep = out
                    .len()
                    .saturating_sub(1 + (self.plan.aux(idx, 1) as usize % 8));
                out.truncate(keep);
            }
            Some(FaultAction::BitFlip) => {
                if !out.is_empty() {
                    let bit = self.plan.aux(idx, 2) as usize % (out.len() * 8);
                    out[bit / 8] ^= 1 << (bit % 8);
                }
            }
            Some(FaultAction::Byzantine) => {
                if let Some(hook) = self.tamper.as_mut() {
                    hook(label, &mut out);
                } else {
                    // Length-preserving scramble of the payload tail: skip
                    // the first 8 bytes (where length prefixes live) so
                    // structured messages still decode, just wrong.
                    let start = 8.min(out.len().saturating_sub(1));
                    let key = self.plan.aux(idx, 3);
                    for (i, b) in out.iter_mut().enumerate().skip(start) {
                        *b ^= (key >> (8 * (i % 8))) as u8 | 1;
                    }
                }
            }
            Some(FaultAction::Duplicate) => {
                // First copy metered here; the second below with the rest.
                self.inner.record_raw(dir, label, out.len());
            }
            Some(FaultAction::Reorder) => {
                self.inner.record_raw(dir, label, out.len());
                self.inner.swap_last_two_in_round();
                return Ok(out);
            }
            Some(FaultAction::Drop) | Some(FaultAction::Crash) => unreachable!("handled earlier"),
        }
        self.inner.record_raw(dir, label, out.len());
        Ok(out)
    }
}

impl Channel for FaultyChannel {
    fn num_servers(&self) -> usize {
        self.inner.num_servers()
    }

    fn begin_round(&mut self) {
        self.inner.begin_round();
    }

    fn transfer_raw(
        &mut self,
        dir: Direction,
        label: &'static str,
        bytes: &[u8],
    ) -> Result<Vec<u8>, ProtocolError> {
        // Delivery buffers (and retried re-deliveries) allocate as a
        // function of the fault schedule, not the protocol; pause the
        // deterministic heap tallies so alloc counters stay bit-identical
        // across fault seeds (DESIGN.md §12). The live/peak gauges keep
        // tracking.
        let _mem_pause = spfe_obs::mem::pause();
        let server = dir.server();
        assert!(server < self.num_servers(), "server index out of range");
        let idx = self.msg_index;
        self.msg_index += 1;
        self.clock += 1;
        if self.crashed[server] {
            return Err(ProtocolError::ServerCrashed { server });
        }
        let action = self.plan.action_for(idx);
        if let Some(a) = action {
            spfe_obs::count(spfe_obs::Op::FaultsInjected, 1);
            spfe_obs::fault_event(a.name(), server);
        }
        match action {
            Some(FaultAction::Drop) => Err(ProtocolError::Dropped { server, label }),
            Some(FaultAction::Crash) => {
                self.crashed[server] = true;
                Err(ProtocolError::ServerCrashed { server })
            }
            Some(FaultAction::Delay(ticks)) => {
                self.clock += ticks;
                if ticks > self.timeout_ticks {
                    Err(ProtocolError::Timeout { server, label })
                } else {
                    self.deliver(dir, label, bytes, action, idx)
                }
            }
            other => self.deliver(dir, label, bytes, other, idx),
        }
    }

    fn transcript(&self) -> &Transcript {
        &self.inner
    }

    fn heal_server(&mut self, server: usize) -> Result<(), ProtocolError> {
        if server < self.crashed.len() && self.crashed[server] {
            if !self.healed.contains(&server) && self.healed.len() >= self.tolerance {
                return Err(ProtocolError::TooManyFaulty {
                    tolerated: self.tolerance,
                    observed: self.healed.len() + 1,
                });
            }
            self.crashed[server] = false;
            if !self.healed.contains(&server) {
                self.healed.push(server);
            }
        }
        Ok(())
    }

    fn clock(&self) -> u64 {
        self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelExt;
    use crate::wire::Wire;

    #[test]
    fn honest_plan_matches_transcript_exactly() {
        let mut honest = Transcript::new(2);
        let mut faulty = FaultyChannel::new(2, FaultPlan::honest(), 0);
        for s in 0..2 {
            honest.client_to_server(s, "q", &(s as u64)).unwrap();
            let ch: &mut dyn Channel = &mut faulty;
            ch.client_to_server(s, "q", &(s as u64)).unwrap();
        }
        assert_eq!(honest.report(), faulty.transcript().report());
    }

    #[test]
    fn scripted_drop_is_masked_by_retry_and_not_metered() {
        let mut faulty =
            FaultyChannel::new(1, FaultPlan::scripted(vec![(0, FaultAction::Drop)]), 0);
        let ch: &mut dyn Channel = &mut faulty;
        let v: u64 = ch.client_to_server(0, "q", &42u64).unwrap();
        assert_eq!(v, 42);
        // Two attempts, one delivery: exactly one record, 8 bytes.
        let rep = faulty.transcript().report();
        assert_eq!(rep.messages, 1);
        assert_eq!(rep.client_to_server, 8);
        assert_eq!(faulty.messages_attempted(), 2);
    }

    #[test]
    fn truncate_surfaces_codec_error() {
        let mut faulty =
            FaultyChannel::new(1, FaultPlan::scripted(vec![(0, FaultAction::Truncate)]), 0);
        let ch: &mut dyn Channel = &mut faulty;
        let got = ch.client_to_server(0, "q", &vec![1u64, 2, 3]);
        assert!(matches!(got, Err(ProtocolError::Codec(_))), "{got:?}");
    }

    #[test]
    fn crash_heals_within_tolerance_and_aborts_past_it() {
        // Tolerance 1: a crash on server 0 heals, a second server crashing
        // aborts with the budget diagnosis.
        let plan = FaultPlan::scripted(vec![(0, FaultAction::Crash), (2, FaultAction::Crash)]);
        let mut faulty = FaultyChannel::new(2, plan, 1);
        let ch: &mut dyn Channel = &mut faulty;
        let v: u64 = ch.client_to_server(0, "q", &5u64).unwrap();
        assert_eq!(v, 5);
        let got = ch.client_to_server(1, "q", &6u64);
        assert_eq!(
            got,
            Err(ProtocolError::TooManyFaulty {
                tolerated: 1,
                observed: 2
            })
        );
        assert_eq!(faulty.healed_servers(), &[0]);
    }

    #[test]
    fn delay_within_budget_delivers_and_advances_clock() {
        let plan = FaultPlan::scripted(vec![(0, FaultAction::Delay(2))]);
        let mut faulty = FaultyChannel::new(1, plan, 0);
        let ch: &mut dyn Channel = &mut faulty;
        let v: u64 = ch.client_to_server(0, "q", &9u64).unwrap();
        assert_eq!(v, 9);
        assert_eq!(faulty.clock(), 3); // 1 tick delivery + 2 delay
    }

    #[test]
    fn delay_past_budget_times_out_then_retry_delivers() {
        let plan = FaultPlan::scripted(vec![(0, FaultAction::Delay(10))]);
        let mut faulty = FaultyChannel::new(1, plan, 0);
        let ch: &mut dyn Channel = &mut faulty;
        let v: u64 = ch.client_to_server(0, "q", &9u64).unwrap();
        assert_eq!(v, 9);
        assert_eq!(faulty.transcript().report().messages, 1);
    }

    #[test]
    fn duplicate_meters_twice_decodes_once() {
        let plan = FaultPlan::scripted(vec![(0, FaultAction::Duplicate)]);
        let mut faulty = FaultyChannel::new(1, plan, 0);
        let ch: &mut dyn Channel = &mut faulty;
        let v: u64 = ch.client_to_server(0, "q", &7u64).unwrap();
        assert_eq!(v, 7);
        let rep = faulty.transcript().report();
        assert_eq!(rep.messages, 2);
        assert_eq!(rep.client_to_server, 16);
        assert_eq!(rep.half_rounds, 1, "duplicate stays within the round");
    }

    #[test]
    fn byzantine_default_scramble_preserves_structure() {
        let plan = FaultPlan::scripted(vec![(0, FaultAction::Byzantine)]);
        let mut faulty = FaultyChannel::new(1, plan, 0);
        let ch: &mut dyn Channel = &mut faulty;
        // Vec<u8> has an 8-byte length prefix; the scramble must keep it.
        let got: Vec<u8> = ch.client_to_server(0, "q", &vec![1u8, 2, 3, 4]).unwrap();
        assert_eq!(got.len(), 4, "length preserved");
        assert_ne!(got, vec![1, 2, 3, 4], "payload tampered");
    }

    #[test]
    fn targeted_tamper_hook_overrides_default() {
        let plan = FaultPlan::scripted(vec![(0, FaultAction::Byzantine)]);
        let mut faulty = FaultyChannel::new(1, plan, 0);
        faulty.set_tamper(Box::new(|label, bytes| {
            assert_eq!(label, "q");
            *bytes = 99u64.to_bytes();
        }));
        let ch: &mut dyn Channel = &mut faulty;
        let got: u64 = ch.client_to_server(0, "q", &7u64).unwrap();
        assert_eq!(got, 99);
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultPlan::with_rate(0xABCD, FaultAction::Drop, 200);
        let b = FaultPlan::with_rate(0xABCD, FaultAction::Drop, 200);
        let c = FaultPlan::with_rate(0xABCE, FaultAction::Drop, 200);
        let sched_a: Vec<_> = (0..200).map(|i| a.action_for(i)).collect();
        let sched_b: Vec<_> = (0..200).map(|i| b.action_for(i)).collect();
        let sched_c: Vec<_> = (0..200).map(|i| c.action_for(i)).collect();
        assert_eq!(sched_a, sched_b);
        assert_ne!(sched_a, sched_c, "different seeds diverge");
        let fired = sched_a.iter().filter(|a| a.is_some()).count();
        assert!(fired > 10 && fired < 100, "rate plausible: {fired}/200");
    }

    #[cfg(feature = "obs")]
    #[test]
    fn faults_and_retries_reach_the_event_journal() {
        use spfe_obs::trace::{self, EventKind};
        let mut faulty =
            FaultyChannel::new(1, FaultPlan::scripted(vec![(0, FaultAction::Drop)]), 0);
        trace::set_tracing(true);
        let ch: &mut dyn Channel = &mut faulty;
        let v: u64 = ch.client_to_server(0, "trace-q", &42u64).unwrap();
        trace::set_tracing(false);
        assert_eq!(v, 42);
        let trace = trace::take();
        let evs: Vec<_> = trace.threads.iter().flat_map(|t| t.events.iter()).collect();
        assert!(
            evs.iter()
                .any(|e| e.kind == EventKind::Fault && e.label == "drop"),
            "{evs:?}"
        );
        assert!(
            evs.iter()
                .any(|e| e.kind == EventKind::Retry && e.label == "trace-q" && e.a == 1),
            "{evs:?}"
        );
        assert!(
            evs.iter()
                .any(|e| e.kind == EventKind::WireUp && e.label == "trace-q" && e.a == 8),
            "{evs:?}"
        );
    }

    #[test]
    fn fault_action_names_are_stable() {
        assert_eq!(FaultAction::Drop.name(), "drop");
        assert_eq!(FaultAction::Delay(5).name(), "delay");
        assert_eq!(FaultAction::Byzantine.name(), "byzantine");
    }

    #[test]
    fn reset_clears_fault_state() {
        let plan = FaultPlan::scripted(vec![(0, FaultAction::Crash)]);
        let mut faulty = FaultyChannel::new(1, plan, 1);
        {
            let ch: &mut dyn Channel = &mut faulty;
            ch.client_to_server(0, "q", &1u64).unwrap();
        }
        assert_eq!(faulty.healed_servers(), &[0]);
        faulty.reset();
        assert!(faulty.healed_servers().is_empty());
        assert_eq!(faulty.clock(), 0);
        assert_eq!(faulty.transcript().report().messages, 0);
    }
}
