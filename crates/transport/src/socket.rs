//! A metered [`Channel`] over a byte stream.
//!
//! [`SocketChannel`] wraps any `Read + Write` stream (a `TcpStream` in
//! production, an in-memory duplex in tests) and implements the same
//! byte-level channel contract as [`Transcript`]: every `transfer_raw`
//! frames the bytes ([`crate::frame`]), sends them to the peer, and
//! meters the delivery on an internal transcript — so per-label comm
//! bytes, half-round structure, and party-view fingerprints are computed
//! exactly as for an in-memory run.
//!
//! Two session modes exist (declared in the Hello frame):
//!
//! * **Relay** — the peer echoes every `Msg` frame back. The channel
//!   returns the echoed payload as "the bytes seen by the receiver",
//!   which lets *every* monolithic `spfe::harness` driver run over a real
//!   socket unchanged: the driver still plays both sides, but each
//!   message physically crosses the network. This is the blanket adapter
//!   the cross-transport conformance matrix runs on.
//! * **Compute** — the peer hosts genuine server state machines
//!   ([`crate::session::SessionCore`]); the client side is driven by a
//!   networked runner (in `spfe-net`), not through this channel.
//!
//! **Deadlines and poisoning.** Stream deadlines are configured on the
//! underlying socket by the caller; an expired read surfaces as
//! [`ProtocolError::Timeout`]. After any I/O failure the channel is
//! *poisoned*: the stream may be mid-frame, so resynchronization is
//! unsound, and every later transfer fails fast with the original error.
//! Under the bounded-retry policy a poisoned channel therefore burns the
//! remaining attempts instantly — a stalled server costs one deadline,
//! not [`crate::MAX_ATTEMPTS`] of them.

use crate::channel::Channel;
use crate::error::ProtocolError;
use crate::frame::{read_frame, read_frame_traced, write_frame, Frame, FrameKind};
use crate::lamport::Lamport;
use crate::meter::{Direction, Transcript};
use spfe_obs::trace as journal;
use std::io::{Read, Write};

/// How the peer should treat this session (the byte carried in Hello).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionMode {
    /// Echo every frame back (the blanket adapter for monolithic drivers).
    Relay = 0,
    /// Host the protocol's server state machines.
    Compute = 1,
}

/// A metered channel that frames every message over a byte stream.
#[derive(Debug)]
pub struct SocketChannel<S: Read + Write> {
    stream: S,
    session: u64,
    driver: String,
    mode: SessionMode,
    transcript: Transcript,
    poisoned: Option<ProtocolError>,
    /// Per-session causal clock for distributed tracing: ticked once per
    /// logical send, merged on every receive (DESIGN.md §17).
    lamport: Lamport,
}

impl<S: Read + Write> SocketChannel<S> {
    /// Opens a relay session for `driver` over `stream`: sends Hello and
    /// waits for the peer's Hello acknowledgement.
    ///
    /// # Errors
    ///
    /// Any transport or framing [`ProtocolError`] during the handshake,
    /// or [`ProtocolError::InvalidMessage`] if the peer rejects the
    /// session.
    pub fn connect(
        mut stream: S,
        num_servers: usize,
        driver: &str,
        mode: SessionMode,
        session: u64,
    ) -> Result<Self, ProtocolError> {
        let hello = Frame {
            kind: FrameKind::Hello,
            client_to_server: true,
            session,
            half_round: 0,
            server: 0,
            label: driver.to_owned(),
            payload: vec![mode as u8],
        };
        write_frame(&mut stream, &hello, 0, "net-hello")?;
        let ack = read_frame(&mut stream, 0, "net-hello")?;
        if ack.kind == FrameKind::Error {
            return Err(ProtocolError::InvalidMessage {
                label: "net-hello",
                reason: "peer rejected the session",
            });
        }
        if ack.kind != FrameKind::Hello || ack.session != session {
            return Err(ProtocolError::InvalidMessage {
                label: "net-hello",
                reason: "malformed hello acknowledgement",
            });
        }
        spfe_obs::net_session_event(true, session, driver, mode as u8);
        Ok(SocketChannel {
            stream,
            session,
            driver: driver.to_owned(),
            mode,
            transcript: Transcript::new(num_servers),
            poisoned: None,
            lamport: Lamport::new(),
        })
    }

    /// The session identifier negotiated at Hello.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Sends a graceful session close. Errors are deliberately swallowed:
    /// Bye is a courtesy, the session result is already decided.
    pub fn bye(&mut self) {
        let bye = Frame {
            kind: FrameKind::Bye,
            client_to_server: true,
            session: self.session,
            half_round: self.transcript.report().half_rounds,
            server: 0,
            label: String::new(),
            payload: Vec::new(),
        };
        let stamp = self.lamport.tick();
        if journal::tracing() {
            let ctx = Frame::trace_ctx(true, self.session, bye.half_round, stamp);
            let _ = write_frame(&mut self.stream, &ctx, 0, "net-bye");
            spfe_obs::net_frame_event(true, "net-bye", 0, bye.half_round, stamp);
        }
        let _ = write_frame(&mut self.stream, &bye, 0, "net-bye");
        spfe_obs::net_session_event(false, self.session, &self.driver, self.mode as u8);
    }

    fn poison(&mut self, e: ProtocolError) -> ProtocolError {
        self.poisoned = Some(e.clone());
        e
    }

    fn roundtrip(
        &mut self,
        dir: Direction,
        label: &'static str,
        bytes: &[u8],
    ) -> Result<Vec<u8>, ProtocolError> {
        let frame = Frame::msg(
            matches!(dir, Direction::ClientToServer(_)),
            self.session,
            self.transcript.report().half_rounds,
            dir.server(),
            label,
            bytes.to_vec(),
        );
        let stamp = self.lamport.tick();
        if journal::tracing() {
            let ctx = Frame::trace_ctx(
                frame.client_to_server,
                self.session,
                frame.half_round,
                stamp,
            );
            write_frame(&mut self.stream, &ctx, dir.server(), label)?;
            spfe_obs::net_frame_event(true, label, bytes.len() as u64, frame.half_round, stamp);
        }
        write_frame(&mut self.stream, &frame, dir.server(), label)?;
        let (echo, carried) = read_frame_traced(&mut self.stream, dir.server(), label)?;
        let recv_stamp = self.lamport.observe(carried.unwrap_or(0));
        spfe_obs::net_frame_event(
            false,
            label,
            echo.payload.len() as u64,
            echo.half_round,
            recv_stamp,
        );
        match echo.kind {
            FrameKind::Msg if echo.session == self.session && echo.label == label => {
                Ok(echo.payload)
            }
            FrameKind::Error => Err(ProtocolError::InvalidMessage {
                label,
                reason: "peer aborted the session",
            }),
            _ => Err(ProtocolError::InvalidMessage {
                label,
                reason: "relay echoed a different frame",
            }),
        }
    }
}

impl<S: Read + Write> Channel for SocketChannel<S> {
    fn num_servers(&self) -> usize {
        self.transcript.num_servers()
    }

    fn begin_round(&mut self) {
        self.transcript.begin_round();
    }

    fn transfer_raw(
        &mut self,
        dir: Direction,
        label: &'static str,
        bytes: &[u8],
    ) -> Result<Vec<u8>, ProtocolError> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        match self.roundtrip(dir, label, bytes) {
            Ok(delivered) => {
                // Metered only after the delivery succeeded, mirroring the
                // faulty channel's "meter what was actually delivered".
                self.transcript.record_raw(dir, label, bytes.len());
                Ok(delivered)
            }
            Err(e) => Err(self.poison(e)),
        }
    }

    fn transcript(&self) -> &Transcript {
        &self.transcript
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;
    use std::io;

    /// An in-memory peer that answers reads from a scripted queue and
    /// records writes.
    #[derive(Debug)]
    struct Script {
        replies: VecDeque<u8>,
        written: Vec<u8>,
    }

    impl Script {
        fn relay_for(frames: &[Frame]) -> Script {
            let mut replies = VecDeque::new();
            for f in frames {
                replies.extend(f.to_bytes());
            }
            Script {
                replies,
                written: Vec::new(),
            }
        }
    }

    impl Read for Script {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.replies.is_empty() {
                return Ok(0);
            }
            let n = buf.len().min(self.replies.len());
            for b in buf.iter_mut().take(n) {
                *b = self.replies.pop_front().unwrap();
            }
            Ok(n)
        }
    }

    impl Write for Script {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.written.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn hello_ack(session: u64) -> Frame {
        Frame {
            kind: FrameKind::Hello,
            client_to_server: false,
            session,
            half_round: 0,
            server: 0,
            label: "toy".to_owned(),
            payload: vec![1],
        }
    }

    #[test]
    fn relay_transfer_meters_like_a_transcript() {
        let echo = Frame::msg(true, 9, 0, 0, "q", vec![1, 2, 3]);
        let script = Script::relay_for(&[hello_ack(9), echo]);
        let mut ch = SocketChannel::connect(script, 1, "toy", SessionMode::Relay, 9).unwrap();
        let got = ch
            .transfer_raw(Direction::ClientToServer(0), "q", &[1, 2, 3])
            .unwrap();
        assert_eq!(got, vec![1, 2, 3]);
        let rep = ch.transcript().report();
        assert_eq!(
            (rep.messages, rep.half_rounds, rep.client_to_server),
            (1, 1, 3)
        );
    }

    #[test]
    fn eof_poisons_the_channel() {
        let script = Script::relay_for(&[hello_ack(3)]);
        let mut ch = SocketChannel::connect(script, 1, "toy", SessionMode::Relay, 3).unwrap();
        let err = ch
            .transfer_raw(Direction::ClientToServer(0), "q", &[0])
            .unwrap_err();
        assert!(matches!(err, ProtocolError::ServerCrashed { .. }));
        // Poisoned: instant same error, nothing metered.
        let again = ch
            .transfer_raw(Direction::ClientToServer(0), "q", &[0])
            .unwrap_err();
        assert_eq!(again, err);
        assert_eq!(ch.transcript().report().messages, 0);
    }

    #[test]
    fn error_frame_aborts_with_invalid_message() {
        let abort = Frame {
            kind: FrameKind::Error,
            client_to_server: false,
            session: 4,
            half_round: 0,
            server: 0,
            label: "q".to_owned(),
            payload: b"nope".to_vec(),
        };
        let script = Script::relay_for(&[hello_ack(4), abort]);
        let mut ch = SocketChannel::connect(script, 1, "toy", SessionMode::Relay, 4).unwrap();
        let err = ch
            .transfer_raw(Direction::ClientToServer(0), "q", &[0])
            .unwrap_err();
        assert!(matches!(err, ProtocolError::InvalidMessage { .. }));
    }

    #[test]
    fn rejected_hello_is_typed() {
        let reject = Frame {
            kind: FrameKind::Error,
            client_to_server: false,
            session: 5,
            half_round: 0,
            server: 0,
            label: "toy".to_owned(),
            payload: b"unknown driver".to_vec(),
        };
        let script = Script::relay_for(&[reject]);
        let err = SocketChannel::connect(script, 1, "toy", SessionMode::Relay, 5).unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::InvalidMessage {
                label: "net-hello",
                ..
            }
        ));
    }
}
