//! Communication transcripts: byte and round accounting.
//!
//! The paper's primary performance measure is communication complexity,
//! counted in bits, with rounds as a secondary measure ("a round consists of
//! a message from the client to each server followed by a reply from each
//! server", §1.2; some protocols cost 1.5 or 2.5 rounds because the server
//! speaks first). [`Transcript`] simulates the wire: every logical send
//! serializes the message, records its size and direction, and hands the
//! receiver a *re-decoded* copy — so tests exercise the codec and the meter
//! reports exact on-the-wire sizes.

use crate::wire::{Wire, WireError};

/// Direction of a message relative to the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Client → server `i`.
    ClientToServer(usize),
    /// Server `i` → client.
    ServerToClient(usize),
}

impl Direction {
    /// The server on the non-client end of the message.
    pub fn server(self) -> usize {
        match self {
            Direction::ClientToServer(s) | Direction::ServerToClient(s) => s,
        }
    }
}

/// A record of one message on the simulated wire.
#[derive(Debug, Clone)]
pub struct MessageRecord {
    /// Direction of travel.
    pub direction: Direction,
    /// Protocol-level label (e.g. `"spir-query"`).
    pub label: &'static str,
    /// Serialized size in bytes.
    pub bytes: usize,
    /// The round (in half-round units) during which it was sent.
    pub half_round: u32,
}

/// Aggregate communication statistics for a protocol execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommReport {
    /// Total client → server bytes.
    pub client_to_server: u64,
    /// Total server → client bytes.
    pub server_to_client: u64,
    /// Number of messages.
    pub messages: u64,
    /// Rounds in half-round units (2 units = 1 full round, so `3` = 1.5
    /// rounds, matching the paper's "2.5 rounds" accounting).
    pub half_rounds: u32,
}

impl CommReport {
    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.client_to_server + self.server_to_client
    }

    /// Rounds as a fraction (e.g. `1.5`).
    pub fn rounds(&self) -> f64 {
        self.half_rounds as f64 / 2.0
    }
}

/// A metered, codec-exercising channel between a client and `k` servers.
///
/// # Examples
///
/// ```
/// use spfe_transport::Transcript;
/// let mut t = Transcript::new(1);
/// t.begin_round();
/// let received: u64 = t.client_to_server(0, "query", &42u64).unwrap();
/// assert_eq!(received, 42);
/// let reply: Vec<u8> = t.server_to_client(0, "answer", &vec![1u8, 2, 3]).unwrap();
/// assert_eq!(reply.len(), 3);
/// let report = t.report();
/// assert_eq!(report.half_rounds, 2);
/// assert_eq!(report.messages, 2);
/// ```
#[derive(Debug, Clone)]
pub struct Transcript {
    num_servers: usize,
    records: Vec<MessageRecord>,
    half_rounds: u32,
    /// Tracks which direction the current half-round serves.
    phase: Phase,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    ClientSpeaking,
    ServerSpeaking,
}

impl Transcript {
    /// Creates a transcript for a client and `num_servers` servers.
    ///
    /// # Panics
    ///
    /// Panics if `num_servers == 0`.
    pub fn new(num_servers: usize) -> Self {
        assert!(num_servers > 0);
        Transcript {
            num_servers,
            records: Vec::new(),
            half_rounds: 0,
            phase: Phase::Idle,
        }
    }

    /// Number of servers on this channel.
    pub fn num_servers(&self) -> usize {
        self.num_servers
    }

    /// Explicitly starts a new client-initiated round. Usually unnecessary:
    /// sends auto-advance the round structure.
    pub fn begin_round(&mut self) {
        self.phase = Phase::Idle;
    }

    fn advance(&mut self, dir: Direction) -> u32 {
        let speaking = match dir {
            Direction::ClientToServer(_) => Phase::ClientSpeaking,
            Direction::ServerToClient(_) => Phase::ServerSpeaking,
        };
        if self.phase != speaking {
            self.half_rounds += 1;
            self.phase = speaking;
        }
        self.half_rounds
    }

    /// Sends a message from the client to server `server`, returning the
    /// value as decoded by the receiving side.
    ///
    /// # Errors
    ///
    /// Fails if the message does not survive an encode/decode roundtrip
    /// (which would indicate a codec bug — surfaced rather than masked).
    ///
    /// # Panics
    ///
    /// Panics if `server >= num_servers`.
    pub fn client_to_server<T: Wire>(
        &mut self,
        server: usize,
        label: &'static str,
        msg: &T,
    ) -> Result<T, WireError> {
        assert!(server < self.num_servers, "server index out of range");
        self.transfer(Direction::ClientToServer(server), label, msg)
    }

    /// Sends a message from server `server` to the client.
    ///
    /// # Errors
    ///
    /// Fails if the message does not survive an encode/decode roundtrip.
    ///
    /// # Panics
    ///
    /// Panics if `server >= num_servers`.
    pub fn server_to_client<T: Wire>(
        &mut self,
        server: usize,
        label: &'static str,
        msg: &T,
    ) -> Result<T, WireError> {
        assert!(server < self.num_servers, "server index out of range");
        self.transfer(Direction::ServerToClient(server), label, msg)
    }

    fn transfer<T: Wire>(
        &mut self,
        dir: Direction,
        label: &'static str,
        msg: &T,
    ) -> Result<T, WireError> {
        let bytes = msg.to_bytes();
        let half_round = self.advance(dir);
        self.records.push(MessageRecord {
            direction: dir,
            label,
            bytes: bytes.len(),
            half_round,
        });
        trace_wire(dir, label, bytes.len());
        T::from_bytes(&bytes)
    }

    /// Records a raw delivery of `bytes` bytes without exercising the
    /// codec — the byte-level entry point [`crate::Channel`] builds on.
    /// Advances the half-round structure exactly like a typed send.
    pub fn record_raw(&mut self, dir: Direction, label: &'static str, bytes: usize) {
        let half_round = self.advance(dir);
        self.records.push(MessageRecord {
            direction: dir,
            label,
            bytes,
            half_round,
        });
        trace_wire(dir, label, bytes);
    }

    /// Swaps the two most recent records if they share a half-round — the
    /// metering-level effect of a reorder-within-round transport fault.
    pub fn swap_last_two_in_round(&mut self) {
        let n = self.records.len();
        if n >= 2 && self.records[n - 1].half_round == self.records[n - 2].half_round {
            self.records.swap(n - 1, n - 2);
        }
    }

    /// All message records so far.
    pub fn records(&self) -> &[MessageRecord] {
        &self.records
    }

    /// Aggregate statistics.
    pub fn report(&self) -> CommReport {
        let mut rep = CommReport {
            half_rounds: self.half_rounds,
            messages: self.records.len() as u64,
            ..CommReport::default()
        };
        for r in &self.records {
            match r.direction {
                Direction::ClientToServer(_) => rep.client_to_server += r.bytes as u64,
                Direction::ServerToClient(_) => rep.server_to_client += r.bytes as u64,
            }
        }
        rep
    }

    /// Bytes sent with a given label (for per-phase cost attribution).
    pub fn bytes_for_label(&self, label: &str) -> u64 {
        self.records
            .iter()
            .filter(|r| r.label == label)
            .map(|r| r.bytes as u64)
            .sum()
    }

    /// Per-label × per-direction byte and message breakdown, in first-use
    /// order — the attribution table the cost reports embed.
    pub fn report_by_label(&self) -> Vec<spfe_obs::LabelStat> {
        let mut out: Vec<spfe_obs::LabelStat> = Vec::new();
        for r in &self.records {
            let stat = match out.iter_mut().find(|s| s.label == r.label) {
                Some(s) => s,
                None => {
                    out.push(spfe_obs::LabelStat {
                        label: r.label.to_owned(),
                        ..spfe_obs::LabelStat::default()
                    });
                    out.last_mut().unwrap()
                }
            };
            match r.direction {
                Direction::ClientToServer(_) => {
                    stat.up_bytes += r.bytes as u64;
                    stat.up_msgs += 1;
                }
                Direction::ServerToClient(_) => {
                    stat.down_bytes += r.bytes as u64;
                    stat.down_msgs += 1;
                }
            }
        }
        out
    }

    /// Full communication stats (totals + per-label attribution) in the
    /// shape [`spfe_obs::CostReport`] embeds.
    pub fn comm_stat(&self) -> spfe_obs::CommStat {
        let rep = self.report();
        spfe_obs::CommStat {
            up_bytes: rep.client_to_server,
            down_bytes: rep.server_to_client,
            messages: rep.messages,
            half_rounds: rep.half_rounds,
            labels: self.report_by_label(),
        }
    }

    /// The per-party shape views of this transcript: the client (who
    /// observes every message) followed by each server (who observes only
    /// the messages on its own wire), in the form the leakage-audit layer
    /// fingerprints ([`spfe_obs::audit`]). `sent` is relative to the
    /// observing party. Op vectors are left empty — op counters are
    /// process-global, so their windowing belongs to the caller.
    ///
    /// Each call also marks the sealed view boundaries in the event
    /// journal (no-op unless tracing is on).
    pub fn party_views(&self) -> Vec<spfe_obs::audit::PartyView> {
        use spfe_obs::audit::{Party, PartyView, ViewEvent};
        let mut views = Vec::with_capacity(self.num_servers + 1);
        views.push(PartyView::new(Party::Client));
        for s in 0..self.num_servers {
            views.push(PartyView::new(Party::Server(s)));
        }
        for r in &self.records {
            let (client_sent, server) = match r.direction {
                Direction::ClientToServer(s) => (true, s),
                Direction::ServerToClient(s) => (false, s),
            };
            let event = |sent: bool| ViewEvent {
                half_round: r.half_round,
                sent,
                label: r.label.to_owned(),
                bytes: r.bytes as u64,
            };
            views[0].events.push(event(client_sent));
            views[server + 1].events.push(event(!client_sent));
        }
        for v in &views {
            match v.party {
                Party::Client => spfe_obs::view_event(true, 0, v.events.len() as u64),
                Party::Server(i) => spfe_obs::view_event(false, i, v.events.len() as u64),
            }
        }
        views
    }

    /// Clears all records and round state so the transcript can be reused
    /// for another execution (the server count is kept).
    pub fn reset(&mut self) {
        self.records.clear();
        self.half_rounds = 0;
        self.phase = Phase::Idle;
    }
}

/// Server-side session accounting over raw [`crate::Frame`]s.
///
/// A serving peer cannot reuse [`Transcript`] — transcript labels are
/// `&'static str` protocol identifiers, while frames carry runtime
/// strings — but the operational metrics registry (`spfe-obs::metrics`)
/// only needs the totals a transcript would report: logical payload bytes
/// and message counts per direction plus the half-round structure.
/// `FlowMeter` recovers those from the frames themselves.
///
/// Bytes and message counts are metered by each `Msg` frame's *logical*
/// direction flag: in relay mode the client physically sends both
/// directions and the echo must not be double-counted, so the serving
/// side observes each received frame once and never its own echo; in
/// compute mode it observes received frames (all client → server) and
/// the replies it originates. Half-rounds come from the sender's stamps:
/// the client stamps every frame with its own metered transcript counter
/// and the Bye frame with the final value, so for a cleanly closed
/// session the maximum stamp observed equals the client-side half-round
/// total.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowMeter {
    /// Payload bytes of client → server messages.
    pub bytes_in: u64,
    /// Payload bytes of server → client messages.
    pub bytes_out: u64,
    /// Client → server `Msg` frames observed.
    pub frames_in: u64,
    /// Server → client `Msg` frames observed.
    pub frames_out: u64,
    half_round_max: u32,
}

impl FlowMeter {
    /// A fresh meter.
    pub fn new() -> FlowMeter {
        FlowMeter::default()
    }

    /// Meters one `Msg` frame by its logical direction flag.
    pub fn observe_msg(&mut self, frame: &crate::Frame) {
        if frame.client_to_server {
            self.bytes_in += frame.payload.len() as u64;
            self.frames_in += 1;
        } else {
            self.bytes_out += frame.payload.len() as u64;
            self.frames_out += 1;
        }
        self.half_round_max = self.half_round_max.max(frame.half_round);
    }

    /// Folds a Bye frame's final half-round stamp (Bye carries no metered
    /// payload).
    pub fn observe_bye(&mut self, frame: &crate::Frame) {
        self.half_round_max = self.half_round_max.max(frame.half_round);
    }

    /// The highest half-round stamp observed — the client's half-round
    /// total when the session closed with a stamped Bye.
    pub fn half_rounds(&self) -> u32 {
        self.half_round_max
    }
}

/// Mirrors a metered delivery into the event journal (no-op unless
/// tracing is on).
fn trace_wire(dir: Direction, label: &'static str, bytes: usize) {
    spfe_obs::wire_event(
        matches!(dir, Direction::ClientToServer(_)),
        dir.server(),
        label,
        bytes as u64,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_accounting_full_round() {
        let mut t = Transcript::new(2);
        t.client_to_server(0, "q", &1u64).unwrap();
        t.client_to_server(1, "q", &2u64).unwrap();
        t.server_to_client(0, "a", &3u64).unwrap();
        t.server_to_client(1, "a", &4u64).unwrap();
        let rep = t.report();
        assert_eq!(rep.half_rounds, 2);
        assert!((rep.rounds() - 1.0).abs() < f64::EPSILON);
        assert_eq!(rep.messages, 4);
        assert_eq!(rep.client_to_server, 16);
        assert_eq!(rep.server_to_client, 16);
    }

    #[test]
    fn server_first_gives_half_round() {
        // §3.3.2 second variant: "a message from the server followed by a
        // standard round" = 1.5 rounds.
        let mut t = Transcript::new(1);
        t.server_to_client(0, "keys", &vec![0u8; 10]).unwrap();
        t.client_to_server(0, "query", &1u64).unwrap();
        t.server_to_client(0, "answer", &2u64).unwrap();
        assert_eq!(t.report().half_rounds, 3);
        assert!((t.report().rounds() - 1.5).abs() < f64::EPSILON);
    }

    #[test]
    fn report_by_label_splits_directions() {
        let mut t = Transcript::new(1);
        t.client_to_server(0, "q", &vec![0u8; 5]).unwrap();
        t.client_to_server(0, "q", &vec![0u8; 7]).unwrap();
        t.server_to_client(0, "a", &vec![0u8; 11]).unwrap();
        let labels = t.report_by_label();
        assert_eq!(labels.len(), 2);
        assert_eq!(labels[0].label, "q");
        // Each Vec<u8> carries an 8-byte length prefix on the wire.
        assert_eq!(labels[0].up_bytes, 5 + 8 + 7 + 8);
        assert_eq!(labels[0].up_msgs, 2);
        assert_eq!(labels[0].down_msgs, 0);
        assert_eq!(labels[1].label, "a");
        assert_eq!(labels[1].down_bytes, 11 + 8);
        assert_eq!(labels[1].down_msgs, 1);
        let comm = t.comm_stat();
        assert_eq!(comm.up_bytes, labels[0].up_bytes);
        assert_eq!(comm.down_bytes, labels[1].down_bytes);
        assert_eq!(comm.messages, 3);
        assert_eq!(comm.labels, labels);
    }

    #[test]
    fn reset_allows_reuse() {
        let mut t = Transcript::new(2);
        t.client_to_server(1, "q", &1u64).unwrap();
        t.server_to_client(1, "a", &2u64).unwrap();
        assert_eq!(t.report().messages, 2);
        t.reset();
        assert_eq!(t.report(), CommReport::default());
        assert!(t.records().is_empty());
        assert_eq!(t.num_servers(), 2, "server count survives reset");
        t.client_to_server(0, "q", &3u64).unwrap();
        assert_eq!(t.report().half_rounds, 1);
    }

    #[test]
    fn consecutive_same_direction_is_one_half_round() {
        let mut t = Transcript::new(3);
        for s in 0..3 {
            t.client_to_server(s, "q", &(s as u64)).unwrap();
        }
        assert_eq!(t.report().half_rounds, 1);
    }

    #[test]
    fn two_round_protocol() {
        let mut t = Transcript::new(1);
        for _ in 0..2 {
            t.client_to_server(0, "q", &1u64).unwrap();
            t.server_to_client(0, "a", &1u64).unwrap();
        }
        assert_eq!(t.report().half_rounds, 4);
        assert!((t.report().rounds() - 2.0).abs() < f64::EPSILON);
    }

    #[test]
    fn label_attribution() {
        let mut t = Transcript::new(1);
        t.client_to_server(0, "spir", &vec![0u8; 100]).unwrap();
        t.client_to_server(0, "mpc", &vec![0u8; 50]).unwrap();
        assert_eq!(t.bytes_for_label("spir"), 108); // 8-byte length prefix
        assert_eq!(t.bytes_for_label("mpc"), 58);
        assert_eq!(t.bytes_for_label("nope"), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_server_index_panics() {
        let mut t = Transcript::new(1);
        let _ = t.client_to_server(1, "q", &1u64);
    }

    #[test]
    fn begin_round_and_rounds_semantics() {
        // Auto-advance: a direction flip opens a new half-round; repeats
        // in the same direction do not.
        let mut t = Transcript::new(2);
        t.client_to_server(0, "q", &1u64).unwrap();
        t.client_to_server(1, "q", &2u64).unwrap();
        assert_eq!(t.report().half_rounds, 1, "same direction, one half-round");
        t.server_to_client(0, "a", &3u64).unwrap();
        assert_eq!(t.report().half_rounds, 2);
        assert!((t.report().rounds() - 1.0).abs() < f64::EPSILON);
        // begin_round resets the phase, so the *next* send opens a fresh
        // half-round even in the direction that was already speaking.
        t.begin_round();
        t.server_to_client(1, "a2", &4u64).unwrap();
        assert_eq!(
            t.report().half_rounds,
            3,
            "begin_round forces a new half-round"
        );
        assert!(
            (t.report().rounds() - 1.5).abs() < f64::EPSILON,
            "fractional"
        );
        // A redundant begin_round before a natural flip changes nothing.
        t.begin_round();
        t.client_to_server(0, "q2", &5u64).unwrap();
        assert_eq!(t.report().half_rounds, 4);
        // Records carry the half-round they were sent in (1-based).
        let rounds: Vec<u32> = t.records().iter().map(|r| r.half_round).collect();
        assert_eq!(rounds, vec![1, 1, 2, 3, 4]);
    }

    #[test]
    fn party_views_split_the_wire_per_party() {
        let mut t = Transcript::new(2);
        t.client_to_server(0, "q", &1u64).unwrap();
        t.client_to_server(1, "q", &2u64).unwrap();
        t.server_to_client(0, "a", &vec![1u8, 2, 3]).unwrap();
        let views = t.party_views();
        assert_eq!(views.len(), 3, "client + 2 servers");
        let client = &views[0];
        assert_eq!(client.party, spfe_obs::audit::Party::Client);
        assert_eq!(client.events.len(), 3, "client observes every message");
        assert!(client.events[0].sent && client.events[1].sent);
        assert!(!client.events[2].sent, "the answer was received");
        let s0 = &views[1];
        assert_eq!(s0.party, spfe_obs::audit::Party::Server(0));
        assert_eq!(s0.events.len(), 2, "server 0 sees only its own wire");
        assert!(!s0.events[0].sent, "the query arrived at server 0");
        assert!(s0.events[1].sent, "the answer left server 0");
        assert_eq!(s0.events[1].bytes, 3 + 8, "Vec<u8> length prefix included");
        assert_eq!(s0.events[1].half_round, 2);
        let s1 = &views[2];
        assert_eq!(s1.events.len(), 1, "server 1 never answered");
        // Same wire shape ⇒ same fingerprint; different wires differ.
        assert_eq!(t.party_views()[1].fingerprint(), s0.fingerprint());
        assert_ne!(s0.fingerprint(), s1.fingerprint());
        assert_ne!(client.fingerprint(), s0.fingerprint());
    }

    #[test]
    fn decoded_value_matches_sent() {
        let mut t = Transcript::new(1);
        let v = vec![(1u64, vec![2u8, 3]), (4u64, vec![])];
        let got = t.client_to_server(0, "q", &v).unwrap();
        assert_eq!(got, v);
    }

    #[test]
    fn flow_meter_splits_directions_and_tracks_stamps() {
        use crate::frame::{Frame, FrameKind};
        let mut flow = FlowMeter::new();
        flow.observe_msg(&Frame::msg(true, 7, 1, 0, "q", vec![0; 10]));
        flow.observe_msg(&Frame::msg(true, 7, 1, 1, "q", vec![0; 4]));
        flow.observe_msg(&Frame::msg(false, 7, 2, 0, "a", vec![0; 3]));
        assert_eq!((flow.bytes_in, flow.bytes_out), (14, 3));
        assert_eq!((flow.frames_in, flow.frames_out), (2, 1));
        assert_eq!(flow.half_rounds(), 2, "max stamp so far");
        // The Bye stamp carries the client's final half-round total and
        // meters no bytes.
        flow.observe_bye(&Frame {
            kind: FrameKind::Bye,
            client_to_server: true,
            session: 7,
            half_round: 4,
            server: 0,
            label: String::new(),
            payload: Vec::new(),
        });
        assert_eq!(flow.half_rounds(), 4);
        assert_eq!((flow.bytes_in, flow.frames_in), (14, 2));
    }
}
