//! Length-prefixed session framing for networked transports.
//!
//! Everything above this module is sans-io: protocol messages are `Wire`
//! byte strings and session cores exchange [`crate::session::OutMsg`]
//! values. This module defines how those byte strings travel over a real
//! stream — a fixed 30-byte header (magic, version, kind, direction,
//! session id, half-round, server index, label length, payload length)
//! followed by the label and the payload, both length-prefixed by the
//! header. The payload bytes are exactly the [`crate::Wire`] encoding the
//! in-memory [`crate::Transcript`] meters, so a socket run and an
//! in-memory run of the same protocol transfer byte-identical message
//! bodies.
//!
//! Decoding is defensive: magic, version, kind, direction, and both
//! length fields are validated *before* any allocation, so a malicious or
//! corrupted peer can neither panic the process nor make it allocate an
//! unbounded buffer. Every rejection is a typed
//! [`ProtocolError::Codec`] with a distinct context string.

use crate::error::ProtocolError;
use crate::wire::WireError;
use std::io::{self, Read, Write};

/// The 4-byte frame magic.
pub const MAGIC: [u8; 4] = *b"SPFE";

/// Protocol version carried in every frame.
pub const VERSION: u16 = 1;

/// Fixed header size in bytes: magic(4) + version(2) + kind(1) + dir(1) +
/// session(8) + half_round(4) + server(4) + label_len(2) + payload_len(4).
pub const HEADER_LEN: usize = 30;

/// Upper bound on the label field (protocol labels are short identifiers).
pub const MAX_LABEL_LEN: usize = 64;

/// Upper bound on a frame payload (far above any message in the
/// workspace; a length field past this is rejected before allocation).
pub const MAX_PAYLOAD_LEN: usize = 1 << 26;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Session open: label = driver name, payload = `[mode]`.
    Hello = 0,
    /// A protocol message; payload is the `Wire` encoding.
    Msg = 1,
    /// Graceful session close.
    Bye = 2,
    /// The peer aborted the session; payload is a display string.
    Error = 3,
    /// A metrics scrape: the request payload is `[format]` (0 = JSON,
    /// 1 = Prometheus text), the reply payload is the rendered
    /// `spfe-metrics/v1` snapshot. Served on the same listener as
    /// sessions so operators need no second port.
    Stats = 4,
    /// A causal-context carrier for distributed session tracing: the
    /// `server` header field carries the sender's Lamport stamp
    /// ([`crate::Lamport`]) and `half_round` its half-round counter, for
    /// the next session frame on the stream. Label and payload are empty
    /// (the 30-byte header has no reserved space). Only emitted while the
    /// sender's trace journal is on; receivers absorb it transparently on
    /// every read path, and it is never metered — transcripts, metrics,
    /// and view fingerprints are byte-identical with tracing on or off.
    TraceCtx = 5,
}

impl FrameKind {
    fn from_u8(v: u8) -> Option<FrameKind> {
        match v {
            0 => Some(FrameKind::Hello),
            1 => Some(FrameKind::Msg),
            2 => Some(FrameKind::Bye),
            3 => Some(FrameKind::Error),
            4 => Some(FrameKind::Stats),
            5 => Some(FrameKind::TraceCtx),
            _ => None,
        }
    }
}

/// One framed message on a stream transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the frame carries.
    pub kind: FrameKind,
    /// Direction of travel (`true` = client → server).
    pub client_to_server: bool,
    /// Session identifier (chosen by the client at Hello).
    pub session: u64,
    /// The sender's half-round counter when the frame was emitted
    /// (informational; the authoritative accounting is each side's own
    /// metered transcript).
    pub half_round: u32,
    /// Logical server index the frame addresses or originates from.
    pub server: u32,
    /// Protocol label (or driver name in a Hello frame).
    pub label: String,
    /// Message body (the `Wire` encoding of the protocol message).
    pub payload: Vec<u8>,
}

fn codec(context: &'static str) -> ProtocolError {
    ProtocolError::Codec(WireError { context })
}

impl Frame {
    /// Builds a `Msg` frame.
    pub fn msg(
        client_to_server: bool,
        session: u64,
        half_round: u32,
        server: usize,
        label: &str,
        payload: Vec<u8>,
    ) -> Frame {
        Frame {
            kind: FrameKind::Msg,
            client_to_server,
            session,
            half_round,
            server: server as u32,
            label: label.to_owned(),
            payload,
        }
    }

    /// Builds a `TraceCtx` frame carrying `lamport` (and the sender's
    /// half-round counter) for the next session frame on the stream.
    pub fn trace_ctx(client_to_server: bool, session: u64, half_round: u32, lamport: u32) -> Frame {
        Frame {
            kind: FrameKind::TraceCtx,
            client_to_server,
            session,
            half_round,
            server: lamport,
            label: String::new(),
            payload: Vec::new(),
        }
    }

    /// Appends the wire encoding of this frame to `out`.
    ///
    /// # Panics
    ///
    /// Panics if the label or payload exceed the frame bounds (sender-side
    /// bug: every label in the workspace is far below [`MAX_LABEL_LEN`]).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        assert!(self.label.len() <= MAX_LABEL_LEN, "frame label too long");
        assert!(
            self.payload.len() <= MAX_PAYLOAD_LEN,
            "frame payload too long"
        );
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.push(self.kind as u8);
        out.push(u8::from(!self.client_to_server));
        out.extend_from_slice(&self.session.to_le_bytes());
        out.extend_from_slice(&self.half_round.to_le_bytes());
        out.extend_from_slice(&self.server.to_le_bytes());
        out.extend_from_slice(&(self.label.len() as u16).to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(self.label.as_bytes());
        out.extend_from_slice(&self.payload);
    }

    /// The full encoding as a fresh buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.label.len() + self.payload.len());
        self.encode_into(&mut out);
        out
    }

    /// Decodes one frame from the front of `buf`, returning it and the
    /// number of bytes consumed.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Codec`] on truncation, bad magic, an unsupported
    /// version, an unknown kind or direction, an over-bound length field,
    /// or a non-UTF-8 label — never a panic, never an allocation larger
    /// than the validated lengths.
    pub fn decode(buf: &[u8]) -> Result<(Frame, usize), ProtocolError> {
        if buf.len() < HEADER_LEN {
            return Err(codec("frame: truncated header"));
        }
        let (label_len, payload_len) =
            Self::validate_header(buf[..HEADER_LEN].try_into().unwrap())?;
        let total = HEADER_LEN + label_len + payload_len;
        if buf.len() < total {
            return Err(codec("frame: truncated body"));
        }
        let label = std::str::from_utf8(&buf[HEADER_LEN..HEADER_LEN + label_len])
            .map_err(|_| codec("frame: label is not utf-8"))?
            .to_owned();
        let payload = buf[HEADER_LEN + label_len..total].to_vec();
        let frame = Self::from_parts(buf[..HEADER_LEN].try_into().unwrap(), label, payload);
        Ok((frame, total))
    }

    /// Validates a raw header and returns `(label_len, payload_len)`.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Codec`] with a field-specific context.
    pub fn validate_header(h: &[u8; HEADER_LEN]) -> Result<(usize, usize), ProtocolError> {
        if h[0..4] != MAGIC {
            return Err(codec("frame: bad magic"));
        }
        if u16::from_le_bytes([h[4], h[5]]) != VERSION {
            return Err(codec("frame: unsupported version"));
        }
        if FrameKind::from_u8(h[6]).is_none() {
            return Err(codec("frame: unknown kind"));
        }
        if h[7] > 1 {
            return Err(codec("frame: unknown direction"));
        }
        let label_len = u16::from_le_bytes([h[24], h[25]]) as usize;
        if label_len > MAX_LABEL_LEN {
            return Err(codec("frame: label exceeds bound"));
        }
        let payload_len = u32::from_le_bytes([h[26], h[27], h[28], h[29]]) as usize;
        if payload_len > MAX_PAYLOAD_LEN {
            return Err(codec("frame: payload exceeds bound"));
        }
        Ok((label_len, payload_len))
    }

    fn from_parts(h: &[u8; HEADER_LEN], label: String, payload: Vec<u8>) -> Frame {
        Frame {
            kind: FrameKind::from_u8(h[6]).expect("validated"),
            client_to_server: h[7] == 0,
            session: u64::from_le_bytes(h[8..16].try_into().unwrap()),
            half_round: u32::from_le_bytes(h[16..20].try_into().unwrap()),
            server: u32::from_le_bytes(h[20..24].try_into().unwrap()),
            label,
            payload,
        }
    }
}

/// Maps a stream I/O failure to the typed transport error vocabulary:
/// deadline expiries become [`ProtocolError::Timeout`], connection
/// teardown becomes [`ProtocolError::ServerCrashed`].
pub fn io_to_protocol(e: &io::Error, server: usize, label: &'static str) -> ProtocolError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
            ProtocolError::Timeout { server, label }
        }
        _ => ProtocolError::ServerCrashed { server },
    }
}

/// Writes one frame to `w` and flushes.
///
/// # Errors
///
/// I/O failures mapped by [`io_to_protocol`] (attributed to `server` /
/// `label` for diagnostics).
pub fn write_frame<W: Write>(
    w: &mut W,
    frame: &Frame,
    server: usize,
    label: &'static str,
) -> Result<(), ProtocolError> {
    let bytes = frame.to_bytes();
    w.write_all(&bytes)
        .and_then(|()| w.flush())
        .map_err(|e| io_to_protocol(&e, server, label))
}

/// Reads exactly `buf.len()` bytes. Returns `Ok(false)` if the stream was
/// already at EOF (no bytes read) and `eof_ok` is set; EOF *mid*-buffer is
/// always a [`ProtocolError::ServerCrashed`].
fn read_full<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    eof_ok: bool,
    server: usize,
    label: &'static str,
) -> Result<bool, ProtocolError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && eof_ok {
                    return Ok(false);
                }
                return Err(ProtocolError::ServerCrashed { server });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(io_to_protocol(&e, server, label)),
        }
    }
    Ok(true)
}

/// Reads one full frame from `r`.
///
/// # Errors
///
/// [`ProtocolError::Codec`] for malformed frames, [`ProtocolError::Timeout`]
/// when a read deadline expires, [`ProtocolError::ServerCrashed`] when the
/// stream ends mid-frame or is reset.
pub fn read_frame<R: Read>(
    r: &mut R,
    server: usize,
    label: &'static str,
) -> Result<Frame, ProtocolError> {
    read_frame_or_eof(r, false, server, label)?.ok_or(ProtocolError::ServerCrashed { server })
}

/// Like [`read_frame`], but `Ok(None)` when the stream is cleanly at EOF
/// *between* frames (the peer closed the session without a Bye).
///
/// # Errors
///
/// As for [`read_frame`].
pub fn read_frame_or_eof<R: Read>(
    r: &mut R,
    eof_ok: bool,
    server: usize,
    label: &'static str,
) -> Result<Option<Frame>, ProtocolError> {
    let mut header = [0u8; HEADER_LEN];
    if !read_full(r, &mut header, eof_ok, server, label)? {
        return Ok(None);
    }
    let (label_len, payload_len) = Frame::validate_header(&header)?;
    let mut body = vec![0u8; label_len + payload_len];
    read_full(r, &mut body, false, server, label)?;
    let text = std::str::from_utf8(&body[..label_len])
        .map_err(|_| codec("frame: label is not utf-8"))?
        .to_owned();
    let payload = body[label_len..].to_vec();
    Ok(Some(Frame::from_parts(&header, text, payload)))
}

/// Like [`read_frame`], but transparently absorbs any
/// [`FrameKind::TraceCtx`] frames in front of the next session frame,
/// returning the frame together with the carried Lamport stamp (if the
/// peer is tracing). This is the read primitive every session loop uses,
/// so a tracing peer interoperates with a non-tracing one.
///
/// # Errors
///
/// As for [`read_frame`].
pub fn read_frame_traced<R: Read>(
    r: &mut R,
    server: usize,
    label: &'static str,
) -> Result<(Frame, Option<u32>), ProtocolError> {
    match read_frame_or_eof_traced(r, false, server, label)? {
        Some(got) => Ok(got),
        None => Err(ProtocolError::ServerCrashed { server }),
    }
}

/// Like [`read_frame_or_eof`], but absorbs [`FrameKind::TraceCtx`] frames
/// as [`read_frame_traced`] does. A clean EOF between frames (including
/// directly after a trace context, which a crashing peer can leave
/// behind) yields `Ok(None)` when `eof_ok` is set.
///
/// # Errors
///
/// As for [`read_frame_or_eof`].
pub fn read_frame_or_eof_traced<R: Read>(
    r: &mut R,
    eof_ok: bool,
    server: usize,
    label: &'static str,
) -> Result<Option<(Frame, Option<u32>)>, ProtocolError> {
    let mut carried: Option<u32> = None;
    loop {
        match read_frame_or_eof(r, eof_ok, server, label)? {
            Some(f) if f.kind == FrameKind::TraceCtx => carried = Some(f.server),
            Some(f) => return Ok(Some((f, carried))),
            None => return Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame::msg(true, 0xDEAD_BEEF, 3, 1, "pir2-query", vec![1, 2, 3, 4])
    }

    #[test]
    fn roundtrip() {
        let f = sample();
        let bytes = f.to_bytes();
        assert_eq!(bytes.len(), HEADER_LEN + 10 + 4);
        let (got, used) = Frame::decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(got, f);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            Frame::decode(&bytes),
            Err(ProtocolError::Codec(WireError {
                context: "frame: bad magic"
            }))
        ));
        let mut bytes = sample().to_bytes();
        bytes[4] = 9;
        assert!(matches!(
            Frame::decode(&bytes),
            Err(ProtocolError::Codec(WireError {
                context: "frame: unsupported version"
            }))
        ));
    }

    #[test]
    fn rejects_oversized_lengths_without_allocating() {
        let mut bytes = sample().to_bytes();
        bytes[26..30].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes),
            Err(ProtocolError::Codec(WireError {
                context: "frame: payload exceeds bound"
            }))
        ));
        let mut bytes = sample().to_bytes();
        bytes[24..26].copy_from_slice(&u16::MAX.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes),
            Err(ProtocolError::Codec(WireError {
                context: "frame: label exceeds bound"
            }))
        ));
    }

    #[test]
    fn truncation_is_typed() {
        let bytes = sample().to_bytes();
        for cut in [0, 1, HEADER_LEN - 1, HEADER_LEN, bytes.len() - 1] {
            assert!(
                matches!(Frame::decode(&bytes[..cut]), Err(ProtocolError::Codec(_))),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn stream_roundtrip_and_eof() {
        let f = sample();
        let mut buf = Vec::new();
        write_frame(&mut buf, &f, 0, "t").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let got = read_frame(&mut cursor, 0, "t").unwrap();
        assert_eq!(got, f);
        assert!(read_frame_or_eof(&mut cursor, true, 0, "t")
            .unwrap()
            .is_none());
        assert!(matches!(
            read_frame(&mut cursor, 7, "t"),
            Err(ProtocolError::ServerCrashed { server: 7 })
        ));
    }

    #[test]
    fn trace_ctx_roundtrips_and_is_header_only() {
        let f = Frame::trace_ctx(true, 77, 3, 41);
        let bytes = f.to_bytes();
        assert_eq!(bytes.len(), HEADER_LEN, "no label, no payload");
        let (got, used) = Frame::decode(&bytes).unwrap();
        assert_eq!(used, HEADER_LEN);
        assert_eq!(got, f);
        assert_eq!(
            (got.kind, got.server, got.half_round),
            (FrameKind::TraceCtx, 41, 3)
        );
    }

    #[test]
    fn traced_reader_absorbs_trace_ctx_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::trace_ctx(true, 9, 1, 5), 0, "t").unwrap();
        let msg = sample();
        write_frame(&mut buf, &msg, 0, "t").unwrap();
        // A bare frame with no context in front carries no stamp.
        write_frame(&mut buf, &msg, 0, "t").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let (got, stamp) = read_frame_traced(&mut cursor, 0, "t").unwrap();
        assert_eq!(got, msg);
        assert_eq!(stamp, Some(5));
        let (got, stamp) = read_frame_traced(&mut cursor, 0, "t").unwrap();
        assert_eq!(got, msg);
        assert_eq!(stamp, None);
        // EOF directly after a trailing context is still a clean EOF.
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::trace_ctx(true, 9, 2, 6), 0, "t").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_frame_or_eof_traced(&mut cursor, true, 0, "t")
            .unwrap()
            .is_none());
    }

    #[test]
    fn io_error_mapping() {
        let te = io::Error::new(io::ErrorKind::TimedOut, "t");
        assert!(matches!(
            io_to_protocol(&te, 2, "lbl"),
            ProtocolError::Timeout {
                server: 2,
                label: "lbl"
            }
        ));
        let re = io::Error::new(io::ErrorKind::ConnectionReset, "r");
        assert!(matches!(
            io_to_protocol(&re, 1, "lbl"),
            ProtocolError::ServerCrashed { server: 1 }
        ));
    }
}
