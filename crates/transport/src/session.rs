//! Sans-io session cores: protocol state machines with the transport
//! fully external.
//!
//! A [`SessionCore`] is one party's half of a protocol as a pure message
//! processor — *message in → new state + messages out* — with no channel,
//! socket, rng, or clock inside. The driver that owns the transport feeds
//! it delivered bytes and carries its emissions; the same core therefore
//! runs unchanged over the in-memory [`Transcript`](crate::Transcript),
//! the fault-injecting [`crate::FaultyChannel`], or a TCP stream, and the
//! conformance matrix (`tests/net_conformance.rs`) proves all three
//! produce byte-identical transcripts.
//!
//! [`pump`] is the in-memory driver: it runs a client core against a set
//! of server cores over any [`Channel`], delivering messages in the same
//! phase order as the monolithic `run()` functions (all client → server
//! messages of a burst, then all server replies in server order), so the
//! metered half-round structure — and hence every audit fingerprint —
//! matches the monolithic execution exactly.

use crate::channel::{deliver_with_retry, Channel};
use crate::error::ProtocolError;
use crate::lamport::Lamport;
use crate::meter::Direction;

/// Where a session core stands after processing a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// More messages are expected.
    Running,
    /// The core has produced its final output (or sent its last message).
    Done,
}

/// A message a core asks its driver to deliver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutMsg {
    /// The server on the non-client end of the message.
    pub server: usize,
    /// Direction (`true` = client → server).
    pub client_to_server: bool,
    /// Protocol label (the same label the monolithic driver meters).
    pub label: &'static str,
    /// The `Wire` encoding of the protocol message.
    pub payload: Vec<u8>,
}

impl OutMsg {
    /// A client → server message.
    pub fn to_server(server: usize, label: &'static str, payload: Vec<u8>) -> OutMsg {
        OutMsg {
            server,
            client_to_server: true,
            label,
            payload,
        }
    }

    /// A server → client message from server `server`.
    pub fn to_client(server: usize, label: &'static str, payload: Vec<u8>) -> OutMsg {
        OutMsg {
            server,
            client_to_server: false,
            label,
            payload,
        }
    }
}

/// One party's half of a protocol as an explicit state machine.
///
/// Object-safe; implementations live next to the protocol code they
/// extract (e.g. `spfe_pir::xor2::Xor2ServerCore`). Any randomness is
/// consumed at construction time, so a core's behaviour is a pure
/// function of the messages fed to it.
pub trait SessionCore {
    /// Messages to send before anything is received (client cores emit
    /// their opening queries here; server cores usually emit nothing).
    ///
    /// # Errors
    ///
    /// [`ProtocolError`] if the core cannot open the session.
    fn start(&mut self) -> Result<(SessionState, Vec<OutMsg>), ProtocolError> {
        Ok((SessionState::Running, Vec::new()))
    }

    /// Feeds one delivered message: `server` is the peer on the other end
    /// (for a server core, its own index), `half_round` the receiver-side
    /// half-round counter, `payload` the bytes as seen by this party.
    ///
    /// # Errors
    ///
    /// [`ProtocolError`] on malformed bytes or protocol violations; the
    /// driver aborts the session and surfaces the error.
    fn on_message(
        &mut self,
        half_round: u32,
        server: usize,
        label: &str,
        payload: &[u8],
    ) -> Result<(SessionState, Vec<OutMsg>), ProtocolError>;
}

/// A client-side [`SessionCore`] that reduces the protocol result to the
/// `u64` digest convention the conformance harness uses.
pub trait ClientCore: SessionCore {
    /// The digest of the protocol result, once [`SessionState::Done`].
    fn digest(&self) -> Option<u64>;

    /// Maps a wire label back into the protocol's static label set, so a
    /// networked driver can meter received frames with the same
    /// `&'static str` labels the in-memory transcript uses. `None` marks
    /// the label as foreign to this protocol.
    fn static_label(&self, label: &str) -> Option<&'static str>;
}

/// Runs a client core against its server cores over any [`Channel`],
/// phase-synchronized: each burst delivers every client → server message
/// (feeding the server cores), then every server reply in server order —
/// the exact delivery order of the monolithic `run()` functions, so the
/// metered transcript is byte-identical to theirs. Transient transport
/// faults are retried with the same bounded policy as
/// [`crate::ChannelExt`].
///
/// # Errors
///
/// Any [`ProtocolError`] surfaced by the transport or either side's core,
/// or [`ProtocolError::InvalidMessage`] if the client core stops without
/// a digest.
pub fn pump(
    ch: &mut dyn Channel,
    client: &mut dyn ClientCore,
    servers: &mut [Box<dyn SessionCore + Send>],
) -> Result<u64, ProtocolError> {
    for s in servers.iter_mut() {
        // Server cores may not speak first in this driver family.
        let (_, outs) = s.start()?;
        if !outs.is_empty() {
            return Err(ProtocolError::InvalidMessage {
                label: "session",
                reason: "server core tried to speak before the client",
            });
        }
    }
    let (mut state, mut outbox) = client.start()?;
    let mut half_round = 0u32;
    // Causal clocks for the trace journal: one per party, stamped once
    // per *logical* delivery (a retried delivery reuses its stamp), so
    // stamps stay strictly monotone per party under masked faults.
    let mut client_clock = Lamport::new();
    let mut server_clocks = vec![Lamport::new(); servers.len()];
    while !outbox.is_empty() {
        let mut replies: Vec<OutMsg> = Vec::new();
        half_round += 1;
        for m in outbox.drain(..) {
            if !m.client_to_server || m.server >= servers.len() {
                return Err(ProtocolError::InvalidMessage {
                    label: m.label,
                    reason: "client core emitted a misdirected message",
                });
            }
            let stamp = client_clock.tick();
            spfe_obs::net_frame_event(true, m.label, m.payload.len() as u64, half_round, stamp);
            let delivered =
                deliver_with_retry(ch, Direction::ClientToServer(m.server), m.label, &m.payload)?;
            let recv = server_clocks[m.server].observe(stamp);
            spfe_obs::net_frame_event(false, m.label, delivered.len() as u64, half_round, recv);
            let (_, outs) =
                servers[m.server].on_message(half_round, m.server, m.label, &delivered)?;
            replies.extend(outs);
        }
        half_round += 1;
        let mut next: Vec<OutMsg> = Vec::new();
        for m in replies {
            if m.client_to_server || m.server >= servers.len() {
                return Err(ProtocolError::InvalidMessage {
                    label: m.label,
                    reason: "server core emitted a misdirected message",
                });
            }
            let stamp = server_clocks[m.server].tick();
            spfe_obs::net_frame_event(true, m.label, m.payload.len() as u64, half_round, stamp);
            let delivered =
                deliver_with_retry(ch, Direction::ServerToClient(m.server), m.label, &m.payload)?;
            let recv = client_clock.observe(stamp);
            spfe_obs::net_frame_event(false, m.label, delivered.len() as u64, half_round, recv);
            let (s, outs) = client.on_message(half_round, m.server, m.label, &delivered)?;
            state = s;
            next.extend(outs);
        }
        outbox = next;
        if state == SessionState::Done && outbox.is_empty() {
            break;
        }
        if outbox.is_empty() && state == SessionState::Running {
            return Err(ProtocolError::InvalidMessage {
                label: "session",
                reason: "session stalled: no messages in flight and client not done",
            });
        }
    }
    client.digest().ok_or(ProtocolError::InvalidMessage {
        label: "session",
        reason: "client core finished without a digest",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meter::Transcript;
    use crate::wire::Wire;

    /// Toy protocol: client sends `x` to each server, server replies
    /// `x + server`, client sums the replies.
    struct ToyClient {
        x: u64,
        k: usize,
        got: Vec<Option<u64>>,
        sum: Option<u64>,
    }

    impl SessionCore for ToyClient {
        fn start(&mut self) -> Result<(SessionState, Vec<OutMsg>), ProtocolError> {
            let outs = (0..self.k)
                .map(|s| OutMsg::to_server(s, "toy-q", self.x.to_bytes()))
                .collect();
            Ok((SessionState::Running, outs))
        }

        fn on_message(
            &mut self,
            _half_round: u32,
            server: usize,
            label: &str,
            payload: &[u8],
        ) -> Result<(SessionState, Vec<OutMsg>), ProtocolError> {
            assert_eq!(label, "toy-a");
            let v = u64::from_bytes(payload)?;
            self.got[server] = Some(v);
            if self.got.iter().all(Option::is_some) {
                self.sum = Some(self.got.iter().map(|v| v.unwrap()).sum());
                return Ok((SessionState::Done, Vec::new()));
            }
            Ok((SessionState::Running, Vec::new()))
        }
    }

    impl ClientCore for ToyClient {
        fn digest(&self) -> Option<u64> {
            self.sum
        }
        fn static_label(&self, label: &str) -> Option<&'static str> {
            (label == "toy-a").then_some("toy-a")
        }
    }

    struct ToyServer {
        index: usize,
    }

    impl SessionCore for ToyServer {
        fn on_message(
            &mut self,
            _half_round: u32,
            server: usize,
            label: &str,
            payload: &[u8],
        ) -> Result<(SessionState, Vec<OutMsg>), ProtocolError> {
            assert_eq!(server, self.index);
            assert_eq!(label, "toy-q");
            let x = u64::from_bytes(payload)?;
            let reply = (x + self.index as u64).to_bytes();
            Ok((
                SessionState::Done,
                vec![OutMsg::to_client(self.index, "toy-a", reply)],
            ))
        }
    }

    #[test]
    fn pump_runs_the_toy_protocol() {
        let k = 3;
        let mut client = ToyClient {
            x: 10,
            k,
            got: vec![None; k],
            sum: None,
        };
        let mut servers: Vec<Box<dyn SessionCore + Send>> = (0..k)
            .map(|index| Box::new(ToyServer { index }) as Box<dyn SessionCore + Send>)
            .collect();
        let mut t = Transcript::new(k);
        let got = pump(&mut t, &mut client, &mut servers).unwrap();
        assert_eq!(got, 33);
        let rep = t.report();
        assert_eq!(rep.half_rounds, 2, "one full round");
        assert_eq!(rep.messages, 2 * k as u64);
    }

    #[test]
    fn pump_surfaces_misdirected_messages() {
        struct Bad;
        impl SessionCore for Bad {
            fn start(&mut self) -> Result<(SessionState, Vec<OutMsg>), ProtocolError> {
                Ok((
                    SessionState::Running,
                    vec![OutMsg::to_server(5, "bad", vec![])],
                ))
            }
            fn on_message(
                &mut self,
                _: u32,
                _: usize,
                _: &str,
                _: &[u8],
            ) -> Result<(SessionState, Vec<OutMsg>), ProtocolError> {
                unreachable!()
            }
        }
        impl ClientCore for Bad {
            fn digest(&self) -> Option<u64> {
                None
            }
            fn static_label(&self, _: &str) -> Option<&'static str> {
                None
            }
        }
        let mut t = Transcript::new(1);
        let err = pump(&mut t, &mut Bad, &mut []).unwrap_err();
        assert!(matches!(err, ProtocolError::InvalidMessage { .. }));
    }
}
