//! Byte-exact message encoding.
//!
//! Every protocol message in the workspace implements [`Wire`]; the
//! [`Transcript`](crate::Transcript) serializes each message on "send" and
//! deserializes it on "receive", so communication accounting reflects real
//! serialized sizes rather than in-memory estimates — the quantity the
//! paper's complexity claims are about.

use std::fmt;

/// Error produced when decoding a malformed message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Human-readable description of the decode failure.
    pub context: &'static str,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire decode error: {}", self.context)
    }
}

impl std::error::Error for WireError {}

/// A cursor over received bytes.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over a byte buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Consumes exactly `n` bytes.
    ///
    /// # Errors
    ///
    /// Fails if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError {
                context: "unexpected end of message",
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// True iff all bytes were consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Number of unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Serializable protocol message.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes a value from the reader.
    ///
    /// # Errors
    ///
    /// Fails on malformed or truncated input.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// Convenience: full encoding as a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Convenience: decode from a complete buffer, requiring full consumption.
    ///
    /// # Errors
    ///
    /// Fails on malformed input or trailing bytes.
    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        if !r.is_exhausted() {
            return Err(WireError {
                context: "trailing bytes after message",
            });
        }
        Ok(v)
    }
}

macro_rules! impl_wire_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
                let bytes = r.take(std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(bytes.try_into().unwrap()))
            }
        }
    )*};
}
impl_wire_int!(u8, u16, u32, u64, u128, i64);

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError {
                context: "invalid bool",
            }),
        }
    }
}

impl Wire for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let v = u64::decode(r)?;
        usize::try_from(v).map_err(|_| WireError {
            context: "usize overflow",
        })
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = u64::decode(r)? as usize;
        // Defensive cap: each element consumes at least one byte.
        if len > r.remaining() && std::mem::size_of::<T>() > 0 {
            return Err(WireError {
                context: "length prefix exceeds message",
            });
        }
        let mut out = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Wire, U: Wire> Wire for (T, U) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((T::decode(r)?, U::decode(r)?))
    }
}

impl<T: Wire, U: Wire, V: Wire> Wire for (T, U, V) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((T::decode(r)?, U::decode(r)?, V::decode(r)?))
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.take(1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(WireError {
                context: "invalid option tag",
            }),
        }
    }
}

impl<const N: usize> Wire for [u8; N] {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(r.take(N)?.try_into().unwrap())
    }
}

impl Wire for spfe_math::Nat {
    fn encode(&self, out: &mut Vec<u8>) {
        // Padded to the next limb (8-byte) boundary, not minimal-length:
        // a minimal encoding makes the wire size a function of the value
        // (a uniform 96-bit group element sheds its top byte with
        // probability ~1/256), which is exactly the length side-channel
        // the leakage audit gates against. Decode skips leading zeros.
        let bytes = self.to_be_bytes();
        let padded = bytes.len().div_ceil(8) * 8;
        (padded as u64).encode(out);
        out.resize(out.len() + (padded - bytes.len()), 0);
        out.extend_from_slice(&bytes);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = u64::decode(r)? as usize;
        Ok(spfe_math::Nat::from_be_bytes(r.take(len)?))
    }
}

impl Wire for String {
    fn encode(&self, out: &mut Vec<u8>) {
        let bytes = self.as_bytes();
        (bytes.len() as u64).encode(out);
        out.extend_from_slice(bytes);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = u64::decode(r)? as usize;
        String::from_utf8(r.take(len)?.to_vec()).map_err(|_| WireError {
            context: "invalid utf-8",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfe_math::Nat;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(T::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u8);
        roundtrip(1234u16);
        roundtrip(0xdead_beefu32);
        roundtrip(u64::MAX);
        roundtrip(u128::MAX - 1);
        roundtrip(-42i64);
        roundtrip(true);
        roundtrip(false);
        roundtrip(12345usize);
    }

    #[test]
    fn container_roundtrips() {
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(Some(7u32));
        roundtrip(Option::<u32>::None);
        roundtrip((1u8, 2u64));
        roundtrip((1u8, 2u64, vec![3u32]));
        roundtrip([9u8; 32]);
        roundtrip("hello SPFE".to_string());
        roundtrip(vec![vec![1u8], vec![], vec![2, 3]]);
    }

    #[test]
    fn nat_roundtrip() {
        roundtrip(Nat::zero());
        roundtrip(Nat::from(u64::MAX));
        roundtrip(Nat::from_hex("deadbeefcafebabe0123456789").unwrap());
        roundtrip(vec![Nat::one(), Nat::from(300u64)]);
    }

    #[test]
    fn truncated_input_fails() {
        let bytes = 12345u64.to_bytes();
        assert!(u64::from_bytes(&bytes[..4]).is_err());
    }

    #[test]
    fn trailing_bytes_fail() {
        let mut bytes = 1u8.to_bytes();
        bytes.push(0);
        assert!(u8::from_bytes(&bytes).is_err());
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        // Claims 2^60 elements but supplies none.
        let mut bytes = Vec::new();
        (1u64 << 60).encode(&mut bytes);
        assert!(Vec::<u64>::from_bytes(&bytes).is_err());
    }

    #[test]
    fn invalid_bool_and_option_tags() {
        assert!(bool::from_bytes(&[2]).is_err());
        assert!(Option::<u8>::from_bytes(&[9, 0]).is_err());
    }
}
