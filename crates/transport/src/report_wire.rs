//! [`Wire`] encodings for the cost-report types.
//!
//! [`CommReport`] and [`spfe_obs::CostReport`] travel byte-exactly — a
//! benchmark runner can ship a report to a collector, or persist it and
//! reload it, without a lossy text round-trip. The impls live here (not in
//! `spfe-obs`) because the `Wire` trait is this crate's; `spfe-obs` stays
//! dependency-free.

use crate::meter::CommReport;
use crate::wire::{Reader, Wire, WireError};
use spfe_obs::{CommStat, CostReport, LabelStat, MemStat, Op, OpStat, SpanStat};

impl Wire for CommReport {
    fn encode(&self, out: &mut Vec<u8>) {
        self.client_to_server.encode(out);
        self.server_to_client.encode(out);
        self.messages.encode(out);
        self.half_rounds.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(CommReport {
            client_to_server: u64::decode(r)?,
            server_to_client: u64::decode(r)?,
            messages: u64::decode(r)?,
            half_rounds: u32::decode(r)?,
        })
    }
}

impl Wire for LabelStat {
    fn encode(&self, out: &mut Vec<u8>) {
        self.label.encode(out);
        self.up_bytes.encode(out);
        self.up_msgs.encode(out);
        self.down_bytes.encode(out);
        self.down_msgs.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(LabelStat {
            label: String::decode(r)?,
            up_bytes: u64::decode(r)?,
            up_msgs: u64::decode(r)?,
            down_bytes: u64::decode(r)?,
            down_msgs: u64::decode(r)?,
        })
    }
}

impl Wire for CommStat {
    fn encode(&self, out: &mut Vec<u8>) {
        self.up_bytes.encode(out);
        self.down_bytes.encode(out);
        self.messages.encode(out);
        self.half_rounds.encode(out);
        self.labels.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(CommStat {
            up_bytes: u64::decode(r)?,
            down_bytes: u64::decode(r)?,
            messages: u64::decode(r)?,
            half_rounds: u32::decode(r)?,
            labels: Vec::<LabelStat>::decode(r)?,
        })
    }
}

impl Wire for SpanStat {
    fn encode(&self, out: &mut Vec<u8>) {
        self.path.encode(out);
        self.calls.encode(out);
        self.ns.encode(out);
        self.p50_ns.encode(out);
        self.p95_ns.encode(out);
        self.p99_ns.encode(out);
        self.allocs.encode(out);
        self.alloc_bytes.encode(out);
        self.peak_live_bytes.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SpanStat {
            path: String::decode(r)?,
            calls: u64::decode(r)?,
            ns: u64::decode(r)?,
            p50_ns: u64::decode(r)?,
            p95_ns: u64::decode(r)?,
            p99_ns: u64::decode(r)?,
            allocs: u64::decode(r)?,
            alloc_bytes: u64::decode(r)?,
            peak_live_bytes: u64::decode(r)?,
        })
    }
}

impl Wire for MemStat {
    fn encode(&self, out: &mut Vec<u8>) {
        self.allocs.encode(out);
        self.alloc_bytes.encode(out);
        self.free_bytes.encode(out);
        self.reallocs.encode(out);
        self.live_bytes.encode(out);
        self.peak_live_bytes.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(MemStat {
            allocs: u64::decode(r)?,
            alloc_bytes: u64::decode(r)?,
            free_bytes: u64::decode(r)?,
            reallocs: u64::decode(r)?,
            live_bytes: u64::decode(r)?,
            peak_live_bytes: u64::decode(r)?,
        })
    }
}

impl Wire for OpStat {
    fn encode(&self, out: &mut Vec<u8>) {
        // By stable name, not discriminant: adding Op variants must not
        // silently reinterpret persisted reports.
        self.op.name().to_owned().encode(out);
        self.count.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let name = String::decode(r)?;
        let op = Op::from_name(&name).ok_or(WireError {
            context: "unknown op name",
        })?;
        Ok(OpStat {
            op,
            count: u64::decode(r)?,
        })
    }
}

impl Wire for CostReport {
    fn encode(&self, out: &mut Vec<u8>) {
        self.experiment.encode(out);
        self.protocol.encode(out);
        self.elapsed_ns.encode(out);
        self.spans.encode(out);
        self.ops.encode(out);
        self.comm.encode(out);
        self.mem.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(CostReport {
            experiment: String::decode(r)?,
            protocol: String::decode(r)?,
            elapsed_ns: u64::decode(r)?,
            spans: Vec::<SpanStat>::decode(r)?,
            ops: Vec::<OpStat>::decode(r)?,
            comm: CommStat::decode(r)?,
            mem: MemStat::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> CostReport {
        CostReport {
            experiment: "e1".into(),
            protocol: "spir".into(),
            elapsed_ns: 987_654_321,
            spans: vec![
                SpanStat {
                    path: "spir".into(),
                    calls: 1,
                    ns: 900_000,
                    p50_ns: 1_048_575,
                    p95_ns: 1_048_575,
                    p99_ns: 1_048_575,
                    allocs: 40,
                    alloc_bytes: 65_536,
                    peak_live_bytes: 131_072,
                },
                SpanStat {
                    path: "spir/server-scan".into(),
                    calls: 1,
                    ns: 700_000,
                    p50_ns: 1_048_575,
                    p95_ns: 1_048_575,
                    p99_ns: 1_048_575,
                    allocs: 30,
                    alloc_bytes: 32_768,
                    peak_live_bytes: 131_000,
                },
            ],
            ops: vec![
                OpStat {
                    op: Op::Modexp,
                    count: 1024,
                },
                OpStat {
                    op: Op::PirWordsScanned,
                    count: 4096,
                },
            ],
            comm: CommStat {
                up_bytes: 10,
                down_bytes: 20,
                messages: 2,
                half_rounds: 2,
                labels: vec![
                    LabelStat {
                        label: "spir-query".into(),
                        up_bytes: 10,
                        up_msgs: 1,
                        down_bytes: 0,
                        down_msgs: 0,
                    },
                    LabelStat {
                        label: "spir-answer".into(),
                        up_bytes: 0,
                        up_msgs: 0,
                        down_bytes: 20,
                        down_msgs: 1,
                    },
                ],
            },
            mem: MemStat {
                allocs: 80,
                alloc_bytes: 262_144,
                free_bytes: 200_000,
                reallocs: 5,
                live_bytes: 62_144,
                peak_live_bytes: 262_144,
            },
        }
    }

    #[test]
    fn mem_stat_roundtrip() {
        let mem = sample_report().mem;
        assert_eq!(MemStat::from_bytes(&mem.to_bytes()).unwrap(), mem);
    }

    #[test]
    fn comm_report_roundtrip() {
        let rep = CommReport {
            client_to_server: 111,
            server_to_client: 222,
            messages: 5,
            half_rounds: 3,
        };
        assert_eq!(CommReport::from_bytes(&rep.to_bytes()).unwrap(), rep);
    }

    #[test]
    fn cost_report_roundtrip() {
        let rep = sample_report();
        assert_eq!(CostReport::from_bytes(&rep.to_bytes()).unwrap(), rep);
    }

    #[test]
    fn empty_cost_report_roundtrip() {
        let rep = CostReport::default();
        assert_eq!(CostReport::from_bytes(&rep.to_bytes()).unwrap(), rep);
    }

    #[test]
    fn unknown_op_name_rejected() {
        let mut bytes = Vec::new();
        "frobnicate".to_owned().encode(&mut bytes);
        7u64.encode(&mut bytes);
        assert!(OpStat::from_bytes(&bytes).is_err());
    }

    #[test]
    fn cost_report_ships_over_a_transcript() {
        let rep = sample_report();
        let mut t = crate::Transcript::new(1);
        let received = t.server_to_client(0, "cost-report", &rep).unwrap();
        assert_eq!(received, rep);
    }
}
