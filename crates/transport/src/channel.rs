//! The channel abstraction protocol drivers run over.
//!
//! Drivers take `&mut dyn Channel` instead of a concrete [`Transcript`], so
//! the same code runs over the honest metered channel *and* over the
//! fault-injecting [`crate::FaultyChannel`] of the adversarial conformance
//! suite. The trait itself is byte-level and object-safe; the typed
//! [`ChannelExt::client_to_server`]/[`ChannelExt::server_to_client`]
//! helpers layer the [`Wire`] codec plus deterministic bounded retry on
//! top, so every driver gets the same fault-masking policy for free:
//!
//! * **transient** faults (drop, timeout, crash) are retried up to
//!   [`MAX_ATTEMPTS`] times, with a crashed server first healed by an
//!   honest replacement ([`Channel::heal_server`]);
//! * **permanent** faults (malformed bytes, protocol violations, more than
//!   `t` misbehaving servers) surface immediately as a typed
//!   [`ProtocolError`].
//!
//! Retries re-send the *already encoded* bytes, so no client-side crypto
//! work is repeated: the deterministic op-counter subset of `spfe-obs` is
//! identical whether a fault fired and was masked or never fired at all.

use crate::error::ProtocolError;
use crate::meter::{Direction, Transcript};
use crate::wire::Wire;

/// Maximum delivery attempts per message (first try + retries).
pub const MAX_ATTEMPTS: u32 = 4;

/// A client ↔ k-server message channel with deterministic fault semantics.
///
/// Object-safe: drivers hold `&mut dyn Channel`. [`Transcript`] is the
/// honest implementation; [`crate::FaultyChannel`] injects seeded faults.
pub trait Channel {
    /// Number of servers on this channel.
    fn num_servers(&self) -> usize;

    /// Explicitly starts a new client-initiated round.
    fn begin_round(&mut self);

    /// Delivers `bytes` in direction `dir`, returning the bytes as seen by
    /// the receiver (possibly tampered by a faulty transport).
    ///
    /// # Errors
    ///
    /// Transient transport faults ([`ProtocolError::is_transient`]) or a
    /// permanent abort such as [`ProtocolError::TooManyFaulty`].
    fn transfer_raw(
        &mut self,
        dir: Direction,
        label: &'static str,
        bytes: &[u8],
    ) -> Result<Vec<u8>, ProtocolError>;

    /// Read-only view of the underlying metered transcript (for cost
    /// reports; faulty channels meter only what was actually delivered).
    fn transcript(&self) -> &Transcript;

    /// Replaces a crashed/misbehaving server with an honest one.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::TooManyFaulty`] when the fault budget `t` is
    /// exhausted and the execution must abort with a diagnosis instead.
    fn heal_server(&mut self, _server: usize) -> Result<(), ProtocolError> {
        Ok(())
    }

    /// Current value of the deterministic tick clock (0 on honest
    /// channels, which never delay).
    fn clock(&self) -> u64 {
        0
    }
}

impl Channel for Transcript {
    fn num_servers(&self) -> usize {
        Transcript::num_servers(self)
    }

    fn begin_round(&mut self) {
        Transcript::begin_round(self);
    }

    fn transfer_raw(
        &mut self,
        dir: Direction,
        label: &'static str,
        bytes: &[u8],
    ) -> Result<Vec<u8>, ProtocolError> {
        self.record_raw(dir, label, bytes.len());
        Ok(bytes.to_vec())
    }

    fn transcript(&self) -> &Transcript {
        self
    }
}

/// Typed send/receive over any [`Channel`], with bounded retry.
///
/// Blanket-implemented; `use spfe_transport::ChannelExt` and call
/// [`ChannelExt::client_to_server`] on a `&mut dyn Channel`.
pub trait ChannelExt: Channel {
    /// Sends `msg` from the client to server `server` and returns the
    /// value as decoded by the receiving side.
    ///
    /// # Errors
    ///
    /// [`ProtocolError`] once transient faults exhaust the retry budget,
    /// or immediately on permanent faults (malformed delivery, exhausted
    /// server-fault tolerance).
    ///
    /// # Panics
    ///
    /// Panics if `server >= num_servers` (a driver bug, not an attack).
    fn client_to_server<T: Wire>(
        &mut self,
        server: usize,
        label: &'static str,
        msg: &T,
    ) -> Result<T, ProtocolError> {
        send(self, Direction::ClientToServer(server), label, msg)
    }

    /// Sends `msg` from server `server` to the client; see
    /// [`ChannelExt::client_to_server`] for the error contract.
    ///
    /// # Errors
    ///
    /// As for [`ChannelExt::client_to_server`].
    ///
    /// # Panics
    ///
    /// Panics if `server >= num_servers`.
    fn server_to_client<T: Wire>(
        &mut self,
        server: usize,
        label: &'static str,
        msg: &T,
    ) -> Result<T, ProtocolError> {
        send(self, Direction::ServerToClient(server), label, msg)
    }
}

impl<C: Channel + ?Sized> ChannelExt for C {}

/// Delivers already-encoded bytes with the shared bounded-retry policy:
/// transient faults are retried up to [`MAX_ATTEMPTS`] times (healing a
/// crashed server first), permanent faults surface immediately. This is
/// the raw primitive under [`ChannelExt`]; the sans-io
/// [`crate::session::pump`] uses it too, so state-machine executions mask
/// faults exactly like the monolithic drivers.
///
/// # Errors
///
/// [`ProtocolError::RetriesExhausted`] once transient faults outlast the
/// budget; any permanent [`ProtocolError`] as soon as it occurs.
///
/// # Panics
///
/// Panics if the directed server index is out of range (a driver bug).
pub fn deliver_with_retry<C: Channel + ?Sized>(
    ch: &mut C,
    dir: Direction,
    label: &'static str,
    bytes: &[u8],
) -> Result<Vec<u8>, ProtocolError> {
    let server = dir.server();
    assert!(server < ch.num_servers(), "server index out of range");
    for attempt in 0..MAX_ATTEMPTS {
        if attempt > 0 {
            spfe_obs::count(spfe_obs::Op::Retries, 1);
            spfe_obs::retry_event(label, server, u64::from(attempt));
        }
        match ch.transfer_raw(dir, label, bytes) {
            Ok(delivered) => return Ok(delivered),
            Err(e) if e.is_transient() => {
                if let ProtocolError::ServerCrashed { server } = e {
                    // Abort with diagnosis once the fault budget is spent.
                    ch.heal_server(server)?;
                }
            }
            Err(e) => return Err(e),
        }
    }
    Err(ProtocolError::RetriesExhausted {
        server,
        label,
        attempts: MAX_ATTEMPTS,
    })
}

/// One encode, up to [`MAX_ATTEMPTS`] deliveries, one decode.
fn send<C: Channel + ?Sized, T: Wire>(
    ch: &mut C,
    dir: Direction,
    label: &'static str,
    msg: &T,
) -> Result<T, ProtocolError> {
    let bytes = msg.to_bytes();
    let delivered = deliver_with_retry(ch, dir, label, &bytes)?;
    T::from_bytes(&delivered).map_err(ProtocolError::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transcript_is_an_honest_channel() {
        let mut t = Transcript::new(2);
        let ch: &mut dyn Channel = &mut t;
        let v: u64 = ch.client_to_server(1, "q", &7u64).unwrap();
        assert_eq!(v, 7);
        let r: Vec<u8> = ch.server_to_client(1, "a", &vec![9u8, 9]).unwrap();
        assert_eq!(r, vec![9, 9]);
        assert_eq!(ch.transcript().report().messages, 2);
        assert_eq!(ch.clock(), 0);
    }

    #[test]
    fn ext_and_inherent_sends_meter_identically() {
        let mut a = Transcript::new(1);
        let mut b = Transcript::new(1);
        a.client_to_server(0, "q", &vec![1u64, 2, 3]).unwrap();
        {
            let ch: &mut dyn Channel = &mut b;
            ch.client_to_server(0, "q", &vec![1u64, 2, 3]).unwrap();
        }
        assert_eq!(a.report(), b.report());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_server_index_panics_through_channel() {
        let mut t = Transcript::new(1);
        let ch: &mut dyn Channel = &mut t;
        let _ = ch.client_to_server(3, "q", &1u64);
    }
}
