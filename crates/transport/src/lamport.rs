//! A per-session Lamport clock for causal frame stamping.
//!
//! Wall clocks on two machines do not order a distributed session's
//! events; a Lamport clock does, without any clock sync. Each party keeps
//! one [`Lamport`] per session, [`Lamport::tick`]s before every frame it
//! sends (carrying the stamp in a [`crate::frame::FrameKind::TraceCtx`]
//! frame), and [`Lamport::observe`]s the carried stamp on every frame it
//! receives. The merge rule — `value = max(local, carried) + 1` — makes
//! every receive stamp *strictly greater* than the matching send stamp,
//! which is the wall-clock-free causal-consistency gate the merged
//! timeline tooling (`spfe-tables net-trace --merge`) checks.
//!
//! Stamps are also strictly monotone per party per session regardless of
//! delivery retries: the clock advances once per *logical* event, so a
//! retried delivery reuses its stamp and the journal order stays total.

/// A Lamport logical clock (one per party per session).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Lamport {
    value: u32,
}

impl Lamport {
    /// A fresh clock at zero (no events observed).
    #[must_use]
    pub fn new() -> Lamport {
        Lamport::default()
    }

    /// Advances the clock for a local send event and returns the stamp.
    pub fn tick(&mut self) -> u32 {
        self.value = self.value.saturating_add(1);
        self.value
    }

    /// Merges a stamp carried by a received frame and returns this
    /// party's receive stamp, strictly greater than both the carried
    /// stamp and every earlier local stamp (absent saturation, which
    /// would need 2³²−1 events in one session).
    pub fn observe(&mut self, carried: u32) -> u32 {
        self.value = self.value.max(carried).saturating_add(1);
        self.value
    }

    /// The last stamp issued (0 if no events yet).
    #[must_use]
    pub fn value(&self) -> u32 {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_strictly_increasing() {
        let mut c = Lamport::new();
        let a = c.tick();
        let b = c.tick();
        assert_eq!((a, b), (1, 2));
        assert_eq!(c.value(), 2);
    }

    #[test]
    fn observe_is_strictly_after_both_parties() {
        let mut client = Lamport::new();
        let mut server = Lamport::new();
        // Client races ahead, server receives: recv > send.
        for _ in 0..5 {
            client.tick();
        }
        let sent = client.tick();
        let recv = server.observe(sent);
        assert!(recv > sent);
        // Reply flows back; the client's receive is after everything.
        let reply = server.tick();
        let back = client.observe(reply);
        assert!(back > reply && back > sent && back > recv);
    }

    #[test]
    fn observe_of_a_stale_stamp_still_advances() {
        let mut c = Lamport::new();
        c.tick();
        c.tick();
        let r = c.observe(1);
        assert_eq!(r, 3, "max(2, 1) + 1");
    }

    #[test]
    fn saturation_freezes_instead_of_wrapping() {
        let mut c = Lamport { value: u32::MAX };
        assert_eq!(c.tick(), u32::MAX);
        assert_eq!(c.observe(7), u32::MAX);
    }
}
