//! # spfe-transport
//!
//! The measurement substrate of the SPFE reproduction: a byte-exact message
//! codec ([`Wire`]) and a metered in-memory channel ([`Transcript`]) that
//! records per-message sizes, directions, and the paper's round structure
//! (including half rounds). Every protocol in `spfe-core` runs over a
//! [`Transcript`], so the benchmark harness reads off *exact* communication
//! costs — the quantity Table 1 and §3–§4 of the paper reason about.
//!
//! See DESIGN.md §4: substituting a metered in-memory channel for a real
//! network preserves exactly what the paper measures (bits transferred and
//! rounds), with zero noise.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod error;
pub mod fault;
pub mod frame;
pub mod lamport;
pub mod meter;
pub mod report_wire;
pub mod session;
pub mod socket;
pub mod wire;

pub use channel::{deliver_with_retry, Channel, ChannelExt, MAX_ATTEMPTS};
pub use error::ProtocolError;
pub use fault::{FaultAction, FaultPlan, FaultyChannel, TamperHook, DEFAULT_TIMEOUT_TICKS};
pub use frame::{Frame, FrameKind, HEADER_LEN, MAGIC, MAX_LABEL_LEN, MAX_PAYLOAD_LEN, VERSION};
pub use lamport::Lamport;
pub use meter::{CommReport, Direction, FlowMeter, MessageRecord, Transcript};
pub use session::{pump, ClientCore, OutMsg, SessionCore, SessionState};
pub use socket::{SessionMode, SocketChannel};
pub use wire::{Reader, Wire, WireError};
