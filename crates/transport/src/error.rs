//! Typed protocol failures.
//!
//! The paper's threat model (§2) lets up to `t` servers misbehave
//! arbitrarily. A driver that `panic!`s on attacker-controlled bytes hands
//! those servers a denial-of-service oracle; instead every driver surfaces
//! a [`ProtocolError`] and the caller decides whether to retry, switch
//! servers, or abort with a diagnosis.

use crate::wire::WireError;

/// Why a protocol execution could not produce a (trusted) output.
///
/// Variants split into *transient* transport faults, which the channel
/// layer retries against a replacement honest server
/// ([`ProtocolError::is_transient`]), and *permanent* faults — malformed
/// or inconsistent attacker-controlled data — which abort the execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// Delivered bytes failed to decode as the expected message type.
    Codec(WireError),
    /// The message was lost in transit (transient; retried).
    Dropped {
        /// Server on the other end of the lost message.
        server: usize,
        /// Protocol label of the lost message.
        label: &'static str,
    },
    /// Delivery exceeded the round's tick budget (transient; retried).
    Timeout {
        /// Server on the other end.
        server: usize,
        /// Protocol label of the late message.
        label: &'static str,
    },
    /// The server stopped responding mid-protocol (transient: the channel
    /// substitutes a replacement honest server, up to the tolerance).
    ServerCrashed {
        /// The crashed server.
        server: usize,
    },
    /// A message decoded fine but violates a protocol invariant
    /// (wrong arity, out-of-range index, inconsistent ciphertext…).
    InvalidMessage {
        /// Protocol label of the offending message.
        label: &'static str,
        /// What invariant it broke.
        reason: &'static str,
    },
    /// The database violates a precondition of the selected function
    /// (e.g. formula-SPFE over a non-Boolean database).
    InvalidDatabase(&'static str),
    /// More servers misbehaved than the protocol tolerates — abort with
    /// diagnosis rather than retry forever.
    TooManyFaulty {
        /// Fault budget `t` the execution was configured with.
        tolerated: usize,
        /// Misbehaving servers observed so far.
        observed: usize,
    },
    /// Transient faults persisted through every retry attempt.
    RetriesExhausted {
        /// Server on the other end.
        server: usize,
        /// Protocol label of the message that never got through.
        label: &'static str,
        /// Attempts made (including the first).
        attempts: u32,
    },
}

impl ProtocolError {
    /// Whether the channel layer may mask this fault by retrying
    /// (possibly against a replacement server).
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            ProtocolError::Dropped { .. }
                | ProtocolError::Timeout { .. }
                | ProtocolError::ServerCrashed { .. }
        )
    }
}

impl From<WireError> for ProtocolError {
    fn from(e: WireError) -> Self {
        ProtocolError::Codec(e)
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Codec(e) => write!(f, "codec failure: {e}"),
            ProtocolError::Dropped { server, label } => {
                write!(f, "message {label:?} to/from server {server} was dropped")
            }
            ProtocolError::Timeout { server, label } => {
                write!(f, "message {label:?} to/from server {server} timed out")
            }
            ProtocolError::ServerCrashed { server } => {
                write!(f, "server {server} crashed mid-protocol")
            }
            ProtocolError::InvalidMessage { label, reason } => {
                write!(f, "invalid {label:?} message: {reason}")
            }
            ProtocolError::InvalidDatabase(reason) => {
                write!(f, "invalid database: {reason}")
            }
            ProtocolError::TooManyFaulty {
                tolerated,
                observed,
            } => write!(
                f,
                "{observed} servers misbehaved but only {tolerated} are tolerated"
            ),
            ProtocolError::RetriesExhausted {
                server,
                label,
                attempts,
            } => write!(
                f,
                "message {label:?} to/from server {server} failed after {attempts} attempts"
            ),
        }
    }
}

impl std::error::Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_classification() {
        assert!(ProtocolError::Dropped {
            server: 0,
            label: "q"
        }
        .is_transient());
        assert!(ProtocolError::Timeout {
            server: 0,
            label: "q"
        }
        .is_transient());
        assert!(ProtocolError::ServerCrashed { server: 1 }.is_transient());
        assert!(!ProtocolError::Codec(WireError { context: "x" }).is_transient());
        assert!(!ProtocolError::InvalidDatabase("non-boolean").is_transient());
        assert!(!ProtocolError::TooManyFaulty {
            tolerated: 1,
            observed: 2
        }
        .is_transient());
    }

    #[test]
    fn display_is_informative() {
        let e = ProtocolError::RetriesExhausted {
            server: 2,
            label: "spir-query",
            attempts: 4,
        };
        let s = e.to_string();
        assert!(s.contains("spir-query") && s.contains('2') && s.contains('4'));
    }
}
