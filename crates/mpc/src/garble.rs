//! Yao garbled circuits (ref. \[46\]) — the paper's `MPC(m, s)` primitive.
//!
//! Classic point-and-permute garbling: every wire carries two 16-byte
//! labels with complementary select bits; each AND/OR/XOR gate becomes a
//! 4-row table of encrypted output labels (NOT gates are free label swaps,
//! constants ship their single active label). The garbling is derived
//! deterministically from a 32-byte seed, which is exactly what the
//! PSM-from-common-randomness construction of §3.2 needs: all players
//! re-derive the same garbling from the shared random input.
//!
//! Cost shape (Table 1): tables are `O(κ·C_f)` bytes, each evaluator input
//! bit costs one `SPIR(2,1,κ)` (= base OT) — `MPC(m, s) = m×SPIR(2,1,κ) +
//! O(κ·s)`.

use spfe_circuits::boolean::{Circuit, Gate};
use spfe_crypto::sha256::prf;
use spfe_crypto::ChaChaRng;
use spfe_math::RandomSource;
use spfe_transport::{Reader, Wire, WireError};

/// Length of a wire label in bytes (the security parameter κ).
pub const LABEL_LEN: usize = 16;

/// A wire label; the select bit is the LSB of the last byte.
pub type Label = [u8; LABEL_LEN];

fn select_bit(l: &Label) -> bool {
    l[LABEL_LEN - 1] & 1 == 1
}

/// The public garbled circuit: tables, constant labels, output decode map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GarbledCircuit {
    /// For each gate index: a 4-row table for binary gates, `None` for
    /// Input/Const/Not gates.
    pub tables: Vec<Option<[Label; 4]>>,
    /// Active labels for constant wires, as `(gate_index, label)`.
    pub const_labels: Vec<(usize, Label)>,
    /// For each circuit output: the select bit that decodes to `true`.
    pub decode: Vec<bool>,
}

impl Wire for GarbledCircuit {
    fn encode(&self, out: &mut Vec<u8>) {
        let flat: Vec<Option<Vec<u8>>> = self
            .tables
            .iter()
            .map(|t| t.map(|rows| rows.concat()))
            .collect();
        flat.encode(out);
        let consts: Vec<(usize, Label)> = self.const_labels.clone();
        consts.encode(out);
        self.decode.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let flat = Vec::<Option<Vec<u8>>>::decode(r)?;
        let mut tables = Vec::with_capacity(flat.len());
        for entry in flat {
            match entry {
                None => tables.push(None),
                Some(bytes) => {
                    if bytes.len() != 4 * LABEL_LEN {
                        return Err(WireError {
                            context: "bad garbled table size",
                        });
                    }
                    let mut rows = [[0u8; LABEL_LEN]; 4];
                    for (i, row) in rows.iter_mut().enumerate() {
                        row.copy_from_slice(&bytes[i * LABEL_LEN..(i + 1) * LABEL_LEN]);
                    }
                    tables.push(Some(rows));
                }
            }
        }
        Ok(GarbledCircuit {
            tables,
            const_labels: Vec::<(usize, Label)>::decode(r)?,
            decode: Vec::<bool>::decode(r)?,
        })
    }
}

/// The garbler's secret: both labels of every wire.
#[derive(Debug, Clone)]
pub struct GarblerSecrets {
    /// `(label_for_0, label_for_1)` per wire (gate index).
    pub wire_labels: Vec<(Label, Label)>,
    /// Input-index → wire-index map.
    pub input_wires: Vec<usize>,
}

impl GarblerSecrets {
    /// The label encoding `bit` on circuit input `input_idx`.
    ///
    /// # Panics
    ///
    /// Panics if the input index is out of range.
    pub fn input_label(&self, input_idx: usize, bit: bool) -> Label {
        let w = self.input_wires[input_idx];
        if bit {
            self.wire_labels[w].1
        } else {
            self.wire_labels[w].0
        }
    }

    /// Both labels for an input (the OT sender's message pair).
    ///
    /// # Panics
    ///
    /// Panics if the input index is out of range.
    pub fn input_label_pair(&self, input_idx: usize) -> (Label, Label) {
        let w = self.input_wires[input_idx];
        self.wire_labels[w]
    }
}

fn row_pad(ka: &Label, kb: &Label, gate: usize, row: usize) -> Label {
    let key = [&ka[..], &kb[..]].concat();
    let digest = prf(
        &key,
        b"spfe-garble-row",
        &[&(gate as u64).to_le_bytes()[..], &[row as u8]].concat(),
    );
    digest[..LABEL_LEN].try_into().unwrap()
}

fn xor_labels(a: &Label, b: &Label) -> Label {
    let mut out = [0u8; LABEL_LEN];
    for i in 0..LABEL_LEN {
        out[i] = a[i] ^ b[i];
    }
    out
}

fn fresh_pair<R: RandomSource + ?Sized>(rng: &mut R) -> (Label, Label) {
    let mut l0 = [0u8; LABEL_LEN];
    let mut l1 = [0u8; LABEL_LEN];
    rng.fill_bytes(&mut l0);
    rng.fill_bytes(&mut l1);
    // Force complementary select bits.
    l1[LABEL_LEN - 1] = (l1[LABEL_LEN - 1] & !1) | (!select_bit(&l0) as u8);
    (l0, l1)
}

/// Garbles a circuit deterministically from a 32-byte seed.
///
/// Returns the public garbled circuit and the garbler's secrets.
pub fn garble(circuit: &Circuit, seed: [u8; 32]) -> (GarbledCircuit, GarblerSecrets) {
    let mut rng = ChaChaRng::from_seed(seed);
    let gates = circuit.gates();
    let mut wire_labels: Vec<(Label, Label)> = Vec::with_capacity(gates.len());
    let mut tables: Vec<Option<[Label; 4]>> = Vec::with_capacity(gates.len());
    let mut const_labels = Vec::new();
    let mut input_wires = vec![usize::MAX; circuit.num_inputs()];

    for (g_idx, gate) in gates.iter().enumerate() {
        match *gate {
            Gate::Input(i) => {
                let pair = fresh_pair(&mut rng);
                input_wires[i] = g_idx;
                wire_labels.push(pair);
                tables.push(None);
            }
            Gate::Const(v) => {
                let pair = fresh_pair(&mut rng);
                const_labels.push((g_idx, if v { pair.1 } else { pair.0 }));
                wire_labels.push(pair);
                tables.push(None);
            }
            Gate::Not(a) => {
                // Free: swap the roles of the input labels.
                let (a0, a1) = wire_labels[a];
                wire_labels.push((a1, a0));
                tables.push(None);
            }
            Gate::Xor(a, b) | Gate::And(a, b) | Gate::Or(a, b) => {
                let out_pair = fresh_pair(&mut rng);
                let (a0, a1) = wire_labels[a];
                let (b0, b1) = wire_labels[b];
                let semantics = |va: bool, vb: bool| -> bool {
                    match gate {
                        Gate::Xor(..) => va ^ vb,
                        Gate::And(..) => va & vb,
                        Gate::Or(..) => va | vb,
                        _ => unreachable!(),
                    }
                };
                let mut rows = [[0u8; LABEL_LEN]; 4];
                for va in [false, true] {
                    for vb in [false, true] {
                        let ka = if va { &a1 } else { &a0 };
                        let kb = if vb { &b1 } else { &b0 };
                        let out = if semantics(va, vb) {
                            &out_pair.1
                        } else {
                            &out_pair.0
                        };
                        let row = (select_bit(ka) as usize) * 2 + select_bit(kb) as usize;
                        rows[row] = xor_labels(out, &row_pad(ka, kb, g_idx, row));
                    }
                }
                wire_labels.push(out_pair);
                tables.push(Some(rows));
            }
        }
    }

    let decode = circuit
        .outputs()
        .iter()
        .map(|&o| select_bit(&wire_labels[o].1))
        .collect();

    (
        GarbledCircuit {
            tables,
            const_labels,
            decode,
        },
        GarblerSecrets {
            wire_labels,
            input_wires,
        },
    )
}

/// Evaluates a garbled circuit given one active label per circuit input.
///
/// # Panics
///
/// Panics if the label count mismatches the circuit's input count or the
/// garbled circuit is structurally inconsistent with `circuit`.
pub fn evaluate(circuit: &Circuit, gc: &GarbledCircuit, input_labels: &[Label]) -> Vec<bool> {
    assert_eq!(input_labels.len(), circuit.num_inputs(), "label count");
    assert_eq!(gc.tables.len(), circuit.gates().len(), "table count");
    let gates = circuit.gates();
    let mut active: Vec<Label> = vec![[0u8; LABEL_LEN]; gates.len()];
    use std::collections::HashMap;
    let consts: HashMap<usize, Label> = gc.const_labels.iter().copied().collect();

    for (g_idx, gate) in gates.iter().enumerate() {
        active[g_idx] = match *gate {
            Gate::Input(i) => input_labels[i],
            Gate::Const(_) => *consts.get(&g_idx).expect("missing const label"),
            Gate::Not(a) => active[a],
            Gate::Xor(a, b) | Gate::And(a, b) | Gate::Or(a, b) => {
                let ka = &active[a];
                let kb = &active[b];
                let row = (select_bit(ka) as usize) * 2 + select_bit(kb) as usize;
                let table = gc.tables[g_idx].as_ref().expect("missing gate table");
                xor_labels(&table[row], &row_pad(ka, kb, g_idx, row))
            }
        };
    }

    circuit
        .outputs()
        .iter()
        .zip(&gc.decode)
        .map(|(&o, &one_sel)| select_bit(&active[o]) == one_sel)
        .collect()
}

/// Whether a (possibly attacker-supplied) garbled circuit is structurally
/// consistent with `circuit`, i.e. [`evaluate`] cannot panic on it: one
/// table per binary gate, one constant label per `Const` gate, and one
/// decode bit per output.
pub fn is_well_formed(circuit: &Circuit, gc: &GarbledCircuit) -> bool {
    let gates = circuit.gates();
    if gc.tables.len() != gates.len() || gc.decode.len() != circuit.outputs().len() {
        return false;
    }
    use std::collections::HashMap;
    let consts: HashMap<usize, Label> = gc.const_labels.iter().copied().collect();
    gates.iter().enumerate().all(|(g_idx, gate)| match gate {
        Gate::Const(_) => consts.contains_key(&g_idx),
        Gate::Xor(..) | Gate::And(..) | Gate::Or(..) => gc.tables[g_idx].is_some(),
        Gate::Input(_) | Gate::Not(_) => true,
    })
}

/// Serialized size in bytes of the garbled tables + decode info — the
/// `O(κ·C_f)` term in the paper's cost formulas.
pub fn garbled_size(gc: &GarbledCircuit) -> usize {
    gc.to_bytes().len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfe_circuits::builders::{frequency_circuit, sum_circuit};
    use spfe_circuits::CircuitBuilder;

    fn seed(v: u8) -> [u8; 32] {
        [v; 32]
    }

    fn labels_for(secrets: &GarblerSecrets, bits: &[bool]) -> Vec<Label> {
        bits.iter()
            .enumerate()
            .map(|(i, &b)| secrets.input_label(i, b))
            .collect()
    }

    #[test]
    fn garbled_gates_exhaustive() {
        let mut b = CircuitBuilder::new();
        let x = b.input();
        let y = b.input();
        let and = b.and(x, y);
        let or = b.or(x, y);
        let xor = b.xor(x, y);
        let nx = b.not(x);
        for w in [and, or, xor, nx] {
            b.output(w);
        }
        let c = b.build();
        let (gc, secrets) = garble(&c, seed(1));
        for xv in [false, true] {
            for yv in [false, true] {
                let out = evaluate(&c, &gc, &labels_for(&secrets, &[xv, yv]));
                assert_eq!(out, c.evaluate(&[xv, yv]), "x={xv} y={yv}");
            }
        }
    }

    #[test]
    fn constants_and_not_chains() {
        let mut b = CircuitBuilder::new();
        let x = b.input();
        let t = b.constant(true);
        let f = b.constant(false);
        let n1 = b.not(x);
        let n2 = b.not(n1);
        let a = b.and(t, n2);
        let o = b.or(f, a);
        b.output(o);
        let c = b.build();
        let (gc, secrets) = garble(&c, seed(2));
        for xv in [false, true] {
            let out = evaluate(&c, &gc, &labels_for(&secrets, &[xv]));
            assert_eq!(out, vec![xv]);
        }
    }

    #[test]
    fn sum_circuit_garbles_correctly() {
        let c = sum_circuit(3, 4);
        let (gc, secrets) = garble(&c, seed(3));
        let vals = [5u64, 11, 3];
        let bits: Vec<bool> = vals
            .iter()
            .flat_map(|&v| (0..4).map(move |i| (v >> i) & 1 == 1))
            .collect();
        let out = evaluate(&c, &gc, &labels_for(&secrets, &bits));
        let got: u64 = out.iter().enumerate().map(|(i, &b)| (b as u64) << i).sum();
        assert_eq!(got, 19);
    }

    #[test]
    fn frequency_circuit_garbles_correctly() {
        let c = frequency_circuit(4, 3, 5);
        let (gc, secrets) = garble(&c, seed(4));
        let vals = [5u64, 2, 5, 7];
        let bits: Vec<bool> = vals
            .iter()
            .flat_map(|&v| (0..3).map(move |i| (v >> i) & 1 == 1))
            .collect();
        let out = evaluate(&c, &gc, &labels_for(&secrets, &bits));
        let got: u64 = out.iter().enumerate().map(|(i, &b)| (b as u64) << i).sum();
        assert_eq!(got, 2);
    }

    #[test]
    fn deterministic_from_seed() {
        let c = sum_circuit(2, 3);
        let (gc1, s1) = garble(&c, seed(9));
        let (gc2, s2) = garble(&c, seed(9));
        assert_eq!(gc1, gc2);
        assert_eq!(s1.input_label(0, true), s2.input_label(0, true));
        let (gc3, _) = garble(&c, seed(10));
        assert_ne!(gc1, gc3);
    }

    #[test]
    fn wire_roundtrip() {
        let c = sum_circuit(2, 2);
        let (gc, _) = garble(&c, seed(5));
        let back = GarbledCircuit::from_bytes(&gc.to_bytes()).unwrap();
        assert_eq!(back, gc);
    }

    #[test]
    fn wrong_labels_give_garbage_not_panic() {
        let c = sum_circuit(2, 2);
        let (gc, secrets) = garble(&c, seed(6));
        // Use labels from a different garbling: evaluation completes but
        // yields arbitrary bits (authenticity is not required here).
        let (_, other) = garble(&c, seed(7));
        let bits = [true, false, true, false];
        let wrong: Vec<Label> = bits
            .iter()
            .enumerate()
            .map(|(i, &b)| other.input_label(i, b))
            .collect();
        let _ = evaluate(&c, &gc, &wrong);
        // And correct labels still decode correctly afterwards.
        let right = labels_for(&secrets, &bits);
        let out = evaluate(&c, &gc, &right);
        assert_eq!(out, c.evaluate(&bits));
    }

    #[test]
    fn garbled_size_scales_with_circuit() {
        let small = sum_circuit(2, 4);
        let big = sum_circuit(16, 4);
        let (gc_s, _) = garble(&small, seed(8));
        let (gc_b, _) = garble(&big, seed(8));
        assert!(garbled_size(&gc_b) > 4 * garbled_size(&gc_s));
    }
}
