//! 1-round secure two-party computation from Yao garbling + OT — the
//! paper's `MPC(m, s)` primitive with cost `m × SPIR(2,1,κ) + O(κ·s)`.
//!
//! Convention: the circuit's first `server_bits.len()` inputs belong to the
//! garbler (server), the rest to the evaluator (client). The client opens
//! the round with one base-OT query per input bit (the deterministic OT
//! setup removes the server-first setup flow); the server replies with the
//! garbled circuit, its own active input labels, and the OT transfers of
//! the client's labels. The client evaluates and learns the output — and
//! only the output (weak-security discussion of §3.3: a malicious client
//! can substitute its *own* share bits, which changes only which function
//! of ≤ m positions it learns).

use crate::garble::{self, GarbledCircuit, Label};
use spfe_circuits::boolean::Circuit;
use spfe_crypto::SchnorrGroup;
use spfe_math::RandomSource;
use spfe_ot::{ot2, ot_n};
use spfe_transport::{Channel, ChannelExt, ProtocolError, Reader, Wire, WireError};

/// Domain label for the deterministic OT setup.
const OT_LABEL: &[u8] = b"spfe-yao2pc-input-ot";

/// Client's opening message: one OT query per client input bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct YaoQuery {
    /// OT queries, one per client input bit in order.
    pub label_ots: Vec<ot2::OtQuery>,
}

impl Wire for YaoQuery {
    fn encode(&self, out: &mut Vec<u8>) {
        self.label_ots.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(YaoQuery {
            label_ots: Vec::<ot2::OtQuery>::decode(r)?,
        })
    }
}

/// Server's reply: garbled circuit + garbler labels + OT transfers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct YaoReply {
    /// The garbled tables/decode info.
    pub garbled: GarbledCircuit,
    /// Active labels of the server's own inputs.
    pub server_labels: Vec<Label>,
    /// OT transfers carrying the client's input labels.
    pub label_transfers: Vec<ot2::OtTransfer>,
}

impl Wire for YaoReply {
    fn encode(&self, out: &mut Vec<u8>) {
        self.garbled.encode(out);
        self.server_labels.encode(out);
        self.label_transfers.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(YaoReply {
            garbled: GarbledCircuit::decode(r)?,
            server_labels: Vec::<Label>::decode(r)?,
            label_transfers: Vec::<ot2::OtTransfer>::decode(r)?,
        })
    }
}

/// Client state across the round.
#[derive(Debug)]
pub struct YaoClientState {
    ot_states: Vec<ot2::OtReceiverState>,
}

/// Client: builds the OT queries for its input bits.
pub fn client_query<R: RandomSource + ?Sized>(
    group: &SchnorrGroup,
    client_bits: &[bool],
    rng: &mut R,
) -> (YaoQuery, YaoClientState) {
    let setup = ot2::deterministic_setup(group, OT_LABEL);
    let mut label_ots = Vec::with_capacity(client_bits.len());
    let mut ot_states = Vec::with_capacity(client_bits.len());
    for &bit in client_bits {
        let (q, st) = ot2::receiver_choose(group, &setup, bit, rng);
        label_ots.push(q);
        ot_states.push(st);
    }
    (YaoQuery { label_ots }, YaoClientState { ot_states })
}

/// Server: garbles and answers.
///
/// # Errors
///
/// [`ProtocolError::InvalidMessage`] if the (client-controlled) query
/// arity does not fit the circuit's input split.
pub fn server_reply<R: RandomSource + ?Sized>(
    group: &SchnorrGroup,
    circuit: &Circuit,
    server_bits: &[bool],
    query: &YaoQuery,
    rng: &mut R,
) -> Result<YaoReply, ProtocolError> {
    let n_client = query.label_ots.len();
    if server_bits.len() + n_client != circuit.num_inputs() {
        return Err(ProtocolError::InvalidMessage {
            label: "yao-query",
            reason: "input split does not match circuit",
        });
    }
    let mut seed = [0u8; 32];
    rng.fill_bytes(&mut seed);
    let (garbled, secrets) = garble::garble(circuit, seed);
    let server_labels = server_bits
        .iter()
        .enumerate()
        .map(|(i, &b)| secrets.input_label(i, b))
        .collect();
    let setup = ot2::deterministic_setup(group, OT_LABEL);
    let label_transfers = query
        .label_ots
        .iter()
        .enumerate()
        .map(|(j, q)| {
            let (l0, l1) = secrets.input_label_pair(server_bits.len() + j);
            ot2::sender_transfer(group, &setup, q, &l0, &l1, rng)
        })
        .collect();
    Ok(YaoReply {
        garbled,
        server_labels,
        label_transfers,
    })
}

/// Client: recovers its labels and evaluates.
///
/// # Errors
///
/// [`ProtocolError::InvalidMessage`] on a structurally inconsistent
/// (server-controlled) reply: wrong OT/label arity, wrong label size, or a
/// garbled circuit that does not match the agreed circuit shape.
pub fn client_evaluate(
    group: &SchnorrGroup,
    circuit: &Circuit,
    state: &YaoClientState,
    reply: &YaoReply,
) -> Result<Vec<bool>, ProtocolError> {
    const BAD: ProtocolError = ProtocolError::InvalidMessage {
        label: "yao-reply",
        reason: "reply inconsistent with circuit",
    };
    if state.ot_states.len() != reply.label_transfers.len()
        || reply.server_labels.len() + state.ot_states.len() != circuit.num_inputs()
        || !garble::is_well_formed(circuit, &reply.garbled)
    {
        return Err(BAD);
    }
    let mut labels: Vec<Label> = reply.server_labels.clone();
    for (st, tr) in state.ot_states.iter().zip(&reply.label_transfers) {
        let bytes = ot2::receiver_output(group, st, tr);
        labels.push(Label::try_from(bytes.as_slice()).map_err(|_| BAD)?);
    }
    Ok(garble::evaluate(circuit, &reply.garbled, &labels))
}

/// Runs the full 1-round protocol over a metered channel; returns the
/// output bits (known to the client).
///
/// # Errors
///
/// [`ProtocolError`] on any transport fault or malformed message.
pub fn run<R: RandomSource + ?Sized>(
    t: &mut dyn Channel,
    group: &SchnorrGroup,
    circuit: &Circuit,
    server_bits: &[bool],
    client_bits: &[bool],
    rng: &mut R,
) -> Result<Vec<bool>, ProtocolError> {
    let (q, st) = client_query(group, client_bits, rng);
    let q = t.client_to_server(0, "yao-query", &q)?;
    let reply = server_reply(group, circuit, server_bits, &q, rng)?;
    let reply = t.server_to_client(0, "yao-reply", &reply)?;
    client_evaluate(group, circuit, &st, &reply)
}

/// Packs a `u64` into `width` little-endian bits.
pub fn to_bits(v: u64, width: usize) -> Vec<bool> {
    (0..width).map(|i| (v >> i) & 1 == 1).collect()
}

/// Unpacks little-endian bits into a `u64`.
///
/// # Panics
///
/// Panics if more than 64 bits are supplied.
pub fn from_bits(bits: &[bool]) -> u64 {
    assert!(bits.len() <= 64);
    bits.iter()
        .enumerate()
        .fold(0, |acc, (i, &b)| acc | ((b as u64) << i))
}

/// The shared 1-out-of-n OT wrapper used when the evaluator's input is an
/// *index* rather than bits (used by tests and the PSM fallbacks).
pub fn ot_n_labels<R: RandomSource + ?Sized>(
    group: &SchnorrGroup,
    items: &[Vec<u8>],
    index: usize,
    rng: &mut R,
) -> Vec<u8> {
    let setup = ot2::deterministic_setup(group, OT_LABEL);
    let (q, st) = ot_n::receiver_choose(group, &setup, items.len(), index, rng);
    let a = ot_n::sender_answer(group, &setup, &q, items, rng);
    ot_n::receiver_output(group, &st, &a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfe_circuits::builders::{bits_for, share_sum_mod_circuit, sum_circuit};
    use spfe_crypto::ChaChaRng;
    use spfe_transport::Transcript;

    fn setup() -> (SchnorrGroup, ChaChaRng) {
        let mut rng = ChaChaRng::from_u64_seed(0x2FC);
        (SchnorrGroup::generate(96, &mut rng), rng)
    }

    #[test]
    fn computes_sum_of_split_inputs() {
        let (group, mut rng) = setup();
        // Sum of 4 words: server holds 2, client holds 2.
        let c = sum_circuit(4, 4);
        let server_vals = [3u64, 9];
        let client_vals = [14u64, 1];
        let server_bits: Vec<bool> = server_vals.iter().flat_map(|&v| to_bits(v, 4)).collect();
        let client_bits: Vec<bool> = client_vals.iter().flat_map(|&v| to_bits(v, 4)).collect();
        let mut t = Transcript::new(1);
        let out = run(&mut t, &group, &c, &server_bits, &client_bits, &mut rng).unwrap();
        assert_eq!(from_bits(&out), 27);
        assert_eq!(t.report().half_rounds, 2, "must be one round");
    }

    #[test]
    fn share_reconstruction_inside_mpc() {
        // The actual SPFE MPC phase: f(x) from additive shares mod p.
        let (group, mut rng) = setup();
        let p = 97u64;
        let m = 3;
        let w = bits_for(p - 1);
        let c = share_sum_mod_circuit(m, p);
        let xs = [50u64, 96, 20];
        let a_shares = [13u64, 55, 96];
        let b_shares: Vec<u64> = xs
            .iter()
            .zip(&a_shares)
            .map(|(&x, &a)| (x + p - a) % p)
            .collect();
        let server_bits: Vec<bool> = a_shares.iter().flat_map(|&v| to_bits(v, w)).collect();
        let client_bits: Vec<bool> = b_shares.iter().flat_map(|&v| to_bits(v, w)).collect();
        let mut t = Transcript::new(1);
        let out = run(&mut t, &group, &c, &server_bits, &client_bits, &mut rng).unwrap();
        assert_eq!(from_bits(&out), xs.iter().sum::<u64>() % p);
    }

    #[test]
    fn all_client_inputs() {
        let (group, mut rng) = setup();
        let c = sum_circuit(2, 3);
        let client_bits: Vec<bool> = [5u64, 6].iter().flat_map(|&v| to_bits(v, 3)).collect();
        let mut t = Transcript::new(1);
        let out = run(&mut t, &group, &c, &[], &client_bits, &mut rng).unwrap();
        assert_eq!(from_bits(&out), 11);
    }

    #[test]
    fn all_server_inputs() {
        let (group, mut rng) = setup();
        let c = sum_circuit(2, 3);
        let server_bits: Vec<bool> = [5u64, 6].iter().flat_map(|&v| to_bits(v, 3)).collect();
        let mut t = Transcript::new(1);
        let out = run(&mut t, &group, &c, &server_bits, &[], &mut rng).unwrap();
        assert_eq!(from_bits(&out), 11);
    }

    #[test]
    fn cost_splits_as_table1_says() {
        // Communication = |garbled circuit| (κ·C_f term) + per-client-bit OT
        // (m × SPIR(2,1,κ) term).
        let (group, mut rng) = setup();
        let c = sum_circuit(4, 4);
        let client_bits = vec![true; 8];
        let server_bits = vec![false; 8];
        let mut t = Transcript::new(1);
        run(&mut t, &group, &c, &server_bits, &client_bits, &mut rng).unwrap();
        let rep = t.report();
        // The reply dominates (garbled circuit ≫ queries).
        assert!(rep.server_to_client > rep.client_to_server);
        // Doubling the circuit roughly doubles the reply.
        let c2 = sum_circuit(8, 4);
        let mut t2 = Transcript::new(1);
        run(&mut t2, &group, &c2, &[false; 16], &[true; 16], &mut rng).unwrap();
        let ratio = t2.report().server_to_client as f64 / rep.server_to_client as f64;
        assert!(ratio > 1.4 && ratio < 3.0, "ratio {ratio}");
    }

    #[test]
    fn bit_helpers_roundtrip() {
        for v in [0u64, 1, 255, 12345] {
            assert_eq!(from_bits(&to_bits(v, 20)), v);
        }
    }
}
