//! The §3.3.4 light-weight secure protocol for arithmetic circuits.
//!
//! The client holds keys to an additively homomorphic scheme over `Z_u`;
//! the server evaluates the circuit gate by gate *under encryption*:
//!
//! * **addition** and **multiplication by a server-known constant** are
//!   local (`E(v₁)·E(v₂)`, `E(v)^a`);
//! * **multiplication of two encrypted values** takes one interaction: the
//!   server blinds `E(v₁+r₁), E(v₂+r₂)`, the client decrypts, returns
//!   `E((v₁+r₁)(v₂+r₂))`, and the server divides off `E(r₁r₂)`,
//!   `E(v₁r₂) = E(v₁)^{r₂}`, `E(v₂r₁) = E(v₂)^{r₁}`.
//!
//! All multiplications at the same depth are batched into one round, so the
//! round complexity is proportional to the circuit's *multiplicative
//! depth*, with a constant number of exponentiations per gate — the
//! paper's claim. The protocol satisfies weak security against a malicious
//! client: the client only ever sees uniformly blinded values, and
//! substituting wrong products only changes which ≤ m-ary function it
//! learns.

use spfe_circuits::arith::{AGate, ArithCircuit};
use spfe_crypto::hom::{HomomorphicPk, HomomorphicSk};
use spfe_math::modular::mod_mul;
use spfe_math::{Nat, RandomSource};
use spfe_transport::{Channel, ChannelExt, ProtocolError};

/// Runs the §3.3.4 protocol over a metered channel.
///
/// The circuit's first `client_inputs.len()` inputs are the client's
/// (transmitted under encryption), the rest are the server's. The client
/// learns the output values; the server learns nothing.
///
/// # Errors
///
/// [`ProtocolError`] on any transport fault or malformed message from the
/// counterparty.
///
/// # Panics
///
/// Panics if the circuit modulus differs from the scheme's plaintext
/// modulus, or input counts mismatch (local setup bugs, not attacks).
pub fn run<P, S, R>(
    t: &mut dyn Channel,
    pk: &P,
    sk: &S,
    circuit: &ArithCircuit,
    client_inputs: &[Nat],
    server_inputs: &[Nat],
    rng: &mut R,
) -> Result<Vec<Nat>, ProtocolError>
where
    P: HomomorphicPk,
    S: HomomorphicSk<P>,
    R: RandomSource + ?Sized,
{
    assert_eq!(
        circuit.modulus(),
        pk.plaintext_modulus(),
        "circuit ring must match the encryption's plaintext group"
    );
    assert_eq!(
        client_inputs.len() + server_inputs.len(),
        circuit.num_inputs(),
        "input split mismatch"
    );
    let u = pk.plaintext_modulus().clone();

    // Round 0: client encrypts and sends its inputs.
    let client_cts: Vec<Vec<u8>> = client_inputs
        .iter()
        .map(|v| pk.ciphertext_to_bytes(&pk.encrypt(v, rng)))
        .collect();
    let client_cts: Vec<Vec<u8>> = t.client_to_server(0, "arith-inputs", &client_cts)?;
    if client_cts.len() != client_inputs.len() {
        return Err(ProtocolError::InvalidMessage {
            label: "arith-inputs",
            reason: "wrong number of client input ciphertexts",
        });
    }

    // Server-side state: one ciphertext per wire, filled in dependency order
    // with multiplication gates batched per depth level.
    let gates = circuit.gates();
    let mut enc: Vec<Option<P::Ciphertext>> = vec![None; gates.len()];
    let server_encrypt = |v: &Nat, rng: &mut R| pk.encrypt(v, rng);

    loop {
        // Evaluate everything local until only Muls block progress.
        let mut progressed = true;
        while progressed {
            progressed = false;
            for (i, g) in gates.iter().enumerate() {
                if enc[i].is_some() {
                    continue;
                }
                let val = match g {
                    AGate::Input(idx) => {
                        if *idx < client_inputs.len() {
                            Some(pk.ciphertext_from_bytes(&client_cts[*idx]).ok_or(
                                ProtocolError::InvalidMessage {
                                    label: "arith-inputs",
                                    reason: "malformed client input ciphertext",
                                },
                            )?)
                        } else {
                            Some(server_encrypt(
                                &server_inputs[*idx - client_inputs.len()],
                                rng,
                            ))
                        }
                    }
                    AGate::Const(c) => Some(server_encrypt(c, rng)),
                    AGate::Add(a, b) => match (&enc[*a], &enc[*b]) {
                        (Some(x), Some(y)) => Some(pk.add(x, y)),
                        _ => None,
                    },
                    AGate::Sub(a, b) => match (&enc[*a], &enc[*b]) {
                        (Some(x), Some(y)) => Some(pk.sub(x, y)),
                        _ => None,
                    },
                    AGate::MulConst(a, c) => enc[*a].as_ref().map(|x| pk.mul_const(x, c)),
                    AGate::Mul(..) => None, // handled in batches below
                };
                if let Some(v) = val {
                    enc[i] = Some(v);
                    progressed = true;
                }
            }
        }

        // Collect all ready Mul gates (both operands available).
        let ready: Vec<usize> = gates
            .iter()
            .enumerate()
            .filter(|(i, g)| {
                enc[*i].is_none()
                    && matches!(g, AGate::Mul(a, b) if enc[*a].is_some() && enc[*b].is_some())
            })
            .map(|(i, _)| i)
            .collect();
        if ready.is_empty() {
            break;
        }

        // One batched interaction round for this multiplication level.
        let mut blinds: Vec<(Nat, Nat)> = Vec::with_capacity(ready.len());
        let mut blinded_pairs: Vec<(Vec<u8>, Vec<u8>)> = Vec::with_capacity(ready.len());
        for &i in &ready {
            let AGate::Mul(a, b) = &gates[i] else {
                unreachable!()
            };
            let r1 = Nat::random_below(rng, &u);
            let r2 = Nat::random_below(rng, &u);
            let e1 = pk.add(enc[*a].as_ref().unwrap(), &pk.encrypt(&r1, rng));
            let e2 = pk.add(enc[*b].as_ref().unwrap(), &pk.encrypt(&r2, rng));
            blinded_pairs.push((pk.ciphertext_to_bytes(&e1), pk.ciphertext_to_bytes(&e2)));
            blinds.push((r1, r2));
        }
        let blinded_pairs: Vec<(Vec<u8>, Vec<u8>)> =
            t.server_to_client(0, "arith-mul-blinded", &blinded_pairs)?;

        // Client: decrypt, multiply in the clear, re-encrypt.
        const BAD_BLINDED: ProtocolError = ProtocolError::InvalidMessage {
            label: "arith-mul-blinded",
            reason: "malformed blinded pair",
        };
        let products: Vec<Vec<u8>> = blinded_pairs
            .iter()
            .map(|(e1, e2)| {
                let v1 = sk.decrypt(&pk.ciphertext_from_bytes(e1).ok_or(BAD_BLINDED)?);
                let v2 = sk.decrypt(&pk.ciphertext_from_bytes(e2).ok_or(BAD_BLINDED)?);
                let prod = mod_mul(&v1, &v2, &u);
                Ok(pk.ciphertext_to_bytes(&pk.encrypt(&prod, rng)))
            })
            .collect::<Result<_, ProtocolError>>()?;
        let products: Vec<Vec<u8>> = t.client_to_server(0, "arith-mul-products", &products)?;
        if products.len() != ready.len() {
            return Err(ProtocolError::InvalidMessage {
                label: "arith-mul-products",
                reason: "wrong number of products",
            });
        }

        // Server: unblind E((v₁+r₁)(v₂+r₂)) → E(v₁v₂).
        for ((&i, (r1, r2)), prod_bytes) in ready.iter().zip(&blinds).zip(&products) {
            let AGate::Mul(a, b) = &gates[i] else {
                unreachable!()
            };
            let e = pk
                .ciphertext_from_bytes(prod_bytes)
                .ok_or(ProtocolError::InvalidMessage {
                    label: "arith-mul-products",
                    reason: "malformed product ciphertext",
                })?;
            let v1r2 = pk.mul_const(enc[*a].as_ref().unwrap(), r2);
            let v2r1 = pk.mul_const(enc[*b].as_ref().unwrap(), r1);
            let r1r2 = pk.encrypt(&mod_mul(r1, r2, &u), rng);
            let mut out = pk.sub(&e, &v1r2);
            out = pk.sub(&out, &v2r1);
            out = pk.sub(&out, &r1r2);
            enc[i] = Some(out);
        }
    }

    // Final: server reveals the (re-randomized) outputs; client decrypts.
    let out_cts: Vec<Vec<u8>> = circuit
        .outputs()
        .iter()
        .map(|&o| {
            let ct = enc[o].as_ref().expect("unevaluated output wire");
            pk.ciphertext_to_bytes(&pk.rerandomize(ct, rng))
        })
        .collect();
    let out_cts: Vec<Vec<u8>> = t.server_to_client(0, "arith-outputs", &out_cts)?;
    out_cts
        .iter()
        .map(|b| {
            Ok(sk.decrypt(
                &pk.ciphertext_from_bytes(b)
                    .ok_or(ProtocolError::InvalidMessage {
                        label: "arith-outputs",
                        reason: "malformed output ciphertext",
                    })?,
            ))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfe_circuits::arith::{
        arith_sum_and_squares_circuit, arith_sum_circuit, arith_weighted_sum_circuit,
        ArithCircuitBuilder,
    };
    use spfe_crypto::{ChaChaRng, HomomorphicScheme, Paillier};
    use spfe_transport::Transcript;

    fn setup() -> (spfe_crypto::PaillierPk, spfe_crypto::PaillierSk, ChaChaRng) {
        let mut rng = ChaChaRng::from_u64_seed(0xA21);
        let (pk, sk) = Paillier::keygen(128, &mut rng);
        (pk, sk, rng)
    }

    fn nats(vals: &[u64]) -> Vec<Nat> {
        vals.iter().map(|&v| Nat::from(v)).collect()
    }

    #[test]
    fn sum_circuit_no_interaction() {
        let (pk, sk, mut rng) = setup();
        let c = arith_sum_circuit(4, pk.n().clone());
        let mut t = Transcript::new(1);
        let out = run(
            &mut t,
            &pk,
            &sk,
            &c,
            &nats(&[10, 20]),
            &nats(&[30, 40]),
            &mut rng,
        )
        .unwrap();
        assert_eq!(out, nats(&[100]));
        // No Mul gates → inputs up, outputs down: exactly 1 round.
        assert_eq!(t.report().half_rounds, 2);
    }

    #[test]
    fn squares_need_one_mul_round() {
        let (pk, sk, mut rng) = setup();
        let c = arith_sum_and_squares_circuit(3, pk.n().clone());
        let mut t = Transcript::new(1);
        let out = run(&mut t, &pk, &sk, &c, &nats(&[3, 4]), &nats(&[5]), &mut rng).unwrap();
        assert_eq!(out, nats(&[12, 50]));
        // inputs (c→s), blinded (s→c), products (c→s), outputs (s→c) = 2 rounds.
        assert_eq!(t.report().half_rounds, 4);
    }

    #[test]
    fn rounds_proportional_to_mul_depth() {
        let (pk, sk, mut rng) = setup();
        // x^8 via repeated squaring: depth 3.
        let mut b = ArithCircuitBuilder::new(pk.n().clone());
        let x = b.input();
        let x2 = b.mul(x, x);
        let x4 = b.mul(x2, x2);
        let x8 = b.mul(x4, x4);
        b.output(x8);
        let c = b.build();
        assert_eq!(c.mul_depth(), 3);
        let mut t = Transcript::new(1);
        let out = run(&mut t, &pk, &sk, &c, &nats(&[3]), &[], &mut rng).unwrap();
        assert_eq!(out, nats(&[6561]));
        // 1 (inputs) + 3 mul rounds + 1 output half = 2 + 3·2 = 8 half-rounds.
        assert_eq!(t.report().half_rounds, 8);
    }

    #[test]
    fn parallel_muls_share_a_round() {
        let (pk, sk, mut rng) = setup();
        // Four independent products: depth 1 → one batched mul round.
        let mut b = ArithCircuitBuilder::new(pk.n().clone());
        let ins = b.inputs(8);
        for i in 0..4 {
            let p = b.mul(ins[2 * i], ins[2 * i + 1]);
            b.output(p);
        }
        let c = b.build();
        let mut t = Transcript::new(1);
        let out = run(
            &mut t,
            &pk,
            &sk,
            &c,
            &nats(&[1, 2, 3, 4]),
            &nats(&[5, 6, 7, 8]),
            &mut rng,
        )
        .unwrap();
        assert_eq!(out, nats(&[2, 12, 30, 56]));
        assert_eq!(t.report().half_rounds, 4, "all muls in one round");
    }

    #[test]
    fn weighted_sum_is_local() {
        let (pk, sk, mut rng) = setup();
        let coeffs = nats(&[3, 0, 7]);
        let c = arith_weighted_sum_circuit(&coeffs, pk.n().clone());
        let mut t = Transcript::new(1);
        let out = run(&mut t, &pk, &sk, &c, &nats(&[10, 99, 2]), &[], &mut rng).unwrap();
        assert_eq!(out, nats(&[44]));
        assert_eq!(t.report().half_rounds, 2);
    }

    #[test]
    fn subtraction_wraps() {
        let (pk, sk, mut rng) = setup();
        let mut b = ArithCircuitBuilder::new(pk.n().clone());
        let x = b.input();
        let y = b.input();
        let d = b.sub(x, y);
        b.output(d);
        let c = b.build();
        let mut t = Transcript::new(1);
        let out = run(&mut t, &pk, &sk, &c, &nats(&[5]), &nats(&[8]), &mut rng).unwrap();
        assert_eq!(out[0], pk.n().sub(&Nat::from(3u64)));
    }

    #[test]
    fn works_over_goldwasser_micali_z2() {
        // The protocol is generic over the homomorphic scheme: with GM the
        // ring is Z₂, addition is XOR and multiplication is AND — a tiny
        // secure Boolean computation without garbling.
        use spfe_crypto::GoldwasserMicali;
        let mut rng = ChaChaRng::from_u64_seed(0x62);
        let (pk, sk) = GoldwasserMicali::keygen(128, &mut rng);
        let mut b = ArithCircuitBuilder::new(Nat::from(2u64));
        let x = b.input();
        let y = b.input();
        let z = b.input();
        let xy = b.mul(x, y); // AND
        let out = b.add(xy, z); // XOR
        b.output(out);
        let c = b.build();
        for bits in 0u64..8 {
            let (xv, yv, zv) = (bits & 1, (bits >> 1) & 1, (bits >> 2) & 1);
            let mut t = Transcript::new(1);
            let got = run(
                &mut t,
                &pk,
                &sk,
                &c,
                &nats(&[xv, yv]),
                &nats(&[zv]),
                &mut rng,
            )
            .unwrap();
            assert_eq!(got, nats(&[(xv & yv) ^ zv]), "bits={bits:03b}");
        }
    }

    #[test]
    #[should_panic(expected = "circuit ring")]
    fn modulus_mismatch_rejected() {
        let (pk, sk, mut rng) = setup();
        let c = arith_sum_circuit(2, Nat::from(97u64));
        let mut t = Transcript::new(1);
        let _ = run(&mut t, &pk, &sk, &c, &nats(&[1]), &nats(&[2]), &mut rng);
    }
}
