//! # spfe-mpc
//!
//! Secure-computation substrates of the SPFE reproduction:
//!
//! * [`garble`] — Yao garbled circuits \[46\], deterministic from a seed;
//! * [`yao2pc`] — the 1-round two-party `MPC(m, s)` protocol
//!   (`m × SPIR(2,1,κ) + O(κ·C_f)` communication, Table 1);
//! * [`psm`] — private simultaneous messages protocols of §3.2: the sum
//!   PSM of Example 1, the computational Yao-based PSM \[23, 46\], and the
//!   perfectly secure branching-program PSM of Ishai–Kushilevitz \[30\];
//! * [`arith_mpc`] — the §3.3.4 light-weight protocol for arithmetic
//!   circuits over homomorphic encryption (rounds ∝ multiplicative depth).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arith_mpc;
pub mod garble;
pub mod psm;
pub mod yao2pc;

pub use garble::{GarbledCircuit, GarblerSecrets, Label, LABEL_LEN};
pub use yao2pc::{YaoClientState, YaoQuery, YaoReply};
