//! Private simultaneous messages (PSM) protocols — the §3.2 substrate.
//!
//! In the PSM model, `m` players who share a common random input each send
//! a *single* message about their own input to a referee, who reconstructs
//! `f(y₁…y_m)` and learns nothing else. The paper's refinement adds an
//! input-less player `P₀` whose message `p₀` carries the bulk
//! (communication `(α, β)` = per-player / extra-message lengths).
//!
//! Three instantiations, matching the paper's citations:
//!
//! * [`sum`] — Example 1: the modular-sum PSM with communication `(ℓ, 0)`;
//! * [`yao`] — the computationally secure PSM of \[23, 46\]: `p₀` is a
//!   garbled circuit derived from the common randomness, each player sends
//!   the active labels of its own bits; communication `(κ·w, O(κ·C_f))`;
//! * [`bp`] — the perfectly secure PSM of \[30\] for branching programs:
//!   messages are additive shares of the randomized path matrix
//!   `R₁·M(x)·R₂`; communication `(O(B_f²), 0)`.

use crate::garble::{self, GarbledCircuit, Label};
use spfe_circuits::boolean::Circuit;
use spfe_circuits::bp::BranchingProgram;
use spfe_crypto::ChaChaRng;
use spfe_math::{Fp64, Mat, RandomSource};

/// Example 1: PSM for the sum function over `Z_u`.
pub mod sum {
    use super::*;

    /// Derives the common random pads `r₁…r_m` with `Σ r_j = 0` from the
    /// shared seed.
    fn pads(m: usize, modulus: u64, seed: [u8; 32]) -> Vec<u64> {
        assert!(m >= 1 && modulus >= 1);
        let mut rng = ChaChaRng::from_seed(seed);
        let mut pads: Vec<u64> = (0..m - 1).map(|_| rng.next_below(modulus)).collect();
        let total: u64 = pads.iter().fold(0u64, |acc, &r| (acc + r) % modulus);
        pads.push((modulus - total) % modulus); // r_m = −Σ
        pads
    }

    /// Player `j`'s message `p_j = y_j + r_j mod u`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= m` or `y >= modulus`.
    pub fn player_message(j: usize, m: usize, y: u64, modulus: u64, seed: [u8; 32]) -> u64 {
        assert!(j < m && y < modulus);
        let r = pads(m, modulus, seed)[j];
        (y + r) % modulus
    }

    /// Referee: reconstructs `Σ y_j mod u` from the `m` messages.
    pub fn referee(messages: &[u64], modulus: u64) -> u64 {
        messages.iter().fold(0u64, |acc, &p| (acc + p) % modulus)
    }
}

/// Computationally secure PSM from Yao garbling (\[23, 46\]).
///
/// Player `j` owns the circuit-input bit range `bit_ranges[j]`; the common
/// randomness is the garbling seed.
pub mod yao {
    use super::*;

    /// The extra player `P₀`'s message: the garbled circuit (size
    /// `O(κ·C_f)` — the `β` component).
    pub fn p0_message(circuit: &Circuit, seed: [u8; 32]) -> GarbledCircuit {
        garble::garble(circuit, seed).0
    }

    /// Player `j`'s message: active labels for its own input bits
    /// (`bit_offset..bit_offset + bits.len()`), re-derived from the shared
    /// seed (`κ` bytes per bit — the `α` component).
    ///
    /// # Panics
    ///
    /// Panics if the bit range exceeds the circuit inputs.
    pub fn player_message(
        circuit: &Circuit,
        seed: [u8; 32],
        bit_offset: usize,
        bits: &[bool],
    ) -> Vec<Label> {
        assert!(bit_offset + bits.len() <= circuit.num_inputs());
        let (_, secrets) = garble::garble(circuit, seed);
        bits.iter()
            .enumerate()
            .map(|(i, &b)| secrets.input_label(bit_offset + i, b))
            .collect()
    }

    /// Referee: evaluates from `p₀` and the concatenated player labels
    /// (in input order).
    ///
    /// # Panics
    ///
    /// Panics if the label count mismatches the circuit.
    pub fn referee(circuit: &Circuit, p0: &GarbledCircuit, labels: &[Label]) -> Vec<bool> {
        garble::evaluate(circuit, p0, labels)
    }
}

/// Perfectly secure PSM for branching programs (Ishai–Kushilevitz \[30\]).
///
/// The common randomness is `(R₁, R₂, Z₀…Z_m)` where `R₁` is unit
/// upper-triangular, `R₂` is identity-plus-last-column, and the `Z`'s are
/// additive masks summing to zero. `P₀` sends `R₁·M₀·R₂ + Z₀`; player `j`
/// sends `R₁·(Σ_{v owned} x_v·B_v)·R₂ + Z_j`. The referee sums all
/// messages to get `R₁·M(x)·R₂` and reads off `f(x) = ±det`.
pub mod bp {
    use super::*;

    /// The shared randomness, derived from a seed.
    #[derive(Debug, Clone)]
    pub struct BpPsmRandomness {
        pub(crate) r1: Mat,
        pub(crate) r2: Mat,
        pub(crate) masks: Vec<Mat>,
    }

    /// Derives the common randomness for `m` players (plus `P₀`).
    pub fn common_randomness(
        bp: &BranchingProgram,
        m: usize,
        field: Fp64,
        seed: [u8; 32],
    ) -> BpPsmRandomness {
        let d = bp.size() - 1;
        let mut rng = ChaChaRng::from_seed(seed);
        let r1 = Mat::random_unit_upper(d, field, &mut rng);
        let r2 = Mat::random_last_column(d, field, &mut rng);
        // m + 1 masks summing to zero (index 0 = P₀'s).
        let mut masks: Vec<Mat> = (0..m)
            .map(|_| {
                let rows = (0..d)
                    .map(|_| (0..d).map(|_| field.random(&mut rng)).collect())
                    .collect();
                Mat::from_rows(rows, field)
            })
            .collect();
        let mut z0 = Mat::zero(d, d, field);
        for z in &masks {
            z0 = z0.add(&z.scale(field.from_i64(-1)));
        }
        masks.insert(0, z0);
        BpPsmRandomness { r1, r2, masks }
    }

    /// `P₀`'s message: `R₁·M₀·R₂ + Z₀`.
    pub fn p0_message(bp: &BranchingProgram, field: Fp64, rand: &BpPsmRandomness) -> Mat {
        let (m0, _) = bp.affine_matrices(field);
        rand.r1.mul(&m0).mul(&rand.r2).add(&rand.masks[0])
    }

    /// Player `j`'s message: the randomized contribution of its variables.
    /// `owned_vars` lists the BP variables this player holds, with their
    /// values.
    ///
    /// # Panics
    ///
    /// Panics if `j >= m` (mask count) or a variable index is out of range.
    pub fn player_message(
        bp: &BranchingProgram,
        field: Fp64,
        rand: &BpPsmRandomness,
        j: usize,
        owned_vars: &[(usize, bool)],
    ) -> Mat {
        assert!(j + 1 < rand.masks.len(), "player index out of range");
        let (_, b_vars) = bp.affine_matrices(field);
        let d = bp.size() - 1;
        let mut contrib = Mat::zero(d, d, field);
        for &(v, val) in owned_vars {
            if val {
                contrib = contrib.add(&b_vars[v]);
            }
        }
        rand.r1.mul(&contrib).mul(&rand.r2).add(&rand.masks[j + 1])
    }

    /// Referee: sums all messages and reads off the path count.
    ///
    /// # Panics
    ///
    /// Panics if `messages` is empty or shapes mismatch.
    pub fn referee(bp: &BranchingProgram, field: Fp64, messages: &[Mat]) -> u64 {
        assert!(!messages.is_empty());
        let mut total = messages[0].clone();
        for msg in &messages[1..] {
            total = total.add(msg);
        }
        let det = total.det();
        if (bp.size() - 1) % 2 == 1 {
            field.neg(det)
        } else {
            det
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfe_circuits::builders::sum_circuit;
    use spfe_math::XorShiftRng;
    use std::collections::HashMap;

    #[test]
    fn sum_psm_reconstructs() {
        let seed = [9u8; 32];
        let modulus = 1000u64;
        let ys = [17u64, 999, 3, 481];
        let msgs: Vec<u64> = ys
            .iter()
            .enumerate()
            .map(|(j, &y)| sum::player_message(j, ys.len(), y, modulus, seed))
            .collect();
        let expect = ys.iter().sum::<u64>() % modulus;
        assert_eq!(sum::referee(&msgs, modulus), expect);
    }

    #[test]
    fn sum_psm_messages_are_masked() {
        // Each individual message is y_j + r_j with r_j uniform: over many
        // seeds the message for fixed y is ~uniform, revealing nothing.
        let modulus = 16u64;
        let mut hist = [0u32; 16];
        for s in 0..1600u64 {
            let mut seed = [0u8; 32];
            seed[..8].copy_from_slice(&s.to_le_bytes());
            let msg = sum::player_message(0, 3, 7, modulus, seed);
            hist[msg as usize] += 1;
        }
        for (v, &c) in hist.iter().enumerate() {
            assert!((40..200).contains(&c), "value {v} count {c}");
        }
    }

    #[test]
    fn sum_psm_single_player() {
        let seed = [1u8; 32];
        let msg = sum::player_message(0, 1, 42, 100, seed);
        assert_eq!(sum::referee(&[msg], 100), 42);
    }

    #[test]
    fn yao_psm_computes_sum() {
        // 3 players each holding a 4-bit value; referee learns the sum.
        let circuit = sum_circuit(3, 4);
        let seed = [7u8; 32];
        let ys = [5u64, 12, 9];
        let p0 = yao::p0_message(&circuit, seed);
        let mut labels = Vec::new();
        for (j, &y) in ys.iter().enumerate() {
            let bits: Vec<bool> = (0..4).map(|i| (y >> i) & 1 == 1).collect();
            labels.extend(yao::player_message(&circuit, seed, j * 4, &bits));
        }
        let out = yao::referee(&circuit, &p0, &labels);
        let got: u64 = out.iter().enumerate().map(|(i, &b)| (b as u64) << i).sum();
        assert_eq!(got, 26);
    }

    #[test]
    fn yao_psm_communication_shape() {
        // α = κ per player bit; β = |garbled circuit| — the (κ, O(κ C_f))
        // claim used in Corollary 4(1).
        let circuit = sum_circuit(2, 8);
        let seed = [3u8; 32];
        let p0 = yao::p0_message(&circuit, seed);
        let beta = garble::garbled_size(&p0);
        let msg = yao::player_message(&circuit, seed, 0, &[true; 8]);
        let alpha = msg.len() * garble::LABEL_LEN;
        assert!(beta > alpha, "p0 must carry the bulk: β={beta} α={alpha}");
        assert_eq!(alpha, 8 * 16);
    }

    #[test]
    fn bp_psm_computes_every_input() {
        let f = Fp64::new(1_000_003).unwrap();
        for bp in [
            BranchingProgram::and_of(3),
            BranchingProgram::or_of(3),
            BranchingProgram::parity(3),
        ] {
            let m = bp.num_vars();
            for bits in 0u32..(1 << m) {
                let x: Vec<bool> = (0..m).map(|i| (bits >> i) & 1 == 1).collect();
                let mut seed = [0u8; 32];
                seed[0] = bits as u8;
                let rand = bp::common_randomness(&bp, m, f, seed);
                let mut msgs = vec![bp::p0_message(&bp, f, &rand)];
                for (j, &xv) in x.iter().enumerate() {
                    msgs.push(bp::player_message(&bp, f, &rand, j, &[(j, xv)]));
                }
                assert_eq!(
                    bp::referee(&bp, f, &msgs),
                    bp.count_paths(&x),
                    "bp s={} x={x:?}",
                    bp.size()
                );
            }
        }
    }

    #[test]
    fn bp_psm_multibit_players() {
        // 2 players, each owning 2 variables of a 4-var parity BP.
        let f = Fp64::new(101).unwrap();
        let bp = BranchingProgram::parity(4);
        let x = [true, false, true, true];
        let rand = bp::common_randomness(&bp, 2, f, [5u8; 32]);
        let msgs = vec![
            bp::p0_message(&bp, f, &rand),
            bp::player_message(&bp, f, &rand, 0, &[(0, x[0]), (1, x[1])]),
            bp::player_message(&bp, f, &rand, 1, &[(2, x[2]), (3, x[3])]),
        ];
        assert_eq!(bp::referee(&bp, f, &msgs), 1); // odd parity
    }

    #[test]
    fn bp_psm_perfect_privacy_statistical() {
        // THE critical privacy property of [30]: the randomized matrix
        // R₁·M(x)·R₂ depends only on f(x), not on x itself. Compare the
        // empirical distribution of the summed matrix for two inputs with
        // equal output, over a tiny field.
        let f = Fp64::new(3).unwrap();
        let bp = BranchingProgram::parity(2);
        // f(10) = f(01) = 1 — same output, different inputs.
        let inputs = [[true, false], [false, true]];
        let runs = 3000usize;
        let mut hists: Vec<HashMap<Vec<u64>, u32>> = vec![HashMap::new(), HashMap::new()];
        let mut seeder = XorShiftRng::new(0xBEEF);
        for (slot, x) in inputs.iter().enumerate() {
            for _ in 0..runs {
                let mut seed = [0u8; 32];
                let r = seeder.next_u64();
                seed[..8].copy_from_slice(&r.to_le_bytes());
                seed[8] = slot as u8; // independent randomness per slot
                let rand = bp::common_randomness(&bp, 2, f, seed);
                let mut total = bp::p0_message(&bp, f, &rand);
                for (j, &xv) in x.iter().enumerate() {
                    total = total.add(&bp::player_message(&bp, f, &rand, j, &[(j, xv)]));
                }
                *hists[slot].entry(total.entries().to_vec()).or_insert(0) += 1;
            }
        }
        // Every observed matrix should appear with similar frequency in
        // both histograms.
        let keys: std::collections::HashSet<_> =
            hists[0].keys().chain(hists[1].keys()).cloned().collect();
        for k in keys {
            let a = *hists[0].get(&k).unwrap_or(&0) as f64;
            let b = *hists[1].get(&k).unwrap_or(&0) as f64;
            assert!(
                (a - b).abs() <= 10.0 * ((a + b).sqrt() + 1.0),
                "matrix {k:?}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn bp_psm_messages_sum_to_randomized_matrix() {
        let f = Fp64::new(101).unwrap();
        let bp = BranchingProgram::and_of(2);
        let x = [true, true];
        let rand = bp::common_randomness(&bp, 2, f, [8u8; 32]);
        let mut total = bp::p0_message(&bp, f, &rand);
        for (j, &xv) in x.iter().enumerate() {
            total = total.add(&bp::player_message(&bp, f, &rand, j, &[(j, xv)]));
        }
        // Direct computation of R₁ M(x) R₂ without masks.
        let expected = rand.r1.mul(&bp.path_matrix(&x, f)).mul(&rand.r2);
        assert_eq!(total, expected);
    }
}
