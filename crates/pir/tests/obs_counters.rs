//! Thread-count invariance of the op counters on the hom-PIR scan path:
//! `PirWordsScanned` (and every other deterministic counter the protocol
//! touches) must be bit-identical whether the server's column scan runs
//! serially or on the worker pool.

#![cfg(feature = "obs")]

use proptest::prelude::*;
use spfe_crypto::{ChaChaRng, HomomorphicScheme, Paillier};
use spfe_obs::{Op, OpsSnapshot};
use spfe_pir::hom_pir::{self, Layout};
use spfe_transport::Transcript;
use std::sync::Mutex;

/// The op counters are process-global; serialize the tests in this binary
/// so their measurement windows never overlap.
static LOCK: Mutex<()> = Mutex::new(());

/// Runs one full hom-PIR retrieval under `threads` pool workers (with the
/// sequential-fallback threshold forced to 1 so the scan actually hits the
/// pool) and returns the deterministic part of the counters.
fn scan_counts(threads: usize, db: &[u64], idx: usize) -> OpsSnapshot {
    let mut rng = ChaChaRng::from_u64_seed(0x5CA7);
    let (pk, sk) = Paillier::keygen(160, &mut rng);
    spfe_math::par::set_threads(Some(threads));
    spfe_math::par::set_seq_threshold(Some(1));
    spfe_obs::reset_ops();
    let mut t = Transcript::new(1);
    assert_eq!(
        hom_pir::run(&mut t, &pk, &sk, db, idx, &mut rng).unwrap(),
        db[idx]
    );
    let snap = spfe_obs::ops_snapshot().deterministic_part();
    spfe_math::par::set_seq_threshold(None);
    spfe_math::par::set_threads(None);
    snap
}

#[test]
fn hom_pir_scan_counts_thread_invariant() {
    let _g = LOCK.lock().unwrap();
    let n = 64;
    let db: Vec<u64> = (0..n as u64).map(|i| i * 7 + 1).collect();
    let serial = scan_counts(1, &db, n / 2);
    let parallel = scan_counts(4, &db, n / 2);
    assert_eq!(serial, parallel);
    assert_eq!(
        serial.get(Op::PirWordsScanned),
        Layout::square(n).cells() as u64
    );
    assert!(serial.get(Op::PaillierEncrypt) > 0);
    assert!(serial.get(Op::HomScalarMul) > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn prop_hom_pir_scan_counts_thread_invariant(n in 4usize..80, sel in any::<u64>()) {
        let _g = LOCK.lock().unwrap();
        let db: Vec<u64> = (0..n as u64).map(|i| i * 13 + 5).collect();
        let idx = (sel % n as u64) as usize;
        let serial = scan_counts(1, &db, idx);
        let parallel = scan_counts(4, &db, idx);
        prop_assert_eq!(serial, parallel);
        prop_assert_eq!(
            serial.get(Op::PirWordsScanned),
            Layout::square(n).cells() as u64
        );
    }
}
