//! Depth-2 recursive Kushilevitz–Ostrovsky PIR (\[32\]'s recursion step).
//!
//! The √n scheme of [`crate::hom_pir`] sends `O(√n)` ciphertexts each way.
//! Recursing once more — treating the first level's answer ciphertexts as
//! a *new database* queried by a second encrypted unit vector — drops the
//! communication to `O((F·n)^{1/3})` ciphertexts (where `F ≈ 3` is the
//! ciphertext/plaintext expansion), at the cost of one more decryption
//! layer on the client. This is the ablation the paper's PIR citations
//! \[32, 12\] motivate: deeper recursion buys asymptotically smaller
//! queries.
//!
//! Level 1: database as a `d1 × d2` grid; the client selects a super-row
//! with `d1` ciphertexts; the server folds the grid into `d2` first-level
//! answer ciphertexts. Level 2: those `d2` ciphertexts, split into
//! plaintext-sized chunks, form a `r2 × c2` grid queried by `r2` more
//! ciphertexts; the client decrypts twice.

use crate::hom_pir::Layout;
use spfe_crypto::hom::{HomomorphicPk, HomomorphicSk};
use spfe_math::{Nat, RandomSource};
use spfe_transport::{Channel, ChannelExt, ProtocolError, Reader, Wire, WireError};

/// Dimensions of the two recursion levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecursiveLayout {
    /// Level-1 rows (length of the first query).
    pub d1: usize,
    /// Level-1 columns (= size of the level-2 database).
    pub d2: usize,
    /// Level-2 rows (length of the second query).
    pub r2: usize,
    /// Level-2 columns.
    pub c2: usize,
}

impl RecursiveLayout {
    /// Balanced dimensions for `n` items: all three query/answer lengths
    /// ≈ `n^{1/3}`-scale.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn balanced(n: usize) -> Self {
        assert!(n > 0);
        let cube = (n as f64).powf(1.0 / 3.0).ceil() as usize;
        let d1 = cube.max(1);
        let d2 = n.div_ceil(d1);
        let r2 = (d2 as f64).sqrt().ceil() as usize;
        let c2 = d2.div_ceil(r2.max(1));
        RecursiveLayout {
            d1,
            d2: r2 * c2,
            r2,
            c2,
        }
    }

    fn level1_pos(&self, i: usize) -> (usize, usize) {
        (i / self.d2, i % self.d2)
    }
}

/// The client's combined query: two encrypted unit vectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecursiveQuery {
    /// Level-1 selector (`d1` ciphertexts).
    pub level1: Vec<Vec<u8>>,
    /// Level-2 selector (`r2` ciphertexts).
    pub level2: Vec<Vec<u8>>,
}

impl Wire for RecursiveQuery {
    fn encode(&self, out: &mut Vec<u8>) {
        self.level1.encode(out);
        self.level2.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(RecursiveQuery {
            level1: Vec::<Vec<u8>>::decode(r)?,
            level2: Vec::<Vec<u8>>::decode(r)?,
        })
    }
}

/// Usable plaintext chunk size in bytes (strictly below the modulus).
fn chunk_bytes<P: HomomorphicPk>(pk: &P) -> usize {
    (pk.plaintext_modulus().bit_len() - 1) / 8 - 1
}

/// Client: builds the two-level query for `index`.
///
/// # Panics
///
/// Panics if the index is out of range.
pub fn client_query<P: HomomorphicPk, R: RandomSource + ?Sized>(
    pk: &P,
    layout: &RecursiveLayout,
    index: usize,
    rng: &mut R,
) -> RecursiveQuery {
    assert!(index < layout.d1 * layout.d2, "index out of range");
    let (row1, col1) = layout.level1_pos(index);
    let (row2, _) = (col1 / layout.c2, col1 % layout.c2);
    let unit = |len: usize, target: usize, rng: &mut R| -> Vec<Vec<u8>> {
        (0..len)
            .map(|r| {
                let bit = if r == target { Nat::one() } else { Nat::zero() };
                pk.ciphertext_to_bytes(&pk.encrypt(&bit, rng))
            })
            .collect()
    };
    RecursiveQuery {
        level1: unit(layout.d1, row1, rng),
        level2: unit(layout.r2, row2, rng),
    }
}

/// Server: the two folding passes. Returns `c2 × chunks` ciphertext blobs.
///
/// # Errors
///
/// [`ProtocolError::InvalidMessage`] on a malformed (client-controlled)
/// query: wrong arity or undecodable ciphertexts.
///
/// # Panics
///
/// Panics on db values ≥ plaintext modulus (the server's own data).
pub fn server_answer<P: HomomorphicPk>(
    pk: &P,
    layout: &RecursiveLayout,
    db: &[u64],
    query: &RecursiveQuery,
) -> Result<Vec<Vec<Vec<u8>>>, ProtocolError> {
    if query.level1.len() != layout.d1 || query.level2.len() != layout.r2 {
        return Err(ProtocolError::InvalidMessage {
            label: "recpir-query",
            reason: "query arity does not match layout",
        });
    }
    // Level 1 touches every (padded) cell of the d1 × d2 matrix.
    spfe_obs::count(
        spfe_obs::Op::PirWordsScanned,
        (layout.d1 * layout.d2) as u64,
    );
    let sel1: Vec<P::Ciphertext> = query
        .level1
        .iter()
        .map(|b| {
            pk.ciphertext_from_bytes(b)
                .ok_or(ProtocolError::InvalidMessage {
                    label: "recpir-query",
                    reason: "malformed level-1 ciphertext",
                })
        })
        .collect::<Result<_, _>>()?;
    // Level 1: fold rows into d2 ciphertexts.
    let level1_layout = Layout {
        rows: layout.d1,
        cols: layout.d2,
    };
    let level1_cts: Vec<P::Ciphertext> = (0..layout.d2)
        .map(|j| {
            let mut acc: Option<P::Ciphertext> = None;
            for (r, sel) in sel1.iter().enumerate() {
                let i = r * level1_layout.cols + j;
                let v = db.get(i).copied().unwrap_or(0);
                if v == 0 {
                    continue;
                }
                let term = pk.mul_const(sel, &Nat::from(v));
                acc = Some(match acc {
                    None => term,
                    Some(prev) => pk.add(&prev, &term),
                });
            }
            acc.unwrap_or_else(|| pk.mul_const(&sel1[0], &Nat::zero()))
        })
        .collect();

    // Level 2: the d2 ciphertexts, chunked, become the new database.
    let cw = chunk_bytes(pk);
    let n_chunks = pk.ciphertext_bytes().div_ceil(cw);
    let sel2: Vec<P::Ciphertext> = query
        .level2
        .iter()
        .map(|b| {
            pk.ciphertext_from_bytes(b)
                .ok_or(ProtocolError::InvalidMessage {
                    label: "recpir-query",
                    reason: "malformed level-2 ciphertext",
                })
        })
        .collect::<Result<_, _>>()?;
    Ok((0..layout.c2)
        .map(|j| {
            (0..n_chunks)
                .map(|ch| {
                    let mut acc: Option<P::Ciphertext> = None;
                    for (r, sel) in sel2.iter().enumerate() {
                        let item = r * layout.c2 + j;
                        let chunk_val = if item < level1_cts.len() {
                            let bytes = pk.ciphertext_to_bytes(&level1_cts[item]);
                            let lo = ch * cw;
                            let hi = ((ch + 1) * cw).min(bytes.len());
                            if lo < hi {
                                Nat::from_le_bytes(&bytes[lo..hi])
                            } else {
                                Nat::zero()
                            }
                        } else {
                            Nat::zero()
                        };
                        if chunk_val.is_zero() {
                            continue;
                        }
                        let term = pk.mul_const(sel, &chunk_val);
                        acc = Some(match acc {
                            None => term,
                            Some(prev) => pk.add(&prev, &term),
                        });
                    }
                    pk.ciphertext_to_bytes(
                        &acc.unwrap_or_else(|| pk.mul_const(&sel2[0], &Nat::zero())),
                    )
                })
                .collect()
        })
        .collect())
}

/// Client: double decryption.
///
/// # Errors
///
/// [`ProtocolError::InvalidMessage`] on a malformed (server-controlled)
/// answer: missing columns, undecodable ciphertexts, or an oversized item.
pub fn client_decode<P: HomomorphicPk, S: HomomorphicSk<P>>(
    pk: &P,
    sk: &S,
    layout: &RecursiveLayout,
    index: usize,
    answer: &[Vec<Vec<u8>>],
) -> Result<u64, ProtocolError> {
    const BAD: ProtocolError = ProtocolError::InvalidMessage {
        label: "recpir-answer",
        reason: "malformed answer",
    };
    let (_, col1) = layout.level1_pos(index);
    let col2 = col1 % layout.c2;
    let cw = chunk_bytes(pk);
    // Outer decryption: recover the level-1 ciphertext bytes.
    let mut level1_ct_bytes = Vec::with_capacity(pk.ciphertext_bytes());
    for chunk_ct in answer.get(col2).ok_or(BAD)? {
        let ct = pk.ciphertext_from_bytes(chunk_ct).ok_or(BAD)?;
        let chunk = sk.decrypt(&ct);
        let width = cw.min(pk.ciphertext_bytes().saturating_sub(level1_ct_bytes.len()));
        // A tampered answer can decrypt to a value wider than the chunk;
        // reject it rather than let the padded serializer panic.
        let mut le = chunk.to_be_bytes();
        le.reverse();
        if le.len() > width {
            return Err(BAD);
        }
        le.resize(width, 0);
        level1_ct_bytes.extend(le);
    }
    // Inner decryption: the actual item.
    let inner = pk.ciphertext_from_bytes(&level1_ct_bytes).ok_or(BAD)?;
    sk.decrypt(&inner).to_u64().ok_or(BAD)
}

/// Runs the depth-2 scheme over a metered channel.
///
/// # Errors
///
/// [`ProtocolError`] on any transport fault or malformed message.
///
/// # Panics
///
/// Panics on index out of range (a driver bug, not an attack).
pub fn run<P: HomomorphicPk, S: HomomorphicSk<P>, R: RandomSource + ?Sized>(
    t: &mut dyn Channel,
    pk: &P,
    sk: &S,
    db: &[u64],
    index: usize,
    rng: &mut R,
) -> Result<u64, ProtocolError> {
    let _proto = spfe_obs::span("recpir");
    let layout = RecursiveLayout::balanced(db.len());
    let q = {
        let _s = spfe_obs::span("query-gen");
        client_query(pk, &layout, index, rng)
    };
    let q = t.client_to_server(0, "recpir-query", &q)?;
    let a = {
        let _s = spfe_obs::span("server-scan");
        server_answer(pk, &layout, db, &q)?
    };
    let a = t.server_to_client(0, "recpir-answer", &a)?;
    let _s = spfe_obs::span("reconstruct");
    client_decode(pk, sk, &layout, index, &a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hom_pir;
    use spfe_crypto::{ChaChaRng, HomomorphicScheme, Paillier};
    use spfe_transport::Transcript;

    fn setup() -> (spfe_crypto::PaillierPk, spfe_crypto::PaillierSk, ChaChaRng) {
        let mut rng = ChaChaRng::from_u64_seed(0x2EC);
        let (pk, sk) = Paillier::keygen(160, &mut rng);
        (pk, sk, rng)
    }

    fn db(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| i * 11 + 3).collect()
    }

    #[test]
    fn layout_covers_all_items() {
        for n in [1usize, 10, 100, 1_000] {
            let l = RecursiveLayout::balanced(n);
            assert!(l.d1 * l.d2 >= n, "n={n} {l:?}");
            assert_eq!(l.d2, l.r2 * l.c2);
        }
    }

    #[test]
    fn retrieves_every_index_small() {
        let (pk, sk, mut rng) = setup();
        let database = db(30);
        for i in 0..database.len() {
            let mut t = Transcript::new(1);
            assert_eq!(
                run(&mut t, &pk, &sk, &database, i, &mut rng).unwrap(),
                database[i],
                "i={i}"
            );
        }
    }

    #[test]
    fn single_round() {
        let (pk, sk, mut rng) = setup();
        let database = db(64);
        let mut t = Transcript::new(1);
        run(&mut t, &pk, &sk, &database, 17, &mut rng).unwrap();
        assert_eq!(t.report().half_rounds, 2);
    }

    #[test]
    fn beats_sqrt_scheme_at_large_n() {
        // The recursion ablation: at large n the (F·n)^{1/3} query beats
        // the 2√n query in total bytes.
        let (pk, sk, mut rng) = setup();
        let n = 20_000;
        let database = db(n);
        let mut t_rec = Transcript::new(1);
        let got = run(&mut t_rec, &pk, &sk, &database, 12_345, &mut rng).unwrap();
        assert_eq!(got, database[12_345]);
        let mut t_sqrt = Transcript::new(1);
        let got2 = hom_pir::run(&mut t_sqrt, &pk, &sk, &database, 12_345, &mut rng).unwrap();
        assert_eq!(got2, database[12_345]);
        let (rec, sqrt) = (t_rec.report().total_bytes(), t_sqrt.report().total_bytes());
        assert!(rec < sqrt, "depth-2 {rec} should beat sqrt {sqrt} at n={n}");
    }

    #[test]
    fn zero_values_and_padding_cells() {
        let (pk, sk, mut rng) = setup();
        let database = vec![0u64, 5, 0, 0, 9, 0, 0]; // padding beyond 7 cells
        for (i, &v) in database.iter().enumerate() {
            let mut t = Transcript::new(1);
            assert_eq!(
                run(&mut t, &pk, &sk, &database, i, &mut rng).unwrap(),
                v,
                "i={i}"
            );
        }
    }
}
