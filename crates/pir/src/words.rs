//! SPIR over multi-word items — `SPIR(n, m, ℓ)` for `ℓ > 64` bits.
//!
//! The paper's protocols retrieve items of several lengths: `log n`-bit
//! field elements (§3.3.2), `κ`-bit encryptions (§3.3.3), and `κ·w`-bit
//! garbled-label bundles (§3.2). This module lifts the single-word SPIR of
//! [`crate::spir`]/[`crate::batched`] to fixed-width multi-word items by
//! running one instance per 64-bit chunk position. (A production scheme
//! would share one query across chunks; running per-chunk instances
//! duplicates the upstream query at a small constant factor while keeping
//! the downstream — the dominant κ-dependent term — identical, so the cost
//! *shape* the paper reasons about is preserved. See EXPERIMENTS.md.)

use crate::batched::{self, BatchedStats};
use crate::spir::{self, SpirParams};
use spfe_crypto::hom::{HomomorphicPk, HomomorphicSk};
use spfe_crypto::SchnorrGroup;
use spfe_math::RandomSource;
use spfe_transport::{Channel, ProtocolError};

/// Retrieves one multi-word item: `items[index]` where every item is a
/// fixed-width `Vec<u64>`.
///
/// # Errors
///
/// [`ProtocolError`] on any transport fault or malformed message.
///
/// # Panics
///
/// Panics if items are ragged/empty or the index is out of range.
pub fn retrieve_one<P, S, R>(
    t: &mut dyn Channel,
    group: &SchnorrGroup,
    pk: &P,
    sk: &S,
    items: &[Vec<u64>],
    index: usize,
    rng: &mut R,
) -> Result<Vec<u64>, ProtocolError>
where
    P: HomomorphicPk,
    S: HomomorphicSk<P>,
    R: RandomSource + ?Sized,
{
    assert!(!items.is_empty() && index < items.len());
    let params = SpirParams::new(group.clone(), items.len());
    spir::run_words(t, &params, pk, sk, items, index, rng)
}

/// Retrieves `m` multi-word items with batched SPIR per chunk position.
///
/// Returns the items in query order plus the batching statistics of the
/// first chunk (all chunks share the same geometry).
///
/// # Errors
///
/// [`ProtocolError`] on any transport fault or malformed message.
///
/// # Panics
///
/// Panics if items are ragged/empty or any index is out of range.
pub fn retrieve_many<P, S, R>(
    t: &mut dyn Channel,
    group: &SchnorrGroup,
    pk: &P,
    sk: &S,
    items: &[Vec<u64>],
    indices: &[usize],
    rng: &mut R,
) -> Result<(Vec<Vec<u64>>, BatchedStats), ProtocolError>
where
    P: HomomorphicPk,
    S: HomomorphicSk<P>,
    R: RandomSource + ?Sized,
{
    assert!(!items.is_empty() && !indices.is_empty());
    batched::run_words(t, group, pk, sk, items, indices, rng)
}

/// Packs bytes into little-endian u64 words (zero-padded).
pub fn bytes_to_words(bytes: &[u8]) -> Vec<u64> {
    bytes
        .chunks(8)
        .map(|c| {
            let mut w = [0u8; 8];
            w[..c.len()].copy_from_slice(c);
            u64::from_le_bytes(w)
        })
        .collect()
}

/// Unpacks little-endian u64 words into `len` bytes.
///
/// # Panics
///
/// Panics if `len > 8 * words.len()`.
pub fn words_to_bytes(words: &[u64], len: usize) -> Vec<u8> {
    assert!(len <= 8 * words.len());
    let mut out = Vec::with_capacity(len);
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfe_crypto::{ChaChaRng, HomomorphicScheme, Paillier};
    use spfe_transport::Transcript;

    fn setup() -> (
        SchnorrGroup,
        spfe_crypto::PaillierPk,
        spfe_crypto::PaillierSk,
        ChaChaRng,
    ) {
        let mut rng = ChaChaRng::from_u64_seed(0x30D5);
        let group = SchnorrGroup::generate(96, &mut rng);
        let (pk, sk) = Paillier::keygen(128, &mut rng);
        (group, pk, sk, rng)
    }

    fn items(n: usize, w: usize) -> Vec<Vec<u64>> {
        (0..n)
            .map(|i| {
                (0..w)
                    .map(|c| (i * 1000 + c) as u64 + u64::MAX / 2)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn retrieve_one_multiword() {
        let (group, pk, sk, mut rng) = setup();
        let db = items(9, 3);
        for i in [0usize, 4, 8] {
            let mut t = Transcript::new(1);
            assert_eq!(
                retrieve_one(&mut t, &group, &pk, &sk, &db, i, &mut rng).unwrap(),
                db[i]
            );
        }
    }

    #[test]
    fn retrieve_many_multiword() {
        let (group, pk, sk, mut rng) = setup();
        let db = items(30, 2);
        let indices = [1usize, 13, 29];
        let mut t = Transcript::new(1);
        let (got, stats) =
            retrieve_many(&mut t, &group, &pk, &sk, &db, &indices, &mut rng).unwrap();
        for (g, &i) in got.iter().zip(&indices) {
            assert_eq!(*g, db[i]);
        }
        assert!(stats.bucket_queries > 0);
    }

    #[test]
    fn byte_word_roundtrip() {
        for len in [0usize, 1, 7, 8, 9, 33] {
            let bytes: Vec<u8> = (0..len as u8).collect();
            let words = bytes_to_words(&bytes);
            assert_eq!(words_to_bytes(&words, len), bytes, "len={len}");
        }
    }

    #[test]
    fn max_value_words_survive() {
        // Chunks equal to u64::MAX must round-trip through the homomorphic
        // layer (they are < the 128-bit plaintext modulus).
        let (group, pk, sk, mut rng) = setup();
        let db = vec![vec![u64::MAX, 0], vec![1, u64::MAX - 1]];
        let mut t = Transcript::new(1);
        assert_eq!(
            retrieve_one(&mut t, &group, &pk, &sk, &db, 0, &mut rng).unwrap(),
            db[0]
        );
    }
}
