//! # spfe-pir
//!
//! The (S)PIR substrate of the SPFE reproduction:
//!
//! * [`xor2`] — the 2-server XOR PIR of Chor et al. \[17\];
//! * [`poly_it`] — `t`-private `k`-server polynomial-interpolation PIR
//!   (Lemma 1 / instance hiding \[5\]), with the \[25\]-style symmetric-privacy
//!   blinding (`R(0) = 0`) used by the paper's multi-server protocols;
//! * [`hom_pir`] — single-server computational PIR from additively
//!   homomorphic encryption (Kushilevitz–Ostrovsky \[32\], √n layout);
//! * [`spir`] — the single-server symmetric transform: padded answers plus a
//!   1-out-of-√n OT on the pads, giving a 1-round `SPIR(n, 1, *)`;
//! * [`batched`] — `SPIR(n, m, *)` via two-choice grid cuckoo bucketing
//!   (\[36, 37, 8\]), the primitive that makes the §3.3.2/§3.3.3 input
//!   selection cheaper than `m` independent retrievals.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batched;
pub mod hom_pir;
pub mod oracle;
pub mod poly_it;
pub mod recursive;
pub mod spir;
pub mod words;
pub mod xor2;

pub use batched::{BatchLayout, BatchedStats};
pub use hom_pir::Layout;
pub use oracle::{HomSpir, IdealSpir, SpirOracle};
pub use poly_it::PolyItParams;
pub use recursive::RecursiveLayout;
pub use spir::{SpirAnswer, SpirParams, SpirQuery};
