//! Single-server computational PIR from additively homomorphic encryption
//! (Kushilevitz–Ostrovsky \[32\] style, √n layout).
//!
//! The database is arranged as a `rows × cols` matrix. The client sends the
//! encrypted unit vector of its target row (`rows` ciphertexts); the server
//! homomorphically computes, for every column `j`,
//! `C_j = Σ_r E(e_r)·x[r][j] = E(x[row][j])` and returns the `cols`
//! ciphertexts. With `rows = cols = ⌈√n⌉` the communication is
//! `O(√n · κ)` — sublinear, the property the whole paper builds on.
//!
//! Note: the client decrypts its entire row, so this is *plain* PIR; the
//! SPIR layer that restricts the client to a single item is added in
//! [`crate::spir`].

use spfe_crypto::hom::{HomomorphicPk, HomomorphicSk};
use spfe_math::{Nat, RandomSource};
use spfe_transport::{
    Channel, ChannelExt, ClientCore, OutMsg, ProtocolError, Reader, SessionCore, SessionState,
    Wire, WireError,
};

/// Matrix layout for a database of `n` items.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Number of rows (the dimension the encrypted selector covers).
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl Layout {
    /// The balanced `⌈√n⌉ × ⌈n/rows⌉` layout.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn square(n: usize) -> Self {
        assert!(n > 0);
        // Exact ⌈√n⌉ via integer isqrt — `f64` rounding misplaces the
        // ceiling for n within 2^53-scale of a perfect square.
        let s = n.isqrt();
        let rows = if s * s == n { s } else { s + 1 };
        let cols = n.div_ceil(rows);
        Layout { rows, cols }
    }

    /// Position of item `i`.
    pub fn position(&self, i: usize) -> (usize, usize) {
        (i / self.cols, i % self.cols)
    }

    /// Total cells (≥ n; the tail is padding).
    pub fn cells(&self) -> usize {
        self.rows * self.cols
    }
}

/// The client query: encryptions of the row unit vector (opaque ciphertext
/// bytes so the message is scheme-agnostic on the wire).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HomPirQuery {
    /// One ciphertext per row.
    pub row_selector: Vec<Vec<u8>>,
}

impl Wire for HomPirQuery {
    fn encode(&self, out: &mut Vec<u8>) {
        self.row_selector.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(HomPirQuery {
            row_selector: Vec::<Vec<u8>>::decode(r)?,
        })
    }
}

/// The server answer: one ciphertext per column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HomPirAnswer {
    /// `E(x[row][j])` for each column `j`.
    pub columns: Vec<Vec<u8>>,
}

impl Wire for HomPirAnswer {
    fn encode(&self, out: &mut Vec<u8>) {
        self.columns.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(HomPirAnswer {
            columns: Vec::<Vec<u8>>::decode(r)?,
        })
    }
}

/// Client: builds the encrypted row selector for `index`.
///
/// # Panics
///
/// Panics if `index >= layout.cells()`.
pub fn client_query<P: HomomorphicPk, R: RandomSource + ?Sized>(
    pk: &P,
    layout: &Layout,
    index: usize,
    rng: &mut R,
) -> HomPirQuery {
    assert!(index < layout.cells(), "index out of range");
    let (row, _) = layout.position(index);
    let bits: Vec<Nat> = (0..layout.rows)
        .map(|r| if r == row { Nat::one() } else { Nat::zero() })
        .collect();
    let row_selector = pk
        .encrypt_batch(&bits, rng)
        .iter()
        .map(|ct| pk.ciphertext_to_bytes(ct))
        .collect();
    HomPirQuery { row_selector }
}

/// Server: homomorphic inner products, one per column.
///
/// Returns the raw selected-row ciphertexts; used directly for PIR and as
/// the first step of the SPIR transform.
///
/// # Errors
///
/// [`ProtocolError::InvalidMessage`] if the (client-controlled) query
/// arity mismatches the layout or a ciphertext is malformed.
///
/// # Panics
///
/// Panics if a database value exceeds the plaintext modulus (the server's
/// own data).
pub fn server_answer<P: HomomorphicPk>(
    pk: &P,
    layout: &Layout,
    db: &[u64],
    query: &HomPirQuery,
) -> Result<Vec<P::Ciphertext>, ProtocolError> {
    if query.row_selector.len() != layout.rows {
        return Err(ProtocolError::InvalidMessage {
            label: "hompir-query",
            reason: "query arity mismatches layout",
        });
    }
    // Counted once on the calling thread (not inside the parallel closure)
    // so the tally is identical under any worker-pool configuration.
    spfe_obs::count(spfe_obs::Op::PirWordsScanned, layout.cells() as u64);
    let selectors: Vec<P::Ciphertext> = query
        .row_selector
        .iter()
        .map(|b| {
            pk.ciphertext_from_bytes(b)
                .ok_or(ProtocolError::InvalidMessage {
                    label: "hompir-query",
                    reason: "malformed query ciphertext",
                })
        })
        .collect::<Result<_, _>>()?;
    // The Ω(n) hot loop: one mod-exp per non-zero cell. Each column is
    // independent and rng-free, so shard columns across the worker pool —
    // results come back in column order, keeping the answer (and every
    // transcript built from it) byte-identical to the serial scan. Each
    // column is √n modexps: squarely `CostClass::Heavy`.
    let col_idx: Vec<usize> = (0..layout.cols).collect();
    Ok(spfe_math::par::par_map_cost(
        spfe_math::par::CostClass::Heavy,
        &col_idx,
        |&j| {
            let mut acc: Option<P::Ciphertext> = None;
            for (r, sel) in selectors.iter().enumerate() {
                let i = r * layout.cols + j;
                let v = if i < db.len() { db[i] } else { 0 };
                if v == 0 {
                    continue;
                }
                let term = pk.mul_const(sel, &Nat::from(v));
                acc = Some(match acc {
                    None => term,
                    Some(prev) => pk.add(&prev, &term),
                });
            }
            // An all-zero column still needs a well-formed ciphertext.
            acc.unwrap_or_else(|| pk.mul_const(&selectors[0], &Nat::zero()))
        },
    ))
}

/// Serializes column ciphertexts into the wire answer.
pub fn answer_to_wire<P: HomomorphicPk>(pk: &P, columns: &[P::Ciphertext]) -> HomPirAnswer {
    HomPirAnswer {
        columns: columns.iter().map(|c| pk.ciphertext_to_bytes(c)).collect(),
    }
}

/// Client: decrypts the target column of the answer.
///
/// # Errors
///
/// [`ProtocolError::InvalidMessage`] if the (server-controlled) answer has
/// the wrong arity, a malformed ciphertext, or an over-range plaintext.
pub fn client_decode<P: HomomorphicPk, S: HomomorphicSk<P>>(
    pk: &P,
    sk: &S,
    layout: &Layout,
    index: usize,
    answer: &HomPirAnswer,
) -> Result<u64, ProtocolError> {
    if answer.columns.len() != layout.cols {
        return Err(ProtocolError::InvalidMessage {
            label: "hompir-answer",
            reason: "answer arity mismatches layout",
        });
    }
    let (_, col) = layout.position(index);
    let ct =
        pk.ciphertext_from_bytes(&answer.columns[col])
            .ok_or(ProtocolError::InvalidMessage {
                label: "hompir-answer",
                reason: "malformed answer ciphertext",
            })?;
    sk.decrypt(&ct)
        .to_u64()
        .ok_or(ProtocolError::InvalidMessage {
            label: "hompir-answer",
            reason: "decrypted item exceeds u64",
        })
}

/// Runs the full single-server protocol over a metered channel.
///
/// # Errors
///
/// [`ProtocolError`] on any transport fault or malformed message.
///
/// # Panics
///
/// Panics on index out of range or db values ≥ plaintext modulus (driver
/// bugs, not attacks).
pub fn run<P: HomomorphicPk, S: HomomorphicSk<P>, R: RandomSource + ?Sized>(
    t: &mut dyn Channel,
    pk: &P,
    sk: &S,
    db: &[u64],
    index: usize,
    rng: &mut R,
) -> Result<u64, ProtocolError> {
    let _proto = spfe_obs::span("hompir");
    let layout = Layout::square(db.len());
    let q = {
        let _s = spfe_obs::span("query-gen");
        client_query(pk, &layout, index, rng)
    };
    let q = t.client_to_server(0, "hompir-query", &q)?;
    let a = {
        let _s = spfe_obs::span("server-scan");
        let cols = server_answer(pk, &layout, db, &q)?;
        answer_to_wire(pk, &cols)
    };
    let a = t.server_to_client(0, "hompir-answer", &a)?;
    let _s = spfe_obs::span("reconstruct");
    client_decode(pk, sk, &layout, index, &a)
}

// ---------------------------------------------------------------------------
// Sans-io state machines (DESIGN.md §15), calling the same
// client_query/server_answer/client_decode functions as the monolithic
// [`run`] so every transport produces identical wire bytes and op counts.
// ---------------------------------------------------------------------------

/// Server half of √n homomorphic PIR as a sans-io state machine.
#[derive(Debug)]
pub struct HomPirServerCore<P: HomomorphicPk> {
    pk: P,
    layout: Layout,
    db: Vec<u64>,
    answered: bool,
}

impl<P: HomomorphicPk> HomPirServerCore<P> {
    /// A core holding `db` under the square layout for its size.
    pub fn new(pk: P, db: Vec<u64>) -> Self {
        let layout = Layout::square(db.len());
        HomPirServerCore {
            pk,
            layout,
            db,
            answered: false,
        }
    }
}

impl<P: HomomorphicPk> SessionCore for HomPirServerCore<P> {
    fn on_message(
        &mut self,
        _half_round: u32,
        _server: usize,
        label: &str,
        payload: &[u8],
    ) -> Result<(SessionState, Vec<OutMsg>), ProtocolError> {
        if label != "hompir-query" || self.answered {
            return Err(ProtocolError::InvalidMessage {
                label: "hompir-query",
                reason: "unexpected message for a hom_pir server",
            });
        }
        let query = HomPirQuery::from_bytes(payload)?;
        let columns = server_answer(&self.pk, &self.layout, &self.db, &query)?;
        let answer = answer_to_wire(&self.pk, &columns);
        self.answered = true;
        Ok((
            SessionState::Done,
            vec![OutMsg::to_client(0, "hompir-answer", answer.to_bytes())],
        ))
    }
}

/// Client half of √n homomorphic PIR: query at start, decode on answer.
#[derive(Debug)]
pub struct HomPirClientCore<P: HomomorphicPk, S: HomomorphicSk<P>> {
    pk: P,
    sk: S,
    layout: Layout,
    index: usize,
    query: Option<HomPirQuery>,
    result: Option<u64>,
}

impl<P: HomomorphicPk, S: HomomorphicSk<P>> HomPirClientCore<P, S> {
    /// A client core retrieving `index` from an `n`-item database. The
    /// encrypted selector is generated here — all randomness is consumed
    /// at construction.
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside the layout for `n`.
    pub fn new<R: RandomSource + ?Sized>(
        pk: P,
        sk: S,
        n: usize,
        index: usize,
        rng: &mut R,
    ) -> Self {
        let layout = Layout::square(n);
        let query = client_query(&pk, &layout, index, rng);
        HomPirClientCore {
            pk,
            sk,
            layout,
            index,
            query: Some(query),
            result: None,
        }
    }
}

impl<P: HomomorphicPk, S: HomomorphicSk<P>> SessionCore for HomPirClientCore<P, S> {
    fn start(&mut self) -> Result<(SessionState, Vec<OutMsg>), ProtocolError> {
        let q = self.query.take().ok_or(ProtocolError::InvalidMessage {
            label: "hompir-query",
            reason: "hom_pir client core started twice",
        })?;
        Ok((
            SessionState::Running,
            vec![OutMsg::to_server(0, "hompir-query", q.to_bytes())],
        ))
    }

    fn on_message(
        &mut self,
        _half_round: u32,
        server: usize,
        label: &str,
        payload: &[u8],
    ) -> Result<(SessionState, Vec<OutMsg>), ProtocolError> {
        if label != "hompir-answer" || server != 0 || self.result.is_some() {
            return Err(ProtocolError::InvalidMessage {
                label: "hompir-answer",
                reason: "unexpected message for the hom_pir client",
            });
        }
        let answer = HomPirAnswer::from_bytes(payload)?;
        self.result = Some(client_decode(
            &self.pk,
            &self.sk,
            &self.layout,
            self.index,
            &answer,
        )?);
        Ok((SessionState::Done, Vec::new()))
    }
}

impl<P: HomomorphicPk, S: HomomorphicSk<P>> ClientCore for HomPirClientCore<P, S> {
    fn digest(&self) -> Option<u64> {
        self.result
    }

    fn static_label(&self, label: &str) -> Option<&'static str> {
        (label == "hompir-answer").then_some("hompir-answer")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfe_crypto::{ChaChaRng, HomomorphicScheme, Paillier};
    use spfe_transport::Transcript;

    fn setup() -> (spfe_crypto::PaillierPk, spfe_crypto::PaillierSk, ChaChaRng) {
        let mut rng = ChaChaRng::from_u64_seed(0x9999);
        let (pk, sk) = Paillier::keygen(128, &mut rng);
        (pk, sk, rng)
    }

    fn db(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| i * 13 + 7).collect()
    }

    #[test]
    fn layout_square() {
        let l = Layout::square(100);
        assert_eq!((l.rows, l.cols), (10, 10));
        let l = Layout::square(10);
        assert!(l.rows * l.cols >= 10);
        assert_eq!(Layout::square(1).cells(), 1);
    }

    #[test]
    fn layout_square_exact_at_perfect_squares() {
        // At n = s² the layout must be exactly s × s (no padding); just
        // above it must step to s × (s+1)-ish, never lose cells.
        for s in [1usize, 2, 3, 10, 100, 1 << 10, 1 << 20, (1 << 26) + 3] {
            let l = Layout::square(s * s);
            assert_eq!((l.rows, l.cols), (s, s), "n={}", s * s);
            assert_eq!(l.cells(), s * s);
            let l = Layout::square(s * s + 1);
            assert_eq!(l.rows, s + 1, "n={}", s * s + 1);
            assert!(l.cells() > s * s);
            if s > 1 {
                let l = Layout::square(s * s - 1);
                assert_eq!(l.rows, s, "n={}", s * s - 1);
                assert!(l.cells() >= s * s - 1);
            }
        }
    }

    #[test]
    fn layout_square_usize_max_adjacent() {
        // The f64 path miscomputed ⌈√n⌉ up here (2^64 is far past 2^53, so
        // `(n as f64).sqrt()` rounds); the integer path must stay exact and
        // must not overflow in the s·s probe.
        let s = usize::MAX.isqrt(); // 2^32 - 1 on 64-bit targets
        for n in [usize::MAX, usize::MAX - 1, s * s, s * s - 1, s * s + 1] {
            let l = Layout::square(n);
            // rows = ⌈√n⌉ exactly: (rows-1)² < n ≤ rows².
            assert!((l.rows - 1) * (l.rows - 1) < n, "n={n}");
            assert!(
                l.rows == s && l.rows * l.rows >= n || l.rows == s + 1,
                "n={n}"
            );
            // Every item must fit.
            assert!(l.rows as u128 * l.cols as u128 >= n as u128, "n={n}");
        }
        assert_eq!(Layout::square(s * s).rows, s);
        assert_eq!(Layout::square(usize::MAX).rows, s + 1);
    }

    #[test]
    fn parallel_server_answer_transcript_is_byte_identical() {
        // The whole determinism contract in one test: with the same rng
        // seed, a run with the pool forced to 4 threads produces the same
        // wire bytes and meter counts as the serial (1-thread) run.
        let (pk, sk, rng) = setup();
        let database = db(40);

        let run_with = |threads: usize| {
            spfe_math::par::set_threads(Some(threads));
            spfe_math::par::set_seq_threshold(Some(1)); // force the pool on
            let mut rng = rng.clone();
            let mut t = Transcript::new(1);
            let layout = Layout::square(database.len());
            let q = client_query(&pk, &layout, 17, &mut rng);
            let q_wire = {
                use spfe_transport::Wire as _;
                q.to_bytes()
            };
            let q = t.client_to_server(0, "hompir-query", &q).expect("codec");
            let cols = server_answer(&pk, &layout, &database, &q).unwrap();
            let a = answer_to_wire(&pk, &cols);
            let a_wire = {
                use spfe_transport::Wire as _;
                a.to_bytes()
            };
            let a = t.server_to_client(0, "hompir-answer", &a).expect("codec");
            let out = client_decode(&pk, &sk, &layout, 17, &a).unwrap();
            spfe_math::par::set_seq_threshold(None);
            spfe_math::par::set_threads(None);
            (q_wire, a_wire, t.report(), out)
        };

        let serial = run_with(1);
        let parallel = run_with(4);
        assert_eq!(serial.0, parallel.0, "query bytes differ");
        assert_eq!(serial.1, parallel.1, "answer bytes differ");
        assert_eq!(serial.2, parallel.2, "meter reports differ");
        assert_eq!(serial.3, database[17]);
        assert_eq!(parallel.3, database[17]);
    }

    #[test]
    fn retrieves_every_index() {
        let (pk, sk, mut rng) = setup();
        let database = db(10);
        for i in 0..database.len() {
            let mut t = Transcript::new(1);
            assert_eq!(
                run(&mut t, &pk, &sk, &database, i, &mut rng).unwrap(),
                database[i]
            );
        }
    }

    #[test]
    fn non_square_database_with_padding() {
        let (pk, sk, mut rng) = setup();
        let database = db(7); // layout 3×3 with 2 padding cells
        for i in 0..7 {
            let mut t = Transcript::new(1);
            assert_eq!(
                run(&mut t, &pk, &sk, &database, i, &mut rng).unwrap(),
                database[i]
            );
        }
    }

    #[test]
    fn zero_items_and_zero_columns() {
        let (pk, sk, mut rng) = setup();
        let database = vec![0u64, 0, 0, 5];
        for (i, &v) in database.iter().enumerate() {
            let mut t = Transcript::new(1);
            assert_eq!(run(&mut t, &pk, &sk, &database, i, &mut rng).unwrap(), v);
        }
    }

    #[test]
    fn communication_is_sublinear() {
        let (pk, sk, mut rng) = setup();
        let mut totals = Vec::new();
        for n in [16usize, 64, 256] {
            let database = db(n);
            let mut t = Transcript::new(1);
            run(&mut t, &pk, &sk, &database, n / 2, &mut rng).unwrap();
            totals.push(t.report().total_bytes());
        }
        // Expect ~√n scaling: quadrupling n should roughly double bytes.
        let r1 = totals[1] as f64 / totals[0] as f64;
        let r2 = totals[2] as f64 / totals[1] as f64;
        assert!(r1 < 3.0 && r2 < 3.0, "growth too fast: {totals:?}");
        // And certainly far below sending the database under encryption.
        let linear = 256 * pk.ciphertext_bytes() as u64;
        assert!(totals[2] < linear / 2, "not sublinear: {totals:?}");
    }

    #[test]
    fn single_round() {
        let (pk, sk, mut rng) = setup();
        let database = db(9);
        let mut t = Transcript::new(1);
        run(&mut t, &pk, &sk, &database, 4, &mut rng).unwrap();
        assert_eq!(t.report().half_rounds, 2);
    }

    #[test]
    fn query_ciphertexts_are_semantically_hiding() {
        // Two queries for different rows are (trivially) different bytes but
        // each entry is a valid fresh encryption of 0/1 — no plaintext leaks
        // without the secret key. Sanity: all entries decrypt to a unit vector.
        let (pk, sk, mut rng) = setup();
        let layout = Layout::square(9);
        let q = client_query(&pk, &layout, 5, &mut rng);
        let decrypted: Vec<u64> = q
            .row_selector
            .iter()
            .map(|b| {
                sk.decrypt(&pk.ciphertext_from_bytes(b).unwrap())
                    .to_u64()
                    .unwrap()
            })
            .collect();
        let ones: u64 = decrypted.iter().sum();
        assert_eq!(ones, 1);
        assert_eq!(decrypted[layout.position(5).0], 1);
    }
}
