//! The SPIR black box, as the paper presents it.
//!
//! §1.2: "Most of our constructions will utilize the SPIR primitive as a
//! black box. Thus, we will generally not be concerned with the specifics
//! of its implementation. […] By substituting specific implementations of
//! these primitives, one may get a concrete sense of the actual costs."
//!
//! [`SpirOracle`] is that black box: protocols written against it can be
//! costed under any instantiation. Two are provided:
//!
//! * [`HomSpir`] — the real thing (homomorphic √n PIR + pad OT);
//! * [`IdealSpir`] — an information-flow-faithful *cost model*: it moves
//!   exactly one encoded index upstream and one item (+κ padding)
//!   downstream, the minimum any 1-round SPIR could send. Running an SPFE
//!   protocol against it isolates the protocol's own overhead from the
//!   SPIR instantiation's — the decomposition the paper's Table 1 performs
//!   symbolically.

use crate::batched;
use crate::spir::{self, SpirParams};
use spfe_crypto::{ChaChaRng, HomomorphicScheme, Paillier, PaillierPk, PaillierSk, SchnorrGroup};
use spfe_transport::{Channel, ChannelExt, ProtocolError};

/// A (symmetrically private) retrieval black box.
pub trait SpirOracle {
    /// Retrieves `db[index]` over the metered channel.
    ///
    /// # Errors
    ///
    /// [`ProtocolError`] on any transport fault or malformed message.
    fn retrieve_one(
        &self,
        t: &mut dyn Channel,
        db: &[u64],
        index: usize,
        rng: &mut dyn FnMut() -> u64,
    ) -> Result<u64, ProtocolError>;

    /// Retrieves `m` items (batched where the instantiation supports it).
    ///
    /// # Errors
    ///
    /// [`ProtocolError`] on any transport fault or malformed message.
    fn retrieve_many(
        &self,
        t: &mut dyn Channel,
        db: &[u64],
        indices: &[usize],
        rng: &mut dyn FnMut() -> u64,
    ) -> Result<Vec<u64>, ProtocolError>;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Adapter: a `FnMut() -> u64` entropy tap as a [`RandomSource`].
struct TapRng<'a>(&'a mut dyn FnMut() -> u64);

impl spfe_math::RandomSource for TapRng<'_> {
    fn next_u64(&mut self) -> u64 {
        (self.0)()
    }
}

/// The concrete single-server SPIR of this workspace.
pub struct HomSpir {
    group: SchnorrGroup,
    pk: PaillierPk,
    sk: PaillierSk,
}

impl HomSpir {
    /// Builds the oracle with fresh keys at the given Paillier size.
    pub fn new(seed: u64, paillier_bits: usize) -> Self {
        let mut rng = ChaChaRng::from_u64_seed(seed);
        let group = SchnorrGroup::generate(96, &mut rng);
        let (pk, sk) = Paillier::keygen(paillier_bits, &mut rng);
        HomSpir { group, pk, sk }
    }

    /// Wraps existing keys.
    pub fn with_keys(group: SchnorrGroup, pk: PaillierPk, sk: PaillierSk) -> Self {
        HomSpir { group, pk, sk }
    }
}

impl SpirOracle for HomSpir {
    fn retrieve_one(
        &self,
        t: &mut dyn Channel,
        db: &[u64],
        index: usize,
        rng: &mut dyn FnMut() -> u64,
    ) -> Result<u64, ProtocolError> {
        let params = SpirParams::new(self.group.clone(), db.len());
        let mut tap = TapRng(rng);
        spir::run(t, &params, &self.pk, &self.sk, db, index, &mut tap)
    }

    fn retrieve_many(
        &self,
        t: &mut dyn Channel,
        db: &[u64],
        indices: &[usize],
        rng: &mut dyn FnMut() -> u64,
    ) -> Result<Vec<u64>, ProtocolError> {
        let mut tap = TapRng(rng);
        let (vals, _) = batched::run(t, &self.group, &self.pk, &self.sk, db, indices, &mut tap)?;
        Ok(vals)
    }

    fn name(&self) -> &'static str {
        "hom-sqrt-spir"
    }
}

/// The idealized cost model: an oracle whose messages carry exactly the
/// information the functionality requires — `⌈log₂ n⌉` bits up (hidden
/// inside a κ-bit encrypted index) and an ℓ-bit item inside a κ-bit
/// payload down. **Not a secure protocol** — a measurement instrument for
/// attributing SPFE costs to the SPIR term vs. the rest (the paper's
/// "black box" accounting).
pub struct IdealSpir {
    /// The modeled security parameter in bytes (default 16).
    pub kappa_bytes: usize,
}

impl Default for IdealSpir {
    fn default() -> Self {
        IdealSpir { kappa_bytes: 16 }
    }
}

impl SpirOracle for IdealSpir {
    fn retrieve_one(
        &self,
        t: &mut dyn Channel,
        db: &[u64],
        index: usize,
        _rng: &mut dyn FnMut() -> u64,
    ) -> Result<u64, ProtocolError> {
        // κ bytes up (the "encrypted index"), κ bytes down (the item).
        let up = vec![0u8; self.kappa_bytes];
        let _ = t.client_to_server(0, "ideal-spir-query", &up)?;
        let mut down = vec![0u8; self.kappa_bytes.saturating_sub(8)];
        down.extend(db[index].to_le_bytes());
        let down = t.server_to_client(0, "ideal-spir-answer", &down)?;
        if down.len() < 8 {
            return Err(ProtocolError::InvalidMessage {
                label: "ideal-spir-answer",
                reason: "answer shorter than one item",
            });
        }
        Ok(u64::from_le_bytes(
            down[down.len() - 8..].try_into().expect("8-byte slice"),
        ))
    }

    fn retrieve_many(
        &self,
        t: &mut dyn Channel,
        db: &[u64],
        indices: &[usize],
        _rng: &mut dyn FnMut() -> u64,
    ) -> Result<Vec<u64>, ProtocolError> {
        let up = vec![0u8; self.kappa_bytes * indices.len()];
        let _ = t.client_to_server(0, "ideal-spir-query", &up)?;
        let items: Vec<u64> = indices.iter().map(|&i| db[i]).collect();
        let pad = vec![0u8; self.kappa_bytes.saturating_sub(8) * indices.len()];
        let _ = t.server_to_client(0, "ideal-spir-pad", &pad)?;
        t.server_to_client(0, "ideal-spir-answer", &items)
    }

    fn name(&self) -> &'static str {
        "ideal-spir"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfe_transport::Transcript;

    fn tap() -> impl FnMut() -> u64 {
        let mut rng = ChaChaRng::from_u64_seed(0x0AC);
        move || spfe_math::RandomSource::next_u64(&mut rng)
    }

    #[test]
    fn both_oracles_retrieve_correctly() {
        let db: Vec<u64> = (0..40u64).map(|i| i * 9 + 1).collect();
        let oracles: Vec<Box<dyn SpirOracle>> = vec![
            Box::new(HomSpir::new(1, 128)),
            Box::new(IdealSpir::default()),
        ];
        let mut entropy = tap();
        for oracle in &oracles {
            let mut t = Transcript::new(1);
            assert_eq!(
                oracle.retrieve_one(&mut t, &db, 17, &mut entropy).unwrap(),
                db[17],
                "{}",
                oracle.name()
            );
            let mut t = Transcript::new(1);
            let got = oracle
                .retrieve_many(&mut t, &db, &[3, 19, 33], &mut entropy)
                .unwrap();
            assert_eq!(got, vec![db[3], db[19], db[33]], "{}", oracle.name());
        }
    }

    #[test]
    fn ideal_oracle_is_a_lower_bound() {
        let db: Vec<u64> = (0..256u64).collect();
        let real = HomSpir::new(2, 128);
        let ideal = IdealSpir::default();
        let mut entropy = tap();
        let mut t_real = Transcript::new(1);
        real.retrieve_one(&mut t_real, &db, 100, &mut entropy)
            .unwrap();
        let mut t_ideal = Transcript::new(1);
        ideal
            .retrieve_one(&mut t_ideal, &db, 100, &mut entropy)
            .unwrap();
        assert!(
            t_ideal.report().total_bytes() < t_real.report().total_bytes() / 4,
            "ideal {} vs real {}",
            t_ideal.report().total_bytes(),
            t_real.report().total_bytes()
        );
        // Both are one round.
        assert_eq!(t_ideal.report().half_rounds, 2);
        assert_eq!(t_real.report().half_rounds, 2);
    }
}
