//! t-private k-server information-theoretic PIR via polynomial interpolation.
//!
//! This is Lemma 1 of the paper (\[5\], instance hiding) specialized to the
//! database selector polynomial: encode index `i` as its `ℓ` bits, so the
//! database becomes the degree-`ℓ` polynomial
//! `P₀(y) = Σ_j x_j·χ_j(y)` (see [`spfe_circuits::formula::selector_eval`]).
//! The client pushes its encoded index through a random degree-`t` curve
//! `c(τ)` with `c(0) = enc(i)`, sends `c(α_h)` to server `h`, and
//! interpolates the degree-`ℓ·t` polynomial `P₀(c(τ))` at `τ = 0` from the
//! `k = ℓ·t + 1` answers. Any `t` servers see `t` points on a random curve —
//! perfect privacy.
//!
//! With the symmetric-privacy extension of \[25\], servers share a random
//! degree-`ℓt` polynomial `R` with `R(0) = 0` and reply `P₀(c(α_h)) + R(α_h)`
//! so the client learns *only* `x_i` (SPIR).

use spfe_circuits::formula::{encode_index, index_bits, selector_eval};
use spfe_math::{Fp64, Poly, RandomSource};
use spfe_transport::{
    Channel, ChannelExt, ClientCore, OutMsg, ProtocolError, Reader, SessionCore, SessionState,
    Wire, WireError,
};

/// Parameters of the scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolyItParams {
    /// Privacy threshold: number of colluding servers tolerated.
    pub t: usize,
    /// Number of index bits `ℓ`.
    pub ell: usize,
    /// Field for all arithmetic (`p > max(k, data values)`).
    pub field: Fp64,
}

impl PolyItParams {
    /// Parameters for a database of `n` items with threshold `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t == 0` or `n == 0`.
    pub fn new(n: usize, t: usize, field: Fp64) -> Self {
        assert!(t >= 1 && n >= 1);
        PolyItParams {
            t,
            ell: index_bits(n),
            field,
        }
    }

    /// Required number of servers `k = ℓ·t + 1`.
    pub fn num_servers(&self) -> usize {
        self.ell * self.t + 1
    }

    /// The evaluation point `α_h ≠ 0` assigned to server `h`.
    pub fn alpha(&self, server: usize) -> u64 {
        (server as u64) + 1
    }
}

/// Query to one server: a point of the curve, one coordinate per index bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolyItQuery {
    /// `c(α_h) ∈ F^ℓ`.
    pub point: Vec<u64>,
}

impl Wire for PolyItQuery {
    fn encode(&self, out: &mut Vec<u8>) {
        self.point.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(PolyItQuery {
            point: Vec::<u64>::decode(r)?,
        })
    }
}

/// Client: builds one query per server for `index`.
///
/// # Panics
///
/// Panics if `index` does not fit in `ℓ` bits.
pub fn client_queries<R: RandomSource + ?Sized>(
    params: &PolyItParams,
    index: usize,
    rng: &mut R,
) -> Vec<PolyItQuery> {
    assert!(index < 1usize << params.ell, "index out of range");
    let enc = encode_index(index, params.ell);
    // One random degree-t curve per coordinate, passing through enc at 0.
    let curves: Vec<Poly> = enc
        .iter()
        .map(|&bit| Poly::random_with_constant(bit, params.t, params.field, rng))
        .collect();
    (0..params.num_servers())
        .map(|h| {
            let tau = params.alpha(h);
            PolyItQuery {
                point: curves.iter().map(|c| c.eval(tau)).collect(),
            }
        })
        .collect()
}

/// Server: evaluates the database polynomial at the received point.
///
/// # Errors
///
/// [`ProtocolError::InvalidMessage`] if the (client-controlled) query
/// arity does not match `ℓ`.
pub fn server_answer(
    params: &PolyItParams,
    db: &[u64],
    query: &PolyItQuery,
) -> Result<u64, ProtocolError> {
    if query.point.len() != params.ell {
        return Err(ProtocolError::InvalidMessage {
            label: "polyit-query",
            reason: "query arity does not match index bits",
        });
    }
    spfe_obs::count(spfe_obs::Op::PirWordsScanned, db.len() as u64);
    Ok(selector_eval(db, &query.point, params.field))
}

/// Server with symmetric privacy: adds the shared blinding polynomial's
/// value at this server's point (\[25\]).
///
/// # Errors
///
/// [`ProtocolError::InvalidMessage`] on a malformed query (see
/// [`server_answer`]).
pub fn server_answer_blinded(
    params: &PolyItParams,
    db: &[u64],
    query: &PolyItQuery,
    blind: &Poly,
    server: usize,
) -> Result<u64, ProtocolError> {
    let raw = server_answer(params, db, query)?;
    Ok(params.field.add(raw, blind.eval(params.alpha(server))))
}

/// Generates the servers' shared blinding polynomial `R` (degree `ℓ·t`,
/// `R(0) = 0`) from their common randomness.
pub fn blinding_poly<R: RandomSource + ?Sized>(params: &PolyItParams, rng: &mut R) -> Poly {
    Poly::random_with_constant(0, params.ell * params.t, params.field, rng)
}

/// Client: interpolates the answers at `τ = 0`.
///
/// # Panics
///
/// Panics if fewer than `k` answers are supplied.
pub fn client_reconstruct(params: &PolyItParams, answers: &[u64]) -> u64 {
    let k = params.num_servers();
    assert!(answers.len() >= k, "need all k answers");
    let xs: Vec<u64> = (0..k).map(|h| params.alpha(h)).collect();
    Poly::interpolate_at(&xs, &answers[..k], 0, params.field)
}

/// Runs the full protocol over a metered channel (plain PIR).
///
/// # Errors
///
/// [`ProtocolError`] on any transport fault or malformed message.
///
/// # Panics
///
/// Panics if the channel server count is not `k` (a driver bug).
pub fn run<R: RandomSource + ?Sized>(
    t: &mut dyn Channel,
    params: &PolyItParams,
    db: &[u64],
    index: usize,
    rng: &mut R,
) -> Result<u64, ProtocolError> {
    assert_eq!(t.num_servers(), params.num_servers());
    let _proto = spfe_obs::span("polyit");
    let queries = {
        let _s = spfe_obs::span("query-gen");
        client_queries(params, index, rng)
    };
    let received: Vec<PolyItQuery> = queries
        .iter()
        .enumerate()
        .map(|(h, q)| t.client_to_server(h, "polyit-query", q))
        .collect::<Result<_, _>>()?;
    let answers: Vec<u64> = {
        let _s = spfe_obs::span("server-scan");
        received
            .iter()
            .enumerate()
            .map(|(h, q)| {
                let a = server_answer(params, db, q)?;
                t.server_to_client(h, "polyit-answer", &a)
            })
            .collect::<Result<_, _>>()?
    };
    let _s = spfe_obs::span("reconstruct");
    Ok(client_reconstruct(params, &answers))
}

/// Runs the full protocol with \[25\]-style symmetric privacy (SPIR): the
/// servers derive a shared blinding polynomial from `shared_seed`.
///
/// # Errors
///
/// [`ProtocolError`] on any transport fault or malformed message.
///
/// # Panics
///
/// Panics if the channel server count is not `k` (a driver bug).
pub fn run_symmetric<R: RandomSource + ?Sized>(
    t: &mut dyn Channel,
    params: &PolyItParams,
    db: &[u64],
    index: usize,
    shared_seed: u64,
    rng: &mut R,
) -> Result<u64, ProtocolError> {
    assert_eq!(t.num_servers(), params.num_servers());
    let _proto = spfe_obs::span("polyit-sym");
    let queries = {
        let _s = spfe_obs::span("query-gen");
        client_queries(params, index, rng)
    };
    let received: Vec<PolyItQuery> = queries
        .iter()
        .enumerate()
        .map(|(h, q)| t.client_to_server(h, "polyit-query", q))
        .collect::<Result<_, _>>()?;
    let answers: Vec<u64> = {
        let _s = spfe_obs::span("server-scan");
        received
            .iter()
            .enumerate()
            .map(|(h, q)| {
                // Each server re-derives the same R from the common random input.
                let mut server_rng = spfe_crypto::ChaChaRng::from_u64_seed(shared_seed);
                let blind = blinding_poly(params, &mut server_rng);
                let a = server_answer_blinded(params, db, q, &blind, h)?;
                t.server_to_client(h, "polyit-answer", &a)
            })
            .collect::<Result<_, _>>()?
    };
    let _s = spfe_obs::span("reconstruct");
    Ok(client_reconstruct(params, &answers))
}

// ---------------------------------------------------------------------------
// Sans-io state machines (DESIGN.md §15) for the plain (unblinded) scheme
// — the configuration the conformance harness runs. They call the same
// client_queries/server_answer/client_reconstruct as the monolithic
// [`run`], so every transport yields identical bytes and op counts.
// ---------------------------------------------------------------------------

/// Server `h` of the k-server interpolation PIR as a sans-io machine.
#[derive(Debug)]
pub struct PolyItServerCore {
    index: usize,
    params: PolyItParams,
    db: Vec<u64>,
    answered: bool,
}

impl PolyItServerCore {
    /// A core for server `index` holding `db` under `params`.
    pub fn new(index: usize, params: PolyItParams, db: Vec<u64>) -> Self {
        PolyItServerCore {
            index,
            params,
            db,
            answered: false,
        }
    }
}

impl SessionCore for PolyItServerCore {
    fn on_message(
        &mut self,
        _half_round: u32,
        _server: usize,
        label: &str,
        payload: &[u8],
    ) -> Result<(SessionState, Vec<OutMsg>), ProtocolError> {
        if label != "polyit-query" || self.answered {
            return Err(ProtocolError::InvalidMessage {
                label: "polyit-query",
                reason: "unexpected message for a poly_it server",
            });
        }
        let query = PolyItQuery::from_bytes(payload)?;
        let answer = server_answer(&self.params, &self.db, &query)?;
        self.answered = true;
        Ok((
            SessionState::Done,
            vec![OutMsg::to_client(
                self.index,
                "polyit-answer",
                answer.to_bytes(),
            )],
        ))
    }
}

/// Client half of the k-server interpolation PIR: all `k` queries at
/// start, reconstruct once every answer arrived.
#[derive(Debug)]
pub struct PolyItClientCore {
    params: PolyItParams,
    queries: Option<Vec<PolyItQuery>>,
    answers: Vec<Option<u64>>,
    result: Option<u64>,
}

impl PolyItClientCore {
    /// A client core retrieving `index`; the random curves are drawn here.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in the parameters' `ℓ` bits.
    pub fn new<R: RandomSource + ?Sized>(params: PolyItParams, index: usize, rng: &mut R) -> Self {
        let queries = client_queries(&params, index, rng);
        let k = params.num_servers();
        PolyItClientCore {
            params,
            queries: Some(queries),
            answers: vec![None; k],
            result: None,
        }
    }
}

impl SessionCore for PolyItClientCore {
    fn start(&mut self) -> Result<(SessionState, Vec<OutMsg>), ProtocolError> {
        let queries = self.queries.take().ok_or(ProtocolError::InvalidMessage {
            label: "polyit-query",
            reason: "poly_it client core started twice",
        })?;
        Ok((
            SessionState::Running,
            queries
                .iter()
                .enumerate()
                .map(|(h, q)| OutMsg::to_server(h, "polyit-query", q.to_bytes()))
                .collect(),
        ))
    }

    fn on_message(
        &mut self,
        _half_round: u32,
        server: usize,
        label: &str,
        payload: &[u8],
    ) -> Result<(SessionState, Vec<OutMsg>), ProtocolError> {
        if label != "polyit-answer"
            || server >= self.answers.len()
            || self.answers[server].is_some()
        {
            return Err(ProtocolError::InvalidMessage {
                label: "polyit-answer",
                reason: "unexpected message for the poly_it client",
            });
        }
        self.answers[server] = Some(u64::from_bytes(payload)?);
        if self.answers.iter().all(Option::is_some) {
            let answers: Vec<u64> = self.answers.iter().map(|a| a.unwrap()).collect();
            self.result = Some(client_reconstruct(&self.params, &answers));
            return Ok((SessionState::Done, Vec::new()));
        }
        Ok((SessionState::Running, Vec::new()))
    }
}

impl ClientCore for PolyItClientCore {
    fn digest(&self) -> Option<u64> {
        self.result
    }

    fn static_label(&self, label: &str) -> Option<&'static str> {
        (label == "polyit-answer").then_some("polyit-answer")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfe_math::XorShiftRng;
    use spfe_transport::Transcript;

    fn field() -> Fp64 {
        Fp64::new(1_000_003).unwrap()
    }

    fn db(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| i * 37 + 5).collect()
    }

    #[test]
    fn retrieves_every_index_various_t() {
        let mut rng = XorShiftRng::new(1);
        for t_priv in [1usize, 2, 3] {
            let database = db(10);
            let params = PolyItParams::new(database.len(), t_priv, field());
            for i in 0..database.len() {
                let mut tr = Transcript::new(params.num_servers());
                assert_eq!(
                    run(&mut tr, &params, &database, i, &mut rng).unwrap(),
                    database[i],
                    "t={t_priv} i={i}"
                );
            }
        }
    }

    #[test]
    fn server_count_formula() {
        let params = PolyItParams::new(1024, 2, field());
        assert_eq!(params.ell, 10);
        assert_eq!(params.num_servers(), 21); // ℓ·t + 1
    }

    #[test]
    fn one_round_protocol() {
        let mut rng = XorShiftRng::new(2);
        let database = db(16);
        let params = PolyItParams::new(database.len(), 1, field());
        let mut tr = Transcript::new(params.num_servers());
        run(&mut tr, &params, &database, 3, &mut rng).unwrap();
        assert_eq!(tr.report().half_rounds, 2);
    }

    #[test]
    fn t_servers_learn_nothing_perfect() {
        // For t = 2: any 2 servers' views are points of a random degree-2
        // curve; check the exact distribution property on a tiny field by
        // verifying that for fixed servers the pair (q_a, q_b) takes values
        // independent of the index (statistically, same support counts).
        let f = Fp64::new(11).unwrap();
        let params = PolyItParams {
            t: 2,
            ell: 1,
            field: f,
        };
        let runs = 4000;
        let mut hist = [[0u32; 121]; 2];
        for (slot, &index) in [0usize, 1usize].iter().enumerate() {
            let mut rng = XorShiftRng::new(99 + slot as u64);
            for _ in 0..runs {
                let qs = client_queries(&params, index, &mut rng);
                let key = (qs[0].point[0] * 11 + qs[1].point[0]) as usize;
                hist[slot][key] += 1;
            }
        }
        // Chi-square-ish closeness: every cell within generous bounds of the
        // other index's cell.
        for (cell, (&h0, &h1)) in hist[0].iter().zip(&hist[1]).enumerate() {
            let (a, b) = (h0 as f64, h1 as f64);
            assert!(
                (a - b).abs() < 12.0 * ((a + b).sqrt() + 1.0),
                "cell {cell}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn symmetric_variant_returns_item_and_blinds_others() {
        let mut rng = XorShiftRng::new(3);
        let database = db(8);
        let params = PolyItParams::new(database.len(), 1, field());
        let mut tr = Transcript::new(params.num_servers());
        let got = run_symmetric(&mut tr, &params, &database, 5, 0x5EED, &mut rng).unwrap();
        assert_eq!(got, database[5]);
    }

    #[test]
    fn blinded_answers_differ_from_raw() {
        let mut rng = XorShiftRng::new(4);
        let database = db(8);
        let params = PolyItParams::new(database.len(), 1, field());
        let queries = client_queries(&params, 2, &mut rng);
        let blind = blinding_poly(&params, &mut rng);
        let mut any_diff = false;
        for (h, q) in queries.iter().enumerate() {
            let raw = server_answer(&params, &database, q).unwrap();
            let blinded = server_answer_blinded(&params, &database, q, &blind, h).unwrap();
            any_diff |= raw != blinded;
        }
        assert!(any_diff, "blinding had no effect");
        // But reconstruction still works because R(0) = 0.
        let answers: Vec<u64> = queries
            .iter()
            .enumerate()
            .map(|(h, q)| server_answer_blinded(&params, &database, q, &blind, h).unwrap())
            .collect();
        assert_eq!(client_reconstruct(&params, &answers), database[2]);
    }

    #[test]
    fn communication_scales_with_k_and_ell() {
        let mut rng = XorShiftRng::new(5);
        let f = field();
        let mut bytes = Vec::new();
        for n in [16usize, 256, 4096] {
            let database = db(n);
            let params = PolyItParams::new(n, 1, f);
            let mut tr = Transcript::new(params.num_servers());
            run(&mut tr, &params, &database, 1, &mut rng).unwrap();
            bytes.push(tr.report().total_bytes());
        }
        // k·ℓ grows ~ quadratically in ℓ; just check monotone growth and
        // that it stays tiny compared to the database (sublinearity).
        assert!(bytes[0] < bytes[1] && bytes[1] < bytes[2]);
        assert!(
            bytes[2] < 4096 * 8 / 2,
            "should be well below database size"
        );
    }
}
