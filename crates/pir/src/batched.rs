//! Batched `SPIR(n, m, *)`: retrieving `m` items cheaper than `m`
//! independent retrievals (\[36, 37, 8\] — the claim behind footnote 2 and
//! the second/third reductions of §3.3).
//!
//! Construction: view `[n]` as a `B`-wide grid (`B ≈ 2m`). Every index `i`
//! belongs to exactly two buckets with *closed-form* in-bucket positions:
//!
//! * its **column bucket** `i mod B`, at slot `i div B`;
//! * its **row bucket** `(i div B) mod B`, at slot
//!   `(i mod B) + B·(i div B²)`.
//!
//! The client cuckoo-assigns its `m` indices so that each of the `2B`
//! buckets serves at most one index, then runs exactly one single-item SPIR
//! per bucket (dummy queries for unassigned buckets — the server sees a
//! fixed access pattern, so nothing leaks). Total communication is
//! `2B·SPIR(n/B)` ≈ `O(√(m·n)·κ)`, beating `m·SPIR(n)` ≈ `O(m√n·κ)`, and
//! the server touches each item `O(1)` times per batch instead of `m`
//! times — the paper's `Ω(mn) → ≈ linear n` computation claim.
//!
//! Indices that cuckoo fails to place (possible only for adversarial index
//! sets sharing both buckets) fall back to individual full-database SPIRs,
//! reported in [`BatchedStats`].

use crate::spir::{self, SpirParams};
use spfe_crypto::hom::{HomomorphicPk, HomomorphicSk};
use spfe_crypto::SchnorrGroup;
use spfe_math::RandomSource;
use spfe_transport::{Channel, ChannelExt, ProtocolError};

/// Outcome statistics of a batched retrieval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchedStats {
    /// Number of buckets queried (always `2B`).
    pub bucket_queries: usize,
    /// Indices that could not be cuckoo-placed and used a full-db SPIR.
    pub fallbacks: usize,
}

/// Grid/bucket geometry.
#[derive(Debug, Clone, Copy)]
pub struct BatchLayout {
    /// Database size.
    pub n: usize,
    /// Buckets per family.
    pub b: usize,
}

impl BatchLayout {
    /// Geometry for `n` items and `m` queries. `B ≈ 1.3m` keeps the
    /// two-choice cuckoo load factor near 0.38 (placement succeeds w.h.p.
    /// for random index sets) while minimizing per-bucket query overhead.
    pub fn new(n: usize, m: usize) -> Self {
        assert!(n > 0);
        BatchLayout {
            n,
            b: ((m * 13).div_ceil(10)).max(1),
        }
    }

    /// Column bucket of `i`.
    pub fn col_bucket(&self, i: usize) -> usize {
        i % self.b
    }

    /// Slot of `i` inside its column bucket.
    pub fn col_slot(&self, i: usize) -> usize {
        i / self.b
    }

    /// Row bucket of `i`.
    pub fn row_bucket(&self, i: usize) -> usize {
        (i / self.b) % self.b
    }

    /// Slot of `i` inside its row bucket.
    pub fn row_slot(&self, i: usize) -> usize {
        (i % self.b) + self.b * (i / (self.b * self.b))
    }

    /// Fixed size of every column bucket.
    pub fn col_bucket_len(&self) -> usize {
        self.n.div_ceil(self.b)
    }

    /// Fixed size of every row bucket.
    pub fn row_bucket_len(&self) -> usize {
        self.b * self.n.div_ceil(self.b * self.b)
    }

    /// Materializes column bucket `c` (padded with zeros).
    pub fn col_bucket_db(&self, db: &[u64], c: usize) -> Vec<u64> {
        (0..self.col_bucket_len())
            .map(|slot| {
                let i = slot * self.b + c;
                if i < db.len() {
                    db[i]
                } else {
                    0
                }
            })
            .collect()
    }

    /// Materializes row bucket `s` (padded with zeros).
    pub fn row_bucket_db(&self, db: &[u64], s: usize) -> Vec<u64> {
        (0..self.row_bucket_len())
            .map(|slot| {
                let r = slot % self.b;
                let qq = slot / self.b;
                let i = (qq * self.b + s) * self.b + r;
                if i < db.len() {
                    db[i]
                } else {
                    0
                }
            })
            .collect()
    }
}

/// A bucket identifier: family (column/row) plus bucket number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Bucket {
    Col(usize),
    Row(usize),
}

/// Cuckoo assignment: maps each query position (by its index in `indices`)
/// to a bucket, at most one query per bucket. Returns `(assignment,
/// leftovers)` where `assignment[q] = Some(bucket)`.
fn cuckoo_assign<R: RandomSource + ?Sized>(
    layout: &BatchLayout,
    indices: &[usize],
    rng: &mut R,
) -> (Vec<Option<Bucket>>, Vec<usize>) {
    use std::collections::HashMap;
    let mut occupant: HashMap<Bucket, usize> = HashMap::new();
    let mut assignment: Vec<Option<Bucket>> = vec![None; indices.len()];
    let mut leftovers = Vec::new();
    let max_steps = 50 * indices.len().max(1);

    'outer: for q in 0..indices.len() {
        let mut cur = q;
        let mut steps = 0;
        loop {
            let i = indices[cur];
            let candidates = [
                Bucket::Col(layout.col_bucket(i)),
                Bucket::Row(layout.row_bucket(i)),
            ];
            // Prefer an empty candidate.
            if let Some(&free) = candidates.iter().find(|b| !occupant.contains_key(b)) {
                occupant.insert(free, cur);
                assignment[cur] = Some(free);
                continue 'outer;
            }
            // Both full: evict a random one.
            if steps >= max_steps {
                leftovers.push(cur);
                continue 'outer;
            }
            steps += 1;
            let victim_bucket = candidates[(rng.next_u64() & 1) as usize];
            let evicted = occupant.insert(victim_bucket, cur).expect("was full");
            assignment[cur] = Some(victim_bucket);
            assignment[evicted] = None;
            cur = evicted;
        }
    }
    (assignment, leftovers)
}

/// Materializes bucket `k`'s virtual database of multi-word items.
fn bucket_words(layout: &BatchLayout, db: &[Vec<u64>], width: usize, k: usize) -> Vec<Vec<u64>> {
    let b = layout.b;
    if k < b {
        (0..layout.col_bucket_len())
            .map(|slot| {
                let i = slot * b + k;
                db.get(i).cloned().unwrap_or_else(|| vec![0; width])
            })
            .collect()
    } else {
        let s = k - b;
        (0..layout.row_bucket_len())
            .map(|slot| {
                let r = slot % b;
                let qq = slot / b;
                let i = (qq * b + s) * b + r;
                db.get(i).cloned().unwrap_or_else(|| vec![0; width])
            })
            .collect()
    }
}

/// Client-side state of a batched retrieval, spanning the query and decode
/// phases. Exposing the phases separately lets protocols (a) combine the
/// batched query with other same-direction messages in one round and
/// (b) answer one query set against *several* databases — the §4
/// "average + variance package" pattern.
pub struct BatchedClientState {
    layout: BatchLayout,
    indices: Vec<usize>,
    /// Per-bucket SPIR states (columns then rows).
    states: Vec<spir::SpirClientState>,
    /// `bucket → query position` ownership.
    owners: Vec<Option<usize>>,
    /// Query positions that need full-database fallbacks.
    pub leftovers: Vec<usize>,
    col_params: SpirParams,
    row_params: SpirParams,
}

impl std::fmt::Debug for BatchedClientState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchedClientState")
            .field("buckets", &self.owners.len())
            .field("leftovers", &self.leftovers.len())
            .finish()
    }
}

/// The client's batched query message: one SPIR query per bucket.
pub type BatchedQuery = Vec<spir::SpirQuery>;

impl BatchedClientState {
    fn params_for(&self, k: usize) -> &SpirParams {
        if k < self.layout.b {
            &self.col_params
        } else {
            &self.row_params
        }
    }
}

/// Phase 1 (client): cuckoo-assign the indices and build one query per
/// bucket (dummy slot 0 for unowned buckets).
///
/// # Panics
///
/// Panics if `indices` is empty or out of range for `n`.
pub fn client_query<P: HomomorphicPk, R: RandomSource + ?Sized>(
    group: &SchnorrGroup,
    pk: &P,
    n: usize,
    indices: &[usize],
    rng: &mut R,
) -> (BatchedQuery, BatchedClientState) {
    assert!(!indices.is_empty(), "no indices requested");
    assert!(indices.iter().all(|&i| i < n), "index out of range");
    let layout = BatchLayout::new(n, indices.len());
    let (assignment, leftovers) = cuckoo_assign(&layout, indices, rng);
    use std::collections::HashMap;
    let mut by_bucket: HashMap<Bucket, usize> = HashMap::new();
    for (q, bkt) in assignment.iter().enumerate() {
        if let Some(bkt) = bkt {
            by_bucket.insert(*bkt, q);
        }
    }
    let col_params = SpirParams::new(group.clone(), layout.col_bucket_len());
    let row_params = SpirParams::new(group.clone(), layout.row_bucket_len());
    let total_buckets = 2 * layout.b;
    let mut owners = Vec::with_capacity(total_buckets);
    for k in 0..total_buckets {
        owners.push(if k < layout.b {
            by_bucket.get(&Bucket::Col(k)).copied()
        } else {
            by_bucket.get(&Bucket::Row(k - layout.b)).copied()
        });
    }
    let mut queries = Vec::with_capacity(total_buckets);
    let mut states = Vec::with_capacity(total_buckets);
    for (k, owner) in owners.iter().enumerate() {
        let slot = owner.map_or(0, |q| {
            if k < layout.b {
                layout.col_slot(indices[q])
            } else {
                layout.row_slot(indices[q])
            }
        });
        let params = if k < layout.b {
            &col_params
        } else {
            &row_params
        };
        let (q, st) = spir::client_query(params, pk, slot, rng);
        queries.push(q);
        states.push(st);
    }
    (
        queries,
        BatchedClientState {
            layout,
            indices: indices.to_vec(),
            states,
            owners,
            leftovers,
            col_params,
            row_params,
        },
    )
}

/// Phase 2 (server): answers every bucket of a query against a (multi-word)
/// database.
///
/// # Errors
///
/// [`ProtocolError::InvalidMessage`] on a malformed (client-controlled)
/// query.
///
/// # Panics
///
/// Panics on ragged/empty items (the server's own data).
pub fn server_answer_words<P: HomomorphicPk, R: RandomSource + ?Sized>(
    group: &SchnorrGroup,
    pk: &P,
    db: &[Vec<u64>],
    query: &BatchedQuery,
    rng: &mut R,
) -> Result<Vec<spir::SpirWordsAnswer>, ProtocolError> {
    let width = db.first().map_or(0, |it| it.len());
    assert!(width > 0, "empty items");
    assert!(db.iter().all(|it| it.len() == width), "ragged items");
    // Geometry is determined by the query arity: total buckets = 2B.
    let b = query.len() / 2;
    if b == 0 || query.len() != 2 * b {
        return Err(ProtocolError::InvalidMessage {
            label: "batched-queries",
            reason: "bucket query count must be a positive even number",
        });
    }
    let layout = BatchLayout { n: db.len(), b };
    let col_params = SpirParams::new(group.clone(), layout.col_bucket_len());
    let row_params = SpirParams::new(group.clone(), layout.row_bucket_len());
    // Stage 1 — the Ω(n) work: every bucket's scan is rng-free, so the 2B
    // scans fan out across the worker pool. A bucket scan is Θ(n/B)
    // modexps — `CostClass::Heavy`.
    let jobs: Vec<(usize, &spir::SpirQuery)> = query.iter().enumerate().collect();
    let scans: Vec<Vec<Vec<P::Ciphertext>>> =
        spfe_math::par::par_map_cost(spfe_math::par::CostClass::Heavy, &jobs, |&(k, q)| {
            let bucket_db = bucket_words(&layout, db, width, k);
            let params = if k < b { &col_params } else { &row_params };
            spir::scan_words(params, pk, &bucket_db, q)
        })
        .into_iter()
        .collect::<Result<_, _>>()?;
    // Stage 2 — pads and OT consume the rng, so run serially in bucket
    // order: the draw sequence (and the transcript) is thread-count
    // independent.
    Ok(query
        .iter()
        .zip(&scans)
        .enumerate()
        .map(|(k, (q, scanned))| {
            let params = if k < b { &col_params } else { &row_params };
            spir::pad_answer_words(params, pk, scanned, q, rng)
        })
        .collect())
}

/// Phase 3 (client): decodes the buckets it owns. Positions listed in
/// `state.leftovers` remain zero-filled and must be fetched by fallback.
///
/// # Errors
///
/// [`ProtocolError::InvalidMessage`] on malformed (server-controlled)
/// answers.
pub fn client_decode_words<P: HomomorphicPk, S: HomomorphicSk<P>>(
    pk: &P,
    sk: &S,
    state: &BatchedClientState,
    answers: &[spir::SpirWordsAnswer],
    width: usize,
) -> Result<Vec<Vec<u64>>, ProtocolError> {
    if answers.len() != state.states.len() {
        return Err(ProtocolError::InvalidMessage {
            label: "batched-answers",
            reason: "answer count mismatches bucket count",
        });
    }
    let mut values = vec![vec![0u64; width]; state.indices.len()];
    for (k, (st, a)) in state.states.iter().zip(answers).enumerate() {
        if let Some(q) = state.owners[k] {
            values[q] = spir::client_decode_words(state.params_for(k), pk, sk, st, a)?;
        }
    }
    Ok(values)
}

/// Runs the batched `SPIR(n, m, *)` over multi-word items: all bucket
/// queries travel in one client message and all answers in one server
/// message — a single round plus (rarely) one extra round of full-database
/// fallbacks.
///
/// # Errors
///
/// [`ProtocolError`] on any transport fault or malformed message.
///
/// # Panics
///
/// Panics if any index is out of range, items are ragged/empty, or
/// `indices` is empty (driver bugs).
pub fn run_words<P: HomomorphicPk, S: HomomorphicSk<P>, R: RandomSource + ?Sized>(
    t: &mut dyn Channel,
    group: &SchnorrGroup,
    pk: &P,
    sk: &S,
    db: &[Vec<u64>],
    indices: &[usize],
    rng: &mut R,
) -> Result<(Vec<Vec<u64>>, BatchedStats), ProtocolError> {
    let _proto = spfe_obs::span("batched");
    let width = db.first().map_or(0, |it| it.len());
    let (queries, state) = {
        let _s = spfe_obs::span("query-gen");
        client_query(group, pk, db.len(), indices, rng)
    };
    let queries = t.client_to_server(0, "batched-queries", &queries)?;
    let answers = {
        let _s = spfe_obs::span("server-scan");
        server_answer_words(group, pk, db, &queries, rng)?
    };
    let answers = t.server_to_client(0, "batched-answers", &answers)?;
    let mut values = {
        let _s = spfe_obs::span("reconstruct");
        client_decode_words(pk, sk, &state, &answers, width)?
    };

    // Fallbacks: full-database retrievals, batched into one extra exchange.
    if !state.leftovers.is_empty() {
        let _s = spfe_obs::span("fallbacks");
        let full_params = SpirParams::new(group.clone(), db.len());
        let mut fqueries = Vec::with_capacity(state.leftovers.len());
        let mut fstates = Vec::with_capacity(state.leftovers.len());
        for &q in &state.leftovers {
            let (fq, fst) = spir::client_query(&full_params, pk, indices[q], rng);
            fqueries.push(fq);
            fstates.push(fst);
        }
        let fqueries = t.client_to_server(0, "batched-fallback-queries", &fqueries)?;
        let fanswers: Vec<spir::SpirWordsAnswer> = fqueries
            .iter()
            .map(|fq| spir::server_answer_words(&full_params, pk, db, fq, rng))
            .collect::<Result<_, _>>()?;
        let fanswers = t.server_to_client(0, "batched-fallback-answers", &fanswers)?;
        for ((&q, st), a) in state.leftovers.iter().zip(&fstates).zip(&fanswers) {
            values[q] = spir::client_decode_words(&full_params, pk, sk, st, a)?;
        }
    }

    Ok((
        values,
        BatchedStats {
            bucket_queries: state.owners.len(),
            fallbacks: state.leftovers.len(),
        },
    ))
}

/// Runs the batched `SPIR(n, m, *)` over single-word items, returning the
/// retrieved items in the order of `indices` plus execution statistics.
///
/// # Errors
///
/// [`ProtocolError`] on any transport fault or malformed message.
///
/// # Panics
///
/// Panics if any index is out of range or `indices` is empty (driver
/// bugs).
pub fn run<P: HomomorphicPk, S: HomomorphicSk<P>, R: RandomSource + ?Sized>(
    t: &mut dyn Channel,
    group: &SchnorrGroup,
    pk: &P,
    sk: &S,
    db: &[u64],
    indices: &[usize],
    rng: &mut R,
) -> Result<(Vec<u64>, BatchedStats), ProtocolError> {
    let db_words: Vec<Vec<u64>> = db.iter().map(|&v| vec![v]).collect();
    let (vals, stats) = run_words(t, group, pk, sk, &db_words, indices, rng)?;
    Ok((vals.into_iter().map(|v| v[0]).collect(), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfe_crypto::{ChaChaRng, HomomorphicScheme, Paillier};
    use spfe_transport::Transcript;

    fn setup() -> (
        SchnorrGroup,
        spfe_crypto::PaillierPk,
        spfe_crypto::PaillierSk,
        ChaChaRng,
    ) {
        let mut rng = ChaChaRng::from_u64_seed(0xBA7C);
        let group = SchnorrGroup::generate(96, &mut rng);
        let (pk, sk) = Paillier::keygen(128, &mut rng);
        (group, pk, sk, rng)
    }

    fn db(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| i * 7 + 3).collect()
    }

    #[test]
    fn grid_positions_are_consistent() {
        let layout = BatchLayout::new(100, 4);
        let database = db(100);
        for i in 0..100 {
            let c = layout.col_bucket(i);
            let cs = layout.col_slot(i);
            assert_eq!(layout.col_bucket_db(&database, c)[cs], database[i]);
            let r = layout.row_bucket(i);
            let rs = layout.row_slot(i);
            assert_eq!(layout.row_bucket_db(&database, r)[rs], database[i], "i={i}");
        }
    }

    #[test]
    fn retrieves_random_index_sets() {
        let (group, pk, sk, mut rng) = setup();
        let database = db(60);
        let indices = vec![3usize, 17, 42, 59];
        let mut t = Transcript::new(1);
        let (values, stats) = run(&mut t, &group, &pk, &sk, &database, &indices, &mut rng).unwrap();
        for (v, &i) in values.iter().zip(&indices) {
            assert_eq!(*v, database[i]);
        }
        assert_eq!(stats.fallbacks, 0);
        let expected_b = BatchLayout::new(60, 4).b;
        assert_eq!(stats.bucket_queries, 2 * expected_b);
    }

    #[test]
    fn handles_colliding_indices() {
        let (group, pk, sk, mut rng) = setup();
        let database = db(64);
        // All share column bucket (i mod 8 == 1) but have distinct rows.
        let indices = vec![1usize, 9, 17, 25];
        let mut t = Transcript::new(1);
        let (values, _) = run(&mut t, &group, &pk, &sk, &database, &indices, &mut rng).unwrap();
        for (v, &i) in values.iter().zip(&indices) {
            assert_eq!(*v, database[i], "i={i}");
        }
    }

    #[test]
    fn worst_case_identical_buckets_falls_back() {
        let (group, pk, sk, mut rng) = setup();
        let database = db(600);
        let b = BatchLayout::new(600, 3).b;
        assert_eq!(b, 4, "test indices assume B = 4");
        // Indices sharing BOTH buckets: i ≡ i' (mod B) and
        // (i div B) ≡ (i' div B) (mod B), i.e. i, i + B², i + 2B².
        let indices = vec![5usize, 5 + b * b, 5 + 2 * b * b];
        let mut t = Transcript::new(1);
        let (values, stats) = run(&mut t, &group, &pk, &sk, &database, &indices, &mut rng).unwrap();
        for (v, &i) in values.iter().zip(&indices) {
            assert_eq!(*v, database[i], "i={i}");
        }
        assert!(stats.fallbacks >= 1, "third clone must fall back");
    }

    #[test]
    fn duplicate_indices_are_served() {
        let (group, pk, sk, mut rng) = setup();
        let database = db(40);
        let indices = vec![7usize, 7];
        let mut t = Transcript::new(1);
        let (values, _) = run(&mut t, &group, &pk, &sk, &database, &indices, &mut rng).unwrap();
        assert_eq!(values, vec![database[7], database[7]]);
    }

    #[test]
    fn single_index_batch() {
        let (group, pk, sk, mut rng) = setup();
        let database = db(20);
        let mut t = Transcript::new(1);
        let (values, _) = run(&mut t, &group, &pk, &sk, &database, &[11], &mut rng).unwrap();
        assert_eq!(values, vec![database[11]]);
    }

    #[test]
    fn batched_is_one_round_without_fallbacks() {
        let (group, pk, sk, mut rng) = setup();
        let database = db(100);
        let indices = vec![2usize, 50, 99];
        let mut t = Transcript::new(1);
        let (_, stats) = run(&mut t, &group, &pk, &sk, &database, &indices, &mut rng).unwrap();
        assert_eq!(stats.fallbacks, 0);
        assert_eq!(t.report().half_rounds, 2, "must be a single round");
    }

    #[test]
    fn batched_multiword_items() {
        let (group, pk, sk, mut rng) = setup();
        let database: Vec<Vec<u64>> = (0..40u64)
            .map(|i| vec![i, i * i + 7, u64::MAX - i])
            .collect();
        let indices = vec![0usize, 13, 39];
        let mut t = Transcript::new(1);
        let (vals, _) = run_words(&mut t, &group, &pk, &sk, &database, &indices, &mut rng).unwrap();
        for (v, &i) in vals.iter().zip(&indices) {
            assert_eq!(*v, database[i]);
        }
        assert_eq!(t.report().half_rounds, 2);
    }

    #[test]
    fn batched_beats_m_independent_spirs() {
        // E10: batched SPIR(n, m) vs m × SPIR(n, 1) communication.
        let (group, pk, sk, mut rng) = setup();
        let n = 512;
        let database = db(n);
        let m = 16;
        let indices: Vec<usize> = (0..m).map(|j| (j * 31 + 5) % n).collect();

        let mut t_batched = Transcript::new(1);
        let (vals, stats) = run(
            &mut t_batched,
            &group,
            &pk,
            &sk,
            &database,
            &indices,
            &mut rng,
        )
        .unwrap();
        for (v, &i) in vals.iter().zip(&indices) {
            assert_eq!(*v, database[i]);
        }
        assert_eq!(stats.fallbacks, 0);

        let mut t_indep = Transcript::new(1);
        let params = SpirParams::new(group.clone(), n);
        for &i in &indices {
            assert_eq!(
                spir::run(&mut t_indep, &params, &pk, &sk, &database, i, &mut rng).unwrap(),
                database[i]
            );
        }
        let b = t_batched.report().total_bytes();
        let s = t_indep.report().total_bytes();
        assert!(
            b < s,
            "batched ({b}) should beat independent ({s}) at n={n} m={m}"
        );
    }
}
