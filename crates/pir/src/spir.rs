//! Single-server SPIR: PIR plus database secrecy (\[25\], \[32\]+\[36\]).
//!
//! The homomorphic PIR of [`crate::hom_pir`] leaks the client's entire
//! matrix row (√n items). The symmetric transform here restricts the client
//! to exactly one item:
//!
//! * the server adds an independent random pad `ρ_j` to every column answer
//!   (homomorphically: `E(x[row][j] + ρ_j)`), and
//! * the client obtains *only* `ρ_col` for its one target column via a
//!   1-out-of-`cols` OT (the paper's symmetric-privacy mechanism).
//!
//! Both the PIR query and the OT query travel in the client's single
//! message; the padded columns and the OT answer travel in the server's
//! reply — a 1-round `SPIR(n, 1, *)` with `O(√n·κ)` communication.

use crate::hom_pir::{self, HomPirAnswer, HomPirQuery, Layout};
use spfe_crypto::hom::{HomomorphicPk, HomomorphicSk};
use spfe_crypto::SchnorrGroup;
use spfe_math::modular::mod_sub;
use spfe_math::{Nat, RandomSource};
use spfe_ot::{ot2, ot_n};
use spfe_transport::{Channel, ChannelExt, ProtocolError, Reader, Wire, WireError};

/// Domain-separation label for the OT's deterministic setup element.
const OT_SETUP_LABEL: &[u8] = b"spfe-spir-pad-ot";

/// Client query: PIR row selector + OT query for the pad of one column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpirQuery {
    /// Homomorphic PIR query (row selection).
    pub pir: HomPirQuery,
    /// OT query for the column pad.
    pub pad_ot: ot_n::OtnQuery,
}

impl Wire for SpirQuery {
    fn encode(&self, out: &mut Vec<u8>) {
        self.pir.encode(out);
        self.pad_ot.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SpirQuery {
            pir: HomPirQuery::decode(r)?,
            pad_ot: ot_n::OtnQuery::decode(r)?,
        })
    }
}

/// Server answer: padded columns + OT transfer of the pads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpirAnswer {
    /// `E(x[row][j] + ρ_j)` per column.
    pub padded: HomPirAnswer,
    /// OT answer revealing exactly one `ρ_j`.
    pub pad_ot: ot_n::OtnAnswer,
}

impl Wire for SpirAnswer {
    fn encode(&self, out: &mut Vec<u8>) {
        self.padded.encode(out);
        self.pad_ot.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SpirAnswer {
            padded: HomPirAnswer::decode(r)?,
            pad_ot: ot_n::OtnAnswer::decode(r)?,
        })
    }
}

/// Client-side state held across the round.
#[derive(Debug)]
pub struct SpirClientState {
    layout: Layout,
    index: usize,
    ot_state: ot_n::OtnReceiverState,
}

/// The SPIR instance configuration shared by both parties.
#[derive(Debug, Clone)]
pub struct SpirParams {
    /// Group for the pad OT.
    pub group: SchnorrGroup,
    /// Database size.
    pub n: usize,
}

impl SpirParams {
    /// Creates parameters for a database of `n` items.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(group: SchnorrGroup, n: usize) -> Self {
        assert!(n > 0);
        SpirParams { group, n }
    }

    /// The matrix layout.
    pub fn layout(&self) -> Layout {
        Layout::square(self.n)
    }

    fn ot_setup(&self) -> ot2::OtSetup {
        ot2::deterministic_setup(&self.group, OT_SETUP_LABEL)
    }
}

/// Number of bytes used to serialize one pad.
fn pad_bytes<P: HomomorphicPk>(pk: &P) -> usize {
    pk.plaintext_modulus().bit_len().div_ceil(8)
}

/// Client: builds the combined query for `index`.
///
/// # Panics
///
/// Panics if `index >= n`.
pub fn client_query<P: HomomorphicPk, R: RandomSource + ?Sized>(
    params: &SpirParams,
    pk: &P,
    index: usize,
    rng: &mut R,
) -> (SpirQuery, SpirClientState) {
    assert!(index < params.n, "index out of range");
    let layout = params.layout();
    let pir = hom_pir::client_query(pk, &layout, index, rng);
    let (_, col) = layout.position(index);
    let (pad_ot, ot_state) =
        ot_n::receiver_choose(&params.group, &params.ot_setup(), layout.cols, col, rng);
    (
        SpirQuery { pir, pad_ot },
        SpirClientState {
            layout,
            index,
            ot_state,
        },
    )
}

/// Server: pads every column homomorphically and transfers the pads by OT.
///
/// # Errors
///
/// [`ProtocolError::InvalidMessage`] on malformed (client-controlled)
/// queries.
pub fn server_answer<P: HomomorphicPk, R: RandomSource + ?Sized>(
    params: &SpirParams,
    pk: &P,
    db: &[u64],
    query: &SpirQuery,
    rng: &mut R,
) -> Result<SpirAnswer, ProtocolError> {
    let layout = params.layout();
    let columns = hom_pir::server_answer(pk, &layout, db, &query.pir)?;
    let u = pk.plaintext_modulus().clone();
    let width = pad_bytes(pk);
    // Random pads, applied under encryption.
    let pads: Vec<Nat> = (0..layout.cols)
        .map(|_| Nat::random_below(rng, &u))
        .collect();
    let enc_pads = pk.encrypt_batch(&pads, rng);
    // Pad application is one homomorphic add per column — no modexp, so
    // `CostClass::Light`: it only fans out for very wide answers and runs
    // inline at typical √n column counts.
    let pad_jobs: Vec<(&P::Ciphertext, &P::Ciphertext)> = columns.iter().zip(&enc_pads).collect();
    let padded: Vec<P::Ciphertext> = spfe_math::par::par_map_cost(
        spfe_math::par::CostClass::Light,
        &pad_jobs,
        |&(c, enc_pad)| pk.add(c, enc_pad),
    );
    let pad_items: Vec<Vec<u8>> = pads
        .iter()
        .map(|rho| rho.to_le_bytes_padded(width))
        .collect();
    let pad_ot = ot_n::sender_answer(
        &params.group,
        &params.ot_setup(),
        &query.pad_ot,
        &pad_items,
        rng,
    );
    Ok(SpirAnswer {
        padded: hom_pir::answer_to_wire(pk, &padded),
        pad_ot,
    })
}

/// Client: unpads its single item.
///
/// # Errors
///
/// [`ProtocolError::InvalidMessage`] on malformed (server-controlled)
/// answers.
pub fn client_decode<P: HomomorphicPk, S: HomomorphicSk<P>>(
    params: &SpirParams,
    pk: &P,
    sk: &S,
    state: &SpirClientState,
    answer: &SpirAnswer,
) -> Result<u64, ProtocolError> {
    let (_, col) = state.layout.position(state.index);
    let ct_bytes = answer
        .padded
        .columns
        .get(col)
        .ok_or(ProtocolError::InvalidMessage {
            label: "spir-answer",
            reason: "answer has too few columns",
        })?;
    let ct = pk
        .ciphertext_from_bytes(ct_bytes)
        .ok_or(ProtocolError::InvalidMessage {
            label: "spir-answer",
            reason: "malformed answer ciphertext",
        })?;
    let masked = sk.decrypt(&ct);
    let pad = Nat::from_le_bytes(&ot_n::receiver_output(
        &params.group,
        &state.ot_state,
        &answer.pad_ot,
    ));
    mod_sub(
        &masked,
        &pad.rem(pk.plaintext_modulus()),
        pk.plaintext_modulus(),
    )
    .to_u64()
    .ok_or(ProtocolError::InvalidMessage {
        label: "spir-answer",
        reason: "unpadded item exceeds u64",
    })
}

/// Server answer for multi-word items (width `W`): per column, `W` padded
/// ciphertexts; the OT transfers all `W` pads of one column together. The
/// client's query is *identical* to the single-word case — chunks share
/// both the PIR row selector and the pad OT, so upstream cost is
/// width-independent and downstream scales with `W` (this is what makes
/// `SPIR(n, 1, κ)` cost `κ/ℓ ×` more than `SPIR(n, 1, ℓ)` downstream only,
/// as the paper's comparisons assume).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpirWordsAnswer {
    /// `padded[c]` = the chunk-`c` padded column answers.
    pub padded: Vec<HomPirAnswer>,
    /// OT answer revealing the `W` pads of exactly one column.
    pub pad_ot: ot_n::OtnAnswer,
}

impl Wire for SpirWordsAnswer {
    fn encode(&self, out: &mut Vec<u8>) {
        self.padded.encode(out);
        self.pad_ot.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SpirWordsAnswer {
            padded: Vec::<HomPirAnswer>::decode(r)?,
            pad_ot: ot_n::OtnAnswer::decode(r)?,
        })
    }
}

/// The rng-free scan stage of [`server_answer_words`]: for each of the `W`
/// chunks, the raw (unpadded) per-column ciphertexts.
///
/// Splitting the scan from the randomized pad/OT stage lets callers (e.g.
/// [`crate::batched`]) run many scans on the worker pool and then apply
/// [`pad_answer_words`] serially, keeping the rng draw order — and hence
/// the wire transcript — independent of the thread count.
///
/// # Errors
///
/// [`ProtocolError::InvalidMessage`] on malformed (client-controlled)
/// queries.
///
/// # Panics
///
/// Panics on ragged items (the server's own data).
pub fn scan_words<P: HomomorphicPk>(
    params: &SpirParams,
    pk: &P,
    db_words: &[Vec<u64>],
    query: &SpirQuery,
) -> Result<Vec<Vec<P::Ciphertext>>, ProtocolError> {
    assert_eq!(db_words.len(), params.n, "db size mismatch");
    let width = db_words.first().map_or(0, |it| it.len());
    assert!(width > 0, "empty items");
    assert!(db_words.iter().all(|it| it.len() == width), "ragged items");
    let layout = params.layout();
    (0..width)
        .map(|c| {
            let chunk_db: Vec<u64> = db_words.iter().map(|it| it[c]).collect();
            hom_pir::server_answer(pk, &layout, &chunk_db, &query.pir)
        })
        .collect()
}

/// The randomized stage of [`server_answer_words`]: pads every scanned
/// column under encryption and transfers the pads by OT.
///
/// # Panics
///
/// Panics on malformed queries or a scan of the wrong shape.
pub fn pad_answer_words<P: HomomorphicPk, R: RandomSource + ?Sized>(
    params: &SpirParams,
    pk: &P,
    scanned: &[Vec<P::Ciphertext>],
    query: &SpirQuery,
    rng: &mut R,
) -> SpirWordsAnswer {
    let width = scanned.len();
    assert!(width > 0, "empty scan");
    let layout = params.layout();
    let u = pk.plaintext_modulus().clone();
    let pad_w = pad_bytes(pk);
    // pads[c][j] = pad for chunk c, column j.
    let pads: Vec<Vec<Nat>> = (0..width)
        .map(|_| {
            (0..layout.cols)
                .map(|_| Nat::random_below(rng, &u))
                .collect()
        })
        .collect();
    let padded: Vec<HomPirAnswer> = scanned
        .iter()
        .zip(&pads)
        .map(|(cols, chunk_pads)| {
            assert_eq!(cols.len(), layout.cols, "scan arity mismatch");
            let enc_pads = pk.encrypt_batch(chunk_pads, rng);
            let blinded: Vec<P::Ciphertext> = cols
                .iter()
                .zip(&enc_pads)
                .map(|(ct, enc_pad)| pk.add(ct, enc_pad))
                .collect();
            hom_pir::answer_to_wire(pk, &blinded)
        })
        .collect();
    // OT item for column j: all W pads concatenated.
    let pad_items: Vec<Vec<u8>> = (0..layout.cols)
        .map(|j| {
            let mut out = Vec::with_capacity(width * pad_w);
            for chunk_pads in &pads {
                out.extend(chunk_pads[j].to_le_bytes_padded(pad_w));
            }
            out
        })
        .collect();
    let pad_ot = ot_n::sender_answer(
        &params.group,
        &params.ot_setup(),
        &query.pad_ot,
        &pad_items,
        rng,
    );
    SpirWordsAnswer { padded, pad_ot }
}

/// Server: answers a (standard) SPIR query against a multi-word database
/// `db_words` (each item a fixed-width `Vec<u64>`) — the scan stage
/// followed by the pad/OT stage.
///
/// # Errors
///
/// [`ProtocolError::InvalidMessage`] on malformed (client-controlled)
/// queries.
///
/// # Panics
///
/// Panics on ragged items (the server's own data).
pub fn server_answer_words<P: HomomorphicPk, R: RandomSource + ?Sized>(
    params: &SpirParams,
    pk: &P,
    db_words: &[Vec<u64>],
    query: &SpirQuery,
    rng: &mut R,
) -> Result<SpirWordsAnswer, ProtocolError> {
    let scanned = scan_words(params, pk, db_words, query)?;
    Ok(pad_answer_words(params, pk, &scanned, query, rng))
}

/// Client: unpads its multi-word item.
///
/// # Errors
///
/// [`ProtocolError::InvalidMessage`] on malformed (server-controlled)
/// answers.
pub fn client_decode_words<P: HomomorphicPk, S: HomomorphicSk<P>>(
    params: &SpirParams,
    pk: &P,
    sk: &S,
    state: &SpirClientState,
    answer: &SpirWordsAnswer,
) -> Result<Vec<u64>, ProtocolError> {
    let (_, col) = state.layout.position(state.index);
    let pad_w = pad_bytes(pk);
    let pads_bytes = ot_n::receiver_output(&params.group, &state.ot_state, &answer.pad_ot);
    let u = pk.plaintext_modulus();
    if pads_bytes.len() < answer.padded.len() * pad_w {
        return Err(ProtocolError::InvalidMessage {
            label: "spirw-answer",
            reason: "OT pads shorter than the answer",
        });
    }
    answer
        .padded
        .iter()
        .enumerate()
        .map(|(c, chunk)| {
            let ct_bytes = chunk
                .columns
                .get(col)
                .ok_or(ProtocolError::InvalidMessage {
                    label: "spirw-answer",
                    reason: "answer has too few columns",
                })?;
            let ct = pk
                .ciphertext_from_bytes(ct_bytes)
                .ok_or(ProtocolError::InvalidMessage {
                    label: "spirw-answer",
                    reason: "malformed answer ciphertext",
                })?;
            let masked = sk.decrypt(&ct);
            let pad = Nat::from_le_bytes(&pads_bytes[c * pad_w..(c + 1) * pad_w]);
            mod_sub(&masked, &pad.rem(u), u)
                .to_u64()
                .ok_or(ProtocolError::InvalidMessage {
                    label: "spirw-answer",
                    reason: "unpadded item exceeds u64",
                })
        })
        .collect()
}

/// Runs a full 1-round multi-word SPIR over a metered channel.
///
/// # Errors
///
/// [`ProtocolError`] on any transport fault or malformed message.
///
/// # Panics
///
/// Panics on index out of range or ragged items (driver bugs).
pub fn run_words<P: HomomorphicPk, S: HomomorphicSk<P>, R: RandomSource + ?Sized>(
    t: &mut dyn Channel,
    params: &SpirParams,
    pk: &P,
    sk: &S,
    db_words: &[Vec<u64>],
    index: usize,
    rng: &mut R,
) -> Result<Vec<u64>, ProtocolError> {
    let _proto = spfe_obs::span("spirw");
    let (q, state) = {
        let _s = spfe_obs::span("query-gen");
        client_query(params, pk, index, rng)
    };
    let q = t.client_to_server(0, "spirw-query", &q)?;
    let a = {
        let _s = spfe_obs::span("server-scan");
        server_answer_words(params, pk, db_words, &q, rng)?
    };
    let a = t.server_to_client(0, "spirw-answer", &a)?;
    let _s = spfe_obs::span("reconstruct");
    client_decode_words(params, pk, sk, &state, &a)
}

/// Runs the full 1-round SPIR over a metered channel.
///
/// # Errors
///
/// [`ProtocolError`] on any transport fault or malformed message.
///
/// # Panics
///
/// Panics on index out of range (a driver bug).
pub fn run<P: HomomorphicPk, S: HomomorphicSk<P>, R: RandomSource + ?Sized>(
    t: &mut dyn Channel,
    params: &SpirParams,
    pk: &P,
    sk: &S,
    db: &[u64],
    index: usize,
    rng: &mut R,
) -> Result<u64, ProtocolError> {
    assert_eq!(db.len(), params.n, "db size mismatch");
    let _proto = spfe_obs::span("spir");
    let (q, state) = {
        let _s = spfe_obs::span("query-gen");
        client_query(params, pk, index, rng)
    };
    let q = t.client_to_server(0, "spir-query", &q)?;
    let a = {
        let _s = spfe_obs::span("server-scan");
        server_answer(params, pk, db, &q, rng)?
    };
    let a = t.server_to_client(0, "spir-answer", &a)?;
    let _s = spfe_obs::span("reconstruct");
    client_decode(params, pk, sk, &state, &a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfe_crypto::{ChaChaRng, HomomorphicScheme, Paillier};
    use spfe_transport::Transcript;

    fn setup() -> (
        SpirParams,
        spfe_crypto::PaillierPk,
        spfe_crypto::PaillierSk,
        ChaChaRng,
    ) {
        let mut rng = ChaChaRng::from_u64_seed(0x5217);
        let group = SchnorrGroup::generate(96, &mut rng);
        let (pk, sk) = Paillier::keygen(128, &mut rng);
        (SpirParams::new(group, 12), pk, sk, rng)
    }

    fn db(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| i * 101 + 17).collect()
    }

    #[test]
    fn retrieves_every_index() {
        let (params, pk, sk, mut rng) = setup();
        let database = db(params.n);
        for i in 0..params.n {
            let mut t = Transcript::new(1);
            assert_eq!(
                run(&mut t, &params, &pk, &sk, &database, i, &mut rng).unwrap(),
                database[i],
                "i={i}"
            );
        }
    }

    #[test]
    fn protocol_is_one_round() {
        let (params, pk, sk, mut rng) = setup();
        let database = db(params.n);
        let mut t = Transcript::new(1);
        run(&mut t, &params, &pk, &sk, &database, 3, &mut rng).unwrap();
        assert_eq!(t.report().half_rounds, 2);
    }

    #[test]
    fn other_columns_remain_padded() {
        // Database secrecy: the client's decryptions of non-target columns
        // are uniformly masked — without the pad they do not reveal items.
        let (params, pk, sk, mut rng) = setup();
        let database = db(params.n);
        let (q, state) = client_query(&params, &pk, 0, &mut rng);
        let a = server_answer(&params, &pk, &database, &q, &mut rng).unwrap();
        let layout = params.layout();
        let mut masked_matches = 0;
        for j in 1..layout.cols {
            let ct = pk.ciphertext_from_bytes(&a.padded.columns[j]).unwrap();
            let val = sk.decrypt(&ct);
            // Row 0 item at column j.
            let idx = j;
            if idx < database.len() && val == Nat::from(database[idx]) {
                masked_matches += 1;
            }
        }
        assert_eq!(masked_matches, 0, "pads failed to hide other columns");
        // While the target column still decodes correctly.
        assert_eq!(
            client_decode(&params, &pk, &sk, &state, &a).unwrap(),
            database[0]
        );
    }

    #[test]
    fn pad_wraps_modulus_correctly() {
        // Run many indices so some pad + item wraps mod n (probabilistic but
        // overwhelmingly likely across 12 runs with ~128-bit pads).
        let (params, pk, sk, mut rng) = setup();
        let database = db(params.n);
        for i in 0..params.n {
            let mut t = Transcript::new(1);
            let got = run(&mut t, &params, &pk, &sk, &database, i, &mut rng).unwrap();
            assert_eq!(got, database[i]);
        }
    }

    #[test]
    fn communication_scales_like_sqrt_n() {
        let (_, pk, sk, mut rng) = setup();
        let group = SchnorrGroup::generate(96, &mut rng);
        let mut totals = Vec::new();
        for n in [16usize, 64, 256] {
            let params = SpirParams::new(group.clone(), n);
            let database = db(n);
            let mut t = Transcript::new(1);
            run(&mut t, &params, &pk, &sk, &database, 1, &mut rng).unwrap();
            totals.push(t.report().total_bytes());
        }
        let r = totals[2] as f64 / totals[0] as f64;
        assert!(r < 16.0 * 0.75, "16× database should be ≈4× bytes, got {r}");
    }

    #[test]
    fn wire_roundtrip() {
        let (params, pk, _, mut rng) = setup();
        let (q, _) = client_query(&params, &pk, 5, &mut rng);
        assert_eq!(SpirQuery::from_bytes(&q.to_bytes()).unwrap(), q);
    }
}
