//! The classic 2-server XOR PIR of Chor–Goldreich–Kushilevitz–Sudan \[17\].
//!
//! The client sends a uniformly random subset `S ⊆ [n]` to server 1 and
//! `S Δ {i}` to server 2; each server replies with the XOR of the items in
//! the received subset; XOR-ing the two replies yields item `i`. Each
//! server's view is a uniformly random subset — information-theoretic
//! client privacy against one server. Communication: `n` bits up and one
//! item down, per server.

use spfe_math::RandomSource;
use spfe_transport::{
    Channel, ChannelExt, ClientCore, OutMsg, ProtocolError, Reader, SessionCore, SessionState,
    Wire, WireError,
};

/// A query: a subset of `[n]` as a packed bitmask.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xor2Query {
    /// Packed selection bits (LSB-first within each byte).
    pub mask: Vec<u8>,
    /// Number of database items the mask covers.
    pub n: usize,
}

impl Wire for Xor2Query {
    fn encode(&self, out: &mut Vec<u8>) {
        self.n.encode(out);
        self.mask.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = usize::decode(r)?;
        let mask = Vec::<u8>::decode(r)?;
        if mask.len() != n.div_ceil(8) {
            return Err(WireError {
                context: "xor2 mask length mismatch",
            });
        }
        Ok(Xor2Query { mask, n })
    }
}

impl Xor2Query {
    fn bit(&self, i: usize) -> bool {
        (self.mask[i / 8] >> (i % 8)) & 1 == 1
    }

    fn flip(&mut self, i: usize) {
        self.mask[i / 8] ^= 1 << (i % 8);
    }
}

/// Client: builds the query pair for item `index`.
///
/// # Panics
///
/// Panics if `index >= n` or `n == 0`.
pub fn client_query<R: RandomSource + ?Sized>(
    n: usize,
    index: usize,
    rng: &mut R,
) -> (Xor2Query, Xor2Query) {
    assert!(n > 0 && index < n, "index out of range");
    let mut mask = vec![0u8; n.div_ceil(8)];
    rng.fill_bytes(&mut mask);
    // Clear padding bits beyond n so both servers see canonical masks.
    if !n.is_multiple_of(8) {
        let last = mask.len() - 1;
        mask[last] &= (1u8 << (n % 8)) - 1;
    }
    let q1 = Xor2Query { mask, n };
    let mut q2 = q1.clone();
    q2.flip(index);
    (q1, q2)
}

/// Server: XOR of the selected items.
///
/// # Errors
///
/// [`ProtocolError::InvalidMessage`] if the (client-controlled) query
/// length does not match the database.
///
/// # Panics
///
/// Panics on a ragged database (the server's own data).
pub fn server_answer(db: &[Vec<u8>], query: &Xor2Query) -> Result<Vec<u8>, ProtocolError> {
    if db.len() != query.n {
        return Err(ProtocolError::InvalidMessage {
            label: "pir2-query",
            reason: "query does not match database size",
        });
    }
    spfe_obs::count(spfe_obs::Op::PirWordsScanned, db.len() as u64);
    let len = db.first().map_or(0, |v| v.len());
    let mut acc = vec![0u8; len];
    for (i, item) in db.iter().enumerate() {
        assert_eq!(item.len(), len, "ragged database items");
        if query.bit(i) {
            for (a, &b) in acc.iter_mut().zip(item) {
                *a ^= b;
            }
        }
    }
    Ok(acc)
}

/// Client: combines the two answers.
///
/// # Errors
///
/// [`ProtocolError::InvalidMessage`] if the (server-controlled) answers
/// have different lengths.
pub fn client_combine(a1: &[u8], a2: &[u8]) -> Result<Vec<u8>, ProtocolError> {
    if a1.len() != a2.len() {
        return Err(ProtocolError::InvalidMessage {
            label: "pir2-answer",
            reason: "answer lengths differ",
        });
    }
    Ok(a1.iter().zip(a2).map(|(&x, &y)| x ^ y).collect())
}

/// Runs the full 2-server protocol over a metered channel, returning the
/// retrieved item.
///
/// # Errors
///
/// [`ProtocolError`] on any transport fault or malformed message.
///
/// # Panics
///
/// Panics if the channel does not have exactly 2 servers, or on index
/// out of range (both driver bugs, not attacks).
pub fn run<R: RandomSource + ?Sized>(
    t: &mut dyn Channel,
    db: &[Vec<u8>],
    index: usize,
    rng: &mut R,
) -> Result<Vec<u8>, ProtocolError> {
    assert_eq!(t.num_servers(), 2, "xor2 PIR needs exactly 2 servers");
    let _proto = spfe_obs::span("pir2");
    let (q1, q2) = {
        let _s = spfe_obs::span("query-gen");
        client_query(db.len(), index, rng)
    };
    let q1 = t.client_to_server(0, "pir2-query", &q1)?;
    let q2 = t.client_to_server(1, "pir2-query", &q2)?;
    let (a1, a2) = {
        let _s = spfe_obs::span("server-scan");
        (server_answer(db, &q1)?, server_answer(db, &q2)?)
    };
    let a1 = t.server_to_client(0, "pir2-answer", &a1)?;
    let a2 = t.server_to_client(1, "pir2-answer", &a2)?;
    let _s = spfe_obs::span("reconstruct");
    client_combine(&a1, &a2)
}

// ---------------------------------------------------------------------------
// Sans-io state machines (DESIGN.md §15). The cores call exactly the
// client_query/server_answer/client_combine functions the monolithic
// [`run`] calls, so a pumped or networked execution produces the same
// wire bytes and deterministic op counts as an in-memory run.
// ---------------------------------------------------------------------------

/// Server half of 2-server XOR PIR as a sans-io state machine: one query
/// in, one answer out.
#[derive(Debug)]
pub struct Xor2ServerCore {
    index: usize,
    db: Vec<Vec<u8>>,
    answered: bool,
}

impl Xor2ServerCore {
    /// A core for server `index` holding `db`.
    pub fn new(index: usize, db: Vec<Vec<u8>>) -> Self {
        Xor2ServerCore {
            index,
            db,
            answered: false,
        }
    }
}

impl SessionCore for Xor2ServerCore {
    fn on_message(
        &mut self,
        _half_round: u32,
        _server: usize,
        label: &str,
        payload: &[u8],
    ) -> Result<(SessionState, Vec<OutMsg>), ProtocolError> {
        if label != "pir2-query" || self.answered {
            return Err(ProtocolError::InvalidMessage {
                label: "pir2-query",
                reason: "unexpected message for a xor2 server",
            });
        }
        let query = Xor2Query::from_bytes(payload)?;
        let answer = server_answer(&self.db, &query)?;
        self.answered = true;
        Ok((
            SessionState::Done,
            vec![OutMsg::to_client(
                self.index,
                "pir2-answer",
                answer.to_bytes(),
            )],
        ))
    }
}

/// Client half of 2-server XOR PIR: emits both queries at start, combines
/// the two answers. All randomness is consumed at construction.
#[derive(Debug)]
pub struct Xor2ClientCore {
    queries: Option<(Xor2Query, Xor2Query)>,
    answers: [Option<Vec<u8>>; 2],
    item: Option<Vec<u8>>,
}

impl Xor2ClientCore {
    /// A client core retrieving `index` from an `n`-item database.
    ///
    /// # Panics
    ///
    /// Panics if `index >= n` or `n == 0`.
    pub fn new<R: RandomSource + ?Sized>(n: usize, index: usize, rng: &mut R) -> Self {
        Xor2ClientCore {
            queries: Some(client_query(n, index, rng)),
            answers: [None, None],
            item: None,
        }
    }

    /// The retrieved item, once the session is done.
    pub fn item(&self) -> Option<&[u8]> {
        self.item.as_deref()
    }
}

impl SessionCore for Xor2ClientCore {
    fn start(&mut self) -> Result<(SessionState, Vec<OutMsg>), ProtocolError> {
        let (q1, q2) = self.queries.take().ok_or(ProtocolError::InvalidMessage {
            label: "pir2-query",
            reason: "xor2 client core started twice",
        })?;
        Ok((
            SessionState::Running,
            vec![
                OutMsg::to_server(0, "pir2-query", q1.to_bytes()),
                OutMsg::to_server(1, "pir2-query", q2.to_bytes()),
            ],
        ))
    }

    fn on_message(
        &mut self,
        _half_round: u32,
        server: usize,
        label: &str,
        payload: &[u8],
    ) -> Result<(SessionState, Vec<OutMsg>), ProtocolError> {
        if label != "pir2-answer" || server > 1 || self.answers[server].is_some() {
            return Err(ProtocolError::InvalidMessage {
                label: "pir2-answer",
                reason: "unexpected message for the xor2 client",
            });
        }
        self.answers[server] = Some(Vec::<u8>::from_bytes(payload)?);
        if let [Some(a1), Some(a2)] = &self.answers {
            self.item = Some(client_combine(a1, a2)?);
            return Ok((SessionState::Done, Vec::new()));
        }
        Ok((SessionState::Running, Vec::new()))
    }
}

impl ClientCore for Xor2ClientCore {
    /// Digest convention of the conformance harness: the byte-sum of the
    /// retrieved item.
    fn digest(&self) -> Option<u64> {
        self.item
            .as_ref()
            .map(|item| item.iter().map(|&b| u64::from(b)).sum())
    }

    fn static_label(&self, label: &str) -> Option<&'static str> {
        (label == "pir2-answer").then_some("pir2-answer")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfe_math::XorShiftRng;
    use spfe_transport::Transcript;

    fn db(n: usize, len: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| (0..len).map(|j| (i * 31 + j * 7 + 1) as u8).collect())
            .collect()
    }

    #[test]
    fn retrieves_every_index() {
        let mut rng = XorShiftRng::new(1);
        let database = db(13, 5);
        for i in 0..13 {
            let mut t = Transcript::new(2);
            assert_eq!(
                run(&mut t, &database, i, &mut rng).unwrap(),
                database[i],
                "i={i}"
            );
        }
    }

    #[test]
    fn communication_is_n_bits_up_item_down() {
        let mut rng = XorShiftRng::new(2);
        let n = 64;
        let database = db(n, 16);
        let mut t = Transcript::new(2);
        run(&mut t, &database, 7, &mut rng).unwrap();
        let rep = t.report();
        assert_eq!(rep.half_rounds, 2); // one round
                                        // Up: 2 masks of n/8 bytes + framing; down: 2 items of 16 bytes + framing.
        assert!(rep.client_to_server >= 2 * (n as u64 / 8));
        assert!(rep.client_to_server < 2 * (n as u64 / 8) + 64);
        assert!(rep.server_to_client >= 32);
    }

    #[test]
    fn queries_differ_exactly_at_index() {
        let mut rng = XorShiftRng::new(3);
        let (q1, q2) = client_query(20, 11, &mut rng);
        for i in 0..20 {
            if i == 11 {
                assert_ne!(q1.bit(i), q2.bit(i));
            } else {
                assert_eq!(q1.bit(i), q2.bit(i));
            }
        }
    }

    #[test]
    fn single_query_is_uniform_ish() {
        // Each server individually sees a random mask: over many runs, each
        // bit is set about half the time regardless of the target index.
        let mut rng = XorShiftRng::new(4);
        let n = 16;
        let runs = 400;
        let mut counts = vec![0u32; n];
        for _ in 0..runs {
            let (q1, _) = client_query(n, 3, &mut rng);
            for (i, c) in counts.iter_mut().enumerate() {
                *c += q1.bit(i) as u32;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (runs / 4..3 * runs / 4).contains(&(c as usize)),
                "bit {i} set {c}/{runs} times"
            );
        }
    }

    #[test]
    fn padding_bits_are_clear() {
        let mut rng = XorShiftRng::new(5);
        let (q1, q2) = client_query(13, 5, &mut rng);
        for q in [&q1, &q2] {
            assert_eq!(q.mask[1] >> 5, 0, "padding bits must be zero");
        }
    }

    #[test]
    fn one_byte_items_and_single_item_db() {
        let mut rng = XorShiftRng::new(6);
        let database = vec![vec![42u8]];
        let mut t = Transcript::new(2);
        assert_eq!(run(&mut t, &database, 0, &mut rng).unwrap(), vec![42u8]);
    }
}
