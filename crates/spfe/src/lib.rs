//! # spfe
//!
//! Selective private function evaluation (SPFE) — a from-scratch Rust
//! reproduction of *"Selective Private Function Evaluation with
//! Applications to Private Statistics"* (Canetti, Ishai, Kumar, Reiter,
//! Rubinfeld, Wright; PODC 2001).
//!
//! A client holding indices `i_1 … i_m` evaluates `f(x_{i_1}, …, x_{i_m})`
//! against a server-held database `x` with *sublinear communication*,
//! revealing neither the indices (client privacy) nor more than one
//! function value (database secrecy).
//!
//! This facade re-exports the whole workspace:
//!
//! * [`core`] — the SPFE protocols (§3.1, §3.2, §3.3, §4);
//! * [`pir`] — PIR/SPIR substrates; [`ot`] — oblivious
//!   transfer; [`mpc`] — Yao garbling, PSM, arithmetic MPC;
//! * [`crypto`] — Paillier/GM/ElGamal, ChaCha20, SHA-256;
//! * [`circuits`] — Boolean/arithmetic circuits, formulas,
//!   branching programs; [`math`] — bignums, fields,
//!   polynomials; [`transport`] — metered channels.
//!
//! # Examples
//!
//! ```
//! use spfe::core::stats::weighted_sum;
//! use spfe::crypto::{ChaChaRng, HomomorphicScheme, Paillier, SchnorrGroup};
//! use spfe::math::Fp64;
//! use spfe::transport::Transcript;
//!
//! let mut rng = ChaChaRng::from_u64_seed(42);
//! let group = SchnorrGroup::generate(96, &mut rng);
//! let (pk, sk) = Paillier::keygen(160, &mut rng);
//!
//! // A private database and a client-selected sample.
//! let salaries: Vec<u64> = (0..50).map(|i| 30_000 + (i * 977) % 20_000).collect();
//! let sample = [4usize, 17, 23, 42];
//!
//! // One round; the server never learns the sample, the client learns
//! // only the (weighted) sum.
//! let field = Fp64::at_least(50 * 4 + 200_000);
//! let mut t = Transcript::new(1);
//! let sum = weighted_sum(
//!     &mut t, &group, &pk, &sk, &salaries, &sample, &[1, 1, 1, 1], field, &mut rng,
//! )
//! .expect("honest in-memory transport");
//! let expect: u64 = sample.iter().map(|&i| salaries[i]).sum();
//! assert_eq!(sum, expect);
//! assert!(t.report().total_bytes() < 8 * salaries.len() as u64 * 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

pub use spfe_circuits as circuits;
pub use spfe_core as core;
pub use spfe_crypto as crypto;
pub use spfe_math as math;
pub use spfe_mpc as mpc;
pub use spfe_obs as obs;
pub use spfe_ot as ot;
pub use spfe_pir as pir;
pub use spfe_transport as transport;
