//! The shared conformance harness: every protocol in the workspace as a
//! uniform driver table, with secret-input variants for the leakage audit.
//!
//! Both the test suites (`tests/adversarial.rs`, `tests/trace_conformance.rs`,
//! `tests/mem_profile.rs`, `tests/leakage_audit.rs`) and the `spfe-tables
//! audit` differential harness consume this table, so the set of audited
//! protocols and the set of conformance-tested protocols can never drift
//! apart.
//!
//! One (small) Schnorr group and Paillier keypair are generated once per
//! process; key generation dominates setup time, the protocols themselves
//! run on 16–27-item databases. Each driver owns its rng seed, so a run is
//! a pure function of `(channel fault plan, secret variant)` — the
//! reproducibility property every suite leans on.
//!
//! **Secret variants.** Each driver runs under [`NUM_VARIANTS`] systematic
//! variations of its *secret* inputs — the client's indices, the database
//! contents, the weight/coefficient vector, the selected statistic — while
//! every *public* parameter (database size, sample size `m`, field, keys,
//! circuit shape, rng seeds) stays fixed. Variant 0 is the canonical run
//! the conformance suites use. The differential leakage audit (DESIGN.md
//! §14) asserts that every party-view fingerprint is bit-identical across
//! all variants: the wire shape must not depend on what the protocol is
//! hiding.

use spfe_circuits::builders::sum_circuit;
use spfe_core::database::reference;
use spfe_core::input_select::select1;
use spfe_core::multiserver::{self, MsFunction, MultiServerParams};
use spfe_core::stats;
use spfe_core::two_phase;
use spfe_core::universal::universal_yao_phase;
use spfe_core::{psm_spfe, Statistic};
use spfe_crypto::{ChaChaRng, HomomorphicScheme, Paillier, PaillierPk, PaillierSk, SchnorrGroup};
use spfe_math::Fp64;
use spfe_pir::poly_it::{self, PolyItParams};
use spfe_pir::spir::{self, SpirParams};
use spfe_pir::{batched, hom_pir, recursive, xor2};
use spfe_transport::{Channel, ClientCore, FaultPlan, FaultyChannel, ProtocolError, SessionCore};
use std::sync::OnceLock;

/// How many secret-input variants every driver supports (variant 0 is the
/// canonical conformance run).
pub const NUM_VARIANTS: usize = 3;

/// The process-wide crypto fixture shared by every driver.
pub struct Fixture {
    /// A small Schnorr group (96-bit prime) for the SPIR/OT substrates.
    pub group: SchnorrGroup,
    /// Paillier public key (160-bit modulus).
    pub pk: PaillierPk,
    /// Paillier secret key.
    pub sk: PaillierSk,
}

/// The lazily generated [`Fixture`] (one keygen per process).
pub fn fx() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let mut rng = ChaChaRng::from_u64_seed(0xADE5);
        let group = SchnorrGroup::generate(96, &mut rng);
        let (pk, sk) = Paillier::keygen(160, &mut rng);
        Fixture { group, pk, sk }
    })
}

/// The canonical 16-item database (variant 0 of [`db16_v`]).
pub fn db16() -> Vec<u64> {
    db16_v(0)
}

/// A 16-item database whose *contents* (not size) vary with the secret
/// variant `v`.
pub fn db16_v(v: usize) -> Vec<u64> {
    assert!(v < NUM_VARIANTS);
    (0..16u64)
        .map(|i| (i * 7 + 3 + 11 * v as u64) % 50)
        .collect()
}

/// The canonical 27-item database (variant 0 of [`db27_v`]).
pub fn db27() -> Vec<u64> {
    db27_v(0)
}

/// A 27-item database whose contents vary with the secret variant `v`.
pub fn db27_v(v: usize) -> Vec<u64> {
    assert!(v < NUM_VARIANTS);
    (0..27u64)
        .map(|i| (i * 5 + 2 + 7 * v as u64) % 40)
        .collect()
}

/// The canonical 16×4-byte XOR-PIR database (variant 0 of [`xor_db_v`]).
pub fn xor_db() -> Vec<Vec<u8>> {
    xor_db_v(0)
}

/// A 16-record byte database whose contents vary with the secret variant.
pub fn xor_db_v(v: usize) -> Vec<Vec<u8>> {
    assert!(v < NUM_VARIANTS);
    let salt = (v as u8) * 13;
    (0..16u8)
        .map(|i| {
            (0..4u8)
                .map(|j| {
                    i.wrapping_mul(31)
                        .wrapping_add(j * 7 + 1)
                        .wrapping_add(salt)
                })
                .collect()
        })
        .collect()
}

/// The shared arithmetic field (public parameter, never varied).
pub fn field() -> Fp64 {
    Fp64::at_least(1_000)
}

/// Per-variant client index into a 16-item database (single-index
/// protocols).
fn idx16(v: usize, choices: [usize; NUM_VARIANTS]) -> usize {
    assert!(v < NUM_VARIANTS);
    choices[v]
}

// ---------------------------------------------------------------------------
// The driver table: every protocol in the workspace, each reduced to a
// `u64` digest so one matrix covers them all.
// ---------------------------------------------------------------------------

/// A canonical (variant-0) driver entry point.
pub type DriverFn = fn(&mut dyn Channel) -> Result<u64, ProtocolError>;

/// A driver entry point under secret variant `v < NUM_VARIANTS`.
pub type VariantFn = fn(&mut dyn Channel, usize) -> Result<u64, ProtocolError>;

/// One row of the conformance/audit driver table.
pub struct Driver {
    /// Stable driver name (doubles as the audit-report id).
    pub name: &'static str,
    /// Number of servers the protocol runs against.
    pub servers: usize,
    /// Expected digest of the canonical (variant-0) run.
    pub expect: u64,
    /// The canonical run (variant 0).
    pub run: DriverFn,
    /// The run under a chosen secret variant.
    pub run_variant: VariantFn,
    /// Expected digest per secret variant.
    pub expect_variant: fn(usize) -> u64,
}

/// xor2 variant `v`: two-server XOR PIR; the record index is the secret.
pub fn drv_xor2_v(t: &mut dyn Channel, v: usize) -> Result<u64, ProtocolError> {
    let mut rng = ChaChaRng::from_u64_seed(0xA0);
    let item = xor2::run(t, &xor_db_v(v), idx16(v, [5, 3, 12]), &mut rng)?;
    Ok(item.iter().map(|&b| b as u64).sum())
}

fn expect_xor2(v: usize) -> u64 {
    xor_db_v(v)[idx16(v, [5, 3, 12])]
        .iter()
        .map(|&b| b as u64)
        .sum()
}

/// The canonical xor2 run.
pub fn drv_xor2(t: &mut dyn Channel) -> Result<u64, ProtocolError> {
    drv_xor2_v(t, 0)
}

/// hom_pir variant `v`: √n homomorphic PIR; index and db are the secrets.
pub fn drv_hom_pir_v(t: &mut dyn Channel, v: usize) -> Result<u64, ProtocolError> {
    let mut rng = ChaChaRng::from_u64_seed(0xA1);
    hom_pir::run(
        t,
        &fx().pk,
        &fx().sk,
        &db16_v(v),
        idx16(v, [9, 0, 15]),
        &mut rng,
    )
}

fn expect_hom_pir(v: usize) -> u64 {
    db16_v(v)[idx16(v, [9, 0, 15])]
}

/// The canonical hom_pir run.
pub fn drv_hom_pir(t: &mut dyn Channel) -> Result<u64, ProtocolError> {
    drv_hom_pir_v(t, 0)
}

/// recursive variant `v`: depth-2 recursive PIR on the 27-item db.
pub fn drv_recursive_v(t: &mut dyn Channel, v: usize) -> Result<u64, ProtocolError> {
    let mut rng = ChaChaRng::from_u64_seed(0xA2);
    let idx = [13, 1, 26][v];
    recursive::run(t, &fx().pk, &fx().sk, &db27_v(v), idx, &mut rng)
}

fn expect_recursive(v: usize) -> u64 {
    db27_v(v)[[13, 1, 26][v]]
}

/// The canonical recursive run.
pub fn drv_recursive(t: &mut dyn Channel) -> Result<u64, ProtocolError> {
    drv_recursive_v(t, 0)
}

/// spir variant `v`: single-server SPIR; index and db are the secrets.
pub fn drv_spir_v(t: &mut dyn Channel, v: usize) -> Result<u64, ProtocolError> {
    let mut rng = ChaChaRng::from_u64_seed(0xA3);
    let params = SpirParams::new(fx().group.clone(), 16);
    spir::run(
        t,
        &params,
        &fx().pk,
        &fx().sk,
        &db16_v(v),
        idx16(v, [7, 2, 11]),
        &mut rng,
    )
}

fn expect_spir(v: usize) -> u64 {
    db16_v(v)[idx16(v, [7, 2, 11])]
}

/// The canonical spir run.
pub fn drv_spir(t: &mut dyn Channel) -> Result<u64, ProtocolError> {
    drv_spir_v(t, 0)
}

const BATCHED_INDICES: [[usize; 4]; NUM_VARIANTS] = [[1, 5, 9, 14], [0, 2, 3, 15], [4, 7, 8, 12]];

/// batched variant `v`: cuckoo-batched SPIR; the index *set* is the secret.
pub fn drv_batched_v(t: &mut dyn Channel, v: usize) -> Result<u64, ProtocolError> {
    let mut rng = ChaChaRng::from_u64_seed(0xA4);
    let f = fx();
    let (vals, _) = batched::run(
        t,
        &f.group,
        &f.pk,
        &f.sk,
        &db16_v(v),
        &BATCHED_INDICES[v],
        &mut rng,
    )?;
    Ok(vals.iter().sum())
}

fn expect_batched(v: usize) -> u64 {
    let db = db16_v(v);
    BATCHED_INDICES[v].iter().map(|&i| db[i]).sum()
}

/// The canonical batched run.
pub fn drv_batched(t: &mut dyn Channel) -> Result<u64, ProtocolError> {
    drv_batched_v(t, 0)
}

/// poly_it variant `v`: polynomial-interpolation PIR.
pub fn drv_poly_it_v(t: &mut dyn Channel, v: usize) -> Result<u64, ProtocolError> {
    let mut rng = ChaChaRng::from_u64_seed(0xA5);
    poly_it::run(t, &poly_params(), &db16_v(v), idx16(v, [5, 8, 2]), &mut rng)
}

fn expect_poly_it(v: usize) -> u64 {
    db16_v(v)[idx16(v, [5, 8, 2])]
}

/// The canonical poly_it run.
pub fn drv_poly_it(t: &mut dyn Channel) -> Result<u64, ProtocolError> {
    drv_poly_it_v(t, 0)
}

/// The shared poly_it parameters (public).
pub fn poly_params() -> PolyItParams {
    PolyItParams::new(16, 1, field())
}

const MS_INDICES: [[usize; 2]; NUM_VARIANTS] = [[3, 10], [0, 15], [6, 7]];

/// multiserver variant `v`: Theorem 2 multi-server SPFE, f = sum.
pub fn drv_multiserver_v(t: &mut dyn Channel, v: usize) -> Result<u64, ProtocolError> {
    let mut rng = ChaChaRng::from_u64_seed(0xA6);
    multiserver::run(t, &ms_params(), &db16_v(v), &MS_INDICES[v], None, &mut rng)
}

fn expect_multiserver(v: usize) -> u64 {
    let db = db16_v(v);
    (db[MS_INDICES[v][0]] + db[MS_INDICES[v][1]]) % field().modulus()
}

/// The canonical multiserver run.
pub fn drv_multiserver(t: &mut dyn Channel) -> Result<u64, ProtocolError> {
    drv_multiserver_v(t, 0)
}

/// The shared multiserver parameters (public).
pub fn ms_params() -> MultiServerParams {
    MultiServerParams::new(16, 1, field(), MsFunction::Sum { m: 2 })
}

const SELECT1_INDICES: [[usize; 2]; NUM_VARIANTS] = [[2, 7], [1, 14], [0, 9]];

/// input_select variant `v`: §3.3.1 input selection into shares.
pub fn drv_select1_v(t: &mut dyn Channel, v: usize) -> Result<u64, ProtocolError> {
    let mut rng = ChaChaRng::from_u64_seed(0xA7);
    let f = fx();
    let shares = select1(
        t,
        &f.group,
        &f.pk,
        &f.sk,
        &db16_v(v),
        &SELECT1_INDICES[v],
        field(),
        &mut rng,
    )?;
    Ok(shares.reconstruct().iter().sum())
}

fn expect_select1(v: usize) -> u64 {
    let db = db16_v(v);
    SELECT1_INDICES[v].iter().map(|&i| db[i]).sum()
}

/// The canonical input_select run.
pub fn drv_select1(t: &mut dyn Channel) -> Result<u64, ProtocolError> {
    drv_select1_v(t, 0)
}

const PSM_INDICES: [[usize; 2]; NUM_VARIANTS] = [[2, 11], [5, 6], [0, 13]];

/// psm_spfe variant `v`: PSM-based SPFE over the 2-input sum circuit.
pub fn drv_psm_v(t: &mut dyn Channel, v: usize) -> Result<u64, ProtocolError> {
    let mut rng = ChaChaRng::from_u64_seed(0xA8);
    let f = fx();
    let circuit = sum_circuit(2, 8);
    psm_spfe::run_yao_psm(
        t,
        &f.group,
        &f.pk,
        &f.sk,
        &db16_v(v),
        &PSM_INDICES[v],
        &circuit,
        8,
        &mut rng,
    )
}

fn expect_psm(v: usize) -> u64 {
    let db = db16_v(v);
    PSM_INDICES[v].iter().map(|&i| db[i]).sum()
}

/// The canonical psm_spfe run.
pub fn drv_psm(t: &mut dyn Channel) -> Result<u64, ProtocolError> {
    drv_psm_v(t, 0)
}

const TWO_PHASE_INDICES: [[usize; 3]; NUM_VARIANTS] = [[1, 6, 12], [0, 3, 5], [2, 9, 15]];

/// two_phase variant `v`: select1 + Yao evaluation of the sum statistic.
pub fn drv_two_phase_v(t: &mut dyn Channel, v: usize) -> Result<u64, ProtocolError> {
    let mut rng = ChaChaRng::from_u64_seed(0xA9);
    let f = fx();
    let got = two_phase::run_select1_yao(
        t,
        &f.group,
        &f.pk,
        &f.sk,
        &db16_v(v),
        &TWO_PHASE_INDICES[v],
        &Statistic::Sum,
        field(),
        &mut rng,
    )?;
    Ok(got[0])
}

fn expect_two_phase(v: usize) -> u64 {
    reference::sum(&db16_v(v), &TWO_PHASE_INDICES[v])
}

/// The canonical two_phase run.
pub fn drv_two_phase(t: &mut dyn Channel) -> Result<u64, ProtocolError> {
    drv_two_phase_v(t, 0)
}

const UNIVERSAL_INDICES: [[usize; 2]; NUM_VARIANTS] = [[0, 4], [3, 12], [5, 9]];
/// Which entry of the (public) statistic menu the client secretly selects.
const UNIVERSAL_SELECTION: [usize; NUM_VARIANTS] = [0, 1, 0];

fn universal_menu() -> [Statistic; 2] {
    [Statistic::Sum, Statistic::Frequency { keyword: 9 }]
}

/// universal variant `v`: the function-hiding phase — indices *and* the
/// selected menu entry are secrets.
pub fn drv_universal_v(t: &mut dyn Channel, v: usize) -> Result<u64, ProtocolError> {
    let mut rng = ChaChaRng::from_u64_seed(0xAA);
    let f = fx();
    let shares = select1(
        t,
        &f.group,
        &f.pk,
        &f.sk,
        &db16_v(v),
        &UNIVERSAL_INDICES[v],
        field(),
        &mut rng,
    )?;
    universal_yao_phase(
        t,
        &f.group,
        &shares,
        &universal_menu(),
        UNIVERSAL_SELECTION[v],
        &mut rng,
    )
}

fn expect_universal(v: usize) -> u64 {
    let db = db16_v(v);
    let indices = UNIVERSAL_INDICES[v];
    match universal_menu()[UNIVERSAL_SELECTION[v]] {
        Statistic::Sum => reference::sum(&db, &indices),
        Statistic::Frequency { keyword } => reference::frequency(&db, &indices, keyword),
        _ => unreachable!("menu holds only sum and frequency"),
    }
}

/// The canonical universal run.
pub fn drv_universal(t: &mut dyn Channel) -> Result<u64, ProtocolError> {
    drv_universal_v(t, 0)
}

const WS_INDICES: [[usize; 3]; NUM_VARIANTS] = [[1, 4, 9], [0, 2, 3], [5, 10, 15]];
const WS_WEIGHTS: [[u64; 3]; NUM_VARIANTS] = [[2, 3, 1], [1, 1, 4], [3, 2, 2]];

/// weighted_sum variant `v`: §4 weighted sum — indices *and* the weight
/// vector are secrets.
pub fn drv_weighted_sum_v(t: &mut dyn Channel, v: usize) -> Result<u64, ProtocolError> {
    let mut rng = ChaChaRng::from_u64_seed(0xAB);
    let f = fx();
    stats::weighted_sum(
        t,
        &f.group,
        &f.pk,
        &f.sk,
        &db16_v(v),
        &WS_INDICES[v],
        &WS_WEIGHTS[v],
        field(),
        &mut rng,
    )
}

fn expect_weighted_sum(v: usize) -> u64 {
    reference::weighted_sum(&db16_v(v), &WS_INDICES[v], &WS_WEIGHTS[v])
}

/// The canonical weighted_sum run.
pub fn drv_weighted_sum(t: &mut dyn Channel) -> Result<u64, ProtocolError> {
    drv_weighted_sum_v(t, 0)
}

const FREQ_INDICES: [[usize; 3]; NUM_VARIANTS] = [[0, 5, 10], [1, 2, 3], [4, 8, 12]];
/// Which database slot's value the client secretly counts.
const FREQ_KEYWORD_SLOT: [usize; NUM_VARIANTS] = [5, 2, 9];

/// frequency variant `v`: §4 frequency counting — indices *and* the
/// keyword are secrets.
pub fn drv_frequency_v(t: &mut dyn Channel, v: usize) -> Result<u64, ProtocolError> {
    let mut rng = ChaChaRng::from_u64_seed(0xAC);
    let f = fx();
    let db = db16_v(v);
    let keyword = db[FREQ_KEYWORD_SLOT[v]];
    let shares = select1(
        t,
        &f.group,
        &f.pk,
        &f.sk,
        &db,
        &FREQ_INDICES[v],
        field(),
        &mut rng,
    )?;
    stats::frequency(t, &f.pk, &f.sk, &shares, keyword, &mut rng)
}

fn expect_frequency(v: usize) -> u64 {
    let db = db16_v(v);
    reference::frequency(&db, &FREQ_INDICES[v], db[FREQ_KEYWORD_SLOT[v]])
}

/// The canonical frequency run.
pub fn drv_frequency(t: &mut dyn Channel) -> Result<u64, ProtocolError> {
    drv_frequency_v(t, 0)
}

/// The full driver table, in stable order.
pub fn drivers() -> Vec<Driver> {
    fn row(
        name: &'static str,
        servers: usize,
        run: DriverFn,
        run_variant: VariantFn,
        expect_variant: fn(usize) -> u64,
    ) -> Driver {
        Driver {
            name,
            servers,
            expect: expect_variant(0),
            run,
            run_variant,
            expect_variant,
        }
    }
    vec![
        row("xor2", 2, drv_xor2, drv_xor2_v, expect_xor2),
        row("hom_pir", 1, drv_hom_pir, drv_hom_pir_v, expect_hom_pir),
        row(
            "recursive",
            1,
            drv_recursive,
            drv_recursive_v,
            expect_recursive,
        ),
        row("spir", 1, drv_spir, drv_spir_v, expect_spir),
        row("batched", 1, drv_batched, drv_batched_v, expect_batched),
        row(
            "poly_it",
            poly_params().num_servers(),
            drv_poly_it,
            drv_poly_it_v,
            expect_poly_it,
        ),
        row(
            "multiserver",
            ms_params().num_servers(),
            drv_multiserver,
            drv_multiserver_v,
            expect_multiserver,
        ),
        row(
            "input_select",
            1,
            drv_select1,
            drv_select1_v,
            expect_select1,
        ),
        row("psm_spfe", 1, drv_psm, drv_psm_v, expect_psm),
        row(
            "two_phase",
            1,
            drv_two_phase,
            drv_two_phase_v,
            expect_two_phase,
        ),
        row(
            "universal",
            1,
            drv_universal,
            drv_universal_v,
            expect_universal,
        ),
        row(
            "weighted_sum",
            1,
            drv_weighted_sum,
            drv_weighted_sum_v,
            expect_weighted_sum,
        ),
        row(
            "frequency",
            1,
            drv_frequency,
            drv_frequency_v,
            expect_frequency,
        ),
    ]
}

// ---------------------------------------------------------------------------
// Networked-service wiring (DESIGN.md §15): the sans-io state machines of
// the PIR/multiserver driver family, constructed with the *same* seeds,
// databases, and indices as the canonical monolithic drivers above — so a
// socket compute-mode run reproduces the canonical digest and transcript
// byte-for-byte.
// ---------------------------------------------------------------------------

/// The drivers with genuine sans-io state machines ([`net_server_cores`] /
/// [`net_client_core`]); every other driver runs over sockets through the
/// relay-mode blanket adapter ([`spfe_transport::SocketChannel`]).
pub const NET_CORE_DRIVERS: &[&str] = &["xor2", "hom_pir", "poly_it", "multiserver"];

/// The server state machines hosting driver `name`'s canonical database,
/// one per logical server; `None` for drivers without an extracted core.
pub fn net_server_cores(name: &str) -> Option<Vec<Box<dyn SessionCore + Send>>> {
    Some(match name {
        "xor2" => (0..2)
            .map(|i| {
                Box::new(xor2::Xor2ServerCore::new(i, xor_db())) as Box<dyn SessionCore + Send>
            })
            .collect(),
        "hom_pir" => vec![Box::new(hom_pir::HomPirServerCore::new(
            fx().pk.clone(),
            db16(),
        ))],
        "poly_it" => {
            let params = poly_params();
            (0..params.num_servers())
                .map(|i| {
                    Box::new(poly_it::PolyItServerCore::new(i, params, db16()))
                        as Box<dyn SessionCore + Send>
                })
                .collect()
        }
        "multiserver" => {
            let params = ms_params();
            (0..params.num_servers())
                .map(|i| {
                    Box::new(multiserver::MsServerCore::new(i, params.clone(), db16()))
                        as Box<dyn SessionCore + Send>
                })
                .collect()
        }
        _ => return None,
    })
}

/// The client state machine for driver `name`'s canonical run (same rng
/// seed, index, and database as the monolithic driver, so the digest —
/// and the transcript — are identical); `None` for drivers without an
/// extracted core.
pub fn net_client_core(name: &str) -> Option<Box<dyn ClientCore>> {
    Some(match name {
        "xor2" => {
            let mut rng = ChaChaRng::from_u64_seed(0xA0);
            Box::new(xor2::Xor2ClientCore::new(16, 5, &mut rng)) as Box<dyn ClientCore>
        }
        "hom_pir" => {
            let mut rng = ChaChaRng::from_u64_seed(0xA1);
            let f = fx();
            Box::new(hom_pir::HomPirClientCore::new(
                f.pk.clone(),
                f.sk.clone(),
                16,
                9,
                &mut rng,
            ))
        }
        "poly_it" => {
            let mut rng = ChaChaRng::from_u64_seed(0xA5);
            Box::new(poly_it::PolyItClientCore::new(poly_params(), 5, &mut rng))
        }
        "multiserver" => {
            let mut rng = ChaChaRng::from_u64_seed(0xA6);
            Box::new(multiserver::MsClientCore::new(
                ms_params(),
                &MS_INDICES[0],
                &mut rng,
            ))
        }
        _ => return None,
    })
}

/// Runs driver `d` (canonical variant) over a fresh [`FaultyChannel`]
/// under `plan`, tolerating up to `tolerance` healed servers.
pub fn run_under(d: &Driver, plan: FaultPlan, tolerance: usize) -> Result<u64, ProtocolError> {
    let mut ch = FaultyChannel::new(d.servers, plan, tolerance);
    (d.run)(&mut ch)
}

/// Runs the driver fault-free and returns how many messages it attempts —
/// the index space scripted plans address.
///
/// # Panics
///
/// Panics if the honest run does not produce the expected digest.
pub fn honest_messages(d: &Driver) -> u64 {
    let mut ch = FaultyChannel::new(d.servers, FaultPlan::honest(), 0);
    let got = (d.run)(&mut ch);
    assert_eq!(got, Ok(d.expect), "[{}] honest run", d.name);
    ch.messages_attempted()
}
