//! Boolean formulas and their arithmetization — the §3.1 construction.
//!
//! The multi-server protocol expresses `f` as a multivariate polynomial `P`
//! over a field `F`, in the bits of the client's `m` selected indices:
//!
//! * each leaf of the formula names an argument slot `j ∈ [m]` and becomes
//!   the database selector polynomial
//!   `P₀(y₁…y_ℓ) = Σ_i x_i · Π_k (y_k if i(k)=1 else 1-y_k)` of degree `ℓ`;
//! * each binary gate `g` becomes its natural degree-2 polynomial `Q_g`
//!   (e.g. `AND(φ,ψ) = φ·ψ`, `OR = φ+ψ-φψ`, `XOR = φ+ψ-2φψ`).
//!
//! The total degree of `P` is at most `ℓ·s` where `s` is the number of
//! leaves — the quantity that determines the server count `k = t·ℓ·s + 1`
//! in Theorem 2.
//!
//! `P` is *evaluated implicitly* (gate by gate over field values), which
//! costs `O(n·ℓ)` per leaf; the explicit expansion to an
//! `MPoly` is provided for validation on small
//! instances.

use spfe_math::{Fp64, MPoly};

/// Binary gate operations available in formulas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Logical AND.
    And,
    /// Logical OR.
    Or,
    /// Logical XOR.
    Xor,
    /// Logical NAND.
    Nand,
    /// Logical NOR.
    Nor,
}

impl BinOp {
    /// Boolean semantics.
    pub fn apply(self, a: bool, b: bool) -> bool {
        match self {
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Nand => !(a & b),
            BinOp::Nor => !(a | b),
        }
    }

    /// The natural degree-2 gate polynomial `Q_g` over a field.
    pub fn arithmetize(self, f: Fp64, a: u64, b: u64) -> u64 {
        let ab = f.mul(a, b);
        match self {
            BinOp::And => ab,
            BinOp::Or => f.sub(f.add(a, b), ab),
            BinOp::Xor => f.sub(f.add(a, b), f.mul(2 % f.modulus(), ab)),
            BinOp::Nand => f.sub(1, ab),
            BinOp::Nor => f.sub(1, f.sub(f.add(a, b), ab)),
        }
    }
}

/// A Boolean formula over `m` argument slots.
///
/// # Examples
///
/// ```
/// use spfe_circuits::formula::{Formula, BinOp};
/// // (arg0 AND arg1) XOR arg2
/// let f = Formula::gate(
///     BinOp::Xor,
///     Formula::gate(BinOp::And, Formula::leaf(0), Formula::leaf(1)),
///     Formula::leaf(2),
/// );
/// assert_eq!(f.size(), 3); // three leaves
/// assert!(f.evaluate(&[true, true, false]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Formula {
    /// The `j`-th selected data item.
    Leaf(usize),
    /// A binary gate over two subformulas.
    Gate(BinOp, Box<Formula>, Box<Formula>),
    /// Negation.
    Not(Box<Formula>),
}

impl Formula {
    /// A leaf referencing argument slot `j`.
    pub fn leaf(j: usize) -> Self {
        Formula::Leaf(j)
    }

    /// A binary gate node.
    pub fn gate(op: BinOp, left: Formula, right: Formula) -> Self {
        Formula::Gate(op, Box::new(left), Box::new(right))
    }

    /// A negation node.
    #[allow(clippy::should_implement_trait)]
    pub fn not(inner: Formula) -> Self {
        Formula::Not(Box::new(inner))
    }

    /// A balanced tree combining leaves `0..m` with `op`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn balanced(op: BinOp, m: usize) -> Self {
        assert!(m > 0);
        fn rec(op: BinOp, lo: usize, hi: usize) -> Formula {
            if hi - lo == 1 {
                Formula::Leaf(lo)
            } else {
                let mid = lo + (hi - lo) / 2;
                Formula::gate(op, rec(op, lo, mid), rec(op, mid, hi))
            }
        }
        rec(op, 0, m)
    }

    /// The paper's formula size `s`: the number of leaves.
    pub fn size(&self) -> usize {
        match self {
            Formula::Leaf(_) => 1,
            Formula::Gate(_, l, r) => l.size() + r.size(),
            Formula::Not(inner) => inner.size(),
        }
    }

    /// The number of argument slots `m` (one more than the largest slot).
    pub fn arity(&self) -> usize {
        match self {
            Formula::Leaf(j) => j + 1,
            Formula::Gate(_, l, r) => l.arity().max(r.arity()),
            Formula::Not(inner) => inner.arity(),
        }
    }

    /// Degree of the arithmetization when each leaf has degree `leaf_deg`
    /// (`= ℓ = ⌈log₂ n⌉` for the selector polynomial): `deg(P) ≤ ℓ·s`.
    pub fn degree_bound(&self, leaf_deg: usize) -> usize {
        match self {
            Formula::Leaf(_) => leaf_deg,
            Formula::Gate(_, l, r) => l.degree_bound(leaf_deg) + r.degree_bound(leaf_deg),
            Formula::Not(inner) => inner.degree_bound(leaf_deg),
        }
    }

    /// Boolean evaluation on concrete arguments.
    ///
    /// # Panics
    ///
    /// Panics if `args` is shorter than the arity.
    pub fn evaluate(&self, args: &[bool]) -> bool {
        match self {
            Formula::Leaf(j) => args[*j],
            Formula::Gate(op, l, r) => op.apply(l.evaluate(args), r.evaluate(args)),
            Formula::Not(inner) => !inner.evaluate(args),
        }
    }

    /// Arithmetized evaluation: applies the gate polynomials to field values
    /// standing for the leaf values (one value per argument slot).
    ///
    /// On 0/1 inputs this agrees with [`Formula::evaluate`]; on arbitrary
    /// field points it is the low-degree extension the §3.1 protocol
    /// evaluates.
    ///
    /// # Panics
    ///
    /// Panics if `leaf_values` is shorter than the arity.
    pub fn arithmetized_eval(&self, f: Fp64, leaf_values: &[u64]) -> u64 {
        match self {
            Formula::Leaf(j) => leaf_values[*j],
            Formula::Gate(op, l, r) => op.arithmetize(
                f,
                l.arithmetized_eval(f, leaf_values),
                r.arithmetized_eval(f, leaf_values),
            ),
            Formula::Not(inner) => f.sub(1, inner.arithmetized_eval(f, leaf_values)),
        }
    }
}

/// Number of index bits `ℓ = ⌈log₂ n⌉` for a database of `n ≥ 1` items.
pub fn index_bits(n: usize) -> usize {
    assert!(n >= 1);
    (usize::BITS - (n - 1).leading_zeros()).max(1) as usize
}

/// Encodes index `i` as its `ℓ` bits (little-endian) embedded in the field.
pub fn encode_index(i: usize, ell: usize) -> Vec<u64> {
    (0..ell).map(|k| ((i >> k) & 1) as u64).collect()
}

/// Evaluates the database selector polynomial
/// `P₀(y) = Σ_i x_i · Π_k (y_k if i(k)=1 else 1-y_k)`
/// at an arbitrary field point `y ∈ F^ℓ` — the implicit leaf evaluation of
/// §3.1, costing `O(n·ℓ)` field operations.
///
/// # Panics
///
/// Panics if `2^{y.len()} < db.len()`.
pub fn selector_eval(db: &[u64], y: &[u64], f: Fp64) -> u64 {
    let ell = y.len();
    assert!(
        ell >= index_bits(db.len().max(1)),
        "too few index bits for the database"
    );
    let y: Vec<u64> = y.iter().map(|&v| f.from_u64(v)).collect();
    let not_y: Vec<u64> = y.iter().map(|&v| f.sub(1, v)).collect();
    let mut acc = 0u64;
    for (i, &xi) in db.iter().enumerate() {
        if xi == 0 {
            continue;
        }
        let mut chi = f.from_u64(xi);
        for k in 0..ell {
            let factor = if (i >> k) & 1 == 1 { y[k] } else { not_y[k] };
            chi = f.mul(chi, factor);
            if chi == 0 {
                break;
            }
        }
        acc = f.add(acc, chi);
    }
    acc
}

/// Explicitly expands the selector polynomial `P₀` for slot variables
/// `[var_base, var_base + ℓ)` of an `num_vars`-variable polynomial ring —
/// exponential in `ℓ`; for validation on small instances only.
pub fn selector_mpoly(db: &[u64], ell: usize, var_base: usize, num_vars: usize, f: Fp64) -> MPoly {
    let mut acc = MPoly::zero(num_vars, f);
    for (i, &xi) in db.iter().enumerate() {
        if xi == 0 {
            continue;
        }
        let mut term = MPoly::constant(xi, num_vars, f);
        for k in 0..ell {
            let yk = MPoly::var(var_base + k, num_vars, f);
            let factor = if (i >> k) & 1 == 1 {
                yk
            } else {
                MPoly::constant(1, num_vars, f).sub(&yk)
            };
            term = term.mul(&factor);
        }
        acc = acc.add(&term);
    }
    acc
}

/// Explicitly compiles a formula over a database into the multivariate
/// polynomial `P ∈ F[y₁ … y_{m·ℓ}]` of §3.1 (slot `j` owns variables
/// `[j·ℓ, (j+1)·ℓ)`). Exponential in `ℓ`; for validation on small instances.
pub fn compile_formula_mpoly(formula: &Formula, db: &[u64], ell: usize, f: Fp64) -> MPoly {
    let m = formula.arity();
    let num_vars = m * ell;
    fn rec(node: &Formula, db: &[u64], ell: usize, num_vars: usize, f: Fp64) -> MPoly {
        match node {
            Formula::Leaf(j) => selector_mpoly(db, ell, j * ell, num_vars, f),
            Formula::Not(inner) => {
                MPoly::constant(1, num_vars, f).sub(&rec(inner, db, ell, num_vars, f))
            }
            Formula::Gate(op, l, r) => {
                let a = rec(l, db, ell, num_vars, f);
                let b = rec(r, db, ell, num_vars, f);
                let ab = a.mul(&b);
                match op {
                    BinOp::And => ab,
                    BinOp::Or => a.add(&b).sub(&ab),
                    BinOp::Xor => a.add(&b).sub(&ab.scale(2)),
                    BinOp::Nand => MPoly::constant(1, num_vars, f).sub(&ab),
                    BinOp::Nor => MPoly::constant(1, num_vars, f).sub(&a.add(&b).sub(&ab)),
                }
            }
        }
    }
    rec(formula, db, ell, num_vars, f)
}

/// Evaluates the §3.1 polynomial `P` implicitly at a point
/// `y = (y_1 … y_m) ∈ (F^ℓ)^m` (one ℓ-vector per slot): each slot's selector
/// is evaluated by [`selector_eval`], then combined through the gate
/// polynomials.
///
/// # Panics
///
/// Panics if `slot_points.len()` is smaller than the formula's arity.
pub fn eval_formula_poly(formula: &Formula, db: &[u64], slot_points: &[Vec<u64>], f: Fp64) -> u64 {
    assert!(slot_points.len() >= formula.arity());
    let leaf_values: Vec<u64> = slot_points
        .iter()
        .map(|y| selector_eval(db, y, f))
        .collect();
    formula.arithmetized_eval(f, &leaf_values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfe_math::{RandomSource, XorShiftRng};

    fn field() -> Fp64 {
        Fp64::new(1_000_003).unwrap()
    }

    #[test]
    fn index_bits_known() {
        assert_eq!(index_bits(1), 1);
        assert_eq!(index_bits(2), 1);
        assert_eq!(index_bits(3), 2);
        assert_eq!(index_bits(8), 3);
        assert_eq!(index_bits(9), 4);
        assert_eq!(index_bits(1024), 10);
    }

    #[test]
    fn selector_recovers_database_entries() {
        let f = field();
        let db = [5u64, 9, 2, 7, 0, 3];
        let ell = index_bits(db.len());
        for (i, &x) in db.iter().enumerate() {
            assert_eq!(selector_eval(&db, &encode_index(i, ell), f), x, "i={i}");
        }
    }

    #[test]
    fn selector_mpoly_matches_implicit() {
        let f = field();
        let db = [1u64, 4, 2, 8];
        let ell = 2;
        let p = selector_mpoly(&db, ell, 0, 2, f);
        let mut rng = XorShiftRng::new(5);
        for _ in 0..20 {
            let y = [rng.next_below(1_000_003), rng.next_below(1_000_003)];
            assert_eq!(p.eval(&y), selector_eval(&db, &y, f));
        }
        // Degree ℓ as claimed.
        assert_eq!(p.total_degree(), ell);
    }

    #[test]
    fn formula_metrics() {
        let phi = Formula::balanced(BinOp::And, 4);
        assert_eq!(phi.size(), 4);
        assert_eq!(phi.arity(), 4);
        assert_eq!(phi.degree_bound(3), 12); // ℓ·s
        let with_not = Formula::not(phi);
        assert_eq!(with_not.size(), 4);
    }

    #[test]
    fn arithmetization_agrees_on_boolean_inputs() {
        let f = field();
        let phi = Formula::gate(
            BinOp::Xor,
            Formula::gate(BinOp::And, Formula::leaf(0), Formula::leaf(1)),
            Formula::not(Formula::gate(BinOp::Or, Formula::leaf(2), Formula::leaf(0))),
        );
        for bits in 0u32..8 {
            let args: Vec<bool> = (0..3).map(|i| (bits >> i) & 1 == 1).collect();
            let vals: Vec<u64> = args.iter().map(|&b| b as u64).collect();
            assert_eq!(
                phi.arithmetized_eval(f, &vals),
                phi.evaluate(&args) as u64,
                "bits={bits:b}"
            );
        }
    }

    #[test]
    fn all_binops_arithmetize_correctly() {
        let f = field();
        for op in [BinOp::And, BinOp::Or, BinOp::Xor, BinOp::Nand, BinOp::Nor] {
            for a in [false, true] {
                for b in [false, true] {
                    assert_eq!(
                        op.arithmetize(f, a as u64, b as u64),
                        op.apply(a, b) as u64,
                        "{op:?} {a} {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn compiled_mpoly_matches_implicit_eval() {
        // The §3.1 claim: the explicit P and the implicit evaluation agree
        // on arbitrary field points, and deg(P) ≤ ℓ·s.
        let f = field();
        let db = [1u64, 0, 1, 1]; // Boolean database
        let ell = 2;
        let phi = Formula::gate(
            BinOp::And,
            Formula::leaf(0),
            Formula::gate(BinOp::Xor, Formula::leaf(1), Formula::leaf(0)),
        );
        let p = compile_formula_mpoly(&phi, &db, ell, f);
        assert!(p.total_degree() <= phi.degree_bound(ell));
        let mut rng = XorShiftRng::new(77);
        for _ in 0..20 {
            let pts: Vec<Vec<u64>> = (0..phi.arity())
                .map(|_| (0..ell).map(|_| rng.next_below(1_000_003)).collect())
                .collect();
            let flat: Vec<u64> = pts.iter().flatten().copied().collect();
            assert_eq!(p.eval(&flat), eval_formula_poly(&phi, &db, &pts, f));
        }
    }

    #[test]
    fn formula_poly_on_encoded_indices_computes_f() {
        // P(i₁(1)…i_m(ℓ)) = f(x_{i₁},…,x_{i_m}) — the §3.1 correctness claim.
        let f = field();
        let db = [1u64, 0, 1, 1, 0, 1, 0, 0];
        let ell = index_bits(db.len());
        let phi = Formula::gate(
            BinOp::Or,
            Formula::gate(BinOp::And, Formula::leaf(0), Formula::leaf(1)),
            Formula::leaf(2),
        );
        for (i0, i1, i2) in [(0usize, 1usize, 4usize), (2, 3, 7), (5, 5, 6), (7, 0, 3)] {
            let pts = vec![
                encode_index(i0, ell),
                encode_index(i1, ell),
                encode_index(i2, ell),
            ];
            let expect = phi.evaluate(&[db[i0] == 1, db[i1] == 1, db[i2] == 1]) as u64;
            assert_eq!(eval_formula_poly(&phi, &db, &pts, f), expect);
        }
    }

    #[test]
    fn balanced_tree_shape() {
        let phi = Formula::balanced(BinOp::Or, 7);
        assert_eq!(phi.size(), 7);
        let args = [false, false, false, false, false, false, true];
        assert!(phi.evaluate(&args));
        assert!(!phi.evaluate(&[false; 7]));
    }
}
