//! Branching programs and the path-counting determinant lemma.
//!
//! The perfectly secure PSM protocol of ref. \[30\] (Ishai–Kushilevitz), which
//! Corollary 4(2) plugs into the SPFE construction, works on functions
//! represented as *branching programs*: DAGs whose edges are guarded by
//! input literals, where `f(x)` is the number of start→accept paths (mod p).
//!
//! The key algebraic fact (implemented by [`BranchingProgram::path_matrix`]
//! and validated in tests): order the `s` nodes topologically, let `A(x)` be
//! the adjacency matrix, and let `M(x)` be `I − A(x)` with its last row and
//! first column deleted. Then `M(x)` has 1s on its subdiagonal, 0s below,
//! and
//!
//! ```text
//! #paths(start → accept)  =  (−1)^{s−1} · det M(x)   (mod p)
//! ```
//!
//! Moreover each entry of `M(x)` is an affine function of a *single* input
//! variable — which is exactly what the PSM randomization needs (see
//! `spfe_mpc::psm`).

use spfe_math::{Fp64, Mat};

/// Guard on a branching-program edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Guard {
    /// Edge always active (weight 1).
    Always,
    /// Active iff input `var` equals `value`.
    Var {
        /// Input variable index.
        var: usize,
        /// Required value.
        value: bool,
    },
}

/// An edge `from → to` with a guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Source node (must precede `to` in topological order).
    pub from: usize,
    /// Target node.
    pub to: usize,
    /// Activation guard.
    pub guard: Guard,
}

/// A (counting, mod-p) branching program.
///
/// Nodes `0..size` are topologically ordered; node `0` is the start and
/// `size-1` the accept node. `f(x)` = number of active start→accept paths.
/// For *deterministic* BPs this count is 0 or 1 and equals the accepted
/// predicate.
///
/// # Examples
///
/// ```
/// use spfe_circuits::bp::BranchingProgram;
/// let bp = BranchingProgram::parity(3); // x0 ⊕ x1 ⊕ x2
/// assert_eq!(bp.count_paths(&[true, false, true]), 0);
/// assert_eq!(bp.count_paths(&[true, false, false]), 1);
/// ```
#[derive(Debug, Clone)]
pub struct BranchingProgram {
    size: usize,
    num_vars: usize,
    edges: Vec<Edge>,
}

impl BranchingProgram {
    /// Creates a BP, validating topological order and variable indices.
    ///
    /// # Panics
    ///
    /// Panics if `size < 2`, an edge violates `from < to`, or a guard names
    /// a variable `>= num_vars`.
    pub fn new(size: usize, num_vars: usize, edges: Vec<Edge>) -> Self {
        assert!(size >= 2, "BP needs at least start and accept nodes");
        for e in &edges {
            assert!(e.from < e.to, "edges must go forward in topological order");
            assert!(e.to < size, "edge target out of range");
            if let Guard::Var { var, .. } = e.guard {
                assert!(var < num_vars, "guard variable out of range");
            }
        }
        BranchingProgram {
            size,
            num_vars,
            edges,
        }
    }

    /// Number of nodes (the paper's BP size `B_f`).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of input variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Counts active start→accept paths by dynamic programming.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_vars`.
    pub fn count_paths(&self, x: &[bool]) -> u64 {
        assert_eq!(x.len(), self.num_vars);
        let mut paths = vec![0u64; self.size];
        paths[0] = 1;
        // Edges grouped implicitly by topological order of `from`.
        let mut sorted = self.edges.clone();
        sorted.sort_by_key(|e| e.from);
        for e in &sorted {
            let active = match e.guard {
                Guard::Always => true,
                Guard::Var { var, value } => x[var] == value,
            };
            if active {
                paths[e.to] = paths[e.to].saturating_add(paths[e.from]);
            }
        }
        paths[self.size - 1]
    }

    /// Evaluates as a Boolean predicate: `count_paths(x) mod 2 == 1` over
    /// GF(2), or non-zero over larger fields for deterministic BPs.
    pub fn accepts(&self, x: &[bool]) -> bool {
        self.count_paths(x) % 2 == 1
    }

    /// The matrix `M(x)`: `I − A(x)` with the last row and first column
    /// deleted — an `(s−1)×(s−1)` matrix with 1s on the subdiagonal, 0s
    /// below it, and `det M(x) = (−1)^{s−1}·#paths(x)` over the field.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_vars`.
    pub fn path_matrix(&self, x: &[bool], f: Fp64) -> Mat {
        assert_eq!(x.len(), self.num_vars);
        let d = self.size - 1;
        let mut m = Mat::zero(d, d, f);
        // Subdiagonal ones from the identity part: M[i][j] = (I−A)[i][j+1].
        for i in 1..d {
            m.set(i, i - 1, 1);
        }
        for e in &self.edges {
            let active = match e.guard {
                Guard::Always => true,
                Guard::Var { var, value } => x[var] == value,
            };
            if active && e.from < d && e.to >= 1 {
                let (r, c) = (e.from, e.to - 1);
                let cur = m.get(r, c);
                m.set(r, c, f.sub(cur, 1)); // −A contribution
            }
        }
        m
    }

    /// Decomposes `M(x)` as `M_const + Σ_j x_j · M_j` (each entry affine in
    /// a single variable) — the form consumed by the PSM players, where
    /// player `j` holds only `x_j`.
    ///
    /// Returns `(M_const, [M_1 … M_num_vars])`.
    pub fn affine_matrices(&self, f: Fp64) -> (Mat, Vec<Mat>) {
        let d = self.size - 1;
        let mut m_const = Mat::zero(d, d, f);
        for i in 1..d {
            m_const.set(i, i - 1, 1);
        }
        let mut m_vars = vec![Mat::zero(d, d, f); self.num_vars];
        for e in &self.edges {
            if e.from >= d || e.to < 1 {
                continue;
            }
            let (r, c) = (e.from, e.to - 1);
            match e.guard {
                Guard::Always => {
                    let cur = m_const.get(r, c);
                    m_const.set(r, c, f.sub(cur, 1));
                }
                Guard::Var { var, value: true } => {
                    // weight x_j: contributes −x_j.
                    let cur = m_vars[var].get(r, c);
                    m_vars[var].set(r, c, f.sub(cur, 1));
                }
                Guard::Var { var, value: false } => {
                    // weight (1 − x_j): contributes −1 + x_j.
                    let cur = m_const.get(r, c);
                    m_const.set(r, c, f.sub(cur, 1));
                    let cur = m_vars[var].get(r, c);
                    m_vars[var].set(r, c, f.add(cur, 1));
                }
            }
        }
        (m_const, m_vars)
    }

    /// The parity (XOR) BP over `n` variables: 2 nodes per level tracking the
    /// running parity; size `2n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn parity(n: usize) -> Self {
        assert!(n > 0);
        // Level i (0-based) nodes: even-parity node and odd-parity node.
        // Node layout: 0 = start (even, level 0); for levels 1..n: nodes
        // 2i-1 (even) and 2i (odd); accept = node for odd parity at level n…
        // except we want a single accept node = last node. Use: accept is
        // the odd node of the final level, placed last.
        let node_even = |level: usize| if level == 0 { 0 } else { 2 * level - 1 };
        let node_odd = |level: usize, n: usize| {
            if level == n {
                2 * n // accept placed last
            } else {
                2 * level
            }
        };
        let size = 2 * n + 1;
        let mut edges = Vec::new();
        for lvl in 0..n {
            let var = lvl;
            let e = node_even(lvl);
            let o = if lvl == 0 {
                None
            } else {
                Some(node_odd(lvl, n))
            };
            // From even-parity node:
            edges.push(Edge {
                from: e,
                to: node_even(lvl + 1),
                guard: Guard::Var { var, value: false },
            });
            edges.push(Edge {
                from: e,
                to: node_odd(lvl + 1, n),
                guard: Guard::Var { var, value: true },
            });
            // From odd-parity node (absent at level 0):
            if let Some(o) = o {
                edges.push(Edge {
                    from: o,
                    to: node_odd(lvl + 1, n),
                    guard: Guard::Var { var, value: false },
                });
                edges.push(Edge {
                    from: o,
                    to: node_even(lvl + 1),
                    guard: Guard::Var { var, value: true },
                });
            }
        }
        // Re-sort node indices: ensure all edges go forward. node_even(l)=2l−1,
        // node_odd(l)=2l for l<n; both > nodes of level l−1. Accept 2n > all.
        BranchingProgram::new(size, n, edges)
    }

    /// The AND BP over `n` variables: a single chain; size `n + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn and_of(n: usize) -> Self {
        assert!(n > 0);
        let edges = (0..n)
            .map(|i| Edge {
                from: i,
                to: i + 1,
                guard: Guard::Var {
                    var: i,
                    value: true,
                },
            })
            .collect();
        BranchingProgram::new(n + 1, n, edges)
    }

    /// The OR BP over `n` variables (deterministic: first satisfied literal
    /// routes to accept); size `n + 2`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn or_of(n: usize) -> Self {
        assert!(n > 0);
        // Nodes 0..n: "all previous vars false"; node n+1 = accept.
        // From node i: x_i=1 → accept; x_i=0 → node i+1 (or dead-end at i=n−1
        // via node n which has no outgoing edges).
        let accept = n + 1;
        let mut edges = Vec::new();
        for i in 0..n {
            edges.push(Edge {
                from: i,
                to: accept,
                guard: Guard::Var {
                    var: i,
                    value: true,
                },
            });
            edges.push(Edge {
                from: i,
                to: i + 1,
                guard: Guard::Var {
                    var: i,
                    value: false,
                },
            });
        }
        BranchingProgram::new(n + 2, n, edges)
    }

    /// BP testing equality of the `w`-bit input (vars `0..w`) with the
    /// constant `keyword`; size `w + 1`. Used for §4 frequency counting in
    /// the BP/PSM pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `w == 0`.
    pub fn equals_const(w: usize, keyword: u64) -> Self {
        assert!(w > 0);
        let edges = (0..w)
            .map(|i| Edge {
                from: i,
                to: i + 1,
                guard: Guard::Var {
                    var: i,
                    value: (keyword >> i) & 1 == 1,
                },
            })
            .collect();
        BranchingProgram::new(w + 1, w, edges)
    }
}

/// Number of start→accept paths computed from the determinant identity —
/// used to cross-validate [`BranchingProgram::count_paths`].
pub fn paths_via_det(bp: &BranchingProgram, x: &[bool], f: Fp64) -> u64 {
    let m = bp.path_matrix(x, f);
    let det = m.det();
    // (−1)^{s−1} · det
    if (bp.size() - 1) % 2 == 1 {
        f.neg(det)
    } else {
        det
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> Fp64 {
        Fp64::new(1_000_003).unwrap()
    }

    fn all_inputs(n: usize) -> impl Iterator<Item = Vec<bool>> {
        (0u32..(1 << n)).map(move |bits| (0..n).map(|i| (bits >> i) & 1 == 1).collect())
    }

    #[test]
    fn and_bp_exhaustive() {
        for n in 1..=4 {
            let bp = BranchingProgram::and_of(n);
            for x in all_inputs(n) {
                let expect = x.iter().all(|&b| b) as u64;
                assert_eq!(bp.count_paths(&x), expect, "n={n} x={x:?}");
            }
        }
    }

    #[test]
    fn or_bp_exhaustive() {
        for n in 1..=4 {
            let bp = BranchingProgram::or_of(n);
            for x in all_inputs(n) {
                let expect = x.iter().any(|&b| b) as u64;
                assert_eq!(bp.count_paths(&x), expect, "n={n} x={x:?}");
            }
        }
    }

    #[test]
    fn parity_bp_exhaustive() {
        for n in 1..=5 {
            let bp = BranchingProgram::parity(n);
            for x in all_inputs(n) {
                let expect = (x.iter().filter(|&&b| b).count() % 2) as u64;
                assert_eq!(bp.count_paths(&x), expect, "n={n} x={x:?}");
            }
        }
    }

    #[test]
    fn equals_const_exhaustive() {
        let bp = BranchingProgram::equals_const(4, 0b1010);
        for x in all_inputs(4) {
            let v: u64 = x.iter().enumerate().map(|(i, &b)| (b as u64) << i).sum();
            assert_eq!(bp.count_paths(&x), (v == 0b1010) as u64);
        }
    }

    #[test]
    fn determinant_lemma_matches_path_count() {
        let f = field();
        for bp in [
            BranchingProgram::and_of(3),
            BranchingProgram::or_of(3),
            BranchingProgram::parity(4),
            BranchingProgram::equals_const(3, 5),
        ] {
            for x in all_inputs(bp.num_vars()) {
                assert_eq!(
                    paths_via_det(&bp, &x, f),
                    bp.count_paths(&x) % f.modulus(),
                    "bp size={} x={x:?}",
                    bp.size()
                );
            }
        }
    }

    #[test]
    fn path_matrix_shape_invariants() {
        let f = field();
        let bp = BranchingProgram::parity(3);
        let m = bp.path_matrix(&[true, false, true], f);
        let d = bp.size() - 1;
        assert_eq!((m.num_rows(), m.num_cols()), (d, d));
        // 1s on subdiagonal, 0 below.
        for i in 0..d {
            for j in 0..d {
                if i == j + 1 {
                    assert_eq!(m.get(i, j), 1, "subdiagonal ({i},{j})");
                } else if i > j + 1 {
                    assert_eq!(m.get(i, j), 0, "below subdiagonal ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn affine_decomposition_matches_path_matrix() {
        let f = field();
        for bp in [
            BranchingProgram::or_of(3),
            BranchingProgram::parity(3),
            BranchingProgram::and_of(4),
        ] {
            let (m0, mv) = bp.affine_matrices(f);
            for x in all_inputs(bp.num_vars()) {
                let mut acc = m0.clone();
                for (j, mj) in mv.iter().enumerate() {
                    if x[j] {
                        acc = acc.add(mj);
                    }
                }
                assert_eq!(acc, bp.path_matrix(&x, f), "x={x:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "forward")]
    fn backward_edge_rejected() {
        let _ = BranchingProgram::new(
            3,
            1,
            vec![Edge {
                from: 2,
                to: 1,
                guard: Guard::Always,
            }],
        );
    }
}
