//! Arithmetic circuits over a ring `Z_u`.
//!
//! The §3.3.4 light-weight secure protocol evaluates `f` represented as an
//! arithmetic circuit over a (possibly large) modulus — the paper's
//! "efficient scalability to arithmetic circuits" column of Table 1. This
//! module provides the circuit representation, a plaintext evaluator, and
//! the metrics (multiplicative size and depth) that drive that protocol's
//! round/communication costs.

use spfe_math::modular::{mod_add, mod_mul, mod_sub};
use spfe_math::Nat;

/// Identifier of an arithmetic wire.
pub type AWireId = usize;

/// An arithmetic gate over `Z_u`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AGate {
    /// Circuit input (with input index).
    Input(usize),
    /// A public constant.
    Const(Nat),
    /// Addition mod `u`.
    Add(AWireId, AWireId),
    /// Subtraction mod `u`.
    Sub(AWireId, AWireId),
    /// Multiplication mod `u` (the expensive gate: interactive in §3.3.4).
    Mul(AWireId, AWireId),
    /// Multiplication by a public constant (free for the server in §3.3.4).
    MulConst(AWireId, Nat),
}

/// An arithmetic circuit over `Z_u`.
///
/// # Examples
///
/// ```
/// use spfe_circuits::arith::ArithCircuitBuilder;
/// use spfe_math::Nat;
/// let mut b = ArithCircuitBuilder::new(Nat::from(97u64));
/// let x = b.input();
/// let y = b.input();
/// let xy = b.mul(x, y);
/// let out = b.add_const(xy, Nat::from(5u64));
/// b.output(out);
/// let c = b.build();
/// let r = c.evaluate(&[Nat::from(6u64), Nat::from(7u64)]);
/// assert_eq!(r, vec![Nat::from(47u64)]); // 42 + 5
/// ```
#[derive(Debug, Clone)]
pub struct ArithCircuit {
    gates: Vec<AGate>,
    outputs: Vec<AWireId>,
    num_inputs: usize,
    modulus: Nat,
}

impl ArithCircuit {
    /// The ring modulus `u`.
    pub fn modulus(&self) -> &Nat {
        &self.modulus
    }

    /// Gates in topological order.
    pub fn gates(&self) -> &[AGate] {
        &self.gates
    }

    /// Output wires.
    pub fn outputs(&self) -> &[AWireId] {
        &self.outputs
    }

    /// Number of inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of `Mul` gates (each costs one interaction round trip in the
    /// §3.3.4 protocol).
    pub fn mul_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| matches!(g, AGate::Mul(..)))
            .count()
    }

    /// Multiplicative depth — the §3.3.4 protocol's round complexity is
    /// proportional to this.
    pub fn mul_depth(&self) -> usize {
        let mut depth = vec![0usize; self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            depth[i] = match g {
                AGate::Input(_) | AGate::Const(_) => 0,
                AGate::Add(a, b) | AGate::Sub(a, b) => depth[*a].max(depth[*b]),
                AGate::MulConst(a, _) => depth[*a],
                AGate::Mul(a, b) => depth[*a].max(depth[*b]) + 1,
            };
        }
        self.outputs.iter().map(|&o| depth[o]).max().unwrap_or(0)
    }

    /// Plaintext evaluation (inputs are reduced mod `u`).
    ///
    /// # Panics
    ///
    /// Panics on input-count mismatch.
    pub fn evaluate(&self, inputs: &[Nat]) -> Vec<Nat> {
        assert_eq!(inputs.len(), self.num_inputs, "wrong input count");
        let u = &self.modulus;
        let mut vals: Vec<Nat> = Vec::with_capacity(self.gates.len());
        for g in &self.gates {
            let v = match g {
                AGate::Input(idx) => inputs[*idx].rem(u),
                AGate::Const(c) => c.rem(u),
                AGate::Add(a, b) => mod_add(&vals[*a], &vals[*b], u),
                AGate::Sub(a, b) => mod_sub(&vals[*a], &vals[*b], u),
                AGate::Mul(a, b) => mod_mul(&vals[*a], &vals[*b], u),
                AGate::MulConst(a, c) => mod_mul(&vals[*a], &c.rem(u), u),
            };
            vals.push(v);
        }
        self.outputs.iter().map(|&o| vals[o].clone()).collect()
    }
}

/// Builder for [`ArithCircuit`].
#[derive(Debug)]
pub struct ArithCircuitBuilder {
    gates: Vec<AGate>,
    outputs: Vec<AWireId>,
    num_inputs: usize,
    modulus: Nat,
}

impl ArithCircuitBuilder {
    /// Creates a builder over `Z_u`.
    ///
    /// # Panics
    ///
    /// Panics if `u < 2`.
    pub fn new(modulus: Nat) -> Self {
        assert!(modulus >= Nat::from(2u64), "modulus must be >= 2");
        ArithCircuitBuilder {
            gates: Vec::new(),
            outputs: Vec::new(),
            num_inputs: 0,
            modulus,
        }
    }

    fn push(&mut self, g: AGate) -> AWireId {
        self.gates.push(g);
        self.gates.len() - 1
    }

    fn check(&self, w: AWireId) {
        assert!(w < self.gates.len(), "wire {w} does not exist yet");
    }

    /// Adds a fresh input wire.
    pub fn input(&mut self) -> AWireId {
        let idx = self.num_inputs;
        self.num_inputs += 1;
        self.push(AGate::Input(idx))
    }

    /// Adds `n` fresh input wires.
    pub fn inputs(&mut self, n: usize) -> Vec<AWireId> {
        (0..n).map(|_| self.input()).collect()
    }

    /// Adds a constant wire.
    pub fn constant(&mut self, c: Nat) -> AWireId {
        self.push(AGate::Const(c))
    }

    /// `a + b`.
    pub fn add(&mut self, a: AWireId, b: AWireId) -> AWireId {
        self.check(a);
        self.check(b);
        self.push(AGate::Add(a, b))
    }

    /// `a - b`.
    pub fn sub(&mut self, a: AWireId, b: AWireId) -> AWireId {
        self.check(a);
        self.check(b);
        self.push(AGate::Sub(a, b))
    }

    /// `a · b`.
    pub fn mul(&mut self, a: AWireId, b: AWireId) -> AWireId {
        self.check(a);
        self.check(b);
        self.push(AGate::Mul(a, b))
    }

    /// `c · a` for public `c`.
    pub fn mul_const(&mut self, a: AWireId, c: Nat) -> AWireId {
        self.check(a);
        self.push(AGate::MulConst(a, c))
    }

    /// `a + c` for public `c`.
    pub fn add_const(&mut self, a: AWireId, c: Nat) -> AWireId {
        let cw = self.constant(c);
        self.add(a, cw)
    }

    /// Marks an output wire.
    pub fn output(&mut self, w: AWireId) {
        self.check(w);
        self.outputs.push(w);
    }

    /// Finalizes.
    ///
    /// # Panics
    ///
    /// Panics if no outputs were marked.
    pub fn build(self) -> ArithCircuit {
        assert!(!self.outputs.is_empty(), "circuit has no outputs");
        ArithCircuit {
            gates: self.gates,
            outputs: self.outputs,
            num_inputs: self.num_inputs,
            modulus: self.modulus,
        }
    }
}

/// The sum circuit `Σ x_i mod u` over `m` inputs (zero `Mul` gates — the
/// arithmetic representation the paper contrasts with Boolean circuits).
pub fn arith_sum_circuit(m: usize, modulus: Nat) -> ArithCircuit {
    assert!(m > 0);
    let mut b = ArithCircuitBuilder::new(modulus);
    let ins = b.inputs(m);
    let mut acc = ins[0];
    for &w in &ins[1..] {
        acc = b.add(acc, w);
    }
    b.output(acc);
    b.build()
}

/// Sum + sum-of-squares over `m` inputs (two outputs; `m` `Mul` gates,
/// multiplicative depth 1) — the arithmetic form of the §4
/// "average + variance package".
pub fn arith_sum_and_squares_circuit(m: usize, modulus: Nat) -> ArithCircuit {
    assert!(m > 0);
    let mut b = ArithCircuitBuilder::new(modulus);
    let ins = b.inputs(m);
    let mut sum = ins[0];
    for &w in &ins[1..] {
        sum = b.add(sum, w);
    }
    let mut sq_acc: Option<AWireId> = None;
    for &w in &ins {
        let sq = b.mul(w, w);
        sq_acc = Some(match sq_acc {
            None => sq,
            Some(prev) => b.add(prev, sq),
        });
    }
    b.output(sum);
    b.output(sq_acc.unwrap());
    b.build()
}

/// Inner product `Σ c_i·x_i mod u` with public coefficients (zero `Mul`
/// gates) — the weighted-sum function of §4.
///
/// # Panics
///
/// Panics if `coeffs` is empty.
pub fn arith_weighted_sum_circuit(coeffs: &[Nat], modulus: Nat) -> ArithCircuit {
    assert!(!coeffs.is_empty());
    let mut b = ArithCircuitBuilder::new(modulus);
    let ins = b.inputs(coeffs.len());
    let mut acc: Option<AWireId> = None;
    for (&w, c) in ins.iter().zip(coeffs) {
        let t = b.mul_const(w, c.clone());
        acc = Some(match acc {
            None => t,
            Some(prev) => b.add(prev, t),
        });
    }
    b.output(acc.unwrap());
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nats(vals: &[u64]) -> Vec<Nat> {
        vals.iter().map(|&v| Nat::from(v)).collect()
    }

    #[test]
    fn evaluator_basic_ops() {
        let mut b = ArithCircuitBuilder::new(Nat::from(100u64));
        let x = b.input();
        let y = b.input();
        let s = b.add(x, y);
        let d = b.sub(x, y);
        let p = b.mul(x, y);
        let c = b.mul_const(x, Nat::from(3u64));
        for w in [s, d, p, c] {
            b.output(w);
        }
        let circ = b.build();
        let out = circ.evaluate(&nats(&[7, 9]));
        assert_eq!(out, nats(&[16, 98, 63, 21])); // 7-9 = -2 ≡ 98 mod 100
    }

    #[test]
    fn metrics() {
        let c = arith_sum_and_squares_circuit(4, Nat::from(1_000_003u64));
        assert_eq!(c.mul_count(), 4);
        assert_eq!(c.mul_depth(), 1);
        let s = arith_sum_circuit(10, Nat::from(101u64));
        assert_eq!(s.mul_count(), 0);
        assert_eq!(s.mul_depth(), 0);
    }

    #[test]
    fn sum_circuit_wraps() {
        let c = arith_sum_circuit(3, Nat::from(10u64));
        assert_eq!(c.evaluate(&nats(&[7, 8, 9])), nats(&[4]));
    }

    #[test]
    fn sum_and_squares_values() {
        let c = arith_sum_and_squares_circuit(3, Nat::from(1_000_000u64));
        let out = c.evaluate(&nats(&[10, 20, 30]));
        assert_eq!(out, nats(&[60, 1400]));
    }

    #[test]
    fn weighted_sum_values() {
        let c = arith_weighted_sum_circuit(&nats(&[2, 0, 5]), Nat::from(1_000_000u64));
        assert_eq!(c.evaluate(&nats(&[3, 99, 4])), nats(&[26]));
    }

    #[test]
    fn deep_multiplication_depth() {
        // x^8 by repeated squaring: depth 3, count 3.
        let mut b = ArithCircuitBuilder::new(Nat::from(1_000_003u64));
        let x = b.input();
        let x2 = b.mul(x, x);
        let x4 = b.mul(x2, x2);
        let x8 = b.mul(x4, x4);
        b.output(x8);
        let c = b.build();
        assert_eq!(c.mul_depth(), 3);
        assert_eq!(c.mul_count(), 3);
        assert_eq!(c.evaluate(&nats(&[3]))[0], Nat::from(6561u64));
    }

    #[test]
    #[should_panic(expected = "wrong input count")]
    fn input_count_checked() {
        let c = arith_sum_circuit(2, Nat::from(7u64));
        let _ = c.evaluate(&nats(&[1]));
    }
}
