//! # spfe-circuits
//!
//! Function representations for the SPFE protocols:
//!
//! * [`boolean`] — Boolean circuit DAGs (`C_f` in Table 1), with builders;
//! * [`builders`] — the §4 statistical functions as circuits (sum, sum of
//!   squares, frequency, threshold count, max);
//! * [`formula`] — Boolean formulas and the §3.1 arithmetization into
//!   multivariate polynomials (selector polynomial `P₀`, gate polynomials
//!   `Q_g`, implicit evaluation, and an explicit compiler for validation);
//! * [`arith`] — arithmetic circuits over `Z_u` (§3.3.4);
//! * [`bp`] — branching programs (`B_f`) and the path-counting determinant
//!   lemma behind the perfect PSM protocol of Corollary 4(2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arith;
pub mod boolean;
pub mod bp;
pub mod builders;
pub mod formula;

pub use arith::{ArithCircuit, ArithCircuitBuilder};
pub use boolean::{Circuit, CircuitBuilder, Gate, WireId};
pub use bp::{BranchingProgram, Edge, Guard};
pub use formula::{BinOp, Formula};
