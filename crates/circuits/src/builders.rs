//! Circuit constructions for the statistical functions of §4.
//!
//! These produce the Boolean circuits `C_f` consumed by the Yao-based MPC
//! phase: sums (→ average), sums of squares (→ variance), keyword-frequency
//! counts, threshold counts, and maxima over the `m` selected items.

use crate::boolean::{Circuit, CircuitBuilder, WireId};

/// Bits needed to represent values `0..=max`.
pub fn bits_for(max: u64) -> usize {
    (64 - max.leading_zeros()).max(1) as usize
}

/// Output width of the balanced-tree sum of `m` words of `w` bits — the
/// layout contract between the circuit builders and output decoders.
pub fn tree_sum_width(w: usize, m: usize) -> usize {
    if m <= 1 {
        w
    } else {
        w + bits_for(m as u64 - 1)
    }
}

/// Splits flat input wires into `m` words of `width` bits each.
fn word_inputs(b: &mut CircuitBuilder, m: usize, width: usize) -> Vec<Vec<WireId>> {
    (0..m).map(|_| b.inputs(width)).collect()
}

/// Zero-extends a word to `target` bits.
fn zext(b: &mut CircuitBuilder, w: &[WireId], target: usize) -> Vec<WireId> {
    let mut out = w.to_vec();
    while out.len() < target {
        out.push(b.constant(false));
    }
    out
}

/// Adds two words of possibly different widths, producing
/// `max(len)+1` bits.
fn add_any(b: &mut CircuitBuilder, x: &[WireId], y: &[WireId]) -> Vec<WireId> {
    let w = x.len().max(y.len());
    let xx = zext(b, x, w);
    let yy = zext(b, y, w);
    b.add_words(&xx, &yy)
}

/// Builds the sum circuit: `m` unsigned `width`-bit inputs, output their
/// exact sum (`width + ⌈log₂ m⌉` bits) — the paper's canonical statistic.
///
/// # Panics
///
/// Panics if `m == 0` or `width == 0`.
///
/// # Examples
///
/// ```
/// use spfe_circuits::builders::sum_circuit;
/// let c = sum_circuit(3, 4);
/// // inputs are little-endian per word: 3 + 5 + 15 = 23
/// let mut input = Vec::new();
/// for v in [3u64, 5, 15] {
///     for i in 0..4 { input.push((v >> i) & 1 == 1); }
/// }
/// assert_eq!(c.evaluate_to_u64(&input), 23);
/// ```
pub fn sum_circuit(m: usize, width: usize) -> Circuit {
    assert!(m > 0 && width > 0);
    let mut b = CircuitBuilder::new();
    let words = word_inputs(&mut b, m, width);
    let sum = tree_sum(&mut b, &words);
    for w in sum {
        b.output(w);
    }
    b.build()
}

/// Balanced-tree sum of words (minimizes depth).
fn tree_sum(b: &mut CircuitBuilder, words: &[Vec<WireId>]) -> Vec<WireId> {
    match words.len() {
        0 => unreachable!("tree_sum of zero words"),
        1 => words[0].clone(),
        _ => {
            let mid = words.len() / 2;
            let left = tree_sum(b, &words[..mid]);
            let right = tree_sum(b, &words[mid..]);
            add_any(b, &left, &right)
        }
    }
}

/// Square of a word via schoolbook partial products (`width²` AND gates),
/// producing `2·width` bits.
fn square_word(b: &mut CircuitBuilder, x: &[WireId]) -> Vec<WireId> {
    let w = x.len();
    let mut acc: Option<Vec<WireId>> = None;
    for (i, &xi) in x.iter().enumerate() {
        // Partial product x * x_i, shifted left by i.
        let mut pp: Vec<WireId> = Vec::with_capacity(w + i);
        for _ in 0..i {
            pp.push(b.constant(false));
        }
        for &xj in x {
            pp.push(b.and(xi, xj));
        }
        acc = Some(match acc {
            None => pp,
            Some(prev) => {
                let mut s = add_any(b, &prev, &pp);
                s.truncate(2 * w);
                s
            }
        });
    }
    let mut out = acc.unwrap();
    out.truncate(2 * w);
    out
}

/// Builds the sum-of-squares circuit: `m` `width`-bit inputs →
/// `Σ x_i²` (`2·width + ⌈log₂ m⌉` bits). Together with [`sum_circuit`] this
/// is the paper's §4 "package combination of average and variance".
///
/// # Panics
///
/// Panics if `m == 0` or `width == 0`.
pub fn sum_of_squares_circuit(m: usize, width: usize) -> Circuit {
    assert!(m > 0 && width > 0);
    let mut b = CircuitBuilder::new();
    let words = word_inputs(&mut b, m, width);
    let squares: Vec<Vec<WireId>> = words.iter().map(|w| square_word(&mut b, w)).collect();
    let sum = tree_sum(&mut b, &squares);
    for w in sum {
        b.output(w);
    }
    b.build()
}

/// Builds the frequency circuit of §4: counts how many of the `m`
/// `width`-bit inputs equal the public keyword `w` (output
/// `⌈log₂(m+1)⌉` bits).
///
/// # Panics
///
/// Panics if `m == 0`, `width == 0`, or the keyword needs more than
/// `width` bits.
pub fn frequency_circuit(m: usize, width: usize, keyword: u64) -> Circuit {
    assert!(m > 0 && width > 0);
    assert!(bits_for(keyword) <= width, "keyword wider than items");
    let mut b = CircuitBuilder::new();
    let words = word_inputs(&mut b, m, width);
    let kw: Vec<WireId> = (0..width)
        .map(|i| b.constant((keyword >> i) & 1 == 1))
        .collect();
    let flags: Vec<Vec<WireId>> = words.iter().map(|w| vec![b.eq_words(w, &kw)]).collect();
    let count = tree_sum(&mut b, &flags);
    for w in count {
        b.output(w);
    }
    b.build()
}

/// Builds a threshold-count circuit: counts inputs strictly less than the
/// public `threshold` — e.g. "how many selected salaries fall below T".
///
/// # Panics
///
/// Panics if `m == 0`, `width == 0`, or the threshold needs more than
/// `width` bits.
pub fn count_below_circuit(m: usize, width: usize, threshold: u64) -> Circuit {
    assert!(m > 0 && width > 0);
    assert!(bits_for(threshold) <= width);
    let mut b = CircuitBuilder::new();
    let words = word_inputs(&mut b, m, width);
    let th: Vec<WireId> = (0..width)
        .map(|i| b.constant((threshold >> i) & 1 == 1))
        .collect();
    let flags: Vec<Vec<WireId>> = words.iter().map(|w| vec![b.lt_words(w, &th)]).collect();
    let count = tree_sum(&mut b, &flags);
    for w in count {
        b.output(w);
    }
    b.build()
}

/// Builds the maximum circuit over `m` `width`-bit inputs.
///
/// # Panics
///
/// Panics if `m == 0` or `width == 0`.
pub fn max_circuit(m: usize, width: usize) -> Circuit {
    assert!(m > 0 && width > 0);
    let mut b = CircuitBuilder::new();
    let words = word_inputs(&mut b, m, width);
    let mut best = words[0].clone();
    for w in &words[1..] {
        let lt = b.lt_words(&best, w);
        best = b.mux_words(lt, &best, w);
    }
    for w in best {
        b.output(w);
    }
    b.build()
}

/// Share-reconstructing sum circuit for the §3.3 two-phase SPFE protocols:
/// inputs are the server's `m` shares `a_j` followed by the client's `m`
/// shares `b_j` (each `w = bits(p−1)` bits, canonical mod `p`); the circuit
/// reconstructs `x_j = a_j + b_j mod p` and outputs `Σ_j x_j mod p`.
///
/// # Panics
///
/// Panics if `m == 0` or `p < 2`.
pub fn share_sum_mod_circuit(m: usize, p: u64) -> Circuit {
    assert!(m > 0 && p >= 2);
    let w = bits_for(p - 1);
    let mut b = CircuitBuilder::new();
    let a_words = word_inputs(&mut b, m, w);
    let b_words = word_inputs(&mut b, m, w);
    let xs: Vec<Vec<WireId>> = a_words
        .iter()
        .zip(&b_words)
        .map(|(aw, bw)| b.add_mod_words(aw, bw, p))
        .collect();
    let mut acc = xs[0].clone();
    for x in &xs[1..] {
        acc = b.add_mod_words(&acc, x, p);
    }
    for wire in acc {
        b.output(wire);
    }
    b.build()
}

/// Share-reconstructing frequency circuit: reconstructs `x_j = a_j + b_j
/// mod p` then counts occurrences of `keyword` (see
/// [`frequency_circuit`]).
///
/// # Panics
///
/// Panics if `m == 0`, `p < 2`, or the keyword is not below `p`.
pub fn share_frequency_circuit(m: usize, p: u64, keyword: u64) -> Circuit {
    assert!(m > 0 && p >= 2 && keyword < p);
    let w = bits_for(p - 1);
    let mut b = CircuitBuilder::new();
    let a_words = word_inputs(&mut b, m, w);
    let b_words = word_inputs(&mut b, m, w);
    let kw: Vec<WireId> = (0..w)
        .map(|i| b.constant((keyword >> i) & 1 == 1))
        .collect();
    let flags: Vec<Vec<WireId>> = a_words
        .iter()
        .zip(&b_words)
        .map(|(aw, bw)| {
            let x = b.add_mod_words(aw, bw, p);
            vec![b.eq_words(&x, &kw)]
        })
        .collect();
    let count = tree_sum(&mut b, &flags);
    for wire in count {
        b.output(wire);
    }
    b.build()
}

/// Share-reconstructing sum + sum-of-squares circuit: reconstructs
/// `x_j = a_j + b_j mod p`, outputs `Σ x_j` (exact integer,
/// `w + ⌈log₂ m⌉` bits) followed by `Σ x_j²` (exact, `2w + ⌈log₂ m⌉`
/// bits) — the §4 average+variance package in its generic-MPC form.
///
/// # Panics
///
/// Panics if `m == 0` or `p < 2`.
pub fn share_sum_and_squares_circuit(m: usize, p: u64) -> Circuit {
    assert!(m > 0 && p >= 2);
    let w = bits_for(p - 1);
    let mut b = CircuitBuilder::new();
    let a_words = word_inputs(&mut b, m, w);
    let b_words = word_inputs(&mut b, m, w);
    let xs: Vec<Vec<WireId>> = a_words
        .iter()
        .zip(&b_words)
        .map(|(aw, bw)| b.add_mod_words(aw, bw, p))
        .collect();
    let total = tree_sum(&mut b, &xs);
    let squares: Vec<Vec<WireId>> = xs.iter().map(|x| square_word(&mut b, x)).collect();
    let sq_total = tree_sum(&mut b, &squares);
    for wire in total {
        b.output(wire);
    }
    for wire in sq_total {
        b.output(wire);
    }
    b.build()
}

/// Share-reconstructing threshold-count circuit: counts reconstructed
/// values strictly below `threshold`.
///
/// # Panics
///
/// Panics if `m == 0`, `p < 2`, or `threshold >= p`.
pub fn share_count_below_circuit(m: usize, p: u64, threshold: u64) -> Circuit {
    assert!(m > 0 && p >= 2 && threshold < p);
    let w = bits_for(p - 1);
    let mut b = CircuitBuilder::new();
    let a_words = word_inputs(&mut b, m, w);
    let b_words = word_inputs(&mut b, m, w);
    let th: Vec<WireId> = (0..w)
        .map(|i| b.constant((threshold >> i) & 1 == 1))
        .collect();
    let flags: Vec<Vec<WireId>> = a_words
        .iter()
        .zip(&b_words)
        .map(|(aw, bw)| {
            let x = b.add_mod_words(aw, bw, p);
            vec![b.lt_words(&x, &th)]
        })
        .collect();
    let count = tree_sum(&mut b, &flags);
    for wire in count {
        b.output(wire);
    }
    b.build()
}

/// Compare-exchange: returns `(min, max)` of two words.
fn compare_exchange(
    b: &mut CircuitBuilder,
    x: &[WireId],
    y: &[WireId],
) -> (Vec<WireId>, Vec<WireId>) {
    let y_lt_x = b.lt_words(y, x);
    let lo = b.mux_words(y_lt_x, x, y); // y < x ? y : x
    let hi = b.mux_words(y_lt_x, y, x);
    (lo, hi)
}

/// Sorts `words` ascending with Batcher's odd-even merge sort
/// (`O(m log² m)` comparators, data-oblivious — exactly what a garbled
/// circuit needs).
pub fn sort_words(b: &mut CircuitBuilder, words: &mut [Vec<WireId>]) {
    let m = words.len();
    if m < 2 {
        return;
    }
    // Iterative Batcher odd-even mergesort for arbitrary m: compare (i, j)
    // pairs from the classic p/k/j loop.
    let mut p = 1usize;
    while p < m {
        let mut k = p;
        while k >= 1 {
            let mut j = k % p;
            while j + k < m {
                for i in 0..k.min(m - j - k) {
                    let a = i + j;
                    let bb = i + j + k;
                    if a / (2 * p) == bb / (2 * p) {
                        let (lo, hi) = compare_exchange(b, &words[a], &words[bb]);
                        words[a] = lo;
                        words[bb] = hi;
                    }
                }
                j += 2 * k;
            }
            k /= 2;
        }
        p *= 2;
    }
}

/// Builds the median circuit over `m` `width`-bit inputs: sorts with a
/// Batcher network and outputs element `⌊m/2⌋` (the upper median).
///
/// # Panics
///
/// Panics if `m == 0` or `width == 0`.
pub fn median_circuit(m: usize, width: usize) -> Circuit {
    assert!(m > 0 && width > 0);
    let mut b = CircuitBuilder::new();
    let mut words = word_inputs(&mut b, m, width);
    sort_words(&mut b, &mut words);
    for &wire in &words[m / 2] {
        b.output(wire);
    }
    b.build()
}

/// Share-reconstructing median circuit: reconstructs `x_j = a_j + b_j
/// mod p`, sorts, outputs the upper median.
///
/// # Panics
///
/// Panics if `m == 0` or `p < 2`.
pub fn share_median_circuit(m: usize, p: u64) -> Circuit {
    assert!(m > 0 && p >= 2);
    let w = bits_for(p - 1);
    let mut b = CircuitBuilder::new();
    let a_words = word_inputs(&mut b, m, w);
    let b_words = word_inputs(&mut b, m, w);
    let mut xs: Vec<Vec<WireId>> = a_words
        .iter()
        .zip(&b_words)
        .map(|(aw, bw)| b.add_mod_words(aw, bw, p))
        .collect();
    sort_words(&mut b, &mut xs);
    for &wire in &xs[m / 2] {
        b.output(wire);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfe_math::{RandomSource, XorShiftRng};

    fn pack(vals: &[u64], width: usize) -> Vec<bool> {
        let mut out = Vec::with_capacity(vals.len() * width);
        for &v in vals {
            for i in 0..width {
                out.push((v >> i) & 1 == 1);
            }
        }
        out
    }

    #[test]
    fn bits_for_known() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
    }

    #[test]
    fn sum_circuit_random() {
        let mut rng = XorShiftRng::new(1);
        for (m, width) in [(1usize, 4usize), (2, 8), (5, 6), (16, 3)] {
            let c = sum_circuit(m, width);
            for _ in 0..10 {
                let vals: Vec<u64> = (0..m).map(|_| rng.next_below(1 << width)).collect();
                let expect: u64 = vals.iter().sum();
                assert_eq!(c.evaluate_to_u64(&pack(&vals, width)), expect);
            }
        }
    }

    #[test]
    fn sum_of_squares_random() {
        let mut rng = XorShiftRng::new(2);
        let (m, width) = (4usize, 5usize);
        let c = sum_of_squares_circuit(m, width);
        for _ in 0..10 {
            let vals: Vec<u64> = (0..m).map(|_| rng.next_below(1 << width)).collect();
            let expect: u64 = vals.iter().map(|&v| v * v).sum();
            assert_eq!(c.evaluate_to_u64(&pack(&vals, width)), expect, "{vals:?}");
        }
    }

    #[test]
    fn square_word_exhaustive_4bit() {
        let mut b = CircuitBuilder::new();
        let x = b.inputs(4);
        let sq = square_word(&mut b, &x);
        for w in sq {
            b.output(w);
        }
        let c = b.build();
        for v in 0u64..16 {
            assert_eq!(c.evaluate_to_u64(&pack(&[v], 4)), v * v, "v={v}");
        }
    }

    #[test]
    fn frequency_counts_matches() {
        let c = frequency_circuit(5, 4, 7);
        let vals = [7u64, 3, 7, 7, 1];
        assert_eq!(c.evaluate_to_u64(&pack(&vals, 4)), 3);
        let none = [0u64, 1, 2, 3, 4];
        assert_eq!(c.evaluate_to_u64(&pack(&none, 4)), 0);
        let all = [7u64; 5];
        assert_eq!(c.evaluate_to_u64(&pack(&all, 4)), 5);
    }

    #[test]
    fn count_below_matches() {
        let c = count_below_circuit(6, 5, 10);
        let vals = [0u64, 9, 10, 11, 31, 5];
        let expect = vals.iter().filter(|&&v| v < 10).count() as u64;
        assert_eq!(c.evaluate_to_u64(&pack(&vals, 5)), expect);
    }

    #[test]
    fn max_circuit_random() {
        let mut rng = XorShiftRng::new(3);
        let c = max_circuit(7, 6);
        for _ in 0..10 {
            let vals: Vec<u64> = (0..7).map(|_| rng.next_below(1 << 6)).collect();
            let expect = *vals.iter().max().unwrap();
            assert_eq!(c.evaluate_to_u64(&pack(&vals, 6)), expect, "{vals:?}");
        }
    }

    #[test]
    fn circuit_sizes_scale_linearly_in_m() {
        // Sum circuit size is O(m·width) — the C_f in Table 1's cost rows.
        let s8 = sum_circuit(8, 8).size();
        let s16 = sum_circuit(16, 8).size();
        let s32 = sum_circuit(32, 8).size();
        assert!(s16 > s8 && s32 > s16);
        assert!(s32 < 5 * s8, "sum circuit grew superlinearly");
    }

    #[test]
    #[should_panic(expected = "keyword wider")]
    fn oversized_keyword_rejected() {
        let _ = frequency_circuit(2, 3, 9);
    }

    #[test]
    fn sorting_network_sorts_all_sizes() {
        let mut rng = XorShiftRng::new(11);
        for m in 1..=9usize {
            let w = 5;
            let mut b = CircuitBuilder::new();
            let mut words = (0..m).map(|_| b.inputs(w)).collect::<Vec<_>>();
            sort_words(&mut b, &mut words);
            for word in &words {
                for &wire in word {
                    b.output(wire);
                }
            }
            let c = b.build();
            for _ in 0..20 {
                let vals: Vec<u64> = (0..m).map(|_| rng.next_below(1 << w)).collect();
                let out = c.evaluate(&pack(&vals, w));
                let got: Vec<u64> = (0..m)
                    .map(|j| (0..w).map(|i| (out[j * w + i] as u64) << i).sum::<u64>())
                    .collect();
                let mut expect = vals.clone();
                expect.sort_unstable();
                assert_eq!(got, expect, "m={m} vals={vals:?}");
            }
        }
    }

    #[test]
    fn median_circuit_matches_reference() {
        let mut rng = XorShiftRng::new(12);
        for m in [1usize, 2, 3, 5, 8] {
            let c = median_circuit(m, 6);
            for _ in 0..10 {
                let vals: Vec<u64> = (0..m).map(|_| rng.next_below(1 << 6)).collect();
                let mut sorted = vals.clone();
                sorted.sort_unstable();
                assert_eq!(
                    c.evaluate_to_u64(&pack(&vals, 6)),
                    sorted[m / 2],
                    "m={m} vals={vals:?}"
                );
            }
        }
    }

    #[test]
    fn share_median_circuit_reconstructs() {
        let mut rng = XorShiftRng::new(13);
        let p = 31u64;
        let m = 5;
        let c = share_median_circuit(m, p);
        let w = bits_for(p - 1);
        for _ in 0..10 {
            let xs: Vec<u64> = (0..m).map(|_| rng.next_below(p)).collect();
            let a: Vec<u64> = (0..m).map(|_| rng.next_below(p)).collect();
            let b: Vec<u64> = xs
                .iter()
                .zip(&a)
                .map(|(&x, &av)| (x + p - av) % p)
                .collect();
            let mut input = pack(&a, w);
            input.extend(pack(&b, w));
            let mut sorted = xs.clone();
            sorted.sort_unstable();
            assert_eq!(c.evaluate_to_u64(&input), sorted[m / 2], "{xs:?}");
        }
    }

    #[test]
    fn sub_words_exhaustive_3bit() {
        let mut b = CircuitBuilder::new();
        let aw = b.inputs(3);
        let bw = b.inputs(3);
        let (d, borrow) = b.sub_words(&aw, &bw);
        for w in d {
            b.output(w);
        }
        b.output(borrow);
        let c = b.build();
        for a in 0u64..8 {
            for bb in 0u64..8 {
                let mut input = pack(&[a], 3);
                input.extend(pack(&[bb], 3));
                let out = c.evaluate(&input);
                let diff: u64 = out[..3]
                    .iter()
                    .enumerate()
                    .map(|(i, &x)| (x as u64) << i)
                    .sum();
                assert_eq!(diff, a.wrapping_sub(bb) & 7, "a={a} b={bb}");
                assert_eq!(out[3], a < bb, "borrow a={a} b={bb}");
            }
        }
    }

    #[test]
    fn add_mod_words_exhaustive() {
        for p in [5u64, 7, 8] {
            let w = bits_for(p - 1);
            let mut b = CircuitBuilder::new();
            let aw = b.inputs(w);
            let bw = b.inputs(w);
            let s = b.add_mod_words(&aw, &bw, p);
            for wire in s {
                b.output(wire);
            }
            let c = b.build();
            for a in 0..p {
                for bb in 0..p {
                    let mut input = pack(&[a], w);
                    input.extend(pack(&[bb], w));
                    assert_eq!(
                        c.evaluate_to_u64(&input),
                        (a + bb) % p,
                        "p={p} a={a} b={bb}"
                    );
                }
            }
        }
    }

    #[test]
    fn share_sum_mod_circuit_random() {
        let mut rng = XorShiftRng::new(7);
        let p = 101u64;
        let m = 4;
        let c = share_sum_mod_circuit(m, p);
        let w = bits_for(p - 1);
        for _ in 0..10 {
            let xs: Vec<u64> = (0..m).map(|_| rng.next_below(p)).collect();
            let a_shares: Vec<u64> = (0..m).map(|_| rng.next_below(p)).collect();
            let b_shares: Vec<u64> = xs
                .iter()
                .zip(&a_shares)
                .map(|(&x, &a)| (x + p - a) % p)
                .collect();
            let mut input = pack(&a_shares, w);
            input.extend(pack(&b_shares, w));
            let expect = xs.iter().sum::<u64>() % p;
            assert_eq!(c.evaluate_to_u64(&input), expect);
        }
    }

    #[test]
    fn share_frequency_circuit_counts() {
        let p = 11u64;
        let m = 3;
        let keyword = 4u64;
        let c = share_frequency_circuit(m, p, keyword);
        let w = bits_for(p - 1);
        let xs = [4u64, 9, 4];
        let a_shares = [3u64, 10, 0];
        let b_shares: Vec<u64> = xs
            .iter()
            .zip(&a_shares)
            .map(|(&x, &a)| (x + p - a) % p)
            .collect();
        let mut input = pack(a_shares.as_ref(), w);
        input.extend(pack(&b_shares, w));
        assert_eq!(c.evaluate_to_u64(&input), 2);
    }
}
