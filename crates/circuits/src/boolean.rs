//! Boolean circuits: the representation of the client's function `f` used by
//! the generic protocols.
//!
//! The paper measures generic-MPC costs in terms of `C_f`, the size of a
//! Boolean circuit computing `f` (Table 1). This module provides a gate DAG
//! with an evaluator and the size/depth metrics those cost formulas refer
//! to; `spfe-mpc` garbles these circuits (Yao), and `builders` constructs
//! the statistical functions of §4 as circuits.

/// Identifier of a wire (the output of a gate or an input).
pub type WireId = usize;

/// A single gate in the DAG. Inputs must precede the gate (wires are
/// topologically ordered by construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// A circuit input wire (with its input index).
    Input(usize),
    /// Constant false/true.
    Const(bool),
    /// XOR of two wires ("free" under garbling).
    Xor(WireId, WireId),
    /// AND of two wires.
    And(WireId, WireId),
    /// OR of two wires.
    Or(WireId, WireId),
    /// NOT of a wire.
    Not(WireId),
}

/// A Boolean circuit: a topologically ordered gate list plus output wires.
///
/// # Examples
///
/// ```
/// use spfe_circuits::boolean::CircuitBuilder;
/// let mut b = CircuitBuilder::new();
/// let x = b.input();
/// let y = b.input();
/// let z = b.and(x, y);
/// b.output(z);
/// let c = b.build();
/// assert_eq!(c.evaluate(&[true, true]), vec![true]);
/// assert_eq!(c.evaluate(&[true, false]), vec![false]);
/// ```
#[derive(Debug, Clone)]
pub struct Circuit {
    gates: Vec<Gate>,
    outputs: Vec<WireId>,
    num_inputs: usize,
}

impl Circuit {
    /// The gates in topological order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The output wires.
    pub fn outputs(&self) -> &[WireId] {
        &self.outputs
    }

    /// Number of input wires.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Total number of wires.
    pub fn num_wires(&self) -> usize {
        self.gates.len()
    }

    /// Total gate count excluding inputs and constants — the paper's `C_f`.
    pub fn size(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| !matches!(g, Gate::Input(_) | Gate::Const(_)))
            .count()
    }

    /// Number of AND/OR gates (the expensive gates under garbling; XOR and
    /// NOT are free).
    pub fn nonlinear_size(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| matches!(g, Gate::And(..) | Gate::Or(..)))
            .count()
    }

    /// Multiplicative depth (longest input→output path counting AND/OR).
    pub fn depth(&self) -> usize {
        let mut depth = vec![0usize; self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            depth[i] = match *g {
                Gate::Input(_) | Gate::Const(_) => 0,
                Gate::Not(a) => depth[a],
                Gate::Xor(a, b) => depth[a].max(depth[b]),
                Gate::And(a, b) | Gate::Or(a, b) => depth[a].max(depth[b]) + 1,
            };
        }
        self.outputs.iter().map(|&o| depth[o]).max().unwrap_or(0)
    }

    /// Evaluates the circuit in the clear.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != num_inputs()`.
    pub fn evaluate(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.num_inputs, "wrong input count");
        let mut vals = vec![false; self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            vals[i] = match *g {
                Gate::Input(idx) => inputs[idx],
                Gate::Const(c) => c,
                Gate::Xor(a, b) => vals[a] ^ vals[b],
                Gate::And(a, b) => vals[a] & vals[b],
                Gate::Or(a, b) => vals[a] | vals[b],
                Gate::Not(a) => !vals[a],
            };
        }
        self.outputs.iter().map(|&o| vals[o]).collect()
    }

    /// Evaluates with `u64`-packed little-endian output interpretation.
    ///
    /// # Panics
    ///
    /// Panics if there are more than 64 outputs or on input-count mismatch.
    pub fn evaluate_to_u64(&self, inputs: &[bool]) -> u64 {
        let out = self.evaluate(inputs);
        assert!(out.len() <= 64);
        out.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
    }
}

/// Incremental builder for [`Circuit`].
#[derive(Debug, Default)]
pub struct CircuitBuilder {
    gates: Vec<Gate>,
    outputs: Vec<WireId>,
    num_inputs: usize,
}

impl CircuitBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, g: Gate) -> WireId {
        self.gates.push(g);
        self.gates.len() - 1
    }

    /// Adds a fresh input wire.
    pub fn input(&mut self) -> WireId {
        let idx = self.num_inputs;
        self.num_inputs += 1;
        self.push(Gate::Input(idx))
    }

    /// Adds `n` fresh input wires.
    pub fn inputs(&mut self, n: usize) -> Vec<WireId> {
        (0..n).map(|_| self.input()).collect()
    }

    /// Adds a constant wire.
    pub fn constant(&mut self, v: bool) -> WireId {
        self.push(Gate::Const(v))
    }

    /// `a XOR b`.
    pub fn xor(&mut self, a: WireId, b: WireId) -> WireId {
        self.check(a);
        self.check(b);
        self.push(Gate::Xor(a, b))
    }

    /// `a AND b`.
    pub fn and(&mut self, a: WireId, b: WireId) -> WireId {
        self.check(a);
        self.check(b);
        self.push(Gate::And(a, b))
    }

    /// `a OR b`.
    pub fn or(&mut self, a: WireId, b: WireId) -> WireId {
        self.check(a);
        self.check(b);
        self.push(Gate::Or(a, b))
    }

    /// `NOT a`.
    pub fn not(&mut self, a: WireId) -> WireId {
        self.check(a);
        self.push(Gate::Not(a))
    }

    /// Marks a wire as an output (order of calls = output order).
    pub fn output(&mut self, w: WireId) {
        self.check(w);
        self.outputs.push(w);
    }

    fn check(&self, w: WireId) {
        assert!(w < self.gates.len(), "wire {w} does not exist yet");
    }

    /// Full adder: returns `(sum, carry)`.
    pub fn full_adder(&mut self, a: WireId, b: WireId, cin: WireId) -> (WireId, WireId) {
        let axb = self.xor(a, b);
        let sum = self.xor(axb, cin);
        let t1 = self.and(axb, cin);
        let t2 = self.and(a, b);
        let carry = self.or(t1, t2);
        (sum, carry)
    }

    /// Ripple-carry addition of two little-endian bit vectors of equal width,
    /// producing `width + 1` bits.
    ///
    /// # Panics
    ///
    /// Panics if widths differ or are zero.
    pub fn add_words(&mut self, a: &[WireId], b: &[WireId]) -> Vec<WireId> {
        assert_eq!(a.len(), b.len());
        assert!(!a.is_empty());
        let mut out = Vec::with_capacity(a.len() + 1);
        let mut carry = self.constant(false);
        for (&x, &y) in a.iter().zip(b) {
            let (s, c) = self.full_adder(x, y, carry);
            out.push(s);
            carry = c;
        }
        out.push(carry);
        out
    }

    /// Ripple-borrow subtraction `a - b` over equal widths, returning
    /// `(difference, borrow_out)`; the difference is correct mod `2^width`
    /// and `borrow_out` is set iff `a < b`.
    ///
    /// # Panics
    ///
    /// Panics if widths differ or are zero.
    pub fn sub_words(&mut self, a: &[WireId], b: &[WireId]) -> (Vec<WireId>, WireId) {
        assert_eq!(a.len(), b.len());
        assert!(!a.is_empty());
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = self.constant(false);
        for (&x, &y) in a.iter().zip(b) {
            let xy = self.xor(x, y);
            let diff = self.xor(xy, borrow);
            // borrow_out = (¬x & y) | (borrow & ¬(x ^ y))
            let nx = self.not(x);
            let t1 = self.and(nx, y);
            let nxy = self.not(xy);
            let t2 = self.and(borrow, nxy);
            borrow = self.or(t1, t2);
            out.push(diff);
        }
        (out, borrow)
    }

    /// Modular addition `(a + b) mod p` for canonical inputs `a, b < p`,
    /// where `p` is a public constant. Output has `a.len()` bits.
    ///
    /// Used to reconstruct `x = a + b (mod p)` from the additive shares
    /// produced by the paper's input-selection protocols before applying
    /// `f` inside the garbled circuit.
    ///
    /// # Panics
    ///
    /// Panics if widths differ, are zero, or `p` does not fit the width.
    pub fn add_mod_words(&mut self, a: &[WireId], b: &[WireId], p: u64) -> Vec<WireId> {
        assert_eq!(a.len(), b.len());
        let w = a.len();
        assert!(w > 0 && w < 63, "width out of range");
        assert!(p >= 1 && p <= (1u64 << w), "modulus does not fit width");
        let s = self.add_words(a, b); // w + 1 bits
        let p_wires: Vec<WireId> = (0..w + 1)
            .map(|i| self.constant((p >> i) & 1 == 1))
            .collect();
        let (d, borrow) = self.sub_words(&s, &p_wires);
        // borrow == 1 ⇔ s < p ⇔ keep s; else keep s − p.
        let sel = self.mux_words(borrow, &d, &s);
        sel[..w].to_vec()
    }

    /// Equality of two equal-width words (single output bit).
    ///
    /// # Panics
    ///
    /// Panics if widths differ or are zero.
    pub fn eq_words(&mut self, a: &[WireId], b: &[WireId]) -> WireId {
        assert_eq!(a.len(), b.len());
        assert!(!a.is_empty());
        let mut acc = None;
        for (&x, &y) in a.iter().zip(b) {
            let x_eq_y = {
                let t = self.xor(x, y);
                self.not(t)
            };
            acc = Some(match acc {
                None => x_eq_y,
                Some(prev) => self.and(prev, x_eq_y),
            });
        }
        acc.unwrap()
    }

    /// `a < b` for equal-width unsigned little-endian words.
    ///
    /// # Panics
    ///
    /// Panics if widths differ or are zero.
    pub fn lt_words(&mut self, a: &[WireId], b: &[WireId]) -> WireId {
        assert_eq!(a.len(), b.len());
        assert!(!a.is_empty());
        // From LSB up: lt = (¬a & b) | ((a == b) & lt_prev)
        let mut lt = self.constant(false);
        for (&x, &y) in a.iter().zip(b) {
            let nx = self.not(x);
            let x_lt_y = self.and(nx, y);
            let t = self.xor(x, y);
            let x_eq_y = self.not(t);
            let keep = self.and(x_eq_y, lt);
            lt = self.or(x_lt_y, keep);
        }
        lt
    }

    /// 2-to-1 multiplexer per bit: `sel ? b : a`.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn mux_words(&mut self, sel: WireId, a: &[WireId], b: &[WireId]) -> Vec<WireId> {
        assert_eq!(a.len(), b.len());
        a.iter()
            .zip(b)
            .map(|(&x, &y)| {
                // x ^ (sel & (x ^ y))
                let d = self.xor(x, y);
                let sd = self.and(sel, d);
                self.xor(x, sd)
            })
            .collect()
    }

    /// Finalizes the circuit.
    ///
    /// # Panics
    ///
    /// Panics if no outputs were marked.
    pub fn build(self) -> Circuit {
        assert!(!self.outputs.is_empty(), "circuit has no outputs");
        Circuit {
            gates: self.gates,
            outputs: self.outputs,
            num_inputs: self.num_inputs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(v: u64, w: usize) -> Vec<bool> {
        (0..w).map(|i| (v >> i) & 1 == 1).collect()
    }

    #[test]
    fn gate_semantics() {
        let mut b = CircuitBuilder::new();
        let x = b.input();
        let y = b.input();
        let and = b.and(x, y);
        let or = b.or(x, y);
        let xor = b.xor(x, y);
        let not = b.not(x);
        for w in [and, or, xor, not] {
            b.output(w);
        }
        let c = b.build();
        for (xv, yv) in [(false, false), (false, true), (true, false), (true, true)] {
            let out = c.evaluate(&[xv, yv]);
            assert_eq!(out, vec![xv & yv, xv | yv, xv ^ yv, !xv]);
        }
    }

    #[test]
    fn adder_exhaustive_4bit() {
        let mut b = CircuitBuilder::new();
        let a_w = b.inputs(4);
        let b_w = b.inputs(4);
        let sum = b.add_words(&a_w, &b_w);
        for w in sum {
            b.output(w);
        }
        let c = b.build();
        for a in 0u64..16 {
            for bb in 0u64..16 {
                let mut input = bits(a, 4);
                input.extend(bits(bb, 4));
                assert_eq!(c.evaluate_to_u64(&input), a + bb, "a={a} b={bb}");
            }
        }
    }

    #[test]
    fn comparator_exhaustive_3bit() {
        let mut b = CircuitBuilder::new();
        let a_w = b.inputs(3);
        let b_w = b.inputs(3);
        let lt = b.lt_words(&a_w, &b_w);
        let eq = b.eq_words(&a_w, &b_w);
        b.output(lt);
        b.output(eq);
        let c = b.build();
        for a in 0u64..8 {
            for bb in 0u64..8 {
                let mut input = bits(a, 3);
                input.extend(bits(bb, 3));
                let out = c.evaluate(&input);
                assert_eq!(out[0], a < bb, "lt a={a} b={bb}");
                assert_eq!(out[1], a == bb, "eq a={a} b={bb}");
            }
        }
    }

    #[test]
    fn mux_selects() {
        let mut b = CircuitBuilder::new();
        let sel = b.input();
        let a_w = b.inputs(2);
        let b_w = b.inputs(2);
        let out = b.mux_words(sel, &a_w, &b_w);
        for w in out {
            b.output(w);
        }
        let c = b.build();
        // sel=0 picks a (=2), sel=1 picks b (=1).
        assert_eq!(c.evaluate_to_u64(&[false, false, true, true, false]), 2);
        assert_eq!(c.evaluate_to_u64(&[true, false, true, true, false]), 1);
    }

    #[test]
    fn metrics() {
        let mut b = CircuitBuilder::new();
        let x = b.input();
        let y = b.input();
        let a = b.and(x, y);
        let n = b.not(a);
        let o = b.xor(n, x);
        b.output(o);
        let c = b.build();
        assert_eq!(c.size(), 3); // and + not + xor
        assert_eq!(c.nonlinear_size(), 1); // and only
        assert_eq!(c.depth(), 1);
        assert_eq!(c.num_inputs(), 2);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn forward_reference_rejected() {
        let mut b = CircuitBuilder::new();
        let x = b.input();
        let _ = b.and(x, 99);
    }

    #[test]
    #[should_panic(expected = "no outputs")]
    fn empty_outputs_rejected() {
        let mut b = CircuitBuilder::new();
        b.input();
        let _ = b.build();
    }
}
