//! Offline stand-in for the [proptest](https://docs.rs/proptest) crate.
//!
//! The SPFE workspace builds in hermetic environments with no access to
//! crates.io, so this crate provides the (small) slice of the proptest API
//! that the workspace's property tests use, with identical spelling:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assume!`,
//! * integer range strategies (`0u64..100`), `any::<T>()`,
//!   `proptest::collection::vec`, `proptest::sample::Index`, and
//!   character-class string strategies (`"[0-9a-f]{1,64}"`),
//! * [`ProptestConfig::with_cases`].
//!
//! Values are drawn from a deterministic splitmix/xorshift PRNG seeded from
//! the test name, so failures reproduce exactly across runs. Unlike real
//! proptest there is no shrinking: a failing case panics with the generated
//! inputs left to the assertion message.

#![forbid(unsafe_code)]

/// Runtime configuration for a [`proptest!`] block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the heavier bignum
        // properties fast while still exploring a meaningful space.
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic PRNG driving all strategies (xorshift64*).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds from a test name (stable across runs and platforms).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform value in `[0, bound)` for 128-bit bounds.
    pub fn below_u128(&mut self, bound: u128) -> u128 {
        if bound <= u64::MAX as u128 {
            return self.below(bound as u64) as u128;
        }
        let zone = u128::MAX - u128::MAX % bound;
        loop {
            let v = (self.next_u64() as u128) << 64 | self.next_u64() as u128;
            if v < zone {
                return v % bound;
            }
        }
    }
}

/// A source of random values of one type — the shim's `Strategy` trait.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// `any::<T>()` marker strategy: the full value range of `T`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Strategy for std::ops::Range<u128> {
    type Value = u128;
    fn generate(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below_u128(self.end - self.start)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below_u128(span) as i128) as $t
            }
        }
    )*};
}
impl_arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Strategy for std::ops::Range<i128> {
    type Value = i128;
    fn generate(&self, rng: &mut TestRng) -> i128 {
        assert!(self.start < self.end, "empty range strategy");
        // Spans up to 2^127 fit in u128.
        let span = self.end.wrapping_sub(self.start) as u128;
        self.start.wrapping_add(rng.below_u128(span) as i128)
    }
}

/// Character-class string strategies: `"[abc0-9]{min,max}"` or `"[..]{n}"`.
///
/// This covers the patterns used in the workspace (hex strings of bounded
/// length); anything fancier panics loudly rather than mis-generating.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, min, max) = parse_char_class(self);
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| chars[rng.below(chars.len() as u64) as usize])
            .collect()
    }
}

/// Parses `[class]{m}` / `[class]{m,n}` into (alphabet, min_len, max_len).
fn parse_char_class(pattern: &str) -> (Vec<char>, usize, usize) {
    fn bad(pattern: &str) -> ! {
        panic!("unsupported string strategy pattern: {pattern:?}")
    }
    let rest = pattern.strip_prefix('[').unwrap_or_else(|| bad(pattern));
    let (class, rest) = rest.split_once(']').unwrap_or_else(|| bad(pattern));
    let rest = rest.strip_prefix('{').unwrap_or_else(|| bad(pattern));
    let counts = rest.strip_suffix('}').unwrap_or_else(|| bad(pattern));
    let (lo, hi) = match counts.split_once(',') {
        Some((a, b)) => (a, b),
        None => (counts, counts),
    };
    let min: usize = lo.trim().parse().unwrap_or_else(|_| bad(pattern));
    let max: usize = hi.trim().parse().unwrap_or_else(|_| bad(pattern));
    assert!(min <= max, "bad repetition in {pattern:?}");
    let mut chars = Vec::new();
    let cs: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < cs.len() {
        if i + 2 < cs.len() && cs[i + 1] == '-' {
            let (a, b) = (cs[i], cs[i + 2]);
            assert!(a <= b, "bad char range in {pattern:?}");
            for c in a..=b {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(cs[i]);
            i += 1;
        }
    }
    assert!(!chars.is_empty(), "empty char class in {pattern:?}");
    (chars, min, max)
}

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($( self.$idx.generate(rng), )+)
            }
        }
    };
}
impl_tuple_strategy!(S0.0);
impl_tuple_strategy!(S0.0, S1.1);
impl_tuple_strategy!(S0.0, S1.1, S2.2);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7);

/// Drives one property test: `cases` deterministic random draws from `s`,
/// each passed to `f`. The `FnMut(S::Value)` bound is what gives the
/// [`proptest!`] macro's tuple-pattern closures their parameter types.
pub fn for_each_case<S: Strategy, F: FnMut(S::Value)>(
    cfg: ProptestConfig,
    name: &str,
    s: S,
    mut f: F,
) {
    let mut rng = TestRng::from_name(name);
    for _case in 0..cfg.cases {
        f(s.generate(&mut rng));
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A strategy producing `Vec`s of values from `element`, with a length
    /// drawn from `len` (half-open, like proptest's `SizeRange`).
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling helpers (`proptest::sample::Index`).
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index "into any collection": resolved against a length at use
    /// time, so one generated value can index collections of any size.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Resolves against a collection of `len` items.
        ///
        /// # Panics
        ///
        /// Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// The glob-import surface used by tests (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a [`proptest!`] case.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a [`proptest!`] case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a [`proptest!`] case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Discards the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[$attr:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            // `prop_assume!` discards a case by returning from the closure;
            // panics propagate and fail the test.
            $crate::for_each_case(
                $cfg,
                concat!(module_path!(), "::", stringify!($name)),
                ($( ($strat), )+),
                |($($arg,)+)| $body,
            );
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = crate::Strategy::generate(&(10u64..20), &mut rng);
            assert!((10..20).contains(&v));
            let s = crate::Strategy::generate(&(-5i64..5), &mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn string_class_patterns() {
        let mut rng = crate::TestRng::from_name("strings");
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[0-9a-f]{1,64}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 64);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_hexdigit() && !c.is_uppercase()));
        }
    }

    #[test]
    fn vec_strategy_lengths() {
        let mut rng = crate::TestRng::from_name("vecs");
        for _ in 0..200 {
            let v = crate::Strategy::generate(&crate::collection::vec(0u64..5, 2..7), &mut rng);
            assert!((2..7).contains(&v.len()));
        }
    }

    #[test]
    fn deterministic_given_name() {
        let mut a = crate::TestRng::from_name("same");
        let mut b = crate::TestRng::from_name("same");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_roundtrip(a in any::<u64>(), b in 1u64..1000) {
            prop_assume!(a != 0);
            prop_assert!(b >= 1);
            prop_assert_eq!(a.wrapping_add(b).wrapping_sub(b), a);
        }
    }
}
