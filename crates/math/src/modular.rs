//! Modular arithmetic over [`Nat`]: gcd, modular inverse, exponentiation,
//! Jacobi symbol, and CRT recombination.

use crate::int::{Int, Sign};
use crate::montgomery::Montgomery;
use crate::nat::Nat;

/// Greatest common divisor (binary GCD).
pub fn gcd(a: &Nat, b: &Nat) -> Nat {
    if a.is_zero() {
        return b.clone();
    }
    if b.is_zero() {
        return a.clone();
    }
    let mut a = a.clone();
    let mut b = b.clone();
    let shift = a.trailing_zeros().min(b.trailing_zeros());
    a = a.shr(a.trailing_zeros());
    loop {
        b = b.shr(b.trailing_zeros());
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        b = b.sub(&a);
        if b.is_zero() {
            return a.shl(shift);
        }
    }
}

/// Extended Euclidean algorithm: returns `(g, s, t)` with `s*a + t*b = g = gcd(a, b)`.
pub fn ext_gcd(a: &Nat, b: &Nat) -> (Nat, Int, Int) {
    let mut r0 = Int::from_nat(a.clone());
    let mut r1 = Int::from_nat(b.clone());
    let mut s0 = Int::one();
    let mut s1 = Int::zero();
    let mut t0 = Int::zero();
    let mut t1 = Int::one();
    while !r1.is_zero() {
        let (q, _) = r0.magnitude().div_rem(r1.magnitude());
        let q = Int::from_nat(q); // r0, r1 stay non-negative throughout
        let r2 = &r0 - &q.mul(&r1);
        let s2 = &s0 - &q.mul(&s1);
        let t2 = &t0 - &q.mul(&t1);
        r0 = r1;
        r1 = r2;
        s0 = s1;
        s1 = s2;
        t0 = t1;
        t1 = t2;
    }
    (r0.magnitude().clone(), s0, t0)
}

/// Modular inverse of `a` modulo `m`, if `gcd(a, m) == 1`.
///
/// # Errors
///
/// Returns `None` when the inverse does not exist.
pub fn mod_inv(a: &Nat, m: &Nat) -> Option<Nat> {
    let a = a.rem(m);
    let (g, s, _) = ext_gcd(&a, m);
    if !g.is_one() {
        return None;
    }
    Some(s.rem_euclid(m))
}

/// `(a + b) mod m` for `a, b < m`.
pub fn mod_add(a: &Nat, b: &Nat, m: &Nat) -> Nat {
    let s = a + b;
    if &s >= m {
        s.sub(m)
    } else {
        s
    }
}

/// `(a - b) mod m` for `a, b < m`.
pub fn mod_sub(a: &Nat, b: &Nat, m: &Nat) -> Nat {
    if a >= b {
        a.sub(b)
    } else {
        m.sub(b).add(a)
    }
}

/// `(a * b) mod m`.
pub fn mod_mul(a: &Nat, b: &Nat, m: &Nat) -> Nat {
    (a * b).rem(m)
}

/// `-a mod m` for `a < m`.
pub fn mod_neg(a: &Nat, m: &Nat) -> Nat {
    if a.is_zero() {
        Nat::zero()
    } else {
        m.sub(a)
    }
}

/// `base^exp mod m`.
///
/// Uses Montgomery exponentiation for odd moduli and plain square-and-multiply
/// otherwise.
///
/// # Panics
///
/// Panics if `m` is zero; `0^0 mod 1 == 0` by convention of residues mod 1.
pub fn mod_pow(base: &Nat, exp: &Nat, m: &Nat) -> Nat {
    assert!(!m.is_zero(), "zero modulus");
    if m.is_one() {
        return Nat::zero();
    }
    if m.is_odd() && m.bit_len() > 64 {
        let mont = Montgomery::new(m.clone());
        return mont.pow(base, exp);
    }
    let mut result = Nat::one();
    let mut b = base.rem(m);
    for i in 0..exp.bit_len() {
        if exp.bit(i) {
            result = mod_mul(&result, &b, m);
        }
        if i + 1 < exp.bit_len() {
            b = mod_mul(&b, &b, m);
        }
    }
    result
}

/// Jacobi symbol `(a/n)` for odd `n > 0`; returns -1, 0 or 1.
///
/// # Panics
///
/// Panics if `n` is even or zero.
pub fn jacobi(a: &Nat, n: &Nat) -> i32 {
    assert!(n.is_odd() && !n.is_zero(), "jacobi requires odd n > 0");
    let mut a = a.rem(n);
    let mut n = n.clone();
    let mut result = 1i32;
    while !a.is_zero() {
        let tz = a.trailing_zeros();
        if tz % 2 == 1 {
            // (2/n) = -1 iff n ≡ 3,5 (mod 8)
            let n_mod8 = n.limbs().first().copied().unwrap_or(0) & 7;
            if n_mod8 == 3 || n_mod8 == 5 {
                result = -result;
            }
        }
        a = a.shr(tz);
        // Quadratic reciprocity: flip if both ≡ 3 (mod 4).
        let a_mod4 = a.limbs().first().copied().unwrap_or(0) & 3;
        let n_mod4 = n.limbs().first().copied().unwrap_or(0) & 3;
        if a_mod4 == 3 && n_mod4 == 3 {
            result = -result;
        }
        std::mem::swap(&mut a, &mut n);
        a = a.rem(&n);
    }
    if n.is_one() {
        result
    } else {
        0
    }
}

/// Chinese-remainder recombination: the unique `x mod (m1*m2)` with
/// `x ≡ r1 (mod m1)` and `x ≡ r2 (mod m2)`, for coprime moduli.
///
/// # Errors
///
/// Returns `None` if `m1` and `m2` are not coprime.
pub fn crt_pair(r1: &Nat, m1: &Nat, r2: &Nat, m2: &Nat) -> Option<Nat> {
    let m1_inv = mod_inv(m1, m2)?;
    // x = r1 + m1 * ((r2 - r1) * m1^{-1} mod m2)
    let diff = mod_sub(&r2.rem(m2), &r1.rem(m2), m2);
    let k = mod_mul(&diff, &m1_inv, m2);
    Some(r1.add(&m1.mul(&k)))
}

/// Integer square root via Newton's method: `floor(sqrt(n))`.
pub fn isqrt(n: &Nat) -> Nat {
    if n.is_zero() {
        return Nat::zero();
    }
    let mut x = Nat::one().shl(n.bit_len().div_ceil(2));
    loop {
        // x' = (x + n/x) / 2
        let next = (&x + &(n / &x)).shr(1);
        if next >= x {
            return x;
        }
        x = next;
    }
}

/// Lifts an `Int` into the residue ring `Z_m` (alias for [`Int::rem_euclid`]).
pub fn int_mod(v: &Int, m: &Nat) -> Nat {
    v.rem_euclid(m)
}

/// Signed representative of `a mod m` in `(-m/2, m/2]`.
pub fn centered(a: &Nat, m: &Nat) -> Int {
    let a = a.rem(m);
    let half = m.shr(1);
    if a > half {
        Int::from_sign_mag(Sign::Negative, m.sub(&a))
    } else {
        Int::from_nat(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn n(v: u64) -> Nat {
        Nat::from(v)
    }

    #[test]
    fn gcd_known() {
        assert_eq!(gcd(&n(48), &n(36)), n(12));
        assert_eq!(gcd(&n(17), &n(13)), n(1));
        assert_eq!(gcd(&Nat::zero(), &n(5)), n(5));
        assert_eq!(gcd(&n(5), &Nat::zero()), n(5));
    }

    #[test]
    fn ext_gcd_bezout() {
        let (g, s, t) = ext_gcd(&n(240), &n(46));
        assert_eq!(g, n(2));
        let lhs = &s.mul(&Int::from(240u64)) + &t.mul(&Int::from(46u64));
        assert_eq!(lhs, Int::from(2u64));
    }

    #[test]
    fn mod_inv_works_and_fails() {
        let inv = mod_inv(&n(3), &n(7)).unwrap();
        assert_eq!(inv, n(5));
        assert!(mod_inv(&n(6), &n(9)).is_none());
    }

    #[test]
    fn mod_pow_known() {
        assert_eq!(mod_pow(&n(2), &n(10), &n(1000)), n(24));
        assert_eq!(mod_pow(&n(5), &Nat::zero(), &n(7)), n(1));
        assert_eq!(mod_pow(&n(0), &n(5), &n(7)), Nat::zero());
    }

    #[test]
    fn mod_pow_fermat_large_odd() {
        // p = 2^127 - 1 (Mersenne prime); a^(p-1) ≡ 1 mod p.
        let p = Nat::from((1u128 << 127) - 1);
        let a = Nat::from(0x1234_5678_9abc_def0u64);
        assert_eq!(mod_pow(&a, &p.sub(&Nat::one()), &p), Nat::one());
    }

    #[test]
    fn jacobi_known() {
        // (1/9) = 1, (2/15) = 1, (7/15) = -1
        assert_eq!(jacobi(&n(1), &n(9)), 1);
        assert_eq!(jacobi(&n(2), &n(15)), 1);
        assert_eq!(jacobi(&n(7), &n(15)), -1);
        assert_eq!(jacobi(&n(15), &n(15)), 0);
    }

    #[test]
    fn jacobi_matches_euler_for_prime() {
        // For prime p, (a/p) ≡ a^((p-1)/2) mod p.
        let p = n(1_000_003);
        for a in [2u64, 3, 5, 10, 999_999] {
            let e = mod_pow(&n(a), &p.sub(&Nat::one()).shr(1), &p);
            let sym = jacobi(&n(a), &p);
            let expect = if e.is_one() {
                1
            } else if e.is_zero() {
                0
            } else {
                -1
            };
            assert_eq!(sym, expect, "a={a}");
        }
    }

    #[test]
    fn crt_recombines() {
        let x = crt_pair(&n(2), &n(3), &n(3), &n(5)).unwrap();
        assert_eq!(x, n(8));
        assert!(crt_pair(&n(1), &n(4), &n(2), &n(6)).is_none());
    }

    #[test]
    fn isqrt_known() {
        assert_eq!(isqrt(&Nat::zero()), Nat::zero());
        assert_eq!(isqrt(&n(1)), n(1));
        assert_eq!(isqrt(&n(15)), n(3));
        assert_eq!(isqrt(&n(16)), n(4));
        assert_eq!(isqrt(&n(17)), n(4));
    }

    #[test]
    fn centered_representative() {
        assert_eq!(centered(&n(6), &n(7)), Int::from(-1i64));
        assert_eq!(centered(&n(3), &n(7)), Int::from(3i64));
    }

    proptest! {
        #[test]
        fn prop_gcd_matches_u128(a in any::<u64>(), b in any::<u64>()) {
            fn g(mut a: u64, mut b: u64) -> u64 {
                while b != 0 { let t = a % b; a = b; b = t; }
                a
            }
            prop_assert_eq!(gcd(&n(a), &n(b)).to_u64().unwrap(), g(a, b));
        }

        #[test]
        fn prop_mod_inv_is_inverse(a in 1u64..u64::MAX, m in 2u64..u64::MAX) {
            if let Some(inv) = mod_inv(&n(a), &n(m)) {
                prop_assert_eq!(mod_mul(&n(a % m), &inv, &n(m)), Nat::one());
            }
        }

        #[test]
        fn prop_mod_pow_matches_naive(b in 0u64..1000, e in 0u64..24, m in 2u64..10_000) {
            let naive = (0..e).fold(1u128, |acc, _| acc * b as u128 % m as u128);
            prop_assert_eq!(mod_pow(&n(b), &n(e), &n(m)).to_u64().unwrap(), naive as u64);
        }

        #[test]
        fn prop_isqrt_invariant(v_hex in "[0-9a-f]{1,40}") {
            let v = Nat::from_hex(&v_hex).unwrap();
            let r = isqrt(&v);
            prop_assert!(r.square() <= v);
            prop_assert!((&r + &Nat::one()).square() > v);
        }

        #[test]
        fn prop_mod_add_sub_cancel(a in any::<u64>(), b in any::<u64>(), m in 2u64..u64::MAX) {
            let (am, bm) = (n(a % m), n(b % m));
            let s = mod_add(&am, &bm, &n(m));
            prop_assert_eq!(mod_sub(&s, &bm, &n(m)), am);
        }
    }
}
