//! Montgomery-form modular arithmetic for odd moduli.
//!
//! [`Montgomery`] precomputes the constants for REDC reduction and provides
//! fast repeated multiplication/exponentiation — the inner loop of Paillier,
//! Goldwasser–Micali, ElGamal and the Naor–Pinkas oblivious transfer.

use crate::nat::Nat;

/// Operand width (limbs) above which [`Montgomery::mont_mul`] falls back
/// to a separate Karatsuba product + REDC instead of the fused
/// schoolbook CIOS pass (matches `Nat::mul`'s Karatsuba threshold).
const CIOS_MAX_LIMBS: usize = 24;

/// Stack scratch size for CIOS working buffers: covers `k + 2` limbs for
/// every CIOS-eligible modulus (`k < CIOS_MAX_LIMBS`), so ladders and
/// product chains can run entirely on the stack.
const CIOS_STACK_LIMBS: usize = CIOS_MAX_LIMBS + 2;

/// Exponent bit-length at or below which [`Montgomery::pow`] uses a plain
/// square-and-multiply ladder: the 4-bit window table costs 14
/// multiplications to build, more than such a short ladder in total.
const SMALL_EXP_BITS: usize = 32;

/// `true` iff little-endian limb slice `a >= b` (missing high limbs are
/// treated as zero).
fn slice_ge(a: &[u64], b: &[u64]) -> bool {
    for i in (0..a.len().max(b.len())).rev() {
        let ai = a.get(i).copied().unwrap_or(0);
        let bi = b.get(i).copied().unwrap_or(0);
        if ai != bi {
            return ai > bi;
        }
    }
    true
}

/// In-place `a -= b`; requires `a >= b` as limb slices.
fn slice_sub(a: &mut [u64], b: &[u64]) {
    let mut borrow = 0u64;
    for (i, ai) in a.iter_mut().enumerate() {
        let bi = b.get(i).copied().unwrap_or(0);
        let (d1, b1) = ai.overflowing_sub(bi);
        let (d2, b2) = d1.overflowing_sub(borrow);
        *ai = d2;
        borrow = b1 as u64 + b2 as u64;
    }
    debug_assert_eq!(borrow, 0);
}

/// A Montgomery reduction context for an odd modulus `n`.
///
/// # Examples
///
/// ```
/// use spfe_math::{Montgomery, Nat};
/// let ctx = Montgomery::new(Nat::from(101u64));
/// let r = ctx.pow(&Nat::from(3u64), &Nat::from(100u64));
/// assert_eq!(r, Nat::one()); // Fermat
/// ```
#[derive(Debug, Clone)]
pub struct Montgomery {
    n: Nat,
    /// Number of limbs in `n`.
    k: usize,
    /// `-n^{-1} mod 2^64`.
    n0_inv: u64,
    /// `R mod n` where `R = 2^(64k)` — the Montgomery form of 1.
    r_mod_n: Nat,
    /// `R^2 mod n` — used to convert into Montgomery form.
    r2_mod_n: Nat,
}

impl Montgomery {
    /// Creates a context for odd modulus `n > 1`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is even or `n <= 1`.
    pub fn new(n: Nat) -> Self {
        assert!(n.is_odd() && !n.is_one(), "Montgomery requires odd n > 1");
        let k = n.limbs().len();
        let n0 = n.limbs()[0];
        // Newton iteration for the inverse of n0 mod 2^64.
        let mut inv = 1u64;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        debug_assert_eq!(n0.wrapping_mul(inv), 1);
        let n0_inv = inv.wrapping_neg();
        let r_mod_n = Nat::one().shl(64 * k).rem(&n);
        let r2_mod_n = Nat::one().shl(128 * k).rem(&n);
        Montgomery {
            n,
            k,
            n0_inv,
            r_mod_n,
            r2_mod_n,
        }
    }

    /// The modulus.
    pub fn modulus(&self) -> &Nat {
        &self.n
    }

    /// REDC: given `t < n * R` as limbs, computes `t * R^{-1} mod n`.
    fn redc(&self, t: &[u64]) -> Nat {
        let k = self.k;
        let n_limbs = self.n.limbs();
        let mut buf = vec![0u64; 2 * k + 1];
        buf[..t.len()].copy_from_slice(t);
        for i in 0..k {
            let m = buf[i].wrapping_mul(self.n0_inv);
            // buf += m * n << (64 * i)
            let mut carry = 0u128;
            for (j, &nj) in n_limbs.iter().enumerate() {
                let cur = buf[i + j] as u128 + m as u128 * nj as u128 + carry;
                buf[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut idx = i + k;
            while carry != 0 {
                let cur = buf[idx] as u128 + carry;
                buf[idx] = cur as u64;
                carry = cur >> 64;
                idx += 1;
            }
        }
        // Shift the high half down and reduce into [0, n) in place: the
        // working buffer doubles as the result, so REDC costs a single
        // allocation.
        buf.copy_within(k.., 0);
        buf.truncate(k + 1);
        if slice_ge(&buf, n_limbs) {
            slice_sub(&mut buf, n_limbs);
        }
        Nat::from_limbs(buf)
    }

    /// Converts `a` into Montgomery form (`a * R mod n`).
    pub fn to_mont(&self, a: &Nat) -> Nat {
        if a >= &self.n {
            self.mont_mul(&a.rem(&self.n), &self.r2_mod_n)
        } else {
            self.mont_mul(a, &self.r2_mod_n)
        }
    }

    /// Converts from Montgomery form back to a plain residue.
    pub fn from_mont(&self, a: &Nat) -> Nat {
        self.redc(a.limbs())
    }

    /// Montgomery product of two Montgomery-form values.
    ///
    /// Reduced operands (`a, b < n` — Montgomery-form values always are)
    /// take a fused CIOS multiply-and-reduce: one interleaved pass over a
    /// single `k + 2`-limb buffer instead of a full double-width product
    /// followed by a separate REDC, cutting both work and heap traffic in
    /// the modexp inner loop. Wide operands (or moduli past `Nat::mul`'s
    /// Karatsuba threshold) fall back to the two-step path.
    pub fn mont_mul(&self, a: &Nat, b: &Nat) -> Nat {
        let k = self.k;
        let (al, bl) = (a.limbs(), b.limbs());
        if k >= CIOS_MAX_LIMBS || al.len() > k || bl.len() > k {
            let prod = a.mul(b);
            return self.redc(prod.limbs());
        }
        let mut t = vec![0u64; k + 2];
        self.cios_into(al, bl, &mut t);
        t.truncate(k + 1);
        Nat::from_limbs(t)
    }

    /// The CIOS kernel behind [`Montgomery::mont_mul`]: computes the
    /// Montgomery product of the reduced values in limb slices `al` and
    /// `bl` (any length; missing high limbs read as zero) into `t`, which
    /// must hold exactly `k + 2` limbs and may contain stale data — it is
    /// zeroed here, which is what lets callers ping-pong two scratch
    /// buffers through an entire exponentiation ladder without touching
    /// the allocator. `t` must not alias the operands.
    fn cios_into(&self, al: &[u64], bl: &[u64], t: &mut [u64]) {
        let k = self.k;
        debug_assert_eq!(t.len(), k + 2);
        let n_limbs = self.n.limbs();
        t.fill(0);
        for i in 0..k {
            let ai = al.get(i).copied().unwrap_or(0);
            // t += a_i * b
            let mut carry = 0u128;
            for (j, tj) in t.iter_mut().enumerate().take(k) {
                let bj = bl.get(j).copied().unwrap_or(0);
                let cur = *tj as u128 + ai as u128 * bj as u128 + carry;
                *tj = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[k] as u128 + carry;
            t[k] = cur as u64;
            t[k + 1] = (cur >> 64) as u64;
            // t = (t + m·n) / 2^64 — the division is the one-limb shift
            // folded into the store index. t stays < 2n throughout, so
            // the top limb addition cannot overflow.
            let m = t[0].wrapping_mul(self.n0_inv);
            let cur = t[0] as u128 + m as u128 * n_limbs[0] as u128;
            debug_assert_eq!(cur as u64, 0);
            let mut carry = cur >> 64;
            for j in 1..k {
                let cur = t[j] as u128 + m as u128 * n_limbs[j] as u128 + carry;
                t[j - 1] = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[k] as u128 + carry;
            t[k - 1] = cur as u64;
            t[k] = t[k + 1] + (cur >> 64) as u64;
            t[k + 1] = 0;
        }
        if slice_ge(&t[..k + 1], n_limbs) {
            slice_sub(&mut t[..k + 1], n_limbs);
        }
    }

    /// Montgomery square.
    pub fn mont_sqr(&self, a: &Nat) -> Nat {
        self.mont_mul(a, a)
    }

    /// `base^exp mod n` using 4-bit windowed Montgomery exponentiation.
    pub fn pow(&self, base: &Nat, exp: &Nat) -> Nat {
        spfe_obs::count(spfe_obs::Op::Modexp, 1);
        if exp.is_zero() {
            return Nat::one().rem(&self.n);
        }
        let base_m = self.to_mont(base);
        let bits = exp.bit_len();
        // Short exponents (homomorphic scalar weights, small plaintexts)
        // use a plain left-to-right ladder over two reused CIOS scratch
        // buffers: the whole ladder costs three allocations, not one per
        // multiplication. See [`SMALL_EXP_BITS`].
        if bits <= SMALL_EXP_BITS && self.k < CIOS_MAX_LIMBS {
            let base_l = base_m.limbs();
            let w = self.k + 2;
            let mut acc_buf = [0u64; CIOS_STACK_LIMBS];
            let mut tmp_buf = [0u64; CIOS_STACK_LIMBS];
            acc_buf[..base_l.len()].copy_from_slice(base_l);
            let (mut acc, mut tmp) = (&mut acc_buf[..w], &mut tmp_buf[..w]);
            for i in (0..bits - 1).rev() {
                self.cios_into(acc, acc, tmp);
                std::mem::swap(&mut acc, &mut tmp);
                if exp.bit(i) {
                    self.cios_into(acc, base_l, tmp);
                    std::mem::swap(&mut acc, &mut tmp);
                }
            }
            // Montgomery product with 1 is exactly `from_mont`.
            self.cios_into(acc, &[1], tmp);
            return Nat::from_limbs(tmp[..self.k + 1].to_vec());
        }
        // Precompute base^0..base^15 in Montgomery form.
        let mut table = Vec::with_capacity(16);
        table.push(self.r_mod_n.clone()); // 1 in Montgomery form
        table.push(base_m.clone());
        for i in 2..16 {
            table.push(self.mont_mul(&table[i - 1], &base_m));
        }
        let top_window = bits.div_ceil(4) - 1;
        let window_at = |w: usize| -> usize {
            let mut v = 0usize;
            for b in 0..4 {
                let i = w * 4 + b;
                if i < bits && exp.bit(i) {
                    v |= 1 << b;
                }
            }
            v
        };
        let mut acc = table[window_at(top_window)].clone();
        for w in (0..top_window).rev() {
            for _ in 0..4 {
                acc = self.mont_sqr(&acc);
            }
            let v = window_at(w);
            if v != 0 {
                acc = self.mont_mul(&acc, &table[v]);
            }
        }
        self.from_mont(&acc)
    }

    /// `(a * b) mod n` for plain (non-Montgomery) residues.
    ///
    /// Reduced operands take two fused Montgomery products —
    /// `(a·b·R⁻¹)·R²·R⁻¹ = a·b mod n` — instead of a double-width
    /// product followed by long division.
    pub fn mul_mod(&self, a: &Nat, b: &Nat) -> Nat {
        if a < &self.n && b < &self.n {
            if self.k < CIOS_MAX_LIMBS {
                // Both passes run on stack scratch; only the final result
                // touches the heap.
                let w = self.k + 2;
                let mut t1 = [0u64; CIOS_STACK_LIMBS];
                let mut t2 = [0u64; CIOS_STACK_LIMBS];
                self.cios_into(a.limbs(), b.limbs(), &mut t1[..w]);
                self.cios_into(&t1[..w], self.r2_mod_n.limbs(), &mut t2[..w]);
                return Nat::from_limbs(t2[..self.k + 1].to_vec());
            }
            return self.mont_mul(&self.mont_mul(a, b), &self.r2_mod_n);
        }
        (a * b).rem(&self.n)
    }
}

/// Window width (bits) of the [`FixedBasePow`] comb tables.
const FB_WINDOW: usize = 4;

/// Precomputed fixed-base exponentiation.
///
/// The SPFE protocols exponentiate the *same* base over and over: ElGamal
/// raises `g` and `y` once per encryption, the Naor–Pinkas OT raises the
/// group generator per transfer, and a server scan multiplies thousands of
/// such terms. [`Montgomery::pow`] pays `bit_len` squarings per call; this
/// comb table pays them **once**, at construction:
///
/// for every 4-bit window `w` of a future exponent it stores
/// `base^(d · 2^(4w))` (in Montgomery form) for each digit `d ∈ [1, 16)`,
/// so [`FixedBasePow::pow`] is a pure product of at most
/// `⌈max_exp_bits / 4⌉` precomputed factors — no squarings at all, a
/// ~4–5× reduction in Montgomery multiplications for typical exponent
/// sizes. Construction costs roughly three plain exponentiations, so the
/// table amortizes after a handful of uses (one ElGamal encryption uses
/// the `g`-table twice and the `y`-table once).
///
/// The table is immutable after construction and `Send + Sync`, so pool
/// workers (see [`crate::par`]) share one table by reference.
///
/// # Examples
///
/// ```
/// use spfe_math::{FixedBasePow, Montgomery, Nat};
/// use std::sync::Arc;
/// let ctx = Arc::new(Montgomery::new(Nat::from(1_000_003u64)));
/// let fb = FixedBasePow::new(Arc::clone(&ctx), &Nat::from(5u64), 64);
/// let e = Nat::from(123_456u64);
/// assert_eq!(fb.pow(&e), ctx.pow(&Nat::from(5u64), &e));
/// ```
#[derive(Debug, Clone)]
pub struct FixedBasePow {
    mont: std::sync::Arc<Montgomery>,
    /// `tables[w][d - 1] = base^(d << (FB_WINDOW * w))` in Montgomery form.
    tables: Vec<Vec<Nat>>,
}

impl FixedBasePow {
    /// Builds the comb table for exponents up to `max_exp_bits` bits.
    ///
    /// Larger exponents still work (see [`FixedBasePow::pow`]) but fall
    /// back to the generic square-and-multiply path.
    pub fn new(mont: std::sync::Arc<Montgomery>, base: &Nat, max_exp_bits: usize) -> Self {
        let windows = max_exp_bits.max(1).div_ceil(FB_WINDOW);
        let mut tables = Vec::with_capacity(windows);
        // cur = base^(2^(FB_WINDOW * w)) in Montgomery form.
        let mut cur = mont.to_mont(base);
        for w in 0..windows {
            let mut tab = Vec::with_capacity((1 << FB_WINDOW) - 1);
            tab.push(cur.clone());
            for _ in 2..1usize << FB_WINDOW {
                let next = mont.mont_mul(tab.last().expect("nonempty"), &cur);
                tab.push(next);
            }
            if w + 1 < windows {
                for _ in 0..FB_WINDOW {
                    cur = mont.mont_sqr(&cur);
                }
            }
            tables.push(tab);
        }
        FixedBasePow { mont, tables }
    }

    /// The modulus this table lives over.
    pub fn modulus(&self) -> &Nat {
        self.mont.modulus()
    }

    /// The largest exponent bit-length served from the table.
    pub fn capacity_bits(&self) -> usize {
        self.tables.len() * FB_WINDOW
    }

    /// `base^exp mod n` — a product of precomputed window entries.
    ///
    /// Exponents longer than [`FixedBasePow::capacity_bits`] are handled
    /// correctly via the generic path (at generic speed).
    pub fn pow(&self, exp: &Nat) -> Nat {
        spfe_obs::count(spfe_obs::Op::FixedBaseExp, 1);
        let bits = exp.bit_len();
        if bits > self.capacity_bits() {
            // Rebuild the base from window 0 (digit 1 entry); the generic
            // path below also counts an `Op::Modexp`.
            let base = self.mont.from_mont(&self.tables[0][0]);
            return self.mont.pow(&base, exp);
        }
        if self.mont.k < CIOS_MAX_LIMBS {
            // Accumulate the window product on stack scratch (as in
            // [`Montgomery::pow`]'s short-exponent ladder): the whole
            // comb walk costs one heap allocation, for the result.
            let width = self.mont.k + 2;
            let mut acc_buf = [0u64; CIOS_STACK_LIMBS];
            let mut tmp_buf = [0u64; CIOS_STACK_LIMBS];
            let one_m = self.mont.r_mod_n.limbs();
            acc_buf[..one_m.len()].copy_from_slice(one_m);
            let (mut acc, mut tmp) = (&mut acc_buf[..width], &mut tmp_buf[..width]);
            for (w, tab) in self.tables.iter().enumerate() {
                let d = self.window_digit(w, bits, exp);
                if d != 0 {
                    self.mont.cios_into(acc, tab[d - 1].limbs(), tmp);
                    std::mem::swap(&mut acc, &mut tmp);
                }
            }
            self.mont.cios_into(acc, &[1], tmp); // from_mont
            return Nat::from_limbs(tmp[..self.mont.k + 1].to_vec());
        }
        let mut acc = self.mont.r_mod_n.clone(); // 1 in Montgomery form
        for (w, tab) in self.tables.iter().enumerate() {
            let d = self.window_digit(w, bits, exp);
            if d != 0 {
                acc = self.mont.mont_mul(&acc, &tab[d - 1]);
            }
        }
        self.mont.from_mont(&acc)
    }

    /// The `w`-th FB_WINDOW-bit digit of `exp` (little-endian windows).
    fn window_digit(&self, w: usize, bits: usize, exp: &Nat) -> usize {
        let mut d = 0usize;
        for b in 0..FB_WINDOW {
            let i = w * FB_WINDOW + b;
            if i < bits && exp.bit(i) {
                d |= 1 << b;
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_mont_form() {
        let ctx = Montgomery::new(Nat::from(1_000_003u64));
        for v in [0u64, 1, 2, 999_999, 1_000_002] {
            let a = Nat::from(v);
            assert_eq!(ctx.from_mont(&ctx.to_mont(&a)), a);
        }
    }

    #[test]
    fn pow_matches_naive_small() {
        let ctx = Montgomery::new(Nat::from(10_007u64));
        let mut expect = 1u64;
        for e in 0..50u64 {
            let got = ctx.pow(&Nat::from(5u64), &Nat::from(e));
            assert_eq!(got.to_u64().unwrap(), expect, "e={e}");
            expect = expect * 5 % 10_007;
        }
    }

    #[test]
    fn pow_large_modulus_fermat() {
        // 2^255 - 19 is prime.
        let p = Nat::one().shl(255).sub(&Nat::from(19u64));
        let ctx = Montgomery::new(p.clone());
        let a = Nat::from_hex("123456789abcdef0fedcba9876543210").unwrap();
        assert_eq!(ctx.pow(&a, &p.sub(&Nat::one())), Nat::one());
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_modulus_rejected() {
        let _ = Montgomery::new(Nat::from(100u64));
    }

    /// Pool workers borrow one shared context/table instead of cloning per
    /// cell — compile-time proof they may.
    #[test]
    fn contexts_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Montgomery>();
        assert_send_sync::<FixedBasePow>();
        assert_send_sync::<&Montgomery>();
        assert_send_sync::<&FixedBasePow>();
    }

    #[test]
    fn fixed_base_matches_generic_pow() {
        use std::sync::Arc;
        let ctx = Arc::new(Montgomery::new(Nat::from(1_000_003u64)));
        let base = Nat::from(12_345u64);
        let fb = FixedBasePow::new(Arc::clone(&ctx), &base, 64);
        for e in [0u64, 1, 2, 15, 16, 17, 255, 1_000_002, u64::MAX] {
            let e = Nat::from(e);
            assert_eq!(fb.pow(&e), ctx.pow(&base, &e), "e={}", e.to_dec());
        }
    }

    #[test]
    fn fixed_base_large_modulus_and_overflow_fallback() {
        use std::sync::Arc;
        let p = Nat::one().shl(255).sub(&Nat::from(19u64));
        let ctx = Arc::new(Montgomery::new(p.clone()));
        let base = Nat::from_hex("123456789abcdef0fedcba9876543210").unwrap();
        // Capacity deliberately below the exponent size: the fallback path
        // must still be correct.
        let fb = FixedBasePow::new(Arc::clone(&ctx), &base, 64);
        let big_e = p.sub(&Nat::one());
        assert!(big_e.bit_len() > fb.capacity_bits());
        assert_eq!(fb.pow(&big_e), Nat::one()); // Fermat
                                                // And a full-capacity table agrees with the generic path.
        let fb = FixedBasePow::new(Arc::clone(&ctx), &base, 255);
        let e = Nat::from_hex("deadbeefcafebabe0123456789abcdef").unwrap();
        assert_eq!(fb.pow(&e), ctx.pow(&base, &e));
    }

    #[test]
    fn fixed_base_zero_exponent_and_base_reduction() {
        use std::sync::Arc;
        let ctx = Arc::new(Montgomery::new(Nat::from(101u64)));
        // Base above the modulus is reduced on entry, like Montgomery::pow.
        let fb = FixedBasePow::new(Arc::clone(&ctx), &Nat::from(305u64), 16);
        assert_eq!(fb.pow(&Nat::zero()), Nat::one());
        assert_eq!(
            fb.pow(&Nat::from(7u64)),
            ctx.pow(&Nat::from(305u64), &Nat::from(7u64))
        );
    }

    proptest! {
        #[test]
        fn prop_fixed_base_matches_generic(b in any::<u64>(), e in any::<u64>(), m in (1u64<<32)..u64::MAX) {
            use std::sync::Arc;
            let m = m | 1;
            let ctx = Arc::new(Montgomery::new(Nat::from(m)));
            let fb = FixedBasePow::new(Arc::clone(&ctx), &Nat::from(b), 64);
            prop_assert_eq!(fb.pow(&Nat::from(e)), ctx.pow(&Nat::from(b), &Nat::from(e)));
        }

        #[test]
        fn prop_pow_matches_generic(b in any::<u64>(), e in any::<u64>(), m in (1u64<<32)..u64::MAX) {
            let m = m | 1; // force odd
            let ctx = Montgomery::new(Nat::from(m));
            let got = ctx.pow(&Nat::from(b), &Nat::from(e));
            // Generic path (m <= 64 bits goes through plain square-and-multiply).
            let expect = modular::mod_pow(&Nat::from(b), &Nat::from(e), &Nat::from(m));
            prop_assert_eq!(got, expect);
        }

        /// Multi-limb moduli drive the fused CIOS path through real carry
        /// chains (the u64-modulus tests above only ever see `k = 1`): it
        /// must agree with the definitional product-then-REDC two-step,
        /// and `mul_mod`'s double-REDC shortcut with plain long division.
        #[test]
        fn prop_cios_matches_two_step_multi_limb(
            m_limbs in proptest::collection::vec(any::<u64>(), 3..7),
            a_limbs in proptest::collection::vec(any::<u64>(), 1..7),
            b_limbs in proptest::collection::vec(any::<u64>(), 1..7),
        ) {
            let mut m_limbs = m_limbs;
            m_limbs[0] |= 1; // odd
            let last = m_limbs.len() - 1;
            m_limbs[last] |= 1 << 63; // keep the top limb populated
            let n = Nat::from_limbs(m_limbs);
            let ctx = Montgomery::new(n.clone());
            let a = Nat::from_limbs(a_limbs).rem(&n);
            let b = Nat::from_limbs(b_limbs).rem(&n);
            prop_assert_eq!(ctx.mont_mul(&a, &b), ctx.redc(a.mul(&b).limbs()));
            prop_assert_eq!(ctx.mul_mod(&a, &b), a.mul(&b).rem(&n));
        }

        #[test]
        fn prop_mont_mul_is_mod_mul(a in any::<u64>(), b in any::<u64>(), m in (1u64<<32)..u64::MAX) {
            let m = m | 1;
            let ctx = Montgomery::new(Nat::from(m));
            let (am, bm) = (ctx.to_mont(&Nat::from(a)), ctx.to_mont(&Nat::from(b)));
            let got = ctx.from_mont(&ctx.mont_mul(&am, &bm));
            prop_assert_eq!(got.to_u64().unwrap(), ((a as u128 % m as u128) * (b as u128 % m as u128) % m as u128) as u64);
        }
    }
}
