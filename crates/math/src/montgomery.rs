//! Montgomery-form modular arithmetic for odd moduli.
//!
//! [`Montgomery`] precomputes the constants for REDC reduction and provides
//! fast repeated multiplication/exponentiation — the inner loop of Paillier,
//! Goldwasser–Micali, ElGamal and the Naor–Pinkas oblivious transfer.

use crate::nat::Nat;

/// A Montgomery reduction context for an odd modulus `n`.
///
/// # Examples
///
/// ```
/// use spfe_math::{Montgomery, Nat};
/// let ctx = Montgomery::new(Nat::from(101u64));
/// let r = ctx.pow(&Nat::from(3u64), &Nat::from(100u64));
/// assert_eq!(r, Nat::one()); // Fermat
/// ```
#[derive(Debug, Clone)]
pub struct Montgomery {
    n: Nat,
    /// Number of limbs in `n`.
    k: usize,
    /// `-n^{-1} mod 2^64`.
    n0_inv: u64,
    /// `R mod n` where `R = 2^(64k)` — the Montgomery form of 1.
    r_mod_n: Nat,
    /// `R^2 mod n` — used to convert into Montgomery form.
    r2_mod_n: Nat,
}

impl Montgomery {
    /// Creates a context for odd modulus `n > 1`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is even or `n <= 1`.
    pub fn new(n: Nat) -> Self {
        assert!(n.is_odd() && !n.is_one(), "Montgomery requires odd n > 1");
        let k = n.limbs().len();
        let n0 = n.limbs()[0];
        // Newton iteration for the inverse of n0 mod 2^64.
        let mut inv = 1u64;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        debug_assert_eq!(n0.wrapping_mul(inv), 1);
        let n0_inv = inv.wrapping_neg();
        let r_mod_n = Nat::one().shl(64 * k).rem(&n);
        let r2_mod_n = Nat::one().shl(128 * k).rem(&n);
        Montgomery {
            n,
            k,
            n0_inv,
            r_mod_n,
            r2_mod_n,
        }
    }

    /// The modulus.
    pub fn modulus(&self) -> &Nat {
        &self.n
    }

    /// REDC: given `t < n * R` as limbs, computes `t * R^{-1} mod n`.
    fn redc(&self, t: &[u64]) -> Nat {
        let k = self.k;
        let n_limbs = self.n.limbs();
        let mut buf = vec![0u64; 2 * k + 1];
        buf[..t.len()].copy_from_slice(t);
        for i in 0..k {
            let m = buf[i].wrapping_mul(self.n0_inv);
            // buf += m * n << (64 * i)
            let mut carry = 0u128;
            for (j, &nj) in n_limbs.iter().enumerate() {
                let cur = buf[i + j] as u128 + m as u128 * nj as u128 + carry;
                buf[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut idx = i + k;
            while carry != 0 {
                let cur = buf[idx] as u128 + carry;
                buf[idx] = cur as u64;
                carry = cur >> 64;
                idx += 1;
            }
        }
        let mut out = Nat::from_limbs(buf[k..].to_vec());
        if out >= self.n {
            out = out.sub(&self.n);
        }
        out
    }

    /// Converts `a` into Montgomery form (`a * R mod n`).
    pub fn to_mont(&self, a: &Nat) -> Nat {
        let a = if a >= &self.n {
            a.rem(&self.n)
        } else {
            a.clone()
        };
        self.mont_mul(&a, &self.r2_mod_n)
    }

    /// Converts from Montgomery form back to a plain residue.
    pub fn from_mont(&self, a: &Nat) -> Nat {
        self.redc(a.limbs())
    }

    /// Montgomery product of two Montgomery-form values.
    pub fn mont_mul(&self, a: &Nat, b: &Nat) -> Nat {
        let prod = a.mul(b);
        self.redc(prod.limbs())
    }

    /// Montgomery square.
    pub fn mont_sqr(&self, a: &Nat) -> Nat {
        self.mont_mul(a, a)
    }

    /// `base^exp mod n` using 4-bit windowed Montgomery exponentiation.
    pub fn pow(&self, base: &Nat, exp: &Nat) -> Nat {
        spfe_obs::count(spfe_obs::Op::Modexp, 1);
        if exp.is_zero() {
            return Nat::one().rem(&self.n);
        }
        let base_m = self.to_mont(base);
        // Precompute base^0..base^15 in Montgomery form.
        let mut table = Vec::with_capacity(16);
        table.push(self.r_mod_n.clone()); // 1 in Montgomery form
        table.push(base_m.clone());
        for i in 2..16 {
            table.push(self.mont_mul(&table[i - 1], &base_m));
        }
        let bits = exp.bit_len();
        let top_window = bits.div_ceil(4) - 1;
        let window_at = |w: usize| -> usize {
            let mut v = 0usize;
            for b in 0..4 {
                let i = w * 4 + b;
                if i < bits && exp.bit(i) {
                    v |= 1 << b;
                }
            }
            v
        };
        let mut acc = table[window_at(top_window)].clone();
        for w in (0..top_window).rev() {
            for _ in 0..4 {
                acc = self.mont_sqr(&acc);
            }
            let v = window_at(w);
            if v != 0 {
                acc = self.mont_mul(&acc, &table[v]);
            }
        }
        self.from_mont(&acc)
    }

    /// `(a * b) mod n` for plain (non-Montgomery) residues.
    pub fn mul_mod(&self, a: &Nat, b: &Nat) -> Nat {
        (a * b).rem(&self.n)
    }
}

/// Window width (bits) of the [`FixedBasePow`] comb tables.
const FB_WINDOW: usize = 4;

/// Precomputed fixed-base exponentiation.
///
/// The SPFE protocols exponentiate the *same* base over and over: ElGamal
/// raises `g` and `y` once per encryption, the Naor–Pinkas OT raises the
/// group generator per transfer, and a server scan multiplies thousands of
/// such terms. [`Montgomery::pow`] pays `bit_len` squarings per call; this
/// comb table pays them **once**, at construction:
///
/// for every 4-bit window `w` of a future exponent it stores
/// `base^(d · 2^(4w))` (in Montgomery form) for each digit `d ∈ [1, 16)`,
/// so [`FixedBasePow::pow`] is a pure product of at most
/// `⌈max_exp_bits / 4⌉` precomputed factors — no squarings at all, a
/// ~4–5× reduction in Montgomery multiplications for typical exponent
/// sizes. Construction costs roughly three plain exponentiations, so the
/// table amortizes after a handful of uses (one ElGamal encryption uses
/// the `g`-table twice and the `y`-table once).
///
/// The table is immutable after construction and `Send + Sync`, so pool
/// workers (see [`crate::par`]) share one table by reference.
///
/// # Examples
///
/// ```
/// use spfe_math::{FixedBasePow, Montgomery, Nat};
/// use std::sync::Arc;
/// let ctx = Arc::new(Montgomery::new(Nat::from(1_000_003u64)));
/// let fb = FixedBasePow::new(Arc::clone(&ctx), &Nat::from(5u64), 64);
/// let e = Nat::from(123_456u64);
/// assert_eq!(fb.pow(&e), ctx.pow(&Nat::from(5u64), &e));
/// ```
#[derive(Debug, Clone)]
pub struct FixedBasePow {
    mont: std::sync::Arc<Montgomery>,
    /// `tables[w][d - 1] = base^(d << (FB_WINDOW * w))` in Montgomery form.
    tables: Vec<Vec<Nat>>,
}

impl FixedBasePow {
    /// Builds the comb table for exponents up to `max_exp_bits` bits.
    ///
    /// Larger exponents still work (see [`FixedBasePow::pow`]) but fall
    /// back to the generic square-and-multiply path.
    pub fn new(mont: std::sync::Arc<Montgomery>, base: &Nat, max_exp_bits: usize) -> Self {
        let windows = max_exp_bits.max(1).div_ceil(FB_WINDOW);
        let mut tables = Vec::with_capacity(windows);
        // cur = base^(2^(FB_WINDOW * w)) in Montgomery form.
        let mut cur = mont.to_mont(base);
        for w in 0..windows {
            let mut tab = Vec::with_capacity((1 << FB_WINDOW) - 1);
            tab.push(cur.clone());
            for _ in 2..1usize << FB_WINDOW {
                let next = mont.mont_mul(tab.last().expect("nonempty"), &cur);
                tab.push(next);
            }
            if w + 1 < windows {
                for _ in 0..FB_WINDOW {
                    cur = mont.mont_sqr(&cur);
                }
            }
            tables.push(tab);
        }
        FixedBasePow { mont, tables }
    }

    /// The modulus this table lives over.
    pub fn modulus(&self) -> &Nat {
        self.mont.modulus()
    }

    /// The largest exponent bit-length served from the table.
    pub fn capacity_bits(&self) -> usize {
        self.tables.len() * FB_WINDOW
    }

    /// `base^exp mod n` — a product of precomputed window entries.
    ///
    /// Exponents longer than [`FixedBasePow::capacity_bits`] are handled
    /// correctly via the generic path (at generic speed).
    pub fn pow(&self, exp: &Nat) -> Nat {
        spfe_obs::count(spfe_obs::Op::FixedBaseExp, 1);
        let bits = exp.bit_len();
        if bits > self.capacity_bits() {
            // Rebuild the base from window 0 (digit 1 entry); the generic
            // path below also counts an `Op::Modexp`.
            let base = self.mont.from_mont(&self.tables[0][0]);
            return self.mont.pow(&base, exp);
        }
        let mut acc = self.mont.r_mod_n.clone(); // 1 in Montgomery form
        for (w, tab) in self.tables.iter().enumerate() {
            let mut d = 0usize;
            for b in 0..FB_WINDOW {
                let i = w * FB_WINDOW + b;
                if i < bits && exp.bit(i) {
                    d |= 1 << b;
                }
            }
            if d != 0 {
                acc = self.mont.mont_mul(&acc, &tab[d - 1]);
            }
        }
        self.mont.from_mont(&acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_mont_form() {
        let ctx = Montgomery::new(Nat::from(1_000_003u64));
        for v in [0u64, 1, 2, 999_999, 1_000_002] {
            let a = Nat::from(v);
            assert_eq!(ctx.from_mont(&ctx.to_mont(&a)), a);
        }
    }

    #[test]
    fn pow_matches_naive_small() {
        let ctx = Montgomery::new(Nat::from(10_007u64));
        let mut expect = 1u64;
        for e in 0..50u64 {
            let got = ctx.pow(&Nat::from(5u64), &Nat::from(e));
            assert_eq!(got.to_u64().unwrap(), expect, "e={e}");
            expect = expect * 5 % 10_007;
        }
    }

    #[test]
    fn pow_large_modulus_fermat() {
        // 2^255 - 19 is prime.
        let p = Nat::one().shl(255).sub(&Nat::from(19u64));
        let ctx = Montgomery::new(p.clone());
        let a = Nat::from_hex("123456789abcdef0fedcba9876543210").unwrap();
        assert_eq!(ctx.pow(&a, &p.sub(&Nat::one())), Nat::one());
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_modulus_rejected() {
        let _ = Montgomery::new(Nat::from(100u64));
    }

    /// Pool workers borrow one shared context/table instead of cloning per
    /// cell — compile-time proof they may.
    #[test]
    fn contexts_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Montgomery>();
        assert_send_sync::<FixedBasePow>();
        assert_send_sync::<&Montgomery>();
        assert_send_sync::<&FixedBasePow>();
    }

    #[test]
    fn fixed_base_matches_generic_pow() {
        use std::sync::Arc;
        let ctx = Arc::new(Montgomery::new(Nat::from(1_000_003u64)));
        let base = Nat::from(12_345u64);
        let fb = FixedBasePow::new(Arc::clone(&ctx), &base, 64);
        for e in [0u64, 1, 2, 15, 16, 17, 255, 1_000_002, u64::MAX] {
            let e = Nat::from(e);
            assert_eq!(fb.pow(&e), ctx.pow(&base, &e), "e={}", e.to_dec());
        }
    }

    #[test]
    fn fixed_base_large_modulus_and_overflow_fallback() {
        use std::sync::Arc;
        let p = Nat::one().shl(255).sub(&Nat::from(19u64));
        let ctx = Arc::new(Montgomery::new(p.clone()));
        let base = Nat::from_hex("123456789abcdef0fedcba9876543210").unwrap();
        // Capacity deliberately below the exponent size: the fallback path
        // must still be correct.
        let fb = FixedBasePow::new(Arc::clone(&ctx), &base, 64);
        let big_e = p.sub(&Nat::one());
        assert!(big_e.bit_len() > fb.capacity_bits());
        assert_eq!(fb.pow(&big_e), Nat::one()); // Fermat
                                                // And a full-capacity table agrees with the generic path.
        let fb = FixedBasePow::new(Arc::clone(&ctx), &base, 255);
        let e = Nat::from_hex("deadbeefcafebabe0123456789abcdef").unwrap();
        assert_eq!(fb.pow(&e), ctx.pow(&base, &e));
    }

    #[test]
    fn fixed_base_zero_exponent_and_base_reduction() {
        use std::sync::Arc;
        let ctx = Arc::new(Montgomery::new(Nat::from(101u64)));
        // Base above the modulus is reduced on entry, like Montgomery::pow.
        let fb = FixedBasePow::new(Arc::clone(&ctx), &Nat::from(305u64), 16);
        assert_eq!(fb.pow(&Nat::zero()), Nat::one());
        assert_eq!(
            fb.pow(&Nat::from(7u64)),
            ctx.pow(&Nat::from(305u64), &Nat::from(7u64))
        );
    }

    proptest! {
        #[test]
        fn prop_fixed_base_matches_generic(b in any::<u64>(), e in any::<u64>(), m in (1u64<<32)..u64::MAX) {
            use std::sync::Arc;
            let m = m | 1;
            let ctx = Arc::new(Montgomery::new(Nat::from(m)));
            let fb = FixedBasePow::new(Arc::clone(&ctx), &Nat::from(b), 64);
            prop_assert_eq!(fb.pow(&Nat::from(e)), ctx.pow(&Nat::from(b), &Nat::from(e)));
        }

        #[test]
        fn prop_pow_matches_generic(b in any::<u64>(), e in any::<u64>(), m in (1u64<<32)..u64::MAX) {
            let m = m | 1; // force odd
            let ctx = Montgomery::new(Nat::from(m));
            let got = ctx.pow(&Nat::from(b), &Nat::from(e));
            // Generic path (m <= 64 bits goes through plain square-and-multiply).
            let expect = modular::mod_pow(&Nat::from(b), &Nat::from(e), &Nat::from(m));
            prop_assert_eq!(got, expect);
        }

        #[test]
        fn prop_mont_mul_is_mod_mul(a in any::<u64>(), b in any::<u64>(), m in (1u64<<32)..u64::MAX) {
            let m = m | 1;
            let ctx = Montgomery::new(Nat::from(m));
            let (am, bm) = (ctx.to_mont(&Nat::from(a)), ctx.to_mont(&Nat::from(b)));
            let got = ctx.from_mont(&ctx.mont_mul(&am, &bm));
            prop_assert_eq!(got.to_u64().unwrap(), ((a as u128 % m as u128) * (b as u128 % m as u128) % m as u128) as u64);
        }
    }
}
