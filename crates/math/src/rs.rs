//! Reed–Solomon decoding (Berlekamp–Welch) for robust interpolation.
//!
//! The §3.1 remark of the paper: "t′ malicious servers can be tolerated by
//! adding 2t′ additional servers". Concretely, the servers' answers lie on
//! a degree-`d` polynomial; with `k ≥ d + 2e + 1` answers of which at most
//! `e` are corrupted, Berlekamp–Welch recovers the polynomial — and hence
//! the client's output `P̂(0)` — despite the faults.

use crate::fp64::Fp64;
use crate::linalg::Mat;
use crate::poly::Poly;

/// Decodes a codeword: given points `(xs[i], ys[i])` of which at most
/// `max_errors` are corrupted, recovers the unique polynomial of degree
/// `≤ degree` through the uncorrupted ones.
///
/// Requires `xs.len() ≥ degree + 2·max_errors + 1`.
///
/// # Errors
///
/// Returns `None` if no degree-`≤ degree` polynomial agrees with at least
/// `xs.len() − max_errors` of the points.
///
/// # Panics
///
/// Panics on length mismatch, duplicate nodes, or too few points.
pub fn berlekamp_welch(
    xs: &[u64],
    ys: &[u64],
    degree: usize,
    max_errors: usize,
    field: Fp64,
) -> Option<Poly> {
    assert_eq!(xs.len(), ys.len(), "length mismatch");
    let k = xs.len();
    assert!(
        k > degree + 2 * max_errors,
        "need at least d + 2e + 1 points"
    );
    let f = field;
    let xs: Vec<u64> = xs.iter().map(|&x| f.from_u64(x)).collect();
    let ys: Vec<u64> = ys.iter().map(|&y| f.from_u64(y)).collect();
    {
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert!(
            sorted.windows(2).all(|w| w[0] != w[1]),
            "duplicate evaluation points"
        );
    }

    // Try decreasing error counts: with fewer actual errors the nominal-e
    // system can be singular, but some e' ≤ e always works.
    for e in (0..=max_errors).rev() {
        if let Some(p) = try_decode(&xs, &ys, degree, e, f) {
            // Verify: agreement with at least k − max_errors points.
            let agree = xs.iter().zip(&ys).filter(|(&x, &y)| p.eval(x) == y).count();
            if agree + max_errors >= k && p.degree().unwrap_or(0) <= degree {
                return Some(p);
            }
        }
    }
    None
}

/// One Berlekamp–Welch attempt at a fixed error count `e`: solve for
/// `E(x)` (monic, degree `e`) and `Q(x)` (degree `≤ d + e`) with
/// `Q(x_i) = y_i·E(x_i)` for all `i`, then `P = Q / E`.
fn try_decode(xs: &[u64], ys: &[u64], d: usize, e: usize, f: Fp64) -> Option<Poly> {
    let k = xs.len();
    let q_terms = d + e + 1;
    let unknowns = q_terms + e; // Q coeffs + non-leading E coeffs
                                // Equations: Q(x_i) − y_i·(E₀ + E₁x_i + … + E_{e−1}x_i^{e−1}) = y_i·x_i^e.
    let mut rows = Vec::with_capacity(k);
    let mut rhs = Vec::with_capacity(k);
    for (&x, &y) in xs.iter().zip(ys) {
        let mut row = Vec::with_capacity(unknowns);
        let mut xp = 1u64;
        for _ in 0..q_terms {
            row.push(xp);
            xp = f.mul(xp, x);
        }
        let mut xp = 1u64;
        for _ in 0..e {
            row.push(f.neg(f.mul(y, xp)));
            xp = f.mul(xp, x);
        }
        // xp is now x^e.
        rhs.push(f.mul(y, xp));
        rows.push(row);
    }
    let a = Mat::from_rows(rows, f);
    let sol = a.solve_any(&rhs)?;
    let q = Poly::from_coeffs(sol[..q_terms].to_vec(), f);
    let mut e_coeffs = sol[q_terms..].to_vec();
    e_coeffs.push(1); // monic leading coefficient
    let e_poly = Poly::from_coeffs(e_coeffs, f);
    let (p, rem) = q.div_rem(&e_poly);
    if rem.degree().is_some() {
        return None; // E does not divide Q — wrong error count
    }
    Some(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rand_src::{RandomSource, XorShiftRng};

    fn field() -> Fp64 {
        Fp64::new(1_000_003).unwrap()
    }

    #[test]
    fn decodes_clean_codeword() {
        let f = field();
        let mut rng = XorShiftRng::new(1);
        let p = Poly::random(3, f, &mut rng);
        let xs: Vec<u64> = (1..=8).collect();
        let ys = p.eval_many(&xs);
        let got = berlekamp_welch(&xs, &ys, 3, 2, f).unwrap();
        assert_eq!(got, p);
    }

    #[test]
    fn corrects_up_to_e_errors() {
        let f = field();
        let mut rng = XorShiftRng::new(2);
        for e in 1..=3usize {
            let d = 2;
            let k = d + 2 * e + 1;
            let p = Poly::random(d, f, &mut rng);
            let xs: Vec<u64> = (1..=k as u64).collect();
            let mut ys = p.eval_many(&xs);
            // Corrupt e positions.
            for j in 0..e {
                ys[j * 2] = f.add(ys[j * 2], 1 + rng.next_below(1000));
            }
            let got = berlekamp_welch(&xs, &ys, d, e, f).unwrap();
            assert_eq!(got, p, "e={e}");
        }
    }

    #[test]
    fn fewer_errors_than_budget_still_decodes() {
        let f = field();
        let mut rng = XorShiftRng::new(3);
        let p = Poly::random(4, f, &mut rng);
        let xs: Vec<u64> = (1..=11).collect(); // d=4, e=3 budget
        let mut ys = p.eval_many(&xs);
        ys[5] = f.add(ys[5], 7); // only one actual error
        let got = berlekamp_welch(&xs, &ys, 4, 3, f).unwrap();
        assert_eq!(got, p);
    }

    #[test]
    fn too_many_errors_detected() {
        let f = field();
        let mut rng = XorShiftRng::new(4);
        let p = Poly::random(2, f, &mut rng);
        let xs: Vec<u64> = (1..=7).collect(); // budget e = 2
        let mut ys = p.eval_many(&xs);
        // Corrupt 3 > e positions with a consistent *different* low-degree
        // pattern is hard; random corruption of 3 points usually yields no
        // valid decoding within budget.
        for j in [0usize, 2, 4] {
            ys[j] = f.add(ys[j], 1 + rng.next_below(500_000));
        }
        if let Some(got) = berlekamp_welch(&xs, &ys, 2, 2, f) {
            // If something decodes it must agree with ≥ 5 of the 7 points.
            let agree = xs
                .iter()
                .zip(&ys)
                .filter(|(&x, &y)| got.eval(x) == y)
                .count();
            assert!(agree >= 5);
        }
    }

    #[test]
    fn zero_error_budget_is_plain_interpolation() {
        let f = field();
        let p = Poly::from_coeffs(vec![5, 0, 7], f);
        let xs: Vec<u64> = (1..=3).collect();
        let ys = p.eval_many(&xs);
        assert_eq!(berlekamp_welch(&xs, &ys, 2, 0, f).unwrap(), p);
    }

    #[test]
    fn random_error_positions_proptest_style() {
        let f = field();
        let mut rng = XorShiftRng::new(6);
        for trial in 0..20 {
            let d = 1 + (trial % 4) as usize;
            let e = 1 + (trial % 3) as usize;
            let k = d + 2 * e + 1;
            let p = Poly::random(d, f, &mut rng);
            let xs: Vec<u64> = (1..=k as u64).collect();
            let mut ys = p.eval_many(&xs);
            // Random distinct error positions.
            let mut positions: Vec<usize> = (0..k).collect();
            for i in 0..e {
                let j = i + (rng.next_below((k - i) as u64) as usize);
                positions.swap(i, j);
            }
            for &pos in &positions[..e] {
                ys[pos] = f.add(ys[pos], 1 + rng.next_below(999));
            }
            assert_eq!(
                berlekamp_welch(&xs, &ys, d, e, f).unwrap(),
                p,
                "trial={trial} d={d} e={e}"
            );
        }
    }
}
