//! # spfe-math
//!
//! Self-contained number theory and algebra for the SPFE workspace — the
//! reproduction of *"Selective Private Function Evaluation with Applications
//! to Private Statistics"* (Canetti, Ishai, Kumar, Reiter, Rubinfeld, Wright;
//! PODC 2001).
//!
//! Provided here, with no external dependencies:
//!
//! * [`Nat`] / [`Int`] — arbitrary-precision integers (Karatsuba, Knuth D);
//! * [`Montgomery`] — fast modular exponentiation for odd moduli;
//! * [`modular`] — gcd / inverses / Jacobi / CRT;
//! * [`prime`] — Miller–Rabin and prime generation;
//! * [`Fp64`], [`Poly`], [`MPoly`] — word-sized prime fields and the
//!   polynomials at the heart of the paper's protocols;
//! * [`RandomSource`] — the workspace-wide randomness abstraction;
//! * [`par`] — the persistent worker pool behind every parallel server
//!   scan and batch encryption (`SPFE_THREADS`, deterministic ordering).
//!
//! # Examples
//!
//! ```
//! use spfe_math::{Fp64, Poly, XorShiftRng};
//! let field = Fp64::at_least(1 << 20);
//! let mut rng = XorShiftRng::new(7);
//! // A degree-2 Shamir sharing of the secret 42, reconstructed at 0.
//! let share_poly = Poly::random_with_constant(42, 2, field, &mut rng);
//! let xs = [1, 2, 3];
//! let ys = share_poly.eval_many(&xs);
//! assert_eq!(Poly::interpolate_at(&xs, &ys, 0, field), 42);
//! ```

// Unsafe is denied crate-wide, not forbidden: the [`par`] engine's slab
// placement and persistent-worker job handoff are the two audited
// exceptions (each site carries a SAFETY comment and is covered by the
// serial-equivalence proptests). Everything else in the crate remains
// unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod fp64;
pub mod int;
pub mod linalg;
pub mod modular;
pub mod montgomery;
pub mod mpoly;
pub mod nat;
pub mod par;
pub mod poly;
pub mod prime;
pub mod rand_src;
pub mod rs;

pub use fp64::Fp64;
pub use int::{Int, Sign};
pub use linalg::Mat;
pub use montgomery::{FixedBasePow, Montgomery};
pub use mpoly::MPoly;
pub use nat::Nat;
pub use poly::Poly;
pub use rand_src::{RandomSource, XorShiftRng};
