//! Primality testing and prime generation.
//!
//! Miller–Rabin with a deterministic base set for 64-bit inputs and random
//! bases above; generation of random primes, Blum primes (`≡ 3 mod 4`), and
//! safe primes for the cryptosystems in `spfe-crypto`.

use crate::modular::mod_pow;
use crate::nat::Nat;
use crate::rand_src::RandomSource;

/// Primes below 1000, used for fast trial division.
const SMALL_PRIMES: [u64; 168] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307,
    311, 313, 317, 331, 337, 347, 349, 353, 359, 367, 373, 379, 383, 389, 397, 401, 409, 419, 421,
    431, 433, 439, 443, 449, 457, 461, 463, 467, 479, 487, 491, 499, 503, 509, 521, 523, 541, 547,
    557, 563, 569, 571, 577, 587, 593, 599, 601, 607, 613, 617, 619, 631, 641, 643, 647, 653, 659,
    661, 673, 677, 683, 691, 701, 709, 719, 727, 733, 739, 743, 751, 757, 761, 769, 773, 787, 797,
    809, 811, 821, 823, 827, 829, 839, 853, 857, 859, 863, 877, 881, 883, 887, 907, 911, 919, 929,
    937, 941, 947, 953, 967, 971, 977, 983, 991, 997,
];

/// Number of random Miller–Rabin rounds for large candidates
/// (error probability ≤ 4^-40).
const MR_ROUNDS: usize = 40;

/// Returns true if `n` is (very probably) prime.
///
/// For `n < 2^64` the test is *deterministic* (fixed base set); above that a
/// trial-division pass is followed by `MR_ROUNDS` random-base Miller–Rabin
/// rounds.
pub fn is_prime<R: RandomSource + ?Sized>(n: &Nat, rng: &mut R) -> bool {
    if let Some(v) = n.to_u64() {
        return is_prime_u64(v);
    }
    for &p in &SMALL_PRIMES {
        let (_, r) = n.div_rem_u64(p);
        if r == 0 {
            return false;
        }
    }
    let n_minus_1 = n.sub(&Nat::one());
    let s = n_minus_1.trailing_zeros();
    let d = n_minus_1.shr(s);
    let two = Nat::from(2u64);
    let bound = n.sub(&Nat::from(3u64));
    for _ in 0..MR_ROUNDS {
        let a = Nat::random_below(rng, &bound).add(&two); // a in [2, n-2]
        if !miller_rabin_round(n, &n_minus_1, &d, s, &a) {
            return false;
        }
    }
    true
}

/// Deterministic primality for `u64` using the 12-base Miller–Rabin set.
pub fn is_prime_u64(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for &p in &SMALL_PRIMES {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let n_nat = Nat::from(n);
    let n_minus_1 = Nat::from(n - 1);
    let s = n_minus_1.trailing_zeros();
    let d = n_minus_1.shr(s);
    // Sufficient deterministic base set for n < 3.3 * 10^24.
    for &a in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if a % n == 0 {
            continue;
        }
        if !miller_rabin_round(&n_nat, &n_minus_1, &d, s, &Nat::from(a)) {
            return false;
        }
    }
    true
}

fn miller_rabin_round(n: &Nat, n_minus_1: &Nat, d: &Nat, s: usize, a: &Nat) -> bool {
    let mut x = mod_pow(a, d, n);
    if x.is_one() || &x == n_minus_1 {
        return true;
    }
    for _ in 1..s {
        x = (&x * &x).rem(n);
        if &x == n_minus_1 {
            return true;
        }
        if x.is_one() {
            return false;
        }
    }
    false
}

/// Generates a random prime with exactly `bits` bits.
///
/// # Panics
///
/// Panics if `bits < 2`.
pub fn gen_prime<R: RandomSource + ?Sized>(bits: usize, rng: &mut R) -> Nat {
    assert!(bits >= 2, "primes need at least 2 bits");
    loop {
        let mut cand = Nat::random_exact_bits(rng, bits);
        cand.set_bit(0, true); // force odd
        if is_prime(&cand, rng) {
            return cand;
        }
    }
}

/// Generates a random *Blum* prime (`p ≡ 3 mod 4`) with exactly `bits` bits.
///
/// Blum primes are required by the Goldwasser–Micali cryptosystem so that
/// `-1` is a quadratic non-residue with Jacobi symbol `+1` modulo `p*q`.
///
/// # Panics
///
/// Panics if `bits < 3`.
pub fn gen_blum_prime<R: RandomSource + ?Sized>(bits: usize, rng: &mut R) -> Nat {
    assert!(bits >= 3);
    loop {
        let mut cand = Nat::random_exact_bits(rng, bits);
        cand.set_bit(0, true);
        cand.set_bit(1, true); // ≡ 3 mod 4
        if is_prime(&cand, rng) {
            return cand;
        }
    }
}

/// Generates a *safe* prime `p = 2q + 1` (with `q` prime) of exactly `bits`
/// bits, returning `(p, q)`. Used for Schnorr-style groups in the OT substrate.
///
/// # Panics
///
/// Panics if `bits < 4`.
pub fn gen_safe_prime<R: RandomSource + ?Sized>(bits: usize, rng: &mut R) -> (Nat, Nat) {
    assert!(bits >= 4);
    loop {
        let q = gen_prime(bits - 1, rng);
        let p = q.shl(1).add(&Nat::one());
        if p.bit_len() == bits && is_prime(&p, rng) {
            return (p, q);
        }
    }
}

/// Smallest prime `>= n` (for building field moduli of a required size).
pub fn next_prime_u64(mut n: u64) -> u64 {
    if n <= 2 {
        return 2;
    }
    if n.is_multiple_of(2) {
        n += 1;
    }
    while !is_prime_u64(n) {
        n = n.checked_add(2).expect("next_prime_u64 overflow");
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rand_src::XorShiftRng;

    #[test]
    fn small_primality() {
        let primes = [2u64, 3, 5, 7, 997, 1_000_003, 4_294_967_311];
        let composites = [
            0u64,
            1,
            4,
            9,
            1_000_001,
            4_294_967_297, /* F5 = 641*6700417 */
        ];
        for p in primes {
            assert!(is_prime_u64(p), "{p} should be prime");
        }
        for c in composites {
            assert!(!is_prime_u64(c), "{c} should be composite");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265] {
            assert!(!is_prime_u64(c), "Carmichael {c} must be rejected");
        }
    }

    #[test]
    fn known_large_prime_accepted() {
        let mut rng = XorShiftRng::new(1);
        // 2^127 - 1 and 2^255 - 19.
        let m127 = Nat::from((1u128 << 127) - 1);
        assert!(is_prime(&m127, &mut rng));
        let p25519 = Nat::one().shl(255).sub(&Nat::from(19u64));
        assert!(is_prime(&p25519, &mut rng));
    }

    #[test]
    fn known_large_composite_rejected() {
        let mut rng = XorShiftRng::new(1);
        // (2^127 - 1) * small prime.
        let c = Nat::from((1u128 << 127) - 1).mul_u64(1_000_003);
        assert!(!is_prime(&c, &mut rng));
        // RSA-style semiprime of two 80-bit primes.
        let p = gen_prime(80, &mut rng);
        let q = gen_prime(80, &mut rng);
        assert!(!is_prime(&(&p * &q), &mut rng));
    }

    #[test]
    fn gen_prime_bit_lengths() {
        let mut rng = XorShiftRng::new(2);
        for bits in [16usize, 32, 64, 128, 256] {
            let p = gen_prime(bits, &mut rng);
            assert_eq!(p.bit_len(), bits);
            assert!(is_prime(&p, &mut rng));
        }
    }

    #[test]
    fn gen_blum_prime_is_3_mod_4() {
        let mut rng = XorShiftRng::new(3);
        for _ in 0..3 {
            let p = gen_blum_prime(64, &mut rng);
            assert_eq!(p.limbs()[0] & 3, 3);
            assert!(is_prime(&p, &mut rng));
        }
    }

    #[test]
    fn gen_safe_prime_structure() {
        let mut rng = XorShiftRng::new(4);
        let (p, q) = gen_safe_prime(48, &mut rng);
        assert_eq!(p, q.shl(1).add(&Nat::one()));
        assert!(is_prime(&p, &mut rng));
        assert!(is_prime(&q, &mut rng));
    }

    #[test]
    fn next_prime_u64_works() {
        assert_eq!(next_prime_u64(0), 2);
        assert_eq!(next_prime_u64(8), 11);
        assert_eq!(next_prime_u64(11), 11);
        assert_eq!(next_prime_u64(1_000_000), 1_000_003);
    }
}
