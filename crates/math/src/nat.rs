//! Arbitrary-precision unsigned integers ("naturals").
//!
//! [`Nat`] is a little-endian vector of 64-bit limbs, always kept *normalized*
//! (no trailing zero limbs; zero is the empty limb vector). It provides the
//! arithmetic needed by the cryptographic substrates of this workspace:
//! addition, subtraction, schoolbook and Karatsuba multiplication, Knuth
//! Algorithm D division, shifts, bit access, and byte/hex conversions.
//!
//! The implementation is deliberately self-contained: the SPFE reproduction
//! does not rely on any external bignum crate (see DESIGN.md §5).

use std::cmp::Ordering;
use std::fmt;

/// Number of bits per limb.
pub const LIMB_BITS: u32 = 64;

/// An arbitrary-precision unsigned integer.
///
/// # Examples
///
/// ```
/// use spfe_math::Nat;
/// let a = Nat::from(10u64);
/// let b = Nat::from(32u64);
/// assert_eq!(&a * &b, Nat::from(320u64));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Nat {
    /// Little-endian limbs; invariant: last limb (if any) is non-zero.
    limbs: Vec<u64>,
}

impl Nat {
    /// The natural number zero.
    pub fn zero() -> Self {
        Nat { limbs: Vec::new() }
    }

    /// The natural number one.
    pub fn one() -> Self {
        Nat { limbs: vec![1] }
    }

    /// Constructs a `Nat` from little-endian limbs, normalizing trailing zeros.
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Nat { limbs }
    }

    /// Borrows the little-endian limbs.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Returns true if this is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns true if this is one.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// Returns true if the number is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Returns true if the number is odd.
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&hi) => {
                (self.limbs.len() - 1) * LIMB_BITS as usize + (64 - hi.leading_zeros() as usize)
            }
        }
    }

    /// Returns bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / LIMB_BITS as usize;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % LIMB_BITS as usize)) & 1 == 1
    }

    /// Sets bit `i` to `value`, growing as needed.
    pub fn set_bit(&mut self, i: usize, value: bool) {
        let limb = i / LIMB_BITS as usize;
        let off = i % LIMB_BITS as usize;
        if value {
            if limb >= self.limbs.len() {
                self.limbs.resize(limb + 1, 0);
            }
            self.limbs[limb] |= 1 << off;
        } else if limb < self.limbs.len() {
            self.limbs[limb] &= !(1 << off);
            self.normalize();
        }
    }

    /// Number of trailing zero bits. Returns 0 for zero.
    pub fn trailing_zeros(&self) -> usize {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return i * LIMB_BITS as usize + l.trailing_zeros() as usize;
            }
        }
        0
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Converts to `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128` if it fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | (self.limbs[1] as u128) << 64),
            _ => None,
        }
    }

    /// Parses from big-endian bytes.
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut iter = bytes.rchunks(8);
        for chunk in &mut iter {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        Nat::from_limbs(limbs)
    }

    /// Serializes to big-endian bytes with no leading zeros (empty for zero).
    pub fn to_be_bytes(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for &l in self.limbs.iter().rev() {
            out.extend_from_slice(&l.to_be_bytes());
        }
        let skip = out.iter().take_while(|&&b| b == 0).count();
        out.drain(..skip);
        out
    }

    /// Serializes to little-endian bytes, zero-padded to `len`.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_le_bytes_padded(&self, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        for (i, &l) in self.limbs.iter().enumerate() {
            for j in 0..8 {
                let idx = i * 8 + j;
                let byte = (l >> (8 * j)) as u8;
                if idx < len {
                    out[idx] = byte;
                } else {
                    assert_eq!(byte, 0, "Nat does not fit in {len} bytes");
                }
            }
        }
        out
    }

    /// Parses from little-endian bytes.
    pub fn from_le_bytes(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        for chunk in bytes.chunks(8) {
            let mut limb = 0u64;
            for (j, &b) in chunk.iter().enumerate() {
                limb |= (b as u64) << (8 * j);
            }
            limbs.push(limb);
        }
        Nat::from_limbs(limbs)
    }

    /// Parses a hexadecimal string (no prefix).
    ///
    /// # Errors
    ///
    /// Returns `None` on any non-hex character or empty input.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.is_empty() {
            return None;
        }
        let mut n = Nat::zero();
        for c in s.chars() {
            let d = c.to_digit(16)? as u64;
            n = n.shl(4);
            n = &n + &Nat::from(d);
        }
        Some(n)
    }

    /// Parses a decimal string.
    ///
    /// # Errors
    ///
    /// Returns `None` on any non-digit character or empty input.
    pub fn from_dec(s: &str) -> Option<Self> {
        if s.is_empty() {
            return None;
        }
        let mut n = Nat::zero();
        for c in s.chars() {
            let d = c.to_digit(10)? as u64;
            n = n.mul_u64(10);
            n = &n + &Nat::from(d);
        }
        Some(n)
    }

    /// Lowercase hexadecimal representation ("0" for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = format!("{:x}", self.limbs.last().unwrap());
        for &l in self.limbs.iter().rev().skip(1) {
            s.push_str(&format!("{l:016x}"));
        }
        s
    }

    /// Decimal representation.
    pub fn to_dec(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut digits = Vec::new();
        let mut cur = self.clone();
        // Divide off nine decimal digits at a time.
        const CHUNK: u64 = 1_000_000_000;
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(CHUNK);
            digits.push(r);
            cur = q;
        }
        let mut s = format!("{}", digits.pop().unwrap());
        while let Some(d) = digits.pop() {
            s.push_str(&format!("{d:09}"));
        }
        s
    }

    /// `self + other`.
    pub fn add(&self, other: &Nat) -> Nat {
        let (longer, shorter) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(longer.len() + 1);
        let mut carry = 0u64;
        for (i, &limb) in longer.iter().enumerate() {
            let b = shorter.get(i).copied().unwrap_or(0);
            let (s1, c1) = limb.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        Nat::from_limbs(out)
    }

    /// `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn sub(&self, other: &Nat) -> Nat {
        assert!(self >= other, "Nat::sub underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        Nat::from_limbs(out)
    }

    /// Saturating subtraction: `max(self - other, 0)`.
    pub fn saturating_sub(&self, other: &Nat) -> Nat {
        if self >= other {
            self.sub(other)
        } else {
            Nat::zero()
        }
    }

    /// `self * other`, dispatching to Karatsuba above a size threshold.
    pub fn mul(&self, other: &Nat) -> Nat {
        if self.is_zero() || other.is_zero() {
            return Nat::zero();
        }
        const KARATSUBA_THRESHOLD: usize = 24;
        if self.limbs.len().min(other.limbs.len()) >= KARATSUBA_THRESHOLD {
            return self.mul_karatsuba(other);
        }
        self.mul_schoolbook(other)
    }

    fn mul_schoolbook(&self, other: &Nat) -> Nat {
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + a as u128 * b as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        Nat::from_limbs(out)
    }

    fn mul_karatsuba(&self, other: &Nat) -> Nat {
        let half = self.limbs.len().max(other.limbs.len()) / 2;
        let (a0, a1) = self.split_at(half);
        let (b0, b1) = other.split_at(half);
        let z0 = a0.mul(&b0);
        let z2 = a1.mul(&b1);
        let z1 = (&a0 + &a1).mul(&(&b0 + &b1)).sub(&z0).sub(&z2);
        // z2 * 2^(128*half) + z1 * 2^(64*half) + z0
        let mut acc = z2.shl_limbs(2 * half);
        acc = &acc + &z1.shl_limbs(half);
        &acc + &z0
    }

    fn split_at(&self, k: usize) -> (Nat, Nat) {
        if k >= self.limbs.len() {
            (self.clone(), Nat::zero())
        } else {
            (
                Nat::from_limbs(self.limbs[..k].to_vec()),
                Nat::from_limbs(self.limbs[k..].to_vec()),
            )
        }
    }

    fn shl_limbs(&self, k: usize) -> Nat {
        if self.is_zero() {
            return Nat::zero();
        }
        let mut limbs = vec![0u64; k];
        limbs.extend_from_slice(&self.limbs);
        Nat::from_limbs(limbs)
    }

    /// `self * m` for a single limb `m`.
    pub fn mul_u64(&self, m: u64) -> Nat {
        if m == 0 || self.is_zero() {
            return Nat::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &a in &self.limbs {
            let cur = a as u128 * m as u128 + carry;
            out.push(cur as u64);
            carry = cur >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        Nat::from_limbs(out)
    }

    /// `self^2` (slightly cheaper call pattern than `mul`).
    pub fn square(&self) -> Nat {
        self.mul(self)
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: usize) -> Nat {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = bits / 64;
        let bit_shift = (bits % 64) as u32;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        Nat::from_limbs(out)
    }

    /// Right shift by `bits`.
    pub fn shr(&self, bits: usize) -> Nat {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return Nat::zero();
        }
        let bit_shift = (bits % 64) as u32;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = if i + 1 < src.len() {
                    src[i + 1] << (64 - bit_shift)
                } else {
                    0
                };
                out.push(lo | hi);
            }
        }
        Nat::from_limbs(out)
    }

    /// Divides by a single limb, returning `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn div_rem_u64(&self, d: u64) -> (Nat, u64) {
        assert_ne!(d, 0, "division by zero");
        let mut rem = 0u128;
        let mut out = vec![0u64; self.limbs.len()];
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            out[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        (Nat::from_limbs(out), rem as u64)
    }

    /// Divides returning `(quotient, remainder)` via Knuth Algorithm D.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &Nat) -> (Nat, Nat) {
        assert!(!divisor.is_zero(), "division by zero");
        match self.cmp(divisor) {
            Ordering::Less => return (Nat::zero(), self.clone()),
            Ordering::Equal => return (Nat::one(), Nat::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(divisor.limbs[0]);
            return (q, Nat::from(r));
        }

        // Normalize: shift both so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let u = self.shl(shift);
        let v = divisor.shl(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;

        let mut un = u.limbs.clone();
        un.push(0); // extra high limb
        let vn = &v.limbs;
        let v_hi = vn[n - 1];
        let v_next = vn[n - 2];

        let mut q = vec![0u64; m + 1];
        for j in (0..=m).rev() {
            // Estimate q_hat = (un[j+n] * B + un[j+n-1]) / v_hi.
            let numer = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
            let mut q_hat = numer / v_hi as u128;
            let mut r_hat = numer % v_hi as u128;
            while q_hat >> 64 != 0
                || q_hat * v_next as u128 > ((r_hat << 64) | un[j + n - 2] as u128)
            {
                q_hat -= 1;
                r_hat += v_hi as u128;
                if r_hat >> 64 != 0 {
                    break;
                }
            }
            // Multiply-subtract: un[j..j+n+1] -= q_hat * vn.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = q_hat * vn[i] as u128 + carry;
                carry = p >> 64;
                let t = un[j + i] as i128 - (p as u64) as i128 + borrow;
                un[j + i] = t as u64;
                borrow = t >> 64; // arithmetic shift: 0 or -1
            }
            let t = un[j + n] as i128 - carry as i128 + borrow;
            un[j + n] = t as u64;
            let neg = t < 0;

            q[j] = q_hat as u64;
            if neg {
                // q_hat was one too large; add back.
                q[j] -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let s = un[j + i] as u128 + vn[i] as u128 + carry;
                    un[j + i] = s as u64;
                    carry = s >> 64;
                }
                un[j + n] = un[j + n].wrapping_add(carry as u64);
            }
        }

        let rem = Nat::from_limbs(un[..n].to_vec()).shr(shift);
        (Nat::from_limbs(q), rem)
    }

    /// `self mod m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn rem(&self, m: &Nat) -> Nat {
        self.div_rem(m).1
    }

    /// Random value in `[0, bound)` using the provided random source.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn random_below<R: crate::rand_src::RandomSource + ?Sized>(
        rng: &mut R,
        bound: &Nat,
    ) -> Nat {
        assert!(!bound.is_zero(), "random_below: zero bound");
        let bits = bound.bit_len();
        loop {
            let cand = Nat::random_bits(rng, bits);
            if &cand < bound {
                return cand;
            }
        }
    }

    /// Uniformly random value with at most `bits` bits.
    pub fn random_bits<R: crate::rand_src::RandomSource + ?Sized>(rng: &mut R, bits: usize) -> Nat {
        let limbs_needed = bits.div_ceil(64);
        let mut limbs = Vec::with_capacity(limbs_needed);
        for _ in 0..limbs_needed {
            limbs.push(rng.next_u64());
        }
        let extra = limbs_needed * 64 - bits;
        if extra > 0 {
            let last = limbs.last_mut().unwrap();
            *last >>= extra;
        }
        Nat::from_limbs(limbs)
    }

    /// Uniformly random value with *exactly* `bits` bits (top bit set).
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0`.
    pub fn random_exact_bits<R: crate::rand_src::RandomSource + ?Sized>(
        rng: &mut R,
        bits: usize,
    ) -> Nat {
        assert!(bits > 0);
        let mut n = Nat::random_bits(rng, bits);
        n.set_bit(bits - 1, true);
        n
    }
}

impl From<u64> for Nat {
    fn from(v: u64) -> Self {
        if v == 0 {
            Nat::zero()
        } else {
            Nat { limbs: vec![v] }
        }
    }
}

impl From<u128> for Nat {
    fn from(v: u128) -> Self {
        Nat::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl From<u32> for Nat {
    fn from(v: u32) -> Self {
        Nat::from(v as u64)
    }
}

impl PartialOrd for Nat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Nat {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {}
            ord => return ord,
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => {}
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl fmt::Debug for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Nat(0x{})", self.to_hex())
    }
}

impl fmt::Display for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_dec())
    }
}

impl fmt::LowerHex for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $inner:ident) => {
        impl std::ops::$trait for &Nat {
            type Output = Nat;
            fn $method(self, rhs: &Nat) -> Nat {
                Nat::$inner(self, rhs)
            }
        }
        impl std::ops::$trait for Nat {
            type Output = Nat;
            fn $method(self, rhs: Nat) -> Nat {
                Nat::$inner(&self, &rhs)
            }
        }
    };
}

impl_binop!(Add, add, add);
impl_binop!(Sub, sub, sub);
impl_binop!(Mul, mul, mul);

impl std::ops::Rem for &Nat {
    type Output = Nat;
    fn rem(self, rhs: &Nat) -> Nat {
        Nat::rem(self, rhs)
    }
}

impl std::ops::Div for &Nat {
    type Output = Nat;
    fn div(self, rhs: &Nat) -> Nat {
        self.div_rem(rhs).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rand_src::XorShiftRng;
    use proptest::prelude::*;

    fn nat(hex: &str) -> Nat {
        Nat::from_hex(hex).unwrap()
    }

    #[test]
    fn zero_and_one() {
        assert!(Nat::zero().is_zero());
        assert!(Nat::one().is_one());
        assert_eq!(Nat::zero().bit_len(), 0);
        assert_eq!(Nat::one().bit_len(), 1);
        assert!(Nat::zero().is_even());
        assert!(Nat::one().is_odd());
    }

    #[test]
    fn add_with_carry_chain() {
        let a = nat("ffffffffffffffffffffffffffffffff");
        let b = Nat::one();
        assert_eq!(&a + &b, nat("100000000000000000000000000000000"));
    }

    #[test]
    fn sub_with_borrow_chain() {
        let a = nat("100000000000000000000000000000000");
        assert_eq!(a.sub(&Nat::one()), nat("ffffffffffffffffffffffffffffffff"));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = Nat::one().sub(&Nat::from(2u64));
    }

    #[test]
    fn mul_known_values() {
        let a = nat("1234567890abcdef");
        let b = nat("fedcba0987654321");
        assert_eq!((&a * &b).to_hex(), "121fa000a3723a57c24a442fe55618cf");
    }

    #[test]
    fn div_rem_small() {
        let a = Nat::from(1000u64);
        let (q, r) = a.div_rem(&Nat::from(7u64));
        assert_eq!(q, Nat::from(142u64));
        assert_eq!(r, Nat::from(6u64));
    }

    #[test]
    fn div_rem_multi_limb_known() {
        let a = nat("deadbeefdeadbeefdeadbeefdeadbeefdeadbeef");
        let b = nat("cafebabecafebabe");
        let (q, r) = a.div_rem(&b);
        assert_eq!(&(&q * &b) + &r, a);
        assert!(r < b);
    }

    #[test]
    fn dec_roundtrip() {
        let s = "123456789012345678901234567890123456789";
        assert_eq!(Nat::from_dec(s).unwrap().to_dec(), s);
    }

    #[test]
    fn hex_roundtrip() {
        let s = "deadbeef0123456789abcdef";
        assert_eq!(Nat::from_hex(s).unwrap().to_hex(), s);
    }

    #[test]
    fn byte_roundtrips() {
        let n = nat("0102030405060708090a0b0c0d0e0f");
        assert_eq!(Nat::from_be_bytes(&n.to_be_bytes()), n);
        assert_eq!(Nat::from_le_bytes(&n.to_le_bytes_padded(20)), n);
    }

    #[test]
    fn shifts() {
        let n = nat("deadbeef");
        assert_eq!(n.shl(64).shr(64), n);
        assert_eq!(n.shl(3), Nat::from(0xdeadbeefu64 * 8));
        assert_eq!(n.shr(100), Nat::zero());
    }

    #[test]
    fn bit_access() {
        let mut n = Nat::zero();
        n.set_bit(130, true);
        assert!(n.bit(130));
        assert_eq!(n.bit_len(), 131);
        n.set_bit(130, false);
        assert!(n.is_zero());
    }

    #[test]
    fn trailing_zeros_multi_limb() {
        let n = Nat::one().shl(129);
        assert_eq!(n.trailing_zeros(), 129);
    }

    #[test]
    fn random_below_is_in_range() {
        let mut rng = XorShiftRng::new(42);
        let bound = nat("ffffffffffffffffffffff");
        for _ in 0..50 {
            assert!(Nat::random_below(&mut rng, &bound) < bound);
        }
    }

    #[test]
    fn random_exact_bits_sets_top_bit() {
        let mut rng = XorShiftRng::new(7);
        for bits in [1, 5, 64, 65, 200] {
            let n = Nat::random_exact_bits(&mut rng, bits);
            assert_eq!(n.bit_len(), bits);
        }
    }

    proptest! {
        #[test]
        fn prop_add_sub_roundtrip(a in any::<u128>(), b in any::<u128>()) {
            let (na, nb) = (Nat::from(a), Nat::from(b));
            let sum = &na + &nb;
            prop_assert_eq!(sum.sub(&nb), na);
        }

        #[test]
        fn prop_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
            let p = Nat::from(a).mul(&Nat::from(b));
            prop_assert_eq!(p, Nat::from(a as u128 * b as u128));
        }

        #[test]
        fn prop_div_rem_invariant(a_hex in "[0-9a-f]{1,80}", b_hex in "[0-9a-f]{1,40}") {
            let a = Nat::from_hex(&a_hex).unwrap();
            let b = Nat::from_hex(&b_hex).unwrap();
            prop_assume!(!b.is_zero());
            let (q, r) = a.div_rem(&b);
            prop_assert!(r < b);
            prop_assert_eq!(&(&q * &b) + &r, a);
        }

        #[test]
        fn prop_karatsuba_matches_schoolbook(a_hex in "[0-9a-f]{400,500}", b_hex in "[0-9a-f]{400,500}") {
            let a = Nat::from_hex(&a_hex).unwrap();
            let b = Nat::from_hex(&b_hex).unwrap();
            prop_assert_eq!(a.mul_karatsuba(&b), a.mul_schoolbook(&b));
        }

        #[test]
        fn prop_shift_roundtrip(a_hex in "[0-9a-f]{1,64}", s in 0usize..200) {
            let a = Nat::from_hex(&a_hex).unwrap();
            prop_assert_eq!(a.shl(s).shr(s), a);
        }

        #[test]
        fn prop_dec_roundtrip(a in any::<u128>()) {
            let n = Nat::from(a);
            prop_assert_eq!(Nat::from_dec(&n.to_dec()).unwrap(), n);
        }
    }
}
