//! Fast dynamic prime fields with word-sized moduli.
//!
//! [`Fp64`] is the workhorse field of the SPFE protocols: the multi-server
//! multivariate-polynomial protocol (§3.1 of the paper), the polynomial-masked
//! input selection (§3.3.2), and the statistical protocols (§4) all compute in
//! `Z_p` for a prime `p` chosen per-instance (e.g. `p > n`, or `p` larger than
//! the maximum possible sum). Elements are plain `u64` residues; all
//! arithmetic routes through `u128` intermediates.

use crate::prime::{is_prime_u64, next_prime_u64};
use crate::rand_src::RandomSource;

/// A prime field `Z_p` with `p < 2^63`.
///
/// # Examples
///
/// ```
/// use spfe_math::Fp64;
/// let f = Fp64::new(101).unwrap();
/// let a = f.from_u64(70);
/// let b = f.from_u64(50);
/// assert_eq!(f.add(a, b), 19);
/// assert_eq!(f.mul(f.inv(a).unwrap(), a), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fp64 {
    p: u64,
}

impl Fp64 {
    /// Creates the field `Z_p`.
    ///
    /// # Errors
    ///
    /// Returns `None` if `p` is not prime or `p >= 2^63`.
    pub fn new(p: u64) -> Option<Self> {
        if p >= 1 << 63 || !is_prime_u64(p) {
            return None;
        }
        Some(Fp64 { p })
    }

    /// The smallest prime field with `p >= min` (and `p < 2^63`).
    ///
    /// # Panics
    ///
    /// Panics if no such prime exists below `2^63`.
    pub fn at_least(min: u64) -> Self {
        let p = next_prime_u64(min.max(2));
        Fp64::new(p).expect("prime exceeds 2^63")
    }

    /// The modulus `p`.
    pub fn modulus(&self) -> u64 {
        self.p
    }

    /// Canonical representative of `v mod p`.
    pub fn from_u64(&self, v: u64) -> u64 {
        v % self.p
    }

    /// Canonical representative of a signed value.
    pub fn from_i64(&self, v: i64) -> u64 {
        (v.rem_euclid(self.p as i64)) as u64
    }

    /// `(a + b) mod p` for canonical `a`, `b`.
    pub fn add(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.p && b < self.p);
        let s = a + b;
        if s >= self.p {
            s - self.p
        } else {
            s
        }
    }

    /// `(a - b) mod p`.
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.p && b < self.p);
        if a >= b {
            a - b
        } else {
            a + self.p - b
        }
    }

    /// `-a mod p`.
    pub fn neg(&self, a: u64) -> u64 {
        debug_assert!(a < self.p);
        if a == 0 {
            0
        } else {
            self.p - a
        }
    }

    /// `(a * b) mod p`.
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.p && b < self.p);
        (a as u128 * b as u128 % self.p as u128) as u64
    }

    /// `a^e mod p`.
    pub fn pow(&self, mut a: u64, mut e: u64) -> u64 {
        debug_assert!(a < self.p);
        let mut acc = 1u64 % self.p;
        while e > 0 {
            if e & 1 == 1 {
                acc = self.mul(acc, a);
            }
            a = self.mul(a, a);
            e >>= 1;
        }
        acc
    }

    /// Multiplicative inverse, if `a != 0`.
    ///
    /// # Errors
    ///
    /// Returns `None` for `a == 0`.
    pub fn inv(&self, a: u64) -> Option<u64> {
        if a == 0 {
            return None;
        }
        // Fermat: a^(p-2).
        Some(self.pow(a, self.p - 2))
    }

    /// Batch inversion (Montgomery's trick): inverts all non-zero inputs with
    /// a single field inversion.
    ///
    /// # Panics
    ///
    /// Panics if any input is zero.
    pub fn batch_inv(&self, values: &[u64]) -> Vec<u64> {
        if values.is_empty() {
            return Vec::new();
        }
        let mut prefix = Vec::with_capacity(values.len());
        let mut acc = 1u64;
        for &v in values {
            assert_ne!(v, 0, "batch_inv of zero");
            prefix.push(acc);
            acc = self.mul(acc, v);
        }
        let mut inv_acc = self.inv(acc).expect("product non-zero");
        let mut out = vec![0u64; values.len()];
        for i in (0..values.len()).rev() {
            out[i] = self.mul(inv_acc, prefix[i]);
            inv_acc = self.mul(inv_acc, values[i]);
        }
        out
    }

    /// `a / b mod p`.
    ///
    /// # Errors
    ///
    /// Returns `None` for `b == 0`.
    pub fn div(&self, a: u64, b: u64) -> Option<u64> {
        Some(self.mul(a, self.inv(b)?))
    }

    /// Uniformly random field element.
    pub fn random<R: RandomSource + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_below(self.p)
    }

    /// Uniformly random non-zero field element.
    pub fn random_nonzero<R: RandomSource + ?Sized>(&self, rng: &mut R) -> u64 {
        1 + rng.next_below(self.p - 1)
    }

    /// Sum of a slice of canonical elements.
    pub fn sum(&self, values: &[u64]) -> u64 {
        values.iter().fold(0, |acc, &v| self.add(acc, v))
    }

    /// Inner product `Σ a_i · b_i mod p`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn inner_product(&self, a: &[u64], b: &[u64]) -> u64 {
        assert_eq!(a.len(), b.len());
        a.iter()
            .zip(b)
            .fold(0, |acc, (&x, &y)| self.add(acc, self.mul(x, y)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rand_src::XorShiftRng;
    use proptest::prelude::*;

    #[test]
    fn construction() {
        assert!(Fp64::new(101).is_some());
        assert!(Fp64::new(100).is_none());
        assert!(Fp64::new(u64::MAX).is_none());
        assert_eq!(Fp64::at_least(1000).modulus(), 1009);
    }

    #[test]
    fn field_axioms_small() {
        let f = Fp64::new(7).unwrap();
        for a in 0..7 {
            for b in 0..7 {
                assert_eq!(f.add(a, b), (a + b) % 7);
                assert_eq!(f.sub(f.add(a, b), b), a);
                assert_eq!(f.mul(a, b), a * b % 7);
            }
            if a != 0 {
                assert_eq!(f.mul(a, f.inv(a).unwrap()), 1);
            }
        }
    }

    #[test]
    fn batch_inv_matches_single() {
        let f = Fp64::at_least(1 << 61);
        let vals: Vec<u64> = (1..50u64).map(|i| i * 12_345 + 7).collect();
        let batch = f.batch_inv(&vals);
        for (v, inv) in vals.iter().zip(&batch) {
            assert_eq!(*inv, f.inv(*v).unwrap());
        }
        assert!(f.batch_inv(&[]).is_empty());
    }

    #[test]
    fn inner_product_known() {
        let f = Fp64::new(11).unwrap();
        assert_eq!(f.inner_product(&[1, 2, 3], &[4, 5, 6]), (4 + 10 + 18) % 11);
    }

    #[test]
    fn random_nonzero_never_zero() {
        let f = Fp64::new(3).unwrap();
        let mut rng = XorShiftRng::new(9);
        for _ in 0..100 {
            assert_ne!(f.random_nonzero(&mut rng), 0);
        }
    }

    proptest! {
        #[test]
        fn prop_axioms_large_modulus(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
            let f = Fp64::at_least((1 << 62) + 1);
            let (a, b, c) = (f.from_u64(a), f.from_u64(b), f.from_u64(c));
            // Associativity + commutativity + distributivity.
            prop_assert_eq!(f.add(f.add(a, b), c), f.add(a, f.add(b, c)));
            prop_assert_eq!(f.mul(a, b), f.mul(b, a));
            prop_assert_eq!(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
            // Inverses.
            prop_assert_eq!(f.add(a, f.neg(a)), 0);
            if a != 0 {
                prop_assert_eq!(f.mul(a, f.inv(a).unwrap()), 1);
            }
        }

        #[test]
        fn prop_pow_matches_repeated_mul(a in any::<u64>(), e in 0u64..64) {
            let f = Fp64::at_least(1 << 32);
            let a = f.from_u64(a);
            let mut expect = 1u64;
            for _ in 0..e { expect = f.mul(expect, a); }
            prop_assert_eq!(f.pow(a, e), expect);
        }

        #[test]
        fn prop_from_i64_consistent(v in any::<i64>()) {
            let f = Fp64::new(1_000_003).unwrap();
            let r = f.from_i64(v);
            prop_assert!(r < f.modulus());
            prop_assert_eq!(f.from_i64(v + 1_000_003), r);
        }
    }
}
