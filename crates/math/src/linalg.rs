//! Dense matrices over [`Fp64`].
//!
//! Used by the branching-program arithmetization (path counting via the
//! determinant lemma) and the Ishai–Kushilevitz perfect PSM protocol
//! (randomizing a matrix by unit-triangular multipliers).

use crate::fp64::Fp64;
use crate::rand_src::RandomSource;

/// A dense `rows × cols` matrix over a prime field.
///
/// # Examples
///
/// ```
/// use spfe_math::{Fp64, Mat};
/// let f = Fp64::new(101).unwrap();
/// let id = Mat::identity(3, f);
/// let m = Mat::from_rows(vec![vec![1, 2, 0], vec![0, 1, 0], vec![5, 0, 1]], f);
/// assert_eq!(id.mul(&m), m);
/// assert_eq!(m.det(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    /// Row-major entries, canonical residues.
    data: Vec<u64>,
    field: Fp64,
}

impl Mat {
    /// The zero matrix.
    pub fn zero(rows: usize, cols: usize, field: Fp64) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0; rows * cols],
            field,
        }
    }

    /// The identity matrix.
    pub fn identity(n: usize, field: Fp64) -> Self {
        let mut m = Mat::zero(n, n, field);
        for i in 0..n {
            m.set(i, i, 1);
        }
        m
    }

    /// Builds from rows (entries reduced mod p).
    ///
    /// # Panics
    ///
    /// Panics if rows are ragged or empty.
    pub fn from_rows(rows: Vec<Vec<u64>>, field: Fp64) -> Self {
        assert!(!rows.is_empty());
        let cols = rows[0].len();
        assert!(cols > 0);
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in &rows {
            assert_eq!(r.len(), cols, "ragged matrix rows");
            data.extend(r.iter().map(|&v| field.from_u64(v)));
        }
        Mat {
            rows: rows.len(),
            cols,
            data,
            field,
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.cols
    }

    /// The field.
    pub fn field(&self) -> Fp64 {
        self.field
    }

    /// Entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn get(&self, r: usize, c: usize) -> u64 {
        assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets entry `(r, c)` (reduced mod p).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn set(&mut self, r: usize, c: usize, v: u64) {
        assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = self.field.from_u64(v);
    }

    /// Flat row-major entries.
    pub fn entries(&self) -> &[u64] {
        &self.data
    }

    /// Matrix addition.
    ///
    /// # Panics
    ///
    /// Panics on shape or field mismatch.
    pub fn add(&self, other: &Mat) -> Mat {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        assert_eq!(self.field, other.field);
        let f = self.field;
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f.add(a, b))
            .collect();
        Mat { data, ..*self }
    }

    /// Scalar multiplication.
    pub fn scale(&self, c: u64) -> Mat {
        let f = self.field;
        let c = f.from_u64(c);
        let data = self.data.iter().map(|&a| f.mul(a, c)).collect();
        Mat { data, ..*self }
    }

    /// Matrix multiplication.
    ///
    /// # Panics
    ///
    /// Panics on dimension or field mismatch.
    pub fn mul(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.rows, "dimension mismatch");
        assert_eq!(self.field, other.field);
        let f = self.field;
        let mut out = Mat::zero(self.rows, other.cols, f);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0 {
                    continue;
                }
                for j in 0..other.cols {
                    let idx = i * other.cols + j;
                    out.data[idx] = f.add(out.data[idx], f.mul(a, other.data[k * other.cols + j]));
                }
            }
        }
        out
    }

    /// Determinant via Gaussian elimination.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn det(&self) -> u64 {
        assert_eq!(self.rows, self.cols, "determinant of non-square matrix");
        let f = self.field;
        let n = self.rows;
        let mut a = self.data.clone();
        let mut det = 1u64;
        for col in 0..n {
            // Find pivot.
            let pivot_row = (col..n).find(|&r| a[r * n + col] != 0);
            let Some(pr) = pivot_row else {
                return 0;
            };
            if pr != col {
                for c in 0..n {
                    a.swap(pr * n + c, col * n + c);
                }
                det = f.neg(det);
            }
            let pivot = a[col * n + col];
            det = f.mul(det, pivot);
            let inv = f.inv(pivot).expect("pivot non-zero");
            for r in col + 1..n {
                let factor = f.mul(a[r * n + col], inv);
                if factor == 0 {
                    continue;
                }
                for c in col..n {
                    let sub = f.mul(factor, a[col * n + c]);
                    a[r * n + c] = f.sub(a[r * n + c], sub);
                }
            }
        }
        det
    }

    /// Solves `A·x = b` by Gaussian elimination, returning *some* solution
    /// (free variables set to 0) or `None` if the system is inconsistent.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != rows`.
    pub fn solve_any(&self, b: &[u64]) -> Option<Vec<u64>> {
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        let f = self.field;
        let (rows, cols) = (self.rows, self.cols);
        // Augmented matrix.
        let mut a: Vec<u64> = Vec::with_capacity(rows * (cols + 1));
        for (r, &rhs) in b.iter().enumerate() {
            a.extend_from_slice(&self.data[r * cols..(r + 1) * cols]);
            a.push(f.from_u64(rhs));
        }
        let w = cols + 1;
        let mut pivot_cols = Vec::new();
        let mut rank = 0usize;
        for col in 0..cols {
            let Some(pr) = (rank..rows).find(|&r| a[r * w + col] != 0) else {
                continue;
            };
            for c in 0..w {
                a.swap(pr * w + c, rank * w + c);
            }
            let inv = f.inv(a[rank * w + col]).expect("pivot");
            for c in col..w {
                a[rank * w + c] = f.mul(a[rank * w + c], inv);
            }
            for r in 0..rows {
                if r != rank && a[r * w + col] != 0 {
                    let factor = a[r * w + col];
                    for c in col..w {
                        let sub = f.mul(factor, a[rank * w + c]);
                        a[r * w + c] = f.sub(a[r * w + c], sub);
                    }
                }
            }
            pivot_cols.push(col);
            rank += 1;
            if rank == rows {
                break;
            }
        }
        // Inconsistency check: zero row with non-zero rhs.
        for r in rank..rows {
            if a[r * w + cols] != 0 {
                return None;
            }
        }
        let mut x = vec![0u64; cols];
        for (r, &pc) in pivot_cols.iter().enumerate() {
            x[pc] = a[r * w + cols];
        }
        Some(x)
    }

    /// A uniformly random unit upper-triangular matrix (1s on the diagonal,
    /// free entries above) — one of the two randomizer groups of the
    /// Ishai–Kushilevitz PSM.
    pub fn random_unit_upper<R: RandomSource + ?Sized>(n: usize, field: Fp64, rng: &mut R) -> Mat {
        let mut m = Mat::identity(n, field);
        for r in 0..n {
            for c in r + 1..n {
                m.set(r, c, field.random(rng));
            }
        }
        m
    }

    /// A random matrix of the form `I + (free entries in the last column,
    /// above the diagonal)` — the second IK randomizer group.
    pub fn random_last_column<R: RandomSource + ?Sized>(n: usize, field: Fp64, rng: &mut R) -> Mat {
        let mut m = Mat::identity(n, field);
        for r in 0..n.saturating_sub(1) {
            m.set(r, n - 1, field.random(rng));
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rand_src::XorShiftRng;

    fn field() -> Fp64 {
        Fp64::new(1_000_003).unwrap()
    }

    #[test]
    fn identity_laws() {
        let f = field();
        let m = Mat::from_rows(vec![vec![1, 2], vec![3, 4]], f);
        let id = Mat::identity(2, f);
        assert_eq!(m.mul(&id), m);
        assert_eq!(id.mul(&m), m);
        assert_eq!(m.add(&Mat::zero(2, 2, f)), m);
    }

    #[test]
    fn det_known_values() {
        let f = field();
        let m = Mat::from_rows(vec![vec![1, 2], vec![3, 4]], f);
        assert_eq!(m.det(), f.from_i64(-2));
        let singular = Mat::from_rows(vec![vec![1, 2], vec![2, 4]], f);
        assert_eq!(singular.det(), 0);
        assert_eq!(Mat::identity(5, f).det(), 1);
    }

    #[test]
    fn det_multiplicative() {
        let f = field();
        let mut rng = XorShiftRng::new(31);
        for _ in 0..10 {
            let rand_mat = |rng: &mut XorShiftRng| {
                let rows = (0..3)
                    .map(|_| (0..3).map(|_| f.random(rng)).collect())
                    .collect();
                Mat::from_rows(rows, f)
            };
            let (a, b) = (rand_mat(&mut rng), rand_mat(&mut rng));
            assert_eq!(a.mul(&b).det(), f.mul(a.det(), b.det()));
        }
    }

    #[test]
    fn det_needs_pivoting() {
        // Leading zero forces a row swap (det sign flip).
        let f = field();
        let m = Mat::from_rows(vec![vec![0, 1], vec![1, 0]], f);
        assert_eq!(m.det(), f.from_i64(-1));
    }

    #[test]
    fn randomizers_have_det_one() {
        let f = field();
        let mut rng = XorShiftRng::new(32);
        for _ in 0..5 {
            assert_eq!(Mat::random_unit_upper(4, f, &mut rng).det(), 1);
            assert_eq!(Mat::random_last_column(4, f, &mut rng).det(), 1);
        }
    }

    #[test]
    fn mul_rectangular() {
        let f = field();
        let a = Mat::from_rows(vec![vec![1, 2, 3]], f); // 1×3
        let b = Mat::from_rows(vec![vec![4], vec![5], vec![6]], f); // 3×1
        let prod = a.mul(&b);
        assert_eq!((prod.num_rows(), prod.num_cols()), (1, 1));
        assert_eq!(prod.get(0, 0), 32);
    }
}
