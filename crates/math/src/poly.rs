//! Dense univariate polynomials over [`Fp64`].
//!
//! These are the core algebraic objects of the paper's protocols: random
//! low-degree curves and answer interpolation in the multi-server protocol
//! (§3.1, Lemma 1), Shamir-style blinding polynomials `R` with `R(0) = 0`
//! (symmetric privacy), and the `m`-wise independent masking family
//! `{P_s}` = degree-`(m-1)` polynomials of §3.3.2.

use crate::fp64::Fp64;
use crate::rand_src::RandomSource;

/// A polynomial `c_0 + c_1 y + … + c_d y^d` over a prime field.
///
/// Coefficients are canonical `Fp64` residues; the representation is kept
/// normalized (no trailing zero coefficients; the zero polynomial has an
/// empty coefficient vector and degree `None`).
///
/// # Examples
///
/// ```
/// use spfe_math::{Fp64, Poly};
/// let f = Fp64::new(97).unwrap();
/// let p = Poly::from_coeffs(vec![1, 2, 3], f); // 1 + 2y + 3y²
/// assert_eq!(p.eval(2), (1 + 4 + 12) % 97);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Poly {
    coeffs: Vec<u64>,
    field: Fp64,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero(field: Fp64) -> Self {
        Poly {
            coeffs: Vec::new(),
            field,
        }
    }

    /// Builds from low-to-high coefficients (reduced mod p, normalized).
    pub fn from_coeffs(coeffs: Vec<u64>, field: Fp64) -> Self {
        let mut coeffs: Vec<u64> = coeffs.into_iter().map(|c| field.from_u64(c)).collect();
        while coeffs.last() == Some(&0) {
            coeffs.pop();
        }
        Poly { coeffs, field }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: u64, field: Fp64) -> Self {
        Poly::from_coeffs(vec![c], field)
    }

    /// A uniformly random polynomial of degree at most `deg`.
    pub fn random<R: RandomSource + ?Sized>(deg: usize, field: Fp64, rng: &mut R) -> Self {
        let coeffs = (0..=deg).map(|_| field.random(rng)).collect();
        Poly::from_coeffs(coeffs, field)
    }

    /// A random polynomial of degree at most `deg` with a prescribed value at
    /// zero (the Shamir sharing polynomial; with `value = 0` this is the
    /// blinding polynomial `R` of §3.1).
    pub fn random_with_constant<R: RandomSource + ?Sized>(
        value: u64,
        deg: usize,
        field: Fp64,
        rng: &mut R,
    ) -> Self {
        let mut coeffs: Vec<u64> = (0..=deg).map(|_| field.random(rng)).collect();
        coeffs[0] = field.from_u64(value);
        Poly::from_coeffs(coeffs, field)
    }

    /// The field this polynomial lives over.
    pub fn field(&self) -> Fp64 {
        self.field
    }

    /// Degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// Low-to-high coefficients (normalized).
    pub fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }

    /// Evaluation by Horner's rule.
    pub fn eval(&self, y: u64) -> u64 {
        let f = &self.field;
        let y = f.from_u64(y);
        self.coeffs
            .iter()
            .rev()
            .fold(0u64, |acc, &c| f.add(f.mul(acc, y), c))
    }

    /// Evaluates at many points.
    pub fn eval_many(&self, ys: &[u64]) -> Vec<u64> {
        ys.iter().map(|&y| self.eval(y)).collect()
    }

    /// Polynomial addition.
    ///
    /// # Panics
    ///
    /// Panics if fields differ.
    pub fn add(&self, other: &Poly) -> Poly {
        assert_eq!(self.field, other.field, "field mismatch");
        let f = &self.field;
        let n = self.coeffs.len().max(other.coeffs.len());
        let coeffs = (0..n)
            .map(|i| {
                f.add(
                    self.coeffs.get(i).copied().unwrap_or(0),
                    other.coeffs.get(i).copied().unwrap_or(0),
                )
            })
            .collect();
        Poly::from_coeffs(coeffs, self.field)
    }

    /// Polynomial subtraction.
    ///
    /// # Panics
    ///
    /// Panics if fields differ.
    pub fn sub(&self, other: &Poly) -> Poly {
        assert_eq!(self.field, other.field, "field mismatch");
        let f = &self.field;
        let n = self.coeffs.len().max(other.coeffs.len());
        let coeffs = (0..n)
            .map(|i| {
                f.sub(
                    self.coeffs.get(i).copied().unwrap_or(0),
                    other.coeffs.get(i).copied().unwrap_or(0),
                )
            })
            .collect();
        Poly::from_coeffs(coeffs, self.field)
    }

    /// Schoolbook polynomial multiplication.
    ///
    /// # Panics
    ///
    /// Panics if fields differ.
    pub fn mul(&self, other: &Poly) -> Poly {
        assert_eq!(self.field, other.field, "field mismatch");
        if self.coeffs.is_empty() || other.coeffs.is_empty() {
            return Poly::zero(self.field);
        }
        let f = &self.field;
        let mut coeffs = vec![0u64; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            for (j, &b) in other.coeffs.iter().enumerate() {
                coeffs[i + j] = f.add(coeffs[i + j], f.mul(a, b));
            }
        }
        Poly::from_coeffs(coeffs, self.field)
    }

    /// Scalar multiplication.
    pub fn scale(&self, c: u64) -> Poly {
        let f = &self.field;
        let c = f.from_u64(c);
        Poly::from_coeffs(
            self.coeffs.iter().map(|&a| f.mul(a, c)).collect(),
            self.field,
        )
    }

    /// Polynomial division: returns `(quotient, remainder)` with
    /// `self = q·divisor + r` and `deg r < deg divisor`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero or fields differ.
    pub fn div_rem(&self, divisor: &Poly) -> (Poly, Poly) {
        assert_eq!(self.field, divisor.field, "field mismatch");
        assert!(!divisor.coeffs.is_empty(), "division by zero polynomial");
        let f = &self.field;
        let dlen = divisor.coeffs.len();
        let dlead_inv = f.inv(*divisor.coeffs.last().unwrap()).expect("lead != 0");
        let mut rem = self.coeffs.clone();
        let mut quot = vec![0u64; self.coeffs.len().saturating_sub(dlen - 1)];
        while rem.len() >= dlen {
            let lead = *rem.last().unwrap();
            if lead == 0 {
                rem.pop();
                continue;
            }
            let shift = rem.len() - dlen;
            let factor = f.mul(lead, dlead_inv);
            quot[shift] = factor;
            for (i, &dc) in divisor.coeffs.iter().enumerate() {
                rem[shift + i] = f.sub(rem[shift + i], f.mul(factor, dc));
            }
            while rem.last() == Some(&0) {
                rem.pop();
            }
        }
        (
            Poly::from_coeffs(quot, self.field),
            Poly::from_coeffs(rem, self.field),
        )
    }

    /// Lagrange interpolation through `(xs[i], ys[i])`.
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `ys` have different lengths, are empty, or `xs`
    /// contains duplicates.
    pub fn interpolate(xs: &[u64], ys: &[u64], field: Fp64) -> Poly {
        assert_eq!(xs.len(), ys.len());
        assert!(!xs.is_empty(), "interpolate needs at least one point");
        let f = &field;
        let xs: Vec<u64> = xs.iter().map(|&x| f.from_u64(x)).collect();
        {
            let mut sorted = xs.clone();
            sorted.sort_unstable();
            assert!(
                sorted.windows(2).all(|w| w[0] != w[1]),
                "duplicate interpolation nodes"
            );
        }
        let mut acc = Poly::zero(field);
        for (i, (&xi, &yi)) in xs.iter().zip(ys).enumerate() {
            // Basis polynomial l_i(y) = Π_{j≠i} (y - x_j) / (x_i - x_j).
            let mut basis = Poly::constant(1, field);
            let mut denom = 1u64;
            for (j, &xj) in xs.iter().enumerate() {
                if j == i {
                    continue;
                }
                basis = basis.mul(&Poly::from_coeffs(vec![f.neg(xj), 1], field));
                denom = f.mul(denom, f.sub(xi, xj));
            }
            let coef = f.mul(f.from_u64(yi), f.inv(denom).expect("distinct nodes"));
            acc = acc.add(&basis.scale(coef));
        }
        acc
    }

    /// Evaluates the unique degree-`< len` interpolant at `x` directly, without
    /// constructing the polynomial — the client-side reconstruction step of
    /// Lemma 1 (answers lie on a degree-`dt` polynomial; output is its value
    /// at zero).
    ///
    /// # Panics
    ///
    /// Same contract as [`Poly::interpolate`].
    pub fn interpolate_at(xs: &[u64], ys: &[u64], x: u64, field: Fp64) -> u64 {
        assert_eq!(xs.len(), ys.len());
        assert!(!xs.is_empty());
        let f = &field;
        let x = f.from_u64(x);
        let xs: Vec<u64> = xs.iter().map(|&v| f.from_u64(v)).collect();
        // Weights w_i = Π_{j≠i} (x - x_j) / (x_i - x_j); handle x == x_i exactly.
        if let Some(pos) = xs.iter().position(|&xi| xi == x) {
            return f.from_u64(ys[pos]);
        }
        let mut denoms = Vec::with_capacity(xs.len());
        for (i, &xi) in xs.iter().enumerate() {
            let mut d = 1u64;
            for (j, &xj) in xs.iter().enumerate() {
                if i != j {
                    d = f.mul(d, f.sub(xi, xj));
                }
            }
            assert_ne!(d, 0, "duplicate interpolation nodes");
            // Fold in (x - x_i) so numerator Π(x - x_j) / (x - x_i) works out.
            denoms.push(f.mul(d, f.sub(x, xi)));
        }
        let invs = f.batch_inv(&denoms);
        let full_num = xs.iter().fold(1u64, |acc, &xj| f.mul(acc, f.sub(x, xj)));
        let mut acc = 0u64;
        for ((&yi, &inv), _) in ys.iter().zip(&invs).zip(&xs) {
            acc = f.add(acc, f.mul(f.from_u64(yi), f.mul(full_num, inv)));
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rand_src::XorShiftRng;
    use proptest::prelude::*;

    fn field() -> Fp64 {
        Fp64::new(1_000_003).unwrap()
    }

    #[test]
    fn degree_and_normalization() {
        let f = field();
        assert_eq!(Poly::zero(f).degree(), None);
        assert_eq!(Poly::from_coeffs(vec![5, 0, 0], f).degree(), Some(0));
        assert_eq!(Poly::from_coeffs(vec![0, 0, 3], f).degree(), Some(2));
    }

    #[test]
    fn eval_horner_known() {
        let f = field();
        let p = Poly::from_coeffs(vec![7, 0, 2], f); // 7 + 2y²
        assert_eq!(p.eval(10), 207);
        assert_eq!(p.eval(0), 7);
    }

    #[test]
    fn arithmetic_identities() {
        let f = field();
        let mut rng = XorShiftRng::new(11);
        let a = Poly::random(4, f, &mut rng);
        let b = Poly::random(3, f, &mut rng);
        assert_eq!(a.add(&b).sub(&b), a);
        assert_eq!(a.mul(&Poly::constant(1, f)), a);
        assert_eq!(a.mul(&Poly::zero(f)), Poly::zero(f));
        // (a+b)(a-b) = a² - b²
        let lhs = a.add(&b).mul(&a.sub(&b));
        let rhs = a.mul(&a).sub(&b.mul(&b));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn interpolate_recovers_poly() {
        let f = field();
        let mut rng = XorShiftRng::new(12);
        let p = Poly::random(6, f, &mut rng);
        let xs: Vec<u64> = (1..=7).collect();
        let ys = p.eval_many(&xs);
        assert_eq!(Poly::interpolate(&xs, &ys, f), p);
    }

    #[test]
    fn interpolate_at_zero_matches_full() {
        let f = field();
        let mut rng = XorShiftRng::new(13);
        let p = Poly::random_with_constant(424_242, 9, f, &mut rng);
        let xs: Vec<u64> = (1..=10).collect();
        let ys = p.eval_many(&xs);
        assert_eq!(Poly::interpolate_at(&xs, &ys, 0, f), 424_242);
    }

    #[test]
    fn interpolate_at_node_returns_value() {
        let f = field();
        assert_eq!(Poly::interpolate_at(&[1, 2, 3], &[10, 20, 30], 2, f), 20);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_nodes_panic() {
        let _ = Poly::interpolate(&[1, 1], &[2, 3], field());
    }

    #[test]
    fn random_with_constant_fixes_zero_value() {
        let f = field();
        let mut rng = XorShiftRng::new(14);
        for _ in 0..10 {
            let p = Poly::random_with_constant(77, 5, f, &mut rng);
            assert_eq!(p.eval(0), 77);
        }
    }

    proptest! {
        #[test]
        fn prop_mul_eval_homomorphic(
            a in proptest::collection::vec(0u64..1_000_003, 1..6),
            b in proptest::collection::vec(0u64..1_000_003, 1..6),
            y in 0u64..1_000_003,
        ) {
            let f = field();
            let (pa, pb) = (Poly::from_coeffs(a, f), Poly::from_coeffs(b, f));
            prop_assert_eq!(pa.mul(&pb).eval(y), f.mul(pa.eval(y), pb.eval(y)));
            prop_assert_eq!(pa.add(&pb).eval(y), f.add(pa.eval(y), pb.eval(y)));
        }

        #[test]
        fn prop_interpolate_at_matches_poly(seed in any::<u64>(), deg in 0usize..8, x in 0u64..1_000_003) {
            let f = field();
            let mut rng = XorShiftRng::new(seed);
            let p = Poly::random(deg, f, &mut rng);
            let xs: Vec<u64> = (1..=(deg as u64 + 1)).collect();
            let ys = p.eval_many(&xs);
            prop_assert_eq!(Poly::interpolate_at(&xs, &ys, x, f), p.eval(x));
        }
    }
}
