//! The workspace-wide parallel kernel engine: a persistent worker pool.
//!
//! Every Ω(n) server scan and O(m)/O(√n) client batch in the SPFE
//! protocols is a *data-parallel map over independent items* — modular
//! exponentiations per database cell, encryptions per selector entry,
//! per-server query evaluation. This module provides the one primitive they
//! all share: [`par_map`] / [`par_map_cost`] / [`par_chunks_map`] over a
//! **persistent, lazily-started worker pool** with
//!
//! * **deterministic output ordering** — each result is written directly
//!   into its input-index slot of a preallocated output slab, never placed
//!   by completion order, so wire transcripts and communication meters are
//!   byte-identical to the sequential path;
//! * **zero per-call allocation in the engine** — no thread spawns, no
//!   channels, no per-block buffers or reassembly: workers park between
//!   jobs and wake to write disjoint `[start, end)` regions of the slab
//!   (the slab itself is the result `Vec` the caller would have allocated
//!   anyway);
//! * **dynamic load balancing** — workers claim fixed-size blocks from a
//!   shared atomic cursor, so one slow item (e.g. a column with many
//!   non-zero cells) cannot serialize the scan;
//! * **cost-classed sequential fallback** — call sites declare whether an
//!   item is exponentiation-heavy or a cheap field op ([`CostClass`]), and
//!   inputs too small to amortize even the pool's wake/join handshake run
//!   inline on the calling thread;
//! * **configuration** — thread count from the `SPFE_THREADS` environment
//!   variable (default: available parallelism), overridable per-process
//!   with [`set_threads`]; fallback threshold from `SPFE_PAR_THRESHOLD`,
//!   overridable with [`set_seq_threshold`]. Environment variables are
//!   resolved **once, at first use**, into cached atomics — changing them
//!   afterwards (e.g. via `std::env::set_var`) has no effect; use the
//!   setters instead.
//!
//! # Pool architecture
//!
//! Worker threads are spawned on demand (the first job that wants `k`
//! threads spawns `k − 1` workers) and then live for the rest of the
//! process, parked on a condvar. A job is published as a type-erased
//! pointer to a stack-allocated descriptor plus a participation-ticket
//! count; each woken worker claims one ticket under the pool lock (the
//! last ticket retires the job from the publication slot, so a late waker
//! can never observe a dangling job), runs the shared atomic-cursor block
//! loop, and decrements a completion latch. The calling thread is always
//! worker 0 and the job does not return until every ticket holder has
//! finished, which is what makes the borrowed-closure `unsafe` sound.
//! Top-level parallel regions are serialized by a process-wide job lock:
//! the pool's thread budget is `SPFE_THREADS`, not
//! `SPFE_THREADS × concurrent callers`.
//!
//! **Reentrancy:** a `par_*` call made *from inside* a pool job (on the
//! calling thread or a worker) runs inline sequentially — same results,
//! no deadlock, no oversubscription.
//!
//! **Panics** in the mapped closure abort the remaining blocks, propagate
//! to the caller after all participants have stopped, and leave the pool
//! fully usable. Results computed before the panic are leaked (never
//! double-dropped); the panic path is a driver bug by contract, not a
//! recoverable state.
//!
//! # Examples
//!
//! ```
//! use spfe_math::par;
//! let xs: Vec<u64> = (0..1000).collect();
//! let doubled = par::par_map(&xs, |&x| x * 2);
//! assert_eq!(doubled, xs.iter().map(|&x| x * 2).collect::<Vec<_>>());
//! ```

use std::cell::Cell;
use std::mem::{ManuallyDrop, MaybeUninit};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};

#[cfg(feature = "obs")]
use std::sync::atomic::AtomicU64;

/// Poison-tolerant lock: a panic that unwound through a guard (the
/// propagated worker-panic path) must not wedge the pool for later jobs.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Scheduling tallies for the most recent *parallel* [`par_map`] /
/// [`par_chunks_map`] run in this process (sequential fallbacks do not
/// touch it). Purely observational — exposed so cost reports can explain
/// load balance; the values are inherently schedule-dependent and are
/// therefore counted under the non-deterministic `Pool*` gauges of
/// `spfe-obs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Workers that participated (the calling thread is worker 0).
    pub threads: usize,
    /// Blocks the input was split into.
    pub blocks: usize,
    /// Blocks each worker claimed.
    pub tasks_per_worker: Vec<u64>,
    /// Blocks each worker claimed away from the block's "home" worker
    /// (`block_index % threads`) — a measure of rebalancing activity.
    pub steals_per_worker: Vec<u64>,
}

#[cfg(feature = "obs")]
static LAST_POOL_STATS: Mutex<Option<PoolStats>> = Mutex::new(None);

/// The [`PoolStats`] of the most recent parallel run, if any (always
/// `None` without the `obs` feature).
pub fn last_pool_stats() -> Option<PoolStats> {
    #[cfg(feature = "obs")]
    {
        lock(&LAST_POOL_STATS).clone()
    }
    #[cfg(not(feature = "obs"))]
    {
        None
    }
}

// ---------------------------------------------------------------------------
// Configuration: overrides beat cached env beats defaults.
// ---------------------------------------------------------------------------

/// Process-wide thread-count override (0 = unset, use env/default).
static THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Process-wide sequential-fallback threshold override (0 = unset).
static THRESHOLD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Cached `SPFE_THREADS` resolution (`usize::MAX` = not yet resolved;
/// resolved values are always ≥ 1). Read once — see the module docs.
static THREADS_ENV: AtomicUsize = AtomicUsize::new(usize::MAX);

/// Cached `SPFE_PAR_THRESHOLD` resolution (`usize::MAX` = not yet
/// resolved; 0 = the variable is absent, fall back to per-call defaults).
static THRESHOLD_ENV: AtomicUsize = AtomicUsize::new(usize::MAX);

/// Default minimum number of items before an unclassified map goes
/// parallel ([`par_map`]; classified call sites use [`CostClass`]).
const DEFAULT_SEQ_THRESHOLD: usize = 16;

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name)
        .ok()?
        .trim()
        .parse()
        .ok()
        .filter(|&v| v > 0)
}

/// The number of worker threads parallel maps will use.
///
/// Resolution order: [`set_threads`] override, then the `SPFE_THREADS`
/// environment variable, then [`std::thread::available_parallelism`].
/// The environment is consulted **once** (first call) and cached; later
/// env changes are ignored — use [`set_threads`].
pub fn threads() -> usize {
    match THREADS_OVERRIDE.load(Ordering::Relaxed) {
        0 => match THREADS_ENV.load(Ordering::Relaxed) {
            usize::MAX => {
                let v = env_usize("SPFE_THREADS")
                    .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
                THREADS_ENV.store(v, Ordering::Relaxed);
                v
            }
            v => v,
        },
        n => n,
    }
}

/// Overrides the thread count for this process (`None` restores the
/// `SPFE_THREADS`/auto default). `Some(1)` forces the sequential path —
/// used by benchmarks and the serial-vs-parallel equivalence tests.
pub fn set_threads(n: Option<usize>) {
    THREADS_OVERRIDE.store(n.map_or(0, |v| v.max(1)), Ordering::Relaxed);
}

/// The cached `SPFE_PAR_THRESHOLD` value (0 = absent), resolved on first
/// use.
fn threshold_env() -> usize {
    match THRESHOLD_ENV.load(Ordering::Relaxed) {
        usize::MAX => {
            let v = env_usize("SPFE_PAR_THRESHOLD").unwrap_or(0);
            THRESHOLD_ENV.store(v, Ordering::Relaxed);
            v
        }
        v => v,
    }
}

/// The minimum input length at which unclassified maps go parallel.
///
/// Resolution order: [`set_seq_threshold`] override, then the
/// `SPFE_PAR_THRESHOLD` environment variable (read once and cached), then
/// a built-in default. Cost-classed call sites resolve through
/// [`seq_threshold_for`] instead.
pub fn seq_threshold() -> usize {
    match THRESHOLD_OVERRIDE.load(Ordering::Relaxed) {
        0 => match threshold_env() {
            0 => DEFAULT_SEQ_THRESHOLD,
            v => v,
        },
        n => n,
    }
}

/// Overrides the sequential-fallback threshold for this process (`None`
/// restores the default). An explicit override also beats every
/// [`CostClass`] default — that is how tests force the pool on.
pub fn set_seq_threshold(n: Option<usize>) {
    THRESHOLD_OVERRIDE.store(n.map_or(0, |v| v.max(1)), Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Cost classes: per-call-site fallback thresholds and block granularity.
// ---------------------------------------------------------------------------

/// How expensive one mapped item is, declared by the call site so the
/// engine can pick a sane sequential-fallback threshold and block
/// granularity. An explicit [`set_seq_threshold`] / `SPFE_PAR_THRESHOLD`
/// beats the class default at every call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostClass {
    /// Items dominated by modular exponentiation — a PIR column scan, a
    /// batch encryption, a whole per-server evaluation. Hundreds of
    /// microseconds and up per item: parallelism pays almost immediately,
    /// and fine-grained blocks keep stragglers rebalanced.
    Heavy,
    /// Cheap word/field-level items — a masked-database cell, a
    /// homomorphic add. Tens of nanoseconds per item: only large batches
    /// amortize even the persistent pool's wake/join handshake, and
    /// blocks must be coarse so cursor traffic doesn't dominate.
    Light,
}

impl CostClass {
    /// The default minimum number of items before this class goes
    /// parallel.
    pub const fn min_items(self) -> usize {
        match self {
            CostClass::Heavy => 4,
            CostClass::Light => 1024,
        }
    }

    /// The minimum scheduler block size for this class (heavy items
    /// rebalance item-by-item; light items batch to keep the atomic
    /// cursor cold).
    const fn min_block(self) -> usize {
        match self {
            CostClass::Heavy => 1,
            CostClass::Light => 256,
        }
    }
}

/// The resolved sequential-fallback threshold for a call site of class
/// `class`: [`set_seq_threshold`], then `SPFE_PAR_THRESHOLD`, then the
/// class default.
pub fn seq_threshold_for(class: CostClass) -> usize {
    match THRESHOLD_OVERRIDE.load(Ordering::Relaxed) {
        0 => match threshold_env() {
            0 => class.min_items(),
            v => v,
        },
        n => n,
    }
}

// ---------------------------------------------------------------------------
// Public mapping API.
// ---------------------------------------------------------------------------

thread_local! {
    /// True while this thread is executing pool-job blocks (always true on
    /// pool workers; true on the calling thread only during its worker-0
    /// participation). Nested `par_*` calls check it and run inline.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

fn in_pool_worker() -> bool {
    IN_POOL.with(Cell::get)
}

/// Maps `f` over `items`, in parallel when it pays.
///
/// Semantically identical to `items.iter().map(f).collect()`: the output is
/// ordered by input index regardless of which worker computed what. Inputs
/// shorter than [`seq_threshold`] (or a 1-thread configuration, or a call
/// from inside a pool job) run inline on the calling thread. Call sites
/// that know their per-item weight should prefer [`par_map_cost`].
///
/// # Panics
///
/// Panics if `f` panics on any item (the panic is propagated; the pool
/// stays usable).
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_grained(seq_threshold(), 1, items, f)
}

/// [`par_map`] with an explicit sequential-fallback threshold, for call
/// sites whose per-item cost is far from both class presets (e.g.
/// `multiserver::run_parallel` forces the pool on with `min_len = 1`).
pub fn par_map_min<T, U, F>(min_len: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_grained(min_len, 1, items, f)
}

/// [`par_map`] with a per-call-site [`CostClass`]: the class picks the
/// sequential-fallback threshold ([`seq_threshold_for`]) and the scheduler
/// block granularity.
pub fn par_map_cost<T, U, F>(class: CostClass, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_grained(seq_threshold_for(class), class.min_block(), items, f)
}

fn par_map_grained<T, U, F>(min_len: usize, min_block: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let nt = threads();
    if nt <= 1 || items.len() < min_len.max(2) || in_pool_worker() {
        return items.iter().map(f).collect();
    }
    pooled_index_map(items.len(), nt, min_block, |i| f(&items[i]))
}

/// Maps `f` over disjoint contiguous chunks of `items` of length
/// `chunk_len` (the last may be shorter), concatenating the per-chunk
/// outputs in input order. Use when per-item closures would allocate or
/// when the kernel wants to amortize setup across a run of items.
///
/// The sequential fallback gates on the *parallel grain* (the number of
/// chunks), not the raw item count: a large `chunk_len` that folds the
/// whole input into one chunk runs inline, paying zero pool overhead.
///
/// # Panics
///
/// Panics if `chunk_len == 0` or `f` panics.
pub fn par_chunks_map<T, U, F>(chunk_len: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&[T]) -> Vec<U> + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let nt = threads();
    let nchunks = items.len().div_ceil(chunk_len);
    if nt <= 1 || items.len() < seq_threshold().max(2) || nchunks < 2 || in_pool_worker() {
        return items.chunks(chunk_len).flat_map(&f).collect();
    }
    let last = items.len();
    let per_chunk: Vec<Vec<U>> = pooled_index_map(nchunks, nt, 1, |c| {
        f(&items[c * chunk_len..((c + 1) * chunk_len).min(last)])
    });
    per_chunk.into_iter().flatten().collect()
}

// ---------------------------------------------------------------------------
// The engine: slab placement over the persistent pool.
// ---------------------------------------------------------------------------

/// A raw pointer into the output slab, shareable across workers because
/// every block writes a disjoint `[start, end)` region.
struct SlabPtr<U>(*mut MaybeUninit<U>);

// SAFETY: workers only write through the pointer, each to disjoint
// indices; `U: Send` moves the produced values across threads exactly
// once (worker → slab → caller).
#[allow(unsafe_code)]
unsafe impl<U: Send> Sync for SlabPtr<U> {}

impl<U> SlabPtr<U> {
    /// Writes `v` into slot `i`.
    ///
    /// # Safety
    ///
    /// `i` must be in bounds of the slab, written at most once across all
    /// threads, and the slab must outlive the call.
    #[allow(unsafe_code)]
    unsafe fn write(&self, i: usize, v: U) {
        unsafe { (*self.0.add(i)).write(v) };
    }
}

/// Runs `index ∈ [0, len)` through `g` on the persistent pool and returns
/// the results in index order. Caller guarantees `len ≥ 2` and `nt ≥ 2`.
#[allow(unsafe_code)]
fn pooled_index_map<U, G>(len: usize, nt: usize, min_block: usize, g: G) -> Vec<U>
where
    U: Send,
    G: Fn(usize) -> U + Sync,
{
    let mut slab: Vec<MaybeUninit<U>> = Vec::with_capacity(len);
    // SAFETY: `MaybeUninit<U>` is valid uninitialized; length == capacity.
    unsafe { slab.set_len(len) };
    let out = SlabPtr(slab.as_mut_ptr());
    let work = |start: usize, end: usize| {
        for i in start..end {
            let v = g(i);
            // SAFETY: blocks are disjoint, so index `i` is written exactly
            // once, and the slab outlives the job (run_pooled joins every
            // participant before returning).
            unsafe { out.write(i, v) };
        }
    };
    run_pooled(len, nt, min_block, &work);
    // SAFETY: run_pooled returns normally only after every block in
    // [0, len) completed, so all `len` slots are initialized;
    // Vec<MaybeUninit<U>> and Vec<U> have identical layout.
    let mut slab = ManuallyDrop::new(slab);
    unsafe { Vec::from_raw_parts(slab.as_mut_ptr().cast::<U>(), len, slab.capacity()) }
}

/// One in-flight job, shared between the caller and its ticket-holding
/// workers. Lives on the caller's stack; the pool hands workers a
/// type-erased pointer whose validity is guaranteed by the
/// ticket/completion protocol (see the module docs).
struct Shared<'w> {
    /// Next unclaimed block index.
    cursor: AtomicUsize,
    /// Set on the first panic: remaining blocks are abandoned.
    abort: AtomicBool,
    len: usize,
    block: usize,
    nblocks: usize,
    nt: usize,
    /// `work(start, end)` computes the half-open block `[start, end)`.
    work: &'w (dyn Fn(usize, usize) + Sync),
    /// Pool participants (excluding the caller) still running.
    pending: Mutex<usize>,
    done: Condvar,
    /// First panic payload out of any participant (including the caller).
    panic_slot: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
    /// (blocks claimed, blocks stolen) per worker ordinal — gauges.
    #[cfg(feature = "obs")]
    claims: Vec<(AtomicU64, AtomicU64)>,
}

impl Shared<'_> {
    /// The block-claim loop every participant runs; never unwinds.
    fn participate(&self, ordinal: usize) {
        let res = panic::catch_unwind(AssertUnwindSafe(|| {
            loop {
                if self.abort.load(Ordering::Relaxed) {
                    break;
                }
                let b = self.cursor.fetch_add(1, Ordering::Relaxed);
                if b >= self.nblocks {
                    break;
                }
                let start = b * self.block;
                let end = (start + self.block).min(self.len);
                (self.work)(start, end);
                #[cfg(feature = "obs")]
                if let Some((tasks, steals)) = self.claims.get(ordinal) {
                    tasks.fetch_add(1, Ordering::Relaxed);
                    if ordinal != b % self.nt {
                        steals.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            #[cfg(not(feature = "obs"))]
            let _ = ordinal;
        }));
        if let Err(payload) = res {
            self.abort.store(true, Ordering::Relaxed);
            let mut slot = lock(&self.panic_slot);
            slot.get_or_insert(payload);
        }
    }

    /// Pool-worker epilogue: count down the completion latch.
    fn finish_participant(&self) {
        let mut p = lock(&self.pending);
        *p -= 1;
        if *p == 0 {
            self.done.notify_one();
        }
    }
}

/// A published job: a type-erased [`Shared`] pointer.
#[derive(Clone, Copy)]
struct Job {
    ctx: *const (),
}
// SAFETY: the pointee is Sync (all-atomic/Mutex state + a Sync closure)
// and outlives every access per the ticket/completion protocol.
#[allow(unsafe_code)]
unsafe impl Send for Job {}

/// The publication slot all workers park on.
struct PoolSlot {
    /// Monotone job id: distinguishes a new job from a spurious wake.
    seq: u64,
    /// The current job, until its last ticket is claimed.
    job: Option<Job>,
    /// Participation tickets remaining for `job`.
    tickets: usize,
    /// Next participant ordinal (the caller is always 0).
    next_ordinal: usize,
    /// Workers spawned so far (pool size only ever grows).
    spawned: usize,
}

struct Pool {
    slot: Mutex<PoolSlot>,
    cv: Condvar,
}

static POOL: OnceLock<Pool> = OnceLock::new();

/// Serializes top-level parallel regions: one job owns the pool at a
/// time, so concurrent callers queue instead of oversubscribing the
/// thread budget.
static JOB_LOCK: Mutex<()> = Mutex::new(());

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        slot: Mutex::new(PoolSlot {
            seq: 0,
            job: None,
            tickets: 0,
            next_ordinal: 1,
            spawned: 0,
        }),
        cv: Condvar::new(),
    })
}

/// The persistent-worker main loop: park until a job with a free ticket
/// appears, claim it, run the block loop, count down, repeat forever.
fn worker_main() {
    IN_POOL.with(|f| f.set(true));
    let pool = pool();
    let mut last_seq = 0u64;
    loop {
        let (job, ordinal) = {
            let mut slot = lock(&pool.slot);
            loop {
                if slot.seq != last_seq {
                    last_seq = slot.seq;
                    if slot.tickets > 0 {
                        if let Some(job) = slot.job {
                            slot.tickets -= 1;
                            let ordinal = slot.next_ordinal;
                            slot.next_ordinal += 1;
                            if slot.tickets == 0 {
                                // Last ticket: retire the job so a late
                                // waker can never see a dangling pointer.
                                slot.job = None;
                            }
                            break (job, ordinal);
                        }
                    }
                }
                slot = pool.cv.wait(slot).unwrap_or_else(|e| e.into_inner());
            }
        };
        // SAFETY: holding a ticket guarantees the Shared outlives this
        // access — the publishing caller blocks until finish_participant.
        #[allow(unsafe_code)]
        let shared = unsafe { &*(job.ctx as *const Shared<'static>) };
        shared.participate(ordinal);
        shared.finish_participant();
    }
}

/// Restores the calling thread's `IN_POOL` flag when the caller finishes
/// its worker-0 participation (drop-safe against propagated panics).
struct InPoolGuard {
    prev: bool,
}

impl InPoolGuard {
    fn enter() -> Self {
        let prev = IN_POOL.with(Cell::get);
        IN_POOL.with(|f| f.set(true));
        InPoolGuard { prev }
    }
}

impl Drop for InPoolGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_POOL.with(|f| f.set(prev));
    }
}

/// Runs `work` over `[0, len)` in blocks on the persistent pool with the
/// calling thread as worker 0. Returns after every participant finished;
/// propagates the first panic. Caller guarantees `len ≥ 2`, `nt ≥ 2`.
fn run_pooled(len: usize, nt: usize, min_block: usize, work: &(dyn Fn(usize, usize) + Sync)) {
    let nt = nt.min(len);
    // Aim for ~4 blocks per worker so stragglers rebalance, but respect
    // the cost class's floor so cheap items don't thrash the cursor.
    let block = len.div_ceil(nt * 4).max(min_block).max(1);
    let nblocks = len.div_ceil(block);
    let participants = nt - 1;

    let _region = lock(&JOB_LOCK);
    let shared = Shared {
        cursor: AtomicUsize::new(0),
        abort: AtomicBool::new(false),
        len,
        block,
        nblocks,
        nt,
        work,
        pending: Mutex::new(participants),
        done: Condvar::new(),
        panic_slot: Mutex::new(None),
        #[cfg(feature = "obs")]
        claims: {
            // Engine bookkeeping, not protocol cost: keep it out of the
            // span-attributed heap tallies.
            let _pause = spfe_obs::mem::pause();
            (0..nt)
                .map(|_| (AtomicU64::new(0), AtomicU64::new(0)))
                .collect()
        },
    };

    let pool = pool();
    {
        let mut slot = lock(&pool.slot);
        if slot.spawned < participants {
            // Lazy growth, paid once per high-water mark — pool-internal,
            // so the thread bootstrap never lands in a protocol span.
            #[cfg(feature = "obs")]
            let _pause = spfe_obs::mem::pause();
            while slot.spawned < participants {
                std::thread::Builder::new()
                    .name(format!("spfe-par-{}", slot.spawned + 1))
                    .spawn(worker_main)
                    .expect("spawn spfe-par worker");
                slot.spawned += 1;
            }
        }
        slot.seq += 1;
        slot.job = Some(Job {
            ctx: (&shared as *const Shared<'_>).cast(),
        });
        slot.tickets = participants;
        slot.next_ordinal = 1;
    }
    pool.cv.notify_all();

    // The calling thread is worker 0; nested par_* calls on it run inline.
    {
        let _in_pool = InPoolGuard::enter();
        shared.participate(0);
    }

    // Join: the job is over only when every ticket holder checked out.
    {
        let mut p = lock(&shared.pending);
        while *p > 0 {
            p = shared.done.wait(p).unwrap_or_else(|e| e.into_inner());
        }
    }

    #[cfg(feature = "obs")]
    {
        use spfe_obs::Op;
        spfe_obs::count(Op::PoolRuns, 1);
        spfe_obs::count(Op::PoolBlocks, nblocks as u64);
        let tasks: Vec<u64> = shared
            .claims
            .iter()
            .map(|(t, _)| t.load(Ordering::Relaxed))
            .collect();
        let steals: Vec<u64> = shared
            .claims
            .iter()
            .map(|(_, s)| s.load(Ordering::Relaxed))
            .collect();
        spfe_obs::count(Op::PoolSteals, steals.iter().sum());
        let _pause = spfe_obs::mem::pause();
        *lock(&LAST_POOL_STATS) = Some(PoolStats {
            threads: nt,
            blocks: nblocks,
            tasks_per_worker: tasks,
            steals_per_worker: steals,
        });
    }

    let payload = lock(&shared.panic_slot).take();
    if let Some(payload) = payload {
        panic::resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Forces a thread/threshold configuration for the duration of a
    /// closure, restoring the defaults afterwards (and serializing tests
    /// that touch the process-global configuration).
    fn with_config<R>(threads: usize, threshold: usize, f: impl FnOnce() -> R) -> R {
        use std::sync::{Mutex, OnceLock};
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        // Poison-tolerant: the panic-propagation test unwinds while holding
        // the lock, and a restore-on-drop guard keeps the globals clean.
        let _guard = LOCK
            .get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        struct Restore;
        impl Drop for Restore {
            fn drop(&mut self) {
                set_threads(None);
                set_seq_threshold(None);
            }
        }
        let _restore = Restore;
        set_threads(Some(threads));
        set_seq_threshold(Some(threshold));
        f()
    }

    #[test]
    fn par_map_empty_and_tiny() {
        with_config(4, 1, || {
            assert_eq!(par_map(&[] as &[u64], |&x| x), Vec::<u64>::new());
            assert_eq!(par_map(&[7u64], |&x| x + 1), vec![8]);
        });
    }

    #[test]
    fn par_map_matches_serial_all_thread_counts() {
        let xs: Vec<u64> = (0..997).collect();
        let expect: Vec<u64> = xs.iter().map(|&x| x.wrapping_mul(x) ^ 0xABCD).collect();
        for nt in [1, 2, 3, 4, 8, 64] {
            let got = with_config(nt, 1, || par_map(&xs, |&x| x.wrapping_mul(x) ^ 0xABCD));
            assert_eq!(got, expect, "threads={nt}");
        }
    }

    #[test]
    fn par_chunks_map_matches_serial() {
        let xs: Vec<u64> = (0..613).collect();
        let expect: Vec<u64> = xs.iter().map(|&x| x + 1).collect();
        for (nt, chunk) in [(1, 7), (4, 1), (4, 7), (4, 613), (4, 1000)] {
            let got = with_config(nt, 1, || {
                par_chunks_map(chunk, &xs, |c| c.iter().map(|&x| x + 1).collect())
            });
            assert_eq!(got, expect, "threads={nt} chunk={chunk}");
        }
    }

    #[test]
    fn par_chunks_map_single_chunk_runs_inline() {
        // chunk_len ≥ items.len() means one chunk — the parallel grain is
        // 1, so the engine must stay on the calling thread even above the
        // item-count threshold.
        with_config(4, 1, || {
            let main_id = std::thread::current().id();
            let xs = [1u64; 300];
            let ids = par_chunks_map(1000, &xs, |c| {
                c.iter().map(|_| std::thread::current().id()).collect()
            });
            assert!(ids.iter().all(|&id| id == main_id));
        });
    }

    #[test]
    fn sequential_fallback_below_threshold() {
        // Below the threshold the calling thread does all the work; observable
        // via thread-id equality inside the closure.
        with_config(8, 1000, || {
            let main_id = std::thread::current().id();
            let ids = par_map(&[1u64; 100], |_| std::thread::current().id());
            assert!(ids.iter().all(|&id| id == main_id));
        });
    }

    #[test]
    fn cost_class_thresholds_resolve() {
        // Class defaults apply when nothing is overridden…
        assert_eq!(CostClass::Heavy.min_items(), 4);
        assert!(CostClass::Light.min_items() > CostClass::Heavy.min_items());
        // …and an explicit override beats both classes.
        with_config(4, 7, || {
            assert_eq!(seq_threshold_for(CostClass::Heavy), 7);
            assert_eq!(seq_threshold_for(CostClass::Light), 7);
        });
    }

    #[test]
    fn light_class_stays_inline_below_its_threshold() {
        // 4 threads but only 100 cheap items: Light's threshold keeps the
        // map on the calling thread. (Config lock held to pin the globals;
        // threshold override left unset via direct set_threads.)
        with_config(4, 1, || {
            set_seq_threshold(None); // restore class-default resolution
            let main_id = std::thread::current().id();
            let ids = par_map_cost(CostClass::Light, &[1u64; 100], |_| {
                std::thread::current().id()
            });
            assert!(ids.iter().all(|&id| id == main_id));
            let got = par_map_cost(CostClass::Heavy, &(0..64u64).collect::<Vec<_>>(), |&x| {
                x * 3
            });
            assert_eq!(got, (0..64u64).map(|x| x * 3).collect::<Vec<_>>());
        });
    }

    #[test]
    fn pool_reuse_repeated_jobs_stay_deterministic() {
        // The same persistent pool serves many jobs; every one must land
        // byte-identical to serial, with no warm-up or drift.
        let xs: Vec<u64> = (0..500).collect();
        let expect: Vec<u64> = xs.iter().map(|&x| x.rotate_left(9) ^ 55).collect();
        with_config(4, 1, || {
            for round in 0..50 {
                let got = par_map(&xs, |&x| x.rotate_left(9) ^ 55);
                assert_eq!(got, expect, "round={round}");
            }
        });
    }

    #[test]
    fn nested_par_map_runs_inline_without_deadlock() {
        // A par_map inside a pool job (on the caller *or* a worker) must
        // run inline: same results, no second job, no deadlock.
        let xs: Vec<u64> = (0..64).collect();
        let inner: Vec<u64> = (1..=8).collect();
        let expect: Vec<u64> = xs
            .iter()
            .map(|&x| inner.iter().map(|y| y * x).sum())
            .collect();
        let got = with_config(4, 1, || {
            par_map(&xs, |&x| {
                let prods = par_map(&inner, |&y| y * x);
                prods.iter().sum::<u64>()
            })
        });
        assert_eq!(got, expect);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        with_config(4, 1, || {
            let _ = par_map(&[0u64; 64], |&x| {
                if x == 0 {
                    panic!("boom");
                }
                x
            });
        });
    }

    #[test]
    fn pool_stays_usable_after_a_panicked_job() {
        with_config(4, 1, || {
            let xs: Vec<u64> = (0..128).collect();
            let boom = std::panic::catch_unwind(AssertUnwindSafe(|| {
                par_map(&xs, |&x| {
                    if x == 77 {
                        panic!("first job dies");
                    }
                    x
                })
            }));
            assert!(boom.is_err(), "panic must propagate");
            // The very next job on the same pool must run clean.
            let expect: Vec<u64> = xs.iter().map(|&x| x + 1).collect();
            for _ in 0..5 {
                assert_eq!(par_map(&xs, |&x| x + 1), expect);
            }
        });
    }

    #[cfg(feature = "obs")]
    #[test]
    fn pool_stats_cover_all_blocks() {
        with_config(4, 1, || {
            let xs: Vec<u64> = (0..1000).collect();
            let _ = par_map(&xs, |&x| x + 1);
            let stats = last_pool_stats().expect("parallel run recorded");
            assert_eq!(stats.threads, 4);
            assert_eq!(stats.tasks_per_worker.len(), 4);
            assert_eq!(
                stats.tasks_per_worker.iter().sum::<u64>(),
                stats.blocks as u64
            );
            assert!(stats
                .steals_per_worker
                .iter()
                .zip(&stats.tasks_per_worker)
                .all(|(s, t)| s <= t));
        });
    }

    #[test]
    fn config_resolution() {
        with_config(3, 5, || {
            assert_eq!(threads(), 3);
            assert_eq!(seq_threshold(), 5);
        });
        // After restore, values come from env/defaults and are positive.
        assert!(threads() >= 1);
        assert!(seq_threshold() >= 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_par_map_equals_map(
            xs in proptest::collection::vec(any::<u64>(), 0..200),
            nt in 1usize..9,
            threshold in 1usize..40,
        ) {
            let expect: Vec<u64> = xs.iter().map(|&x| x ^ (x >> 3)).collect();
            let got = with_config(nt, threshold, || par_map(&xs, |&x| x ^ (x >> 3)));
            prop_assert_eq!(got, expect);
        }

        #[test]
        fn prop_par_chunks_map_equals_chunks(
            xs in proptest::collection::vec(any::<u64>(), 0..200),
            nt in 1usize..9,
            chunk in 1usize..32,
        ) {
            let expect: Vec<u64> = xs.chunks(chunk).flat_map(|c| {
                c.iter().rev().map(|&x| x.wrapping_add(1)).collect::<Vec<_>>()
            }).collect();
            let got = with_config(nt, 1, || {
                par_chunks_map(chunk, &xs, |c| c.iter().rev().map(|&x| x.wrapping_add(1)).collect())
            });
            prop_assert_eq!(got, expect);
        }
    }
}
