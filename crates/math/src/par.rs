//! The workspace-wide parallel kernel engine.
//!
//! Every Ω(n) server scan and O(m)/O(√n) client batch in the SPFE
//! protocols is a *data-parallel map over independent items* — modular
//! exponentiations per database cell, encryptions per selector entry,
//! per-server query evaluation. This module provides the one primitive they
//! all share: a scoped fork-join pool ([`par_map`] / [`par_chunks_map`])
//! with
//!
//! * **deterministic output ordering** — results land by input index, never
//!   by completion order, so wire transcripts and communication meters are
//!   byte-identical to the sequential path;
//! * **dynamic load balancing** — workers claim fixed-size blocks from a
//!   shared atomic cursor, so one slow item (e.g. a column with many
//!   non-zero cells) cannot serialize the scan;
//! * **automatic sequential fallback** — inputs smaller than a tunable
//!   threshold run inline on the calling thread, paying zero spawn cost;
//! * **configuration** — thread count from the `SPFE_THREADS` environment
//!   variable (default: available parallelism), overridable per-process
//!   with [`set_threads`]; fallback threshold from `SPFE_PAR_THRESHOLD`,
//!   overridable with [`set_seq_threshold`].
//!
//! Workers are plain `std::thread::scope` spawns (the std descendant of
//! `crossbeam::scope`), so borrowed inputs — a `&Montgomery` context, a
//! `&[u64]` database — are shared by reference across workers without any
//! cloning or `'static` gymnastics.
//!
//! # Examples
//!
//! ```
//! use spfe_math::par;
//! let xs: Vec<u64> = (0..1000).collect();
//! let doubled = par::par_map(&xs, |&x| x * 2);
//! assert_eq!(doubled, xs.iter().map(|&x| x * 2).collect::<Vec<_>>());
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Scheduling tallies for the most recent *parallel* [`par_map`] /
/// [`par_chunks_map`] run in this process (sequential fallbacks do not
/// touch it). Purely observational — exposed so cost reports can explain
/// load balance; the values are inherently schedule-dependent and are
/// therefore counted under the non-deterministic `Pool*` gauges of
/// `spfe-obs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Workers that participated (the calling thread is worker 0).
    pub threads: usize,
    /// Blocks the input was split into.
    pub blocks: usize,
    /// Blocks each worker claimed.
    pub tasks_per_worker: Vec<u64>,
    /// Blocks each worker claimed away from the block's "home" worker
    /// (`block_index % threads`) — a measure of rebalancing activity.
    pub steals_per_worker: Vec<u64>,
}

#[cfg(feature = "obs")]
static LAST_POOL_STATS: std::sync::Mutex<Option<PoolStats>> = std::sync::Mutex::new(None);

/// The [`PoolStats`] of the most recent parallel run, if any (always
/// `None` without the `obs` feature).
pub fn last_pool_stats() -> Option<PoolStats> {
    #[cfg(feature = "obs")]
    {
        LAST_POOL_STATS
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
    #[cfg(not(feature = "obs"))]
    {
        None
    }
}

/// Process-wide thread-count override (0 = unset, use env/default).
static THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Process-wide sequential-fallback threshold override (0 = unset).
static THRESHOLD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Default minimum number of items before a map goes parallel.
const DEFAULT_SEQ_THRESHOLD: usize = 16;

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name)
        .ok()?
        .trim()
        .parse()
        .ok()
        .filter(|&v| v > 0)
}

/// The number of worker threads parallel maps will use.
///
/// Resolution order: [`set_threads`] override, then the `SPFE_THREADS`
/// environment variable, then [`std::thread::available_parallelism`].
pub fn threads() -> usize {
    match THREADS_OVERRIDE.load(Ordering::Relaxed) {
        0 => env_usize("SPFE_THREADS")
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get())),
        n => n,
    }
}

/// Overrides the thread count for this process (`None` restores the
/// `SPFE_THREADS`/auto default). `Some(1)` forces the sequential path —
/// used by benchmarks and the serial-vs-parallel equivalence tests.
pub fn set_threads(n: Option<usize>) {
    THREADS_OVERRIDE.store(n.map_or(0, |v| v.max(1)), Ordering::Relaxed);
}

/// The minimum input length at which maps go parallel.
///
/// Resolution order: [`set_seq_threshold`] override, then the
/// `SPFE_PAR_THRESHOLD` environment variable, then a built-in default.
pub fn seq_threshold() -> usize {
    match THRESHOLD_OVERRIDE.load(Ordering::Relaxed) {
        0 => env_usize("SPFE_PAR_THRESHOLD").unwrap_or(DEFAULT_SEQ_THRESHOLD),
        n => n,
    }
}

/// Overrides the sequential-fallback threshold for this process (`None`
/// restores the default).
pub fn set_seq_threshold(n: Option<usize>) {
    THRESHOLD_OVERRIDE.store(n.map_or(0, |v| v.max(1)), Ordering::Relaxed);
}

/// Maps `f` over `items`, in parallel when it pays.
///
/// Semantically identical to `items.iter().map(f).collect()`: the output is
/// ordered by input index regardless of which worker computed what. Inputs
/// shorter than [`seq_threshold`] (or a 1-thread configuration) run inline
/// on the calling thread.
///
/// # Panics
///
/// Panics if `f` panics on any item (the panic is propagated).
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_min(seq_threshold(), items, f)
}

/// [`par_map`] with an explicit sequential-fallback threshold, for call
/// sites whose per-item cost is far from the workspace default (e.g. a
/// cheap field evaluation wants a much larger threshold than a 2048-bit
/// exponentiation).
pub fn par_map_min<T, U, F>(min_len: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let nt = threads();
    if nt <= 1 || items.len() < min_len.max(2) {
        return items.iter().map(f).collect();
    }
    run_blocks(items.len(), nt, |start, end| {
        items[start..end].iter().map(&f).collect()
    })
}

/// Maps `f` over disjoint contiguous chunks of `items` of length
/// `chunk_len` (the last may be shorter), concatenating the per-chunk
/// outputs in input order. Use when per-item closures would allocate or
/// when the kernel wants to amortize setup across a run of items.
///
/// # Panics
///
/// Panics if `chunk_len == 0` or `f` panics.
pub fn par_chunks_map<T, U, F>(chunk_len: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&[T]) -> Vec<U> + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let nt = threads();
    if nt <= 1 || items.len() < seq_threshold().max(2) {
        return items.chunks(chunk_len).flat_map(&f).collect();
    }
    let nchunks = items.len().div_ceil(chunk_len);
    let per_chunk: Vec<Vec<U>> = run_blocks(nchunks, nt, |start, end| {
        (start..end)
            .map(|c| f(&items[c * chunk_len..((c + 1) * chunk_len).min(items.len())]))
            .collect()
    });
    per_chunk.into_iter().flatten().collect()
}

/// Runs `index ∈ [0, len)` through `work` on a scoped worker pool and
/// returns the concatenated results in index order.
///
/// `work(start, end)` must produce exactly `end - start` outputs for the
/// half-open index block `[start, end)`. Blocks are claimed dynamically
/// from an atomic cursor (load balancing); results are keyed by block index
/// and reassembled in order (determinism).
fn run_blocks<U, W>(len: usize, nt: usize, work: W) -> Vec<U>
where
    U: Send,
    W: Fn(usize, usize) -> Vec<U> + Sync,
{
    // Aim for ~4 blocks per worker so stragglers rebalance, but never
    // blocks so small that cursor traffic dominates.
    let nt = nt.min(len);
    let block = len.div_ceil(nt * 4).max(1);
    let nblocks = len.div_ceil(block);
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, usize, Vec<U>)>();

    let worker = |w: usize, tx: mpsc::Sender<(usize, usize, Vec<U>)>| loop {
        let b = cursor.fetch_add(1, Ordering::Relaxed);
        if b >= nblocks {
            break;
        }
        let start = b * block;
        let end = (start + block).min(len);
        let out = work(start, end);
        debug_assert_eq!(out.len(), end - start, "work() must be 1:1 with its block");
        if tx.send((w, b, out)).is_err() {
            break;
        }
    };

    // (tasks, steals) per worker — pure observation, folded into the cost
    // reports; the results themselves are ordered by block index below.
    #[cfg(feature = "obs")]
    let mut per_worker: Vec<(u64, u64)> = vec![(0, 0); nt];
    let mut slots: Vec<Option<Vec<U>>> = Vec::new();
    slots.resize_with(nblocks, || None);
    std::thread::scope(|s| {
        let handles: Vec<_> = (1..nt)
            .map(|w| {
                let tx = tx.clone();
                s.spawn(move || worker(w, tx))
            })
            .collect();
        // The calling thread is worker 0.
        worker(0, tx);
        for (_w, b, out) in rx.iter() {
            #[cfg(feature = "obs")]
            {
                per_worker[_w].0 += 1;
                if _w != b % nt {
                    per_worker[_w].1 += 1;
                }
            }
            slots[b] = Some(out);
        }
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    #[cfg(feature = "obs")]
    {
        use spfe_obs::Op;
        spfe_obs::count(Op::PoolRuns, 1);
        spfe_obs::count(Op::PoolBlocks, nblocks as u64);
        let steals: u64 = per_worker.iter().map(|&(_, s)| s).sum();
        spfe_obs::count(Op::PoolSteals, steals);
        *LAST_POOL_STATS.lock().unwrap_or_else(|e| e.into_inner()) = Some(PoolStats {
            threads: nt,
            blocks: nblocks,
            tasks_per_worker: per_worker.iter().map(|&(t, _)| t).collect(),
            steals_per_worker: per_worker.iter().map(|&(_, s)| s).collect(),
        });
    }
    slots
        .into_iter()
        .flat_map(|s| s.expect("every block computed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Forces a thread/threshold configuration for the duration of a
    /// closure, restoring the defaults afterwards (and serializing tests
    /// that touch the process-global configuration).
    fn with_config<R>(threads: usize, threshold: usize, f: impl FnOnce() -> R) -> R {
        use std::sync::{Mutex, OnceLock};
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        // Poison-tolerant: the panic-propagation test unwinds while holding
        // the lock, and a restore-on-drop guard keeps the globals clean.
        let _guard = LOCK
            .get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        struct Restore;
        impl Drop for Restore {
            fn drop(&mut self) {
                set_threads(None);
                set_seq_threshold(None);
            }
        }
        let _restore = Restore;
        set_threads(Some(threads));
        set_seq_threshold(Some(threshold));
        f()
    }

    #[test]
    fn par_map_empty_and_tiny() {
        with_config(4, 1, || {
            assert_eq!(par_map(&[] as &[u64], |&x| x), Vec::<u64>::new());
            assert_eq!(par_map(&[7u64], |&x| x + 1), vec![8]);
        });
    }

    #[test]
    fn par_map_matches_serial_all_thread_counts() {
        let xs: Vec<u64> = (0..997).collect();
        let expect: Vec<u64> = xs.iter().map(|&x| x.wrapping_mul(x) ^ 0xABCD).collect();
        for nt in [1, 2, 3, 4, 8, 64] {
            let got = with_config(nt, 1, || par_map(&xs, |&x| x.wrapping_mul(x) ^ 0xABCD));
            assert_eq!(got, expect, "threads={nt}");
        }
    }

    #[test]
    fn par_chunks_map_matches_serial() {
        let xs: Vec<u64> = (0..613).collect();
        let expect: Vec<u64> = xs.iter().map(|&x| x + 1).collect();
        for (nt, chunk) in [(1, 7), (4, 1), (4, 7), (4, 613), (4, 1000)] {
            let got = with_config(nt, 1, || {
                par_chunks_map(chunk, &xs, |c| c.iter().map(|&x| x + 1).collect())
            });
            assert_eq!(got, expect, "threads={nt} chunk={chunk}");
        }
    }

    #[test]
    fn sequential_fallback_below_threshold() {
        // Below the threshold the calling thread does all the work; observable
        // via thread-id equality inside the closure.
        with_config(8, 1000, || {
            let main_id = std::thread::current().id();
            let ids = par_map(&[1u64; 100], |_| std::thread::current().id());
            assert!(ids.iter().all(|&id| id == main_id));
        });
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        with_config(4, 1, || {
            let _ = par_map(&[0u64; 64], |&x| {
                if x == 0 {
                    panic!("boom");
                }
                x
            });
        });
    }

    #[cfg(feature = "obs")]
    #[test]
    fn pool_stats_cover_all_blocks() {
        with_config(4, 1, || {
            let xs: Vec<u64> = (0..1000).collect();
            let _ = par_map(&xs, |&x| x + 1);
            let stats = last_pool_stats().expect("parallel run recorded");
            assert_eq!(stats.threads, 4);
            assert_eq!(stats.tasks_per_worker.len(), 4);
            assert_eq!(
                stats.tasks_per_worker.iter().sum::<u64>(),
                stats.blocks as u64
            );
            assert!(stats
                .steals_per_worker
                .iter()
                .zip(&stats.tasks_per_worker)
                .all(|(s, t)| s <= t));
        });
    }

    #[test]
    fn config_resolution() {
        with_config(3, 5, || {
            assert_eq!(threads(), 3);
            assert_eq!(seq_threshold(), 5);
        });
        // After restore, values come from env/defaults and are positive.
        assert!(threads() >= 1);
        assert!(seq_threshold() >= 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_par_map_equals_map(
            xs in proptest::collection::vec(any::<u64>(), 0..200),
            nt in 1usize..9,
            threshold in 1usize..40,
        ) {
            let expect: Vec<u64> = xs.iter().map(|&x| x ^ (x >> 3)).collect();
            let got = with_config(nt, threshold, || par_map(&xs, |&x| x ^ (x >> 3)));
            prop_assert_eq!(got, expect);
        }

        #[test]
        fn prop_par_chunks_map_equals_chunks(
            xs in proptest::collection::vec(any::<u64>(), 0..200),
            nt in 1usize..9,
            chunk in 1usize..32,
        ) {
            let expect: Vec<u64> = xs.chunks(chunk).flat_map(|c| {
                c.iter().rev().map(|&x| x.wrapping_add(1)).collect::<Vec<_>>()
            }).collect();
            let got = with_config(nt, 1, || {
                par_chunks_map(chunk, &xs, |c| c.iter().rev().map(|&x| x.wrapping_add(1)).collect())
            });
            prop_assert_eq!(got, expect);
        }
    }
}
