//! Minimal randomness abstraction used throughout the workspace.
//!
//! `spfe-math` stays dependency-free, so instead of depending on `rand` it
//! defines the tiny [`RandomSource`] trait. Cryptographic implementations
//! (ChaCha20 seeded from the OS) live in `spfe-crypto`; this module only
//! provides [`XorShiftRng`], a fast deterministic generator for tests and
//! non-cryptographic workload generation.

/// A source of uniformly random 64-bit words.
///
/// Implementors must produce independent, uniformly distributed outputs; for
/// cryptographic protocols use a cryptographically secure implementation
/// (e.g. `spfe_crypto::ChaChaRng`).
pub trait RandomSource {
    /// Returns the next random 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Fills `buf` with random bytes.
    fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }

    /// Uniformly random value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below: zero bound");
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniformly random boolean.
    fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

impl<R: RandomSource + ?Sized> RandomSource for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A xorshift64* generator: fast and deterministic. **Not** cryptographically
/// secure; use only for tests, simulations, and workload generation.
///
/// # Examples
///
/// ```
/// use spfe_math::{RandomSource, XorShiftRng};
/// let mut rng = XorShiftRng::new(1);
/// let a = rng.next_u64();
/// let b = rng.next_u64();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct XorShiftRng {
    state: u64,
}

impl XorShiftRng {
    /// Creates a generator from a seed (zero seeds are remapped).
    pub fn new(seed: u64) -> Self {
        XorShiftRng {
            state: if seed == 0 { 0x9e3779b97f4a7c15 } else { seed },
        }
    }
}

impl RandomSource for XorShiftRng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = XorShiftRng::new(99);
        let mut b = XorShiftRng::new(99);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut rng = XorShiftRng::new(0);
        assert_ne!(rng.next_u64(), 0);
    }

    #[test]
    fn next_below_in_range() {
        let mut rng = XorShiftRng::new(3);
        for bound in [1u64, 2, 7, 1000, u64::MAX] {
            for _ in 0..20 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = XorShiftRng::new(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
