//! Sparse multivariate polynomials over [`Fp64`].
//!
//! The §3.1 protocol represents the selected function as a multivariate
//! polynomial `P` in the bits of the client's indices. At protocol runtime
//! `P` is evaluated *implicitly* from the formula (see
//! `spfe_circuits::arith`), but this explicit representation is used to
//! validate that construction on small instances and to compute degrees.

use crate::fp64::Fp64;
use std::collections::HashMap;

/// A sparse multivariate polynomial `Σ c · y₁^{e₁}·…·y_v^{e_v}`.
///
/// # Examples
///
/// ```
/// use spfe_math::{Fp64, MPoly};
/// let f = Fp64::new(97).unwrap();
/// // x·y + 2
/// let p = MPoly::from_terms(2, vec![(1, vec![1, 1]), (2, vec![0, 0])], f);
/// assert_eq!(p.eval(&[3, 4]), 14);
/// assert_eq!(p.total_degree(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MPoly {
    num_vars: usize,
    /// Map from exponent vector (length `num_vars`) to non-zero coefficient.
    terms: HashMap<Vec<u16>, u64>,
    field: Fp64,
}

impl MPoly {
    /// The zero polynomial in `num_vars` variables.
    pub fn zero(num_vars: usize, field: Fp64) -> Self {
        MPoly {
            num_vars,
            terms: HashMap::new(),
            field,
        }
    }

    /// The constant polynomial.
    pub fn constant(c: u64, num_vars: usize, field: Fp64) -> Self {
        let mut p = MPoly::zero(num_vars, field);
        let c = field.from_u64(c);
        if c != 0 {
            p.terms.insert(vec![0; num_vars], c);
        }
        p
    }

    /// The single variable `y_i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_vars`.
    pub fn var(i: usize, num_vars: usize, field: Fp64) -> Self {
        assert!(i < num_vars);
        let mut exps = vec![0u16; num_vars];
        exps[i] = 1;
        let mut p = MPoly::zero(num_vars, field);
        p.terms.insert(exps, 1);
        p
    }

    /// Builds from `(coefficient, exponent-vector)` terms.
    ///
    /// # Panics
    ///
    /// Panics if any exponent vector has the wrong length.
    pub fn from_terms(num_vars: usize, terms: Vec<(u64, Vec<u16>)>, field: Fp64) -> Self {
        let mut p = MPoly::zero(num_vars, field);
        for (c, exps) in terms {
            assert_eq!(exps.len(), num_vars, "exponent vector length mismatch");
            p.add_term(field.from_u64(c), exps);
        }
        p
    }

    fn add_term(&mut self, c: u64, exps: Vec<u16>) {
        if c == 0 {
            return;
        }
        let f = self.field;
        let entry = self.terms.entry(exps);
        match entry {
            std::collections::hash_map::Entry::Occupied(mut o) => {
                let v = f.add(*o.get(), c);
                if v == 0 {
                    o.remove();
                } else {
                    *o.get_mut() = v;
                }
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(c);
            }
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of non-zero terms.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// True iff the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Total degree (0 for the zero polynomial).
    pub fn total_degree(&self) -> usize {
        self.terms
            .keys()
            .map(|e| e.iter().map(|&x| x as usize).sum())
            .max()
            .unwrap_or(0)
    }

    /// Evaluation at a point.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != num_vars`.
    pub fn eval(&self, point: &[u64]) -> u64 {
        assert_eq!(point.len(), self.num_vars);
        let f = &self.field;
        let point: Vec<u64> = point.iter().map(|&v| f.from_u64(v)).collect();
        let mut acc = 0u64;
        for (exps, &c) in &self.terms {
            let mut term = c;
            for (&e, &y) in exps.iter().zip(&point) {
                if e > 0 {
                    term = f.mul(term, f.pow(y, e as u64));
                }
            }
            acc = f.add(acc, term);
        }
        acc
    }

    /// Addition.
    ///
    /// # Panics
    ///
    /// Panics on variable-count or field mismatch.
    pub fn add(&self, other: &MPoly) -> MPoly {
        assert_eq!(self.num_vars, other.num_vars);
        assert_eq!(self.field, other.field);
        let mut out = self.clone();
        for (exps, &c) in &other.terms {
            out.add_term(c, exps.clone());
        }
        out
    }

    /// Subtraction.
    ///
    /// # Panics
    ///
    /// Panics on variable-count or field mismatch.
    pub fn sub(&self, other: &MPoly) -> MPoly {
        assert_eq!(self.num_vars, other.num_vars);
        assert_eq!(self.field, other.field);
        let f = self.field;
        let mut out = self.clone();
        for (exps, &c) in &other.terms {
            out.add_term(f.neg(c), exps.clone());
        }
        out
    }

    /// Multiplication (term-by-term; exponential in the worst case — intended
    /// for validation on small instances).
    ///
    /// # Panics
    ///
    /// Panics on variable-count or field mismatch.
    pub fn mul(&self, other: &MPoly) -> MPoly {
        assert_eq!(self.num_vars, other.num_vars);
        assert_eq!(self.field, other.field);
        let f = self.field;
        let mut out = MPoly::zero(self.num_vars, self.field);
        for (ea, &ca) in &self.terms {
            for (eb, &cb) in &other.terms {
                let exps: Vec<u16> = ea.iter().zip(eb).map(|(&a, &b)| a + b).collect();
                out.add_term(f.mul(ca, cb), exps);
            }
        }
        out
    }

    /// Scalar multiplication.
    pub fn scale(&self, c: u64) -> MPoly {
        let f = self.field;
        let c = f.from_u64(c);
        let mut out = MPoly::zero(self.num_vars, self.field);
        for (exps, &a) in &self.terms {
            out.add_term(f.mul(a, c), exps.clone());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rand_src::{RandomSource, XorShiftRng};

    fn field() -> Fp64 {
        Fp64::new(1_000_003).unwrap()
    }

    #[test]
    fn constant_and_var() {
        let f = field();
        let c = MPoly::constant(5, 3, f);
        assert_eq!(c.eval(&[9, 9, 9]), 5);
        let y1 = MPoly::var(1, 3, f);
        assert_eq!(y1.eval(&[7, 8, 9]), 8);
        assert_eq!(MPoly::constant(0, 2, f).term_count(), 0);
    }

    #[test]
    fn degree_tracking() {
        let f = field();
        let p = MPoly::from_terms(2, vec![(1, vec![2, 3]), (4, vec![1, 0])], f);
        assert_eq!(p.total_degree(), 5);
        assert_eq!(MPoly::zero(2, f).total_degree(), 0);
    }

    #[test]
    fn cancelling_terms_vanish() {
        let f = field();
        let p = MPoly::from_terms(1, vec![(3, vec![1])], f);
        let q = p.sub(&p);
        assert!(q.is_zero());
        assert_eq!(q.eval(&[123]), 0);
    }

    #[test]
    fn mul_known() {
        let f = field();
        // (x + 1)(x - 1) = x² - 1
        let x = MPoly::var(0, 1, f);
        let one = MPoly::constant(1, 1, f);
        let prod = x.add(&one).mul(&x.sub(&one));
        for v in [0u64, 1, 2, 10] {
            assert_eq!(prod.eval(&[v]), f.sub(f.mul(v, v), 1));
        }
        assert_eq!(prod.total_degree(), 2);
    }

    #[test]
    fn eval_homomorphic_random() {
        let f = field();
        let mut rng = XorShiftRng::new(21);
        for _ in 0..20 {
            let mk = |rng: &mut XorShiftRng| {
                let terms: Vec<(u64, Vec<u16>)> = (0..5)
                    .map(|_| {
                        (
                            rng.next_below(1_000_003),
                            vec![(rng.next_below(3)) as u16, (rng.next_below(3)) as u16],
                        )
                    })
                    .collect();
                MPoly::from_terms(2, terms, f)
            };
            let (a, b) = (mk(&mut rng), mk(&mut rng));
            let pt = [rng.next_below(1_000_003), rng.next_below(1_000_003)];
            assert_eq!(a.add(&b).eval(&pt), f.add(a.eval(&pt), b.eval(&pt)));
            assert_eq!(a.mul(&b).eval(&pt), f.mul(a.eval(&pt), b.eval(&pt)));
            assert_eq!(a.scale(7).eval(&pt), f.mul(a.eval(&pt), 7));
        }
    }
}
