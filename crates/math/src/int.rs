//! Signed arbitrary-precision integers, built on [`Nat`].
//!
//! Only the operations required by the extended Euclidean algorithm and by
//! signed intermediate values in protocols are provided; the workspace's
//! cryptography otherwise works in residue classes via [`Nat`].

use crate::nat::Nat;
use std::cmp::Ordering;
use std::fmt;

/// Sign of an [`Int`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sign {
    /// Negative value.
    Negative,
    /// Zero.
    Zero,
    /// Positive value.
    Positive,
}

/// A signed arbitrary-precision integer.
///
/// # Examples
///
/// ```
/// use spfe_math::Int;
/// let a = Int::from(-5i64);
/// let b = Int::from(8i64);
/// assert_eq!(&a + &b, Int::from(3i64));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Int {
    sign: Sign,
    mag: Nat,
}

impl Int {
    /// Zero.
    pub fn zero() -> Self {
        Int {
            sign: Sign::Zero,
            mag: Nat::zero(),
        }
    }

    /// One.
    pub fn one() -> Self {
        Int::from_nat(Nat::one())
    }

    /// A non-negative integer from a natural.
    pub fn from_nat(mag: Nat) -> Self {
        let sign = if mag.is_zero() {
            Sign::Zero
        } else {
            Sign::Positive
        };
        Int { sign, mag }
    }

    /// Builds from an explicit sign and magnitude (sign is normalized for zero).
    pub fn from_sign_mag(sign: Sign, mag: Nat) -> Self {
        if mag.is_zero() {
            Int::zero()
        } else {
            assert_ne!(sign, Sign::Zero, "non-zero magnitude with Zero sign");
            Int { sign, mag }
        }
    }

    /// The sign.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude.
    pub fn magnitude(&self) -> &Nat {
        &self.mag
    }

    /// True iff zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// True iff strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// Negation.
    pub fn neg(&self) -> Int {
        match self.sign {
            Sign::Zero => Int::zero(),
            Sign::Positive => Int {
                sign: Sign::Negative,
                mag: self.mag.clone(),
            },
            Sign::Negative => Int {
                sign: Sign::Positive,
                mag: self.mag.clone(),
            },
        }
    }

    /// Addition.
    pub fn add(&self, other: &Int) -> Int {
        match (self.sign, other.sign) {
            (Sign::Zero, _) => other.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => Int {
                sign: a,
                mag: &self.mag + &other.mag,
            },
            _ => match self.mag.cmp(&other.mag) {
                Ordering::Equal => Int::zero(),
                Ordering::Greater => Int {
                    sign: self.sign,
                    mag: self.mag.sub(&other.mag),
                },
                Ordering::Less => Int {
                    sign: other.sign,
                    mag: other.mag.sub(&self.mag),
                },
            },
        }
    }

    /// Subtraction.
    pub fn sub(&self, other: &Int) -> Int {
        self.add(&other.neg())
    }

    /// Multiplication.
    pub fn mul(&self, other: &Int) -> Int {
        let mag = &self.mag * &other.mag;
        let sign = match (self.sign, other.sign) {
            (Sign::Zero, _) | (_, Sign::Zero) => Sign::Zero,
            (a, b) if a == b => Sign::Positive,
            _ => Sign::Negative,
        };
        Int::from_sign_mag(if mag.is_zero() { Sign::Zero } else { sign }, mag)
    }

    /// Canonical residue in `[0, m)`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn rem_euclid(&self, m: &Nat) -> Nat {
        let r = self.mag.rem(m);
        match self.sign {
            Sign::Negative if !r.is_zero() => m.sub(&r),
            _ => r,
        }
    }
}

impl From<i64> for Int {
    fn from(v: i64) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => Int::zero(),
            Ordering::Greater => Int::from_nat(Nat::from(v as u64)),
            Ordering::Less => Int {
                sign: Sign::Negative,
                mag: Nat::from(v.unsigned_abs()),
            },
        }
    }
}

impl From<u64> for Int {
    fn from(v: u64) -> Self {
        Int::from_nat(Nat::from(v))
    }
}

impl PartialOrd for Int {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Int {
    fn cmp(&self, other: &Self) -> Ordering {
        let rank = |s: Sign| match s {
            Sign::Negative => 0,
            Sign::Zero => 1,
            Sign::Positive => 2,
        };
        match rank(self.sign).cmp(&rank(other.sign)) {
            Ordering::Equal => match self.sign {
                Sign::Positive => self.mag.cmp(&other.mag),
                Sign::Negative => other.mag.cmp(&self.mag),
                Sign::Zero => Ordering::Equal,
            },
            ord => ord,
        }
    }
}

impl fmt::Debug for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "Int(-0x{})", self.mag.to_hex())
        } else {
            write!(f, "Int(0x{})", self.mag.to_hex())
        }
    }
}

impl fmt::Display for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "-{}", self.mag)
        } else {
            write!(f, "{}", self.mag)
        }
    }
}

macro_rules! impl_int_binop {
    ($trait:ident, $method:ident) => {
        impl std::ops::$trait for &Int {
            type Output = Int;
            fn $method(self, rhs: &Int) -> Int {
                Int::$method(self, rhs)
            }
        }
    };
}
impl_int_binop!(Add, add);
impl_int_binop!(Sub, sub);
impl_int_binop!(Mul, mul);

impl std::ops::Neg for &Int {
    type Output = Int;
    fn neg(self) -> Int {
        Int::neg(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn signs_behave() {
        assert!(Int::from(-3i64) < Int::zero());
        assert!(Int::zero() < Int::from(3i64));
        assert!(Int::from(-5i64) < Int::from(-3i64));
        assert_eq!(Int::from(-3i64).neg(), Int::from(3i64));
    }

    #[test]
    fn rem_euclid_negative() {
        let m = Nat::from(7u64);
        assert_eq!(Int::from(-1i64).rem_euclid(&m), Nat::from(6u64));
        assert_eq!(Int::from(-7i64).rem_euclid(&m), Nat::zero());
        assert_eq!(Int::from(15i64).rem_euclid(&m), Nat::from(1u64));
    }

    proptest! {
        #[test]
        fn prop_matches_i128(a in -(1i128<<62)..(1i128<<62), b in -(1i128<<62)..(1i128<<62)) {
            let (ia, ib) = (Int::from(a as i64), Int::from(b as i64));
            let to_i128 = |x: &Int| -> i128 {
                let m = x.magnitude().to_u128().unwrap() as i128;
                if x.is_negative() { -m } else { m }
            };
            prop_assert_eq!(to_i128(&(&ia + &ib)), a + b);
            prop_assert_eq!(to_i128(&(&ia - &ib)), a - b);
            prop_assert_eq!(to_i128(&ia.mul(&ib)), a * b);
        }

        #[test]
        fn prop_rem_euclid_matches_i128(a in any::<i64>(), m in 1u64..1_000_000) {
            let r = Int::from(a).rem_euclid(&Nat::from(m)).to_u64().unwrap();
            prop_assert_eq!(r as i128, (a as i128).rem_euclid(m as i128));
        }
    }
}
