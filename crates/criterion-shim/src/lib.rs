//! Offline stand-in for the [criterion](https://docs.rs/criterion) benchmark
//! harness.
//!
//! The SPFE workspace builds hermetically (no crates.io access), so this
//! crate supplies the criterion API subset the bench suite uses —
//! [`Criterion`], [`BenchmarkId`], [`Throughput`], `benchmark_group`,
//! `bench_function` / `bench_with_input`, [`criterion_group!`] /
//! [`criterion_main!`] — with a simple measurement loop: a few warm-up
//! iterations, then timed samples, reporting min / mean / max wall-clock
//! per iteration.
//!
//! Statistical analysis, plots, and baselines are out of scope; the point
//! is that `cargo bench` runs and prints honest numbers.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` style positional filters are honored so
        // single benchmarks can be run in isolation.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        Criterion {
            sample_size: 10,
            warm_up: 2,
            filter,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// No-op compatibility shim (CLI args are read in [`Criterion::default`]).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(self, id, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Records the throughput denominator (accepted, not currently reported).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let mut c = self.parent.clone();
        if let Some(n) = self.sample_size {
            c.sample_size = n;
        }
        run_one(&c, &full, f);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (compatibility no-op).
    pub fn finish(self) {}
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id from a function name and a displayed parameter.
    pub fn new<P: std::fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }

    /// An id from just a displayed parameter.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Throughput denominators, mirroring `criterion::Throughput`.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Passed to the closure under measurement; call [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    warm_up: usize,
    sample_size: usize,
}

impl Bencher {
    /// Measures `f`, one invocation per sample after warm-up.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        for _ in 0..self.warm_up {
            black_box(f());
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(c: &Criterion, id: &str, mut f: F) {
    if let Some(filter) = &c.filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }
    let mut b = Bencher {
        samples: Vec::new(),
        warm_up: c.warm_up,
        sample_size: c.sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<60} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = *b.samples.iter().min().expect("nonempty");
    let max = *b.samples.iter().max().expect("nonempty");
    println!(
        "{id:<60} [{} {} {}]",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max)
    );
}

/// Human-readable duration, criterion-style.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    let mut s = String::new();
    if ns >= 1_000_000_000 {
        let _ = write!(s, "{:.4} s", ns as f64 / 1e9);
    } else if ns >= 1_000_000 {
        let _ = write!(s, "{:.4} ms", ns as f64 / 1e6);
    } else if ns >= 1_000 {
        let _ = write!(s, "{:.4} µs", ns as f64 / 1e3);
    } else {
        let _ = write!(s, "{ns} ns");
    }
    s
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        // Built directly (not via `default()`) so libtest CLI args can't
        // be misread as a benchmark filter.
        let mut c = Criterion {
            sample_size: 2,
            warm_up: 2,
            filter: None,
        };
        let mut runs = 0usize;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_with_input(BenchmarkId::new("x", 1), &3u64, |b, &v| {
                b.iter(|| {
                    runs += 1;
                    v * 2
                })
            });
            g.finish();
        }
        // 2 warm-up + 2 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("n", 42).to_string(), "n/42");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
