//! §4 — protocols tailored to private statistics.
//!
//! * [`weighted_sum`] — the paper's efficient 1-round single-server
//!   protocol for `Σ w_j · x_{i_j}`: the server masks the database with a
//!   random degree-`(m−1)` polynomial `P_s`, the client batch-retrieves
//!   the masked items with `SPIR(n, m, F)` and, in the *same* message,
//!   sends encryptions of the coefficients `c_k = Σ_j w_j · i_j^k` of the
//!   linear functional `Σ_j w_j·P_s(i_j)` in `s`; the server's homomorphic
//!   reply lets the client unmask. Malicious clients can only redirect the
//!   coefficients to *another* linear combination of selected items — the
//!   paper's counting argument.
//! * [`average_and_variance`] — the "package": the server keeps the
//!   squared database `x'` alongside `x` and answers the same batched
//!   query against both (plus two functional replies), still one round.
//! * [`frequency`] — the keyword-counting protocol: after any input
//!   selection, one extra round of blinded, permuted comparisons; the
//!   client counts decryptions ≡ 0.

use crate::input_select::{SharesModP, STAT_SECURITY_BITS};
use spfe_crypto::hom::{HomomorphicPk, HomomorphicSk};
use spfe_crypto::SchnorrGroup;
use spfe_math::{Fp64, Nat, Poly, RandomSource};
use spfe_pir::batched;
use spfe_transport::{Channel, ChannelExt, ProtocolError};

/// Encrypts the blinded functional value `Σ-term + p·(R+1)` so the client
/// learns exactly the mod-`p` value.
fn check_capacity<P: HomomorphicPk>(pk: &P, p: u64, m: usize) {
    let bound = Nat::from(p)
        .square()
        .mul_u64(m as u64)
        .add(&Nat::from(p).shl(STAT_SECURITY_BITS + 1));
    assert!(
        &bound < pk.plaintext_modulus(),
        "plaintext modulus too small for field {p} and m={m}"
    );
}

/// Computes the client's functional coefficients `c_k = Σ_j w_j · i_j^k`.
fn functional_coeffs(field: Fp64, indices: &[usize], weights: &[u64]) -> Vec<u64> {
    let m = indices.len();
    (0..m)
        .map(|k| {
            indices.iter().zip(weights).fold(0u64, |acc, (&i, &w)| {
                let pow = field.pow(field.from_u64(i as u64), k as u64);
                field.add(acc, field.mul(field.from_u64(w), pow))
            })
        })
        .collect()
}

/// Server-side: the homomorphic functional reply
/// `E(Σ_k s_k·c_k + p·(R+1))` from the (client-controlled) encrypted
/// coefficients; `label` names the message the coefficients arrived in.
fn functional_reply<P: HomomorphicPk, R: RandomSource + ?Sized>(
    pk: &P,
    field: Fp64,
    s_poly: &Poly,
    coeff_cts: &[Vec<u8>],
    label: &'static str,
    rng: &mut R,
) -> Result<Vec<u8>, ProtocolError> {
    let p = field.modulus();
    let mut acc: Option<P::Ciphertext> = None;
    for (k, ct_bytes) in coeff_cts.iter().enumerate() {
        let s_k = s_poly.coeffs().get(k).copied().unwrap_or(0);
        if s_k == 0 {
            continue;
        }
        let ct = pk
            .ciphertext_from_bytes(ct_bytes)
            .ok_or(ProtocolError::InvalidMessage {
                label,
                reason: "coefficient is not a ciphertext",
            })?;
        let term = pk.mul_const(&ct, &Nat::from(s_k));
        acc = Some(match acc {
            None => term,
            Some(prev) => pk.add(&prev, &term),
        });
    }
    let blind = Nat::from(p).mul(&Nat::random_bits(rng, STAT_SECURITY_BITS).add(&Nat::one()));
    let offset = pk.encrypt(&blind, rng);
    let total = match acc {
        None => offset,
        Some(a) => pk.add(&a, &offset),
    };
    Ok(pk.ciphertext_to_bytes(&total))
}

/// The §4 one-round weighted-sum protocol: returns
/// `Σ_j weights[j] · x_{indices[j]} mod p`.
///
/// # Errors
///
/// [`ProtocolError`] on any transport fault or malformed counterparty
/// message.
///
/// # Panics
///
/// Panics if lengths mismatch, values exceed the field, the field is not
/// larger than `n`, or the homomorphic plaintext space is too small (all
/// local setup bugs, not attacks).
#[allow(clippy::too_many_arguments)]
pub fn weighted_sum<P, S, R>(
    t: &mut dyn Channel,
    group: &SchnorrGroup,
    pk: &P,
    sk: &S,
    db: &[u64],
    indices: &[usize],
    weights: &[u64],
    field: Fp64,
    rng: &mut R,
) -> Result<u64, ProtocolError>
where
    P: HomomorphicPk,
    S: HomomorphicSk<P>,
    R: RandomSource + ?Sized,
{
    let p = field.modulus();
    let m = indices.len();
    assert!(m > 0 && weights.len() == m, "weights/indices mismatch");
    assert!(p > db.len() as u64, "field must exceed n");
    assert!(db.iter().all(|&v| v < p), "db value exceeds field");
    check_capacity(pk, p, m);
    let _proto = spfe_obs::span("weighted-sum");

    // Client message: batched SPIR queries + encrypted coefficients.
    let _qg = spfe_obs::span("query-gen");
    let (queries, state) = batched::client_query(group, pk, db.len(), indices, rng);
    let coeffs = functional_coeffs(field, indices, weights);
    let coeff_cts: Vec<Vec<u8>> = coeffs
        .iter()
        .map(|&c| pk.ciphertext_to_bytes(&pk.encrypt(&Nat::from(c), rng)))
        .collect();
    let (queries, coeff_cts) = t.client_to_server(0, "wsum-query", &(queries, coeff_cts))?;
    drop(_qg);

    // Server: mask the database, answer SPIR + the functional.
    let _se = spfe_obs::span("server-eval");
    let s_poly = Poly::random(m.saturating_sub(1), field, rng);
    let masked: Vec<Vec<u64>> = db
        .iter()
        .enumerate()
        .map(|(i, &x)| vec![field.add(x, s_poly.eval(i as u64))])
        .collect();
    let answers = batched::server_answer_words(group, pk, &masked, &queries, rng)?;
    let func = functional_reply(pk, field, &s_poly, &coeff_cts, "wsum-query", rng)?;
    let (answers, func) = t.server_to_client(0, "wsum-answer", &(answers, func))?;
    drop(_se);

    // Client: Σ w_j·x'_{i_j} − Σ w_j·P_s(i_j).
    let _s = spfe_obs::span("reconstruct");
    let mut retrieved = batched::client_decode_words(pk, sk, &state, &answers, 1)?;
    // Fallback leftovers (rare): a second plain exchange.
    if !state.leftovers.is_empty() {
        let flat: Vec<u64> = masked_fallback(
            t,
            group,
            pk,
            sk,
            db,
            &s_poly,
            field,
            indices,
            &state.leftovers,
            rng,
        )?;
        for (&q, v) in state.leftovers.iter().zip(flat) {
            retrieved[q] = vec![v];
        }
    }
    let masked_sum = retrieved.iter().zip(weights).fold(0u64, |acc, (v, &w)| {
        field.add(acc, field.mul(field.from_u64(w), v[0]))
    });
    const BAD_FUNC: ProtocolError = ProtocolError::InvalidMessage {
        label: "wsum-answer",
        reason: "malformed functional reply",
    };
    let func_val = sk.decrypt(&pk.ciphertext_from_bytes(&func).ok_or(BAD_FUNC)?);
    let mask_sum = func_val.rem(&Nat::from(p)).to_u64().ok_or(BAD_FUNC)?;
    Ok(field.sub(masked_sum, mask_sum))
}

/// Fallback retrievals against the same masked database.
#[allow(clippy::too_many_arguments)]
fn masked_fallback<P, S, R>(
    t: &mut dyn Channel,
    group: &SchnorrGroup,
    pk: &P,
    sk: &S,
    db: &[u64],
    s_poly: &Poly,
    field: Fp64,
    indices: &[usize],
    leftovers: &[usize],
    rng: &mut R,
) -> Result<Vec<u64>, ProtocolError>
where
    P: HomomorphicPk,
    S: HomomorphicSk<P>,
    R: RandomSource + ?Sized,
{
    use spfe_pir::spir;
    let params = spfe_pir::SpirParams::new(group.clone(), db.len());
    let mut queries = Vec::new();
    let mut states = Vec::new();
    for &q in leftovers {
        let (fq, fst) = spir::client_query(&params, pk, indices[q], rng);
        queries.push(fq);
        states.push(fst);
    }
    let queries = t.client_to_server(0, "wsum-fallback-q", &queries)?;
    let masked: Vec<u64> = db
        .iter()
        .enumerate()
        .map(|(i, &x)| field.add(x, s_poly.eval(i as u64)))
        .collect();
    let answers: Vec<spfe_pir::SpirAnswer> = queries
        .iter()
        .map(|fq| spir::server_answer(&params, pk, &masked, fq, rng))
        .collect::<Result<_, _>>()?;
    let answers = t.server_to_client(0, "wsum-fallback-a", &answers)?;
    if answers.len() != states.len() {
        return Err(ProtocolError::InvalidMessage {
            label: "wsum-fallback-a",
            reason: "answer count does not match query count",
        });
    }
    states
        .iter()
        .zip(&answers)
        .map(|(st, a)| spir::client_decode(&params, pk, sk, st, a))
        .collect()
}

/// The §4 average+variance package, one round: the same batched query is
/// answered against both `x` and the squared database; returns
/// `(Σ x_{i_j}, Σ x_{i_j}²) mod p`. The client derives mean and variance.
///
/// # Errors
///
/// [`ProtocolError`] on any transport fault or malformed counterparty
/// message.
///
/// # Panics
///
/// Same local-setup preconditions as [`weighted_sum`]; squares must also
/// fit the field.
#[allow(clippy::too_many_arguments)]
pub fn average_and_variance<P, S, R>(
    t: &mut dyn Channel,
    group: &SchnorrGroup,
    pk: &P,
    sk: &S,
    db: &[u64],
    db_squared: &[u64],
    indices: &[usize],
    field: Fp64,
    rng: &mut R,
) -> Result<(u64, u64), ProtocolError>
where
    P: HomomorphicPk,
    S: HomomorphicSk<P>,
    R: RandomSource + ?Sized,
{
    let p = field.modulus();
    let m = indices.len();
    assert!(m > 0);
    assert!(p > db.len() as u64, "field must exceed n");
    assert!(
        db.iter().all(|&v| v < p) && db_squared.iter().all(|&v| v < p),
        "db value exceeds field"
    );
    check_capacity(pk, p, m);
    let _proto = spfe_obs::span("avg-var");

    // Client: one query set + coefficients for the all-ones functional
    // (weights 1), sent once but applied to both masking polynomials.
    let (queries, state) = batched::client_query(group, pk, db.len(), indices, rng);
    let ones = vec![1u64; m];
    let coeffs = functional_coeffs(field, indices, &ones);
    let coeff_cts: Vec<Vec<u8>> = coeffs
        .iter()
        .map(|&c| pk.ciphertext_to_bytes(&pk.encrypt(&Nat::from(c), rng)))
        .collect();
    let (queries, coeff_cts) = t.client_to_server(0, "avgvar-query", &(queries, coeff_cts))?;

    // Server: two independent masks; the same query answered twice.
    let s1 = Poly::random(m.saturating_sub(1), field, rng);
    let s2 = Poly::random(m.saturating_sub(1), field, rng);
    let mask = |base: &[u64], s: &Poly| -> Vec<Vec<u64>> {
        base.iter()
            .enumerate()
            .map(|(i, &x)| vec![field.add(x, s.eval(i as u64))])
            .collect()
    };
    let a1 = batched::server_answer_words(group, pk, &mask(db, &s1), &queries, rng)?;
    let a2 = batched::server_answer_words(group, pk, &mask(db_squared, &s2), &queries, rng)?;
    let f1 = functional_reply(pk, field, &s1, &coeff_cts, "avgvar-query", rng)?;
    let f2 = functional_reply(pk, field, &s2, &coeff_cts, "avgvar-query", rng)?;
    let ((a1, a2), (f1, f2)) = t.server_to_client(0, "avgvar-answer", &((a1, a2), (f1, f2)))?;

    assert!(
        state.leftovers.is_empty(),
        "avg/var package requires cuckoo placement to succeed (retry with fresh randomness)"
    );
    const BAD_FUNC: ProtocolError = ProtocolError::InvalidMessage {
        label: "avgvar-answer",
        reason: "malformed functional reply",
    };
    let decode =
        |answers: &[spfe_pir::spir::SpirWordsAnswer], func: &[u8]| -> Result<u64, ProtocolError> {
            let retrieved = batched::client_decode_words(pk, sk, &state, answers, 1)?;
            let masked_sum = retrieved.iter().fold(0u64, |acc, v| field.add(acc, v[0]));
            let func_val = sk.decrypt(&pk.ciphertext_from_bytes(func).ok_or(BAD_FUNC)?);
            let mask_sum = func_val.rem(&Nat::from(p)).to_u64().ok_or(BAD_FUNC)?;
            Ok(field.sub(masked_sum, mask_sum))
        };
    Ok((decode(&a1, &f1)?, decode(&a2, &f2)?))
}

/// Server half of the frequency round: blinds, scales and permutes the
/// comparison ciphertexts. Every input ciphertext is client-controlled.
fn frequency_replies<P, R>(
    pk: &P,
    field: Fp64,
    server_shares: &[u64],
    client_cts: &[Vec<u8>],
    label: &'static str,
    rng: &mut R,
) -> Result<Vec<Vec<u8>>, ProtocolError>
where
    P: HomomorphicPk,
    R: RandomSource + ?Sized,
{
    if client_cts.len() != server_shares.len() {
        return Err(ProtocolError::InvalidMessage {
            label,
            reason: "share count does not match selection size",
        });
    }
    let p = field.modulus();
    let mut replies: Vec<Vec<u8>> = client_cts
        .iter()
        .zip(server_shares)
        .map(|(ct_bytes, &a_j)| {
            let ct = pk
                .ciphertext_from_bytes(ct_bytes)
                .ok_or(ProtocolError::InvalidMessage {
                    label,
                    reason: "share is not a ciphertext",
                })?;
            let sum = pk.add(&ct, &pk.encrypt(&Nat::from(a_j), rng));
            let rho = field.random_nonzero(rng);
            let scaled = pk.mul_const(&sum, &Nat::from(rho));
            let blind = Nat::from(p).mul(&Nat::random_bits(rng, STAT_SECURITY_BITS));
            let out = pk.add(&scaled, &pk.encrypt(&blind, rng));
            Ok::<_, ProtocolError>(pk.ciphertext_to_bytes(&pk.rerandomize(&out, rng)))
        })
        .collect::<Result<_, _>>()?;
    // Fisher–Yates permutation from server randomness.
    for i in (1..replies.len()).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        replies.swap(i, j);
    }
    Ok(replies)
}

/// Client half: counts the replies whose decryption is ≡ 0 (mod p).
fn count_zero_replies<P, S>(
    pk: &P,
    sk: &S,
    p: u64,
    expected: usize,
    replies: &[Vec<u8>],
    label: &'static str,
) -> Result<u64, ProtocolError>
where
    P: HomomorphicPk,
    S: HomomorphicSk<P>,
{
    if replies.len() != expected {
        return Err(ProtocolError::InvalidMessage {
            label,
            reason: "reply count does not match selection size",
        });
    }
    let mut count = 0u64;
    for ct_bytes in replies {
        let ct = pk
            .ciphertext_from_bytes(ct_bytes)
            .ok_or(ProtocolError::InvalidMessage {
                label,
                reason: "reply is not a ciphertext",
            })?;
        if sk.decrypt(&ct).rem(&Nat::from(p)).is_zero() {
            count += 1;
        }
    }
    Ok(count)
}

/// The §4 frequency protocol: given additive shares of the selected items
/// (from any input-selection protocol), one extra round counts how many
/// equal `keyword`.
///
/// The client sends `E(b_j − w)`; the server replies with a random
/// permutation of `E(ρ_j·(a_j + b_j − w) + p·R_j)`; the client counts
/// decryptions divisible by `p`.
///
/// # Errors
///
/// [`ProtocolError`] on any transport fault or malformed counterparty
/// message.
///
/// # Panics
///
/// Panics if shares are empty or the plaintext space too small (local
/// setup bugs, not attacks).
pub fn frequency<P, S, R>(
    t: &mut dyn Channel,
    pk: &P,
    sk: &S,
    shares: &SharesModP,
    keyword: u64,
    rng: &mut R,
) -> Result<u64, ProtocolError>
where
    P: HomomorphicPk,
    S: HomomorphicSk<P>,
    R: RandomSource + ?Sized,
{
    let m = shares.server.len();
    assert!(m > 0 && shares.client.len() == m);
    let p = shares.p;
    let field = Fp64::new(p).expect("share modulus must be prime");
    check_capacity(pk, p, m);
    let _proto = spfe_obs::span("frequency");

    // Client: E((b_j − w) mod p).
    let client_cts: Vec<Vec<u8>> = shares
        .client
        .iter()
        .map(|&b| {
            let v = field.sub(b, field.from_u64(keyword));
            pk.ciphertext_to_bytes(&pk.encrypt(&Nat::from(v), rng))
        })
        .collect();
    let client_cts = t.client_to_server(0, "freq-blinded-shares", &client_cts)?;

    // Server: ρ_j·(a_j + (b_j − w)) + p·R_j, permuted.
    let replies = frequency_replies(
        pk,
        field,
        &shares.server,
        &client_cts,
        "freq-blinded-shares",
        rng,
    )?;
    let replies = t.server_to_client(0, "freq-replies", &replies)?;

    // Client: count decryptions ≡ 0 (mod p).
    count_zero_replies(pk, sk, p, m, &replies, "freq-replies")
}

/// The generalized frequency protocol with a *different keyword per
/// selected item* — the paper's closing observation that a (even
/// malicious) client's power in the frequency protocol is exactly "a
/// different keyword ... for each selected item", offered here as a
/// feature: count how many `x_{i_j} == keywords[j]`.
///
/// # Errors
///
/// [`ProtocolError`] on any transport fault or malformed counterparty
/// message.
///
/// # Panics
///
/// Panics if lengths mismatch or the plaintext space is too small (local
/// setup bugs, not attacks).
pub fn frequency_multi<P, S, R>(
    t: &mut dyn Channel,
    pk: &P,
    sk: &S,
    shares: &SharesModP,
    keywords: &[u64],
    rng: &mut R,
) -> Result<u64, ProtocolError>
where
    P: HomomorphicPk,
    S: HomomorphicSk<P>,
    R: RandomSource + ?Sized,
{
    let m = shares.server.len();
    assert!(m > 0 && shares.client.len() == m && keywords.len() == m);
    let p = shares.p;
    let field = Fp64::new(p).expect("share modulus must be prime");
    check_capacity(pk, p, m);
    let _proto = spfe_obs::span("frequency-multi");

    let client_cts: Vec<Vec<u8>> = shares
        .client
        .iter()
        .zip(keywords)
        .map(|(&b, &w)| {
            let v = field.sub(b, field.from_u64(w));
            pk.ciphertext_to_bytes(&pk.encrypt(&Nat::from(v), rng))
        })
        .collect();
    let client_cts = t.client_to_server(0, "freqm-blinded-shares", &client_cts)?;

    let replies = frequency_replies(
        pk,
        field,
        &shares.server,
        &client_cts,
        "freqm-blinded-shares",
        rng,
    )?;
    let replies = t.server_to_client(0, "freqm-replies", &replies)?;

    count_zero_replies(pk, sk, p, m, &replies, "freqm-replies")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::reference;
    use crate::input_select::select1;
    use spfe_crypto::{ChaChaRng, HomomorphicScheme, Paillier};
    use spfe_transport::Transcript;

    fn crypto() -> (
        SchnorrGroup,
        spfe_crypto::PaillierPk,
        spfe_crypto::PaillierSk,
        ChaChaRng,
    ) {
        let mut rng = ChaChaRng::from_u64_seed(0x444);
        let group = SchnorrGroup::generate(96, &mut rng);
        let (pk, sk) = Paillier::keygen(160, &mut rng);
        (group, pk, sk, rng)
    }

    #[test]
    fn weighted_sum_matches_reference() {
        let (group, pk, sk, mut rng) = crypto();
        let db: Vec<u64> = (0..40u64).map(|i| (i * 17 + 3) % 100).collect();
        let field = Fp64::new(65_537).unwrap();
        let indices = [0usize, 13, 27, 39];
        let weights = [1u64, 2, 3, 4];
        let mut t = Transcript::new(1);
        let got = weighted_sum(
            &mut t, &group, &pk, &sk, &db, &indices, &weights, field, &mut rng,
        )
        .unwrap();
        let expect = reference::weighted_sum(&db, &indices, &weights) % field.modulus();
        assert_eq!(got, expect);
    }

    #[test]
    fn weighted_sum_is_one_round() {
        let (group, pk, sk, mut rng) = crypto();
        let db: Vec<u64> = (0..30u64).collect();
        let field = Fp64::new(65_537).unwrap();
        let mut t = Transcript::new(1);
        weighted_sum(
            &mut t,
            &group,
            &pk,
            &sk,
            &db,
            &[1, 15, 29],
            &[1, 1, 1],
            field,
            &mut rng,
        )
        .unwrap();
        assert_eq!(t.report().half_rounds, 2, "§4: one round");
    }

    #[test]
    fn plain_sum_via_unit_weights() {
        let (group, pk, sk, mut rng) = crypto();
        let db: Vec<u64> = (0..25u64).map(|i| i + 50).collect();
        let field = Fp64::new(65_537).unwrap();
        let indices = [3usize, 8, 20];
        let mut t = Transcript::new(1);
        let got = weighted_sum(
            &mut t,
            &group,
            &pk,
            &sk,
            &db,
            &indices,
            &[1, 1, 1],
            field,
            &mut rng,
        )
        .unwrap();
        assert_eq!(got, reference::sum(&db, &indices));
    }

    #[test]
    fn average_and_variance_package() {
        let (group, pk, sk, mut rng) = crypto();
        let db: Vec<u64> = (0..36u64).map(|i| (i * 7) % 50 + 1).collect();
        let sq: Vec<u64> = db.iter().map(|&v| v * v).collect();
        let field = Fp64::at_least(40_000);
        let indices = [2usize, 11, 30];
        let mut t = Transcript::new(1);
        let (s, ss) = average_and_variance(
            &mut t, &group, &pk, &sk, &db, &sq, &indices, field, &mut rng,
        )
        .unwrap();
        let expect_s = reference::sum(&db, &indices);
        let expect_ss: u64 = indices.iter().map(|&i| db[i] * db[i]).sum();
        assert_eq!((s, ss), (expect_s, expect_ss));
        assert_eq!(t.report().half_rounds, 2, "package stays one round");
    }

    #[test]
    fn frequency_counts_keyword() {
        let (group, pk, sk, mut rng) = crypto();
        let db = vec![9u64, 4, 9, 9, 2, 7, 9, 0];
        let field = Fp64::new(257).unwrap();
        let indices = [0usize, 2, 4, 6, 7];
        let mut t = Transcript::new(1);
        let shares = select1(&mut t, &group, &pk, &sk, &db, &indices, field, &mut rng).unwrap();
        let got = frequency(&mut t, &pk, &sk, &shares, 9, &mut rng).unwrap();
        assert_eq!(got, 3);
        // Selection (1 round) + frequency (1 round) = 2 rounds.
        assert_eq!(t.report().half_rounds, 4);
    }

    #[test]
    fn frequency_zero_and_all_matches() {
        let (group, pk, sk, mut rng) = crypto();
        let db = vec![5u64, 5, 5, 1];
        let field = Fp64::new(101).unwrap();
        let mut t = Transcript::new(1);
        let shares = select1(&mut t, &group, &pk, &sk, &db, &[0, 1, 2], field, &mut rng).unwrap();
        assert_eq!(
            frequency(&mut t, &pk, &sk, &shares, 5, &mut rng).unwrap(),
            3
        );
        let mut t2 = Transcript::new(1);
        let shares2 = select1(&mut t2, &group, &pk, &sk, &db, &[0, 3], field, &mut rng).unwrap();
        assert_eq!(
            frequency(&mut t2, &pk, &sk, &shares2, 7, &mut rng).unwrap(),
            0
        );
    }

    #[test]
    fn frequency_multi_per_item_keywords() {
        let (group, pk, sk, mut rng) = crypto();
        let db = vec![3u64, 8, 15, 8, 42];
        let field = Fp64::new(101).unwrap();
        let indices = [0usize, 1, 2, 4];
        let mut t = Transcript::new(1);
        let shares = select1(&mut t, &group, &pk, &sk, &db, &indices, field, &mut rng).unwrap();
        // Match pattern: x₀==3 ✓, x₁==9 ✗, x₂==15 ✓, x₄==42 ✓ → 3.
        let got = frequency_multi(&mut t, &pk, &sk, &shares, &[3, 9, 15, 42], &mut rng).unwrap();
        assert_eq!(got, 3);
        // Uniform keywords degenerate to the plain protocol.
        let mut t2 = Transcript::new(1);
        let shares2 = select1(&mut t2, &group, &pk, &sk, &db, &[1, 3], field, &mut rng).unwrap();
        assert_eq!(
            frequency_multi(&mut t2, &pk, &sk, &shares2, &[8, 8], &mut rng).unwrap(),
            2
        );
    }

    #[test]
    fn malicious_weighted_client_gets_linear_combination_only() {
        // The counting argument: a client submitting arbitrary coefficient
        // vectors learns *some* linear combination of selected items. We
        // emulate by running with a different weight vector than claimed —
        // the output is exactly that other linear combination.
        let (group, pk, sk, mut rng) = crypto();
        let db: Vec<u64> = (0..20u64).map(|i| i + 1).collect();
        let field = Fp64::new(65_537).unwrap();
        let indices = [1usize, 5];
        let sneaky_weights = [7u64, 11];
        let mut t = Transcript::new(1);
        let got = weighted_sum(
            &mut t,
            &group,
            &pk,
            &sk,
            &db,
            &indices,
            &sneaky_weights,
            field,
            &mut rng,
        )
        .unwrap();
        assert_eq!(
            got,
            reference::weighted_sum(&db, &indices, &sneaky_weights) % field.modulus()
        );
    }
}
