//! §3.3 — complete two-phase SPFE: input selection + secure function
//! evaluation on the shares.
//!
//! The second phase comes in two flavors, matching Table 1's "efficient
//! scalability to arithmetic circuits?" column:
//!
//! * [`yao_phase`] — Yao's protocol on a Boolean circuit that first
//!   reconstructs `x_j = a_j + b_j mod p` from the shares and then applies
//!   `f` (the "composition overhead" circuit the paper describes for the
//!   Boolean case);
//! * [`arith_phase`] — the §3.3.4 protocol on an arithmetic circuit over
//!   the client's homomorphic plaintext ring, composed with the integer
//!   shares of `select3`.
//!
//! The end-to-end runners ([`run_select1_yao`] etc.) reproduce the four
//! single-server Table 1 rows together with `psm_spfe`.

use crate::input_select::{self, IntShares, SharesModP};
use crate::statistic::Statistic;
use spfe_circuits::builders::bits_for;
use spfe_crypto::hom::{HomomorphicPk, HomomorphicSk};
use spfe_crypto::SchnorrGroup;
use spfe_math::{Fp64, Nat, RandomSource};
use spfe_mpc::yao2pc::{self, to_bits};
use spfe_transport::{Channel, ProtocolError};

/// Yao MPC phase: evaluates the statistic on mod-`p` shares.
///
/// # Errors
///
/// [`ProtocolError`] on any transport fault or malformed message.
///
/// # Panics
///
/// Panics if shares are empty or inconsistent (local setup bugs).
pub fn yao_phase<R: RandomSource + ?Sized>(
    t: &mut dyn Channel,
    group: &SchnorrGroup,
    shares: &SharesModP,
    stat: &Statistic,
    rng: &mut R,
) -> Result<Vec<u64>, ProtocolError> {
    let m = shares.server.len();
    assert!(m > 0 && shares.client.len() == m);
    let _s = spfe_obs::span("yao-phase");
    let circuit = stat.share_circuit(m, shares.p);
    let w = bits_for(shares.p - 1);
    let server_bits: Vec<bool> = shares.server.iter().flat_map(|&a| to_bits(a, w)).collect();
    let client_bits: Vec<bool> = shares.client.iter().flat_map(|&b| to_bits(b, w)).collect();
    let out = yao2pc::run(t, group, &circuit, &server_bits, &client_bits, rng)?;
    Ok(stat.decode_bits(&out, m, shares.p))
}

/// §3.3.4 arithmetic MPC phase on integer shares: evaluates the statistic
/// over the client's homomorphic ring. Returns exact integer results
/// (shares are exact over ℤ and values stay far below the ring modulus).
///
/// # Errors
///
/// [`ProtocolError`] on any transport fault or malformed message.
///
/// # Panics
///
/// Panics on empty shares or if the ring is too small (local setup bugs).
pub fn arith_phase<P, S, R>(
    t: &mut dyn Channel,
    pk: &P,
    sk: &S,
    shares: &IntShares,
    stat: &Statistic,
    rng: &mut R,
) -> Result<Vec<Nat>, ProtocolError>
where
    P: HomomorphicPk,
    S: HomomorphicSk<P>,
    R: RandomSource + ?Sized,
{
    let m = shares.server.len();
    assert!(m > 0 && shares.client_masks.len() == m);
    let _s = spfe_obs::span("arith-phase");
    let ring = pk.plaintext_modulus().clone();
    let circuit = stat.share_arith_circuit(m, ring.clone());
    // Client inputs: −R_j mod ring; server inputs: S_j mod ring.
    let client_inputs: Vec<Nat> = shares
        .client_masks
        .iter()
        .map(|r| spfe_math::modular::mod_neg(&r.rem(&ring), &ring))
        .collect();
    let server_inputs: Vec<Nat> = shares.server.iter().map(|s| s.rem(&ring)).collect();
    spfe_mpc::arith_mpc::run(t, pk, sk, &circuit, &client_inputs, &server_inputs, rng)
}

/// §3.3.1 + Yao: the Table 1 "2 rounds / Weak" row.
///
/// # Errors
///
/// [`ProtocolError`] on any transport fault or malformed message.
#[allow(clippy::too_many_arguments)]
pub fn run_select1_yao<P, S, R>(
    t: &mut dyn Channel,
    group: &SchnorrGroup,
    pk: &P,
    sk: &S,
    db: &[u64],
    indices: &[usize],
    stat: &Statistic,
    field: Fp64,
    rng: &mut R,
) -> Result<Vec<u64>, ProtocolError>
where
    P: HomomorphicPk,
    S: HomomorphicSk<P>,
    R: RandomSource + ?Sized,
{
    let shares = input_select::select1(t, group, pk, sk, db, indices, field, rng)?;
    yao_phase(t, group, &shares, stat, rng)
}

/// §3.3.2 (variant 1) + Yao: "2 rounds / Weak, κm² overhead".
///
/// # Errors
///
/// [`ProtocolError`] on any transport fault or malformed message.
#[allow(clippy::too_many_arguments)]
pub fn run_select2v1_yao<P, S, R>(
    t: &mut dyn Channel,
    group: &SchnorrGroup,
    pk: &P,
    sk: &S,
    db: &[u64],
    indices: &[usize],
    stat: &Statistic,
    field: Fp64,
    rng: &mut R,
) -> Result<Vec<u64>, ProtocolError>
where
    P: HomomorphicPk,
    S: HomomorphicSk<P>,
    R: RandomSource + ?Sized,
{
    let shares = input_select::select2_v1(t, group, pk, sk, db, indices, field, rng)?;
    yao_phase(t, group, &shares, stat, rng)
}

/// §3.3.2 (variant 2) + Yao: "2.5 rounds / None*, κm overhead".
///
/// # Errors
///
/// [`ProtocolError`] on any transport fault or malformed message.
#[allow(clippy::too_many_arguments)]
pub fn run_select2v2_yao<PC, SC, PS, SS, R>(
    t: &mut dyn Channel,
    group: &SchnorrGroup,
    client_pk: &PC,
    client_sk: &SC,
    server_pk: &PS,
    server_sk: &SS,
    db: &[u64],
    indices: &[usize],
    stat: &Statistic,
    field: Fp64,
    rng: &mut R,
) -> Result<Vec<u64>, ProtocolError>
where
    PC: HomomorphicPk,
    SC: HomomorphicSk<PC>,
    PS: HomomorphicPk,
    SS: HomomorphicSk<PS>,
    R: RandomSource + ?Sized,
{
    let shares = input_select::select2_v2(
        t, group, client_pk, client_sk, server_pk, server_sk, db, indices, field, rng,
    )?;
    yao_phase(t, group, &shares, stat, rng)
}

/// §3.3.3 + §3.3.4: "2 rounds / None*", scaling to arithmetic circuits.
///
/// Returns the statistic's outputs as exact integers.
///
/// # Errors
///
/// [`ProtocolError`] on any transport fault or malformed message.
#[allow(clippy::too_many_arguments)]
pub fn run_select3_arith<PC, SC, PS, SS, R>(
    t: &mut dyn Channel,
    group: &SchnorrGroup,
    client_pk: &PC,
    client_sk: &SC,
    server_pk: &PS,
    server_sk: &SS,
    db: &[u64],
    indices: &[usize],
    stat: &Statistic,
    rng: &mut R,
) -> Result<Vec<Nat>, ProtocolError>
where
    PC: HomomorphicPk,
    SC: HomomorphicSk<PC>,
    PS: HomomorphicPk,
    SS: HomomorphicSk<PS>,
    R: RandomSource + ?Sized,
{
    let value_bits = bits_for(db.iter().copied().max().unwrap_or(1));
    let shares = input_select::select3(
        t, group, client_pk, client_sk, server_pk, server_sk, db, indices, value_bits, rng,
    )?;
    arith_phase(t, client_pk, client_sk, &shares, stat, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::reference;
    use spfe_crypto::{ChaChaRng, HomomorphicScheme, Paillier};
    use spfe_transport::Transcript;

    fn crypto() -> (
        SchnorrGroup,
        spfe_crypto::PaillierPk,
        spfe_crypto::PaillierSk,
        ChaChaRng,
    ) {
        let mut rng = ChaChaRng::from_u64_seed(0x77);
        let group = SchnorrGroup::generate(96, &mut rng);
        let (pk, sk) = Paillier::keygen(160, &mut rng);
        (group, pk, sk, rng)
    }

    fn db() -> Vec<u64> {
        (0..24u64).map(|i| (i * 31 + 5) % 64).collect()
    }

    #[test]
    fn select1_yao_sum() {
        let (group, pk, sk, mut rng) = crypto();
        let database = db();
        let field = Fp64::new(65_537).unwrap();
        let indices = [3usize, 11, 23];
        let mut t = Transcript::new(1);
        let got = run_select1_yao(
            &mut t,
            &group,
            &pk,
            &sk,
            &database,
            &indices,
            &Statistic::Sum,
            field,
            &mut rng,
        )
        .unwrap();
        assert_eq!(
            got,
            vec![reference::sum(&database, &indices) % field.modulus()]
        );
        assert_eq!(t.report().half_rounds, 4, "2 rounds per Table 1");
    }

    #[test]
    fn select1_yao_frequency() {
        let (group, pk, sk, mut rng) = crypto();
        let database = vec![7u64, 3, 7, 1, 7, 0];
        let field = Fp64::new(257).unwrap();
        let indices = [0usize, 1, 2, 4];
        let mut t = Transcript::new(1);
        let got = run_select1_yao(
            &mut t,
            &group,
            &pk,
            &sk,
            &database,
            &indices,
            &Statistic::Frequency { keyword: 7 },
            field,
            &mut rng,
        )
        .unwrap();
        assert_eq!(got, vec![3]);
    }

    #[test]
    fn select2v1_yao_sum() {
        let (group, pk, sk, mut rng) = crypto();
        let database = db();
        let field = Fp64::new(65_537).unwrap();
        let indices = [0usize, 7, 15, 23];
        let mut t = Transcript::new(1);
        let got = run_select2v1_yao(
            &mut t,
            &group,
            &pk,
            &sk,
            &database,
            &indices,
            &Statistic::Sum,
            field,
            &mut rng,
        )
        .unwrap();
        assert_eq!(
            got,
            vec![reference::sum(&database, &indices) % field.modulus()]
        );
        assert_eq!(t.report().half_rounds, 4);
    }

    #[test]
    fn select2v2_yao_sum() {
        let (group, pk, sk, mut rng) = crypto();
        let (spk, ssk) = Paillier::keygen(160, &mut rng);
        let database = db();
        let field = Fp64::new(65_537).unwrap();
        let indices = [1usize, 12, 20];
        let mut t = Transcript::new(1);
        let got = run_select2v2_yao(
            &mut t,
            &group,
            &pk,
            &sk,
            &spk,
            &ssk,
            &database,
            &indices,
            &Statistic::Sum,
            field,
            &mut rng,
        )
        .unwrap();
        assert_eq!(
            got,
            vec![reference::sum(&database, &indices) % field.modulus()]
        );
        assert_eq!(t.report().half_rounds, 5, "2.5 rounds per Table 1");
    }

    #[test]
    fn select3_arith_sum() {
        let (group, pk, sk, mut rng) = crypto();
        let (spk, ssk) = Paillier::keygen(160, &mut rng);
        let database = db();
        let indices = [2usize, 9, 16, 23];
        let mut t = Transcript::new(1);
        let got = run_select3_arith(
            &mut t,
            &group,
            &pk,
            &sk,
            &spk,
            &ssk,
            &database,
            &indices,
            &Statistic::Sum,
            &mut rng,
        )
        .unwrap();
        assert_eq!(got, vec![Nat::from(reference::sum(&database, &indices))]);
        assert_eq!(t.report().half_rounds, 4, "2 rounds per Table 1");
    }

    #[test]
    fn select3_arith_sum_and_squares() {
        let (group, pk, sk, mut rng) = crypto();
        let (spk, ssk) = Paillier::keygen(160, &mut rng);
        let database = db();
        let indices = [5usize, 6, 7];
        let mut t = Transcript::new(1);
        let got = run_select3_arith(
            &mut t,
            &group,
            &pk,
            &sk,
            &spk,
            &ssk,
            &database,
            &indices,
            &Statistic::SumAndSquares,
            &mut rng,
        )
        .unwrap();
        let s = reference::sum(&database, &indices);
        let ss: u64 = indices.iter().map(|&i| database[i] * database[i]).sum();
        assert_eq!(got, vec![Nat::from(s), Nat::from(ss)]);
        // One extra round for the multiplication level: 3 rounds total.
        assert_eq!(t.report().half_rounds, 6);
    }

    #[test]
    fn select1_yao_median() {
        // The median statistic: a full Batcher sorting network evaluated
        // under garbling — the "heavy f" end of the MPC(m, C_f) spectrum.
        let (group, pk, sk, mut rng) = crypto();
        let database = vec![50u64, 3, 77, 12, 30, 61];
        let field = Fp64::new(127).unwrap();
        let indices = [0usize, 1, 2, 3, 4];
        let mut t = Transcript::new(1);
        let got = run_select1_yao(
            &mut t,
            &group,
            &pk,
            &sk,
            &database,
            &indices,
            &Statistic::Median,
            field,
            &mut rng,
        )
        .unwrap();
        // Values: 50, 3, 77, 12, 30 → sorted 3,12,30,50,77 → median 30.
        assert_eq!(got, vec![30]);
    }

    #[test]
    fn malicious_client_share_shift_gives_weak_security() {
        // The §3.3 discussion: a client that shifts its shares by Δ before
        // the MPC phase learns f(x_I + Δ) — a function of the same ≤ m
        // positions — and nothing more.
        let (group, pk, sk, mut rng) = crypto();
        let database = db();
        let field = Fp64::new(65_537).unwrap();
        let indices = [3usize, 11];
        let mut t = Transcript::new(1);
        let mut shares = input_select::select1(
            &mut t, &group, &pk, &sk, &database, &indices, field, &mut rng,
        )
        .unwrap();
        // Malicious shift by Δ = (10, 100).
        shares.client[0] = field.add(shares.client[0], 10);
        shares.client[1] = field.add(shares.client[1], 100);
        let got = yao_phase(&mut t, &group, &shares, &Statistic::Sum, &mut rng).unwrap();
        let honest = reference::sum(&database, &indices) % field.modulus();
        assert_eq!(
            got,
            vec![field.add(honest, 110)],
            "client learns f(x_I + Δ)"
        );
    }
}
