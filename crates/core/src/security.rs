//! The paper's security taxonomy (§1.2, §2), reified as types.
//!
//! Every protocol in this crate advertises a [`ProtocolMeta`] describing
//! its row of Table 1: round complexity, database-secrecy level against a
//! malicious client, and whether it scales efficiently to arithmetic
//! circuits. The benchmark harness prints these alongside measured costs
//! so the reproduced table carries both the qualitative and quantitative
//! columns.

use std::fmt;

/// Database-secrecy guarantee against a malicious client (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecurityLevel {
    /// The client learns only `f(x_J)` for some `J ∈ [n]^m` — the set `A`
    /// of allowable functions is `{ f(x_J) }`.
    Strong,
    /// The client learns the value of *some* function of at most `m`
    /// database positions with `f`'s output size.
    Weak,
    /// Provable only against a semi-honest client ("None\*" in Table 1);
    /// heuristically weakly secure against a malicious one.
    SemiHonestOnly,
}

impl fmt::Display for SecurityLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SecurityLevel::Strong => write!(f, "Strong"),
            SecurityLevel::Weak => write!(f, "Weak"),
            SecurityLevel::SemiHonestOnly => write!(f, "None*"),
        }
    }
}

/// Client-privacy flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientPrivacy {
    /// Information-theoretic, against up to `t` colluding servers.
    InformationTheoretic {
        /// Collusion threshold.
        t: usize,
    },
    /// Computational (semantic security of the underlying encryption).
    Computational,
}

impl fmt::Display for ClientPrivacy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientPrivacy::InformationTheoretic { t } => write!(f, "perfect (t={t})"),
            ClientPrivacy::Computational => write!(f, "computational"),
        }
    }
}

/// Static description of a protocol — one row of Table 1.
#[derive(Debug, Clone)]
pub struct ProtocolMeta {
    /// Paper section implementing it.
    pub section: &'static str,
    /// Human name.
    pub name: &'static str,
    /// Round complexity in half-round units (2 = 1 round, 3 = 1.5, …).
    pub half_rounds: u32,
    /// Database secrecy against a malicious client.
    pub security: SecurityLevel,
    /// Client privacy flavor.
    pub client_privacy: ClientPrivacy,
    /// "Efficient scalability to arithmetic circuits?" column.
    pub arithmetic_scalable: bool,
    /// The paper's complexity formula, verbatim.
    pub complexity: &'static str,
}

impl ProtocolMeta {
    /// Rounds as printed in Table 1 (e.g. "1", "1.5", "2").
    pub fn rounds_str(&self) -> String {
        if self.half_rounds.is_multiple_of(2) {
            format!("{}", self.half_rounds / 2)
        } else {
            format!("{}.5", self.half_rounds / 2)
        }
    }
}

/// Table 1's four single-server rows (constants used by the harness and
/// asserted against measured round counts in tests).
pub mod table1 {
    use super::*;

    /// §3.2 — PSM + SPIR.
    pub const PSM: ProtocolMeta = ProtocolMeta {
        section: "3.2",
        name: "PSM-based",
        half_rounds: 2,
        security: SecurityLevel::Strong,
        client_privacy: ClientPrivacy::Computational,
        arithmetic_scalable: false,
        complexity: "m x SPIR(n,1,k) + O(k*Cf)",
    };

    /// §3.3.1 — input selection via `m` independent SPIRs.
    pub const SELECT1: ProtocolMeta = ProtocolMeta {
        section: "3.3.1",
        name: "m x SPIR select",
        half_rounds: 4,
        security: SecurityLevel::Weak,
        client_privacy: ClientPrivacy::Computational,
        arithmetic_scalable: true,
        complexity: "m x SPIR(n,1,l) + MPC(m,Cf)",
    };

    /// §3.3.2 — polynomial masking, first variant (1 extra round, κm²).
    pub const SELECT2_V1: ProtocolMeta = ProtocolMeta {
        section: "3.3.2/v1",
        name: "poly-mask v1",
        half_rounds: 4,
        security: SecurityLevel::Weak,
        client_privacy: ClientPrivacy::Computational,
        arithmetic_scalable: true,
        complexity: "SPIR(n,m,log n) + MPC(m,Cf) + k*m^2",
    };

    /// §3.3.2 — polynomial masking, second variant (server speaks first,
    /// 2.5 rounds total, κm).
    pub const SELECT2_V2: ProtocolMeta = ProtocolMeta {
        section: "3.3.2/v2",
        name: "poly-mask v2",
        half_rounds: 5,
        security: SecurityLevel::SemiHonestOnly,
        client_privacy: ClientPrivacy::Computational,
        arithmetic_scalable: true,
        complexity: "SPIR(n,m,log n) + MPC(m,Cf) + k*m",
    };

    /// §3.3.3 — encrypted-database selection (the server's public key is
    /// distributed as setup, matching the paper's 2-round count).
    pub const SELECT3: ProtocolMeta = ProtocolMeta {
        section: "3.3.3",
        name: "enc-db select",
        half_rounds: 4,
        security: SecurityLevel::SemiHonestOnly,
        client_privacy: ClientPrivacy::Computational,
        arithmetic_scalable: true,
        complexity: "SPIR(n,m,k) + MPC(m,Cf)",
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_table1_vocabulary() {
        assert_eq!(SecurityLevel::Strong.to_string(), "Strong");
        assert_eq!(SecurityLevel::Weak.to_string(), "Weak");
        assert_eq!(SecurityLevel::SemiHonestOnly.to_string(), "None*");
    }

    #[test]
    fn rounds_render_with_halves() {
        assert_eq!(table1::PSM.rounds_str(), "1");
        assert_eq!(table1::SELECT1.rounds_str(), "2");
        assert_eq!(table1::SELECT2_V2.rounds_str(), "2.5");
        assert_eq!(table1::SELECT3.rounds_str(), "2");
    }

    #[test]
    fn table1_security_column() {
        assert_eq!(table1::PSM.security, SecurityLevel::Strong);
        assert_eq!(table1::SELECT1.security, SecurityLevel::Weak);
        assert_eq!(table1::SELECT2_V1.security, SecurityLevel::Weak);
        assert_eq!(table1::SELECT2_V2.security, SecurityLevel::SemiHonestOnly);
        assert_eq!(table1::SELECT3.security, SecurityLevel::SemiHonestOnly);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn arithmetic_scalability_column() {
        assert!(!table1::PSM.arithmetic_scalable);
        assert!(table1::SELECT1.arithmetic_scalable);
        assert!(table1::SELECT3.arithmetic_scalable);
    }
}
