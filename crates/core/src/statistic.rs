//! The statistical functions of §4 as pluggable `f`'s.
//!
//! A [`Statistic`] knows how to render itself as the share-reconstructing
//! Boolean circuit consumed by the Yao MPC phase, as an arithmetic circuit
//! for the §3.3.4 phase (when `f` is arithmetic-representable), and how to
//! decode/verify results against clear-text evaluation.

use spfe_circuits::arith::{ArithCircuit, ArithCircuitBuilder};
use spfe_circuits::boolean::Circuit;
use spfe_circuits::builders::{
    bits_for, share_count_below_circuit, share_frequency_circuit, share_median_circuit,
    share_sum_and_squares_circuit, share_sum_mod_circuit, tree_sum_width,
};
use spfe_math::Nat;

/// A statistic over the `m` selected items.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Statistic {
    /// `Σ x_j` (the paper's canonical statistic; yields the average).
    Sum,
    /// `(Σ x_j, Σ x_j²)` — the average+variance package of §4.
    SumAndSquares,
    /// Number of selected items equal to `keyword` (§4 frequency).
    Frequency {
        /// The keyword searched for.
        keyword: u64,
    },
    /// Number of selected items strictly below `threshold`.
    CountBelow {
        /// The threshold.
        threshold: u64,
    },
    /// The (upper) median of the selected items — computed by a
    /// data-oblivious Batcher sorting network inside the MPC phase.
    Median,
}

impl Statistic {
    /// Number of output values.
    pub fn num_outputs(&self) -> usize {
        match self {
            Statistic::SumAndSquares => 2,
            _ => 1,
        }
    }

    /// True iff representable as a (low-degree) arithmetic circuit —
    /// Table 1's scalability column applies to these.
    pub fn is_arithmetic(&self) -> bool {
        matches!(self, Statistic::Sum | Statistic::SumAndSquares)
    }

    /// The share-reconstructing Boolean circuit for the Yao phase: inputs
    /// are `m` server shares then `m` client shares, each `bits(p−1)` wide.
    ///
    /// # Panics
    ///
    /// Panics if a keyword/threshold does not fit below `p`.
    pub fn share_circuit(&self, m: usize, p: u64) -> Circuit {
        match self {
            Statistic::Sum => share_sum_mod_circuit(m, p),
            Statistic::SumAndSquares => share_sum_and_squares_circuit(m, p),
            Statistic::Frequency { keyword } => share_frequency_circuit(m, p, *keyword),
            Statistic::CountBelow { threshold } => share_count_below_circuit(m, p, *threshold),
            Statistic::Median => share_median_circuit(m, p),
        }
    }

    /// The arithmetic circuit for the §3.3.4 phase: inputs are `m` client
    /// mask-negations then `m` server blinded values; the circuit first
    /// reconstructs `x_j` by addition.
    ///
    /// # Panics
    ///
    /// Panics if the statistic is not arithmetic-representable.
    pub fn share_arith_circuit(&self, m: usize, ring: Nat) -> ArithCircuit {
        assert!(
            self.is_arithmetic(),
            "{self:?} has no arithmetic-circuit representation"
        );
        let mut b = ArithCircuitBuilder::new(ring);
        let client_ins = b.inputs(m);
        let server_ins = b.inputs(m);
        let xs: Vec<_> = client_ins
            .iter()
            .zip(&server_ins)
            .map(|(&c, &s)| b.add(c, s))
            .collect();
        let mut sum = xs[0];
        for &x in &xs[1..] {
            sum = b.add(sum, x);
        }
        b.output(sum);
        if matches!(self, Statistic::SumAndSquares) {
            let mut sq_sum = None;
            for &x in &xs {
                let sq = b.mul(x, x);
                sq_sum = Some(match sq_sum {
                    None => sq,
                    Some(prev) => b.add(prev, sq),
                });
            }
            b.output(sq_sum.unwrap());
        }
        b.build()
    }

    /// Splits the Yao phase's output bits into the statistic's values.
    ///
    /// # Panics
    ///
    /// Panics if the bit count mismatches the circuit's output layout.
    pub fn decode_bits(&self, bits: &[bool], m: usize, p: u64) -> Vec<u64> {
        let w = bits_for(p - 1);
        let take = |range: std::ops::Range<usize>| -> u64 {
            bits[range]
                .iter()
                .enumerate()
                .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
        };
        match self {
            Statistic::Sum => {
                assert_eq!(bits.len(), w);
                vec![take(0..w)]
            }
            Statistic::SumAndSquares => {
                let sum_w = tree_sum_width(w, m);
                let sq_w = tree_sum_width(2 * w, m);
                assert_eq!(bits.len(), sum_w + sq_w, "output layout mismatch");
                vec![take(0..sum_w), take(sum_w..bits.len())]
            }
            Statistic::Frequency { .. } | Statistic::CountBelow { .. } => {
                vec![take(0..bits.len())]
            }
            Statistic::Median => {
                assert_eq!(bits.len(), w);
                vec![take(0..w)]
            }
        }
    }

    /// Clear-text evaluation (ground truth), modulo `p` where the circuit
    /// reduces.
    pub fn clear_eval(&self, values: &[u64], indices: &[usize], p: u64) -> Vec<u64> {
        let xs: Vec<u64> = indices.iter().map(|&i| values[i] % p).collect();
        match self {
            Statistic::Sum => vec![xs.iter().fold(0u64, |a, &x| (a + x) % p)],
            Statistic::SumAndSquares => vec![
                xs.iter().sum::<u64>(),
                xs.iter().map(|&x| x * x).sum::<u64>(),
            ],
            Statistic::Frequency { keyword } => {
                vec![xs.iter().filter(|&&x| x == *keyword).count() as u64]
            }
            Statistic::CountBelow { threshold } => {
                vec![xs.iter().filter(|&&x| x < *threshold).count() as u64]
            }
            Statistic::Median => {
                let mut sorted = xs.clone();
                sorted.sort_unstable();
                vec![sorted[sorted.len() / 2]]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_counts() {
        assert_eq!(Statistic::Sum.num_outputs(), 1);
        assert_eq!(Statistic::SumAndSquares.num_outputs(), 2);
    }

    #[test]
    fn arithmetic_representability() {
        assert!(Statistic::Sum.is_arithmetic());
        assert!(Statistic::SumAndSquares.is_arithmetic());
        assert!(!Statistic::Frequency { keyword: 3 }.is_arithmetic());
        assert!(!Statistic::CountBelow { threshold: 3 }.is_arithmetic());
        assert!(!Statistic::Median.is_arithmetic());
    }

    #[test]
    #[should_panic(expected = "no arithmetic-circuit representation")]
    fn frequency_has_no_arith_circuit() {
        let _ = Statistic::Frequency { keyword: 1 }.share_arith_circuit(2, Nat::from(97u64));
    }

    #[test]
    fn arith_circuit_shapes() {
        let sum = Statistic::Sum.share_arith_circuit(3, Nat::from(1_000_003u64));
        assert_eq!(sum.mul_count(), 0);
        assert_eq!(sum.num_inputs(), 6);
        let ss = Statistic::SumAndSquares.share_arith_circuit(3, Nat::from(1_000_003u64));
        assert_eq!(ss.mul_count(), 3);
        assert_eq!(ss.mul_depth(), 1);
    }

    #[test]
    fn clear_eval_ground_truth() {
        let vals = [5u64, 9, 5, 2];
        let idx = [0usize, 1, 2];
        assert_eq!(Statistic::Sum.clear_eval(&vals, &idx, 1 << 20), vec![19]);
        assert_eq!(
            Statistic::SumAndSquares.clear_eval(&vals, &idx, 1 << 20),
            vec![19, 131]
        );
        assert_eq!(
            Statistic::Frequency { keyword: 5 }.clear_eval(&vals, &idx, 1 << 20),
            vec![2]
        );
        assert_eq!(
            Statistic::CountBelow { threshold: 6 }.clear_eval(&vals, &idx, 1 << 20),
            vec![2]
        );
        assert_eq!(Statistic::Median.clear_eval(&vals, &idx, 1 << 20), vec![5]);
    }
}
