//! Hiding the function itself: SPFE with a universal `f` (§1).
//!
//! The paper notes that "solutions where the servers should not learn even
//! `f` can be obtained by letting `f` be a 'universal function' and
//! allowing the client to specify the actual function to be evaluated via
//! some additional private input to `f`."
//!
//! Implemented here for function *menus*: the public function is a
//! combined circuit computing every statistic in an agreed menu and
//! multiplexing the outputs by private client selector bits. The server
//! learns the menu (that is the public `f`); which entry the client
//! actually evaluates stays hidden inside its garbled-circuit inputs.

use crate::input_select::SharesModP;
use crate::statistic::Statistic;
use spfe_circuits::boolean::{Circuit, CircuitBuilder, WireId};
use spfe_circuits::builders::bits_for;
use spfe_crypto::SchnorrGroup;
use spfe_math::RandomSource;
use spfe_mpc::yao2pc::{self, to_bits};
use spfe_transport::{Channel, ProtocolError};

/// Builds the universal circuit for a menu of statistics over `m` shared
/// items mod `p`.
///
/// Input layout: server shares (`m·w` bits) ‖ client shares (`m·w` bits) ‖
/// client selector (`⌈log₂ |menu|⌉` bits). Output: the selected
/// statistic's value, zero-padded to the widest menu entry.
///
/// # Panics
///
/// Panics if the menu is empty or any entry has more than one output.
pub fn universal_circuit(menu: &[Statistic], m: usize, p: u64) -> Circuit {
    assert!(!menu.is_empty(), "empty menu");
    assert!(
        menu.iter().all(|s| s.num_outputs() == 1),
        "menu entries must be single-output statistics"
    );
    let w = bits_for(p - 1);
    let sel_bits = bits_for(menu.len() as u64 - 1).max(1);
    let mut b = CircuitBuilder::new();
    let a_words: Vec<Vec<WireId>> = (0..m).map(|_| b.inputs(w)).collect();
    let b_words: Vec<Vec<WireId>> = (0..m).map(|_| b.inputs(w)).collect();
    let selector = b.inputs(sel_bits);

    // Reconstruct the items once; all menu entries share them.
    let xs: Vec<Vec<WireId>> = a_words
        .iter()
        .zip(&b_words)
        .map(|(aw, bw)| b.add_mod_words(aw, bw, p))
        .collect();

    // Evaluate every menu entry on the reconstructed items.
    let mut outputs: Vec<Vec<WireId>> = menu
        .iter()
        .map(|stat| eval_stat_on_words(&mut b, stat, &xs, p))
        .collect();
    let width = outputs.iter().map(|o| o.len()).max().unwrap();
    for o in &mut outputs {
        while o.len() < width {
            o.push(b.constant(false));
        }
    }

    // Mux tree over the menu driven by the selector bits.
    let mut level = outputs;
    for &sbit in &selector {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                next.push(b.mux_words(sbit, &pair[0], &pair[1]));
            } else {
                next.push(pair[0].clone());
            }
        }
        level = next;
    }
    for wire in &level[0] {
        b.output(*wire);
    }
    b.build()
}

/// Evaluates one statistic on already-reconstructed item words.
fn eval_stat_on_words(
    b: &mut CircuitBuilder,
    stat: &Statistic,
    xs: &[Vec<WireId>],
    p: u64,
) -> Vec<WireId> {
    let w = xs[0].len();
    match stat {
        Statistic::Sum => {
            let mut acc = xs[0].clone();
            for x in &xs[1..] {
                acc = b.add_mod_words(&acc, x, p);
            }
            acc
        }
        Statistic::Frequency { keyword } => {
            assert!(*keyword < p);
            let kw: Vec<WireId> = (0..w)
                .map(|i| b.constant((keyword >> i) & 1 == 1))
                .collect();
            let mut flags = Vec::with_capacity(xs.len());
            for x in xs {
                flags.push(b.eq_words(x, &kw));
            }
            count_flags(b, flags)
        }
        Statistic::CountBelow { threshold } => {
            assert!(*threshold < p);
            let th: Vec<WireId> = (0..w)
                .map(|i| b.constant((threshold >> i) & 1 == 1))
                .collect();
            let mut flags = Vec::with_capacity(xs.len());
            for x in xs {
                flags.push(b.lt_words(x, &th));
            }
            count_flags(b, flags)
        }
        Statistic::Median => {
            let mut xs_sorted: Vec<Vec<WireId>> = xs.to_vec();
            spfe_circuits::builders::sort_words(b, &mut xs_sorted);
            xs_sorted[xs_sorted.len() / 2].clone()
        }
        Statistic::SumAndSquares => panic!("multi-output entries unsupported in menus"),
    }
}

fn count_flags(b: &mut CircuitBuilder, flags: Vec<WireId>) -> Vec<WireId> {
    let mut acc: Vec<WireId> = vec![flags[0]];
    for &f in &flags[1..] {
        let fx = vec![f];
        // add_words over unequal widths: pad.
        let w = acc.len();
        let mut padded = fx;
        while padded.len() < w {
            padded.push(b.constant(false));
        }
        acc = b.add_words(&acc, &padded);
    }
    acc
}

/// The universal MPC phase: like `two_phase::yao_phase` but with the
/// client's private `choice` of menu entry. The server sees only the menu.
///
/// # Errors
///
/// [`ProtocolError`] on any transport fault or malformed message.
///
/// # Panics
///
/// Panics if `choice >= menu.len()` or shares are inconsistent (local
/// setup bugs, not attacks).
pub fn universal_yao_phase<R: RandomSource + ?Sized>(
    t: &mut dyn Channel,
    group: &SchnorrGroup,
    shares: &SharesModP,
    menu: &[Statistic],
    choice: usize,
    rng: &mut R,
) -> Result<u64, ProtocolError> {
    assert!(choice < menu.len(), "choice out of menu");
    let _s = spfe_obs::span("universal-yao-phase");
    let m = shares.server.len();
    let w = bits_for(shares.p - 1);
    let circuit = universal_circuit(menu, m, shares.p);
    let server_bits: Vec<bool> = shares.server.iter().flat_map(|&a| to_bits(a, w)).collect();
    let sel_bits = bits_for(menu.len() as u64 - 1).max(1);
    let mut client_bits: Vec<bool> = shares.client.iter().flat_map(|&b| to_bits(b, w)).collect();
    // The mux tree consumes selector bits LSB-first over chunked pairs:
    // entry index bit i selects within level i. Encode `choice` directly.
    client_bits.extend(to_bits(choice as u64, sel_bits));
    let out = yao2pc::run(t, group, &circuit, &server_bits, &client_bits, rng)?;
    Ok(yao2pc::from_bits(&out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input_select::select1;
    use spfe_crypto::{ChaChaRng, HomomorphicScheme, Paillier};
    use spfe_math::Fp64;
    use spfe_transport::Transcript;

    fn menu() -> Vec<Statistic> {
        vec![
            Statistic::Sum,
            Statistic::Frequency { keyword: 9 },
            Statistic::CountBelow { threshold: 10 },
        ]
    }

    #[test]
    fn universal_circuit_selects_each_entry() {
        let p = 31u64;
        let m = 3;
        let c = universal_circuit(&menu(), m, p);
        let w = bits_for(p - 1);
        let xs = [9u64, 4, 9];
        let a = [7u64, 30, 2];
        let b: Vec<u64> = xs
            .iter()
            .zip(&a)
            .map(|(&x, &av)| (x + p - av) % p)
            .collect();
        let expects = [22u64 % p, 2, 3]; // sum mod 31, freq of 9, count < 10
        for (choice, &expect) in expects.iter().enumerate() {
            let mut input: Vec<bool> = a.iter().flat_map(|&v| to_bits(v, w)).collect();
            input.extend(b.iter().flat_map(|&v| to_bits(v, w)));
            input.extend(to_bits(choice as u64, 2));
            assert_eq!(c.evaluate_to_u64(&input), expect, "choice={choice}");
        }
    }

    #[test]
    fn end_to_end_function_hiding() {
        let mut rng = ChaChaRng::from_u64_seed(0x0F);
        let group = SchnorrGroup::generate(96, &mut rng);
        let (pk, sk) = Paillier::keygen(160, &mut rng);
        let field = Fp64::new(31).unwrap();
        let db = vec![9u64, 4, 9, 30, 2, 9];
        let indices = [0usize, 2, 4];
        // Clear values: 9, 9, 2 — all below 10.
        let expects = [20u64, 2, 3]; // sum, freq(9), count<10
        for (choice, &expect) in expects.iter().enumerate() {
            let mut t = Transcript::new(1);
            let shares = select1(&mut t, &group, &pk, &sk, &db, &indices, field, &mut rng).unwrap();
            let got =
                universal_yao_phase(&mut t, &group, &shares, &menu(), choice, &mut rng).unwrap();
            assert_eq!(got, expect, "choice={choice}");
        }
    }

    #[test]
    fn server_view_is_choice_independent() {
        // The server's view — the circuit and message sizes — is identical
        // for every menu choice (the selector travels only inside OT).
        let mut rng = ChaChaRng::from_u64_seed(0x10);
        let group = SchnorrGroup::generate(96, &mut rng);
        let (pk, sk) = Paillier::keygen(160, &mut rng);
        let field = Fp64::new(31).unwrap();
        let db = vec![1u64, 2, 3, 4];
        let mut sizes = Vec::new();
        for choice in 0..3 {
            let mut t = Transcript::new(1);
            let shares = select1(&mut t, &group, &pk, &sk, &db, &[1, 3], field, &mut rng).unwrap();
            universal_yao_phase(&mut t, &group, &shares, &menu(), choice, &mut rng).unwrap();
            sizes.push(t.report().client_to_server as f64);
        }
        // Variable-length bignum encodings jitter by a few bytes; the view
        // must not vary *structurally* with the choice.
        for pair in sizes.windows(2) {
            assert!(
                (pair[0] - pair[1]).abs() / pair[0] < 0.01,
                "sizes {sizes:?} differ structurally"
            );
        }
    }

    #[test]
    #[should_panic(expected = "choice out of menu")]
    fn out_of_menu_choice_rejected() {
        let mut rng = ChaChaRng::from_u64_seed(0x11);
        let group = SchnorrGroup::generate(96, &mut rng);
        let shares = SharesModP {
            p: 31,
            server: vec![1],
            client: vec![2],
        };
        let mut t = Transcript::new(1);
        let _ = universal_yao_phase(&mut t, &group, &shares, &menu(), 5, &mut rng);
    }
}
