//! # spfe-core
//!
//! The paper's contribution: selective private function evaluation (SPFE)
//! protocols, reproduced in full.
//!
//! * [`multiserver`] — §3.1, multivariate-polynomial SPFE (Theorem 2);
//! * [`psm_spfe`] — §3.2, one-round PSM+SPIR SPFE (Theorem 3, Corollary 4);
//! * [`input_select`] + [`two_phase`] — §3.3, the three input-selection
//!   reductions composed with Yao / §3.3.4 arithmetic MPC phases;
//! * [`statistic`], [`stats`] — the §4 private-statistics suite (sum,
//!   average+variance package, weighted sum, frequency);
//! * [`baseline`] — the linear-communication baselines SPFE is measured
//!   against (buy-the-database, generic Yao over the whole database);
//! * [`security`], [`database`] — the security taxonomy (Table 1 metadata)
//!   and synthetic workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod database;
pub mod input_select;
pub mod multiserver;
pub mod psm_spfe;
pub mod security;
pub mod statistic;
pub mod stats;
pub mod two_phase;
pub mod universal;

pub use database::Database;
pub use security::{ClientPrivacy, ProtocolMeta, SecurityLevel};
pub use statistic::Statistic;
