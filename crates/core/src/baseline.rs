//! The linear-communication baselines SPFE is measured against (§1, §1.1).
//!
//! 1. [`buy_the_database`] — the "obvious solution often employed in
//!    practice": the server ships the whole database; the client computes
//!    `f` locally. Perfect client privacy, zero database secrecy,
//!    communication `Θ(n)`.
//! 2. [`generic_yao`] — generic secure two-party computation of the SPFE
//!    functionality: a single garbled circuit whose *inputs include the
//!    entire database*, so the circuit has `Ω(n)` selection gates
//!    (a `log n`-level multiplexer tree per selected item). This is the
//!    "generic solutions … communication at least linear in n" strawman
//!    the paper's introduction argues against; we actually run it, so the
//!    crossover experiments (E9) compare real executions.

use crate::statistic::Statistic;
use spfe_circuits::boolean::{Circuit, CircuitBuilder, WireId};
use spfe_crypto::SchnorrGroup;
use spfe_math::RandomSource;
use spfe_mpc::yao2pc::{self, to_bits};
use spfe_transport::{Channel, ChannelExt, ProtocolError, Wire as _};

/// Ships the entire database to the client, which evaluates locally.
/// Returns the statistic's values; the transcript records the `Θ(n·ℓ)`
/// download.
///
/// # Errors
///
/// [`ProtocolError`] on any transport fault.
pub fn buy_the_database(
    t: &mut dyn Channel,
    db: &[u64],
    indices: &[usize],
    stat: &Statistic,
) -> Result<Vec<u64>, ProtocolError> {
    // A 1-byte request, then the full database.
    let _ = t.client_to_server(0, "buy-request", &1u8)?;
    let copy: Vec<u64> = t.server_to_client(0, "buy-database", &db.to_vec())?;
    let p = copy.iter().copied().max().unwrap_or(0).max(1);
    // Local evaluation, exact (no modulus): use a modulus above everything.
    let big_p = (p + 1).next_power_of_two().max(1 << 20);
    Ok(stat.clear_eval(&copy, indices, big_p))
}

/// Size in bytes of the buy-the-database transfer for `n` items of
/// `value_bits` bits — the analytic baseline curve.
pub fn buy_cost_bytes(n: usize, value_bits: usize) -> u64 {
    (n * value_bits) as u64 / 8
}

/// Builds the generic-MPC circuit for the SPFE functionality: a
/// multiplexer tree selecting `m` items of `value_bits` bits out of `n`
/// (server inputs), driven by `m·⌈log₂ n⌉` client index bits, followed by
/// the statistic's circuit.
///
/// Circuit size is `Ω(n·m·value_bits)` — the point of the baseline.
pub fn selection_circuit(n: usize, m: usize, value_bits: usize, stat: &Statistic) -> Circuit {
    assert!(n > 0 && m > 0 && value_bits > 0);
    let index_bits = spfe_circuits::formula::index_bits(n);
    let mut b = CircuitBuilder::new();
    // Server inputs: the whole database, bit by bit.
    let db_words: Vec<Vec<WireId>> = (0..n).map(|_| b.inputs(value_bits)).collect();
    // Client inputs: m indices.
    let idx_words: Vec<Vec<WireId>> = (0..m).map(|_| b.inputs(index_bits)).collect();
    // Selection: for each slot, a log-depth mux tree over the database.
    let selected: Vec<Vec<WireId>> = idx_words
        .iter()
        .map(|idx| {
            let mut level: Vec<Vec<WireId>> = db_words.clone();
            for &sel_bit in idx {
                let mut next = Vec::with_capacity(level.len().div_ceil(2));
                let mut it = level.chunks(2);
                for pair in &mut it {
                    if pair.len() == 2 {
                        next.push(b.mux_words(sel_bit, &pair[0], &pair[1]));
                    } else {
                        next.push(pair[0].clone());
                    }
                }
                level = next;
            }
            level[0].clone()
        })
        .collect();
    // Apply the statistic on the selected words.
    let max_val = (1u64 << value_bits) - 1;
    apply_stat(&mut b, &selected, stat, max_val);
    b.build()
}

fn apply_stat(b: &mut CircuitBuilder, words: &[Vec<WireId>], stat: &Statistic, max_val: u64) {
    match stat {
        Statistic::Sum => {
            let mut acc = words[0].clone();
            for w in &words[1..] {
                acc = add_any(b, &acc, w);
            }
            for wire in acc {
                b.output(wire);
            }
        }
        Statistic::Frequency { keyword } => {
            assert!(*keyword <= max_val, "keyword exceeds item width");
            let width = words[0].len();
            let kw: Vec<WireId> = (0..width)
                .map(|i| b.constant((keyword >> i) & 1 == 1))
                .collect();
            let flags: Vec<Vec<WireId>> = words.iter().map(|w| vec![b.eq_words(w, &kw)]).collect();
            let mut acc = flags[0].clone();
            for f in &flags[1..] {
                acc = add_any(b, &acc, f);
            }
            for wire in acc {
                b.output(wire);
            }
        }
        other => panic!("generic baseline does not implement {other:?}"),
    }
}

fn add_any(b: &mut CircuitBuilder, x: &[WireId], y: &[WireId]) -> Vec<WireId> {
    let w = x.len().max(y.len());
    let pad = |b: &mut CircuitBuilder, v: &[WireId], w: usize| {
        let mut out = v.to_vec();
        while out.len() < w {
            out.push(b.constant(false));
        }
        out
    };
    let xx = pad(b, x, w);
    let yy = pad(b, y, w);
    b.add_words(&xx, &yy)
}

/// Runs the generic-Yao SPFE baseline end to end: the server garbles the
/// whole-database selection circuit; the client's inputs are its index
/// bits. Communication is dominated by the `Ω(κ·n)` garbled tables.
///
/// # Errors
///
/// [`ProtocolError`] on any transport fault or malformed counterparty
/// message.
///
/// # Panics
///
/// Panics on out-of-range indices or oversized values (local setup bugs,
/// not attacks).
pub fn generic_yao<R: RandomSource + ?Sized>(
    t: &mut dyn Channel,
    group: &SchnorrGroup,
    db: &[u64],
    indices: &[usize],
    value_bits: usize,
    stat: &Statistic,
    rng: &mut R,
) -> Result<Vec<u64>, ProtocolError> {
    let n = db.len();
    let m = indices.len();
    assert!(m > 0);
    assert!(indices.iter().all(|&i| i < n), "index out of range");
    assert!(
        db.iter().all(|&v| v < (1u64 << value_bits)),
        "value exceeds width"
    );
    let circuit = selection_circuit(n, m, value_bits, stat);
    let index_bits = spfe_circuits::formula::index_bits(n);
    let server_bits: Vec<bool> = db.iter().flat_map(|&v| to_bits(v, value_bits)).collect();
    let client_bits: Vec<bool> = indices
        .iter()
        .flat_map(|&i| to_bits(i as u64, index_bits))
        .collect();
    let out = yao2pc::run(t, group, &circuit, &server_bits, &client_bits, rng)?;
    Ok(vec![yao2pc::from_bits(&out)])
}

/// Analytic size (bytes) of the garbled selection circuit — used to plot
/// the baseline beyond sizes that are practical to actually garble.
pub fn generic_yao_cost_estimate(n: usize, m: usize, value_bits: usize) -> u64 {
    let stat = Statistic::Sum;
    if n <= 1 << 12 {
        // Small enough: measure the real thing.
        let c = selection_circuit(n, m, value_bits, &stat);
        let (gc, _) = spfe_mpc::garble::garble(&c, [0u8; 32]);
        gc.to_bytes().len() as u64
    } else {
        // Extrapolate from the per-item cost at a reference size.
        let reference = 1 << 10;
        let c = selection_circuit(reference, m, value_bits, &stat);
        let (gc, _) = spfe_mpc::garble::garble(&c, [0u8; 32]);
        (gc.to_bytes().len() as u64) * (n as u64) / (reference as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::reference;
    use spfe_crypto::ChaChaRng;
    use spfe_transport::Transcript;

    #[test]
    fn buy_baseline_is_linear_and_correct() {
        let db: Vec<u64> = (0..200u64).map(|i| i % 37).collect();
        let indices = [0usize, 50, 100];
        let mut t = Transcript::new(1);
        let got = buy_the_database(&mut t, &db, &indices, &Statistic::Sum).unwrap();
        assert_eq!(got[0], reference::sum(&db, &indices));
        // Downstream ≥ 8 bytes per item.
        assert!(t.report().server_to_client >= 8 * db.len() as u64);
    }

    #[test]
    fn generic_yao_computes_sum() {
        let mut rng = ChaChaRng::from_u64_seed(0x9A0);
        let group = SchnorrGroup::generate(96, &mut rng);
        let db: Vec<u64> = (0..16u64).map(|i| (i * 5) % 8).collect();
        let indices = [2usize, 9, 15];
        let mut t = Transcript::new(1);
        let got = generic_yao(&mut t, &group, &db, &indices, 3, &Statistic::Sum, &mut rng).unwrap();
        assert_eq!(got[0], reference::sum(&db, &indices));
    }

    #[test]
    fn generic_yao_frequency() {
        let mut rng = ChaChaRng::from_u64_seed(0x9A1);
        let group = SchnorrGroup::generate(96, &mut rng);
        let db = vec![3u64, 1, 3, 2, 3, 0, 1, 2];
        let indices = [0usize, 2, 4, 5];
        let mut t = Transcript::new(1);
        let got = generic_yao(
            &mut t,
            &group,
            &db,
            &indices,
            2,
            &Statistic::Frequency { keyword: 3 },
            &mut rng,
        )
        .unwrap();
        assert_eq!(got[0], 3);
    }

    #[test]
    fn selection_circuit_size_is_linear_in_n() {
        let s16 = selection_circuit(16, 2, 4, &Statistic::Sum).size();
        let s64 = selection_circuit(64, 2, 4, &Statistic::Sum).size();
        let ratio = s64 as f64 / s16 as f64;
        assert!(ratio > 3.0 && ratio < 5.0, "Ω(n) selection: {ratio}");
    }

    #[test]
    fn generic_yao_communication_is_linear_in_n() {
        let mut rng = ChaChaRng::from_u64_seed(0x9A2);
        let group = SchnorrGroup::generate(96, &mut rng);
        let mut totals = Vec::new();
        for n in [16usize, 64] {
            let db: Vec<u64> = (0..n as u64).map(|i| i % 4).collect();
            let mut t = Transcript::new(1);
            generic_yao(&mut t, &group, &db, &[1, 2], 2, &Statistic::Sum, &mut rng).unwrap();
            totals.push(t.report().total_bytes());
        }
        let ratio = totals[1] as f64 / totals[0] as f64;
        assert!(ratio > 3.0, "4× database should be ≈4× bytes: {ratio}");
    }

    #[test]
    fn cost_estimate_monotone() {
        let a = generic_yao_cost_estimate(256, 2, 4);
        let b = generic_yao_cost_estimate(1024, 2, 4);
        assert!(b > 3 * a);
        assert_eq!(buy_cost_bytes(1000, 16), 2000);
    }
}
