//! §3.2 — one-round SPFE from PSM protocols + SPIR (Theorem 3).
//!
//! The servers simulate the `m+1` players of a PSM protocol for `f`; the
//! client simulates the referee. For each argument slot `j`, each server
//! prepares an `n`-item *virtual database* whose `i`-th entry is the
//! message player `P_j` would send on input `x_i` (under the common PSM
//! randomness `r`); the client retrieves entry `i_j` by SPIR. The extra
//! message `p₀` (a function of `r` alone) is sent in the clear. All `m+1`
//! messages travel in one round.
//!
//! Because the client can only obtain *valid PSM messages on actual
//! database items*, this construction is **strongly secure** against a
//! malicious client (Table 1, row 1).
//!
//! Three instantiations:
//!
//! * [`run_yao_psm`] — single-server, computational: Corollary 4(1),
//!   communication `m·SPIR(n,1,κ) + O(κ·C_f)`;
//! * [`run_sum_psm`] — `k`-server, perfectly secure for the sum function
//!   (Example 1): communication `m·PSPIR_k(n,1,ℓ)`, `β = 0`;
//! * [`run_bp_psm`] — `k`-server, perfectly secure for branching programs:
//!   Corollary 4(2), communication `m·PSPIR_k(n,1,O(B_f²))`.

use spfe_circuits::boolean::Circuit;
use spfe_circuits::bp::BranchingProgram;
use spfe_crypto::hom::{HomomorphicPk, HomomorphicSk};
use spfe_crypto::{ChaChaRng, SchnorrGroup};
#[cfg(test)]
use spfe_math::Fp64;
use spfe_math::RandomSource;
use spfe_mpc::garble::{self, Label};
use spfe_mpc::psm;
use spfe_pir::poly_it::{self, PolyItParams};
use spfe_pir::spir::{self, SpirParams, SpirQuery, SpirWordsAnswer};
use spfe_transport::{Channel, ChannelExt, ProtocolError};

/// Packs a label into two little-endian u64 words.
fn label_to_words(l: &Label) -> [u64; 2] {
    [
        u64::from_le_bytes(l[..8].try_into().unwrap()),
        u64::from_le_bytes(l[8..].try_into().unwrap()),
    ]
}

/// Unpacks two u64 words into a label.
fn words_to_label(w: &[u64]) -> Label {
    let mut out = [0u8; 16];
    out[..8].copy_from_slice(&w[0].to_le_bytes());
    out[8..].copy_from_slice(&w[1].to_le_bytes());
    out
}

/// Single-server, computationally secure PSM-SPFE (Corollary 4(1)).
///
/// `circuit` computes `f` over `m` items of `item_bits` bits each (input
/// bit `j·item_bits + b` = bit `b` of the `j`-th selected item). Returns
/// `f(x_I)` as a `u64` (little-endian output bits).
///
/// # Errors
///
/// [`ProtocolError`] on any transport fault or malformed message.
///
/// # Panics
///
/// Panics if the circuit input count is not `indices.len() · item_bits`,
/// an index is out of range, or a database value needs more than
/// `item_bits` bits (local setup bugs, not attacks).
#[allow(clippy::too_many_arguments)]
pub fn run_yao_psm<P, S, R>(
    t: &mut dyn Channel,
    group: &SchnorrGroup,
    pk: &P,
    sk: &S,
    db: &[u64],
    indices: &[usize],
    circuit: &Circuit,
    item_bits: usize,
    rng: &mut R,
) -> Result<u64, ProtocolError>
where
    P: HomomorphicPk,
    S: HomomorphicSk<P>,
    R: RandomSource + ?Sized,
{
    let m = indices.len();
    assert!(m > 0 && item_bits > 0);
    assert_eq!(circuit.num_inputs(), m * item_bits, "circuit arity");
    assert!(indices.iter().all(|&i| i < db.len()), "index out of range");
    assert!(
        db.iter().all(|&v| v < (1u64 << item_bits)),
        "database value exceeds item width"
    );

    let _proto = spfe_obs::span("psm-yao");

    // Round 1, client → server: one SPIR query per slot.
    let params = SpirParams::new(group.clone(), db.len());
    let (queries, states) = {
        let _s = spfe_obs::span("query-gen");
        let mut queries = Vec::with_capacity(m);
        let mut states = Vec::with_capacity(m);
        for &i in indices {
            let (q, st) = spir::client_query(&params, pk, i, rng);
            queries.push(q);
            states.push(st);
        }
        (queries, states)
    };
    let queries: Vec<SpirQuery> = t.client_to_server(0, "psm-spir-queries", &queries)?;

    // Server: garble f from fresh randomness (the PSM common random input),
    // build each player's virtual database of input-label bundles, answer
    // the SPIR queries, and attach p₀ = the garbled circuit.
    let _se = spfe_obs::span("server-eval");
    let mut seed = [0u8; 32];
    rng.fill_bytes(&mut seed);
    let (garbled, secrets) = garble::garble(circuit, seed);
    let answers: Vec<SpirWordsAnswer> = queries
        .iter()
        .enumerate()
        .map(|(j, q)| {
            let vdb: Vec<Vec<u64>> = (0..db.len())
                .map(|i| {
                    let mut words = Vec::with_capacity(2 * item_bits);
                    for b in 0..item_bits {
                        let bit = (db[i] >> b) & 1 == 1;
                        let label = secrets.input_label(j * item_bits + b, bit);
                        words.extend(label_to_words(&label));
                    }
                    words
                })
                .collect();
            spir::server_answer_words(&params, pk, &vdb, q, rng)
        })
        .collect::<Result<_, _>>()?;
    drop(_se);
    let (garbled, answers) = t.server_to_client(0, "psm-p0-and-answers", &(garbled, answers))?;

    // Client (referee): decode labels, evaluate the garbled circuit.
    const BAD: ProtocolError = ProtocolError::InvalidMessage {
        label: "psm-p0-and-answers",
        reason: "reply inconsistent with circuit",
    };
    let _s = spfe_obs::span("reconstruct");
    if answers.len() != states.len() || !garble::is_well_formed(circuit, &garbled) {
        return Err(BAD);
    }
    let mut labels = Vec::with_capacity(m * item_bits);
    for (st, a) in states.iter().zip(&answers) {
        let words = spir::client_decode_words(&params, pk, sk, st, a)?;
        if words.len() != 2 * item_bits {
            return Err(BAD);
        }
        for b in 0..item_bits {
            labels.push(words_to_label(&words[2 * b..2 * b + 2]));
        }
    }
    let out = psm::yao::referee(circuit, &garbled, &labels);
    Ok(spfe_mpc::yao2pc::from_bits(&out))
}

/// `k`-server perfectly secure PSM-SPFE for the **sum** function
/// (Example 1 + Theorem 3): `Σ_j x_{i_j} mod p`.
///
/// The servers' common randomness (`shared_seed`) yields both the sum-PSM
/// pads `r_j` (summing to 0) and per-slot blinding polynomials for
/// symmetric privacy. One round; every server sends `m` field elements.
///
/// # Errors
///
/// [`ProtocolError`] on any transport fault or malformed message.
///
/// # Panics
///
/// Panics if the channel server count differs from the scheme's `k`, or
/// an index/database value is out of range (local setup bugs).
pub fn run_sum_psm<R: RandomSource + ?Sized>(
    t: &mut dyn Channel,
    params: &PolyItParams,
    db: &[u64],
    indices: &[usize],
    shared_seed: u64,
    rng: &mut R,
) -> Result<u64, ProtocolError> {
    let m = indices.len();
    assert!(m > 0);
    let p = params.field.modulus();
    assert!(db.iter().all(|&v| v < p), "db value exceeds field");
    assert_eq!(t.num_servers(), params.num_servers());
    let _proto = spfe_obs::span("psm-sum");

    // Client → servers: m poly-IT PIR queries per server.
    let mut per_server: Vec<Vec<poly_it::PolyItQuery>> =
        vec![Vec::with_capacity(m); params.num_servers()];
    for &i in indices {
        let qs = poly_it::client_queries(params, i, rng);
        for (h, q) in qs.into_iter().enumerate() {
            per_server[h].push(q);
        }
    }
    let received: Vec<Vec<poly_it::PolyItQuery>> = per_server
        .iter()
        .enumerate()
        .map(|(h, qs)| t.client_to_server(h, "sumpsm-queries", qs))
        .collect::<Result<_, _>>()?;

    // Servers: virtual database vdb_j[i] = x_i + r_j (mod p), blinded.
    let derive = |seed: u64| -> (Vec<u64>, Vec<spfe_math::Poly>) {
        let mut srng = ChaChaRng::from_u64_seed(seed);
        let mut pads: Vec<u64> = (0..m - 1).map(|_| params.field.random(&mut srng)).collect();
        let total = params.field.sum(&pads);
        pads.push(params.field.neg(total));
        let blinds = (0..m)
            .map(|_| poly_it::blinding_poly(params, &mut srng))
            .collect();
        (pads, blinds)
    };
    let mut per_server_answers: Vec<Vec<u64>> = Vec::with_capacity(params.num_servers());
    for (h, qs) in received.iter().enumerate() {
        if qs.len() != m {
            return Err(ProtocolError::InvalidMessage {
                label: "sumpsm-queries",
                reason: "wrong number of slot queries",
            });
        }
        let (pads, blinds) = derive(shared_seed); // every server re-derives
        let answers: Vec<u64> = qs
            .iter()
            .enumerate()
            .map(|(j, q)| {
                let vdb: Vec<u64> = db.iter().map(|&x| params.field.add(x, pads[j])).collect();
                poly_it::server_answer_blinded(params, &vdb, q, &blinds[j], h)
            })
            .collect::<Result<_, _>>()?;
        let delivered: Vec<u64> = t.server_to_client(h, "sumpsm-answers", &answers)?;
        if delivered.len() != m {
            return Err(ProtocolError::InvalidMessage {
                label: "sumpsm-answers",
                reason: "wrong number of slot answers",
            });
        }
        per_server_answers.push(delivered);
    }

    // Client (referee): reconstruct each PSM message, then sum.
    let mut acc = 0u64;
    for j in 0..m {
        let answers: Vec<u64> = per_server_answers.iter().map(|a| a[j]).collect();
        let msg = poly_it::client_reconstruct(params, &answers);
        acc = params.field.add(acc, msg);
    }
    Ok(acc)
}

/// `k`-server perfectly secure PSM-SPFE for a **branching program** over a
/// Boolean database (Corollary 4(2)): `f(x_{i_1}, …, x_{i_m})` where the
/// BP has one variable per selected item.
///
/// Virtual database `j` holds player `j`'s IK-PSM matrix message on each
/// possible item value; entries are retrieved by symmetric poly-IT PIR and
/// summed with the in-clear `p₀` matrix; the referee reads `±det`.
///
/// # Errors
///
/// [`ProtocolError`] on any transport fault or malformed message.
///
/// # Panics
///
/// Panics if the BP arity differs from `indices.len()`, the database is
/// not 0/1-valued, or the channel's server count is wrong (local setup
/// bugs, not attacks).
pub fn run_bp_psm<R: RandomSource + ?Sized>(
    t: &mut dyn Channel,
    params: &PolyItParams,
    bp: &BranchingProgram,
    db: &[u64],
    indices: &[usize],
    shared_seed: u64,
    rng: &mut R,
) -> Result<u64, ProtocolError> {
    let m = indices.len();
    assert_eq!(bp.num_vars(), m, "BP arity mismatch");
    assert!(
        db.iter().all(|&v| v <= 1),
        "BP SPFE needs a Boolean database"
    );
    assert_eq!(t.num_servers(), params.num_servers());
    let _proto = spfe_obs::span("psm-bp");
    let field = params.field;
    let d = bp.size() - 1;
    let width = d * d;

    // Client → servers: m queries per server (same as the sum variant).
    let mut per_server: Vec<Vec<poly_it::PolyItQuery>> =
        vec![Vec::with_capacity(m); params.num_servers()];
    for &i in indices {
        let qs = poly_it::client_queries(params, i, rng);
        for (h, q) in qs.into_iter().enumerate() {
            per_server[h].push(q);
        }
    }
    let received: Vec<Vec<poly_it::PolyItQuery>> = per_server
        .iter()
        .enumerate()
        .map(|(h, qs)| t.client_to_server(h, "bppsm-queries", qs))
        .collect::<Result<_, _>>()?;

    // Common randomness: the IK-PSM randomizers + per-(slot, matrix-entry)
    // blinding polynomials.
    let derive = |seed: u64| {
        let mut srng = ChaChaRng::from_u64_seed(seed);
        let mut psm_seed = [0u8; 32];
        srng.fill_bytes(&mut psm_seed);
        let rand = psm::bp::common_randomness(bp, m, field, psm_seed);
        let blinds: Vec<Vec<spfe_math::Poly>> = (0..m)
            .map(|_| {
                (0..width)
                    .map(|_| poly_it::blinding_poly(params, &mut srng))
                    .collect()
            })
            .collect();
        (rand, blinds)
    };

    // Servers answer; server 0 additionally sends p₀ in the clear.
    let (rand0, _) = derive(shared_seed);
    let p0 = psm::bp::p0_message(bp, field, &rand0);
    let p0_entries: Vec<u64> = t.server_to_client(0, "bppsm-p0", &p0.entries().to_vec())?;
    if p0_entries.len() != width {
        return Err(ProtocolError::InvalidMessage {
            label: "bppsm-p0",
            reason: "wrong p0 matrix size",
        });
    }

    let mut per_server_answers: Vec<Vec<Vec<u64>>> = Vec::with_capacity(params.num_servers());
    for (h, qs) in received.iter().enumerate() {
        if qs.len() != m {
            return Err(ProtocolError::InvalidMessage {
                label: "bppsm-queries",
                reason: "wrong number of slot queries",
            });
        }
        let (rand, blinds) = derive(shared_seed);
        let answers: Vec<Vec<u64>> = qs
            .iter()
            .enumerate()
            .map(|(j, q)| {
                // Virtual database: player j's message matrix per item value.
                let msg_for = |bit: bool| {
                    psm::bp::player_message(bp, field, &rand, j, &[(j, bit)])
                        .entries()
                        .to_vec()
                };
                let (msg0, msg1) = (msg_for(false), msg_for(true));
                (0..width)
                    .map(|c| {
                        let vdb: Vec<u64> = db
                            .iter()
                            .map(|&x| if x == 1 { msg1[c] } else { msg0[c] })
                            .collect();
                        poly_it::server_answer_blinded(params, &vdb, q, &blinds[j][c], h)
                    })
                    .collect()
            })
            .collect::<Result<_, _>>()?;
        let delivered: Vec<Vec<u64>> = t.server_to_client(h, "bppsm-answers", &answers)?;
        if delivered.len() != m || delivered.iter().any(|row| row.len() != width) {
            return Err(ProtocolError::InvalidMessage {
                label: "bppsm-answers",
                reason: "wrong answer matrix shape",
            });
        }
        per_server_answers.push(delivered);
    }

    // Client (referee): reconstruct each player's matrix, sum with p₀, det.
    let mut total = spfe_math::Mat::from_rows(
        (0..d)
            .map(|r| p0_entries[r * d..(r + 1) * d].to_vec())
            .collect(),
        field,
    );
    for j in 0..m {
        let entries: Vec<u64> = (0..width)
            .map(|c| {
                let answers: Vec<u64> = per_server_answers.iter().map(|a| a[j][c]).collect();
                poly_it::client_reconstruct(params, &answers)
            })
            .collect();
        let mat = spfe_math::Mat::from_rows(
            (0..d)
                .map(|r| entries[r * d..(r + 1) * d].to_vec())
                .collect(),
            field,
        );
        total = total.add(&mat);
    }
    let det = total.det();
    Ok(if d % 2 == 1 { field.neg(det) } else { det })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfe_circuits::builders::{frequency_circuit, sum_circuit};
    use spfe_crypto::{HomomorphicScheme, Paillier};
    use spfe_transport::Transcript;

    fn crypto() -> (
        SchnorrGroup,
        spfe_crypto::PaillierPk,
        spfe_crypto::PaillierSk,
        ChaChaRng,
    ) {
        let mut rng = ChaChaRng::from_u64_seed(0x3232);
        let group = SchnorrGroup::generate(96, &mut rng);
        let (pk, sk) = Paillier::keygen(128, &mut rng);
        (group, pk, sk, rng)
    }

    #[test]
    fn yao_psm_sum_statistic() {
        let (group, pk, sk, mut rng) = crypto();
        let db: Vec<u64> = (0..12u64).map(|i| (i * 3) % 16).collect();
        let indices = [2usize, 7, 11];
        let circuit = sum_circuit(3, 4);
        let mut t = Transcript::new(1);
        let got = run_yao_psm(
            &mut t, &group, &pk, &sk, &db, &indices, &circuit, 4, &mut rng,
        )
        .unwrap();
        let expect: u64 = indices.iter().map(|&i| db[i]).sum();
        assert_eq!(got, expect);
        assert_eq!(t.report().half_rounds, 2, "Theorem 3: one round");
    }

    #[test]
    fn yao_psm_frequency_statistic() {
        let (group, pk, sk, mut rng) = crypto();
        let db = vec![5u64, 3, 5, 7, 5, 1, 0, 2];
        let indices = [0usize, 2, 3, 4];
        let circuit = frequency_circuit(4, 3, 5);
        let mut t = Transcript::new(1);
        let got = run_yao_psm(
            &mut t, &group, &pk, &sk, &db, &indices, &circuit, 3, &mut rng,
        )
        .unwrap();
        assert_eq!(got, 3);
    }

    #[test]
    fn yao_psm_repeated_indices() {
        let (group, pk, sk, mut rng) = crypto();
        let db = vec![9u64, 4, 1, 6];
        let indices = [1usize, 1];
        let circuit = sum_circuit(2, 4);
        let mut t = Transcript::new(1);
        let got = run_yao_psm(
            &mut t, &group, &pk, &sk, &db, &indices, &circuit, 4, &mut rng,
        )
        .unwrap();
        assert_eq!(got, 8);
    }

    #[test]
    fn sum_psm_multi_server() {
        let mut rng = ChaChaRng::from_u64_seed(0x515);
        let field = Fp64::new(1_000_003).unwrap();
        let db: Vec<u64> = (0..20u64).map(|i| i * 7 + 1).collect();
        let params = PolyItParams::new(db.len(), 2, field);
        let indices = [3usize, 9, 19, 0];
        let mut t = Transcript::new(params.num_servers());
        let got = run_sum_psm(&mut t, &params, &db, &indices, 0xABCD, &mut rng).unwrap();
        let expect: u64 = indices.iter().map(|&i| db[i]).sum();
        assert_eq!(got, expect % field.modulus());
        assert_eq!(t.report().half_rounds, 2);
    }

    #[test]
    fn sum_psm_single_item() {
        let mut rng = ChaChaRng::from_u64_seed(0x516);
        let field = Fp64::new(65_537).unwrap();
        let db: Vec<u64> = (100..110u64).collect();
        let params = PolyItParams::new(db.len(), 1, field);
        let mut t = Transcript::new(params.num_servers());
        let got = run_sum_psm(&mut t, &params, &db, &[5], 7, &mut rng).unwrap();
        assert_eq!(got, 105);
    }

    #[test]
    fn bp_psm_and_function() {
        let mut rng = ChaChaRng::from_u64_seed(0x517);
        let field = Fp64::new(1_000_003).unwrap();
        let db = vec![1u64, 0, 1, 1, 0, 1, 1, 0];
        let bp = BranchingProgram::and_of(3);
        let params = PolyItParams::new(db.len(), 1, field);
        for idx in [[0usize, 2, 3], [0, 1, 2], [5, 6, 0], [1, 4, 7]] {
            let mut t = Transcript::new(params.num_servers());
            let got = run_bp_psm(&mut t, &params, &bp, &db, &idx, 0xEE, &mut rng).unwrap();
            let expect = idx.iter().all(|&i| db[i] == 1) as u64;
            assert_eq!(got, expect, "{idx:?}");
        }
    }

    #[test]
    fn bp_psm_parity_function() {
        let mut rng = ChaChaRng::from_u64_seed(0x518);
        let field = Fp64::new(1_000_003).unwrap();
        let db = vec![1u64, 0, 1, 0];
        let bp = BranchingProgram::parity(3);
        let params = PolyItParams::new(db.len(), 1, field);
        let idx = [0usize, 2, 3]; // 1 ⊕ 1 ⊕ 0 = 0
        let mut t = Transcript::new(params.num_servers());
        assert_eq!(
            run_bp_psm(&mut t, &params, &bp, &db, &idx, 1, &mut rng).unwrap(),
            0
        );
        let idx2 = [0usize, 1, 2]; // 1 ⊕ 0 ⊕ 1 = 0
        let mut t2 = Transcript::new(params.num_servers());
        assert_eq!(
            run_bp_psm(&mut t2, &params, &bp, &db, &idx2, 2, &mut rng).unwrap(),
            0
        );
        let idx3 = [0usize, 1, 3]; // 1 ⊕ 0 ⊕ 0 = 1
        let mut t3 = Transcript::new(params.num_servers());
        assert_eq!(
            run_bp_psm(&mut t3, &params, &bp, &db, &idx3, 3, &mut rng).unwrap(),
            1
        );
    }

    #[test]
    fn psm_cost_shape_m_times_spir_plus_gc() {
        // Table 1 row 1: upstream = m SPIR queries; downstream = m SPIR
        // answers + O(κ·C_f) for p₀.
        let (group, pk, sk, mut rng) = crypto();
        let db: Vec<u64> = (0..32u64).map(|i| i % 8).collect();
        let c2 = sum_circuit(2, 3);
        let c4 = sum_circuit(4, 3);
        let mut t2 = Transcript::new(1);
        run_yao_psm(&mut t2, &group, &pk, &sk, &db, &[1, 2], &c2, 3, &mut rng).unwrap();
        let mut t4 = Transcript::new(1);
        run_yao_psm(
            &mut t4,
            &group,
            &pk,
            &sk,
            &db,
            &[1, 2, 3, 4],
            &c4,
            3,
            &mut rng,
        )
        .unwrap();
        let up_ratio = t4.report().client_to_server as f64 / t2.report().client_to_server as f64;
        assert!(up_ratio > 1.6 && up_ratio < 2.4, "upstream ~2x: {up_ratio}");
    }
}
