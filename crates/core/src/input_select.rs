//! §3.3 — the input-selection phase: obtaining additive secret shares of
//! the `m` selected items without revealing anything to either party.
//!
//! Three protocols, one per subsection:
//!
//! * [`select1`] (§3.3.1): `m` independent `SPIR(n,1,ℓ)` calls against
//!   per-slot shifted virtual databases `v_i = x_i − a_j`;
//! * [`select2_v1`] / [`select2_v2`] (§3.3.2): one batched `SPIR(n,m,ℓ)`
//!   against a database masked by an `m`-wise independent polynomial
//!   family `{P_s}` (degree-`(m−1)` polynomials), plus a homomorphic
//!   protocol that shares `P_s(I)` — the client encrypting its `m²` index
//!   powers (v1, 1 round) or the server encrypting its `m` coefficients
//!   (v2, 1.5 rounds, only `m` ciphertexts);
//! * [`select3`] (§3.3.3): one batched `SPIR(n,m,κ)` against the database
//!   *encrypted under the server's key*, unblinded by one client message.
//!
//! Shares from `select1`/`select2_*` live in a prime field `Z_p`
//! ([`SharesModP`]); `select3` produces exact additive shares over the
//! integers ([`IntShares`]) via statistical blinding, which compose with
//! any MPC-phase ring (see `two_phase`).

use spfe_crypto::hom::{HomomorphicPk, HomomorphicSk};
use spfe_crypto::SchnorrGroup;
use spfe_math::{Fp64, Nat, Poly, RandomSource};
use spfe_pir::spir::{self, SpirParams, SpirQuery};
use spfe_pir::{batched, words};
use spfe_transport::{Channel, ChannelExt, ProtocolError};

/// Statistical blinding bits for integer masking (2⁻⁴⁰ distance).
pub const STAT_SECURITY_BITS: usize = 40;

/// Additive shares over `Z_p`: `(server[j] + client[j]) mod p = x_{i_j}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharesModP {
    /// The field modulus `p`.
    pub p: u64,
    /// Server-side shares.
    pub server: Vec<u64>,
    /// Client-side shares.
    pub client: Vec<u64>,
}

impl SharesModP {
    /// Reconstructs the shared values (test/diagnostic use only — in the
    /// protocol neither party holds both vectors).
    pub fn reconstruct(&self) -> Vec<u64> {
        self.server
            .iter()
            .zip(&self.client)
            .map(|(&a, &b)| ((a as u128 + b as u128) % self.p as u128) as u64)
            .collect()
    }
}

/// Exact additive shares over ℤ: `server[j] − client_neg[j] = x_{i_j}`
/// (the client's share is the *negative* mask `R_j`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntShares {
    /// Server-side values `S_j = x_{i_j} + R_j`.
    pub server: Vec<Nat>,
    /// Client-side masks `R_j`.
    pub client_masks: Vec<Nat>,
}

impl IntShares {
    /// Reconstructs (diagnostics only).
    pub fn reconstruct(&self) -> Vec<Nat> {
        self.server
            .iter()
            .zip(&self.client_masks)
            .map(|(s, r)| s.sub(r))
            .collect()
    }
}

/// §3.3.1 — `m` independent single-item SPIRs against shifted databases.
///
/// One round; cost `m × SPIR(n, 1, ℓ)` (the first reduction of Table 1).
///
/// # Errors
///
/// [`ProtocolError`] on any transport fault or malformed message.
///
/// # Panics
///
/// Panics if an index is out of range or a database value ≥ `p` (local
/// setup bugs, not attacks).
#[allow(clippy::too_many_arguments)]
pub fn select1<P, S, R>(
    t: &mut dyn Channel,
    group: &SchnorrGroup,
    pk: &P,
    sk: &S,
    db: &[u64],
    indices: &[usize],
    field: Fp64,
    rng: &mut R,
) -> Result<SharesModP, ProtocolError>
where
    P: HomomorphicPk,
    S: HomomorphicSk<P>,
    R: RandomSource + ?Sized,
{
    let _proto = spfe_obs::span("select1");
    let p = field.modulus();
    assert!(db.iter().all(|&v| v < p), "db value exceeds field");
    assert!(indices.iter().all(|&i| i < db.len()), "index out of range");
    let params = SpirParams::new(group.clone(), db.len());

    // Client: all m queries in one message.
    let (queries, states) = {
        let _s = spfe_obs::span("query-gen");
        let mut queries = Vec::with_capacity(indices.len());
        let mut states = Vec::with_capacity(indices.len());
        for &i in indices {
            let (q, st) = spir::client_query(&params, pk, i, rng);
            queries.push(q);
            states.push(st);
        }
        (queries, states)
    };
    let queries: Vec<SpirQuery> = t.client_to_server(0, "sel1-queries", &queries)?;

    // Server: per slot, pick a_j and answer against v_i = x_i − a_j.
    let mut server_shares = Vec::with_capacity(indices.len());
    let answers: Vec<spfe_pir::SpirAnswer> = {
        let _s = spfe_obs::span("server-scan");
        queries
            .iter()
            .map(|q| {
                let a_j = field.random(rng);
                server_shares.push(a_j);
                let vdb: Vec<u64> = db.iter().map(|&x| field.sub(x, a_j)).collect();
                spir::server_answer(&params, pk, &vdb, q, rng)
            })
            .collect::<Result<_, _>>()?
    };
    let answers: Vec<spfe_pir::SpirAnswer> = t.server_to_client(0, "sel1-answers", &answers)?;
    if answers.len() != states.len() {
        return Err(ProtocolError::InvalidMessage {
            label: "sel1-answers",
            reason: "wrong number of answers",
        });
    }

    // Client: decode b_j.
    let _s = spfe_obs::span("reconstruct");
    let client_shares: Vec<u64> = states
        .iter()
        .zip(&answers)
        .map(|(st, a)| spir::client_decode(&params, pk, sk, st, a))
        .collect::<Result<_, _>>()?;

    Ok(SharesModP {
        p,
        server: server_shares,
        client: client_shares,
    })
}

/// §3.3.1 written against the paper's SPIR *black box* ([`SpirOracle`]):
/// the same protocol costed under any SPIR instantiation — including the
/// idealized one — which decomposes the SPFE cost into "the SPIR term"
/// and "everything else", as Table 1 does symbolically.
///
/// # Errors
///
/// [`ProtocolError`] on any transport fault or malformed message.
///
/// # Panics
///
/// Panics if an index is out of range or a database value ≥ `p` (local
/// setup bugs, not attacks).
pub fn select1_with_oracle<R: RandomSource + ?Sized>(
    t: &mut dyn Channel,
    oracle: &dyn spfe_pir::SpirOracle,
    db: &[u64],
    indices: &[usize],
    field: Fp64,
    rng: &mut R,
) -> Result<SharesModP, ProtocolError> {
    let _proto = spfe_obs::span("select1-oracle");
    let p = field.modulus();
    assert!(db.iter().all(|&v| v < p), "db value exceeds field");
    assert!(indices.iter().all(|&i| i < db.len()), "index out of range");
    let mut server_shares = Vec::with_capacity(indices.len());
    let mut client_shares = Vec::with_capacity(indices.len());
    let mut entropy = || rng.next_u64();
    for &i in indices {
        let a_j = {
            // Field-uniform share from the entropy tap.
            let mut v = entropy();
            loop {
                let zone = u64::MAX - u64::MAX % p;
                if v < zone {
                    break v % p;
                }
                v = entropy();
            }
        };
        let vdb: Vec<u64> = db.iter().map(|&x| field.sub(x, a_j)).collect();
        let b_j = oracle.retrieve_one(t, &vdb, i, &mut entropy)?;
        server_shares.push(a_j);
        client_shares.push(b_j);
    }
    Ok(SharesModP {
        p,
        server: server_shares,
        client: client_shares,
    })
}

/// Checks the §3.3.2 no-overflow precondition: homomorphic sums
/// `m·p² + p·2^{σ+1}` must stay below the plaintext modulus.
fn check_hom_capacity<P: HomomorphicPk>(pk: &P, p: u64, m: usize) {
    let bound = Nat::from(p)
        .square()
        .mul_u64(m as u64)
        .add(&Nat::from(p).shl(STAT_SECURITY_BITS + 1));
    assert!(
        &bound < pk.plaintext_modulus(),
        "plaintext modulus too small for field {p} and m={m}"
    );
}

/// Encrypts the integer `Σ-term + p·(R+1) − r` without wraparound: the
/// server/client-side blinding step shared by both §3.3.2 variants.
fn blinded_offset<R: RandomSource + ?Sized>(p: u64, r: u64, rng: &mut R) -> Nat {
    let big_r = Nat::random_bits(rng, STAT_SECURITY_BITS);
    Nat::from(p).mul(&big_r.add(&Nat::one())).sub(&Nat::from(r))
}

/// §3.3.2, first variant — one batched `SPIR(n, m, ℓ)` plus the client
/// encrypting its `m²` index powers (`κ·m²` overhead, 1 round).
///
/// # Errors
///
/// [`ProtocolError`] on any transport fault or malformed message.
///
/// # Panics
///
/// Panics if the field is smaller than `n`, a value ≥ `p`, or the
/// homomorphic plaintext space cannot hold the blinded sums (local setup
/// bugs, not attacks).
#[allow(clippy::too_many_arguments)]
pub fn select2_v1<P, S, R>(
    t: &mut dyn Channel,
    group: &SchnorrGroup,
    pk: &P,
    sk: &S,
    db: &[u64],
    indices: &[usize],
    field: Fp64,
    rng: &mut R,
) -> Result<SharesModP, ProtocolError>
where
    P: HomomorphicPk,
    S: HomomorphicSk<P>,
    R: RandomSource + ?Sized,
{
    let _proto = spfe_obs::span("select2v1");
    let p = field.modulus();
    let m = indices.len();
    assert!(m > 0);
    assert!(
        p > db.len() as u64,
        "field must exceed n for index encoding"
    );
    assert!(db.iter().all(|&v| v < p), "db value exceeds field");
    check_hom_capacity(pk, p, m);

    // Client message: batched SPIR queries travel inside batched::run below
    // (same round); here the m² encrypted powers E(i_j^k).
    let _qg = spfe_obs::span("query-gen");
    let power_plains: Vec<Nat> = indices
        .iter()
        .flat_map(|&i| {
            let i_f = field.from_u64(i as u64);
            (0..m).map(move |k| Nat::from(field.pow(i_f, k as u64)))
        })
        .collect();
    let powers: Vec<Vec<u8>> = pk
        .encrypt_batch(&power_plains, rng)
        .iter()
        .map(|ct| pk.ciphertext_to_bytes(ct))
        .collect();
    let powers: Vec<Vec<u8>> = t.client_to_server(0, "sel2v1-powers", &powers)?;
    if powers.len() != m * m {
        return Err(ProtocolError::InvalidMessage {
            label: "sel2v1-powers",
            reason: "wrong number of encrypted index powers",
        });
    }
    drop(_qg);

    // Server: pick the masking polynomial P_s, mask the database. The
    // masking pass is Ω(n·m) field ops but each item is cheap
    // (`CostClass::Light`): it shards only once the database is large
    // enough to amortize the pool handshake.
    let _se = spfe_obs::span("server-eval");
    let s_poly = Poly::random(m.saturating_sub(1), field, rng);
    let db_idx: Vec<(usize, u64)> = db.iter().copied().enumerate().collect();
    let masked: Vec<u64> =
        spfe_math::par::par_map_cost(spfe_math::par::CostClass::Light, &db_idx, |&(i, x)| {
            field.add(x, s_poly.eval(i as u64))
        });

    // Homomorphic evaluation: E(P_s(i_j) − r_j) with integer-safe blinding.
    // The m² scalar products are rng-free — flatten them into one batch for
    // the worker pool, then draw the blinding serially per slot.
    let mut prod_cts: Vec<P::Ciphertext> = Vec::new();
    let mut prod_consts: Vec<Nat> = Vec::new();
    let mut slot_products: Vec<Vec<usize>> = vec![Vec::new(); m];
    for (j, slot) in slot_products.iter_mut().enumerate() {
        for k in 0..m {
            let s_k = s_poly.coeffs().get(k).copied().unwrap_or(0);
            if s_k == 0 {
                continue;
            }
            let ct = pk.ciphertext_from_bytes(&powers[j * m + k]).ok_or(
                ProtocolError::InvalidMessage {
                    label: "sel2v1-powers",
                    reason: "malformed power ciphertext",
                },
            )?;
            slot.push(prod_cts.len());
            prod_cts.push(ct);
            prod_consts.push(Nat::from(s_k));
        }
    }
    let products = pk.scalar_mul_batch(&prod_cts, &prod_consts);
    let mut server_r = Vec::with_capacity(m);
    let evals: Vec<Vec<u8>> = slot_products
        .iter()
        .map(|slot| {
            let mut acc: Option<P::Ciphertext> = None;
            for &idx in slot {
                acc = Some(match acc {
                    None => products[idx].clone(),
                    Some(prev) => pk.add(&prev, &products[idx]),
                });
            }
            let r_j = field.random(rng);
            server_r.push(r_j);
            let offset = pk.encrypt(&blinded_offset(p, r_j, rng), rng);
            let total = match acc {
                None => offset,
                Some(a) => pk.add(&a, &offset),
            };
            pk.ciphertext_to_bytes(&total)
        })
        .collect();

    drop(_se);

    // Batched SPIR over the masked database (same round as the evals).
    let (retrieved, _) = batched::run(t, group, pk, sk, &masked, indices, rng)?;
    let evals: Vec<Vec<u8>> = t.server_to_client(0, "sel2v1-evals", &evals)?;
    if evals.len() != retrieved.len() {
        return Err(ProtocolError::InvalidMessage {
            label: "sel2v1-evals",
            reason: "wrong number of evaluations",
        });
    }

    // Client: d_j = (P_s(i_j) − r_j) mod p; b_j = x'_{i_j} − d_j.
    let _s = spfe_obs::span("reconstruct");
    let client_shares: Vec<u64> = retrieved
        .iter()
        .zip(&evals)
        .map(|(&xp, ct)| {
            let v = sk.decrypt(&pk.ciphertext_from_bytes(ct).ok_or(
                ProtocolError::InvalidMessage {
                    label: "sel2v1-evals",
                    reason: "malformed evaluation ciphertext",
                },
            )?);
            let d_j = v.rem(&Nat::from(p)).to_u64().expect("fits");
            Ok(field.sub(xp, d_j))
        })
        .collect::<Result<_, ProtocolError>>()?;
    // Server: a_j = −r_j.
    let server_shares: Vec<u64> = server_r.iter().map(|&r| field.neg(r)).collect();

    Ok(SharesModP {
        p,
        server: server_shares,
        client: client_shares,
    })
}

/// §3.3.2, second variant — the server opens by encrypting its `m`
/// coefficients (`κ·m` overhead, 1.5 rounds, provable security only
/// against a semi-honest client).
///
/// Here the homomorphic keys belong to the **server** (`server_pk` /
/// `server_sk`); the client-side SPIR still uses the client's keys.
///
/// # Errors
///
/// [`ProtocolError`] on any transport fault or malformed message.
///
/// # Panics
///
/// Same preconditions as [`select2_v1`].
#[allow(clippy::too_many_arguments)]
pub fn select2_v2<PC, SC, PS, SS, R>(
    t: &mut dyn Channel,
    group: &SchnorrGroup,
    client_pk: &PC,
    client_sk: &SC,
    server_pk: &PS,
    server_sk: &SS,
    db: &[u64],
    indices: &[usize],
    field: Fp64,
    rng: &mut R,
) -> Result<SharesModP, ProtocolError>
where
    PC: HomomorphicPk,
    SC: HomomorphicSk<PC>,
    PS: HomomorphicPk,
    SS: HomomorphicSk<PS>,
    R: RandomSource + ?Sized,
{
    let _proto = spfe_obs::span("select2v2");
    let p = field.modulus();
    let m = indices.len();
    assert!(m > 0);
    assert!(p > db.len() as u64, "field must exceed n");
    assert!(db.iter().all(|&v| v < p), "db value exceeds field");
    check_hom_capacity(server_pk, p, m);

    // Half-round 1 (server → client): encrypted coefficients.
    let _open = spfe_obs::span("server-open");
    let s_poly = Poly::random(m.saturating_sub(1), field, rng);
    let coeff_plains: Vec<Nat> = (0..m)
        .map(|k| Nat::from(s_poly.coeffs().get(k).copied().unwrap_or(0)))
        .collect();
    let coeff_cts: Vec<Vec<u8>> = server_pk
        .encrypt_batch(&coeff_plains, rng)
        .iter()
        .map(|ct| server_pk.ciphertext_to_bytes(ct))
        .collect();
    let coeff_cts: Vec<Vec<u8>> = t.server_to_client(0, "sel2v2-coeffs", &coeff_cts)?;
    if coeff_cts.len() != m {
        return Err(ProtocolError::InvalidMessage {
            label: "sel2v2-coeffs",
            reason: "wrong number of coefficient ciphertexts",
        });
    }
    let masked: Vec<u64> = db
        .iter()
        .enumerate()
        .map(|(i, &x)| field.add(x, s_poly.eval(i as u64)))
        .collect();
    drop(_open);

    // Client: E(P_s(i_j) − r_j) as a known linear combination of the
    // encrypted coefficients.
    let _qg = spfe_obs::span("query-gen");
    let mut client_r = Vec::with_capacity(m);
    let blinded: Vec<Vec<u8>> = indices
        .iter()
        .map(|&i| {
            let i_f = field.from_u64(i as u64);
            let mut acc: Option<PS::Ciphertext> = None;
            for (k, ct_bytes) in coeff_cts.iter().enumerate() {
                let c_k = field.pow(i_f, k as u64);
                if c_k == 0 {
                    continue;
                }
                let ct = server_pk.ciphertext_from_bytes(ct_bytes).ok_or(
                    ProtocolError::InvalidMessage {
                        label: "sel2v2-coeffs",
                        reason: "malformed coefficient ciphertext",
                    },
                )?;
                let term = server_pk.mul_const(&ct, &Nat::from(c_k));
                acc = Some(match acc {
                    None => term,
                    Some(prev) => server_pk.add(&prev, &term),
                });
            }
            let r_j = field.random(rng);
            client_r.push(r_j);
            let offset = server_pk.encrypt(&blinded_offset(p, r_j, rng), rng);
            let total = match acc {
                None => offset,
                Some(a) => server_pk.add(&a, &offset),
            };
            Ok(server_pk.ciphertext_to_bytes(&total))
        })
        .collect::<Result<_, ProtocolError>>()?;
    let blinded: Vec<Vec<u8>> = t.client_to_server(0, "sel2v2-blinded", &blinded)?;
    if blinded.len() != m {
        return Err(ProtocolError::InvalidMessage {
            label: "sel2v2-blinded",
            reason: "wrong number of blinded evaluations",
        });
    }
    drop(_qg);

    // Batched SPIR over the masked database (client query + server answer).
    let (retrieved, _) = batched::run(t, group, client_pk, client_sk, &masked, indices, rng)?;

    // Server: decrypts its share component g_j = (P_s(i_j) − r_j) mod p.
    let _s = spfe_obs::span("reconstruct");
    let server_shares: Vec<u64> = blinded
        .iter()
        .map(|ct| {
            let v = server_sk.decrypt(&server_pk.ciphertext_from_bytes(ct).ok_or(
                ProtocolError::InvalidMessage {
                    label: "sel2v2-blinded",
                    reason: "malformed blinded ciphertext",
                },
            )?);
            let g_j = v.rem(&Nat::from(p)).to_u64().expect("fits");
            Ok(field.neg(g_j)) // a_j = −c_j
        })
        .collect::<Result<_, ProtocolError>>()?;
    // Client: b_j = x'_{i_j} − d_j where d_j = r_j.
    let client_shares: Vec<u64> = retrieved
        .iter()
        .zip(&client_r)
        .map(|(&xp, &r)| field.sub(xp, r))
        .collect();

    Ok(SharesModP {
        p,
        server: server_shares,
        client: client_shares,
    })
}

/// §3.3.3 — retrieval from the encrypted database: one batched
/// `SPIR(n, m, κ)` over `E_s(x_i)` plus a single unblinding message.
///
/// The server's homomorphic key pair plays the paper's role of `E`; the
/// client's SPIR keys are separate. Produces exact integer shares
/// (statistically blinded), which compose with any MPC ring.
///
/// # Errors
///
/// [`ProtocolError`] on any transport fault or malformed message.
///
/// # Panics
///
/// Panics if an index is out of range or `value_bits` cannot hold some
/// database value (local setup bugs, not attacks).
#[allow(clippy::too_many_arguments)]
pub fn select3<PC, SC, PS, SS, R>(
    t: &mut dyn Channel,
    group: &SchnorrGroup,
    client_pk: &PC,
    client_sk: &SC,
    server_pk: &PS,
    server_sk: &SS,
    db: &[u64],
    indices: &[usize],
    value_bits: usize,
    rng: &mut R,
) -> Result<IntShares, ProtocolError>
where
    PC: HomomorphicPk,
    SC: HomomorphicSk<PC>,
    PS: HomomorphicPk,
    SS: HomomorphicSk<PS>,
    R: RandomSource + ?Sized,
{
    let m = indices.len();
    assert!(m > 0);
    assert!(
        db.iter().all(|&v| v < (1u64 << value_bits.min(63))),
        "db value exceeds value_bits"
    );
    // Blinding must not wrap the server's plaintext space.
    assert!(
        value_bits + STAT_SECURITY_BITS + 2 < server_pk.plaintext_modulus().bit_len(),
        "server plaintext modulus too small"
    );

    let _proto = spfe_obs::span("select3");

    // Setup (uncounted, like key certification): the encrypted database —
    // n public-key operations, batched onto the worker pool.
    let _setup = spfe_obs::span("setup-encrypt-db");
    let plains: Vec<Nat> = db.iter().map(|&x| Nat::from(x)).collect();
    let enc_db: Vec<Vec<u64>> = server_pk
        .encrypt_batch(&plains, rng)
        .iter()
        .map(|ct| words::bytes_to_words(&server_pk.ciphertext_to_bytes(ct)))
        .collect();
    drop(_setup);

    // Round 1: batched SPIR(n, m, κ) for the encrypted items.
    let (retrieved, _) =
        words::retrieve_many(t, group, client_pk, client_sk, &enc_db, indices, rng)?;

    // Round 2 (client → server): E_s(x + R_j), rerandomized.
    let _unblind = spfe_obs::span("unblind");
    let ct_len = server_pk.ciphertext_bytes();
    let mut masks = Vec::with_capacity(m);
    let blinded: Vec<Vec<u8>> = retrieved
        .iter()
        .map(|words_vec| {
            let ct = server_pk
                .ciphertext_from_bytes(&words::words_to_bytes(words_vec, ct_len))
                .ok_or(ProtocolError::InvalidMessage {
                    label: "batched-answers",
                    reason: "retrieved item is not a ciphertext",
                })?;
            let r = Nat::random_bits(rng, value_bits + STAT_SECURITY_BITS);
            let sum = server_pk.add(&ct, &server_pk.encrypt(&r, rng));
            masks.push(r);
            Ok(server_pk.ciphertext_to_bytes(&server_pk.rerandomize(&sum, rng)))
        })
        .collect::<Result<_, ProtocolError>>()?;
    let blinded: Vec<Vec<u8>> = t.client_to_server(0, "sel3-blinded", &blinded)?;

    // Server: decrypts S_j = x_{i_j} + R_j (exact integer).
    let server_shares: Vec<Nat> = blinded
        .iter()
        .map(|ct| {
            Ok(
                server_sk.decrypt(&server_pk.ciphertext_from_bytes(ct).ok_or(
                    ProtocolError::InvalidMessage {
                        label: "sel3-blinded",
                        reason: "malformed blinded ciphertext",
                    },
                )?),
            )
        })
        .collect::<Result<_, ProtocolError>>()?;

    Ok(IntShares {
        server: server_shares,
        client_masks: masks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfe_crypto::{ChaChaRng, HomomorphicScheme, Paillier};
    use spfe_transport::Transcript;

    fn crypto() -> (
        SchnorrGroup,
        spfe_crypto::PaillierPk,
        spfe_crypto::PaillierSk,
        ChaChaRng,
    ) {
        let mut rng = ChaChaRng::from_u64_seed(0x1337);
        let group = SchnorrGroup::generate(96, &mut rng);
        let (pk, sk) = Paillier::keygen(160, &mut rng);
        (group, pk, sk, rng)
    }

    fn db(n: usize, p: u64) -> Vec<u64> {
        (0..n as u64).map(|i| (i * 97 + 13) % p.min(1000)).collect()
    }

    #[test]
    fn select1_shares_reconstruct() {
        let (group, pk, sk, mut rng) = crypto();
        let field = Fp64::new(65_537).unwrap();
        let database = db(20, field.modulus());
        let indices = [0usize, 7, 19, 7];
        let mut t = Transcript::new(1);
        let shares = select1(
            &mut t, &group, &pk, &sk, &database, &indices, field, &mut rng,
        )
        .unwrap();
        let expect: Vec<u64> = indices.iter().map(|&i| database[i]).collect();
        assert_eq!(shares.reconstruct(), expect);
        assert_eq!(t.report().half_rounds, 2, "one round");
    }

    #[test]
    fn select1_shares_are_individually_uniformish() {
        // Server-side shares are fresh uniform field elements: over runs,
        // the share of a fixed item varies.
        let (group, pk, sk, mut rng) = crypto();
        let field = Fp64::new(101).unwrap();
        let database = db(10, 101);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10 {
            let mut t = Transcript::new(1);
            let shares =
                select1(&mut t, &group, &pk, &sk, &database, &[3], field, &mut rng).unwrap();
            seen.insert(shares.server[0]);
        }
        assert!(seen.len() > 5, "server shares should vary");
    }

    #[test]
    fn select2_v1_shares_reconstruct() {
        let (group, pk, sk, mut rng) = crypto();
        let field = Fp64::new(65_537).unwrap();
        let database = db(30, field.modulus());
        let indices = [2usize, 11, 29];
        let mut t = Transcript::new(1);
        let shares = select2_v1(
            &mut t, &group, &pk, &sk, &database, &indices, field, &mut rng,
        )
        .unwrap();
        let expect: Vec<u64> = indices.iter().map(|&i| database[i]).collect();
        assert_eq!(shares.reconstruct(), expect);
        assert_eq!(t.report().half_rounds, 2, "variant 1 is one round");
    }

    #[test]
    fn select2_v2_shares_reconstruct() {
        let (group, pk, sk, mut rng) = crypto();
        let (spk, ssk) = Paillier::keygen(160, &mut rng);
        let field = Fp64::new(65_537).unwrap();
        let database = db(25, field.modulus());
        let indices = [0usize, 12, 24];
        let mut t = Transcript::new(1);
        let shares = select2_v2(
            &mut t, &group, &pk, &sk, &spk, &ssk, &database, &indices, field, &mut rng,
        )
        .unwrap();
        let expect: Vec<u64> = indices.iter().map(|&i| database[i]).collect();
        assert_eq!(shares.reconstruct(), expect);
        assert_eq!(t.report().half_rounds, 3, "variant 2 is 1.5 rounds");
    }

    #[test]
    fn select2_variants_communication_tradeoff() {
        // v1 carries m² encrypted powers; v2 only 2m ciphertexts — the κm²
        // vs κm column of Table 1.
        let (group, pk, sk, mut rng) = crypto();
        let (spk, ssk) = Paillier::keygen(160, &mut rng);
        let field = Fp64::new(65_537).unwrap();
        let database = db(64, field.modulus());
        let indices: Vec<usize> = (0..8).map(|j| j * 7).collect();
        let mut t1 = Transcript::new(1);
        select2_v1(
            &mut t1, &group, &pk, &sk, &database, &indices, field, &mut rng,
        )
        .unwrap();
        let mut t2 = Transcript::new(1);
        select2_v2(
            &mut t2, &group, &pk, &sk, &spk, &ssk, &database, &indices, field, &mut rng,
        )
        .unwrap();
        let v1_overhead = t1.bytes_for_label("sel2v1-powers");
        let v2_overhead =
            t2.bytes_for_label("sel2v2-coeffs") + t2.bytes_for_label("sel2v2-blinded");
        assert!(
            v1_overhead > 3 * v2_overhead,
            "m² vs m: v1={v1_overhead} v2={v2_overhead}"
        );
    }

    #[test]
    fn select3_integer_shares_reconstruct() {
        let (group, pk, sk, mut rng) = crypto();
        let (spk, ssk) = Paillier::keygen(160, &mut rng);
        let database: Vec<u64> = (0..18u64).map(|i| i * 13 + 1).collect();
        let indices = [4usize, 0, 17];
        let mut t = Transcript::new(1);
        let shares = select3(
            &mut t, &group, &pk, &sk, &spk, &ssk, &database, &indices, 16, &mut rng,
        )
        .unwrap();
        let got = shares.reconstruct();
        for (g, &i) in got.iter().zip(&indices) {
            assert_eq!(*g, Nat::from(database[i]));
        }
    }

    #[test]
    fn select3_server_sees_only_blinded_values() {
        // The server's decrypted S_j = x + R_j with R_j ≫ x: S_j alone is
        // statistically independent of x.
        let (group, pk, sk, mut rng) = crypto();
        let (spk, ssk) = Paillier::keygen(160, &mut rng);
        let database = vec![1u64, 2, 3, 4];
        let mut t = Transcript::new(1);
        let shares = select3(
            &mut t,
            &group,
            &pk,
            &sk,
            &spk,
            &ssk,
            &database,
            &[2],
            8,
            &mut rng,
        )
        .unwrap();
        // The mask has full entropy width.
        assert!(shares.server[0].bit_len() > 8, "share must be blinded");
    }

    #[test]
    fn select1_oracle_real_and_ideal_agree() {
        use spfe_pir::{HomSpir, IdealSpir, SpirOracle};
        let field = Fp64::new(257).unwrap();
        let database: Vec<u64> = (0..30u64).map(|i| i * 7 % 257).collect();
        let indices = [1usize, 15, 29];
        let mut rng = ChaChaRng::from_u64_seed(0x0E);
        let oracles: Vec<Box<dyn SpirOracle>> = vec![
            Box::new(HomSpir::new(3, 128)),
            Box::new(IdealSpir::default()),
        ];
        for oracle in &oracles {
            let mut t = Transcript::new(1);
            let shares = select1_with_oracle(
                &mut t,
                oracle.as_ref(),
                &database,
                &indices,
                field,
                &mut rng,
            )
            .unwrap();
            let expect: Vec<u64> = indices.iter().map(|&i| database[i]).collect();
            assert_eq!(shares.reconstruct(), expect, "{}", oracle.name());
        }
    }

    #[test]
    #[should_panic(expected = "db value exceeds field")]
    fn select1_value_range_checked() {
        let (group, pk, sk, mut rng) = crypto();
        let field = Fp64::new(101).unwrap();
        let database = vec![500u64];
        let mut t = Transcript::new(1);
        let _ = select1(&mut t, &group, &pk, &sk, &database, &[0], field, &mut rng);
    }
}
