//! §3.1 — the multi-server SPFE protocol from multivariate polynomial
//! evaluation (Lemma 1, Theorem 2).
//!
//! The function `f` is expressed as a polynomial `P` over `F` in the bits
//! of the `m` selected indices (degree ≤ `ℓ·s`, see
//! [`spfe_circuits::formula`]). The client routes its encoded indices
//! through random degree-`t` curves and sends each server one curve point;
//! each server replies with a *single field element* — `P` evaluated at its
//! point (plus the shared blinding `R(α_h)`, `R(0)=0`, for symmetric
//! privacy \[25\]); the client interpolates the degree-`deg(P)·t` univariate
//! polynomial at 0. Server count: `k = deg(P)·t + 1`
//! (`= t·s·log₂ n + 1` for a size-`s` formula — Theorem 2).
//!
//! The tiny per-server replies are the protocol's signature feature: the
//! same query can be answered against several databases (e.g. `x` and the
//! squared `x'` for average+variance, §4) at one extra field element each.

use spfe_circuits::formula::{encode_index, eval_formula_poly, index_bits, selector_eval, Formula};
use spfe_math::par::{par_map_cost, CostClass};
use spfe_math::{Fp64, Poly, RandomSource};
use spfe_transport::{
    Channel, ChannelExt, ClientCore, OutMsg, ProtocolError, Reader, SessionCore, SessionState,
    Wire, WireError,
};

/// The function being evaluated, in a representation the protocol can
/// arithmetize.
#[derive(Debug, Clone)]
pub enum MsFunction {
    /// A Boolean formula over `m` single-bit arguments (database must be
    /// 0/1-valued). Polynomial degree `ℓ·s`.
    Formula(Formula),
    /// The sum of `m` field-valued items — degree-1 representation per
    /// slot, so `deg(P) = ℓ` (`s = 1`, the remark after Theorem 2).
    Sum {
        /// Number of selected items.
        m: usize,
    },
}

impl MsFunction {
    /// Number of argument slots `m`.
    pub fn arity(&self) -> usize {
        match self {
            MsFunction::Formula(phi) => phi.arity(),
            MsFunction::Sum { m } => *m,
        }
    }

    /// The paper's formula-size parameter `s`.
    pub fn size(&self) -> usize {
        match self {
            MsFunction::Formula(phi) => phi.size(),
            MsFunction::Sum { .. } => 1,
        }
    }

    /// Total degree of the multivariate polynomial `P` for `ℓ` index bits.
    pub fn poly_degree(&self, ell: usize) -> usize {
        match self {
            MsFunction::Formula(phi) => phi.degree_bound(ell),
            MsFunction::Sum { .. } => ell,
        }
    }

    /// Implicit evaluation of `P` at one field point per slot.
    pub fn eval_at_points(&self, db: &[u64], slot_points: &[Vec<u64>], field: Fp64) -> u64 {
        match self {
            MsFunction::Formula(phi) => eval_formula_poly(phi, db, slot_points, field),
            MsFunction::Sum { m } => {
                assert!(slot_points.len() >= *m);
                let mut acc = 0u64;
                for y in &slot_points[..*m] {
                    acc = field.add(acc, selector_eval(db, y, field));
                }
                acc
            }
        }
    }

    /// Clear-text evaluation on concrete indices (ground truth).
    ///
    /// # Errors
    ///
    /// [`ProtocolError::InvalidDatabase`] if a formula is evaluated over a
    /// database that is not 0/1-valued.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range (the caller's own input).
    pub fn eval_clear(
        &self,
        db: &[u64],
        indices: &[usize],
        field: Fp64,
    ) -> Result<u64, ProtocolError> {
        match self {
            MsFunction::Formula(phi) => {
                let args: Vec<bool> = indices
                    .iter()
                    .map(|&i| match db[i] {
                        0 => Ok(false),
                        1 => Ok(true),
                        _ => Err(ProtocolError::InvalidDatabase(
                            "formula SPFE needs a Boolean database",
                        )),
                    })
                    .collect::<Result<_, _>>()?;
                Ok(phi.evaluate(&args) as u64)
            }
            MsFunction::Sum { m } => {
                assert!(indices.len() >= *m);
                Ok(indices[..*m]
                    .iter()
                    .fold(0u64, |acc, &i| field.add(acc, field.from_u64(db[i]))))
            }
        }
    }
}

/// Protocol parameters shared by client and servers.
#[derive(Debug, Clone)]
pub struct MultiServerParams {
    /// Privacy threshold `t` (colluding servers tolerated).
    pub t: usize,
    /// Index bits `ℓ = ⌈log₂ n⌉`.
    pub ell: usize,
    /// The field `F` (`|F| > k` and larger than any function value).
    pub field: Fp64,
    /// The function.
    pub function: MsFunction,
}

impl MultiServerParams {
    /// Builds parameters for a database of `n` items.
    ///
    /// # Panics
    ///
    /// Panics if `t == 0`, `n == 0`, or the field is smaller than the
    /// required number of evaluation points.
    pub fn new(n: usize, t: usize, field: Fp64, function: MsFunction) -> Self {
        assert!(t >= 1 && n >= 1);
        let ell = index_bits(n);
        let params = MultiServerParams {
            t,
            ell,
            field,
            function,
        };
        assert!(
            (params.num_servers() as u64) < field.modulus(),
            "field too small for {} servers",
            params.num_servers()
        );
        params
    }

    /// Theorem 2's server count: `k = deg(P)·t + 1`.
    pub fn num_servers(&self) -> usize {
        self.function.poly_degree(self.ell) * self.t + 1
    }

    /// Evaluation point of server `h`.
    pub fn alpha(&self, h: usize) -> u64 {
        h as u64 + 1
    }
}

/// Query to one server: one curve point per (slot, index-bit) coordinate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MsQuery {
    /// `m` blocks of `ℓ` field elements.
    pub slot_points: Vec<Vec<u64>>,
}

impl Wire for MsQuery {
    fn encode(&self, out: &mut Vec<u8>) {
        self.slot_points.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(MsQuery {
            slot_points: Vec::<Vec<u64>>::decode(r)?,
        })
    }
}

/// Client: builds the per-server queries for its indices.
///
/// # Panics
///
/// Panics if the index count mismatches the function arity or an index
/// does not fit in `ℓ` bits.
pub fn client_queries<R: RandomSource + ?Sized>(
    params: &MultiServerParams,
    indices: &[usize],
    rng: &mut R,
) -> Vec<MsQuery> {
    let m = params.function.arity();
    assert_eq!(indices.len(), m, "index count must match arity");
    // One random degree-t curve per coordinate of each encoded index.
    let curves: Vec<Vec<Poly>> = indices
        .iter()
        .map(|&i| {
            assert!(i < 1usize << params.ell, "index out of range");
            encode_index(i, params.ell)
                .into_iter()
                .map(|bit| Poly::random_with_constant(bit, params.t, params.field, rng))
                .collect()
        })
        .collect();
    eval_curves_at_servers(params, &curves, params.num_servers())
}

/// Evaluates every coordinate curve at each server's point — rng-free, so
/// the per-server work shards across the worker pool (ordered by `h`).
/// One item is every curve evaluated at one point: `Heavy`.
fn eval_curves_at_servers(
    params: &MultiServerParams,
    curves: &[Vec<Poly>],
    k: usize,
) -> Vec<MsQuery> {
    let hs: Vec<usize> = (0..k).collect();
    par_map_cost(CostClass::Heavy, &hs, |&h| {
        let tau = params.alpha(h);
        MsQuery {
            slot_points: curves
                .iter()
                .map(|slot| slot.iter().map(|c| c.eval(tau)).collect())
                .collect(),
        }
    })
}

/// Server `h`: evaluates `P` at the received point, optionally adding the
/// shared blinding polynomial for symmetric privacy.
///
/// # Errors
///
/// [`ProtocolError::InvalidMessage`] if the (client-controlled) query does
/// not carry exactly one `ℓ`-element curve-point block per function slot.
pub fn server_answer(
    params: &MultiServerParams,
    db: &[u64],
    query: &MsQuery,
    blind: Option<(&Poly, usize)>,
) -> Result<u64, ProtocolError> {
    if query.slot_points.len() != params.function.arity()
        || query.slot_points.iter().any(|b| b.len() != params.ell)
    {
        return Err(ProtocolError::InvalidMessage {
            label: "ms-query",
            reason: "curve-point blocks do not match the function shape",
        });
    }
    // Every server evaluation touches the full database once.
    spfe_obs::count(spfe_obs::Op::PirWordsScanned, db.len() as u64);
    let raw = params
        .function
        .eval_at_points(db, &query.slot_points, params.field);
    Ok(match blind {
        None => raw,
        Some((r, h)) => params.field.add(raw, r.eval(params.alpha(h))),
    })
}

/// The shared blinding polynomial `R` (degree `deg(P)·t`, `R(0) = 0`),
/// derived from the servers' common randomness.
pub fn blinding_poly<R: RandomSource + ?Sized>(params: &MultiServerParams, rng: &mut R) -> Poly {
    Poly::random_with_constant(
        0,
        params.function.poly_degree(params.ell) * params.t,
        params.field,
        rng,
    )
}

/// Client: interpolates the `k` answers at `τ = 0`.
pub fn client_reconstruct(params: &MultiServerParams, answers: &[u64]) -> u64 {
    let k = params.num_servers();
    assert!(answers.len() >= k, "need all k answers");
    let xs: Vec<u64> = (0..k).map(|h| params.alpha(h)).collect();
    Poly::interpolate_at(&xs, &answers[..k], 0, params.field)
}

/// Fault-tolerant reconstruction (the remark after Theorem 2: "t′ malicious
/// servers can be tolerated by adding 2t′ additional servers"). Requires
/// `answers.len() ≥ deg + 2·max_faults + 1` points at `α_0 … α_{len−1}`;
/// decodes through up to `max_faults` corrupted answers via
/// Berlekamp–Welch.
///
/// # Errors
///
/// Returns `None` if more than `max_faults` answers are inconsistent.
///
/// # Panics
///
/// Panics if too few answers are supplied for the requested fault budget.
pub fn client_reconstruct_robust(
    params: &MultiServerParams,
    answers: &[u64],
    max_faults: usize,
) -> Option<u64> {
    let deg = params.function.poly_degree(params.ell) * params.t;
    let xs: Vec<u64> = (0..answers.len()).map(|h| params.alpha(h)).collect();
    let p = spfe_math::rs::berlekamp_welch(&xs, answers, deg, max_faults, params.field)?;
    Some(p.eval(0))
}

/// Post-mortem for a failed robust reconstruction: retries decoding with
/// progressively larger fault budgets to count how many answers actually
/// sit off the consensus polynomial; if no budget decodes, every answer is
/// suspect.
fn diagnose_faults(
    params: &MultiServerParams,
    answers: &[u64],
    max_faults: usize,
) -> ProtocolError {
    let deg = params.function.poly_degree(params.ell) * params.t;
    let xs: Vec<u64> = (0..answers.len()).map(|h| params.alpha(h)).collect();
    let max_budget = answers.len().saturating_sub(deg + 1) / 2;
    let observed = (max_faults + 1..=max_budget)
        .find_map(|budget| {
            spfe_math::rs::berlekamp_welch(&xs, answers, deg, budget, params.field).map(|p| {
                xs.iter()
                    .zip(answers)
                    .filter(|&(&x, &a)| p.eval(x) != a)
                    .count()
            })
        })
        .unwrap_or(answers.len());
    ProtocolError::TooManyFaulty {
        tolerated: max_faults,
        observed,
    }
}

/// Runs the protocol with `2·max_faults` extra servers and robust
/// reconstruction: up to `max_faults` servers may answer arbitrarily
/// (simulated by `corrupt`, which may tamper with any answer it is given).
///
/// # Errors
///
/// [`ProtocolError::TooManyFaulty`] with a fault diagnosis when more than
/// `max_faults` answers are inconsistent; any [`ProtocolError`] surfaced
/// by the channel.
///
/// # Panics
///
/// Panics if the channel has fewer than `k + 2·max_faults` servers.
pub fn run_robust<R, C>(
    t: &mut dyn Channel,
    params: &MultiServerParams,
    db: &[u64],
    indices: &[usize],
    max_faults: usize,
    mut corrupt: C,
    rng: &mut R,
) -> Result<u64, ProtocolError>
where
    R: RandomSource + ?Sized,
    C: FnMut(usize, u64) -> u64,
{
    let k = params.num_servers() + 2 * max_faults;
    assert_eq!(t.num_servers(), k, "need k + 2t' servers");
    let _proto = spfe_obs::span("multiserver-robust");
    let m = params.function.arity();
    assert_eq!(indices.len(), m);
    // Queries for all k servers (same curves, more evaluation points).
    let curves: Vec<Vec<Poly>> = indices
        .iter()
        .map(|&i| {
            encode_index(i, params.ell)
                .into_iter()
                .map(|bit| Poly::random_with_constant(bit, params.t, params.field, rng))
                .collect()
        })
        .collect();
    let queries = eval_curves_at_servers(params, &curves, k);
    let received: Vec<MsQuery> = queries
        .iter()
        .enumerate()
        .map(|(h, q)| t.client_to_server(h, "ms-query", q))
        .collect::<Result<_, _>>()?;
    // Honest evaluation is rng-free → pool (one item = a full Ω(n)
    // server evaluation, so Heavy); corruption and metering stay serial
    // (the corruptor is FnMut and may be stateful).
    let honest: Vec<u64> = par_map_cost(CostClass::Heavy, &received, |q| {
        server_answer(params, db, q, None)
    })
    .into_iter()
    .collect::<Result<_, _>>()?;
    let answers: Vec<u64> = honest
        .iter()
        .enumerate()
        .map(|(h, &a)| t.server_to_client(h, "ms-answer", &corrupt(h, a)))
        .collect::<Result<_, _>>()?;
    match client_reconstruct_robust(params, &answers, max_faults) {
        Some(v) => Ok(v),
        None => Err(diagnose_faults(params, &answers, max_faults)),
    }
}

/// Runs the full 1-round protocol over a metered transcript. With
/// `shared_seed = Some(s)` the servers add the \[25\]-style blinding (the
/// client then learns *only* `f(x_I)` — symmetric privacy).
///
/// # Errors
///
/// [`ProtocolError`] on any transport fault or malformed counterparty
/// message.
///
/// # Panics
///
/// Panics if the channel's server count differs from `k`.
pub fn run<R: RandomSource + ?Sized>(
    t: &mut dyn Channel,
    params: &MultiServerParams,
    db: &[u64],
    indices: &[usize],
    shared_seed: Option<u64>,
    rng: &mut R,
) -> Result<u64, ProtocolError> {
    assert_eq!(t.num_servers(), params.num_servers(), "server count");
    let _proto = spfe_obs::span("multiserver");
    let queries = {
        let _s = spfe_obs::span("query-gen");
        client_queries(params, indices, rng)
    };
    let received: Vec<MsQuery> = queries
        .iter()
        .enumerate()
        .map(|(h, q)| t.client_to_server(h, "ms-query", q))
        .collect::<Result<_, _>>()?;
    // Each server's evaluation is independent and (given the shared seed)
    // deterministic, so compute all answers on the worker pool…
    let jobs: Vec<(usize, &MsQuery)> = received.iter().enumerate().collect();
    let computed: Vec<u64> = {
        let _s = spfe_obs::span("server-eval");
        par_map_cost(CostClass::Heavy, &jobs, |&(h, q)| match shared_seed {
            None => server_answer(params, db, q, None),
            Some(seed) => {
                let mut server_rng = spfe_crypto::ChaChaRng::from_u64_seed(seed);
                let blind = blinding_poly(params, &mut server_rng);
                server_answer(params, db, q, Some((&blind, h)))
            }
        })
        .into_iter()
        .collect::<Result<_, _>>()?
    };
    // …and meter the replies serially in server order.
    let answers: Vec<u64> = computed
        .iter()
        .enumerate()
        .map(|(h, &a)| t.server_to_client(h, "ms-answer", &a))
        .collect::<Result<_, _>>()?;
    let _s = spfe_obs::span("reconstruct");
    Ok(client_reconstruct(params, &answers))
}

/// The §4 "package": answers the *same* queries against both `x` and the
/// squared database `x'`, returning `(Σ x_i, Σ x_i²)` — two field elements
/// of extra downstream communication total.
///
/// # Errors
///
/// [`ProtocolError`] on any transport fault or malformed counterparty
/// message.
///
/// # Panics
///
/// Panics if the function is not `Sum` or server counts mismatch.
pub fn run_sum_and_squares<R: RandomSource + ?Sized>(
    t: &mut dyn Channel,
    params: &MultiServerParams,
    db: &[u64],
    db_squared: &[u64],
    indices: &[usize],
    rng: &mut R,
) -> Result<(u64, u64), ProtocolError> {
    assert!(matches!(params.function, MsFunction::Sum { .. }));
    assert_eq!(t.num_servers(), params.num_servers());
    let _proto = spfe_obs::span("multiserver-sumsq");
    let queries = client_queries(params, indices, rng);
    let received: Vec<MsQuery> = queries
        .iter()
        .enumerate()
        .map(|(h, q)| t.client_to_server(h, "ms-query", q))
        .collect::<Result<_, _>>()?;
    let computed: Vec<(u64, u64)> = par_map_cost(CostClass::Heavy, &received, |q| {
        Ok::<_, ProtocolError>((
            server_answer(params, db, q, None)?,
            server_answer(params, db_squared, q, None)?,
        ))
    })
    .into_iter()
    .collect::<Result<_, _>>()?;
    let mut sum_answers = Vec::with_capacity(received.len());
    let mut sq_answers = Vec::with_capacity(received.len());
    for (h, pair) in computed.iter().enumerate() {
        let (a, b) = t.server_to_client(h, "ms-answer-pair", pair)?;
        sum_answers.push(a);
        sq_answers.push(b);
    }
    Ok((
        client_reconstruct(params, &sum_answers),
        client_reconstruct(params, &sq_answers),
    ))
}

/// §3.1's amortization claim, generalized: "this protocol can be used to
/// compute several statistics on the same data set, or the same statistic
/// over different periods of time, with little additional cost." One query
/// set is answered against every database in `dbs` (e.g. one per time
/// period, or `x` and `x'`), for one extra field element per (server,
/// database).
///
/// # Errors
///
/// [`ProtocolError`] on any transport fault or malformed counterparty
/// message.
///
/// # Panics
///
/// Panics on server-count mismatch or ragged database sizes.
pub fn run_many_databases<R: RandomSource + ?Sized>(
    t: &mut dyn Channel,
    params: &MultiServerParams,
    dbs: &[&[u64]],
    indices: &[usize],
    rng: &mut R,
) -> Result<Vec<u64>, ProtocolError> {
    assert!(!dbs.is_empty());
    assert!(dbs.iter().all(|d| d.len() == dbs[0].len()), "ragged dbs");
    assert_eq!(t.num_servers(), params.num_servers());
    let _proto = spfe_obs::span("multiserver-multidb");
    let queries = client_queries(params, indices, rng);
    let received: Vec<MsQuery> = queries
        .iter()
        .enumerate()
        .map(|(h, q)| t.client_to_server(h, "ms-query", q))
        .collect::<Result<_, _>>()?;
    let computed: Vec<Vec<u64>> = par_map_cost(CostClass::Heavy, &received, |q| {
        dbs.iter()
            .map(|db| server_answer(params, db, q, None))
            .collect::<Result<_, _>>()
    })
    .into_iter()
    .collect::<Result<_, _>>()?;
    let mut per_db_answers: Vec<Vec<u64>> = vec![Vec::with_capacity(received.len()); dbs.len()];
    for (h, answers) in computed.iter().enumerate() {
        let answers = t.server_to_client(h, "ms-answer-multi", answers)?;
        if answers.len() != dbs.len() {
            return Err(ProtocolError::InvalidMessage {
                label: "ms-answer-multi",
                reason: "answer count does not match database count",
            });
        }
        for (d, a) in answers.into_iter().enumerate() {
            per_db_answers[d].push(a);
        }
    }
    Ok(per_db_answers
        .iter()
        .map(|answers| client_reconstruct(params, answers))
        .collect())
}

/// Like [`run`], but forces the (independent) server evaluations onto the
/// worker pool even below the sequential-fallback threshold — the
/// deployment reality the paper assumes, where each replica is its own
/// machine. Communication accounting is identical to the sequential run;
/// only wall-clock changes.
///
/// # Errors / Panics
///
/// Same contract as [`run`].
pub fn run_parallel<R: RandomSource + ?Sized>(
    t: &mut dyn Channel,
    params: &MultiServerParams,
    db: &[u64],
    indices: &[usize],
    rng: &mut R,
) -> Result<u64, ProtocolError> {
    assert_eq!(t.num_servers(), params.num_servers(), "server count");
    let _proto = spfe_obs::span("multiserver-par");
    let queries = client_queries(params, indices, rng);
    let received: Vec<MsQuery> = queries
        .iter()
        .enumerate()
        .map(|(h, q)| t.client_to_server(h, "ms-query", q))
        .collect::<Result<_, _>>()?;
    // Every server computes concurrently (min_len 1 bypasses the
    // sequential-fallback threshold)…
    let computed: Vec<u64> =
        spfe_math::par::par_map_min(1, &received, |q| server_answer(params, db, q, None))
            .into_iter()
            .collect::<Result<_, _>>()?;
    // …and the replies are metered as usual.
    let answers: Vec<u64> = computed
        .iter()
        .enumerate()
        .map(|(h, &a)| t.server_to_client(h, "ms-answer", &a))
        .collect::<Result<_, _>>()?;
    Ok(client_reconstruct(params, &answers))
}

// ---------------------------------------------------------------------------
// Sans-io state machines (DESIGN.md §15) for the unblinded configuration
// the conformance harness runs (`shared_seed = None`). They call the same
// client_queries/server_answer/client_reconstruct as the monolithic
// [`run`], so every transport yields identical bytes and op counts.
// ---------------------------------------------------------------------------

/// Server `h` of the Theorem 2 multi-server SPFE as a sans-io machine.
#[derive(Debug)]
pub struct MsServerCore {
    index: usize,
    params: MultiServerParams,
    db: Vec<u64>,
    answered: bool,
}

impl MsServerCore {
    /// A core for server `index` holding `db` under `params`.
    pub fn new(index: usize, params: MultiServerParams, db: Vec<u64>) -> Self {
        MsServerCore {
            index,
            params,
            db,
            answered: false,
        }
    }
}

impl SessionCore for MsServerCore {
    fn on_message(
        &mut self,
        _half_round: u32,
        _server: usize,
        label: &str,
        payload: &[u8],
    ) -> Result<(SessionState, Vec<OutMsg>), ProtocolError> {
        if label != "ms-query" || self.answered {
            return Err(ProtocolError::InvalidMessage {
                label: "ms-query",
                reason: "unexpected message for a multiserver server",
            });
        }
        let query = MsQuery::from_bytes(payload)?;
        let answer = server_answer(&self.params, &self.db, &query, None)?;
        self.answered = true;
        Ok((
            SessionState::Done,
            vec![OutMsg::to_client(
                self.index,
                "ms-answer",
                answer.to_bytes(),
            )],
        ))
    }
}

/// Client half of the Theorem 2 protocol: all `k` queries at start,
/// interpolation once every answer arrived.
#[derive(Debug)]
pub struct MsClientCore {
    params: MultiServerParams,
    queries: Option<Vec<MsQuery>>,
    answers: Vec<Option<u64>>,
    result: Option<u64>,
}

impl MsClientCore {
    /// A client core evaluating the configured function on `indices`; the
    /// random curves are drawn here.
    ///
    /// # Panics
    ///
    /// Panics if the index count mismatches the function arity or an
    /// index does not fit in `ℓ` bits.
    pub fn new<R: RandomSource + ?Sized>(
        params: MultiServerParams,
        indices: &[usize],
        rng: &mut R,
    ) -> Self {
        let queries = client_queries(&params, indices, rng);
        let k = params.num_servers();
        MsClientCore {
            params,
            queries: Some(queries),
            answers: vec![None; k],
            result: None,
        }
    }
}

impl SessionCore for MsClientCore {
    fn start(&mut self) -> Result<(SessionState, Vec<OutMsg>), ProtocolError> {
        let queries = self.queries.take().ok_or(ProtocolError::InvalidMessage {
            label: "ms-query",
            reason: "multiserver client core started twice",
        })?;
        Ok((
            SessionState::Running,
            queries
                .iter()
                .enumerate()
                .map(|(h, q)| OutMsg::to_server(h, "ms-query", q.to_bytes()))
                .collect(),
        ))
    }

    fn on_message(
        &mut self,
        _half_round: u32,
        server: usize,
        label: &str,
        payload: &[u8],
    ) -> Result<(SessionState, Vec<OutMsg>), ProtocolError> {
        if label != "ms-answer" || server >= self.answers.len() || self.answers[server].is_some() {
            return Err(ProtocolError::InvalidMessage {
                label: "ms-answer",
                reason: "unexpected message for the multiserver client",
            });
        }
        self.answers[server] = Some(u64::from_bytes(payload)?);
        if self.answers.iter().all(Option::is_some) {
            let answers: Vec<u64> = self.answers.iter().map(|a| a.unwrap()).collect();
            self.result = Some(client_reconstruct(&self.params, &answers));
            return Ok((SessionState::Done, Vec::new()));
        }
        Ok((SessionState::Running, Vec::new()))
    }
}

impl ClientCore for MsClientCore {
    fn digest(&self) -> Option<u64> {
        self.result
    }

    fn static_label(&self, label: &str) -> Option<&'static str> {
        (label == "ms-answer").then_some("ms-answer")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfe_circuits::formula::BinOp;
    use spfe_math::XorShiftRng;
    use spfe_transport::Transcript;

    fn field() -> Fp64 {
        Fp64::new(1_000_003).unwrap()
    }

    #[test]
    fn sum_function_all_indices() {
        let mut rng = XorShiftRng::new(1);
        let db: Vec<u64> = (0..16u64).map(|i| i * 11 + 2).collect();
        let params = MultiServerParams::new(db.len(), 1, field(), MsFunction::Sum { m: 3 });
        for idx in [[0usize, 1, 2], [5, 5, 5], [15, 0, 7]] {
            let mut tr = Transcript::new(params.num_servers());
            let got = run(&mut tr, &params, &db, &idx, None, &mut rng).unwrap();
            let expect = params.function.eval_clear(&db, &idx, field()).unwrap();
            assert_eq!(got, expect, "{idx:?}");
        }
    }

    #[test]
    fn boolean_formula_spfe() {
        let mut rng = XorShiftRng::new(2);
        let db = vec![1u64, 0, 1, 1, 0, 1, 0, 0];
        let phi = Formula::gate(
            BinOp::Or,
            Formula::gate(BinOp::And, Formula::leaf(0), Formula::leaf(1)),
            Formula::leaf(2),
        );
        let params = MultiServerParams::new(db.len(), 1, field(), MsFunction::Formula(phi));
        for idx in [[0usize, 2, 4], [1, 4, 6], [0, 1, 2], [3, 5, 7]] {
            let mut tr = Transcript::new(params.num_servers());
            let got = run(&mut tr, &params, &db, &idx, None, &mut rng).unwrap();
            let expect = params.function.eval_clear(&db, &idx, field()).unwrap();
            assert_eq!(got, expect, "{idx:?}");
        }
    }

    #[test]
    fn theorem2_server_count() {
        // k = t·s·⌈log₂ n⌉ + 1.
        let phi = Formula::balanced(BinOp::And, 4); // s = 4
        let params = MultiServerParams::new(1024, 2, field(), MsFunction::Formula(phi)); // ℓ = 10
        assert_eq!(params.num_servers(), 2 * 4 * 10 + 1);
        let sum_params = MultiServerParams::new(1024, 3, field(), MsFunction::Sum { m: 5 });
        assert_eq!(sum_params.num_servers(), 3 * 10 + 1); // s = 1
    }

    #[test]
    fn one_round_and_tiny_answers() {
        let mut rng = XorShiftRng::new(3);
        let db: Vec<u64> = (0..64u64).collect();
        let params = MultiServerParams::new(db.len(), 1, field(), MsFunction::Sum { m: 4 });
        let mut tr = Transcript::new(params.num_servers());
        run(&mut tr, &params, &db, &[1, 2, 3, 4], None, &mut rng).unwrap();
        let rep = tr.report();
        assert_eq!(rep.half_rounds, 2);
        // Answers: k single field elements — per-server downstream is 8 bytes.
        assert_eq!(
            rep.server_to_client,
            8 * params.num_servers() as u64,
            "answers must be single field elements"
        );
    }

    #[test]
    fn symmetric_blinding_still_reconstructs() {
        let mut rng = XorShiftRng::new(4);
        let db: Vec<u64> = (0..32u64).map(|i| i + 100).collect();
        let params = MultiServerParams::new(db.len(), 2, field(), MsFunction::Sum { m: 2 });
        let mut tr = Transcript::new(params.num_servers());
        let got = run(&mut tr, &params, &db, &[3, 30], Some(0xB11D), &mut rng).unwrap();
        assert_eq!(got, field().from_u64(db[3] + db[30]));
    }

    #[test]
    fn blinded_answers_hide_intermediate_values() {
        let mut rng = XorShiftRng::new(5);
        let db: Vec<u64> = (0..8u64).collect();
        let params = MultiServerParams::new(db.len(), 1, field(), MsFunction::Sum { m: 1 });
        let queries = client_queries(&params, &[2], &mut rng);
        let mut srng = spfe_crypto::ChaChaRng::from_u64_seed(7);
        let blind = blinding_poly(&params, &mut srng);
        let mut diffs = 0;
        for (h, q) in queries.iter().enumerate() {
            let raw = server_answer(&params, &db, q, None).unwrap();
            let blinded = server_answer(&params, &db, q, Some((&blind, h))).unwrap();
            diffs += (raw != blinded) as usize;
        }
        assert!(diffs > 0);
    }

    #[test]
    fn t_collusion_sees_uniform_points() {
        // Any t servers hold t points of random degree-t curves — as in
        // poly_it, check that a single server's view for two different
        // index vectors is statistically identical.
        let f = Fp64::new(13).unwrap();
        let mut hist = [[0u32; 13]; 2];
        for (slot, idx) in [[0usize, 1], [2usize, 3]].iter().enumerate() {
            let mut rng = XorShiftRng::new(slot as u64 + 10);
            let params = MultiServerParams {
                t: 1,
                ell: 2,
                field: f,
                function: MsFunction::Sum { m: 2 },
            };
            for _ in 0..2600 {
                let qs = client_queries(&params, idx, &mut rng);
                hist[slot][qs[0].slot_points[0][0] as usize] += 1;
            }
        }
        for (v, (&h0, &h1)) in hist[0].iter().zip(&hist[1]).enumerate() {
            let (a, b) = (h0 as f64, h1 as f64);
            assert!((a - b).abs() < 10.0 * ((a + b).sqrt() + 1.0), "v={v}");
        }
    }

    #[test]
    fn sum_and_squares_package() {
        let mut rng = XorShiftRng::new(6);
        let db: Vec<u64> = (1..=32u64).collect();
        let sq: Vec<u64> = db.iter().map(|&v| v * v).collect();
        let params = MultiServerParams::new(db.len(), 1, field(), MsFunction::Sum { m: 3 });
        let idx = [2usize, 7, 30];
        let mut tr = Transcript::new(params.num_servers());
        let (s, ss) = run_sum_and_squares(&mut tr, &params, &db, &sq, &idx, &mut rng).unwrap();
        assert_eq!(s, db[2] + db[7] + db[30]);
        assert_eq!(ss, sq[2] + sq[7] + sq[30]);
        // Still one round, and downstream exactly 2 field elements/server.
        let rep = tr.report();
        assert_eq!(rep.half_rounds, 2);
        assert_eq!(rep.server_to_client, 16 * params.num_servers() as u64);
    }

    #[test]
    fn many_databases_share_one_query() {
        // §3.1 amortization: T time periods answered by one query set.
        let mut rng = XorShiftRng::new(21);
        let periods: Vec<Vec<u64>> = (0..4u64)
            .map(|t| (0..16u64).map(|i| i * 3 + t * 100).collect())
            .collect();
        let refs: Vec<&[u64]> = periods.iter().map(|p| p.as_slice()).collect();
        let params = MultiServerParams::new(16, 1, field(), MsFunction::Sum { m: 2 });
        let idx = [3usize, 9];
        let mut tr = Transcript::new(params.num_servers());
        let sums = run_many_databases(&mut tr, &params, &refs, &idx, &mut rng).unwrap();
        for (s, p) in sums.iter().zip(&periods) {
            assert_eq!(*s, p[3] + p[9]);
        }
        // One round; upstream identical to a single-db run.
        assert_eq!(tr.report().half_rounds, 2);
        let mut tr_single = Transcript::new(params.num_servers());
        run(&mut tr_single, &params, &periods[0], &idx, None, &mut rng).unwrap();
        assert_eq!(
            tr.report().client_to_server,
            tr_single.report().client_to_server,
            "queries must be shared"
        );
    }

    #[test]
    fn parallel_run_matches_sequential() {
        let mut rng = XorShiftRng::new(22);
        let db: Vec<u64> = (0..64u64).map(|i| i + 7).collect();
        let params = MultiServerParams::new(db.len(), 2, field(), MsFunction::Sum { m: 3 });
        let idx = [0usize, 32, 63];
        let mut tr = Transcript::new(params.num_servers());
        let got = run_parallel(&mut tr, &params, &db, &idx, &mut rng).unwrap();
        assert_eq!(got, db[0] + db[32] + db[63]);
        assert_eq!(tr.report().half_rounds, 2);
    }

    #[test]
    fn robust_reconstruction_survives_byzantine_servers() {
        // The remark after Theorem 2: +2t′ servers tolerate t′ malicious.
        let mut rng = XorShiftRng::new(7);
        let db: Vec<u64> = (0..32u64).map(|i| i * 5 + 3).collect();
        let params = MultiServerParams::new(db.len(), 1, field(), MsFunction::Sum { m: 2 });
        let idx = [4usize, 20];
        let expect = field().from_u64(db[4] + db[20]);
        for faults in [0usize, 1, 2] {
            let k = params.num_servers() + 2 * faults;
            let mut tr = Transcript::new(k);
            // Servers 0..faults lie with garbage.
            let got = run_robust(
                &mut tr,
                &params,
                &db,
                &idx,
                faults,
                |h, honest| if h < faults { honest ^ 0xDEAD } else { honest },
                &mut rng,
            );
            assert_eq!(got, Ok(expect), "faults={faults}");
        }
    }

    #[test]
    fn robust_reconstruction_detects_excess_faults() {
        let mut rng = XorShiftRng::new(8);
        let db: Vec<u64> = (0..16u64).collect();
        let params = MultiServerParams::new(db.len(), 1, field(), MsFunction::Sum { m: 1 });
        let max_faults = 1;
        let k = params.num_servers() + 2 * max_faults;
        let mut tr = Transcript::new(k);
        // 3 > max_faults liars with random garbage: decoding either
        // succeeds with the true value or aborts with a fault diagnosis
        // (never silently garbage that passes the agreement check).
        let got = run_robust(
            &mut tr,
            &params,
            &db,
            &[3],
            max_faults,
            |h, honest| {
                if h < 3 {
                    honest.wrapping_mul(31).wrapping_add(h as u64 + 1) % 1_000_003
                } else {
                    honest
                }
            },
            &mut rng,
        );
        match got {
            Ok(v) => {
                // If decoding claims success it must agree with the honest
                // majority, i.e. equal the true value.
                assert_eq!(v, field().from_u64(db[3]));
            }
            Err(ProtocolError::TooManyFaulty {
                tolerated,
                observed,
            }) => {
                assert_eq!(tolerated, max_faults);
                assert!(observed > tolerated, "diagnosis must exceed budget");
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn formula_on_non_boolean_db_is_rejected() {
        let phi = Formula::leaf(0);
        let params = MultiServerParams::new(4, 1, field(), MsFunction::Formula(phi));
        let db = vec![5u64, 1, 0, 1];
        assert_eq!(
            params.function.eval_clear(&db, &[0], field()),
            Err(ProtocolError::InvalidDatabase(
                "formula SPFE needs a Boolean database"
            ))
        );
    }
}
