//! Databases and synthetic workload generators.
//!
//! The paper's motivating application (§1): a database with *public*
//! attributes (zip code) and *private* values (salary, age). The client
//! selects a sample using the public part and privately computes statistics
//! over the private part. Since the motivating third-party databases are
//! proprietary, the generators here produce synthetic equivalents whose
//! only protocol-relevant properties — size `n` and value range — are
//! swept by the benchmarks (DESIGN.md §4, substitution 3).

use spfe_math::RandomSource;

/// A database of `n` private values with optional public attributes.
///
/// # Examples
///
/// ```
/// use spfe_core::database::Database;
/// use spfe_math::XorShiftRng;
/// let mut rng = XorShiftRng::new(1);
/// let db = Database::census(100, &mut rng);
/// assert_eq!(db.len(), 100);
/// let sample = db.select_by_zip(db.public()[3].zip_code);
/// assert!(!sample.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Database {
    values: Vec<u64>,
    public: Vec<PublicRecord>,
    max_value: u64,
}

/// The public attributes of one record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublicRecord {
    /// Public zip code (5 digits).
    pub zip_code: u32,
    /// Public age bracket (0–15).
    pub age_bracket: u8,
}

impl Database {
    /// Wraps raw values (no public attributes).
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn from_values(values: Vec<u64>) -> Self {
        assert!(!values.is_empty(), "empty database");
        let max_value = *values.iter().max().unwrap();
        let public = (0..values.len())
            .map(|i| PublicRecord {
                zip_code: (i % 100) as u32,
                age_bracket: (i % 16) as u8,
            })
            .collect();
        Database {
            values,
            public,
            max_value,
        }
    }

    /// Uniformly random values in `[0, max)`.
    pub fn uniform<R: RandomSource + ?Sized>(n: usize, max: u64, rng: &mut R) -> Self {
        assert!(n > 0 && max > 0);
        Database::from_values((0..n).map(|_| rng.next_below(max)).collect())
    }

    /// Zipf-distributed values over `[1, max]` with exponent ~1 — a
    /// heavy-tailed workload (e.g. purchase counts).
    pub fn zipf<R: RandomSource + ?Sized>(n: usize, max: u64, rng: &mut R) -> Self {
        assert!(n > 0 && max > 1);
        let values = (0..n)
            .map(|_| {
                // Inverse-CDF sampling for P(v) ∝ 1/v over [1, max]:
                // v = max^u for u uniform in (0, 1].
                let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = (max as f64).powf(u.max(1e-12));
                (v as u64).clamp(1, max)
            })
            .collect();
        Database::from_values(values)
    }

    /// A census-style database: salaries (log-normal-ish) keyed by zip code
    /// and age bracket — the paper's running example.
    pub fn census<R: RandomSource + ?Sized>(n: usize, rng: &mut R) -> Self {
        assert!(n > 0);
        let mut values = Vec::with_capacity(n);
        let mut public = Vec::with_capacity(n);
        for _ in 0..n {
            let zip = 10_000 + rng.next_below(90_000) as u32;
            let age = rng.next_below(16) as u8;
            // Salary: base by age bracket + multiplicative noise.
            let base = 20_000 + 5_000 * age as u64;
            let noise = 50 + rng.next_below(150); // 0.5x – 2.0x in percent
            values.push(base * noise / 100);
            public.push(PublicRecord {
                zip_code: zip,
                age_bracket: age,
            });
        }
        let max_value = *values.iter().max().unwrap();
        Database {
            values,
            public,
            max_value,
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True iff empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The private values.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// The public attributes.
    pub fn public(&self) -> &[PublicRecord] {
        &self.public
    }

    /// Largest private value (used to size fields/moduli).
    pub fn max_value(&self) -> u64 {
        self.max_value
    }

    /// The element-wise squared database `x' = (x₁², …)` kept by the server
    /// for the §4 average+variance package.
    ///
    /// # Panics
    ///
    /// Panics if any square overflows `u64`.
    pub fn squared(&self) -> Vec<u64> {
        self.values
            .iter()
            .map(|&v| v.checked_mul(v).expect("square overflows u64"))
            .collect()
    }

    /// Indices of records in a zip code — how a client would select its
    /// sample from public data.
    pub fn select_by_zip(&self, zip: u32) -> Vec<usize> {
        self.public
            .iter()
            .enumerate()
            .filter(|(_, r)| r.zip_code == zip)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of records in an age bracket.
    pub fn select_by_age(&self, bracket: u8) -> Vec<usize> {
        self.public
            .iter()
            .enumerate()
            .filter(|(_, r)| r.age_bracket == bracket)
            .map(|(i, _)| i)
            .collect()
    }

    /// A prime modulus large enough for sums of `m` values plus the
    /// database index space — the field `F` the §3/§4 protocols compute in.
    pub fn field_for_sums(&self, m: usize) -> spfe_math::Fp64 {
        let bound = (self.max_value.max(1))
            .saturating_mul(m as u64)
            .max(self.values.len() as u64)
            + 1;
        spfe_math::Fp64::at_least(bound)
    }
}

/// Clear-text reference statistics, used as ground truth in tests and
/// experiment reports.
pub mod reference {
    /// Sum of the selected values.
    pub fn sum(values: &[u64], indices: &[usize]) -> u64 {
        indices.iter().map(|&i| values[i]).sum()
    }

    /// Mean (floor) of the selected values.
    pub fn mean(values: &[u64], indices: &[usize]) -> u64 {
        sum(values, indices) / indices.len() as u64
    }

    /// Population variance ×(m²) as integers: `m·Σx² − (Σx)²` (avoids
    /// fractions; the client rescales).
    pub fn variance_numerator(values: &[u64], indices: &[usize]) -> u64 {
        let m = indices.len() as u64;
        let s: u64 = sum(values, indices);
        let sq: u64 = indices.iter().map(|&i| values[i] * values[i]).sum();
        m * sq - s * s
    }

    /// Number of selected values equal to the keyword.
    pub fn frequency(values: &[u64], indices: &[usize], keyword: u64) -> u64 {
        indices.iter().filter(|&&i| values[i] == keyword).count() as u64
    }

    /// Weighted sum with the given coefficients.
    pub fn weighted_sum(values: &[u64], indices: &[usize], weights: &[u64]) -> u64 {
        indices
            .iter()
            .zip(weights)
            .map(|(&i, &w)| values[i] * w)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfe_math::XorShiftRng;

    #[test]
    fn uniform_values_in_range() {
        let mut rng = XorShiftRng::new(1);
        let db = Database::uniform(500, 1000, &mut rng);
        assert_eq!(db.len(), 500);
        assert!(db.values().iter().all(|&v| v < 1000));
        assert!(db.max_value() < 1000);
    }

    #[test]
    fn zipf_is_heavy_tailed() {
        let mut rng = XorShiftRng::new(2);
        let db = Database::zipf(2000, 1_000_000, &mut rng);
        let small = db.values().iter().filter(|&&v| v < 1000).count();
        let large = db.values().iter().filter(|&&v| v >= 100_000).count();
        assert!(small > large, "zipf should concentrate on small values");
        assert!(large > 0, "but the tail must exist");
    }

    #[test]
    fn census_selection_consistency() {
        let mut rng = XorShiftRng::new(3);
        let db = Database::census(300, &mut rng);
        let bracket = db.public()[0].age_bracket;
        let sel = db.select_by_age(bracket);
        assert!(sel.contains(&0));
        for &i in &sel {
            assert_eq!(db.public()[i].age_bracket, bracket);
        }
    }

    #[test]
    fn squared_database() {
        let db = Database::from_values(vec![3, 5, 7]);
        assert_eq!(db.squared(), vec![9, 25, 49]);
    }

    #[test]
    fn field_for_sums_covers_worst_case() {
        let db = Database::from_values(vec![100, 999, 5]);
        let f = db.field_for_sums(10);
        assert!(f.modulus() > 9_990);
    }

    #[test]
    fn reference_statistics() {
        let vals = vec![10u64, 20, 30, 20];
        let idx = vec![0usize, 1, 3];
        assert_eq!(reference::sum(&vals, &idx), 50);
        assert_eq!(reference::mean(&vals, &idx), 16);
        assert_eq!(reference::frequency(&vals, &idx, 20), 2);
        assert_eq!(reference::weighted_sum(&vals, &idx, &[1, 2, 3]), 110);
        // m·Σx² − (Σx)² = 3·(100+400+400) − 2500 = 200
        assert_eq!(reference::variance_numerator(&vals, &idx), 200);
    }

    #[test]
    #[should_panic(expected = "empty database")]
    fn empty_rejected() {
        let _ = Database::from_values(vec![]);
    }
}
