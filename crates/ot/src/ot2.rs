//! 1-out-of-2 oblivious transfer (Naor–Pinkas style, ref. \[38\]).
//!
//! The base OT of the workspace: the receiver holds a choice bit `b`, the
//! sender holds two equal-length messages `m₀, m₁`; the receiver learns
//! `m_b` and nothing about `m_{1−b}`, the sender learns nothing about `b`.
//! Security is computational (DDH in a Schnorr group) against semi-honest
//! parties — the paper's `SPIR(2, 1, κ)` unit, consumed by the Yao garbling
//! of `spfe-mpc` and the SPIR transforms of `spfe-pir`.
//!
//! Protocol (one round after a reusable setup message):
//!
//! 1. Sender publishes a random group element `C` (reusable across many
//!    transfers).
//! 2. Receiver picks `k`, sets `PK_b = g^k` and sends `PK₀`
//!    (sender derives `PK₁ = C / PK₀`).
//! 3. Sender picks `r₀, r₁` and sends
//!    `(g^{r₀}, H(PK₀^{r₀}) ⊕ m₀)` and `(g^{r₁}, H(PK₁^{r₁}) ⊕ m₁)`.
//! 4. Receiver recovers `m_b = H((g^{r_b})^k) ⊕ c_b`.

use spfe_crypto::sha256::prf;
use spfe_crypto::SchnorrGroup;
use spfe_math::{Nat, RandomSource};
use spfe_transport::{Reader, Wire, WireError};

/// Sender's reusable setup message: the "forced" public key base `C`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OtSetup {
    /// Random group element.
    pub c: Nat,
}

impl Wire for OtSetup {
    fn encode(&self, out: &mut Vec<u8>) {
        self.c.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(OtSetup { c: Nat::decode(r)? })
    }
}

/// Receiver's query: `PK₀`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OtQuery {
    /// The public key for branch 0.
    pub pk0: Nat,
}

impl Wire for OtQuery {
    fn encode(&self, out: &mut Vec<u8>) {
        self.pk0.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(OtQuery {
            pk0: Nat::decode(r)?,
        })
    }
}

/// Sender's transfer message: two ElGamal-style branches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OtTransfer {
    /// `g^{r₀}`.
    pub g_r0: Nat,
    /// `m₀ ⊕ H(PK₀^{r₀})`.
    pub c0: Vec<u8>,
    /// `g^{r₁}`.
    pub g_r1: Nat,
    /// `m₁ ⊕ H(PK₁^{r₁})`.
    pub c1: Vec<u8>,
}

impl Wire for OtTransfer {
    fn encode(&self, out: &mut Vec<u8>) {
        self.g_r0.encode(out);
        self.c0.encode(out);
        self.g_r1.encode(out);
        self.c1.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(OtTransfer {
            g_r0: Nat::decode(r)?,
            c0: Vec::<u8>::decode(r)?,
            g_r1: Nat::decode(r)?,
            c1: Vec::<u8>::decode(r)?,
        })
    }
}

/// Receiver state held between query and output.
#[derive(Debug, Clone)]
pub struct OtReceiverState {
    k: Nat,
    choice: bool,
}

/// Expands a group element into a `len`-byte pad.
fn pad_from_point(point: &Nat, len: usize, tag: u8) -> Vec<u8> {
    let seed = point.to_be_bytes();
    let mut out = Vec::with_capacity(len);
    let mut counter = 0u64;
    while out.len() < len {
        let block = prf(
            &seed,
            b"spfe-ot2-pad",
            &[&[tag][..], &counter.to_le_bytes()].concat(),
        );
        let take = (len - out.len()).min(block.len());
        out.extend_from_slice(&block[..take]);
        counter += 1;
    }
    out
}

fn xor_into(mut data: Vec<u8>, pad: &[u8]) -> Vec<u8> {
    for (d, p) in data.iter_mut().zip(pad) {
        *d ^= p;
    }
    data
}

/// Sender setup: samples the reusable element `C`.
pub fn sender_setup<R: RandomSource + ?Sized>(group: &SchnorrGroup, rng: &mut R) -> OtSetup {
    // C = g^c for random c keeps C in the prime-order subgroup.
    let c = group.pow(group.g(), &group.random_exponent(rng));
    OtSetup { c }
}

/// Deterministic setup from a nothing-up-my-sleeve element: no party knows
/// `log_g C`, so the sender need not transmit a setup message at all. This
/// keeps OT-using protocols at one round.
pub fn deterministic_setup(group: &SchnorrGroup, label: &[u8]) -> OtSetup {
    OtSetup {
        c: group.hash_to_group(label),
    }
}

/// Receiver: builds the query for `choice` and the state to finish later.
pub fn receiver_choose<R: RandomSource + ?Sized>(
    group: &SchnorrGroup,
    setup: &OtSetup,
    choice: bool,
    rng: &mut R,
) -> (OtQuery, OtReceiverState) {
    let k = group.random_exponent(rng);
    let pk_choice = group.pow(group.g(), &k);
    let pk0 = if choice {
        // PK₀ = C / PK₁
        group.mul(&setup.c, &group.inv(&pk_choice))
    } else {
        pk_choice
    };
    (OtQuery { pk0 }, OtReceiverState { k, choice })
}

/// Sender: answers a query with both encrypted branches.
///
/// # Panics
///
/// Panics if `m0` and `m1` have different lengths.
pub fn sender_transfer<R: RandomSource + ?Sized>(
    group: &SchnorrGroup,
    setup: &OtSetup,
    query: &OtQuery,
    m0: &[u8],
    m1: &[u8],
    rng: &mut R,
) -> OtTransfer {
    spfe_obs::count(spfe_obs::Op::Ot2Transfer, 1);
    assert_eq!(m0.len(), m1.len(), "OT messages must have equal length");
    let pk0 = &query.pk0;
    let pk1 = group.mul(&setup.c, &group.inv(pk0));
    let r0 = group.random_exponent(rng);
    let r1 = group.random_exponent(rng);
    let g_r0 = group.pow(group.g(), &r0);
    let g_r1 = group.pow(group.g(), &r1);
    let pad0 = pad_from_point(&group.pow(pk0, &r0), m0.len(), 0);
    let pad1 = pad_from_point(&group.pow(&pk1, &r1), m1.len(), 1);
    OtTransfer {
        g_r0,
        c0: xor_into(m0.to_vec(), &pad0),
        g_r1,
        c1: xor_into(m1.to_vec(), &pad1),
    }
}

/// Receiver: recovers `m_choice`.
pub fn receiver_output(
    group: &SchnorrGroup,
    state: &OtReceiverState,
    transfer: &OtTransfer,
) -> Vec<u8> {
    let (g_r, ct, tag) = if state.choice {
        (&transfer.g_r1, &transfer.c1, 1)
    } else {
        (&transfer.g_r0, &transfer.c0, 0)
    };
    let pad = pad_from_point(&group.pow(g_r, &state.k), ct.len(), tag);
    xor_into(ct.clone(), &pad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spfe_crypto::ChaChaRng;

    fn group_and_rng() -> (SchnorrGroup, ChaChaRng) {
        let mut rng = ChaChaRng::from_u64_seed(0x07);
        let group = SchnorrGroup::generate(96, &mut rng);
        (group, rng)
    }

    #[test]
    fn receiver_gets_chosen_message() {
        let (group, mut rng) = group_and_rng();
        let setup = sender_setup(&group, &mut rng);
        for choice in [false, true] {
            let (q, st) = receiver_choose(&group, &setup, choice, &mut rng);
            let t = sender_transfer(&group, &setup, &q, b"zero-msg", b"one-msgg", &mut rng);
            let out = receiver_output(&group, &st, &t);
            let expect: &[u8] = if choice { b"one-msgg" } else { b"zero-msg" };
            assert_eq!(out, expect, "choice={choice}");
        }
    }

    #[test]
    fn other_branch_is_garbage() {
        let (group, mut rng) = group_and_rng();
        let setup = sender_setup(&group, &mut rng);
        let (q, st) = receiver_choose(&group, &setup, false, &mut rng);
        let t = sender_transfer(&group, &setup, &q, b"aaaaaaaa", b"bbbbbbbb", &mut rng);
        // Decrypting the wrong branch with the receiver's key fails.
        let wrong_pad = pad_from_point(&group.pow(&t.g_r1, &st.k), 8, 1);
        let wrong = xor_into(t.c1.clone(), &wrong_pad);
        assert_ne!(wrong, b"bbbbbbbb");
    }

    #[test]
    fn queries_hide_choice_bit_structurally() {
        // Both choice values produce queries that are valid group elements;
        // over many runs the PK₀ distribution is fresh-random either way.
        let (group, mut rng) = group_and_rng();
        let setup = sender_setup(&group, &mut rng);
        let (q0, _) = receiver_choose(&group, &setup, false, &mut rng);
        let (q1, _) = receiver_choose(&group, &setup, true, &mut rng);
        assert_ne!(q0.pk0, q1.pk0);
        assert!(q0.pk0 < *group.p());
        assert!(q1.pk0 < *group.p());
    }

    #[test]
    fn setup_is_reusable_across_transfers() {
        let (group, mut rng) = group_and_rng();
        let setup = sender_setup(&group, &mut rng);
        for i in 0u8..5 {
            let choice = i % 2 == 1;
            let (q, st) = receiver_choose(&group, &setup, choice, &mut rng);
            let m0 = vec![i; 4];
            let m1 = vec![i + 100; 4];
            let t = sender_transfer(&group, &setup, &q, &m0, &m1, &mut rng);
            let out = receiver_output(&group, &st, &t);
            assert_eq!(out, if choice { m1 } else { m0 });
        }
    }

    #[test]
    fn messages_roundtrip_on_wire() {
        let (group, mut rng) = group_and_rng();
        let setup = sender_setup(&group, &mut rng);
        let bytes = setup.to_bytes();
        assert_eq!(OtSetup::from_bytes(&bytes).unwrap(), setup);
        let (q, _) = receiver_choose(&group, &setup, true, &mut rng);
        assert_eq!(OtQuery::from_bytes(&q.to_bytes()).unwrap(), q);
        let t = sender_transfer(&group, &setup, &q, b"xy", b"zw", &mut rng);
        assert_eq!(OtTransfer::from_bytes(&t.to_bytes()).unwrap(), t);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn unequal_messages_rejected() {
        let (group, mut rng) = group_and_rng();
        let setup = sender_setup(&group, &mut rng);
        let (q, _) = receiver_choose(&group, &setup, false, &mut rng);
        let _ = sender_transfer(&group, &setup, &q, b"a", b"bb", &mut rng);
    }

    #[test]
    fn empty_messages_work() {
        let (group, mut rng) = group_and_rng();
        let setup = sender_setup(&group, &mut rng);
        let (q, st) = receiver_choose(&group, &setup, true, &mut rng);
        let t = sender_transfer(&group, &setup, &q, b"", b"", &mut rng);
        assert!(receiver_output(&group, &st, &t).is_empty());
    }
}
