//! # spfe-ot
//!
//! Oblivious transfer for the SPFE workspace: the Naor–Pinkas-style
//! 1-out-of-2 base OT ([`ot2`], the paper's `SPIR(2,1,κ)` unit used inside
//! Yao's protocol) and 1-out-of-n OT from `log n` base OTs ([`ot_n`], a
//! linear-communication `SPIR(n,1,ℓ)` used both directly and as the
//! symmetric-privacy layer of the PIR substrate).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ot2;
pub mod ot_n;

pub use ot2::{OtQuery, OtReceiverState, OtSetup, OtTransfer};
pub use ot_n::{OtnAnswer, OtnQuery, OtnReceiverState};
