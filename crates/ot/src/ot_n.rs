//! 1-out-of-n oblivious transfer from `log n` base OTs (Naor–Pinkas \[36,38\]).
//!
//! The sender holds `n` equal-length messages; the receiver learns exactly
//! the one at its index. Construction: the sender samples `L = ⌈log₂ n⌉`
//! key *pairs*; item `i` is encrypted under the XOR of pads derived from the
//! keys selected by the bits of `i`; the receiver obtains its `L` keys via
//! `L` parallel `ot2` executions. All messages for all `L`
//! OTs travel together, so the protocol keeps OT₂'s single round.
//!
//! This is the paper's `SPIR(n, 1, ℓ)` when the `n` messages are the
//! database (symmetric privacy holds because the receiver learns keys for
//! exactly one index combination).

use crate::ot2::{self, OtQuery, OtReceiverState, OtSetup, OtTransfer};
use spfe_crypto::sha256::prf;
use spfe_crypto::SchnorrGroup;
use spfe_math::RandomSource;
use spfe_transport::{Reader, Wire, WireError};

/// Key length for the per-bit keys.
const KEY_LEN: usize = 16;

/// Number of selection bits for `n` items.
pub fn selection_bits(n: usize) -> usize {
    assert!(n >= 1);
    ((usize::BITS - (n - 1).leading_zeros()).max(1)) as usize
}

/// Receiver query: one base-OT query per selection bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OtnQuery {
    /// Base-OT queries, one per bit (LSB first).
    pub bit_queries: Vec<OtQuery>,
}

impl Wire for OtnQuery {
    fn encode(&self, out: &mut Vec<u8>) {
        self.bit_queries.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(OtnQuery {
            bit_queries: Vec::<OtQuery>::decode(r)?,
        })
    }
}

/// Sender answer: base-OT transfers for the keys plus all encrypted items.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OtnAnswer {
    /// Base-OT transfers (one per selection bit).
    pub bit_transfers: Vec<OtTransfer>,
    /// `n` encrypted items.
    pub ciphertexts: Vec<Vec<u8>>,
}

impl Wire for OtnAnswer {
    fn encode(&self, out: &mut Vec<u8>) {
        self.bit_transfers.encode(out);
        self.ciphertexts.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(OtnAnswer {
            bit_transfers: Vec::<OtTransfer>::decode(r)?,
            ciphertexts: Vec::<Vec<u8>>::decode(r)?,
        })
    }
}

/// Receiver state across the round.
#[derive(Debug, Clone)]
pub struct OtnReceiverState {
    index: usize,
    bit_states: Vec<OtReceiverState>,
}

/// Pad for item `i` derived from one per-bit key.
fn item_pad(key: &[u8], item: usize, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut counter = 0u64;
    while out.len() < len {
        let block = prf(
            key,
            b"spfe-ot-n-item",
            &[&(item as u64).to_le_bytes()[..], &counter.to_le_bytes()].concat(),
        );
        let take = (len - out.len()).min(block.len());
        out.extend_from_slice(&block[..take]);
        counter += 1;
    }
    out
}

/// Receiver: builds the query for `index` out of `n` items.
///
/// # Panics
///
/// Panics if `index >= n` or `n == 0`.
pub fn receiver_choose<R: RandomSource + ?Sized>(
    group: &SchnorrGroup,
    setup: &OtSetup,
    n: usize,
    index: usize,
    rng: &mut R,
) -> (OtnQuery, OtnReceiverState) {
    assert!(index < n, "index out of range");
    let bits = selection_bits(n);
    let mut bit_queries = Vec::with_capacity(bits);
    let mut bit_states = Vec::with_capacity(bits);
    for b in 0..bits {
        let choice = (index >> b) & 1 == 1;
        let (q, st) = ot2::receiver_choose(group, setup, choice, rng);
        bit_queries.push(q);
        bit_states.push(st);
    }
    (
        OtnQuery { bit_queries },
        OtnReceiverState { index, bit_states },
    )
}

/// Sender: answers with key transfers and all encrypted items.
///
/// # Panics
///
/// Panics if items have unequal lengths, `items` is empty, or the query has
/// the wrong number of bit queries.
pub fn sender_answer<R: RandomSource + ?Sized>(
    group: &SchnorrGroup,
    setup: &OtSetup,
    query: &OtnQuery,
    items: &[Vec<u8>],
    rng: &mut R,
) -> OtnAnswer {
    // Each answer also counts its `log n` base `Ot2Transfer`s below.
    spfe_obs::count(spfe_obs::Op::OtnTransfer, 1);
    assert!(!items.is_empty());
    let len = items[0].len();
    assert!(
        items.iter().all(|m| m.len() == len),
        "items must have equal length"
    );
    let bits = selection_bits(items.len());
    assert_eq!(query.bit_queries.len(), bits, "wrong query arity");

    // Sample key pairs.
    let mut keys = Vec::with_capacity(bits);
    for _ in 0..bits {
        let mut k0 = vec![0u8; KEY_LEN];
        let mut k1 = vec![0u8; KEY_LEN];
        rng.fill_bytes(&mut k0);
        rng.fill_bytes(&mut k1);
        keys.push((k0, k1));
    }

    // Transfer each key pair through a base OT.
    let bit_transfers = keys
        .iter()
        .zip(&query.bit_queries)
        .map(|((k0, k1), q)| ot2::sender_transfer(group, setup, q, k0, k1, rng))
        .collect();

    // Encrypt every item under its bit-selected keys.
    let ciphertexts = items
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let mut ct = m.clone();
            for (b, (k0, k1)) in keys.iter().enumerate() {
                let key = if (i >> b) & 1 == 1 { k1 } else { k0 };
                for (c, p) in ct.iter_mut().zip(item_pad(key, i, len)) {
                    *c ^= p;
                }
            }
            ct
        })
        .collect();

    OtnAnswer {
        bit_transfers,
        ciphertexts,
    }
}

/// Receiver: decrypts its chosen item.
///
/// # Panics
///
/// Panics if the answer shape does not match the receiver state.
pub fn receiver_output(
    group: &SchnorrGroup,
    state: &OtnReceiverState,
    answer: &OtnAnswer,
) -> Vec<u8> {
    assert_eq!(answer.bit_transfers.len(), state.bit_states.len());
    assert!(state.index < answer.ciphertexts.len());
    let mut item = answer.ciphertexts[state.index].clone();
    let len = item.len();
    for (st, tr) in state.bit_states.iter().zip(&answer.bit_transfers) {
        let key = ot2::receiver_output(group, st, tr);
        for (c, p) in item.iter_mut().zip(item_pad(&key, state.index, len)) {
            *c ^= p;
        }
    }
    item
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ot2::sender_setup;
    use spfe_crypto::ChaChaRng;

    fn setup() -> (SchnorrGroup, OtSetup, ChaChaRng) {
        let mut rng = ChaChaRng::from_u64_seed(0x0123);
        let group = SchnorrGroup::generate(96, &mut rng);
        let s = sender_setup(&group, &mut rng);
        (group, s, rng)
    }

    #[test]
    fn selection_bits_known() {
        assert_eq!(selection_bits(1), 1);
        assert_eq!(selection_bits(2), 1);
        assert_eq!(selection_bits(3), 2);
        assert_eq!(selection_bits(16), 4);
        assert_eq!(selection_bits(17), 5);
    }

    #[test]
    fn all_indices_of_small_database() {
        let (group, s, mut rng) = setup();
        let items: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i, i * 2, i * 3]).collect();
        for index in 0..items.len() {
            let (q, st) = receiver_choose(&group, &s, items.len(), index, &mut rng);
            let a = sender_answer(&group, &s, &q, &items, &mut rng);
            assert_eq!(receiver_output(&group, &st, &a), items[index], "i={index}");
        }
    }

    #[test]
    fn power_of_two_database() {
        let (group, s, mut rng) = setup();
        let items: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 10]).collect();
        let (q, st) = receiver_choose(&group, &s, 8, 6, &mut rng);
        let a = sender_answer(&group, &s, &q, &items, &mut rng);
        assert_eq!(receiver_output(&group, &st, &a), vec![6u8; 10]);
    }

    #[test]
    fn non_chosen_items_stay_hidden() {
        let (group, s, mut rng) = setup();
        let items: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 8]).collect();
        let (q, st) = receiver_choose(&group, &s, 4, 1, &mut rng);
        let a = sender_answer(&group, &s, &q, &items, &mut rng);
        // Attempt to decrypt a different index with the received keys: the
        // keys obtained are for index 1's bits, so index 2 (differing in
        // both bits) stays encrypted.
        let mut forged = a.ciphertexts[2].clone();
        for (b, (bst, tr)) in st.bit_states.iter().zip(&a.bit_transfers).enumerate() {
            let key = ot2::receiver_output(&group, bst, tr);
            let _ = b;
            for (c, p) in forged.iter_mut().zip(item_pad(&key, 2, 8)) {
                *c ^= p;
            }
        }
        assert_ne!(forged, items[2]);
    }

    #[test]
    fn single_item_database() {
        let (group, s, mut rng) = setup();
        let items = vec![b"only".to_vec()];
        let (q, st) = receiver_choose(&group, &s, 1, 0, &mut rng);
        let a = sender_answer(&group, &s, &q, &items, &mut rng);
        assert_eq!(receiver_output(&group, &st, &a), b"only");
    }

    #[test]
    fn wire_roundtrip() {
        let (group, s, mut rng) = setup();
        let items: Vec<Vec<u8>> = (0..3u8).map(|i| vec![i; 4]).collect();
        let (q, st) = receiver_choose(&group, &s, 3, 2, &mut rng);
        let q2 = OtnQuery::from_bytes(&q.to_bytes()).unwrap();
        let a = sender_answer(&group, &s, &q2, &items, &mut rng);
        let a2 = OtnAnswer::from_bytes(&a.to_bytes()).unwrap();
        assert_eq!(receiver_output(&group, &st, &a2), items[2]);
    }

    #[test]
    #[should_panic(expected = "index out of range")]
    fn out_of_range_index_rejected() {
        let (group, s, mut rng) = setup();
        let _ = receiver_choose(&group, &s, 4, 4, &mut rng);
    }
}
