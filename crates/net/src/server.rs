//! The SPFE session server: a TCP accept loop multiplexing concurrent
//! sessions, one thread per connection.
//!
//! Each connection carries exactly one session, opened by a Hello frame
//! whose label names the driver and whose payload selects the mode
//! ([`SessionMode`]). Sessions are fully isolated: a connection that
//! stalls, dies mid-protocol, or sends garbage poisons only its own
//! thread — the accept loop and every other session keep running, which
//! is the property `tests/net_timeout.rs` pins down.
//!
//! Shutdown is cooperative: [`Server::shutdown`] flips a flag and nudges
//! the accept loop awake with a loopback connection, then joins it. No
//! signal handling, no non-std dependencies.

use spfe::harness;
use spfe_transport::frame::{read_frame_or_eof, write_frame};
use spfe_transport::{Frame, FrameKind, ProtocolError, SessionCore, SessionMode};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Per-connection read deadline. A session whose client goes quiet
    /// for longer is torn down (its thread exits); other sessions are
    /// unaffected. `None` waits forever.
    pub read_deadline: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            read_deadline: Some(Duration::from_secs(30)),
        }
    }
}

/// Counters published by a running server (for smoke tests and the CI
/// gate; monotonic, best-effort ordering).
#[derive(Debug, Default)]
struct Counters {
    opened: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
}

/// A running SPFE session server.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop on a background thread.
    ///
    /// # Errors
    ///
    /// Any `io::Error` from binding the listener.
    pub fn bind(addr: &str, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let accept = {
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&counters);
            std::thread::spawn(move || accept_loop(&listener, &config, &stop, &counters))
        };
        Ok(Server {
            addr: local,
            stop,
            counters,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sessions opened so far.
    pub fn sessions_opened(&self) -> u64 {
        self.counters.opened.load(Ordering::Relaxed)
    }

    /// Sessions that ran to a clean close (Bye or clean EOF).
    pub fn sessions_completed(&self) -> u64 {
        self.counters.completed.load(Ordering::Relaxed)
    }

    /// Sessions torn down on an error (timeout, crash, protocol
    /// violation).
    pub fn sessions_failed(&self) -> u64 {
        self.counters.failed.load(Ordering::Relaxed)
    }

    /// Stops accepting, wakes the accept loop, and joins it. In-flight
    /// session threads run to completion on their own; their sockets are
    /// not yanked.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Nudge the blocking accept() awake with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    config: &ServerConfig,
    stop: &AtomicBool,
    counters: &Arc<Counters>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let deadline = config.read_deadline;
        let counters = Arc::clone(counters);
        std::thread::spawn(move || {
            counters.opened.fetch_add(1, Ordering::Relaxed);
            match handle_session(stream, deadline) {
                Ok(()) => counters.completed.fetch_add(1, Ordering::Relaxed),
                Err(_) => counters.failed.fetch_add(1, Ordering::Relaxed),
            };
        });
    }
}

/// Sends an Error frame (best effort) and returns the protocol error.
fn abort(stream: &mut TcpStream, session: u64, label: &str, reason: &'static str) -> ProtocolError {
    let e = ProtocolError::InvalidMessage {
        label: "net-session",
        reason,
    };
    let frame = Frame {
        kind: FrameKind::Error,
        client_to_server: false,
        session,
        half_round: 0,
        server: 0,
        label: label.to_owned(),
        payload: reason.as_bytes().to_vec(),
    };
    let _ = write_frame(stream, &frame, 0, "net-error");
    e
}

/// Runs one session to completion on the session's own thread.
fn handle_session(mut stream: TcpStream, deadline: Option<Duration>) -> Result<(), ProtocolError> {
    stream
        .set_read_timeout(deadline)
        .and_then(|()| stream.set_write_timeout(deadline))
        .map_err(|_| ProtocolError::InvalidMessage {
            label: "net-session",
            reason: "could not configure socket deadlines",
        })?;
    let hello = match read_frame_or_eof(&mut stream, true, 0, "net-hello")? {
        Some(f) => f,
        // The shutdown nudge (and port scanners) connect and immediately
        // close; that is a no-op, not a failed session.
        None => return Ok(()),
    };
    if hello.kind != FrameKind::Hello {
        return Err(abort(
            &mut stream,
            hello.session,
            "",
            "expected a hello frame",
        ));
    }
    let session = hello.session;
    let mode = match hello.payload.first() {
        Some(0) => SessionMode::Relay,
        Some(1) => SessionMode::Compute,
        _ => {
            return Err(abort(
                &mut stream,
                session,
                &hello.label,
                "unknown session mode",
            ))
        }
    };
    let cores = if mode == SessionMode::Compute {
        match harness::net_server_cores(&hello.label) {
            Some(c) => Some(c),
            None => {
                return Err(abort(
                    &mut stream,
                    session,
                    &hello.label,
                    "no server cores for this driver",
                ))
            }
        }
    } else {
        None
    };
    let ack = Frame {
        kind: FrameKind::Hello,
        client_to_server: false,
        session,
        half_round: 0,
        server: 0,
        label: hello.label.clone(),
        payload: vec![mode as u8],
    };
    write_frame(&mut stream, &ack, 0, "net-hello")?;
    match cores {
        None => relay_session(&mut stream, session),
        Some(mut cores) => compute_session(&mut stream, session, &mut cores),
    }
}

/// Relay mode: echo every Msg frame back verbatim until Bye or EOF.
fn relay_session(stream: &mut TcpStream, session: u64) -> Result<(), ProtocolError> {
    loop {
        let frame = match read_frame_or_eof(stream, true, 0, "net-relay")? {
            Some(f) => f,
            None => return Ok(()),
        };
        match frame.kind {
            FrameKind::Msg if frame.session == session => {
                write_frame(stream, &frame, frame.server as usize, "net-relay")?;
            }
            FrameKind::Bye => return Ok(()),
            _ => {
                return Err(abort(
                    stream,
                    session,
                    &frame.label,
                    "unexpected frame in relay session",
                ))
            }
        }
    }
}

/// Compute mode: feed each Msg frame to the addressed server core and
/// write its replies back, until every core is consumed (the client sends
/// Bye) or an error tears the session down.
fn compute_session(
    stream: &mut TcpStream,
    session: u64,
    cores: &mut [Box<dyn SessionCore + Send>],
) -> Result<(), ProtocolError> {
    for core in cores.iter_mut() {
        let (_, outs) = core.start()?;
        if !outs.is_empty() {
            return Err(abort(
                stream,
                session,
                "",
                "server core tried to speak first",
            ));
        }
    }
    loop {
        let frame = match read_frame_or_eof(stream, true, 0, "net-compute")? {
            Some(f) => f,
            None => return Ok(()),
        };
        match frame.kind {
            FrameKind::Bye => return Ok(()),
            FrameKind::Msg if frame.session == session => {
                let idx = frame.server as usize;
                if idx >= cores.len() {
                    return Err(abort(
                        stream,
                        session,
                        &frame.label,
                        "message addresses an unknown server",
                    ));
                }
                let step =
                    cores[idx].on_message(frame.half_round, idx, &frame.label, &frame.payload);
                let (_, outs) = match step {
                    Ok(r) => r,
                    Err(e) => {
                        let _ = abort(
                            stream,
                            session,
                            &frame.label,
                            "server core rejected the message",
                        );
                        return Err(e);
                    }
                };
                for m in outs {
                    if m.client_to_server {
                        return Err(abort(
                            stream,
                            session,
                            m.label,
                            "server core emitted a misdirected message",
                        ));
                    }
                    let reply = Frame {
                        kind: FrameKind::Msg,
                        client_to_server: false,
                        session,
                        half_round: frame.half_round + 1,
                        server: m.server as u32,
                        label: m.label.to_owned(),
                        payload: m.payload,
                    };
                    write_frame(stream, &reply, m.server, m.label)?;
                }
            }
            _ => {
                return Err(abort(
                    stream,
                    session,
                    &frame.label,
                    "unexpected frame in compute session",
                ))
            }
        }
    }
}
